#!/usr/bin/env python3
"""Perf-smoke regression gate.

Compares a freshly generated BENCH_interp.json against the checked-in
baseline (bench/baselines/BENCH_interp.json):

  - Simulation metrics (simulated instructions, per-cell simulated
    seconds and overheads) are machine-independent and must match the
    baseline EXACTLY -- any drift is a semantics change, not a perf
    regression, and always fails.
  - Wall time is machine-dependent; the gate only fails when the fresh
    run is more than --max-regression (default 25%) slower than the
    baseline recorded wall time. Faster is always fine.

With --conf EXPERIMENT.conf the fresh JSON is additionally checked
against the experiment spec it claims to implement: the row set must be
exactly the conf's (workloads x isas x classes x threads) sweep for the
JSON's mode, so a bench and its conf cannot drift apart silently.

Exit status: 0 ok, 1 regression/mismatch, 2 usage error.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import xisa_conf


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_perf: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def row_key(row):
    return (row["workload"], row["isa"], row["class"], row["threads"])


def conf_cells(conf_path, mode):
    """The (workload, isa, class, threads) sweep an overhead conf
    describes, in the JSON's spelling."""
    try:
        conf = xisa_conf.parse_file(conf_path)
    except (OSError, xisa_conf.ConfError) as e:
        print(f"check_perf: cannot read {conf_path}: {e}",
              file=sys.stderr)
        sys.exit(2)
    if conf.get("", "kind") != "overhead":
        print(f"check_perf: {conf_path}: --conf wants an overhead "
              "experiment", file=sys.stderr)
        sys.exit(2)

    def isa_label(ref):
        base = ref
        node = conf.sections.get(f"node.{ref}")
        if node is not None:
            base = node.get("base", ref)
        return {"aether": "Aether64", "xeno": "Xeno64"}.get(base, ref)

    def sweep(key, quick_key, default, quick_default):
        full = conf.get_list("", key) or default
        if mode != "quick":
            return full
        return conf.get_list("", quick_key) or quick_default

    workloads = [w.split("@")[0].strip()
                 for w in conf.get_list("", "workloads")]
    isas = [isa_label(i)
            for i in (conf.get_list("", "isas") or ["aether", "xeno"])]
    classes = sweep("classes", "classes_quick", ["A", "B", "C"], ["A"])
    threads = [int(t) for t in sweep("threads", "threads_quick",
                                     ["1", "2", "4", "8"], ["1", "4"])]
    return {(w, i, c, t) for w in workloads for i in isas
            for c in classes for t in threads}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("fresh", help="BENCH_interp.json from this run")
    ap.add_argument("baseline", help="checked-in baseline json")
    ap.add_argument("--max-regression", type=float, default=0.25,
                    help="allowed fractional wall-time slowdown "
                         "(default 0.25 = 25%%)")
    ap.add_argument("--conf", metavar="FILE",
                    help="experiment .conf whose sweep the fresh rows "
                         "must match exactly")
    args = ap.parse_args()

    fresh = load(args.fresh)
    base = load(args.baseline)
    failures = []

    if args.conf:
        want = conf_cells(args.conf, fresh.get("mode"))
        got = {row_key(r) for r in fresh.get("rows", [])}
        if got != want:
            failures.append(
                f"rows diverge from {args.conf}: "
                f"missing={sorted(want - got)} extra={sorted(got - want)}")

    if fresh.get("mode") != base.get("mode"):
        failures.append(
            f"mode mismatch: fresh={fresh.get('mode')} "
            f"baseline={base.get('mode')}")

    # --- exact simulation metrics -----------------------------------
    if fresh.get("simulated_instrs") != base.get("simulated_instrs"):
        failures.append(
            "simulated_instrs drifted: "
            f"fresh={fresh.get('simulated_instrs')} "
            f"baseline={base.get('simulated_instrs')} "
            "(semantics change, not a perf regression)")

    fresh_rows = {row_key(r): r for r in fresh.get("rows", [])}
    base_rows = {row_key(r): r for r in base.get("rows", [])}
    if set(fresh_rows) != set(base_rows):
        failures.append(
            f"row sets differ: only-fresh="
            f"{sorted(set(fresh_rows) - set(base_rows))} only-baseline="
            f"{sorted(set(base_rows) - set(fresh_rows))}")
    else:
        for key, br in base_rows.items():
            fr = fresh_rows[key]
            for field in ("base_seconds", "instrumented_seconds",
                          "instrs"):
                if fr[field] != br[field]:
                    failures.append(
                        f"{key}: {field} drifted "
                        f"{br[field]} -> {fr[field]}")

    # --- wall-time gate ---------------------------------------------
    fw = fresh.get("wall_seconds")
    bw = base.get("wall_seconds")
    if not fw or not bw:
        failures.append("wall_seconds missing from fresh or baseline")
    else:
        slowdown = fw / bw - 1.0
        print(f"wall time: baseline {bw:.3f}s, fresh {fw:.3f}s "
              f"({slowdown * 100:+.1f}%)")
        if slowdown > args.max_regression:
            failures.append(
                f"wall-time regression {slowdown * 100:.1f}% exceeds "
                f"the {args.max_regression * 100:.0f}% budget")

    if failures:
        for f in failures:
            print(f"check_perf: FAIL: {f}", file=sys.stderr)
        return 1
    print(f"check_perf: OK ({len(base_rows)} cells, "
          f"mips fresh={fresh.get('mips')}, baseline={base.get('mips')})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
