#!/usr/bin/env python3
"""Perf-smoke regression gate.

Compares a freshly generated BENCH_interp.json against the checked-in
baseline (bench/baselines/BENCH_interp.json):

  - Simulation metrics (simulated instructions, per-cell simulated
    seconds and overheads) are machine-independent and must match the
    baseline EXACTLY -- any drift is a semantics change, not a perf
    regression, and always fails.
  - Wall time is machine-dependent; the gate only fails when the fresh
    run is more than --max-regression (default 25%) slower than the
    baseline recorded wall time. Faster is always fine.
  - --min-mips FLOOR additionally enforces an absolute simulated-MIPS
    floor on overhead JSONs (simulated_instrs / wall_seconds / 1e6):
    the threaded-engine throughput gate. Unlike the relative wall gate
    it cannot be eroded by repeatedly re-baselining on slower runs --
    dropping below the floor fails no matter what the baseline says.

With --conf EXPERIMENT.conf the fresh JSON is additionally checked
against the experiment spec it claims to implement: the row set must be
exactly the conf's (workloads x isas x classes x threads) sweep for the
JSON's mode, so a bench and its conf cannot drift apart silently.

Serving-kind JSONs (rows keyed by "scenario", from bench_serving /
serving confs) are gated differently: the deterministic counts
(requests, slo_violations, migrations, failovers) must match the
baseline EXACTLY, while the tail percentiles are allowed to drift up to
--max-p99-regression (default 10%) before the gate fails -- improving
the tail never fails. With --conf the scenario set must match the conf
(static always, migrate iff the conf has a migrate_plan).

Fleet-kind JSONs (rows keyed by "pool", from rack/fleet confs run
through xisa_exp --json) carry the event-driven cluster scheduler's
throughput: sched_events (deterministic, must match the baseline
EXACTLY -- the event count is identical for both schedule drivers by
construction, so drift means the schedule itself changed) and
events_per_sec. --min-events-per-sec FLOOR enforces an absolute
scheduler-throughput floor, the cluster-sim analogue of --min-mips: the
old per-quantum stepping loop runs two orders of magnitude below it at
fleet scale, so the gate catches any reintroduction of per-step
machine scans no matter how the baseline wall time drifts.

Exit status: 0 ok, 1 regression/mismatch, 2 usage error.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import xisa_conf


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_perf: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def row_key(row):
    return (row["workload"], row["isa"], row["class"], row["threads"])


def parse_conf(conf_path):
    try:
        return xisa_conf.parse_file(conf_path)
    except (OSError, xisa_conf.ConfError) as e:
        print(f"check_perf: cannot read {conf_path}: {e}",
              file=sys.stderr)
        sys.exit(2)


def conf_cells(conf, conf_path, mode):
    """The (workload, isa, class, threads) sweep an overhead conf
    describes, in the JSON's spelling."""
    if conf.get("", "kind") != "overhead":
        print(f"check_perf: {conf_path}: --conf wants an overhead or "
              "serving experiment", file=sys.stderr)
        sys.exit(2)

    def isa_label(ref):
        base = ref
        node = conf.sections.get(f"node.{ref}")
        if node is not None:
            base = node.get("base", ref)
        return {"aether": "Aether64", "xeno": "Xeno64"}.get(base, ref)

    def sweep(key, quick_key, default, quick_default):
        full = conf.get_list("", key) or default
        if mode != "quick":
            return full
        return conf.get_list("", quick_key) or quick_default

    workloads = [w.split("@")[0].strip()
                 for w in conf.get_list("", "workloads")]
    isas = [isa_label(i)
            for i in (conf.get_list("", "isas") or ["aether", "xeno"])]
    classes = sweep("classes", "classes_quick", ["A", "B", "C"], ["A"])
    threads = [int(t) for t in sweep("threads", "threads_quick",
                                     ["1", "2", "4", "8"], ["1", "4"])]
    return {(w, i, c, t) for w in workloads for i in isas
            for c in classes for t in threads}


def wall_gate(fresh, base, args):
    """Wall time is machine-dependent; only a big slowdown fails."""
    fw = fresh.get("wall_seconds")
    bw = base.get("wall_seconds")
    if not fw or not bw:
        return ["wall_seconds missing from fresh or baseline"]
    slowdown = fw / bw - 1.0
    print(f"wall time: baseline {bw:.3f}s, fresh {fw:.3f}s "
          f"({slowdown * 100:+.1f}%)")
    # Sub-second runs (quick-mode serving) are dominated by scheduler
    # noise; only fail when the absolute slip is material too.
    if slowdown > args.max_regression and fw - bw > 0.25:
        return [f"wall-time regression {slowdown * 100:.1f}% exceeds "
                f"the {args.max_regression * 100:.0f}% budget"]
    return []


def is_serving(doc):
    rows = doc.get("rows", [])
    return bool(rows) and "scenario" in rows[0]


def is_fleet(doc):
    return "sched_events" in doc


def check_fleet(fresh, base, args, failures):
    """Gate a fleet-kind JSON: per-pool results and the event count
    exactly, wall time within budget, events/sec above the floor."""
    # The simulator is seeded and deterministic, and sched_events is
    # identical for the event core and the stepping oracle by
    # construction: any drift is a schedule change, never noise.
    if fresh.get("sched_events") != base.get("sched_events"):
        failures.append(
            f"sched_events drifted: baseline={base.get('sched_events')} "
            f"fresh={fresh.get('sched_events')} "
            "(schedule change, not a perf regression)")
    fresh_rows = {r["pool"]: r for r in fresh.get("rows", [])}
    base_rows = {r["pool"]: r for r in base.get("rows", [])}
    if set(fresh_rows) != set(base_rows):
        failures.append(
            f"pool sets differ: only-fresh="
            f"{sorted(set(fresh_rows) - set(base_rows))} only-baseline="
            f"{sorted(set(base_rows) - set(fresh_rows))}")
    else:
        for name, br in base_rows.items():
            fr = fresh_rows[name]
            for field in ("energy_kj", "makespan_seconds",
                          "migrations"):
                if fr.get(field) != br.get(field):
                    failures.append(
                        f"{name}: {field} drifted "
                        f"{br.get(field)} -> {fr.get(field)} "
                        "(semantics change, not a perf regression)")
    failures += wall_gate(fresh, base, args)
    if args.min_events_per_sec is not None:
        eps = fresh.get("events_per_sec")
        if not eps:
            failures.append("events_per_sec missing from fresh json "
                            "(--min-events-per-sec)")
        else:
            print(f"events/sec: fresh {eps:.0f}, floor "
                  f"{args.min_events_per_sec:.0f}")
            if eps < args.min_events_per_sec:
                failures.append(
                    f"scheduler throughput {eps:.0f} events/sec below "
                    f"the --min-events-per-sec floor "
                    f"{args.min_events_per_sec:.0f}")
    return base_rows


def conf_scenarios(conf, conf_path):
    """The scenario set a serving conf's runner emits."""
    if conf.get("", "kind") != "serving":
        print(f"check_perf: {conf_path}: serving JSON but conf kind is "
              f"{conf.get('', 'kind')!r}", file=sys.stderr)
        sys.exit(2)
    want = {"static"}
    if conf.get_list("traffic", "migrate_plan"):
        want.add("migrate")
    return want


def check_serving(fresh, base, args, failures):
    """Gate a serving-kind JSON: deterministic counts exactly, tail
    percentiles within --max-p99-regression."""
    if args.conf:
        conf = parse_conf(args.conf)
        want = conf_scenarios(conf, args.conf)
        got = {r["scenario"] for r in fresh.get("rows", [])}
        if got != want:
            failures.append(
                f"scenarios diverge from {args.conf}: "
                f"missing={sorted(want - got)} extra={sorted(got - want)}")

    fresh_rows = {r["scenario"]: r for r in fresh.get("rows", [])}
    base_rows = {r["scenario"]: r for r in base.get("rows", [])}
    if set(fresh_rows) != set(base_rows):
        failures.append(
            f"scenario sets differ: only-fresh="
            f"{sorted(set(fresh_rows) - set(base_rows))} only-baseline="
            f"{sorted(set(base_rows) - set(fresh_rows))}")
        return base_rows
    for name, br in base_rows.items():
        fr = fresh_rows[name]
        # The serving simulator is seeded and deterministic: counts
        # drifting means the semantics changed, which always fails.
        # The degraded-mode counters (shed, slo_violations_degraded)
        # only appear on confs with a [failures] plan; skip them on
        # older baselines that predate the fields.
        for field in ("requests", "slo_violations", "migrations",
                      "failovers", "shed", "slo_violations_degraded"):
            if field not in br and field not in fr:
                continue
            if fr.get(field) != br.get(field):
                failures.append(
                    f"{name}: {field} drifted "
                    f"{br.get(field)} -> {fr.get(field)} "
                    "(semantics change, not a perf regression)")
        # Percentiles may legitimately move with service-cost
        # recalibration, so they get a budget instead of exactness.
        for field in ("p99_us", "p999_us"):
            fp, bp = fr.get(field), br.get(field)
            if fp is None or bp is None or not bp:
                failures.append(f"{name}: {field} missing or zero in "
                                "fresh or baseline")
                continue
            reg = fp / bp - 1.0
            print(f"{name} {field}: baseline {bp:.1f} us, "
                  f"fresh {fp:.1f} us ({reg * 100:+.1f}%)")
            if reg > args.max_p99_regression:
                failures.append(
                    f"{name}: {field} regression {reg * 100:.1f}% "
                    f"exceeds the "
                    f"{args.max_p99_regression * 100:.0f}% budget")
    return base_rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("fresh", help="BENCH_interp.json from this run")
    ap.add_argument("baseline", help="checked-in baseline json")
    ap.add_argument("--max-regression", type=float, default=0.25,
                    help="allowed fractional wall-time slowdown "
                         "(default 0.25 = 25%%)")
    ap.add_argument("--max-p99-regression", type=float, default=0.10,
                    help="allowed fractional p99/p99.9 latency growth "
                         "for serving JSONs (default 0.10 = 10%%)")
    ap.add_argument("--min-mips", type=float, metavar="FLOOR",
                    help="absolute simulated-MIPS floor for overhead "
                         "JSONs; below it the gate fails regardless of "
                         "the baseline")
    ap.add_argument("--min-events-per-sec", type=float, metavar="FLOOR",
                    help="absolute scheduler-event throughput floor "
                         "for fleet JSONs; below it the gate fails "
                         "regardless of the baseline")
    ap.add_argument("--conf", metavar="FILE",
                    help="experiment .conf whose sweep the fresh rows "
                         "must match exactly")
    args = ap.parse_args()

    fresh = load(args.fresh)
    base = load(args.baseline)
    failures = []

    if fresh.get("mode") != base.get("mode"):
        failures.append(
            f"mode mismatch: fresh={fresh.get('mode')} "
            f"baseline={base.get('mode')}")

    if is_fleet(fresh) or is_fleet(base):
        if is_fleet(fresh) != is_fleet(base):
            print("check_perf: fresh and baseline are different "
                  "experiment kinds", file=sys.stderr)
            return 2
        if args.min_mips is not None:
            print("check_perf: --min-mips only applies to overhead "
                  "JSONs (fleet rows have no mips)", file=sys.stderr)
            return 2
        if args.conf:
            print("check_perf: --conf row checking is not implemented "
                  "for fleet JSONs", file=sys.stderr)
            return 2
        base_rows = check_fleet(fresh, base, args, failures)
        if failures:
            for f in failures:
                print(f"check_perf: FAIL: {f}", file=sys.stderr)
            return 1
        print(f"check_perf: OK ({len(base_rows)} fleet pools, "
              f"events/sec fresh={fresh.get('events_per_sec')}, "
              f"baseline={base.get('events_per_sec')})")
        return 0

    if args.min_events_per_sec is not None:
        print("check_perf: --min-events-per-sec only applies to fleet "
              "JSONs", file=sys.stderr)
        return 2

    if is_serving(fresh) or is_serving(base):
        if is_serving(fresh) != is_serving(base):
            print("check_perf: fresh and baseline are different "
                  "experiment kinds", file=sys.stderr)
            return 2
        if args.min_mips is not None:
            print("check_perf: --min-mips only applies to overhead "
                  "JSONs (serving rows have no mips)", file=sys.stderr)
            return 2
        base_rows = check_serving(fresh, base, args, failures)
        failures += wall_gate(fresh, base, args)
        if failures:
            for f in failures:
                print(f"check_perf: FAIL: {f}", file=sys.stderr)
            return 1
        print(f"check_perf: OK ({len(base_rows)} serving scenarios)")
        return 0

    if args.conf:
        want = conf_cells(parse_conf(args.conf), args.conf,
                          fresh.get("mode"))
        got = {row_key(r) for r in fresh.get("rows", [])}
        if got != want:
            failures.append(
                f"rows diverge from {args.conf}: "
                f"missing={sorted(want - got)} extra={sorted(got - want)}")

    # --- exact simulation metrics -----------------------------------
    if fresh.get("simulated_instrs") != base.get("simulated_instrs"):
        failures.append(
            "simulated_instrs drifted: "
            f"fresh={fresh.get('simulated_instrs')} "
            f"baseline={base.get('simulated_instrs')} "
            "(semantics change, not a perf regression)")

    fresh_rows = {row_key(r): r for r in fresh.get("rows", [])}
    base_rows = {row_key(r): r for r in base.get("rows", [])}
    if set(fresh_rows) != set(base_rows):
        failures.append(
            f"row sets differ: only-fresh="
            f"{sorted(set(fresh_rows) - set(base_rows))} only-baseline="
            f"{sorted(set(base_rows) - set(fresh_rows))}")
    else:
        for key, br in base_rows.items():
            fr = fresh_rows[key]
            for field in ("base_seconds", "instrumented_seconds",
                          "instrs"):
                if fr[field] != br[field]:
                    failures.append(
                        f"{key}: {field} drifted "
                        f"{br[field]} -> {fr[field]}")

    failures += wall_gate(fresh, base, args)

    # --- absolute throughput floor ------------------------------------
    if args.min_mips is not None:
        mips = fresh.get("mips")
        if not mips:
            failures.append("mips missing from fresh json (--min-mips)")
        else:
            print(f"mips: fresh {mips:.2f}, floor {args.min_mips:.2f}")
            if mips < args.min_mips:
                failures.append(
                    f"simulated MIPS {mips:.2f} below the --min-mips "
                    f"floor {args.min_mips:.2f}")

    if failures:
        for f in failures:
            print(f"check_perf: FAIL: {f}", file=sys.stderr)
        return 1
    print(f"check_perf: OK ({len(base_rows)} cells, "
          f"mips fresh={fresh.get('mips')}, baseline={base.get('mips')})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
