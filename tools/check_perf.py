#!/usr/bin/env python3
"""Perf-smoke regression gate.

Compares a freshly generated BENCH_interp.json against the checked-in
baseline (bench/baselines/BENCH_interp.json):

  - Simulation metrics (simulated instructions, per-cell simulated
    seconds and overheads) are machine-independent and must match the
    baseline EXACTLY -- any drift is a semantics change, not a perf
    regression, and always fails.
  - Wall time is machine-dependent; the gate only fails when the fresh
    run is more than --max-regression (default 25%) slower than the
    baseline recorded wall time. Faster is always fine.

Exit status: 0 ok, 1 regression/mismatch, 2 usage error.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_perf: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def row_key(row):
    return (row["workload"], row["isa"], row["class"], row["threads"])


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("fresh", help="BENCH_interp.json from this run")
    ap.add_argument("baseline", help="checked-in baseline json")
    ap.add_argument("--max-regression", type=float, default=0.25,
                    help="allowed fractional wall-time slowdown "
                         "(default 0.25 = 25%%)")
    args = ap.parse_args()

    fresh = load(args.fresh)
    base = load(args.baseline)
    failures = []

    if fresh.get("mode") != base.get("mode"):
        failures.append(
            f"mode mismatch: fresh={fresh.get('mode')} "
            f"baseline={base.get('mode')}")

    # --- exact simulation metrics -----------------------------------
    if fresh.get("simulated_instrs") != base.get("simulated_instrs"):
        failures.append(
            "simulated_instrs drifted: "
            f"fresh={fresh.get('simulated_instrs')} "
            f"baseline={base.get('simulated_instrs')} "
            "(semantics change, not a perf regression)")

    fresh_rows = {row_key(r): r for r in fresh.get("rows", [])}
    base_rows = {row_key(r): r for r in base.get("rows", [])}
    if set(fresh_rows) != set(base_rows):
        failures.append(
            f"row sets differ: only-fresh="
            f"{sorted(set(fresh_rows) - set(base_rows))} only-baseline="
            f"{sorted(set(base_rows) - set(fresh_rows))}")
    else:
        for key, br in base_rows.items():
            fr = fresh_rows[key]
            for field in ("base_seconds", "instrumented_seconds",
                          "instrs"):
                if fr[field] != br[field]:
                    failures.append(
                        f"{key}: {field} drifted "
                        f"{br[field]} -> {fr[field]}")

    # --- wall-time gate ---------------------------------------------
    fw = fresh.get("wall_seconds")
    bw = base.get("wall_seconds")
    if not fw or not bw:
        failures.append("wall_seconds missing from fresh or baseline")
    else:
        slowdown = fw / bw - 1.0
        print(f"wall time: baseline {bw:.3f}s, fresh {fw:.3f}s "
              f"({slowdown * 100:+.1f}%)")
        if slowdown > args.max_regression:
            failures.append(
                f"wall-time regression {slowdown * 100:.1f}% exceeds "
                f"the {args.max_regression * 100:.0f}% budget")

    if failures:
        for f in failures:
            print(f"check_perf: FAIL: {f}", file=sys.stderr)
        return 1
    print(f"check_perf: OK ({len(base_rows)} cells, "
          f"mips fresh={fresh.get('mips')}, baseline={base.get('mips')})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
