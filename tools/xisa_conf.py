"""Minimal reader for the xisa_exp `.conf` dialect.

Python-side mirror of src/exp/config.cc for the tools that enumerate
experiments from the same files the runner consumes (check_perf.py,
audit_sweep.py, CI). Covers the subset the tools need: sections,
key = value, quote-aware # comments, single-/double-quoted values with
\\n \\t \\\\ \\" escapes, $(globalkey) macros, and comma lists. It does
NOT validate -- xisa_exp --print-spec is the authority on what a conf
means; this module only needs to read back what the parser accepted.
"""

import re

_KEY_RE = re.compile(r"^[A-Za-z0-9_.\-\[\]]+$")


class ConfError(ValueError):
    pass


def _strip_comment(raw, where):
    out = []
    quote = None
    esc = False
    for ch in raw:
        if quote:
            out.append(ch)
            if esc:
                esc = False
            elif quote == '"' and ch == "\\":
                esc = True
            elif ch == quote:
                quote = None
            continue
        if ch in "'\"":
            quote = ch
            out.append(ch)
            continue
        if ch == "#":
            break
        out.append(ch)
    if quote:
        raise ConfError(f"{where}: unterminated quote")
    return "".join(out).strip()


def _unquote(value, where):
    if len(value) >= 2 and value[0] == "'" and value[-1] == "'":
        return value[1:-1]
    if len(value) >= 2 and value[0] == '"' and value[-1] == '"':
        out = []
        body = value[1:-1]
        i = 0
        while i < len(body):
            ch = body[i]
            if ch != "\\":
                out.append(ch)
                i += 1
                continue
            if i + 1 >= len(body):
                raise ConfError(f"{where}: dangling backslash")
            nxt = body[i + 1]
            mapped = {"n": "\n", "t": "\t", "\\": "\\", '"': '"'}.get(nxt)
            if mapped is None:
                raise ConfError(f"{where}: bad escape \\{nxt}")
            out.append(mapped)
            i += 2
        return "".join(out)
    return value


class Conf:
    """Parsed conf: `sections` maps section name ('' = global) to an
    insertion-ordered {key: value} dict."""

    def __init__(self, sections, name):
        self.sections = sections
        self.name = name

    def get(self, section, key, default=None):
        return self.sections.get(section, {}).get(key, default)

    def get_list(self, section, key):
        value = self.get(section, key)
        if value is None:
            return []
        return [item.strip() for item in value.split(",")]

    def sections_with_prefix(self, prefix):
        return [s for s in self.sections if s.startswith(prefix)]


def _expand(value, globals_, where, depth=0):
    if depth > 8:
        raise ConfError(f"{where}: macro expansion too deep")
    out = []
    i = 0
    while i < len(value):
        if value[i] == "$" and value[i + 1:i + 2] == "(":
            close = value.find(")", i + 2)
            if close < 0:
                raise ConfError(f"{where}: unterminated $(")
            ref = value[i + 2:close]
            if ref not in globals_:
                raise ConfError(f"{where}: $({ref}) undefined")
            out.append(_expand(globals_[ref], globals_, where, depth + 1))
            i = close + 1
        else:
            out.append(value[i])
            i += 1
    return "".join(out)


def parse_string(text, name="<conf>"):
    sections = {"": {}}
    raw_globals = {}
    current = ""
    for lineno, raw in enumerate(text.splitlines(), 1):
        where = f"{name}:{lineno}"
        line = _strip_comment(raw, where)
        if not line:
            continue
        if line.startswith("["):
            if not line.endswith("]"):
                raise ConfError(f"{where}: missing ']'")
            sec = line[1:-1].strip()
            if not sec or not _KEY_RE.match(sec):
                raise ConfError(f"{where}: bad section name '{sec}'")
            if sec in sections:
                raise ConfError(f"{where}: duplicate section [{sec}]")
            sections[sec] = {}
            current = sec
            continue
        if "=" not in line:
            raise ConfError(f"{where}: expected 'key = value'")
        key, _, value = line.partition("=")
        key = key.strip()
        if not _KEY_RE.match(key):
            raise ConfError(f"{where}: bad key name '{key}'")
        value = _unquote(_expand(value.strip(), raw_globals, where),
                         where)
        if key in sections[current]:
            raise ConfError(f"{where}: duplicate key '{key}'")
        sections[current][key] = value
        if current == "":
            raw_globals[key] = value
    return Conf(sections, name)


def parse_file(path):
    with open(path) as f:
        return parse_string(f.read(), path)
