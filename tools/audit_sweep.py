#!/usr/bin/env python3
"""Seeded perturbation sweep with the invariant auditor armed.

For each seed, runs the audit probe and the Fig. 12/13 scheduling
benches with XISA_AUDIT=1 and XISA_PERTURB=<seed>: the perturber
reshapes interconnect delivery, migration timing, and crash instants,
and the auditor panics on the first violated invariant with a replay
line identifying the seed. This is how the latent-bug hunt is mechanized
(DESIGN.md §8): a clean sweep is the acceptance gate, a violation is a
fully replayable bug report.

On failure the offending command's stdout/stderr (and any Chrome-trace
dump the auditor wrote) are collected under --artifacts, and the sweep
keeps going so one triage pass sees every distinct violation.

Exit status: 0 clean sweep, 1 violations found, 2 usage error.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys

VIOLATION_RE = re.compile(r"\[audit\] VIOLATION at ([^:]+): (.*)")
TRACE_DUMP_RE = re.compile(r"xisa_audit_violation_\d+\.trace\.json")


def commands(build_dir, crash, confs_dir=None, fleet=False):
    """The per-seed command matrix: probe first (fast, focussed), then
    the paper's scheduling benches in quick mode. With --crash the
    matrix is the node-failure recovery scenario instead: the probe's
    crash legs (byte-identity against a crash-free run with the auditor
    armed) plus the crashy sustained bench. With --confs DIR, every
    .conf in DIR runs through xisa_exp under the same audit/perturb
    environment, so config-driven experiments join the hunt. With
    --fleet the matrix is the 1000-machine rack-outage conf alone:
    each seed reshapes the request stream (the runner folds
    XISA_PERTURB into the traffic seed) against the same outage plan,
    with the auditor armed throughout."""
    probe = os.path.join(build_dir, "src", "check", "audit_probe")
    if fleet:
        runner = os.path.join(build_dir, "src", "exp", "xisa_exp")
        if not os.path.exists(runner):
            print(f"audit_sweep: {runner} not built but --fleet given",
                  file=sys.stderr)
            sys.exit(2)
        conf = os.path.join("examples", "confs",
                            "fleet_rack_outage.conf")
        if not os.path.exists(conf):
            print(f"audit_sweep: {conf} not found (run --fleet from "
                  "the repo root)", file=sys.stderr)
            sys.exit(2)
        return [("fleet_rack_outage", [runner, conf])]
    if crash:
        cmds = [("audit_probe_crash", [probe, "--crash"])]
        bench = os.path.join(build_dir, "bench", "bench_fault_sustained")
        if os.path.exists(bench):
            cmds.append(("fault_sustained_crash",
                         [bench, "--fault-crash=1@40"]))
        return cmds
    fig12 = os.path.join(build_dir, "bench", "bench_fig12_sustained")
    fig13 = os.path.join(build_dir, "bench", "bench_fig13_periodic")
    cmds = [("audit_probe", [probe])]
    for name, path in (("fig12", fig12), ("fig13", fig13)):
        if os.path.exists(path):
            cmds.append((name, [path]))
    if confs_dir:
        runner = os.path.join(build_dir, "src", "exp", "xisa_exp")
        if not os.path.exists(runner):
            print(f"audit_sweep: {runner} not built but --confs given",
                  file=sys.stderr)
            sys.exit(2)
        for entry in sorted(os.listdir(confs_dir)):
            if not entry.endswith(".conf"):
                continue
            name = "conf_" + os.path.splitext(entry)[0]
            cmds.append((name,
                         [runner, os.path.join(confs_dir, entry)]))
    return cmds


def run_one(name, cmd, seed, timeout):
    env = dict(os.environ)
    env["XISA_AUDIT"] = "1"
    env["XISA_PERTURB"] = str(seed)
    env["XISA_QUICK"] = "1"
    try:
        proc = subprocess.run(cmd, env=env, capture_output=True,
                              text=True, timeout=timeout)
    except subprocess.TimeoutExpired:
        return ("timeout", f"{name} timed out after {timeout}s", "", "")
    except OSError as e:
        print(f"audit_sweep: cannot run {cmd[0]}: {e}", file=sys.stderr)
        sys.exit(2)
    if proc.returncode == 0:
        return None
    combined = proc.stdout + "\n" + proc.stderr
    m = VIOLATION_RE.search(combined)
    what = m.group(0) if m else f"exit status {proc.returncode}"
    return (name, what, proc.stdout, proc.stderr)


def save_artifacts(art_dir, seed, name, what, out, err):
    os.makedirs(art_dir, exist_ok=True)
    base = os.path.join(art_dir, f"seed{seed}_{name}")
    with open(base + ".log", "w") as f:
        f.write(f"# seed {seed}, command {name}\n# {what}\n")
        f.write("## stdout\n" + out + "\n## stderr\n" + err + "\n")
    # The auditor drops its Chrome trace in the CWD; sweep it up.
    for entry in os.listdir("."):
        if TRACE_DUMP_RE.fullmatch(entry):
            shutil.move(entry, os.path.join(art_dir, entry))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build",
                    help="CMake build directory (default: build)")
    ap.add_argument("--seeds", type=int, default=50,
                    help="number of perturbation seeds (default: 50)")
    ap.add_argument("--first-seed", type=int, default=1,
                    help="first seed value (default: 1; 0 disables "
                         "the perturber)")
    ap.add_argument("--timeout", type=float, default=600,
                    help="per-command timeout in seconds")
    ap.add_argument("--artifacts", default="audit-artifacts",
                    help="directory for violation logs/traces")
    ap.add_argument("--crash", action="store_true",
                    help="sweep the node-failure recovery scenarios "
                         "(audit_probe --crash + crashy sustained "
                         "bench) instead of the default matrix")
    ap.add_argument("--confs", metavar="DIR",
                    help="also sweep every experiment .conf in DIR "
                         "through xisa_exp (ignored with --crash)")
    ap.add_argument("--fleet", action="store_true",
                    help="sweep the 1000-machine rack-outage conf "
                         "(fleet_rack_outage.conf) instead of the "
                         "default matrix; takes precedence over "
                         "--crash/--confs")
    args = ap.parse_args()

    if args.seeds < 1:
        print("audit_sweep: --seeds must be >= 1", file=sys.stderr)
        sys.exit(2)
    cmds = commands(args.build_dir, args.crash, args.confs, args.fleet)
    if not os.path.exists(cmds[0][1][0]):
        print(f"audit_sweep: {cmds[0][1][0]} not built "
              "(build the audit_probe target first)", file=sys.stderr)
        sys.exit(2)

    failures = []
    for i in range(args.seeds):
        seed = args.first_seed + i
        for name, cmd in cmds:
            bad = run_one(name, cmd, seed, args.timeout)
            if bad is None:
                continue
            name, what, out, err = bad
            failures.append((seed, name, what))
            save_artifacts(args.artifacts, seed, name, what, out, err)
            print(f"[audit_sweep] seed {seed} {name}: {what}",
                  flush=True)
        if (i + 1) % 10 == 0 or i + 1 == args.seeds:
            print(f"[audit_sweep] {i + 1}/{args.seeds} seeds, "
                  f"{len(failures)} violation(s)", flush=True)

    if failures:
        print(f"[audit_sweep] FAILED: {len(failures)} violation(s); "
              f"replay with XISA_AUDIT=1 XISA_PERTURB=<seed>; "
              f"artifacts in {args.artifacts}/")
        # Triage: group by violation text so N seeds hitting one bug
        # read as one line.
        by_what = {}
        for seed, name, what in failures:
            by_what.setdefault(what, []).append((seed, name))
        for what, hits in sorted(by_what.items()):
            seeds = ", ".join(str(s) for s, _ in hits[:8])
            more = "" if len(hits) <= 8 else f" (+{len(hits) - 8} more)"
            print(f"  {what}\n    seeds: {seeds}{more}")
        sys.exit(1)
    print(f"[audit_sweep] clean: {args.seeds} seeds x "
          f"{len(cmds)} commands")


if __name__ == "__main__":
    main()
