#include "serial/padmig.hh"

#include <cstring>

#include "os/os.hh"
#include "util/logging.hh"

namespace xisa {

namespace {
/** Reflection + boxing cost per 8-byte word on the source. */
constexpr uint64_t kSerializeCyclesPerWord = 70;
/** Allocation + reflection cost per word on the destination. */
constexpr uint64_t kDeserializeCyclesPerWord = 90;
/** Wire-format header per object. */
constexpr uint64_t kObjectHeaderBytes = 24;
} // namespace

SerializeResult
SerializingMigrator::migrate(DsmSpace &dsm, int srcNode, int destNode,
                             const std::vector<StateObject> &objects,
                             const NodeSpec &srcSpec,
                             const NodeSpec &destSpec)
{
    XISA_CHECK(net_, "SerializingMigrator needs an interconnect");
    SerializeResult res;
    std::vector<uint8_t> wire;
    std::vector<uint8_t> raw;

    // Serialize: read each object and convert words to the neutral
    // (big-endian) wire format.
    for (const StateObject &obj : objects) {
        raw.resize(obj.bytes);
        dsm.pull(srcNode, obj.addr, raw.data(), raw.size());
        size_t off = wire.size();
        wire.resize(off + obj.bytes);
        size_t words = obj.bytes / 8;
        for (size_t w = 0; w < words; ++w) {
            uint64_t v;
            std::memcpy(&v, raw.data() + w * 8, 8);
            v = __builtin_bswap64(v);
            std::memcpy(wire.data() + off + w * 8, &v, 8);
        }
        // Tail bytes move unconverted.
        for (size_t b = words * 8; b < obj.bytes; ++b)
            wire[off + b] = raw[b];
        res.bytes += obj.bytes + kObjectHeaderBytes;
        res.serializeCycles += words * kSerializeCyclesPerWord +
                               kSerializeCyclesPerWord;
        ++res.objects;
    }
    res.serializeSeconds = static_cast<double>(res.serializeCycles) *
                           srcSpec.secondsPerCycle();

    // Transfer the wire image.
    net_->charge(res.bytes, destSpec.freqGHz);
    res.transferSeconds = net_->transferSeconds(res.bytes);

    // De-serialize on the destination: convert back and write through
    // the destination node's port so the pages land there.
    size_t off = 0;
    for (const StateObject &obj : objects) {
        raw.resize(obj.bytes);
        size_t words = obj.bytes / 8;
        for (size_t w = 0; w < words; ++w) {
            uint64_t v;
            std::memcpy(&v, wire.data() + off + w * 8, 8);
            v = __builtin_bswap64(v);
            std::memcpy(raw.data() + w * 8, &v, 8);
        }
        for (size_t b = words * 8; b < obj.bytes; ++b)
            raw[b] = wire[off + b];
        dsm.poke(destNode, obj.addr, raw.data(), raw.size());
        off += obj.bytes;
        res.deserializeCycles += words * kDeserializeCyclesPerWord +
                                 kDeserializeCyclesPerWord;
    }
    res.deserializeSeconds = static_cast<double>(res.deserializeCycles) *
                             destSpec.secondsPerCycle();
    return res;
}

std::vector<StateObject>
captureState(const MultiIsaBinary &bin, const ReplicatedOS &os)
{
    std::vector<StateObject> objs;
    for (const GlobalVar &g : bin.ir.globals) {
        if (g.isConst || g.isTls)
            continue;
        objs.push_back({bin.globalAddr[g.id], g.size});
    }
    for (auto [addr, size] : os.heapObjects())
        objs.push_back({addr, size});
    return objs;
}

} // namespace xisa
