/**
 * @file
 * Serialization-based migration baseline (PadMig, Section 6/7, Fig. 11).
 *
 * PadMig migrates Java applications by reflecting over the object graph,
 * serializing it to a neutral wire format, shipping it, and
 * de-serializing on the destination. The paper's Fig. 11 shows this
 * costing ~8 s of a 23 s run, versus immediate resumption with
 * multi-ISA binaries.
 *
 * Our analog walks the application's state objects (globals + live heap
 * blocks), genuinely converts every word to a big-endian neutral format
 * (and back on the destination), charges per-word reflection costs on
 * both sides, and moves the bytes through the same Interconnect model
 * the native path uses. The contrast with the native migration -- which
 * moves only the transformed stack eagerly and pages on demand -- is
 * exactly the paper's point: common-format state needs no conversion.
 */

#ifndef XISA_SERIAL_PADMIG_HH
#define XISA_SERIAL_PADMIG_HH

#include <cstdint>
#include <vector>

#include "binary/multibinary.hh"
#include "dsm/dsm.hh"
#include "machine/node.hh"

namespace xisa {

class ReplicatedOS;

/** One serializable region of application state. */
struct StateObject {
    uint64_t addr = 0;
    uint64_t bytes = 0;
};

/** Cost/size breakdown of one serialization-based migration. */
struct SerializeResult {
    uint64_t objects = 0;
    uint64_t bytes = 0;
    uint64_t serializeCycles = 0;   ///< on the source clock
    uint64_t deserializeCycles = 0; ///< on the destination clock
    double serializeSeconds = 0;
    double transferSeconds = 0;
    double deserializeSeconds = 0;

    double
    totalSeconds() const
    {
        return serializeSeconds + transferSeconds + deserializeSeconds;
    }
};

/** PadMig-style whole-state migrator. */
class SerializingMigrator
{
  public:
    explicit SerializingMigrator(Interconnect *net) : net_(net) {}

    /**
     * Serialize `objects` out of `dsm` (as seen from srcNode), convert
     * to the neutral format, transfer, de-serialize onto destNode. The
     * destination copies are actually written, so correctness is
     * testable, not just costed.
     */
    SerializeResult migrate(DsmSpace &dsm, int srcNode, int destNode,
                            const std::vector<StateObject> &objects,
                            const NodeSpec &srcSpec,
                            const NodeSpec &destSpec);

  private:
    Interconnect *net_;
};

/**
 * Capture the serializable state of a running container: all writable
 * globals plus live heap allocations (the reflection-discovered object
 * graph of PadMig).
 */
std::vector<StateObject> captureState(const MultiIsaBinary &bin,
                                      const ReplicatedOS &os);

} // namespace xisa

#endif // XISA_SERIAL_PADMIG_HH
