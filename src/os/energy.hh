/**
 * @file
 * Energy accounting for the node pool.
 *
 * Replaces the paper's RAPL / I2C power-regulator / shunt-resistor DAQ
 * instrumentation (Section 6): per-node busy time is binned on a fixed
 * grid, converted to utilization, and mapped through the node's
 * utilization-proportional power model. The bin series doubles as the
 * power/load trace of Fig. 11 and integrates to the energy totals of
 * Figs. 12/13. A per-node technology scale supports the McPAT FinFET
 * projection the paper applies to the ARM part.
 */

#ifndef XISA_OS_ENERGY_HH
#define XISA_OS_ENERGY_HH

#include <vector>

#include "machine/node.hh"

namespace xisa {

/** Bins per-node core-busy seconds onto a fixed time grid. */
class EnergyMeter
{
  public:
    /**
     * @param specs node descriptions (copied)
     * @param binSeconds sampling grid (default 10 ms, the paper's
     *        100 Hz acquisition rate)
     */
    explicit EnergyMeter(std::vector<NodeSpec> specs,
                         double binSeconds = 0.01);

    /** Record that one core of `node` was busy during [t0, t1). */
    void addBusy(int node, double t0, double t1);

    /** Total core-busy seconds accumulated on a node. */
    double busySeconds(int node) const;

    /** Utilization (0..1, all cores) of a node in bin `bin`. */
    double utilization(int node, size_t bin) const;

    /** Per-bin power draw (W) up to `horizon` seconds. */
    std::vector<double> powerSeries(int node, double horizon,
                                    double scale = 1.0) const;

    /** Integrated energy (J) of a node over [0, horizon). */
    double energyJoules(int node, double horizon,
                        double scale = 1.0) const;

    double binSeconds() const { return binSeconds_; }
    int numNodes() const { return static_cast<int>(specs_.size()); }
    const NodeSpec &spec(int node) const
    {
        return specs_[static_cast<size_t>(node)];
    }

  private:
    std::vector<NodeSpec> specs_;
    double binSeconds_;
    std::vector<std::vector<double>> busy_; ///< per node, per bin
};

} // namespace xisa

#endif // XISA_OS_ENERGY_HH
