#include "os/os.hh"

#include <algorithm>
#include <cstring>

#include "check/audit.hh"
#include "check/perturb.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace xisa {

namespace {

uint64_t
alignUp64(uint64_t x, uint64_t a)
{
    return (x + a - 1) & ~(a - 1);
}

/** Modeled size of a thread-context migration message. */
constexpr uint64_t kContextMsgBytes = 1024;

/** Apply the XISA_PERTURB fault overlay before the interconnect is
 *  constructed (the config is copied into the OS first, so the run's
 *  own record reflects what was actually injected). */
OsConfig
applySchedulePerturbation(OsConfig cfg)
{
    if (check::SchedulePerturber::enabled()) {
        uint64_t seed = check::SchedulePerturber::envSeed();
        cfg.net.faults =
            check::SchedulePerturber::perturbFaults(cfg.net.faults, seed);
        // Crash injection only targets nodes whose threads have a
        // same-ISA kernel to be re-homed onto.
        std::vector<int> victims;
        for (size_t n = 0; n < cfg.nodes.size(); ++n)
            for (size_t m = 0; m < cfg.nodes.size(); ++m)
                if (m != n && cfg.nodes[m].isa == cfg.nodes[n].isa) {
                    victims.push_back(static_cast<int>(n));
                    break;
                }
        cfg.recovery = check::SchedulePerturber::perturbRecovery(
            cfg.recovery, victims, seed);
    }
    return cfg;
}

} // namespace

OsConfig
OsConfig::dualServer()
{
    OsConfig cfg;
    cfg.nodes = {makeXenoServer(), makeAetherServer()};
    return cfg;
}

ReplicatedOS::ReplicatedOS(const MultiIsaBinary &bin, OsConfig cfg)
    : bin_(bin), cfg_(applySchedulePerturbation(std::move(cfg))),
      net_(cfg_.net), xform_(bin),
      meter_(cfg_.nodes, cfg_.energyBinSeconds)
{
    if (cfg_.nodes.empty())
        fatal("ReplicatedOS needs at least one node");
    std::vector<double> freqs;
    for (const NodeSpec &s : cfg_.nodes)
        freqs.push_back(s.freqGHz);
    dsm_ = std::make_unique<DsmSpace>(static_cast<int>(cfg_.nodes.size()),
                                      &net_, freqs, cfg_.dsmMode);
    if (cfg_.recovery.enabled) {
        // Arm before registerStats below: the page journal's stats only
        // exist once the DSM is armed.
        fd_ = std::make_unique<FailureDetector>(
            static_cast<int>(cfg_.nodes.size()), cfg_.recovery);
        dsm_->armRecovery(fd_.get());
        dsm_->setDeathHandler([this](int dead) { onNodeDeath(dead); });
    }
    for (const NodeSpec &s : cfg_.nodes) {
        nodes_.emplace_back(s, bin_);
        if (cfg_.profile)
            nodes_.back().interp->enableProfile();
        if (cfg_.execCache)
            nodes_.back().interp->shareExecCache(cfg_.execCache);
    }

    // Attach every component stat to this container's registry. Done
    // after nodes_ is fully built so vector growth cannot move a
    // registered cache (moves re-point the entry, but why rely on it).
    net_.registerStats(stats_, "net");
    dsm_->registerStats(stats_);
    xform_.registerStats(stats_, "stacktransform");
    for (size_t n = 0; n < nodes_.size(); ++n) {
        std::string np = "node" + std::to_string(n);
        NodeRuntime &nr = nodes_[n];
        for (size_t c = 0; c < nr.cores.size(); ++c) {
            std::string cp = np + ".core" + std::to_string(c);
            nr.cores[c].l1i.registerStats(stats_, cp + ".l1i");
            nr.cores[c].l1d.registerStats(stats_, cp + ".l1d");
        }
        nr.l2.registerStats(stats_, np + ".l2");
    }
    stats_.attach("os.quanta", quanta_);
    stats_.attach("os.builtin_calls", builtinCalls_);
    stats_.attach("os.thread_spawns", threadSpawns_);
    stats_.attach("os.migrations", migrationsDone_);
    stats_.attach("os.spurious_migrate_traps", spuriousMigrateTraps_);
    stats_.attach("xfault.migration_aborts", migrationAborts_);
    stats_.attach("xfault.migration_retries", migrationRetries_);
    stats_.attach("os.threads", liveThreads_);
    stats_.attach("os.migrate.response_us", migrateResponseUs_);
    stats_.attach("machine.instrs", instrsStat_);
    stats_.attach("sched.migrate_requests", migrateRequests_);
    if (fd_) {
        fd_->registerStats(stats_);
        stats_.attach("xfault.threads_recovered", threadsRecovered_);
        stats_.attach("xfault.quanta_voided", quantaVoided_);
    }

    if (check::SchedulePerturber::enabled())
        perturb_ = std::make_unique<check::SchedulePerturber>(
            check::SchedulePerturber::envSeed());
    if (check::auditRequested()) {
        auditor_ = std::make_unique<check::InvariantAuditor>(
            *dsm_, &stats_, &net_, "net",
            check::InvariantAuditor::Context{
                cfg_.net.faults.seed,
                check::SchedulePerturber::envSeed()});
        auditor_->attach();
        // Probe the threaded engines' superblock boundaries (no-op on
        // nodes running without the threaded engine).
        for (NodeRuntime &nr : nodes_)
            nr.interp->setSuperblockObserver(
                &auditor_->superblockAudit());
    }
}

ReplicatedOS::~ReplicatedOS() = default;

Interp &
ReplicatedOS::interp(int node)
{
    return *nodes_[static_cast<size_t>(node)].interp;
}

double
ReplicatedOS::coreTime(int node, int core) const
{
    const NodeRuntime &nr = nodes_[static_cast<size_t>(node)];
    return static_cast<double>(nr.cores[static_cast<size_t>(core)].cycles) *
           nr.spec.secondsPerCycle();
}

void
ReplicatedOS::setCoreTimeAtLeast(int node, int core, double seconds)
{
    NodeRuntime &nr = nodes_[static_cast<size_t>(node)];
    uint64_t cycles = static_cast<uint64_t>(seconds / 1e-9 * nr.spec.freqGHz);
    Core &c = nr.cores[static_cast<size_t>(core)];
    c.cycles = std::max(c.cycles, cycles);
}

int
ReplicatedOS::pickCore(int node) const
{
    const NodeRuntime &nr = nodes_[static_cast<size_t>(node)];
    int best = 0;
    for (int c = 1; c < static_cast<int>(nr.cores.size()); ++c)
        if (nr.cores[static_cast<size_t>(c)].cycles <
            nr.cores[static_cast<size_t>(best)].cycles)
            best = c;
    return best;
}

double
ReplicatedOS::now() const
{
    double t = 0;
    for (size_t n = 0; n < nodes_.size(); ++n)
        for (size_t c = 0; c < nodes_[n].cores.size(); ++c)
            t = std::max(t, coreTime(static_cast<int>(n),
                                     static_cast<int>(c)));
    return t;
}

int
ReplicatedOS::threadNode(int tid) const
{
    return threads_[static_cast<size_t>(tid)]->node;
}

bool
ReplicatedOS::finished() const
{
    if (!loaded_)
        return false;
    if (exited_)
        return true;
    for (const auto &t : threads_)
        if (t->state != ThreadState::Done)
            return false;
    return true;
}

void
ReplicatedOS::setupInitialStack(OsThread &t)
{
    const AbiInfo &abi = AbiInfo::of(t.ctx.isa);
    uint64_t top = vm::stackTop(t.stackSlot);
    if (abi.retAddrOnStack) {
        uint64_t sp = top - 8;
        uint64_t sentinel = vm::kThreadExitAddr;
        dsm_->poke(t.node, sp, &sentinel, 8);
        t.ctx.gpr[abi.spReg] = sp;
    } else {
        t.ctx.gpr[abi.spReg] = top;
        t.ctx.gpr[abi.linkReg] = vm::kThreadExitAddr;
    }
}

int
ReplicatedOS::createThread(int node, uint32_t funcId,
                           const std::vector<uint64_t> &intArgs)
{
    auto thread = std::make_unique<OsThread>();
    OsThread &t = *thread;
    t.tid = static_cast<int>(threads_.size());
    t.node = node;
    t.core = pickCore(node);
    t.stackSlot = nextStackSlot_++;
    t.ctx.isa = nodes_[static_cast<size_t>(node)].spec.isa;
    t.ctx.pc = {funcId, 0};
    t.kcont.isa = t.ctx.isa;
    t.kcont.node = node;

    // TLS block: one common-format image per thread, page-separated.
    uint64_t stride = alignUp64(std::max<uint64_t>(bin_.tlsSize, 16),
                                vm::kPageSize);
    t.ctx.tlsBase = vm::kTlsBase + static_cast<uint64_t>(t.tid) * stride;
    if (!bin_.tlsInit.empty())
        dsm_->populate(node, t.ctx.tlsBase, bin_.tlsInit.data(),
                       bin_.tlsInit.size());

    setupInitialStack(t);
    const AbiInfo &abi = AbiInfo::of(t.ctx.isa);
    XISA_CHECK(intArgs.size() <= abi.intArgRegs.size(),
               "too many thread arguments");
    for (size_t i = 0; i < intArgs.size(); ++i)
        t.ctx.gpr[abi.intArgRegs[i]] = intArgs[i];

    if (fd_)
        commitThread(t); // newborn threads are born committed
    ++threadSpawns_;
    liveThreads_.add(1);
#if XISA_TRACE
    if (obs::traceEnabled())
        obs::Tracer::global().nameTrack(t.tid,
                                        "tid" + std::to_string(t.tid));
#endif

    threads_.push_back(std::move(thread));
    return t.tid;
}

void
ReplicatedOS::load(int startNode)
{
    XISA_CHECK(!loaded_, "container already loaded");
    if (!bin_.alignedLayout)
        warn("loading an unaligned binary: migration is unsupported");
    for (const auto &img : bin_.buildDataImages())
        dsm_->populate(startNode, img.base, img.bytes.data(),
                       img.bytes.size());
    dsm_->broadcastWrite64(vm::kVdsoBase, 0);
    createThread(startNode, bin_.ir.entryFuncId, {});
    loaded_ = true;
}

void
ReplicatedOS::chargeKernel(OsThread &t, uint64_t cycles)
{
    NodeRuntime &nr = nodes_[static_cast<size_t>(t.node)];
    Core &core = nr.cores[static_cast<size_t>(t.core)];
    double t0 = coreTime(t.node, t.core);
    core.cycles += cycles;
    core.busyCycles += cycles;
    meter_.addBusy(t.node, t0, coreTime(t.node, t.core));
}

ReplicatedOS::OsThread *
ReplicatedOS::pickNext()
{
    lastRun_.resize(threads_.size(), 0);
    OsThread *best = nullptr;
    double bestTime = 0;
    for (auto &tp : threads_) {
        if (tp->state != ThreadState::Ready)
            continue;
        double ct = coreTime(tp->node, tp->core);
        if (!best || ct < bestTime ||
            (ct == bestTime && lastRun_[static_cast<size_t>(tp->tid)] <
                                   lastRun_[static_cast<size_t>(
                                       best->tid)])) {
            best = tp.get();
            bestTime = ct;
        }
    }
    if (best)
        lastRun_[static_cast<size_t>(best->tid)] = ++runSeq_;
    return best;
}

OsRunResult
ReplicatedOS::run()
{
    XISA_CHECK(loaded_, "run() before load()");
    while (!finished()) {
        pollFailures();
        OsThread *t = pickNext();
        if (!t)
            panic("deadlock: blocked threads but nothing runnable");
        runQuantum(*t);
        if (totalInstrs_ > cfg_.maxTotalInstrs)
            fatal("global instruction budget exceeded");
    }
    if (auditor_)
        auditor_->deepCheck("end_of_run");
    OsRunResult res;
    res.finished = true;
    res.exitedExplicitly = exited_;
    res.exitCode = exited_ ? exitCode_
                           : static_cast<int64_t>(threads_[0]->exitValue);
    res.output = output_;
    res.totalInstrs = totalInstrs_;
    res.makespanSeconds = now();
    return res;
}

bool
ReplicatedOS::runUntil(double seconds)
{
    XISA_CHECK(loaded_, "runUntil() before load()");
    while (!finished()) {
        pollFailures();
        OsThread *t = pickNext();
        if (!t)
            panic("deadlock: blocked threads but nothing runnable");
        if (coreTime(t->node, t->core) >= seconds)
            return true;
        runQuantum(*t);
        if (totalInstrs_ > cfg_.maxTotalInstrs)
            fatal("global instruction budget exceeded");
    }
    return false;
}

void
ReplicatedOS::runQuantum(OsThread &t)
{
    if (fd_) {
        // Kernel-entry commit point (DESIGN.md §9): if this node's
        // crash instant passes during the slice, the quantum is voided
        // back to exactly this state.
        commitThread(t);
        dsm_->journalCommit();
    }
    NodeRuntime &nr = nodes_[static_cast<size_t>(t.node)];
    Core &core = nr.cores[static_cast<size_t>(t.core)];
    double t0 = coreTime(t.node, t.core);
    ++quanta_;
#if XISA_TRACE
    const bool tracing = obs::traceEnabled();
    if (tracing) {
        // The ambient cursor lets the layers below (interpreter memory
        // accesses -> DSM faults) timestamp their own events.
        obs::setTraceCursor(t.tid, t0);
        obs::Tracer::global().begin(t.tid, "interp", "quantum", t0);
    }
#endif
    StepResult r = nr.interp->run(t.ctx, dsm_->port(t.node), core, nr.l2,
                                  cfg_.quantum);
    totalInstrs_ += r.instrsRun;
    instrsStat_.add(r.instrsRun);
#if XISA_TRACE
    if (tracing)
        obs::Tracer::global().end(t.tid, coreTime(t.node, t.core));
#endif
    meter_.addBusy(t.node, t0, coreTime(t.node, t.core));

    if (fd_ && fd_->crashed(t.node)) {
        // The node died mid-slice (its DSM traffic pushed the link
        // clock past its crash instant). The whole quantum is a zombie:
        // roll the thread back and tear the node down; recovery undoes
        // the zombie's page steals from the journal.
        ++quantaVoided_;
        int dead = t.node;
        rollbackThread(t);
        if (dsm_->nodeAlive(dead))
            dsm_->recoverDeadNode(dead);
        auditRecovery("quantum_voided");
        if (onQuantum)
            onQuantum(*this);
        return;
    }
    switch (r.reason) {
      case StopReason::Budget:
        break;
      case StopReason::Halt:
        finishThread(t, r.exitValue);
        break;
      case StopReason::BuiltinTrap:
        execBuiltin(t, r.trapFuncId);
        break;
      case StopReason::MigrateTrap:
        handleMigrateTrap(t, r.trapCallSite);
        break;
      case StopReason::Syscall:
        fatal("unexpected raw syscall %lld",
              static_cast<long long>(r.sysno));
    }
    if (fd_) {
        if (fd_->crashed(t.node)) {
            // Died during its own stop handling: either a builtin's
            // DSM traffic (Memcpy/Memset are the only builtins that
            // advance the clock, and they mutate no kernel maps, so
            // the committed snapshot is the complete rollback), or the
            // thread just migrated onto a node that died right after
            // the handoff (rollback returns it to the source; the seq
            // stays in the ledger marked destDied).
            ++quantaVoided_;
            int dead = t.node;
            rollbackThread(t);
            if (dsm_->nodeAlive(dead))
                dsm_->recoverDeadNode(dead);
            auditRecovery("builtin_voided");
        } else {
            // Kernel-exit commit point.
            commitThread(t);
            dsm_->journalCommit();
        }
    }
    if (onQuantum)
        onQuantum(*this);
}

void
ReplicatedOS::finishThread(OsThread &t, uint64_t exitValue)
{
    t.state = ThreadState::Done;
    t.exitValue = exitValue;
    liveThreads_.add(-1);
    double tFinish = coreTime(t.node, t.core);
    for (auto &other : threads_) {
        if (other->state == ThreadState::Blocked &&
            other->kcont.kind == KernelContinuation::Kind::Join &&
            other->kcont.joinTid == t.tid)
            wake(*other, tFinish);
    }
}

void
ReplicatedOS::wake(OsThread &t, double atTime)
{
    XISA_CHECK(t.state == ThreadState::Blocked, "wake of runnable thread");
    // Complete the kernel service on the kernel it started on (the
    // heterogeneous continuation), then return to user space.
    nodes_[static_cast<size_t>(t.node)].interp->finishTrap(
        t.ctx, Type::Void, 0, 0);
    t.kcont.kind = KernelContinuation::Kind::None;
    t.kcont.pendingBuiltin = 0;
    t.state = ThreadState::Ready;
    setCoreTimeAtLeast(t.node, t.core, atTime);
    // The context advanced outside the thread's own quantum; re-commit
    // so a later rollback does not replay the completed kernel service.
    // (No clock ticks can intervene between this and the waker's own
    // end-of-quantum commit, so committing here is crash-atomic.)
    if (fd_)
        commitThread(t);
}

void
ReplicatedOS::execBuiltin(OsThread &t, uint32_t funcId)
{
    const IRFunction &callee = bin_.ir.func(funcId);
    NodeRuntime &nr = nodes_[static_cast<size_t>(t.node)];
    Interp &in = *nr.interp;
    std::vector<int64_t> args = in.readTrapArgs(t.ctx, callee);
    ++builtinCalls_;
#if XISA_TRACE
    const bool tracing = obs::traceEnabled();
    if (tracing) {
        double bt0 = coreTime(t.node, t.core);
        obs::setTraceCursor(t.tid, bt0);
        if (builtinSpanNames_.size() <= funcId)
            builtinSpanNames_.resize(bin_.ir.functions.size());
        const char *&span = builtinSpanNames_[funcId];
        if (!span)
            span = obs::intern(callee.name);
        obs::Tracer::global().begin(t.tid, "os", span, bt0);
    }
#endif
    chargeKernel(t, nr.spec.cost(MOp::SysCall));

    switch (callee.builtin) {
      case Builtin::Malloc: {
        uint64_t want = alignUp64(
            std::max<uint64_t>(static_cast<uint64_t>(args[0]), 16), 16);
        uint64_t addr = 0;
        auto it = freeLists_.find(want);
        if (it != freeLists_.end() && !it->second.empty()) {
            addr = it->second.back();
            it->second.pop_back();
        } else {
            addr = heapBrk_;
            heapBrk_ += want;
            if (heapBrk_ >= vm::kTlsBase)
                fatal("heap exhausted");
        }
        allocSizes_[addr] = want;
        in.finishTrap(t.ctx, Type::Ptr, static_cast<int64_t>(addr), 0);
        break;
      }
      case Builtin::Free: {
        uint64_t addr = static_cast<uint64_t>(args[0]);
        if (addr != 0) {
            auto it = allocSizes_.find(addr);
            if (it == allocSizes_.end())
                fatal("free() of non-heap pointer 0x%llx",
                      static_cast<unsigned long long>(addr));
            freeLists_[it->second].push_back(addr);
            allocSizes_.erase(it);
        }
        in.finishTrap(t.ctx, Type::Void, 0, 0);
        break;
      }
      case Builtin::PrintI64:
        output_.push_back(strfmt("%lld", static_cast<long long>(args[0])));
        in.finishTrap(t.ctx, Type::Void, 0, 0);
        break;
      case Builtin::PrintF64: {
        double d;
        std::memcpy(&d, &args[0], 8);
        output_.push_back(strfmt("%.6g", d));
        in.finishTrap(t.ctx, Type::Void, 0, 0);
        break;
      }
      case Builtin::Memcpy: {
        uint64_t dst = static_cast<uint64_t>(args[0]);
        uint64_t src = static_cast<uint64_t>(args[1]);
        uint64_t n = static_cast<uint64_t>(args[2]);
        std::vector<uint8_t> buf(static_cast<size_t>(n));
        uint64_t extra = dsm_->pull(t.node, src, buf.data(), buf.size());
        extra += dsm_->poke(t.node, dst, buf.data(), buf.size());
        chargeKernel(t, extra + n / 4 * nr.spec.cost(MOp::Ldr));
        in.finishTrap(t.ctx, Type::Void, 0, 0);
        break;
      }
      case Builtin::Memset: {
        uint64_t dst = static_cast<uint64_t>(args[0]);
        uint64_t n = static_cast<uint64_t>(args[2]);
        std::vector<uint8_t> buf(static_cast<size_t>(n),
                                 static_cast<uint8_t>(args[1]));
        uint64_t extra = dsm_->poke(t.node, dst, buf.data(), buf.size());
        chargeKernel(t, extra + n / 8 * nr.spec.cost(MOp::Str));
        in.finishTrap(t.ctx, Type::Void, 0, 0);
        break;
      }
      case Builtin::ThreadSpawn: {
        uint64_t fnAddr = static_cast<uint64_t>(args[0]);
        CodeLoc loc = in.codeMap().resolve(fnAddr);
        XISA_CHECK(loc.instrIdx == 0, "thread entry mid-function");
        int child = createThread(t.node, loc.funcId,
                                 {static_cast<uint64_t>(args[1])});
        OsThread &ct = *threads_[static_cast<size_t>(child)];
        setCoreTimeAtLeast(ct.node, ct.core, coreTime(t.node, t.core));
        in.finishTrap(t.ctx, Type::I64, child, 0);
        break;
      }
      case Builtin::ThreadJoin: {
        int target = static_cast<int>(args[0]);
        if (target < 0 || target >= static_cast<int>(threads_.size()))
            fatal("join of unknown thread %d", target);
        if (threads_[static_cast<size_t>(target)]->state ==
            ThreadState::Done) {
            in.finishTrap(t.ctx, Type::Void, 0, 0);
        } else {
            t.state = ThreadState::Blocked;
            t.kcont.kind = KernelContinuation::Kind::Join;
            t.kcont.joinTid = target;
            t.kcont.isa = t.ctx.isa;
            t.kcont.node = t.node;
            t.kcont.pendingBuiltin = funcId;
        }
        break;
      }
      case Builtin::BarrierWait: {
        int64_t key = args[0];
        int64_t count = args[1];
        Barrier &b = barriers_[key];
        if (b.needed == 0)
            b.needed = count;
        else if (b.needed != count)
            fatal("barrier %lld joined with inconsistent count",
                  static_cast<long long>(key));
        b.waiting.push_back(t.tid);
        if (static_cast<int64_t>(b.waiting.size()) == b.needed) {
            double releaseTime = coreTime(t.node, t.core);
            // Everyone leaves together; the last arriver just resumes.
            for (int tid : b.waiting) {
                OsThread &w = *threads_[static_cast<size_t>(tid)];
                if (tid == t.tid) {
                    in.finishTrap(t.ctx, Type::Void, 0, 0);
                } else {
                    wake(w, releaseTime);
                }
            }
            barriers_.erase(key);
        } else {
            t.state = ThreadState::Blocked;
            t.kcont.kind = KernelContinuation::Kind::Barrier;
            t.kcont.barrierKey = key;
            t.kcont.isa = t.ctx.isa;
            t.kcont.node = t.node;
            t.kcont.pendingBuiltin = funcId;
        }
        break;
      }
      case Builtin::Exit:
        exited_ = true;
        exitCode_ = args[0];
        for (auto &tp : threads_)
            tp->state = ThreadState::Done;
        liveThreads_.set(0);
        break;
      case Builtin::ThreadId:
        in.finishTrap(t.ctx, Type::I64, t.tid, 0);
        break;
      case Builtin::NodeId:
        in.finishTrap(t.ctx, Type::I64, t.node, 0);
        break;
      case Builtin::None:
        panic("builtin trap on non-builtin function");
    }
#if XISA_TRACE
    if (tracing)
        obs::Tracer::global().end(t.tid, coreTime(t.node, t.core));
#endif
}

std::vector<std::pair<uint64_t, uint64_t>>
ReplicatedOS::heapObjects() const
{
    std::vector<std::pair<uint64_t, uint64_t>> out;
    out.reserve(allocSizes_.size());
    for (const auto &[addr, size] : allocSizes_)
        out.emplace_back(addr, size);
    return out;
}

double
ReplicatedOS::l1iMissRatio(int node) const
{
    CacheStats total;
    for (const Core &c : nodes_[static_cast<size_t>(node)].cores) {
        total.accesses += c.l1i.stats().accesses;
        total.misses += c.l1i.stats().misses;
    }
    return total.missRatio();
}

double
ReplicatedOS::l1dMissRatio(int node) const
{
    CacheStats total;
    for (const Core &c : nodes_[static_cast<size_t>(node)].cores) {
        total.accesses += c.l1d.stats().accesses;
        total.misses += c.l1d.stats().misses;
    }
    return total.missRatio();
}

void
ReplicatedOS::updateVdsoFlag()
{
    bool pending = false;
    for (const auto &tp : threads_)
        pending |= tp->migrationTarget >= 0 &&
                   tp->state != ThreadState::Done;
    dsm_->broadcastWrite64(vm::kVdsoBase, pending ? 1 : 0);
}

void
ReplicatedOS::migrateProcess(int destNode)
{
    for (auto &tp : threads_)
        if (tp->state != ThreadState::Done)
            migrateThread(tp->tid, destNode);
}

void
ReplicatedOS::migrateThread(int tid, int destNode)
{
    OsThread &t = *threads_[static_cast<size_t>(tid)];
    if (t.state == ThreadState::Done)
        return;
    XISA_CHECK(destNode >= 0 &&
                   destNode < static_cast<int>(nodes_.size()),
               "bad destination node");
    if (fd_ && !dsm_->nodeAlive(destNode))
        return; // migration requests aimed at a dead kernel are ignored
    t.migrationTarget = destNode;
    // Response time is measured on the thread's own clock: cores
    // advance asynchronously, so the global max would overstate it.
    t.migrationRequestTime = coreTime(t.node, t.core);
    ++migrateRequests_;
    OBS_TRACE_INSTANT(t.tid, "sched", "migrate_request",
                      t.migrationRequestTime);
    updateVdsoFlag();
}

void
ReplicatedOS::handleMigrateTrap(OsThread &t, uint32_t siteId)
{
    NodeRuntime &src = nodes_[static_cast<size_t>(t.node)];
    int dest = t.migrationTarget;
    if (fd_ && dest >= 0 && !dsm_->nodeAlive(dest)) {
        // The target kernel died since the request: cancel it.
        t.migrationTarget = -1;
        dest = -1;
        updateVdsoFlag();
    }
    if (dest < 0 || dest == t.node) {
        // Spurious check (flag was set for some other thread).
        ++spuriousMigrateTraps_;
        OBS_TRACE_INSTANT(t.tid, "os.migrate", "spurious_trap",
                          coreTime(t.node, t.core));
        src.interp->finishTrap(t.ctx, Type::Void, 0, 0);
        return;
    }
    if (perturb_ && perturb_->deferMigrationTrap()) {
        // Schedule perturbation: the trap is taken one migration point
        // later, exploring migration-vs-fault interleavings the default
        // schedule never reaches. The request stays pending.
        src.interp->finishTrap(t.ctx, Type::Void, 0, 0);
        return;
    }
    if (fd_) {
        // The handoff is a commit point: the shipped context is the
        // thread's at-trap state, so the journal must hold at-trap
        // page content. Without this refresh, a crash on either side
        // of the delivery would revive the source's pages at the older
        // kernel-entry commit while the thread resumes past writes
        // those frames have never seen.
        commitThread(t);
        dsm_->journalCommit();
    }
    NodeRuntime &dst = nodes_[static_cast<size_t>(dest)];
    MigrationEvent ev;
    ev.tid = t.tid;
    ev.fromNode = t.node;
    ev.toNode = dest;
    ev.siteId = siteId;
    ev.requestTime = t.migrationRequestTime;
    ev.trapTime = coreTime(t.node, t.core);
    OBS_TRACE_BEGIN(t.tid, "os.migrate", "migrate", ev.trapTime);

    ThreadContext newCtx;
    if (dst.spec.isa != t.ctx.isa) {
        // User-space stack transformation on the source node
        // (Section 5.3), then the kernel thread-migration service.
        OBS_TRACE_BEGIN(t.tid, "stacktransform", "transform",
                        ev.trapTime);
#if XISA_TRACE
        if (obs::traceEnabled())
            obs::setTraceCursor(t.tid, ev.trapTime);
#endif
        TransformStats stats;
        newCtx = xform_.transform(t.ctx, siteId, dst.spec.isa, *dsm_,
                                  t.node, vm::stackTop(t.stackSlot),
                                  &stats);
        chargeKernel(t, StackTransformer::costCycles(stats, src.spec) +
                            stats.cycles);
        OBS_TRACE_END(t.tid, coreTime(t.node, t.core));
        ev.transform = stats;
        if (auditor_)
            auditor_->auditStackRoundTrip(xform_, t.ctx, newCtx, siteId,
                                          t.node,
                                          vm::stackTop(t.stackSlot));
    } else {
        // Homogeneous-ISA migration: state moves unmodified.
        newCtx = t.ctx;
        ++newCtx.pc.instrIdx; // resume after the migration call-out
    }
    newCtx.instrs = t.ctx.instrs;
    newCtx.cycles = t.ctx.cycles;
    newCtx.dsmExtraCycles = t.ctx.dsmExtraCycles;

    // Ship the transformed context. The source keeps its copy until the
    // destination acks, so a duplicated delivery just re-installs the
    // same context (idempotent) and a lost one is retried -- the thread
    // can never be lost or duplicated. After migrationRetryLimit failed
    // attempts the migration aborts and the thread resumes here. Under
    // crash tolerance every handoff carries a per-thread sequence
    // number recorded in the ledger, and a crash on either side of the
    // delivery resolves to the thread existing on exactly one kernel
    // (DESIGN.md §9).
    double srcDone = coreTime(t.node, t.core);
    OBS_TRACE_BEGIN(t.tid, "os.migrate", "send_context", srcDone);
    const RetryPolicy &retry = net_.retryPolicy();
    size_t ledgerIdx = 0;
    if (fd_) {
        MigrationLedgerEntry rec;
        rec.tid = t.tid;
        rec.seq = ++t.migrationSeq;
        rec.source = t.node;
        rec.dest = dest;
        ledgerIdx = migrationLedger_.size();
        migrationLedger_.push_back(rec);
    }
    double sendSeconds = 0;
    bool delivered = false;
    bool sourceCrashedPreShip = false;
    for (int attempt = 1; attempt <= cfg_.migrationRetryLimit;
         ++attempt) {
        if (fd_) {
            fd_->onMigrationShip();
            if (fd_->crashed(t.node)) {
                // The source died with the context still local: this
                // ship never happened.
                sourceCrashedPreShip = true;
                break;
            }
        }
        Interconnect::SendResult r =
            fd_ ? net_.sendTo(dest, kContextMsgBytes, dst.spec.freqGHz)
                : net_.send(kContextMsgBytes, dst.spec.freqGHz);
        sendSeconds += r.seconds;
        if (r.status == SendStatus::Delivered) {
            if (fd_)
                fd_->onMigrationShipDone();
            delivered = true;
            break;
        }
        ++migrationRetries_;
        sendSeconds +=
            (retry.timeoutUs + retry.backoffForAttempt(attempt)) * 1e-6;
        if (fd_ && fd_->dead(dest))
            break; // destination declared dead: stop retrying
    }
    OBS_TRACE_END(t.tid, srcDone + sendSeconds);
    if (fd_ && !delivered &&
        (sourceCrashedPreShip || fd_->crashed(t.node))) {
        // Source crashed before the context reached the wire. The seq
        // was never applied anywhere; recover the thread from its
        // committed at-trap snapshot on a surviving kernel. Replaying
        // from the trap re-raises the (now spurious) migration trap and
        // execution continues.
        OBS_TRACE_INSTANT(t.tid, "os.migrate", "source_crash",
                          srcDone + sendSeconds);
        int deadSrc = t.node;
        rollbackThread(t);
        t.migrationTarget = -1;
        if (dsm_->nodeAlive(deadSrc))
            dsm_->recoverDeadNode(deadSrc);
        auditRecovery("migration_source_crash");
        return;
    }
    if (fd_ && !delivered && fd_->dead(dest) && dsm_->nodeAlive(dest)) {
        // Destination died mid-handoff and the context never landed:
        // recover the dead kernel; the abort path below keeps the
        // thread runnable on the source -- it exists exactly once.
        dsm_->recoverDeadNode(dest);
    }
    if (!delivered) {
        // Clean abort: discard the transformed context, charge the
        // wasted send time, and leave the thread runnable on the
        // source. The scheduler may re-request the migration.
        ++migrationAborts_;
        OBS_TRACE_INSTANT(t.tid, "os.migrate", "abort",
                          srcDone + sendSeconds);
        chargeKernel(t, static_cast<uint64_t>(
                            sendSeconds * src.spec.freqGHz * 1e9));
        t.migrationTarget = -1;
        updateVdsoFlag();
        src.interp->finishTrap(t.ctx, Type::Void, 0, 0);
        return;
    }
    if (fd_)
        migrationLedger_[ledgerIdx].applied = true;
    // TLB shootdown on both kernels: the thread's working set is about
    // to be pulled across, so cached translations on either side must
    // not short-circuit the coherence traffic the move will cause.
    dsm_->flushTlb(t.node);
    dsm_->flushTlb(dest);
    t.node = dest;
    t.core = pickCore(dest);
    t.ctx = newCtx;
    // Heterogeneous continuation: kernel-side state is recreated on the
    // destination kernel rather than migrated.
    t.kcont = KernelContinuation{};
    t.kcont.isa = dst.spec.isa;
    t.kcont.node = dest;
    setCoreTimeAtLeast(t.node, t.core, srcDone + sendSeconds);
    t.migrationTarget = -1;
    updateVdsoFlag();

    ev.resumeTime = coreTime(t.node, t.core);
    OBS_TRACE_END(t.tid, ev.resumeTime);
    ++migrationsDone_;
    migrateResponseUs_.add((ev.resumeTime - ev.requestTime) * 1e6);
    migrations_.push_back(ev);
    if (fd_ && fd_->crashed(ev.fromNode) &&
        dsm_->nodeAlive(ev.fromNode)) {
        // Crash between state-ship and ack: the context was installed
        // at the destination, so the thread lives exactly once, there;
        // the dead source is torn down around it.
        OBS_TRACE_INSTANT(t.tid, "os.migrate", "source_crash_after_ship",
                          ev.resumeTime);
        dsm_->recoverDeadNode(ev.fromNode);
        auditRecovery("migration_source_crash_after_ship");
    }
    if (auditor_)
        auditor_->deepCheck("migration");
}

// ---- Crash tolerance (DESIGN.md §9) ---------------------------------

bool
ReplicatedOS::nodeAlive(int node) const
{
    return dsm_->nodeAlive(node);
}

void
ReplicatedOS::commitThread(OsThread &t)
{
    t.committedCtx = t.ctx;
    t.committedNode = t.node;
}

void
ReplicatedOS::rollbackThread(OsThread &t)
{
    t.ctx = t.committedCtx;
    if (t.node != t.committedNode) {
        // Rolling back across a migration: the thread returns to its
        // committed home with a fresh kernel continuation there.
        t.node = t.committedNode;
        t.core = pickCore(t.node);
        t.kcont = KernelContinuation{};
        t.kcont.isa = t.ctx.isa;
        t.kcont.node = t.node;
    }
}

void
ReplicatedOS::pollFailures()
{
    if (!fd_)
        return;
    // Heartbeats ride the un-faulted control channel: one round per
    // scheduling decision. A peer whose crash instant passed stops
    // answering and is declared dead after the (jittered) miss budget.
    fd_->heartbeatRound();
    for (int n = 0; n < static_cast<int>(nodes_.size()); ++n)
        if (fd_->dead(n) && dsm_->nodeAlive(n))
            dsm_->recoverDeadNode(n);
}

void
ReplicatedOS::onNodeDeath(int dead)
{
    // Invoked by the DSM once the directory is reconstructed and every
    // orphaned page has a live home: this is the kernel-side half.
    for (auto &rec : migrationLedger_)
        if (rec.dest == dead && rec.applied)
            rec.destDied = true;
    for (auto &tp : threads_) {
        OsThread &t = *tp;
        if (t.state == ThreadState::Done)
            continue;
        if (t.migrationTarget == dead) {
            t.migrationTarget = -1; // cancel requests aimed at the dead
        }
        if (t.node != dead)
            continue;
        // Re-home from the committed (crash-consistent) snapshot onto
        // the lowest-id same-ISA survivor. Heterogeneous re-homing
        // would need a stack transform of a context only the dead
        // kernel could parse -- fail-stop forbids it, matching the
        // checkpoint/restore baseline's homogeneous-only limitation.
        t.ctx = t.committedCtx;
        int target = -1;
        for (int n = 0; n < static_cast<int>(nodes_.size()); ++n) {
            if (n != dead && dsm_->nodeAlive(n) &&
                nodes_[static_cast<size_t>(n)].spec.isa == t.ctx.isa) {
                target = n;
                break;
            }
        }
        if (target < 0)
            fatal("node %d died holding thread %d and no same-ISA "
                  "kernel survives: cannot re-home an ISA-%d context "
                  "(DESIGN.md section 9)",
                  dead, t.tid, static_cast<int>(t.ctx.isa));
        double was = coreTime(t.node, t.core);
        t.node = target;
        t.core = pickCore(target);
        t.committedNode = target;
        t.kcont.node = target;
        setCoreTimeAtLeast(target, t.core, was);
        ++threadsRecovered_;
        OBS_TRACE_INSTANT(t.tid, "os", "thread_recovered", was);
    }
    updateVdsoFlag();
    auditRecovery("node_death");
}

void
ReplicatedOS::auditRecovery(const char *where)
{
    if (!auditor_ || !fd_)
        return;
    for (const auto &tp : threads_)
        if (tp->state != ThreadState::Done &&
            !dsm_->nodeAlive(tp->node))
            auditor_->violation(
                where, strfmt("thread %d is live on dead node %d",
                              tp->tid, tp->node));
    // Exactly-once handoff: per thread the ledger seqs are strictly
    // increasing (each handoff attempt drew a fresh seq) and no seq was
    // applied to a kernel that is still alive more than once.
    std::vector<uint64_t> lastSeq(threads_.size(), 0);
    for (const MigrationLedgerEntry &rec : migrationLedger_) {
        size_t tid = static_cast<size_t>(rec.tid);
        if (rec.seq <= lastSeq[tid])
            auditor_->violation(
                where,
                strfmt("migration seq %llu of thread %d not "
                       "strictly increasing",
                       static_cast<unsigned long long>(rec.seq),
                       rec.tid));
        lastSeq[tid] = rec.seq;
        if (rec.applied && !rec.destDied &&
            !dsm_->nodeAlive(rec.dest))
            auditor_->violation(
                where,
                strfmt("migration seq %llu of thread %d applied at "
                       "node %d which died, but the ledger was never "
                       "reconciled",
                       static_cast<unsigned long long>(rec.seq),
                       rec.tid, rec.dest));
    }
}

} // namespace xisa
