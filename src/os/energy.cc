#include "os/energy.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace xisa {

EnergyMeter::EnergyMeter(std::vector<NodeSpec> specs, double binSeconds)
    : specs_(std::move(specs)), binSeconds_(binSeconds)
{
    if (binSeconds_ <= 0)
        fatal("EnergyMeter bin width must be positive");
    busy_.resize(specs_.size());
}

void
EnergyMeter::addBusy(int node, double t0, double t1)
{
    if (t1 <= t0)
        return;
    auto &bins = busy_[static_cast<size_t>(node)];
    size_t first = static_cast<size_t>(t0 / binSeconds_);
    size_t last = static_cast<size_t>(t1 / binSeconds_);
    if (bins.size() <= last)
        bins.resize(last + 1, 0.0);
    for (size_t b = first; b <= last; ++b) {
        double lo = std::max(t0, static_cast<double>(b) * binSeconds_);
        double hi =
            std::min(t1, static_cast<double>(b + 1) * binSeconds_);
        if (hi > lo)
            bins[b] += hi - lo;
    }
}

double
EnergyMeter::busySeconds(int node) const
{
    double total = 0;
    for (double b : busy_[static_cast<size_t>(node)])
        total += b;
    return total;
}

double
EnergyMeter::utilization(int node, size_t bin) const
{
    const auto &bins = busy_[static_cast<size_t>(node)];
    if (bin >= bins.size())
        return 0.0;
    double cap = binSeconds_ * specs_[static_cast<size_t>(node)].cores;
    return std::min(1.0, bins[bin] / cap);
}

std::vector<double>
EnergyMeter::powerSeries(int node, double horizon, double scale) const
{
    size_t nbins = static_cast<size_t>(std::ceil(horizon / binSeconds_));
    std::vector<double> out(nbins);
    const NodeSpec &s = specs_[static_cast<size_t>(node)];
    for (size_t b = 0; b < nbins; ++b)
        out[b] = s.power(utilization(node, b), scale);
    return out;
}

double
EnergyMeter::energyJoules(int node, double horizon, double scale) const
{
    double e = 0;
    for (double p : powerSeries(node, horizon, scale))
        e += p * binSeconds_;
    return e;
}

} // namespace xisa
