/**
 * @file
 * Container checkpoint/restore (the CRIU analog of Section 8).
 *
 * Checkpoints capture a container between scheduling quanta, where
 * every thread context is architecturally consistent. Unlike live
 * migration, a checkpoint copies the ENTIRE memory image eagerly --
 * which is exactly the overhead the paper's seamless thread migration
 * avoids ("without the overheads of checkpoint/restore mechanisms").
 */

#include <cstring>

#include "check/audit.hh"
#include "os/os.hh"
#include "util/bytes.hh"
#include "util/logging.hh"

namespace xisa {

namespace {

constexpr uint32_t kCkptMagic = 0x544b4358; // "XCKT"
// v2: the DSM section carries the protocol counters, so a restored
// container's stats()/registry state matches the checkpointed one.
constexpr uint32_t kCkptVersion = 2;

void
writeContext(ByteWriter &w, const ThreadContext &ctx)
{
    for (uint64_t g : ctx.gpr)
        w.u64(g);
    for (double f : ctx.fpr)
        w.f64(f);
    w.u8(ctx.flags.eq);
    w.u8(ctx.flags.lt);
    w.u8(ctx.flags.ult);
    w.u32(ctx.pc.funcId);
    w.u32(ctx.pc.instrIdx);
    w.u64(ctx.tlsBase);
    w.u8(static_cast<uint8_t>(ctx.isa));
    w.u64(ctx.instrs);
    w.u64(ctx.cycles);
    w.u64(ctx.dsmExtraCycles);
}

ThreadContext
readContext(ByteReader &r)
{
    ThreadContext ctx;
    for (uint64_t &g : ctx.gpr)
        g = r.u64();
    for (double &f : ctx.fpr)
        f = r.f64();
    ctx.flags.eq = r.u8();
    ctx.flags.lt = r.u8();
    ctx.flags.ult = r.u8();
    ctx.pc.funcId = r.u32();
    ctx.pc.instrIdx = r.u32();
    ctx.tlsBase = r.u64();
    ctx.isa = static_cast<IsaId>(r.u8());
    ctx.instrs = r.u64();
    ctx.cycles = r.u64();
    ctx.dsmExtraCycles = r.u64();
    return ctx;
}

} // namespace

std::vector<uint8_t>
ReplicatedOS::checkpoint() const
{
    XISA_CHECK(loaded_, "checkpoint of an unloaded container");
    ByteWriter w;
    w.u32(kCkptMagic);
    w.u32(kCkptVersion);
    // Fingerprint: the restoring container must run the same program
    // on the same pool.
    w.str(bin_.name);
    w.u32(static_cast<uint32_t>(bin_.ir.functions.size()));
    w.u32(static_cast<uint32_t>(nodes_.size()));
    for (const NodeRuntime &nr : nodes_) {
        w.u8(static_cast<uint8_t>(nr.spec.isa));
        w.u32(static_cast<uint32_t>(nr.cores.size()));
    }

    // Threads.
    w.u32(static_cast<uint32_t>(threads_.size()));
    for (const auto &tp : threads_) {
        const OsThread &t = *tp;
        w.u32(static_cast<uint32_t>(t.tid));
        writeContext(w, t.ctx);
        w.u8(static_cast<uint8_t>(t.state));
        w.u32(static_cast<uint32_t>(t.node));
        w.u32(static_cast<uint32_t>(t.core));
        w.u32(t.stackSlot);
        w.u8(static_cast<uint8_t>(t.kcont.kind));
        w.u32(static_cast<uint32_t>(t.kcont.joinTid));
        w.i64(t.kcont.barrierKey);
        w.u8(static_cast<uint8_t>(t.kcont.isa));
        w.u32(static_cast<uint32_t>(t.kcont.node));
        w.u32(t.kcont.pendingBuiltin);
        w.u64(t.exitValue);
        w.u32(static_cast<uint32_t>(t.migrationTarget + 1));
        w.f64(t.migrationRequestTime);
    }

    // Core clocks (cache state is deliberately not captured).
    for (const NodeRuntime &nr : nodes_) {
        for (const Core &c : nr.cores) {
            w.u64(c.cycles);
            w.u64(c.instrs);
            w.u64(c.busyCycles);
        }
    }

    // Kernel services.
    w.u64(heapBrk_);
    w.u32(static_cast<uint32_t>(allocSizes_.size()));
    for (const auto &[addr, size] : allocSizes_) {
        w.u64(addr);
        w.u64(size);
    }
    w.u32(static_cast<uint32_t>(freeLists_.size()));
    for (const auto &[size, addrs] : freeLists_) {
        w.u64(size);
        w.list(addrs, [&](uint64_t a) { w.u64(a); });
    }
    w.u32(static_cast<uint32_t>(barriers_.size()));
    for (const auto &[key, b] : barriers_) {
        w.i64(key);
        w.i64(b.needed);
        w.list(b.waiting, [&](int tid) {
            w.u32(static_cast<uint32_t>(tid));
        });
    }
    w.u32(static_cast<uint32_t>(output_.size()));
    for (const std::string &s : output_)
        w.str(s);
    w.u64(totalInstrs_);
    w.u32(nextStackSlot_);
    w.u8(exited_);
    w.i64(exitCode_);

    // Memory (all pages on every kernel, protocol state included).
    dsm_->saveState(w);
    return std::move(w.out);
}

void
ReplicatedOS::restore(const std::vector<uint8_t> &bytes)
{
    XISA_CHECK(!loaded_, "restore into an already-loaded container");
    ByteReader r(bytes);
    if (r.u32() != kCkptMagic)
        fatal("not a container checkpoint (bad magic)");
    if (uint32_t v = r.u32(); v != kCkptVersion)
        fatal("unsupported checkpoint version %u", v);
    if (r.str() != bin_.name)
        fatal("checkpoint is for a different binary");
    if (r.u32() != bin_.ir.functions.size())
        fatal("checkpoint binary shape mismatch");
    if (r.u32() != nodes_.size())
        fatal("checkpoint node count mismatch");
    for (const NodeRuntime &nr : nodes_) {
        if (static_cast<IsaId>(r.u8()) != nr.spec.isa)
            fatal("checkpoint node ISA mismatch");
        if (r.u32() != nr.cores.size())
            fatal("checkpoint core count mismatch");
    }

    uint32_t numThreads = r.u32();
    threads_.clear();
    for (uint32_t i = 0; i < numThreads; ++i) {
        auto tp = std::make_unique<OsThread>();
        OsThread &t = *tp;
        t.tid = static_cast<int>(r.u32());
        t.ctx = readContext(r);
        t.state = static_cast<ThreadState>(r.u8());
        t.node = static_cast<int>(r.u32());
        t.core = static_cast<int>(r.u32());
        t.stackSlot = r.u32();
        t.kcont.kind = static_cast<KernelContinuation::Kind>(r.u8());
        t.kcont.joinTid = static_cast<int>(r.u32());
        t.kcont.barrierKey = r.i64();
        t.kcont.isa = static_cast<IsaId>(r.u8());
        t.kcont.node = static_cast<int>(r.u32());
        t.kcont.pendingBuiltin = r.u32();
        t.exitValue = r.u64();
        t.migrationTarget = static_cast<int>(r.u32()) - 1;
        t.migrationRequestTime = r.f64();
        threads_.push_back(std::move(tp));
    }

    for (NodeRuntime &nr : nodes_) {
        for (Core &c : nr.cores) {
            c.cycles = r.u64();
            c.instrs = r.u64();
            c.busyCycles = r.u64();
        }
    }

    heapBrk_ = r.u64();
    allocSizes_.clear();
    for (uint32_t i = 0, n = r.u32(); i < n; ++i) {
        uint64_t addr = r.u64();
        allocSizes_[addr] = r.u64();
    }
    freeLists_.clear();
    for (uint32_t i = 0, n = r.u32(); i < n; ++i) {
        uint64_t size = r.u64();
        freeLists_[size] =
            r.list<uint64_t>([&] { return r.u64(); });
    }
    barriers_.clear();
    for (uint32_t i = 0, n = r.u32(); i < n; ++i) {
        int64_t key = r.i64();
        Barrier b;
        b.needed = r.i64();
        b.waiting = r.list<int>(
            [&] { return static_cast<int>(r.u32()); });
        barriers_[key] = std::move(b);
    }
    output_.clear();
    for (uint32_t i = 0, n = r.u32(); i < n; ++i)
        output_.push_back(r.str());
    totalInstrs_ = r.u64();
    nextStackSlot_ = r.u32();
    exited_ = r.u8();
    exitCode_ = r.i64();

    dsm_->loadState(r);
    if (!r.done())
        fatal("trailing garbage after checkpoint payload");
    loaded_ = true;
    // Checkpoints predate the crash-tolerance snapshots: a restored
    // thread is committed as-restored.
    if (fd_)
        for (auto &tp : threads_)
            commitThread(*tp);
    if (auditor_)
        auditor_->deepCheck("restore");
}

} // namespace xisa
