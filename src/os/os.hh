/**
 * @file
 * The replicated-kernel OS model (Sections 4 and 5.1).
 *
 * A ReplicatedOS hosts one heterogeneous OS-container: one process whose
 * threads may run on any of a set of kernels, each kernel natively
 * driving one node (ISA + cores + caches + power model). Kernels share
 * no state; cross-kernel effects (page movement, thread migration,
 * invalidations) go through the Interconnect cost model, mirroring
 * Popcorn's message-passing design.
 *
 * Implemented OS services:
 *  - heterogeneous binary loader: installs the data image and aliases
 *    the per-ISA .text (each node's interpreter executes its own image
 *    under the same virtual addresses);
 *  - hDSM (dsm/): on-demand page coherence between kernels;
 *  - thread migration service: carries a transformed thread context to
 *    the destination kernel and resumes it there;
 *  - heterogeneous continuations: per-ISA kernel-side state is never
 *    migrated -- a thread blocked in a kernel service (barrier/join)
 *    completes that service on its current kernel and can only migrate
 *    at its next user-space migration point;
 *  - the "libc" builtins (malloc, threads, barriers, memcpy, ...),
 *    executed natively by the kernel, during which threads cannot
 *    migrate (the paper's Section 5.4 limitation);
 *  - the vDSO migration-flag page shared between scheduler and threads.
 */

#ifndef XISA_OS_OS_HH
#define XISA_OS_OS_HH

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "binary/multibinary.hh"
#include "core/stacktransform.hh"
#include "dsm/dsm.hh"
#include "machine/interp.hh"
#include "machine/node.hh"
#include "obs/registry.hh"
#include "os/energy.hh"

namespace xisa {

namespace check {
class InvariantAuditor;
class SchedulePerturber;
} // namespace check

/** Configuration of the node pool and kernel parameters. */
struct OsConfig {
    std::vector<NodeSpec> nodes;
    Interconnect::Config net;
    /** Scheduler time slice, in instructions. */
    uint64_t quantum = 4000;
    /** Global instruction budget (runaway guard). */
    uint64_t maxTotalInstrs = 1ull << 62;
    /** Enable per-machine-instruction profiling in the interpreters. */
    bool profile = false;
    /** Memory-sharing strategy (RemoteAccess for the hDSM ablation). */
    DsmMode dsmMode = DsmMode::MigratePages;
    /**
     * Attempts to deliver the thread-context message before a migration
     * aborts (the thread stays runnable on the source; the scheduler
     * may re-request). Page faults instead retry until the link heals:
     * a fault cannot abort. Only reachable when net.faults is set.
     */
    int migrationRetryLimit = 8;
    /** Energy-meter sampling grid (default: the paper's 100 Hz DAQ). */
    double energyBinSeconds = 0.01;
    /**
     * Crash tolerance (DESIGN.md §9): failure detector, page journal,
     * directory reconstruction, and exactly-once migration handoff.
     * Disabled by default; the disabled configuration is bit-identical
     * to a build without the layer (golden-guarded).
     */
    RecoveryConfig recovery;
    /**
     * Optional shared cache of predecoded streams and lowered
     * superblocks (DESIGN.md §10). Sweep drivers that construct many
     * containers from one binary (bench::runSweep) hand the same cache
     * to every container, so each (ISA, function, timing-signature)
     * artifact is built once per process instead of once per cell.
     * Null (the default) keeps per-interpreter private artifacts.
     */
    std::shared_ptr<ExecCache> execCache;

    /** Two-node ARM + x86 testbed matching the paper's setup. */
    static OsConfig dualServer();
};

/** A completed migration, for experiment harnesses. */
struct MigrationEvent {
    int tid = 0;
    int fromNode = 0;
    int toNode = 0;
    uint32_t siteId = 0;
    double requestTime = 0;   ///< when the scheduler set the flag
    double trapTime = 0;      ///< when the thread reached a point
    double resumeTime = 0;    ///< when it resumed on the destination
    TransformStats transform;
};

/** Result of running a container to completion. */
struct OsRunResult {
    bool finished = false;
    int64_t exitCode = 0;
    bool exitedExplicitly = false;
    std::vector<std::string> output;
    uint64_t totalInstrs = 0;
    double makespanSeconds = 0;
};

/** One process's container spanning the replicated kernels. */
class ReplicatedOS
{
  public:
    ReplicatedOS(const MultiIsaBinary &bin, OsConfig cfg);
    ~ReplicatedOS();

    /** Load the binary and create the main thread on `startNode`. */
    void load(int startNode);

    /** Run until every thread finished (or exit() was called). */
    OsRunResult run();

    /**
     * Run until the given simulated time (seconds) is reached by all
     * runnable work, or the process finishes. Returns true if the
     * process is still running.
     */
    bool runUntil(double seconds);

    // --- Migration control (the datacenter scheduler's interface) -----
    /** Ask every thread of the process to migrate to `destNode`. */
    void migrateProcess(int destNode);
    /** Ask one thread to migrate. */
    void migrateThread(int tid, int destNode);

    // --- Introspection --------------------------------------------------
    /** Latest simulated time (max over cores), seconds. */
    double now() const;
    DsmSpace &dsm() { return *dsm_; }
    const std::vector<MigrationEvent> &migrations() const
    {
        return migrations_;
    }
    EnergyMeter &energy() { return meter_; }
    Interconnect &net() { return net_; }
    /**
     * This container's stat registry. Every component counter (per-node
     * caches, DSM protocol, interconnect, stack transformer, OS
     * services) is attached here at construction; dump()/dumpJson()
     * renders them all, resetAll() subsumes the per-class resetStats().
     */
    obs::StatRegistry &statRegistry() { return stats_; }
    /** The invariant auditor riding along, or nullptr unless
     *  XISA_AUDIT=1 was set at construction. */
    check::InvariantAuditor *auditor() { return auditor_.get(); }
    Interp &interp(int node);
    int threadNode(int tid) const;
    int numThreads() const { return static_cast<int>(threads_.size()); }
    bool finished() const;
    uint64_t totalInstrs() const { return totalInstrs_; }
    const std::vector<std::string> &output() const { return output_; }
    const OsConfig &config() const { return cfg_; }
    StackTransformer &transformer() { return xform_; }
    /** Live heap allocations (addr, bytes) -- the "object graph" the
     *  PadMig serialization baseline reflects over. */
    std::vector<std::pair<uint64_t, uint64_t>> heapObjects() const;
    /**
     * Serialize the whole container at a scheduling boundary: threads
     * (registers, PCs, kernel continuations), kernel-service state
     * (heap, barriers, output), every memory page, and core clocks.
     * This is the checkpoint/restore mechanism of the paper's Section 8
     * related work (CRIU-style) -- only valid between homogeneous
     * kernels, and the baseline our live migration is compared against
     * in bench_ablation_checkpoint.
     */
    std::vector<uint8_t> checkpoint() const;
    /**
     * Restore a checkpoint into this freshly constructed container
     * (construct with the same binary and node configuration, do NOT
     * call load()). Cache contents are not restored (cold caches).
     */
    void restore(const std::vector<uint8_t> &bytes);

    /** Aggregate L1-I miss ratio across one node's cores (Table 1). */
    double l1iMissRatio(int node) const;
    /** Aggregate L1-D miss ratio across one node's cores. */
    double l1dMissRatio(int node) const;

    /** Invoked after every scheduling quantum (experiment hooks, e.g.
     *  re-requesting migration to ping-pong a process between nodes). */
    std::function<void(ReplicatedOS &)> onQuantum;

    // --- Crash tolerance (DESIGN.md §9) -------------------------------
    /** The failure detector, or nullptr unless cfg.recovery.enabled. */
    FailureDetector *failureDetector() { return fd_.get(); }
    /** True while `node`'s kernel has not been declared dead. */
    bool nodeAlive(int node) const;
    /**
     * One sequence-numbered migration handoff, for the exactly-once
     * audit: `applied` is set when the context was installed at the
     * destination, `destDied` when that destination later crashed (the
     * installed copy perished with it and the thread rolled back).
     */
    struct MigrationLedgerEntry {
        int tid = 0;
        uint64_t seq = 0;
        int source = 0;
        int dest = 0;
        bool applied = false;
        bool destDied = false;
    };
    const std::vector<MigrationLedgerEntry> &migrationLedger() const
    {
        return migrationLedger_;
    }

  private:
    enum class ThreadState { Ready, Blocked, Done };

    /** Why a thread is blocked in kernel space; stands in for the
     *  per-ISA kernel stack of a heterogeneous continuation. */
    struct KernelContinuation {
        enum class Kind { None, Join, Barrier } kind = Kind::None;
        int joinTid = -1;
        int64_t barrierKey = 0;
        IsaId isa = IsaId::Xeno64; ///< kernel stack's ISA
        int node = 0;
        uint32_t pendingBuiltin = 0; ///< trapped call to finish on wake
    };

    struct OsThread {
        int tid = 0;
        ThreadContext ctx;
        ThreadState state = ThreadState::Ready;
        int node = 0;
        int core = 0;
        uint32_t stackSlot = 0;
        KernelContinuation kcont;
        uint64_t exitValue = 0;
        int migrationTarget = -1;
        double migrationRequestTime = 0;
        /** Crash-consistent snapshot (DESIGN.md §9): the context and
         *  home as of the last commit point. A quantum on a node whose
         *  crash instant passed mid-quantum is voided back to this. */
        ThreadContext committedCtx;
        int committedNode = 0;
        /** Sequence number of this thread's next migration handoff. */
        uint64_t migrationSeq = 0;
    };

    struct NodeRuntime {
        NodeSpec spec;
        std::vector<Core> cores;
        Cache l2;
        std::unique_ptr<Interp> interp;

        NodeRuntime(const NodeSpec &s, const MultiIsaBinary &bin)
            : spec(s), l2(s.l2),
              interp(std::make_unique<Interp>(bin, s.isa, spec))
        {
            for (int c = 0; c < s.cores; ++c)
                cores.emplace_back(s);
        }
    };

    struct Barrier {
        int64_t needed = 0;
        std::vector<int> waiting;
    };

    double coreTime(int node, int core) const;
    void setCoreTimeAtLeast(int node, int core, double seconds);
    int pickCore(int node) const;
    OsThread *pickNext();
    void runQuantum(OsThread &t);
    void execBuiltin(OsThread &t, uint32_t funcId);
    void handleMigrateTrap(OsThread &t, uint32_t siteId);
    void finishThread(OsThread &t, uint64_t exitValue);
    void wake(OsThread &t, double atTime);
    void chargeKernel(OsThread &t, uint64_t cycles);
    int createThread(int node, uint32_t funcId,
                     const std::vector<uint64_t> &intArgs);
    void setupInitialStack(OsThread &t);
    void updateVdsoFlag();

    // Crash tolerance (DESIGN.md §9).
    /** Commit point: snapshot `t` and refresh the page journal. */
    void commitThread(OsThread &t);
    /** Heartbeat round + declare/recover newly detected deaths. */
    void pollFailures();
    /** Kernel-side half of node death: re-home the dead kernel's
     *  threads onto a same-ISA survivor (invoked by the DSM after the
     *  directory was reconstructed). */
    void onNodeDeath(int dead);
    /** Void a quantum that ran on a node whose crash instant passed:
     *  roll `t` back to its committed snapshot. */
    void rollbackThread(OsThread &t);
    /** Recovery-specific invariants (live threads on alive nodes,
     *  exactly-once ledger); no-op unless the auditor is armed. */
    void auditRecovery(const char *where);

    /** Must stay the FIRST member: destroyed last, so component stats
     *  (declared below, destroyed first) detach from a live registry. */
    obs::StatRegistry stats_;

    const MultiIsaBinary &bin_;
    OsConfig cfg_;
    Interconnect net_;
    std::unique_ptr<DsmSpace> dsm_;
    std::vector<NodeRuntime> nodes_;
    std::vector<std::unique_ptr<OsThread>> threads_;
    StackTransformer xform_;
    EnergyMeter meter_;
    /** Armed by XISA_AUDIT / XISA_PERTURB at construction. */
    std::unique_ptr<check::InvariantAuditor> auditor_;
    std::unique_ptr<check::SchedulePerturber> perturb_;
    /** Created when cfg.recovery.enabled; shared with net_ and dsm_. */
    std::unique_ptr<FailureDetector> fd_;
    std::vector<MigrationLedgerEntry> migrationLedger_;

    // Kernel service state.
    uint64_t heapBrk_ = vm::kHeapBase;
    std::map<uint64_t, std::vector<uint64_t>> freeLists_; ///< size->addrs
    std::map<uint64_t, uint64_t> allocSizes_;
    std::map<int64_t, Barrier> barriers_;
    std::vector<std::string> output_;
    std::vector<MigrationEvent> migrations_;
    uint64_t totalInstrs_ = 0;
    /** Interned trace span name per builtin funcId, resolved on first
     *  call so tracing never re-interns per event. */
    std::vector<const char *> builtinSpanNames_;

    // OS-service stats (registered under os.* / machine.* / sched.*).
    obs::Counter quanta_;
    obs::Counter builtinCalls_;
    obs::Counter threadSpawns_;
    obs::Counter migrationsDone_;
    obs::Counter spuriousMigrateTraps_;
    obs::Counter migrationAborts_;  ///< xfault.migration_aborts
    obs::Counter migrationRetries_; ///< xfault.migration_retries
    obs::Counter threadsRecovered_; ///< xfault.threads_recovered
    obs::Counter quantaVoided_;     ///< xfault.quanta_voided
    obs::Counter migrateRequests_; ///< sched.migrate_requests
    obs::Counter instrsStat_;      ///< machine.instrs
    obs::Gauge liveThreads_;
    obs::Histogram migrateResponseUs_; ///< request -> resume, us

    uint32_t nextStackSlot_ = 0;
    bool exited_ = false;
    int64_t exitCode_ = 0;
    bool loaded_ = false;
    uint64_t runSeq_ = 0;
    std::vector<uint64_t> lastRun_;
};

} // namespace xisa

#endif // XISA_OS_OS_HH
