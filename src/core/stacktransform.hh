/**
 * @file
 * The stack transformation runtime (Section 5.3) -- the paper's primary
 * contribution together with multi-ISA binaries.
 *
 * At a migration point the thread is suspended at a `Bl` call-out whose
 * call-site id keys per-ISA metadata. The transformer:
 *
 *  1. walks the source stack frame-by-frame via the FP chain (both ABIs
 *     keep caller-FP at [FP] and return address at [FP+8]),
 *  2. lays out the destination frames in the other half of the thread's
 *     stack region (the runtime "divides a thread's stack into two
 *     halves ... and switches stacks right before invoking the thread
 *     migration service"),
 *  3. copies every alloca byte-for-byte and every live value according
 *     to the per-ISA stackmaps, re-homing values held in callee-saved
 *     registers by walking the call chain to the frame that saved the
 *     register (paper: "walks down the function call chain until it
 *     finds the frame where the register has been saved"),
 *  4. rewrites frame linkage (saved FPs and return addresses) to the
 *     destination ISA's resume addresses -- the PC part of the r^AB
 *     register mapping of Section 4,
 *  5. fixes up pointers that point into the source stack so they
 *     reference the matching alloca on the destination stack.
 *
 * The result is a complete destination-ISA register state: PC at the
 * destination resume address, SP/FP in the new half, callee-saved
 * registers populated.
 */

#ifndef XISA_CORE_STACKTRANSFORM_HH
#define XISA_CORE_STACKTRANSFORM_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "binary/multibinary.hh"
#include "dsm/dsm.hh"
#include "machine/interp.hh"
#include "machine/node.hh"
#include "obs/registry.hh"

namespace xisa {

/** Work accounting for one transformation. */
struct TransformStats {
    uint32_t frames = 0;
    uint32_t liveValues = 0;
    uint32_t pointersFixed = 0;
    uint64_t bytesCopied = 0;
    /** Simulated cost charged to the source core. */
    uint64_t cycles = 0;
    /** Measured wall-clock of this (real) transformation run. */
    double hostSeconds = 0.0;
};

/** Cross-ISA stack and register-state transformer. */
class StackTransformer
{
  public:
    explicit StackTransformer(const MultiIsaBinary &bin);

    /**
     * Transform `src` (suspended at migration call site `siteId`, PC at
     * the Bl) into a destination-ISA context.
     *
     * @param src       source thread context
     * @param siteId    migration call-site id from the trap
     * @param destIsa   ISA to rewrite for
     * @param dsm       the process's memory (accessed on `node`)
     * @param node      node performing the transformation (source node)
     * @param stackTopAddr highest address (exclusive) of this thread's
     *        stack region
     * @param stats     optional work accounting out-param
     */
    ThreadContext transform(const ThreadContext &src, uint32_t siteId,
                            IsaId destIsa, DsmSpace &dsm, int node,
                            uint64_t stackTopAddr,
                            TransformStats *stats = nullptr);

    /** Simulated cycle cost model for a transformation of this shape,
     *  on a node with the given spec (calibrated to Fig. 10's scale). */
    static uint64_t costCycles(const TransformStats &work,
                               const NodeSpec &spec);

    /**
     * Attach cumulative work counters (`<prefix>.transforms`, `.frames`,
     * `.live_values`, `.pointers_fixed`, `.bytes_copied`) plus a
     * `<prefix>.host_us` histogram of real transformation wall-clock.
     */
    void registerStats(obs::StatRegistry &reg, const std::string &prefix);

    const MultiIsaBinary &binary() const { return bin_; }

    /**
     * RAII audit mode: while alive, transform() emits no trace events
     * and bumps no counters, so an auditor can run a shadow (reverse)
     * transformation without changing the run's observables. Memory
     * traffic must additionally be suppressed by the caller (see
     * DsmSpace::ProtocolBypass).
     */
    class AuditScope
    {
      public:
        explicit AuditScope(StackTransformer &x)
            : x_(x), prev_(x.auditMode_)
        {
            x_.auditMode_ = true;
        }
        ~AuditScope() { x_.auditMode_ = prev_; }
        AuditScope(const AuditScope &) = delete;
        AuditScope &operator=(const AuditScope &) = delete;

      private:
        StackTransformer &x_;
        bool prev_;
    };

  private:
    /** One source frame discovered by the walk. */
    struct Frame {
        uint32_t funcId = 0;
        const CallSiteInfo *srcSite = nullptr;  ///< suspended call site
        const CallSiteInfo *destSite = nullptr; ///< same id, dest ISA
        uint64_t srcFp = 0;
        uint64_t destFp = 0;
    };

    const CallSiteInfo *siteByRetAddr(IsaId isa, uint64_t retAddr) const;

    const MultiIsaBinary &bin_;
    /** retAddr -> site, per ISA (built once; the DWARF-index analog). */
    std::array<std::unordered_map<uint64_t, const CallSiteInfo *>,
               kNumIsas> byRetAddr_;
    /** Code-address indices, one per ISA. */
    std::array<CodeMap, kNumIsas> codeMaps_;
    /** Interned "frame <name>" trace labels per funcId, resolved on the
     *  first traced walk of each function. */
    std::vector<const char *> frameSpanNames_;
    /** True inside an AuditScope: suppress stats and trace output. */
    bool auditMode_ = false;

    // Cumulative work across all transforms (registry-backed).
    obs::Counter transforms_;
    obs::Counter frames_;
    obs::Counter liveValues_;
    obs::Counter pointersFixed_;
    obs::Counter bytesCopied_;
    obs::Histogram hostUs_; ///< real wall-clock per transform, in us
};

} // namespace xisa

#endif // XISA_CORE_STACKTRANSFORM_HH
