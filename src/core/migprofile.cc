#include "core/migprofile.hh"

#include <algorithm>

#include "os/os.hh"
#include "util/logging.hh"

namespace xisa {

namespace {

/** Observer recording per-thread gaps between check executions. */
class GapObserver : public MigCheckObserver
{
  public:
    explicit GapObserver(GapProfile &out) : out_(out) {}

    void
    onMigCheck(const ThreadContext &ctx, uint32_t,
               uint64_t instrsNow) override
    {
        uint64_t now = instrsNow;
        auto [it, fresh] = last_.try_emplace(&ctx, now);
        if (!fresh) {
            uint64_t gap = now - it->second;
            if (gap > 0) {
                out_.hist.add(static_cast<double>(gap));
                out_.maxGap = std::max(out_.maxGap, gap);
                sum_ += gap;
            }
            it->second = now;
        }
        ++out_.checksExecuted;
    }

    void
    finalize()
    {
        out_.meanGap = out_.checksExecuted > 1
                           ? sum_ / (out_.checksExecuted - 1)
                           : 0;
    }

  private:
    GapProfile &out_;
    std::unordered_map<const ThreadContext *, uint64_t> last_;
    uint64_t sum_ = 0;
};

} // namespace

GapProfile
profileMigrationGaps(Module mod, const CompileOptions &opts)
{
    GapProfile out;
    MultiIsaBinary bin = compileModule(std::move(mod), opts);
    OsConfig cfg = OsConfig::dualServer();
    cfg.profile = true;
    ReplicatedOS os(bin, cfg);
    GapObserver obs(out);
    os.interp(0).setMigCheckObserver(&obs);
    os.load(0);
    OsRunResult res = os.run();
    obs.finalize();
    out.totalInstrs = res.totalInstrs;

    // Attribute per-instruction counts to IR blocks.
    const auto &profile = os.interp(0).profile();
    for (uint32_t fid = 0; fid < profile.size(); ++fid) {
        const FuncImage &img = bin.image[1][fid]; // Xeno64 image
        if (img.blockStart.empty())
            continue;
        for (uint32_t idx = 0; idx < profile[fid].size(); ++idx) {
            uint64_t count = profile[fid][idx];
            if (count == 0)
                continue;
            auto it = std::upper_bound(img.blockStart.begin(),
                                       img.blockStart.end(), idx);
            // Prologue instructions precede blockStart[0]; attribute
            // them to the entry block.
            uint32_t block =
                it == img.blockStart.begin()
                    ? 0
                    : static_cast<uint32_t>(it -
                                            img.blockStart.begin()) -
                          1;
            out.blockWeight[GapProfile::blockKey(fid, block)] += count;
        }
    }
    return out;
}

MigPointPlan
planMigrationPoints(const Module &mod, uint64_t gapTarget,
                    int maxIterations)
{
    MigPointPlan plan;
    CompileOptions opts;
    plan.before = profileMigrationGaps(mod, opts);
    plan.after = plan.before;

    while (plan.after.maxGap > gapTarget &&
           plan.iterations < maxIterations) {
        // Pick the heaviest not-yet-instrumented loop block, preferring
        // the shallowest loop depth: a point in an outer loop bounds
        // the gap with far fewer executed checks than one in an inner
        // loop (the Section 5.2.1 overhead trade-off). Blocks lighter
        // than the target are skipped first (they cannot cause an
        // over-target gap on their own) but reconsidered if nothing
        // heavy remains -- sequences of light loops can still add up.
        uint64_t bestWeight = 0;
        MigPointSpec best;
        for (uint64_t minWeight : {gapTarget / 2, uint64_t{1}}) {
            int bestDepth = INT32_MAX;
            for (const auto &[key, weight] : plan.after.blockWeight) {
                MigPointSpec spec;
                spec.funcId = static_cast<uint32_t>(key >> 32);
                spec.blockId = static_cast<uint32_t>(key & 0xffffffffu);
                const IRFunction &f = mod.func(spec.funcId);
                if (f.isBuiltin() ||
                    f.blocks[spec.blockId].loopDepth == 0)
                    continue;
                if (std::find(plan.points.begin(), plan.points.end(),
                              spec) != plan.points.end())
                    continue;
                if (weight < minWeight)
                    continue;
                int depth = f.blocks[spec.blockId].loopDepth;
                if (depth < bestDepth ||
                    (depth == bestDepth && weight > bestWeight)) {
                    bestDepth = depth;
                    bestWeight = weight;
                    best = spec;
                }
            }
            if (bestWeight > 0)
                break;
        }
        if (bestWeight == 0)
            break; // nothing left to instrument
        plan.points.push_back(best);
        ++plan.iterations;
        opts.loopMigPoints = plan.points;
        plan.after = profileMigrationGaps(mod, opts);
    }
    return plan;
}

} // namespace xisa
