#include "core/stacktransform.hh"

#include <chrono>
#include <cstring>

#include "isa/abi.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace xisa {

StackTransformer::StackTransformer(const MultiIsaBinary &bin) : bin_(bin)
{
    for (int i = 0; i < kNumIsas; ++i) {
        for (const auto &[id, site] : bin.callSite[i])
            byRetAddr_[i].emplace(site.retAddr, &site);
        codeMaps_[i] = CodeMap(bin, static_cast<IsaId>(i));
    }
}

const CallSiteInfo *
StackTransformer::siteByRetAddr(IsaId isa, uint64_t retAddr) const
{
    const auto &map = byRetAddr_[static_cast<int>(isa)];
    auto it = map.find(retAddr);
    if (it == map.end())
        fatal("stack walk: return address 0x%llx is not a call site",
              static_cast<unsigned long long>(retAddr));
    return it->second;
}

void
StackTransformer::registerStats(obs::StatRegistry &reg,
                                const std::string &prefix)
{
    reg.attach(prefix + ".transforms", transforms_);
    reg.attach(prefix + ".frames", frames_);
    reg.attach(prefix + ".live_values", liveValues_);
    reg.attach(prefix + ".pointers_fixed", pointersFixed_);
    reg.attach(prefix + ".bytes_copied", bytesCopied_);
    reg.attach(prefix + ".host_us", hostUs_);
}

uint64_t
StackTransformer::costCycles(const TransformStats &work,
                             const NodeSpec &spec)
{
    // Calibrated so a typical 5-frame / 20-value transform lands in the
    // hundreds-of-microseconds range of the paper's Fig. 10, with the
    // in-order ARM-like core roughly 2x the x86-like one.
    double cycles = 30e3 + 120e3 * work.frames + 8e3 * work.liveValues +
                    2.0 * static_cast<double>(work.bytesCopied);
    double scale = 1.0 + (spec.cost(MOp::Add) - 1) * 0.5;
    return static_cast<uint64_t>(cycles * scale);
}

ThreadContext
StackTransformer::transform(const ThreadContext &src, uint32_t siteId,
                            IsaId destIsa, DsmSpace &dsm, int node,
                            uint64_t stackTopAddr, TransformStats *stats)
{
    auto t0 = std::chrono::steady_clock::now();
    TransformStats work;
    uint64_t dsmCycles = 0;

    const IsaId srcIsa = src.isa;
    XISA_CHECK(srcIsa != destIsa, "transform between identical ISAs");
    const AbiInfo &sabi = AbiInfo::of(srcIsa);
    const AbiInfo &dabi = AbiInfo::of(destIsa);
    const int si = static_cast<int>(srcIsa);
    const int di = static_cast<int>(destIsa);

    auto pull64 = [&](uint64_t addr) {
        uint64_t v = 0;
        dsmCycles += dsm.pull(node, addr, &v, 8);
        return v;
    };
    auto poke64 = [&](uint64_t addr, uint64_t v) {
        dsmCycles += dsm.poke(node, addr, &v, 8);
    };

    // ---- 1. Walk the source stack. -----------------------------------
    std::vector<Frame> frames;
    {
        const CallSiteInfo *site = &bin_.site(srcIsa, siteId);
        XISA_CHECK(site->isMigrationPoint,
                   "transform must start at a migration point");
        uint64_t fp = src.gpr[sabi.fpReg];
        for (;;) {
            Frame fr;
            fr.funcId = site->funcId;
            fr.srcSite = site;
            fr.destSite = &bin_.site(destIsa, site->id);
            fr.srcFp = fp;
            frames.push_back(fr);
            uint64_t ra = pull64(fp + FrameInfo::kRetAddrOff);
            if (ra == vm::kThreadExitAddr)
                break;
            uint64_t callerFp = pull64(fp + FrameInfo::kSavedFpOff);
            site = siteByRetAddr(srcIsa, ra);
            fp = callerFp;
            if (frames.size() > 100000)
                panic("stack walk did not terminate");
        }
    }
    const size_t numFrames = frames.size();
    work.frames = static_cast<uint32_t>(numFrames);

#if XISA_TRACE
    // One instant per discovered frame, innermost first, on the ambient
    // track -- renders the walked call chain under the transform span.
    if (obs::traceEnabled() && !auditMode_) {
        const obs::TraceCursor cur = obs::traceCursor();
        if (frameSpanNames_.size() < bin_.ir.functions.size())
            frameSpanNames_.resize(bin_.ir.functions.size());
        for (const Frame &fr : frames) {
            const char *&fn = frameSpanNames_[fr.funcId];
            if (!fn)
                fn = obs::intern("frame " +
                                 bin_.ir.func(fr.funcId).name);
            obs::Tracer::global().instant(cur.track, "stacktransform",
                                          fn, cur.tsSeconds);
        }
    }
#endif

    // ---- 2. Pick the destination half of the stack region. -----------
    const uint64_t stackBase = stackTopAddr - vm::kStackSize;
    const uint64_t half = vm::kStackSize / 2;
    const uint64_t srcSp = src.gpr[sabi.spReg];
    XISA_CHECK(srcSp >= stackBase && srcSp < stackTopAddr,
               "SP outside this thread's stack region");
    const bool srcInUpper = srcSp >= stackTopAddr - half;
    const uint64_t destTop = srcInUpper ? stackTopAddr - half
                                        : stackTopAddr;
    const uint64_t destLimit = destTop - half;

    // ---- 3. Assign destination frame pointers (outermost first). -----
    uint64_t csp = destTop;
    for (size_t i = numFrames; i-- > 0;) {
        const FrameInfo &dfi = bin_.image[di][frames[i].funcId].frame;
        frames[i].destFp = csp - 16;
        csp = frames[i].destFp - (dfi.frameSize - 16);
        if (csp < destLimit + 256)
            fatal("destination stack half overflow (%zu frames)",
                  numFrames);
    }
    const uint64_t destSp = csp;

    // ---- 4. Frame linkage: saved FPs and return addresses. -----------
    for (size_t i = 0; i < numFrames; ++i) {
        bool outermost = i + 1 == numFrames;
        poke64(frames[i].destFp + FrameInfo::kSavedFpOff,
               outermost ? 0 : frames[i + 1].destFp);
        poke64(frames[i].destFp + FrameInfo::kRetAddrOff,
               outermost ? vm::kThreadExitAddr
                         : frames[i + 1].destSite->retAddr);
        work.bytesCopied += 16;
    }

    // ---- 5. Copy allocas and build the pointer-translation map. ------
    struct AllocaRange {
        uint64_t srcLo, srcHi, destLo;
    };
    std::vector<AllocaRange> ranges;
    std::vector<uint8_t> buf;
    for (const Frame &fr : frames) {
        const IRFunction &fn = bin_.ir.func(fr.funcId);
        const FrameInfo &sfi = bin_.image[si][fr.funcId].frame;
        const FrameInfo &dfi = bin_.image[di][fr.funcId].frame;
        for (size_t s = 0; s < fn.allocas.size(); ++s) {
            uint64_t srcA = fr.srcFp +
                            static_cast<int64_t>(sfi.allocaFpOff[s]);
            uint64_t destA = fr.destFp +
                             static_cast<int64_t>(dfi.allocaFpOff[s]);
            uint32_t size = fn.allocas[s].size;
            buf.resize(size);
            dsmCycles += dsm.pull(node, srcA, buf.data(), size);
            dsmCycles += dsm.poke(node, destA, buf.data(), size);
            ranges.push_back({srcA, srcA + size, destA});
            work.bytesCopied += size;
        }
    }

    auto fixPointer = [&](uint64_t v) -> uint64_t {
        if (v < stackBase || v >= stackTopAddr)
            return v; // not a stack pointer: globals/heap are common
        for (const AllocaRange &r : ranges) {
            if (v >= r.srcLo && v < r.srcHi) {
                ++work.pointersFixed;
                return r.destLo + (v - r.srcLo);
            }
        }
        fatal("stack pointer 0x%llx does not target any alloca",
              static_cast<unsigned long long>(v));
    };

    // ---- 6. Live values, with callee-saved re-homing. -----------------
    ThreadContext dst;
    dst.isa = destIsa;
    dst.tlsBase = src.tlsBase;
    dst.gpr[dabi.spReg] = destSp;
    dst.gpr[dabi.fpReg] = frames[0].destFp;

    // The value callee-saved GPR `reg` held in frame k at its call site:
    // the save slot of the nearest callee frame that saved it, else the
    // live register.
    auto readSrcSavedGpr = [&](size_t k, uint8_t reg) -> uint64_t {
        for (size_t j = k; j-- > 0;) {
            const FrameInfo &fi = bin_.image[si][frames[j].funcId].frame;
            for (auto [r, off] : fi.savedGpr)
                if (r == reg)
                    return pull64(frames[j].srcFp +
                                  static_cast<int64_t>(off));
        }
        return src.gpr[reg];
    };
    auto readSrcSavedFpr = [&](size_t k, uint8_t reg) -> uint64_t {
        for (size_t j = k; j-- > 0;) {
            const FrameInfo &fi = bin_.image[si][frames[j].funcId].frame;
            for (auto [r, off] : fi.savedFpr)
                if (r == reg)
                    return pull64(frames[j].srcFp +
                                  static_cast<int64_t>(off));
        }
        uint64_t bits;
        std::memcpy(&bits, &src.fpr[reg], 8);
        return bits;
    };
    auto writeDestSavedGpr = [&](size_t k, uint8_t reg, uint64_t v) {
        for (size_t j = k; j-- > 0;) {
            const FrameInfo &fi = bin_.image[di][frames[j].funcId].frame;
            for (auto [r, off] : fi.savedGpr) {
                if (r == reg) {
                    poke64(frames[j].destFp + static_cast<int64_t>(off),
                           v);
                    return;
                }
            }
        }
        dst.gpr[reg] = v;
    };
    auto writeDestSavedFpr = [&](size_t k, uint8_t reg, uint64_t bits) {
        for (size_t j = k; j-- > 0;) {
            const FrameInfo &fi = bin_.image[di][frames[j].funcId].frame;
            for (auto [r, off] : fi.savedFpr) {
                if (r == reg) {
                    poke64(frames[j].destFp + static_cast<int64_t>(off),
                           bits);
                    return;
                }
            }
        }
        std::memcpy(&dst.fpr[reg], &bits, 8);
    };

    for (size_t k = 0; k < numFrames; ++k) {
        const CallSiteInfo &ss = *frames[k].srcSite;
        const CallSiteInfo &ds = *frames[k].destSite;
        XISA_CHECK(ss.live.size() == ds.live.size(),
                   "live sets differ across ISAs at the same site");
        for (const LiveValue &lv : ss.live) {
            // Match by BIR value id -- the cross-ISA key.
            const LiveValue *dlv = nullptr;
            for (const LiveValue &cand : ds.live) {
                if (cand.irValue == lv.irValue) {
                    dlv = &cand;
                    break;
                }
            }
            XISA_CHECK(dlv, "live value missing on destination ISA");
            XISA_CHECK(dlv->type == lv.type,
                       "live value type differs across ISAs");

            uint64_t value = 0;
            switch (lv.loc.kind) {
              case ValueLocation::Kind::FrameSlot:
                value = pull64(frames[k].srcFp +
                               static_cast<int64_t>(lv.loc.fpOff));
                break;
              case ValueLocation::Kind::Gpr:
                value = readSrcSavedGpr(k, lv.loc.reg);
                break;
              case ValueLocation::Kind::Fpr:
                value = readSrcSavedFpr(k, lv.loc.reg);
                break;
            }
            if (lv.type == Type::Ptr)
                value = fixPointer(value);

            switch (dlv->loc.kind) {
              case ValueLocation::Kind::FrameSlot:
                poke64(frames[k].destFp +
                           static_cast<int64_t>(dlv->loc.fpOff),
                       value);
                break;
              case ValueLocation::Kind::Gpr:
                writeDestSavedGpr(k, dlv->loc.reg, value);
                break;
              case ValueLocation::Kind::Fpr:
                writeDestSavedFpr(k, dlv->loc.reg, value);
                break;
            }
            ++work.liveValues;
            work.bytesCopied += 8;
        }
    }

    // ---- 7. Program counter (the r^AB PC mapping). ---------------------
    dst.pc = codeMaps_[di].resolve(frames[0].destSite->retAddr);
    if (dabi.linkReg >= 0)
        dst.gpr[dabi.linkReg] =
            pull64(frames[0].destFp + FrameInfo::kRetAddrOff);

    work.hostSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    work.cycles = dsmCycles;

    if (!auditMode_) {
        ++transforms_;
        frames_.add(work.frames);
        liveValues_.add(work.liveValues);
        pointersFixed_.add(work.pointersFixed);
        bytesCopied_.add(work.bytesCopied);
        hostUs_.add(work.hostSeconds * 1e6);
    }

    if (stats)
        *stats = work;
    return dst;
}

} // namespace xisa
