/**
 * @file
 * Migration-point frequency analysis and planning (Section 5.2.1).
 *
 * The paper builds a Valgrind tool that counts instructions between
 * migration points, then inserts extra points so an application can
 * migrate roughly once per scheduling quantum. Our analog instruments
 * the machine interpreter: every executed migration-point check reports
 * to a MigGapProfiler, which histograms the instruction gaps (the
 * "Pre"/"Post" distributions of Figs. 3-5). The planner then iterates:
 * profile, pick the hottest loop block, insert a point there, re-profile
 * -- until the largest observed gap is below the target.
 */

#ifndef XISA_CORE_MIGPROFILE_HH
#define XISA_CORE_MIGPROFILE_HH

#include <unordered_map>
#include <vector>

#include "compiler/compile.hh"
#include "ir/ir.hh"
#include "machine/interp.hh"
#include "util/stats.hh"

namespace xisa {

/** Result of one profiling run. */
struct GapProfile {
    /** Distribution of instruction gaps between consecutive executed
     *  migration-point checks (decades 10^0 .. 10^10). */
    DecadeHistogram hist{0, 10};
    uint64_t maxGap = 0;
    uint64_t meanGap = 0;
    uint64_t checksExecuted = 0;
    uint64_t totalInstrs = 0;
    /** Dynamic instructions attributed to each (funcId, irBlock). */
    std::unordered_map<uint64_t, uint64_t> blockWeight;

    static uint64_t
    blockKey(uint32_t funcId, uint32_t block)
    {
        return (static_cast<uint64_t>(funcId) << 32) | block;
    }
};

/**
 * Compile `mod` with `opts` and profile one run on the Xeno64 node.
 * The module is taken by value; the caller's copy is untouched.
 */
GapProfile profileMigrationGaps(Module mod, const CompileOptions &opts);

/** Result of the iterative planner. */
struct MigPointPlan {
    std::vector<MigPointSpec> points; ///< loop blocks to instrument
    GapProfile before;                ///< boundary-points-only profile
    GapProfile after;                 ///< profile with `points` added
    int iterations = 0;
};

/**
 * Choose loop blocks to instrument so that the maximum instruction gap
 * between migration opportunities drops below `gapTarget` (the paper's
 * ~one-per-scheduling-quantum goal, scaled to our problem sizes).
 */
MigPointPlan planMigrationPoints(const Module &mod, uint64_t gapTarget,
                                 int maxIterations = 24);

} // namespace xisa

#endif // XISA_CORE_MIGPROFILE_HH
