/**
 * @file
 * hDSM -- heterogeneous distributed shared memory (Section 5.1).
 *
 * Page-granular MSI coherence across nodes: each virtual page has a
 * directory entry tracking per-node state (Invalid / Shared / Modified).
 * A read fault copies the page from its current owner and leaves both
 * copies Shared; a write fault additionally invalidates every other
 * copy. Pages therefore migrate on demand -- no stop-the-world -- which
 * is what lets threads of one process keep running on the source node
 * while others have already migrated. Transfer costs are charged through
 * the Interconnect model to the faulting access.
 *
 * Because application data has one common format across ISAs (the whole
 * point of the multi-ISA binary), pages are moved as raw bytes with no
 * conversion -- contrast Mermaid/IVY, which convert page contents.
 *
 * The vDSO page is special-cased: it is the kernel/user shared page for
 * migration requests, kept replicated on every node by kernel broadcast
 * writes, and never faults.
 */

#ifndef XISA_DSM_DSM_HH
#define XISA_DSM_DSM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "dsm/interconnect.hh"
#include "dsm/recovery.hh"
#include "machine/mem.hh"
#include "obs/registry.hh"
#include "util/bytes.hh"

namespace xisa {

namespace check {
class InvariantAuditor;
} // namespace check

/** Per-node MSI state of a page. */
enum class PageState : uint8_t { Invalid = 0, Shared, Modified };

/**
 * Memory-sharing strategy. The paper chose a full DSM protocol over the
 * PCIe interconnect's load/store shared memory "due to the higher
 * latencies for each single operation"; RemoteAccess models that
 * rejected alternative (every non-local access pays a round trip and no
 * page ever moves) for the ablation bench.
 */
enum class DsmMode : uint8_t { MigratePages, RemoteAccess };

/**
 * Protocol and traffic statistics of one DSM space. Deprecated as
 * storage: the live counts are registry-backed obs::Counters owned by
 * the DsmSpace; this struct remains as the value type the stats() shim
 * materializes for existing callers.
 */
struct DsmStats {
    uint64_t readFaults = 0;
    uint64_t writeFaults = 0;
    uint64_t invalidations = 0;
    uint64_t pagesTransferred = 0;
    uint64_t bytesTransferred = 0;
    /** Protocol-added cycles charged to faulting accesses. */
    uint64_t extraCycles = 0;
};

/**
 * One process's distributed address space spanning all nodes.
 *
 * Single-owner on construction; ports (one per node) implement MemPort
 * for the interpreters.
 */
class DsmSpace
{
  public:
    /**
     * @param numNodes number of kernels sharing the space
     * @param net interconnect cost model (shared, not owned)
     * @param freqGHz per-node clock, for cycle conversion, indexed by
     *        node id
     */
    DsmSpace(int numNodes, Interconnect *net,
             std::vector<double> freqGHz,
             DsmMode mode = DsmMode::MigratePages);

    /** MemPort for accesses performed on `node`. */
    MemPort &port(int node);

    /**
     * Install initial bytes on `homeNode` (loader use); the pages become
     * Modified there with no cost.
     */
    void populate(int homeNode, uint64_t addr, const void *src, size_t n);
    /** Reserve a zero page range on `homeNode` (bss/stack/heap). */
    void populateZero(int homeNode, uint64_t addr, size_t n);

    /**
     * Kernel broadcast write (vDSO migration flag): updates every node's
     * copy directly, bypassing the protocol.
     */
    void broadcastWrite64(uint64_t addr, uint64_t value);

    /** Read bytes with no protocol action or cost (kernel/debug use;
     *  reads the most recent copy). */
    void peek(uint64_t addr, void *dst, size_t n);
    /**
     * Authoritative bytes of every known page (the most recent copy,
     * as peek() would read them), keyed by vpage. Differential tests
     * compare the images of two runs; identical maps mean identical
     * final memory.
     */
    std::map<uint64_t, std::vector<uint8_t>> pageImage();
    /** Write bytes through the protocol on behalf of `node` (runtime
     *  use, e.g. stack transformation); returns charged cycles. */
    uint64_t poke(int node, uint64_t addr, const void *src, size_t n);
    /** Read bytes through the protocol on behalf of `node`. */
    uint64_t pull(int node, uint64_t addr, void *dst, size_t n);

    /** Deprecated shim materializing the registry-backed counters. */
    DsmStats stats() const;
    /** Deprecated: prefer resetting through the owning StatRegistry. */
    void resetStats();
    /**
     * Attach the protocol counters to `reg`: aggregates under `dsm.*`
     * plus per-node breakdowns under `node<N>.dsm.*` (read_faults,
     * write_faults, invalidations, pages_in).
     */
    void registerStats(obs::StatRegistry &reg);

    /**
     * Drop every TLB entry cached by `node`'s port (TLB shootdown).
     * The OS calls this on thread migration; the protocol invalidates
     * individual entries itself on page steal/invalidation/drop.
     */
    void flushTlb(int node);
    /** Drop every port's TLB (snapshot restore, tests). */
    void flushAllTlbs();

    /** Per-node page state (for tests and diagnostics). */
    PageState state(int node, uint64_t vpage) const;
    /** Node currently owning the page (Modified), or -1 if none. */
    int modifiedOwner(uint64_t vpage) const;
    /** Check protocol invariants for every known page; panics on
     *  violation (used by property tests). */
    void checkInvariants() const;

    int numNodes() const { return numNodes_; }
    DsmMode mode() const { return mode_; }

    /** Serialize every page, directory entry, home assignment, and
     *  protocol counter (container checkpoints). */
    void saveState(ByteWriter &w) const;
    /** Restore a saveState() snapshot into this (fresh) space. */
    void loadState(ByteReader &r);

    // ---- crash tolerance (DESIGN.md §9) -----------------------------

    /**
     * Arm the crash-tolerance layer: share `fd` with the Interconnect,
     * create the page journal, and capture every page currently known
     * (the loader image) as its first committed frame. Page transfers
     * switch to peer-aware reliable sends; a peer the detector declares
     * Dead triggers recoverDeadNode() mid-fault. The detector is owned
     * by the caller (the OS container or the test).
     */
    void armRecovery(FailureDetector *fd);
    bool recoveryArmed() const { return fd_ != nullptr; }
    FailureDetector *failureDetector() const { return fd_; }
    /** Invoked once per recovered node, after the directory has been
     *  rebuilt; the OS re-homes that node's threads here. */
    void setDeathHandler(std::function<void(int)> handler)
    {
        deathHandler_ = std::move(handler);
    }

    /** False once `node` has been declared dead and recovered from. */
    bool nodeAlive(int node) const
    {
        return alive_[static_cast<size_t>(node)] != 0;
    }
    /** Lowest-numbered alive node (where orphaned pages land), or -1. */
    int recoveryTarget() const;

    /**
     * Reconstruct the directory after `dead`'s fail-stop: every copy it
     * held is dropped; pages for which it was the sole holder are
     * restored from the journal onto the recovery target as Modified
     * (xfault.pages_recovered); RemoteAccess homes are reassigned
     * (xfault.pages_rehomed). Idempotent. Fences `dead` in the
     * detector, then invokes the death handler.
     */
    void recoverDeadNode(int dead);

    /**
     * Protocol epoch: refresh the committed frame of every journaled
     * page from its current authoritative copy. The OS calls this at
     * every kernel entry/exit, making quantum boundaries the crash-
     * consistency points re-execution rolls back to.
     */
    void journalCommit();
    const PageJournal *journal() const { return journal_.get(); }

    // ---- topology partitions & epoch fencing (DESIGN.md §12) --------

    /**
     * Cut the node set in two: `minority` on one side, everyone else
     * on the other. While the partition is active every cross-cut
     * transfer fails fast at link latency (xfault.cut_rejects, the
     * detector suspecting -- never fencing -- the far side), and a
     * cross-cut invalidation is DEFERRED into the fenced outbox,
     * leaving the target's copy stale; such pages are tracked as
     * divergent and exempted from the coherence invariants until the
     * heal re-syncs them. Both sides must be non-empty; partitions do
     * not nest.
     */
    void beginPartition(const std::vector<int> &minority);
    /**
     * Heal the active partition. With fencing on (the default), every
     * node first advances its partition epoch, so the deferred
     * pre-heal messages in the outbox -- each stamped with its
     * sender's epoch at send time -- are recognizably stale and
     * REJECTED (xfault.fenced_messages); the minority then rejoins via
     * directory re-sync: every divergent page drops its minority-side
     * copies and the majority copy is authoritative
     * (xfault.pages_resynced), exactly the "healed minority rejoins by
     * re-sync, not by replaying pre-heal writes" rule that prevents
     * split-brain. With fencing off (setEpochFencing(false), a
     * regression knob for the chaos tests) the heal instead applies
     * the stale outbox messages verbatim -- the split-brain failure
     * mode, which the auditor flags as an epoch regression.
     */
    void healPartition();
    bool partitionActive() const { return partActive_; }
    /** Partition epoch of `node` (starts at 1; +1 per heal). */
    uint64_t nodeEpoch(int node) const
    {
        return nodeEpoch_[static_cast<size_t>(node)];
    }
    /** Regression knob: disable the epoch fence (default on). */
    void setEpochFencing(bool on) { fencing_ = on; }
    /** Stale pre-heal messages the epoch fence rejected. */
    uint64_t fencedMessages() const { return fencedMessages_.value(); }
    /** Divergent pages re-synced from the majority side at heals. */
    uint64_t pagesResynced() const { return pagesResynced_.value(); }

    /**
     * Install a hook invoked after every protocol step (fault, fill,
     * broadcast) with a tag and the affected vpage. One observer at a
     * time; pass nullptr to detach. Used by check::InvariantAuditor.
     */
    void
    setAuditHook(std::function<void(const char *, uint64_t)> hook)
    {
        auditHook_ = std::move(hook);
    }

    /**
     * RAII protocol bypass: while alive, pull() degrades to peek()
     * (no faults, no cost, no TLB fills) and poke() writes every valid
     * replica directly, so a reader/writer inside the scope is
     * invisible to the run's observables. Single-threaded simulator;
     * scopes may nest. For auditing only -- application accesses must
     * never run under a bypass.
     */
    class ProtocolBypass
    {
      public:
        explicit ProtocolBypass(DsmSpace &dsm)
            : dsm_(dsm), prev_(dsm.bypass_)
        {
            dsm_.bypass_ = true;
        }
        ~ProtocolBypass() { dsm_.bypass_ = prev_; }
        ProtocolBypass(const ProtocolBypass &) = delete;
        ProtocolBypass &operator=(const ProtocolBypass &) = delete;

      private:
        DsmSpace &dsm_;
        bool prev_;
    };

  private:
    friend class check::InvariantAuditor;
    struct Dir {
        std::vector<PageState> state; ///< per node
    };

    class Port : public MemPort
    {
      public:
        Port(DsmSpace &dsm, int node) : dsm_(dsm), node_(node) {}
        uint64_t read(uint64_t addr, void *dst, unsigned n) override;
        uint64_t write(uint64_t addr, const void *src,
                       unsigned n) override;

        // Re-exposed so DsmSpace (the directory) can fill entries; the
        // class itself is private to DsmSpace.
        using MemPort::tlbInstallRead;
        using MemPort::tlbInstallWrite;

      private:
        DsmSpace &dsm_;
        int node_;
    };

    Dir &dir(uint64_t vpage);
    /** RemoteAccess mode: resolve (or claim) the page's home node. */
    int homeOf(int toucher, uint64_t vpage);

    /** Outcome of one reliable protocol transfer. */
    struct Xfer {
        uint64_t cycles = 0;
        bool duplicate = false;
        /** False when `peer` was declared dead mid-transfer; the
         *  directory has been rebuilt and the caller must re-resolve
         *  holders before retrying. */
        bool ok = true;
        /** Rejected by an active partition: `peer` is across the cut
         *  and alive. The caller must defer (invalidations) or give
         *  up (page fetches); retrying cannot succeed until the
         *  heal. */
        bool fenced = false;
    };
    /** Reliable transfer to `peer` charged at `forNode`'s clock, for
     *  protocol traffic about `vpage`. The legacy reliableSend() when
     *  recovery is unarmed; peer-aware with death handling otherwise.
     *  Fails fast (fenced) across an active partition cut. */
    Xfer xfer(int peer, uint64_t bytes, int forNode, uint64_t vpage);
    /** Record one DELIVERED protocol message `from` -> `to` carrying
     *  `epoch`: flags cross-cut deliveries and per-peer epoch
     *  regressions to the auditor, then advances the seen-epoch
     *  watermark. */
    void noteDelivery(int from, int to, uint64_t vpage, uint64_t epoch);
    /** Apply one stale outbox invalidation verbatim (fencing-off
     *  path): drops `to`'s copy as if the pre-heal message arrived. */
    void applyStaleInval(int to, uint64_t vpage);
    /** Drop every minority-side copy of each divergent page; the
     *  majority copy (when one exists) becomes authoritative. */
    void resyncDivergent();
    /** Capture `vpage`'s content on `node` into the journal (no-op
     *  unless recovery is armed). */
    void journalTouch(uint64_t vpage, int node);
    /** Ensure `node` has a readable copy; returns charged cycles. */
    uint64_t faultRead(int node, uint64_t vpage);
    /** Ensure `node` has an exclusive copy; returns charged cycles. */
    uint64_t faultWrite(int node, uint64_t vpage);
    /** Any node with a valid copy, preferring Modified; -1 if none. */
    int anyHolder(const Dir &d) const;
    bool isVdso(uint64_t vpage) const;

    /**
     * Install TLB entries on `node`'s port after a slow-path access
     * left the page locally valid: the read translation whenever the
     * node holds a copy, the write translation only while it is the
     * exclusive (Modified) owner. The vDSO page is never cached for
     * writes (user stores to it are local-only by design and must keep
     * taking the slow path). RemoteAccess mode caches only pages homed
     * on the accessing node -- remote accesses pay per-access charges
     * and must never be short-circuited.
     */
    void tlbFill(int node, uint64_t vpage, bool writable);

    /** Write under ProtocolBypass: patch every valid replica in place
     *  so coherence is preserved without any protocol action. */
    void bypassWrite(uint64_t addr, const void *src, size_t n);

    /** Notify the attached auditor of one protocol step. Suppressed
     *  under ProtocolBypass so the auditor can use pull()/poke()
     *  without recursing into itself. */
    void
    auditStep(const char *what, uint64_t vpage)
    {
        if (auditHook_ && !bypass_)
            auditHook_(what, vpage);
    }

    int numNodes_;
    Interconnect *net_;
    std::vector<double> freqGHz_;
    bool tlbEnabled_ = true; ///< false under XISA_SLOW_PATH
    bool bypass_ = false;    ///< true inside a ProtocolBypass scope
    std::function<void(const char *, uint64_t)> auditHook_;
    DsmMode mode_ = DsmMode::MigratePages;
    /** Crash-tolerance state: unarmed by default (all of it inert). */
    FailureDetector *fd_ = nullptr;
    std::unique_ptr<PageJournal> journal_;
    std::vector<char> alive_; ///< sized numNodes_, all 1 at ctor
    bool recovering_ = false; ///< inside recoverDeadNode's sweep
    std::function<void(int)> deathHandler_;
    // Topology-partition state (all inert until beginPartition()).
    bool partActive_ = false; ///< a cut is currently open
    bool fencing_ = true;     ///< epoch fence armed (regression knob)
    std::vector<char> cutSide_; ///< 1 = minority side of the last cut
    /** Per-node partition epoch (starts at 1, +1 per heal). */
    std::vector<uint64_t> nodeEpoch_;
    /** Highest epoch `to` has seen from `from` (index to*N + from):
     *  the per-peer monotonicity watermark the auditor checks. */
    std::vector<uint64_t> epochSeen_;
    /** One deferred cross-cut message, stamped with the sender's
     *  epoch at send time (which is what makes it recognizably stale
     *  after the heal bumps every epoch). */
    struct FencedMsg {
        int from = 0;
        int to = 0;
        uint64_t vpage = 0;
        uint64_t epoch = 0;
    };
    std::vector<FencedMsg> outbox_; ///< deferred cross-cut invals
    /** Pages whose replicas straddle the cut with suppressed
     *  invalidations: exempt from coherence checks until the heal
     *  re-syncs them (ordered for deterministic re-sync order). */
    std::set<uint64_t> divergent_;
    /** RemoteAccess mode: home node of each page (first toucher). */
    std::unordered_map<uint64_t, int> home_;
    std::vector<SimMemory> mem_;   ///< per-node backing store
    std::vector<Port> ports_;
    std::unordered_map<uint64_t, Dir> dirs_;

    /** Per-node protocol counters, registered as `node<N>.dsm.*`. */
    struct NodeStats {
        obs::Counter readFaults;
        obs::Counter writeFaults;
        obs::Counter invalidations; ///< copies invalidated ON this node
        obs::Counter pagesIn;       ///< pages copied TO this node
    };

    obs::Counter readFaults_;
    obs::Counter writeFaults_;
    obs::Counter invalidations_;
    obs::Counter pageTransfers_;
    obs::Counter bytesTransferred_;
    obs::Counter extraCycles_;
    obs::Counter pagesRecovered_; ///< sole copies restored from journal
    obs::Counter pagesRehomed_;   ///< orphaned pages given a new home
    obs::Counter cutRejects_;     ///< transfers refused by a live cut
    obs::Counter fencedMessages_; ///< stale pre-heal messages rejected
    obs::Counter pagesResynced_;  ///< divergent pages re-synced at heal
    std::vector<NodeStats> nodeStats_; ///< sized numNodes_ at ctor
};

} // namespace xisa

#endif // XISA_DSM_DSM_HH
