#include "dsm/faults.hh"

#include <algorithm>

namespace xisa {

bool
FaultConfig::empty() const
{
    for (const FaultCut &c : cutSets)
        if (c.periodMsgs != 0 && c.lenMsgs != 0)
            return false;
    return dropProb <= 0 && dupProb <= 0 && spikeProb <= 0 &&
           (degradeFactor == 1.0 || degradePeriodMsgs == 0 ||
            degradeLenMsgs == 0) &&
           (partitionPeriodMsgs == 0 || partitionLenMsgs == 0) &&
           scriptedDrops.empty();
}

FaultPlan::FaultPlan(const FaultConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed), empty_(cfg.empty())
{
    std::sort(cfg_.scriptedDrops.begin(), cfg_.scriptedDrops.end());
    // The legacy whole-link windows are sugar for a one-entry cut-set
    // with an empty sideA (every pair crosses). Normalizing here keeps
    // a single partition code path in nextBetween(); the decision
    // stream is unchanged because the legacy branch consumed no rng
    // draws, so an equivalent check in the same position preserves
    // every downstream draw.
    if (cfg_.partitionPeriodMsgs != 0 && cfg_.partitionLenMsgs != 0) {
        FaultCut whole;
        whole.periodMsgs = cfg_.partitionPeriodMsgs;
        whole.lenMsgs = cfg_.partitionLenMsgs;
        cfg_.cutSets.insert(cfg_.cutSets.begin(), std::move(whole));
        cfg_.partitionPeriodMsgs = 0;
        cfg_.partitionLenMsgs = 0;
    }
}

bool
FaultPlan::inWindow(uint64_t period, uint64_t len) const
{
    if (period == 0 || len == 0)
        return false;
    return msgIndex_ % period >= period - std::min(len, period);
}

bool
FaultPlan::crosses(const FaultCut &cut, int from, int to)
{
    if (cut.sideA.empty())
        return true; // whole-link cut: every message crosses
    if (from < 0 || to < 0)
        return false; // a sided cut cannot match a peer-less message
    auto inA = [&](int n) {
        return std::find(cut.sideA.begin(), cut.sideA.end(), n) !=
               cut.sideA.end();
    };
    return inA(from) != inA(to);
}

FaultDecision
FaultPlan::nextBetween(int from, int to)
{
    FaultDecision d;
    if (empty_) {
        ++msgIndex_;
        return d;
    }
    for (const FaultCut &cut : cfg_.cutSets) {
        if (!inWindow(cut.periodMsgs, cut.lenMsgs) ||
            !crosses(cut, from, to))
            continue;
        d.delivered = false;
        d.partitioned = true;
        d.sidedCut = !cut.sideA.empty();
        ++msgIndex_;
        return d;
    }
    if (nextScripted_ < cfg_.scriptedDrops.size() &&
        cfg_.scriptedDrops[nextScripted_] == msgIndex_) {
        ++nextScripted_;
        d.delivered = false;
        ++msgIndex_;
        return d;
    }
    // Fixed draw order keeps the stream reproducible for a given
    // config: each enabled hazard consumes exactly one uniform.
    if (cfg_.dropProb > 0 && rng_.uniform() < cfg_.dropProb)
        d.delivered = false;
    if (cfg_.dupProb > 0 && rng_.uniform() < cfg_.dupProb)
        d.duplicated = d.delivered;
    if (cfg_.spikeProb > 0 && rng_.uniform() < cfg_.spikeProb)
        d.extraLatencySeconds =
            rng_.uniform(0.0, cfg_.spikeMaxUs) * 1e-6;
    if (inWindow(cfg_.degradePeriodMsgs, cfg_.degradeLenMsgs))
        d.bandwidthFactor = cfg_.degradeFactor;
    ++msgIndex_;
    return d;
}

} // namespace xisa
