#include "dsm/faults.hh"

#include <algorithm>

namespace xisa {

bool
FaultConfig::empty() const
{
    return dropProb <= 0 && dupProb <= 0 && spikeProb <= 0 &&
           (degradeFactor == 1.0 || degradePeriodMsgs == 0 ||
            degradeLenMsgs == 0) &&
           (partitionPeriodMsgs == 0 || partitionLenMsgs == 0) &&
           scriptedDrops.empty();
}

FaultPlan::FaultPlan(const FaultConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed), empty_(cfg.empty())
{
    std::sort(cfg_.scriptedDrops.begin(), cfg_.scriptedDrops.end());
}

bool
FaultPlan::inWindow(uint64_t period, uint64_t len) const
{
    if (period == 0 || len == 0)
        return false;
    return msgIndex_ % period >= period - std::min(len, period);
}

FaultDecision
FaultPlan::next()
{
    FaultDecision d;
    if (empty_) {
        ++msgIndex_;
        return d;
    }
    if (inWindow(cfg_.partitionPeriodMsgs, cfg_.partitionLenMsgs)) {
        d.delivered = false;
        d.partitioned = true;
        ++msgIndex_;
        return d;
    }
    if (nextScripted_ < cfg_.scriptedDrops.size() &&
        cfg_.scriptedDrops[nextScripted_] == msgIndex_) {
        ++nextScripted_;
        d.delivered = false;
        ++msgIndex_;
        return d;
    }
    // Fixed draw order keeps the stream reproducible for a given
    // config: each enabled hazard consumes exactly one uniform.
    if (cfg_.dropProb > 0 && rng_.uniform() < cfg_.dropProb)
        d.delivered = false;
    if (cfg_.dupProb > 0 && rng_.uniform() < cfg_.dupProb)
        d.duplicated = d.delivered;
    if (cfg_.spikeProb > 0 && rng_.uniform() < cfg_.spikeProb)
        d.extraLatencySeconds =
            rng_.uniform(0.0, cfg_.spikeMaxUs) * 1e-6;
    if (inWindow(cfg_.degradePeriodMsgs, cfg_.degradeLenMsgs))
        d.bandwidthFactor = cfg_.degradeFactor;
    ++msgIndex_;
    return d;
}

} // namespace xisa
