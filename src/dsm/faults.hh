/**
 * @file
 * Seeded, deterministic fault injection for the interconnect and the
 * control layers above it.
 *
 * The paper's testbed joins two immortal servers with a perfect Dolphin
 * PXH810 link; a datacenter does not. A FaultPlan decides, message by
 * message, whether the next interconnect send is delivered, dropped,
 * duplicated, delayed by a latency spike, degraded to a fraction of the
 * link bandwidth, or rejected outright because the link is partitioned.
 * Every decision is drawn from a seeded Rng plus message-index windows,
 * so a (seed, config) pair replays the exact same fault schedule --
 * which is what makes the chaos test suite assertable.
 *
 * An empty FaultConfig (the default) injects nothing and adds no cost:
 * the fault-free paths are bit-identical to a build without this layer
 * (guarded by the golden-output tests).
 */

#ifndef XISA_DSM_FAULTS_HH
#define XISA_DSM_FAULTS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hh"

namespace xisa {

/**
 * One named cut-set: a topology-derived partition of the peer set.
 * While one of its windows is open, every message whose endpoints
 * straddle the cut fails fast exactly like the legacy whole-link
 * partition (no wire traffic, latency-only cost). `sideA` lists the
 * peers on one side of the cut -- typically the members of one rack or
 * pod, as produced by Topology::rackCut()/podCut(). An EMPTY sideA
 * severs the whole link (every pair crosses, peer-less sends
 * included), which is exactly what the legacy
 * partitionPeriodMsgs/LenMsgs fields meant: FaultPlan normalizes those
 * fields into a whole-link cut at construction, so the legacy flag is
 * sugar for a one-entry cut-set.
 */
struct FaultCut {
    /** Peers on one side of the cut; empty = whole-link cut. */
    std::vector<int> sideA;
    /** Window schedule, message-index space (like every window here):
     *  every `periodMsgs` messages the cut is open for `lenMsgs`. */
    uint64_t periodMsgs = 0;
    uint64_t lenMsgs = 0;
};

/**
 * One fault schedule. Probabilities are per message; windows are
 * expressed in message-index space (message k counts every send()
 * attempt on the link, retries included), which keeps the model
 * deterministic without requiring the interconnect to track simulated
 * time.
 *
 * UNITS -- message indices vs duration fractions. This struct is the
 * single place where the two time bases meet, so the conversion rule
 * lives here: every window in a FaultConfig (partition, degrade,
 * cut-set) counts MESSAGES, because the interconnect has no wall
 * clock; every time in the conf surface above it ([failures] at/heal,
 * serving [crashes] time) is a FRACTION of the experiment's active
 * duration in [0, 1), because conf authors think in wall time. The
 * layer that owns a clock converts exactly once at parse time
 * (`t = fraction * durationSeconds`, see exp::applyFailures), and
 * nothing downstream ever mixes the bases: a fraction never reaches a
 * FaultPlan, a message index never appears in a conf.
 */
struct FaultConfig {
    uint64_t seed = 0x5eedf417u;
    /** Probability a message is lost in flight (sender times out). */
    double dropProb = 0;
    /** Probability a delivered message arrives twice (NIC retransmit
     *  races the ack); receivers must be idempotent. */
    double dupProb = 0;
    /** Probability of a latency spike on a delivered message. */
    double spikeProb = 0;
    /** Spike magnitude: uniform in (0, spikeMaxUs] extra latency. */
    double spikeMaxUs = 50.0;
    /** Serialization-time multiplier inside degradation windows
     *  (2.0 = half the bandwidth). 1.0 disables. */
    double degradeFactor = 1.0;
    /** Bandwidth-degradation windows: every `degradePeriodMsgs`
     *  messages, the next `degradeLenMsgs` are degraded. 0 = never. */
    uint64_t degradePeriodMsgs = 0;
    uint64_t degradeLenMsgs = 0;
    /** Legacy whole-link partition windows: every
     *  `partitionPeriodMsgs` messages the link is down for
     *  `partitionLenMsgs` attempts (sends fail fast with no wire
     *  traffic). 0 = never. Normalized into a whole-link FaultCut at
     *  FaultPlan construction; prefer cutSets in new code. */
    uint64_t partitionPeriodMsgs = 0;
    uint64_t partitionLenMsgs = 0;
    /** Topology-level partitions: named cut-sets, each with its own
     *  window schedule. Only messages that cross an open cut fail. */
    std::vector<FaultCut> cutSets;
    /** Scripted drops by absolute message index (0-based), for tests
     *  that pin exact retry/accounting behaviour. */
    std::vector<uint64_t> scriptedDrops;

    /** True if this config can never perturb a message. */
    bool empty() const;
};

/**
 * Retry discipline for reliable transfers: per-attempt ack timeout plus
 * capped exponential backoff (timeout, then backoff * 2^k up to the
 * cap). All figures are sender-side wall time.
 */
struct RetryPolicy {
    int maxAttempts = 64;     ///< reliableSend() panics beyond this
    double timeoutUs = 10.0;  ///< ack timeout charged per failed attempt
    double backoffUs = 5.0;   ///< initial backoff after a failure
    double backoffCapUs = 320.0;

    /** Circuit breaker: after this many consecutive timeouts to one
     *  peer the circuit opens and reliableSendTo() fails fast
     *  (xfault.circuit_open) instead of blocking callers through a
     *  permanent partition. 0 disables it (the legacy behaviour). */
    int breakerThreshold = 0;
    /** Half-open probing while open: one real attempt is let through
     *  every 2..(2+breakerProbeSpread) suppressed calls, with the gap
     *  drawn from a seeded stream so probing stays deterministic. */
    int breakerProbeSpread = 3;
    /** Seeds the half-open probe-gap stream. */
    uint64_t breakerSeed = 0xb4ea4e55ull;

    /** Largest exponent fed to the 2^k backoff scale. Shifting by the
     *  raw attempt count is undefined beyond 63 and, before the cap
     *  was applied, wrapped the delay back to a tiny (or zero)
     *  backoff on long retry storms. */
    static constexpr int kMaxBackoffExp = 62;

    /**
     * Backoff charged after failed attempt `attempt` (1-based):
     * backoffUs * 2^(attempt-1), with the exponent capped before the
     * shift and the result clamped to backoffCapUs. Identical to the
     * classic doubling sequence for every in-range attempt, but safe
     * for arbitrarily large retry counts.
     */
    double
    backoffForAttempt(int attempt) const
    {
        int exp = attempt > 1 ? attempt - 1 : 0;
        if (exp > kMaxBackoffExp)
            exp = kMaxBackoffExp;
        double raw = backoffUs *
                     static_cast<double>(1ull << static_cast<unsigned>(exp));
        return raw < backoffCapUs ? raw : backoffCapUs;
    }
};

/** The fate of one message, as decided by the plan. */
struct FaultDecision {
    bool delivered = true;
    bool duplicated = false;
    /** Link down: the send fails fast, nothing crosses the wire. */
    bool partitioned = false;
    /** The partition came from a SIDED cut-set (a topology partition,
     *  not a dead link): the far side should be suspected, never
     *  declared dead -- a cut heals. False for whole-link cuts, which
     *  keep the legacy partition-to-death escalation. */
    bool sidedCut = false;
    double extraLatencySeconds = 0;
    double bandwidthFactor = 1.0; ///< multiplies serialization time
};

/** Stateful, seeded evaluator of a FaultConfig. */
class FaultPlan
{
  public:
    /** The empty plan: every message is delivered untouched. */
    FaultPlan() = default;
    explicit FaultPlan(const FaultConfig &cfg);

    bool empty() const { return empty_; }
    /** Effective config after constructor normalization (the legacy
     *  partition pair folded into a whole-link cut-set). */
    const FaultConfig &config() const { return cfg_; }
    /** Decide the fate of the next message (advances the stream).
     *  Equivalent to nextBetween(-1, -1): a peer-less message crosses
     *  whole-link cuts but never a sided one. */
    FaultDecision next() { return nextBetween(-1, -1); }
    /**
     * Decide the fate of the next message sent from `from` to `to`
     * (advances the stream). A cut-set window only fires when the
     * endpoints straddle the cut; everything else is identical to
     * next(), so on a config without sided cuts the decision stream is
     * byte-identical for any (from, to).
     */
    FaultDecision nextBetween(int from, int to);
    /** Messages decided so far. */
    uint64_t messagesSeen() const { return msgIndex_; }

  private:
    bool inWindow(uint64_t period, uint64_t len) const;
    static bool crosses(const FaultCut &cut, int from, int to);

    FaultConfig cfg_;
    Rng rng_;
    uint64_t msgIndex_ = 0;
    size_t nextScripted_ = 0;
    bool empty_ = true;
};

} // namespace xisa

#endif // XISA_DSM_FAULTS_HH
