#include "dsm/dsm.hh"

#include <algorithm>
#include <cstring>

#include "obs/trace.hh"
#include "util/env.hh"
#include "util/logging.hh"

namespace xisa {

namespace {
/** Protocol message header size modeled for control traffic. */
constexpr uint64_t kMsgHeader = 64;

#if XISA_TRACE
/** Record a DSM fault as a span at the ambient cursor, advancing the
 *  cursor by the charged cycles converted at `freqGHz`. */
void
traceFault(const char *name, uint64_t cyc, double freqGHz)
{
    if (!obs::traceEnabled())
        return;
    obs::TraceCursor &cur = obs::traceCursor();
    double dur = static_cast<double>(cyc) * 1e-9 / freqGHz;
    obs::Tracer::global().begin(cur.track, "dsm", name, cur.tsSeconds);
    obs::Tracer::global().end(cur.track, cur.tsSeconds + dur);
    cur.tsSeconds += dur;
}
#endif
} // namespace

DsmSpace::DsmSpace(int numNodes, Interconnect *net,
                   std::vector<double> freqGHz, DsmMode mode)
    : numNodes_(numNodes), net_(net), freqGHz_(std::move(freqGHz)),
      tlbEnabled_(!slowPathRequested()), mode_(mode)
{
    if (numNodes < 1)
        fatal("DsmSpace needs at least one node");
    if (freqGHz_.size() != static_cast<size_t>(numNodes))
        fatal("DsmSpace: %zu frequencies for %d nodes", freqGHz_.size(),
              numNodes);
    XISA_CHECK(net_ != nullptr, "DsmSpace needs an interconnect");
    mem_.resize(static_cast<size_t>(numNodes));
    ports_.reserve(static_cast<size_t>(numNodes));
    for (int n = 0; n < numNodes; ++n)
        ports_.emplace_back(*this, n);
    nodeStats_ = std::vector<NodeStats>(static_cast<size_t>(numNodes));
    alive_.assign(static_cast<size_t>(numNodes), 1);
    cutSide_.assign(static_cast<size_t>(numNodes), 0);
    nodeEpoch_.assign(static_cast<size_t>(numNodes), 1);
    epochSeen_.assign(static_cast<size_t>(numNodes) *
                          static_cast<size_t>(numNodes),
                      0);
}

void
DsmSpace::armRecovery(FailureDetector *fd)
{
    XISA_CHECK(fd != nullptr, "armRecovery needs a detector");
    fd_ = fd;
    net_->armRecovery(fd);
    if (!journal_)
        journal_ = std::make_unique<PageJournal>(vm::kPageSize);
    // First commit: every page the loader already installed gets its
    // initial frame, so even a crash before the first protocol epoch
    // restores the program image.
    for (auto &[vpage, d] : dirs_) {
        int holder = anyHolder(d);
        if (holder >= 0)
            journal_->capture(
                vpage, mem_[static_cast<size_t>(holder)].page(vpage));
    }
}

int
DsmSpace::recoveryTarget() const
{
    for (int n = 0; n < numNodes_; ++n)
        if (alive_[static_cast<size_t>(n)])
            return n;
    return -1;
}

void
DsmSpace::journalTouch(uint64_t vpage, int node)
{
    if (journal_)
        journal_->capture(vpage,
                          mem_[static_cast<size_t>(node)].page(vpage));
}

void
DsmSpace::journalCommit()
{
    if (!journal_)
        return;
    journal_->commitAll([&](uint64_t vpage) -> const uint8_t * {
        auto it = dirs_.find(vpage);
        if (it == dirs_.end())
            return nullptr;
        int holder = anyHolder(it->second);
        if (holder < 0 || !alive_[static_cast<size_t>(holder)])
            return nullptr;
        return mem_[static_cast<size_t>(holder)].page(vpage);
    });
}

DsmSpace::Xfer
DsmSpace::xfer(int peer, uint64_t bytes, int forNode, uint64_t vpage)
{
    double freq = freqGHz_[static_cast<size_t>(forNode)];
    if (partActive_ && cutSide_[static_cast<size_t>(peer)] !=
                           cutSide_[static_cast<size_t>(forNode)]) {
        // The peer is across the cut: fail fast at link latency, no
        // wire traffic, no fault decision. The detector is told this
        // is a cut (suspicion capped below Dead) -- the peer is
        // unreachable, not gone, and fencing it would be split-brain.
        Xfer x;
        x.ok = false;
        x.fenced = true;
        x.cycles = static_cast<uint64_t>(net_->transferSeconds(0) *
                                         freq * 1e9);
        ++cutRejects_;
        if (fd_)
            fd_->observeCut(peer);
        return x;
    }
    if (!fd_) {
        // Legacy contract (possibly with a circuit breaker layered on):
        // no recovery to run, so an undeliverable message is fatal.
        auto r = net_->reliableSendTo(peer, bytes, freq, forNode);
        if (!r.delivered)
            fatal("dsm: transfer to node %d failed fast with no "
                  "recovery armed (open circuit on a dead link?)",
                  peer);
        noteDelivery(forNode, peer, vpage,
                     nodeEpoch_[static_cast<size_t>(forNode)]);
        return {r.cycles, r.duplicate, true, false};
    }
    Xfer x;
    // With the breaker open most rounds fail fast and only the seeded
    // half-open probes feed the detector, so the number of rounds to a
    // declared death is bounded but larger than the miss threshold.
    constexpr int kMaxRounds = 4096;
    for (int round = 0; round < kMaxRounds; ++round) {
        auto r = net_->reliableSendTo(peer, bytes, freq, forNode);
        x.cycles += r.cycles;
        if (r.delivered) {
            x.duplicate = r.duplicate;
            noteDelivery(forNode, peer, vpage,
                         nodeEpoch_[static_cast<size_t>(forNode)]);
            return x;
        }
        if (fd_->dead(peer)) {
            recoverDeadNode(peer);
            x.ok = false;
            return x;
        }
    }
    fatal("dsm: transfer to node %d failed %d rounds without the "
          "detector declaring it dead",
          peer, kMaxRounds);
}

void
DsmSpace::noteDelivery(int from, int to, uint64_t vpage, uint64_t epoch)
{
    if (partActive_ && cutSide_[static_cast<size_t>(from)] !=
                           cutSide_[static_cast<size_t>(to)])
        // Auditor-enforced: nothing may be delivered across an open
        // cut. By construction xfer() fails fast first, so reaching
        // this tag means the partition check regressed.
        auditStep("cross_cut_delivery", vpage);
    uint64_t &seen = epochSeen_[static_cast<size_t>(to) *
                                    static_cast<size_t>(numNodes_) +
                                static_cast<size_t>(from)];
    if (epoch < seen ||
        epoch < nodeEpoch_[static_cast<size_t>(from)])
        // Auditor-enforced: the epoch a receiver sees from each peer
        // is monotone, and a message may not arrive from a sender's
        // PAST epoch (heals mint a new one everywhere). Only a stale
        // pre-heal message applied without the fence (the
        // setEpochFencing(false) knob) can get here.
        auditStep("epoch_regression", vpage);
    else
        seen = epoch;
}

void
DsmSpace::beginPartition(const std::vector<int> &minority)
{
    XISA_CHECK(!partActive_, "dsm: partitions do not nest");
    XISA_CHECK(!minority.empty(), "dsm: empty minority side");
    std::fill(cutSide_.begin(), cutSide_.end(), 0);
    for (int n : minority) {
        XISA_CHECK(n >= 0 && n < numNodes_,
                   "dsm: partition member out of range");
        cutSide_[static_cast<size_t>(n)] = 1;
    }
    int minoritySize = 0;
    for (char c : cutSide_)
        minoritySize += c;
    XISA_CHECK(minoritySize < numNodes_,
               "dsm: partition needs nodes on both sides");
    partActive_ = true;
    auditStep("partition_begin", 0);
}

void
DsmSpace::healPartition()
{
    XISA_CHECK(partActive_, "dsm: no partition to heal");
    partActive_ = false;
    // Every heal mints a new epoch on every node FIRST: anything
    // still carrying a pre-heal stamp is now provably stale. The
    // mint is unconditional -- fencing only controls whether the
    // receiver ENFORCES it by rejecting, so the knob-off shape below
    // is recognizably wrong to the auditor.
    for (uint64_t &e : nodeEpoch_)
        ++e;
    if (fencing_) {
        for (const FencedMsg &m : outbox_) {
            if (m.epoch < nodeEpoch_[static_cast<size_t>(m.from)]) {
                ++fencedMessages_;
                auditStep("fenced_stale", m.vpage);
                continue;
            }
            applyStaleInval(m.to, m.vpage); // unreachable with the
                                            // fence up; kept for the
                                            // knob-off shape below
        }
        outbox_.clear();
        resyncDivergent();
    } else {
        // Regression knob: no rejection, no re-sync -- the deferred
        // pre-heal messages apply as if the partition never happened.
        // This is the split-brain shape the chaos tests pin down: the
        // minority's stale invalidations kill the majority's good
        // copies, and the auditor (via noteDelivery's epoch check)
        // flags every one as an epoch regression.
        for (const FencedMsg &m : outbox_) {
            noteDelivery(m.from, m.to, m.vpage, m.epoch);
            applyStaleInval(m.to, m.vpage);
        }
        outbox_.clear();
        divergent_.clear();
    }
    auditStep("partition_heal", 0);
}

void
DsmSpace::applyStaleInval(int to, uint64_t vpage)
{
    Dir &d = dir(vpage);
    size_t sn = static_cast<size_t>(to);
    if (d.state[sn] == PageState::Invalid)
        return;
    d.state[sn] = PageState::Invalid;
    mem_[sn].dropPage(vpage);
    ports_[sn].tlbDropPage(vpage);
}

void
DsmSpace::resyncDivergent()
{
    for (uint64_t vpage : divergent_) {
        Dir &d = dir(vpage);
        // The majority side is authoritative. A page living purely on
        // the minority was never contested; it survives as-is.
        int majHolder = -1;
        for (int n = 0; n < numNodes_; ++n) {
            size_t sn = static_cast<size_t>(n);
            if (cutSide_[sn] ||
                d.state[sn] == PageState::Invalid)
                continue;
            if (majHolder < 0 ||
                d.state[sn] == PageState::Modified)
                majHolder = n;
        }
        if (majHolder < 0)
            continue;
        bool dropped = false;
        for (int n = 0; n < numNodes_; ++n) {
            size_t sn = static_cast<size_t>(n);
            if (!cutSide_[sn] || d.state[sn] == PageState::Invalid)
                continue;
            d.state[sn] = PageState::Invalid;
            mem_[sn].dropPage(vpage);
            ports_[sn].tlbDropPage(vpage);
            dropped = true;
        }
        if (dropped) {
            ++pagesResynced_;
            journalTouch(vpage, majHolder);
            auditStep("partition_resync", vpage);
        }
    }
    divergent_.clear();
}

void
DsmSpace::recoverDeadNode(int dead)
{
    if (!alive_[static_cast<size_t>(dead)])
        return; // already recovered (idempotent)
    if (fd_)
        fd_->declareDead(dead); // fence: never trust this peer again
    alive_[static_cast<size_t>(dead)] = 0;
    int target = recoveryTarget();
    if (target < 0)
        fatal("dsm: no surviving node after node %d died", dead);
    // The directory is inconsistent (dead copies not yet dropped) until
    // the sweep below finishes; the auditor holds its dead-node checks.
    recovering_ = true;
    for (auto &[vpage, d] : dirs_) {
        bool hadCopy =
            d.state[static_cast<size_t>(dead)] != PageState::Invalid;
        d.state[static_cast<size_t>(dead)] = PageState::Invalid;
        if (!hadCopy)
            continue;
        mem_[static_cast<size_t>(dead)].dropPage(vpage);
        ports_[static_cast<size_t>(dead)].tlbDropPage(vpage);
        if (anyHolder(d) >= 0)
            continue; // a surviving replica keeps the page alive
        // Sole copy died with the node: restore the last committed
        // frame (zeros for a page that never reached a commit point --
        // it was cold-materialized and is re-faultable as such).
        uint8_t *pg = mem_[static_cast<size_t>(target)].page(vpage);
        const uint8_t *frame =
            journal_ ? journal_->lookup(vpage) : nullptr;
        if (frame)
            std::memcpy(pg, frame, vm::kPageSize);
        else
            std::memset(pg, 0, vm::kPageSize);
        d.state[static_cast<size_t>(target)] = PageState::Modified;
        ++pagesRecovered_;
        auditStep("page_recovered", vpage);
    }
    ports_[static_cast<size_t>(dead)].tlbFlush();
    for (auto &[vpage, h] : home_) {
        if (h == dead) {
            h = target;
            ++pagesRehomed_;
        }
    }
    recovering_ = false;
    auditStep("recover_node", static_cast<uint64_t>(dead));
    if (deathHandler_)
        deathHandler_(dead);
}

DsmStats
DsmSpace::stats() const
{
    return {readFaults_.value(),     writeFaults_.value(),
            invalidations_.value(),  pageTransfers_.value(),
            bytesTransferred_.value(), extraCycles_.value()};
}

void
DsmSpace::resetStats()
{
    readFaults_.reset();
    writeFaults_.reset();
    invalidations_.reset();
    pageTransfers_.reset();
    bytesTransferred_.reset();
    extraCycles_.reset();
    for (NodeStats &ns : nodeStats_) {
        ns.readFaults.reset();
        ns.writeFaults.reset();
        ns.invalidations.reset();
        ns.pagesIn.reset();
    }
}

void
DsmSpace::registerStats(obs::StatRegistry &reg)
{
    reg.attach("dsm.read_faults", readFaults_);
    reg.attach("dsm.write_faults", writeFaults_);
    reg.attach("dsm.invalidations", invalidations_);
    reg.attach("dsm.page_transfers", pageTransfers_);
    reg.attach("dsm.bytes_transferred", bytesTransferred_);
    reg.attach("dsm.extra_cycles", extraCycles_);
    reg.attach("xfault.pages_recovered", pagesRecovered_);
    reg.attach("xfault.pages_rehomed", pagesRehomed_);
    reg.attach("xfault.cut_rejects", cutRejects_);
    reg.attach("xfault.fenced_messages", fencedMessages_);
    reg.attach("xfault.pages_resynced", pagesResynced_);
    if (journal_)
        journal_->registerStats(reg);
    for (int n = 0; n < numNodes_; ++n) {
        std::string p = "node" + std::to_string(n) + ".dsm";
        NodeStats &ns = nodeStats_[static_cast<size_t>(n)];
        reg.attach(p + ".read_faults", ns.readFaults);
        reg.attach(p + ".write_faults", ns.writeFaults);
        reg.attach(p + ".invalidations", ns.invalidations);
        reg.attach(p + ".pages_in", ns.pagesIn);
    }
}

MemPort &
DsmSpace::port(int node)
{
    return ports_[static_cast<size_t>(node)];
}

void
DsmSpace::flushTlb(int node)
{
    ports_[static_cast<size_t>(node)].tlbFlush();
}

void
DsmSpace::flushAllTlbs()
{
    for (Port &p : ports_)
        p.tlbFlush();
}

void
DsmSpace::tlbFill(int node, uint64_t vpage, bool writable)
{
    if (!tlbEnabled_)
        return;
    if (mode_ == DsmMode::RemoteAccess) {
        // Only node-local home pages are free to access directly.
        if (isVdso(vpage) || homeOf(node, vpage) != node)
            return;
        uint8_t *base = mem_[static_cast<size_t>(node)].page(vpage);
        ports_[static_cast<size_t>(node)].tlbInstallRead(vpage, base);
        ports_[static_cast<size_t>(node)].tlbInstallWrite(vpage, base);
        auditStep("tlb_fill", vpage);
        return;
    }
    uint8_t *base = mem_[static_cast<size_t>(node)].page(vpage);
    ports_[static_cast<size_t>(node)].tlbInstallRead(vpage, base);
    if (writable && !isVdso(vpage))
        ports_[static_cast<size_t>(node)].tlbInstallWrite(vpage, base);
    auditStep("tlb_fill", vpage);
}

DsmSpace::Dir &
DsmSpace::dir(uint64_t vpage)
{
    auto it = dirs_.find(vpage);
    if (it == dirs_.end()) {
        Dir d;
        d.state.assign(static_cast<size_t>(numNodes_),
                       PageState::Invalid);
        it = dirs_.emplace(vpage, std::move(d)).first;
    }
    return it->second;
}

bool
DsmSpace::isVdso(uint64_t vpage) const
{
    return vpage == vm::kVdsoBase / vm::kPageSize;
}

int
DsmSpace::anyHolder(const Dir &d) const
{
    int shared = -1;
    for (int n = 0; n < numNodes_; ++n) {
        if (d.state[static_cast<size_t>(n)] == PageState::Modified)
            return n;
        if (d.state[static_cast<size_t>(n)] == PageState::Shared)
            shared = n;
    }
    return shared;
}

uint64_t
DsmSpace::faultRead(int node, uint64_t vpage)
{
    if (isVdso(vpage))
        return 0; // replicated by kernel broadcast, never faults
    Dir &d = dir(vpage);
    if (d.state[static_cast<size_t>(node)] != PageState::Invalid)
        return 0;
    NodeStats &ns = nodeStats_[static_cast<size_t>(node)];
    ++readFaults_;
    ++ns.readFaults;
    uint64_t cyc = 0;
    for (;;) {
        if (d.state[static_cast<size_t>(node)] != PageState::Invalid)
            break; // recovery restored the page onto this very node
        int holder = anyHolder(d);
        if (holder < 0) {
            // Cold anonymous page: materializes zero-filled locally.
            d.state[static_cast<size_t>(node)] = PageState::Shared;
            mem_[static_cast<size_t>(node)].page(vpage);
            journalTouch(vpage, node);
            auditStep("read_fault_cold", vpage);
            return cyc;
        }
        // Idempotent transfer application: a duplicate delivery (NIC
        // retransmission racing the ack) re-runs the same state change.
        auto applyCopy = [&] {
            std::memcpy(mem_[static_cast<size_t>(node)].page(vpage),
                        mem_[static_cast<size_t>(holder)].page(vpage),
                        vm::kPageSize);
            if (d.state[static_cast<size_t>(holder)] ==
                PageState::Modified) {
                d.state[static_cast<size_t>(holder)] = PageState::Shared;
                // Exclusive-ownership downgrade: the holder loses its
                // cached write translation (reads stay valid).
                ports_[static_cast<size_t>(holder)].tlbDropWrite(vpage);
            }
            d.state[static_cast<size_t>(node)] = PageState::Shared;
        };
        Xfer sent = xfer(holder, vm::kPageSize + kMsgHeader, node,
                         vpage);
        cyc += sent.cycles;
        if (sent.fenced)
            // The only copy lives across an open cut. A real node
            // would block here until the heal; the simulator makes
            // the dependency fatal so chaos tests must keep each
            // side's working set on its own side of the cut.
            fatal("dsm: node %d read-faulted page 0x%llx whose only "
                  "copy is across an active partition",
                  node, static_cast<unsigned long long>(vpage));
        if (!sent.ok)
            continue; // holder died mid-transfer; directory rebuilt
        applyCopy();
        if (sent.duplicate)
            applyCopy();
        ++pageTransfers_;
        ++ns.pagesIn;
        bytesTransferred_.add(vm::kPageSize);
        break;
    }
    extraCycles_.add(cyc);
#if XISA_TRACE
    traceFault("read_fault", cyc, freqGHz_[static_cast<size_t>(node)]);
#endif
    auditStep("read_fault", vpage);
    return cyc;
}

uint64_t
DsmSpace::faultWrite(int node, uint64_t vpage)
{
    if (isVdso(vpage))
        return 0;
    Dir &d = dir(vpage);
    if (d.state[static_cast<size_t>(node)] == PageState::Modified)
        return 0;
    NodeStats &ns = nodeStats_[static_cast<size_t>(node)];
    ++writeFaults_;
    ++ns.writeFaults;
    uint64_t cyc = 0;
    while (d.state[static_cast<size_t>(node)] == PageState::Invalid) {
        int holder = anyHolder(d);
        if (holder < 0) {
            mem_[static_cast<size_t>(node)].page(vpage);
            break;
        }
        auto applyCopy = [&] {
            std::memcpy(mem_[static_cast<size_t>(node)].page(vpage),
                        mem_[static_cast<size_t>(holder)].page(vpage),
                        vm::kPageSize);
        };
        Xfer sent = xfer(holder, vm::kPageSize + kMsgHeader, node,
                         vpage);
        cyc += sent.cycles;
        if (sent.fenced)
            fatal("dsm: node %d write-faulted page 0x%llx whose only "
                  "copy is across an active partition",
                  node, static_cast<unsigned long long>(vpage));
        if (!sent.ok)
            continue; // holder died mid-transfer; directory rebuilt
        applyCopy();
        if (sent.duplicate)
            applyCopy();
        ++pageTransfers_;
        ++ns.pagesIn;
        bytesTransferred_.add(vm::kPageSize);
        break;
    }
    // Ownership transfer is a journal epoch: freeze the pre-write
    // content before the surviving replicas are invalidated, so a
    // crash of the new owner rolls back to this instant.
    journalTouch(vpage, node);
    // Invalidate every other copy. Each invalidation is a reliable
    // control message; applying one twice (duplicate delivery) is a
    // no-op, the copy is already gone.
    for (int n = 0; n < numNodes_; ++n) {
        if (n == node)
            continue;
        while (d.state[static_cast<size_t>(n)] != PageState::Invalid) {
            auto applyInval = [&] {
                d.state[static_cast<size_t>(n)] = PageState::Invalid;
                mem_[static_cast<size_t>(n)].dropPage(vpage);
                // The backing page is gone; both translations die.
                ports_[static_cast<size_t>(n)].tlbDropPage(vpage);
            };
            Xfer sent = xfer(n, kMsgHeader, node, vpage);
            cyc += sent.cycles;
            if (sent.fenced) {
                // The invalidation cannot cross the cut: defer it
                // into the fenced outbox (stamped with the sender's
                // CURRENT epoch, which the heal will make stale) and
                // leave n's copy in place. The page now has replicas
                // on both sides with different histories -- divergent
                // until the heal re-syncs it.
                outbox_.push_back(
                    {node, n, vpage,
                     nodeEpoch_[static_cast<size_t>(node)]});
                divergent_.insert(vpage);
                break;
            }
            if (!sent.ok)
                break; // n died; recovery already dropped its copy
            applyInval();
            if (sent.duplicate)
                applyInval();
            ++invalidations_;
            ++nodeStats_[static_cast<size_t>(n)].invalidations;
            break;
        }
    }
    d.state[static_cast<size_t>(node)] = PageState::Modified;
    extraCycles_.add(cyc);
#if XISA_TRACE
    traceFault("write_fault", cyc, freqGHz_[static_cast<size_t>(node)]);
#endif
    auditStep("write_fault", vpage);
    return cyc;
}

int
DsmSpace::homeOf(int toucher, uint64_t vpage)
{
    auto [it, fresh] = home_.try_emplace(vpage, toucher);
    if (fresh)
        dir(vpage).state[static_cast<size_t>(toucher)] =
            PageState::Modified;
    return it->second;
}

uint64_t
DsmSpace::Port::read(uint64_t addr, void *dst, unsigned n)
{
    uint64_t cyc = 0;
    uint8_t *d = static_cast<uint8_t *>(dst);
    uint64_t left = n;
    while (left > 0) {
        uint64_t vpage = addr / vm::kPageSize;
        uint64_t inPage = std::min<uint64_t>(
            left, vm::kPageSize - addr % vm::kPageSize);
        if (tryRead(addr, d, static_cast<unsigned>(inPage))) {
            // Cached translation: the copy is local and free.
        } else if (dsm_.mode_ == DsmMode::RemoteAccess &&
                   !dsm_.isVdso(vpage)) {
            int home = dsm_.homeOf(node_, vpage);
            if (home != node_) {
                // Word-granular remote load over the interconnect.
                uint64_t c = dsm_.net_->charge(
                    64 + inPage,
                    dsm_.freqGHz_[static_cast<size_t>(node_)]);
                cyc += c;
                ++dsm_.readFaults_;
                ++dsm_.nodeStats_[static_cast<size_t>(node_)].readFaults;
                dsm_.extraCycles_.add(c);
            }
            dsm_.mem_[static_cast<size_t>(home)].read(addr, d, inPage);
            dsm_.tlbFill(node_, vpage, /*writable=*/false);
        } else {
            cyc += dsm_.faultRead(node_, vpage);
            dsm_.mem_[static_cast<size_t>(node_)].read(addr, d, inPage);
            dsm_.tlbFill(node_, vpage, /*writable=*/false);
        }
        addr += inPage;
        d += inPage;
        left -= inPage;
    }
    return cyc;
}

uint64_t
DsmSpace::Port::write(uint64_t addr, const void *src, unsigned n)
{
    uint64_t cyc = 0;
    const uint8_t *s = static_cast<const uint8_t *>(src);
    uint64_t left = n;
    while (left > 0) {
        uint64_t vpage = addr / vm::kPageSize;
        uint64_t inPage = std::min<uint64_t>(
            left, vm::kPageSize - addr % vm::kPageSize);
        if (tryWrite(addr, s, static_cast<unsigned>(inPage))) {
            // Cached writable translation: exclusive owner, free.
        } else if (dsm_.mode_ == DsmMode::RemoteAccess &&
                   !dsm_.isVdso(vpage)) {
            int home = dsm_.homeOf(node_, vpage);
            if (home != node_) {
                uint64_t c = dsm_.net_->charge(
                    64 + inPage,
                    dsm_.freqGHz_[static_cast<size_t>(node_)]);
                cyc += c;
                ++dsm_.writeFaults_;
                ++dsm_.nodeStats_[static_cast<size_t>(node_)].writeFaults;
                dsm_.extraCycles_.add(c);
            }
            dsm_.mem_[static_cast<size_t>(home)].write(addr, s, inPage);
            dsm_.tlbFill(node_, vpage, /*writable=*/true);
        } else {
            cyc += dsm_.faultWrite(node_, vpage);
            dsm_.mem_[static_cast<size_t>(node_)].write(addr, s, inPage);
            dsm_.tlbFill(node_, vpage, /*writable=*/true);
        }
        addr += inPage;
        s += inPage;
        left -= inPage;
    }
    return cyc;
}

void
DsmSpace::populate(int homeNode, uint64_t addr, const void *src, size_t n)
{
    const uint8_t *s = static_cast<const uint8_t *>(src);
    while (n > 0) {
        uint64_t vpage = addr / vm::kPageSize;
        size_t inPage = std::min<size_t>(
            n, vm::kPageSize - addr % vm::kPageSize);
        dir(vpage).state[static_cast<size_t>(homeNode)] =
            PageState::Modified;
        home_.try_emplace(vpage, homeNode);
        mem_[static_cast<size_t>(homeNode)].write(addr, s, inPage);
        journalTouch(vpage, homeNode);
        addr += inPage;
        s += inPage;
        n -= inPage;
    }
}

void
DsmSpace::populateZero(int homeNode, uint64_t addr, size_t n)
{
    while (n > 0) {
        uint64_t vpage = addr / vm::kPageSize;
        size_t inPage = std::min<size_t>(
            n, vm::kPageSize - addr % vm::kPageSize);
        dir(vpage).state[static_cast<size_t>(homeNode)] =
            PageState::Modified;
        home_.try_emplace(vpage, homeNode);
        mem_[static_cast<size_t>(homeNode)].page(vpage);
        journalTouch(vpage, homeNode);
        addr += inPage;
        n -= inPage;
    }
}

void
DsmSpace::broadcastWrite64(uint64_t addr, uint64_t value)
{
    uint64_t vpage = addr / vm::kPageSize;
    Dir &d = dir(vpage);
    for (int n = 0; n < numNodes_; ++n) {
        if (!alive_[static_cast<size_t>(n)])
            continue; // a dead kernel gets no replica
        mem_[static_cast<size_t>(n)].write(addr, &value, 8);
        // Everyone is demoted to Shared; cached write rights expire.
        ports_[static_cast<size_t>(n)].tlbDropWrite(vpage);
        d.state[static_cast<size_t>(n)] = PageState::Shared;
    }
    auditStep("broadcast_write", vpage);
}

void
DsmSpace::peek(uint64_t addr, void *dst, size_t n)
{
    uint8_t *d = static_cast<uint8_t *>(dst);
    while (n > 0) {
        uint64_t vpage = addr / vm::kPageSize;
        size_t inPage = std::min<size_t>(
            n, vm::kPageSize - addr % vm::kPageSize);
        auto it = dirs_.find(vpage);
        int holder = it == dirs_.end() ? -1 : anyHolder(it->second);
        if (holder < 0)
            std::memset(d, 0, inPage);
        else
            mem_[static_cast<size_t>(holder)].read(addr, d, inPage);
        addr += inPage;
        d += inPage;
        n -= inPage;
    }
}

std::map<uint64_t, std::vector<uint8_t>>
DsmSpace::pageImage()
{
    std::map<uint64_t, std::vector<uint8_t>> image;
    for (const auto &[vpage, d] : dirs_) {
        int holder = anyHolder(d);
        if (holder < 0)
            continue;
        std::vector<uint8_t> bytes(vm::kPageSize);
        mem_[static_cast<size_t>(holder)].read(vpage * vm::kPageSize,
                                               bytes.data(),
                                               bytes.size());
        image.emplace(vpage, std::move(bytes));
    }
    return image;
}

uint64_t
DsmSpace::poke(int node, uint64_t addr, const void *src, size_t n)
{
    if (bypass_) {
        bypassWrite(addr, src, n);
        return 0;
    }
    return port(node).write(addr, src, static_cast<unsigned>(n));
}

uint64_t
DsmSpace::pull(int node, uint64_t addr, void *dst, size_t n)
{
    if (bypass_) {
        peek(addr, dst, n);
        return 0;
    }
    return port(node).read(addr, dst, static_cast<unsigned>(n));
}

void
DsmSpace::bypassWrite(uint64_t addr, const void *src, size_t n)
{
    const uint8_t *s = static_cast<const uint8_t *>(src);
    while (n > 0) {
        uint64_t vpage = addr / vm::kPageSize;
        size_t inPage = std::min<size_t>(
            n, vm::kPageSize - addr % vm::kPageSize);
        auto it = dirs_.find(vpage);
        if (it != dirs_.end()) {
            // Patch every valid replica so Shared copies stay
            // byte-identical; states, TLBs, and counters untouched.
            for (int node = 0; node < numNodes_; ++node)
                if (it->second.state[static_cast<size_t>(node)] !=
                    PageState::Invalid)
                    mem_[static_cast<size_t>(node)].write(addr, s,
                                                          inPage);
        }
        addr += inPage;
        s += inPage;
        n -= inPage;
    }
}

PageState
DsmSpace::state(int node, uint64_t vpage) const
{
    auto it = dirs_.find(vpage);
    if (it == dirs_.end())
        return PageState::Invalid;
    return it->second.state[static_cast<size_t>(node)];
}

int
DsmSpace::modifiedOwner(uint64_t vpage) const
{
    auto it = dirs_.find(vpage);
    if (it == dirs_.end())
        return -1;
    for (int n = 0; n < numNodes_; ++n)
        if (it->second.state[static_cast<size_t>(n)] ==
            PageState::Modified)
            return n;
    return -1;
}

void
DsmSpace::checkInvariants() const
{
    for (const auto &[vpage, d] : dirs_) {
        if (divergent_.count(vpage))
            continue; // straddles the cut (or the heal is mid-drain);
                      // re-synced and cleared by healPartition()
        int modified = 0, shared = 0;
        for (int n = 0; n < numNodes_; ++n) {
            if (d.state[static_cast<size_t>(n)] == PageState::Modified)
                ++modified;
            else if (d.state[static_cast<size_t>(n)] == PageState::Shared)
                ++shared;
        }
        if (modified > 1)
            panic("DSM invariant: page 0x%llx has %d Modified copies",
                  static_cast<unsigned long long>(vpage), modified);
        if (modified == 1 && shared > 0 &&
            vpage != vm::kVdsoBase / vm::kPageSize)
            panic("DSM invariant: page 0x%llx Modified with %d Shared",
                  static_cast<unsigned long long>(vpage), shared);
        for (int n = 0; n < numNodes_; ++n)
            if (!alive_[static_cast<size_t>(n)] &&
                d.state[static_cast<size_t>(n)] != PageState::Invalid)
                panic("DSM invariant: page 0x%llx valid on dead node "
                      "%d",
                      static_cast<unsigned long long>(vpage), n);
    }
}


void
DsmSpace::saveState(ByteWriter &w) const
{
    XISA_CHECK(!partActive_,
               "dsm: cannot snapshot during an active partition "
               "(heal first; the fenced outbox is not serialized)");
    w.u32(static_cast<uint32_t>(numNodes_));
    for (int n = 0; n < numNodes_; ++n) {
        const auto &pages = mem_[static_cast<size_t>(n)].pageMap();
        w.u32(static_cast<uint32_t>(pages.size()));
        for (const auto &[vpage, bytes] : pages) {
            w.u64(vpage);
            w.raw(bytes.data(), bytes.size());
        }
    }
    w.u32(static_cast<uint32_t>(dirs_.size()));
    for (const auto &[vpage, d] : dirs_) {
        w.u64(vpage);
        for (int n = 0; n < numNodes_; ++n)
            w.u8(static_cast<uint8_t>(d.state[static_cast<size_t>(n)]));
    }
    w.u32(static_cast<uint32_t>(home_.size()));
    for (const auto &[vpage, node] : home_) {
        w.u64(vpage);
        w.u32(static_cast<uint32_t>(node));
    }
    // Protocol counters. Without these a restored container's stats()
    // shim silently reported zeros while the run's registry history was
    // gone -- the snapshot must carry the counts the pages embody.
    w.u64(readFaults_.value());
    w.u64(writeFaults_.value());
    w.u64(invalidations_.value());
    w.u64(pageTransfers_.value());
    w.u64(bytesTransferred_.value());
    w.u64(extraCycles_.value());
    for (const NodeStats &ns : nodeStats_) {
        w.u64(ns.readFaults.value());
        w.u64(ns.writeFaults.value());
        w.u64(ns.invalidations.value());
        w.u64(ns.pagesIn.value());
    }
}

void
DsmSpace::loadState(ByteReader &r)
{
    if (r.u32() != static_cast<uint32_t>(numNodes_))
        fatal("DSM snapshot node count mismatch");
    for (int n = 0; n < numNodes_; ++n) {
        uint32_t count = r.u32();
        for (uint32_t p = 0; p < count; ++p) {
            uint64_t vpage = r.u64();
            uint8_t *page = mem_[static_cast<size_t>(n)].page(vpage);
            r.raw(page, vm::kPageSize);
        }
    }
    uint32_t dirCount = r.u32();
    for (uint32_t i = 0; i < dirCount; ++i) {
        uint64_t vpage = r.u64();
        Dir &d = dir(vpage);
        for (int n = 0; n < numNodes_; ++n)
            d.state[static_cast<size_t>(n)] =
                static_cast<PageState>(r.u8());
    }
    uint32_t homeCount = r.u32();
    for (uint32_t i = 0; i < homeCount; ++i) {
        uint64_t vpage = r.u64();
        home_[vpage] = static_cast<int>(r.u32());
    }
    auto setCounter = [](obs::Counter &c, uint64_t v) {
        c.reset();
        c.add(v);
    };
    setCounter(readFaults_, r.u64());
    setCounter(writeFaults_, r.u64());
    setCounter(invalidations_, r.u64());
    setCounter(pageTransfers_, r.u64());
    setCounter(bytesTransferred_, r.u64());
    setCounter(extraCycles_, r.u64());
    for (NodeStats &ns : nodeStats_) {
        setCounter(ns.readFaults, r.u64());
        setCounter(ns.writeFaults, r.u64());
        setCounter(ns.invalidations, r.u64());
        setCounter(ns.pagesIn, r.u64());
    }
    flushAllTlbs();
    // A restored space starts from a fresh commit point: re-capture
    // every restored page so post-restore crashes roll back to here.
    if (journal_) {
        for (auto &[vpage, d] : dirs_) {
            int holder = anyHolder(d);
            if (holder >= 0)
                journal_->capture(
                    vpage,
                    mem_[static_cast<size_t>(holder)].page(vpage));
        }
    }
    checkInvariants();
}
} // namespace xisa
