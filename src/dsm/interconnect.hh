/**
 * @file
 * Model of the inter-server link.
 *
 * The paper's testbed joins the ARM and x86 boards with a Dolphin ICS
 * PXH810 PCIe interconnect (up to 64 Gb/s, ~1 us end-to-end latency).
 * We model a message as latency + size/bandwidth and convert to cycles
 * at the requesting node's clock. The paper chose a full DSM protocol
 * over load/store PCIe shared memory because per-operation latencies are
 * too high; the bench_ablation_dsm harness reproduces that trade-off by
 * comparing page migration against always-remote access through this
 * same model.
 */

#ifndef XISA_DSM_INTERCONNECT_HH
#define XISA_DSM_INTERCONNECT_HH

#include <cstdint>
#include <string>

#include "obs/registry.hh"

namespace xisa {

/** Latency/bandwidth message-cost model plus traffic counters. */
class Interconnect
{
  public:
    struct Config {
        double latencyUs = 1.2;   ///< one-way message latency
        double gbitPerSec = 40.0; ///< effective bandwidth
    };

    Interconnect() = default;
    explicit Interconnect(const Config &cfg) : cfg_(cfg) {}

    /** Seconds to move `bytes` one way (latency + serialization). */
    double
    transferSeconds(uint64_t bytes) const
    {
        return cfg_.latencyUs * 1e-6 +
               static_cast<double>(bytes) * 8.0 /
                   (cfg_.gbitPerSec * 1e9);
    }

    /** Same cost expressed in cycles of a `freqGHz` clock; also counts
     *  the message in the traffic statistics. */
    uint64_t
    charge(uint64_t bytes, double freqGHz)
    {
        ++messages_;
        bytes_.add(bytes);
        return static_cast<uint64_t>(transferSeconds(bytes) * freqGHz *
                                     1e9);
    }

    /** Deprecated shims reading the registry-backed counters. */
    uint64_t messages() const { return messages_.value(); }
    uint64_t bytes() const { return bytes_.value(); }
    /** Deprecated: prefer resetting through the owning StatRegistry. */
    void resetStats()
    {
        messages_.reset();
        bytes_.reset();
    }
    /** Attach the traffic counters as `<prefix>.messages/.bytes`. */
    void
    registerStats(obs::StatRegistry &reg, const std::string &prefix)
    {
        reg.attach(prefix + ".messages", messages_);
        reg.attach(prefix + ".bytes", bytes_);
    }
    const Config &config() const { return cfg_; }

  private:
    Config cfg_;
    obs::Counter messages_;
    obs::Counter bytes_;
};

} // namespace xisa

#endif // XISA_DSM_INTERCONNECT_HH
