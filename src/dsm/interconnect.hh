/**
 * @file
 * Model of the inter-server link.
 *
 * The paper's testbed joins the ARM and x86 boards with a Dolphin ICS
 * PXH810 PCIe interconnect (up to 64 Gb/s, ~1 us end-to-end latency).
 * We model a message as latency + size/bandwidth and convert to cycles
 * at the requesting node's clock. The paper chose a full DSM protocol
 * over load/store PCIe shared memory because per-operation latencies are
 * too high; the bench_ablation_dsm harness reproduces that trade-off by
 * comparing page migration against always-remote access through this
 * same model.
 *
 * Unlike the paper's testbed the link is not assumed perfect: a seeded
 * FaultPlan (Config::faults) can drop, duplicate, delay, degrade, or
 * partition individual messages. send() reports the fate of one message
 * attempt; reliableSend() layers ack-timeout + capped-exponential-
 * backoff retry on top and is the primitive the hDSM protocol uses.
 * With the default (empty) fault config both collapse to exactly the
 * historical charge() behaviour.
 */

#ifndef XISA_DSM_INTERCONNECT_HH
#define XISA_DSM_INTERCONNECT_HH

#include <cstdint>
#include <string>
#include <unordered_map>

#include "dsm/faults.hh"
#include "dsm/recovery.hh"
#include "obs/registry.hh"

namespace xisa {

/** Fate of one send() attempt. */
enum class SendStatus : uint8_t { Delivered, Dropped, Partitioned };

/** Latency/bandwidth message-cost model plus traffic counters. */
class Interconnect
{
  public:
    struct Config {
        double latencyUs = 1.2;   ///< one-way message latency
        double gbitPerSec = 40.0; ///< effective bandwidth
        /** Fault schedule for this link (default: perfect link). */
        FaultConfig faults;
        /** Retry discipline for reliableSend(). */
        RetryPolicy retry;
    };

    /** Result of one message attempt. */
    struct SendResult {
        SendStatus status = SendStatus::Delivered;
        /** Delivered twice; the receiver must apply idempotently. */
        bool duplicate = false;
        /** Partitioned by a SIDED cut-set (topology partition): the
         *  peer is unreachable, not dead -- the detector clamps at
         *  Suspect instead of escalating toward a death verdict. */
        bool sidedCut = false;
        /** Sender-side wall time of the attempt (delivery time, or the
         *  wasted wire time of a loss; retry timeouts are the caller's
         *  or reliableSend()'s concern). */
        double seconds = 0;
        /** `seconds` at the requested clock. */
        uint64_t cycles = 0;
    };

    /** Result of a reliableSend(): total cost across every attempt,
     *  timeouts and backoff included. */
    struct ReliableResult {
        int attempts = 1;
        bool duplicate = false;
        /** False when reliableSendTo() gave up: the peer was declared
         *  dead by the failure detector, or the circuit breaker opened
         *  and this call failed fast. reliableSend() never clears it
         *  (it panics instead, the legacy contract). */
        bool delivered = true;
        double seconds = 0;
        uint64_t cycles = 0;
    };

    Interconnect() = default;
    explicit Interconnect(const Config &cfg)
        : cfg_(cfg), plan_(cfg.faults)
    {}

    /** Seconds to move `bytes` one way (latency + serialization). */
    double
    transferSeconds(uint64_t bytes) const
    {
        return cfg_.latencyUs * 1e-6 +
               static_cast<double>(bytes) * 8.0 /
                   (cfg_.gbitPerSec * 1e9);
    }

    /** Same cost expressed in cycles of a `freqGHz` clock; also counts
     *  the message in the traffic statistics. Assumes delivery -- use
     *  send()/reliableSend() on fault-injected links. */
    uint64_t
    charge(uint64_t bytes, double freqGHz)
    {
        ++messages_;
        bytes_.add(bytes);
        return static_cast<uint64_t>(transferSeconds(bytes) * freqGHz *
                                     1e9);
    }

    /**
     * Attempt to send one message. Dropped messages still count as wire
     * traffic (the bytes were sent, then lost); partitioned attempts
     * fail fast with no wire traffic and cost only the link latency.
     * A duplicate delivery counts the retransmission as extra traffic.
     * `from`/`to` identify the endpoints for sided cut-set windows;
     * the default (-1, -1) is a peer-less message, which crosses
     * whole-link cuts only -- byte-identical to the historical send().
     */
    SendResult send(uint64_t bytes, double freqGHz, int from = -1,
                    int to = -1);

    /**
     * Send until delivered, charging ack timeouts and capped
     * exponential backoff for every failed attempt; panics after
     * Config::retry.maxAttempts (an unrecoverable link). Deterministic
     * under the seeded plan.
     */
    ReliableResult reliableSend(uint64_t bytes, double freqGHz);

    /**
     * Peer-aware attempt: like send(), but advances the failure
     * detector's link-event clock, fails (without consuming a fault
     * decision) when `peer` has actually crashed, and feeds the
     * outcome to the detector as evidence. Without an armed detector
     * this is exactly send(). A sided-cut rejection is fed through
     * FailureDetector::observeCut (suspicion clamped below Dead).
     * `self` names the sending peer for cut-set windows; -1 (every
     * legacy caller) leaves sided cuts unmatched.
     */
    SendResult sendTo(int peer, uint64_t bytes, double freqGHz,
                      int self = -1);

    /**
     * Peer-aware reliable transfer. With neither a failure detector
     * nor a circuit breaker armed this is exactly reliableSend()
     * (byte-identical cost and fault-stream consumption). Armed, it
     * additionally:
     *  - feeds every outcome to the failure detector and returns
     *    delivered = false once the peer is declared Dead (instead of
     *    panicking at maxAttempts, it fences the peer);
     *  - opens the per-peer circuit after
     *    RetryPolicy::breakerThreshold consecutive timeouts
     *    (xfault.circuit_open) and from then on fails fast, letting a
     *    seeded half-open probe through every few calls; a delivered
     *    probe closes the circuit.
     */
    ReliableResult reliableSendTo(int peer, uint64_t bytes,
                                  double freqGHz, int self = -1);

    /** Arm the crash-tolerance layer: the detector is owned by the
     *  caller (the OS container or the test) and shared with the DSM. */
    void armRecovery(FailureDetector *fd) { detector_ = fd; }
    FailureDetector *detector() const { return detector_; }

    /** True while `peer`'s circuit is open (fail-fast mode). */
    bool circuitOpen(int peer) const;

    /** True if this link can inject faults at all. */
    bool faulty() const { return !plan_.empty(); }
    FaultPlan &faultPlan() { return plan_; }
    const RetryPolicy &retryPolicy() const { return cfg_.retry; }

    /** Deprecated shims reading the registry-backed counters. */
    uint64_t messages() const { return messages_.value(); }
    uint64_t bytes() const { return bytes_.value(); }
    /** Deprecated: prefer resetting through the owning StatRegistry. */
    void resetStats()
    {
        messages_.reset();
        bytes_.reset();
    }
    /**
     * Attach the traffic counters as `<prefix>.messages/.bytes`, and
     * the fault/recovery counters under the fixed `xfault.` namespace
     * (drops, duplicates, spikes, partition_rejects, retries,
     * backoff_cycles). One fault-injected link per registry.
     */
    void
    registerStats(obs::StatRegistry &reg, const std::string &prefix)
    {
        reg.attach(prefix + ".messages", messages_);
        reg.attach(prefix + ".bytes", bytes_);
        reg.attach("xfault.drops", drops_);
        reg.attach("xfault.duplicates", duplicates_);
        reg.attach("xfault.spikes", spikes_);
        reg.attach("xfault.partition_rejects", partitionRejects_);
        reg.attach("xfault.retries", retries_);
        reg.attach("xfault.backoff_cycles", backoffCycles_);
        reg.attach("xfault.circuit_open", circuitOpens_);
        reg.attach("xfault.circuit_fail_fast", circuitFailFast_);
        reg.attach("xfault.circuit_probes", circuitProbes_);
        reg.attach("xfault.dead_sends", deadSends_);
    }
    const Config &config() const { return cfg_; }

  private:
    /** Per-peer circuit-breaker state (created on first use). */
    struct Breaker {
        bool open = false;
        int consecutive = 0; ///< consecutive timeouts to this peer
        int sinceProbe = 0;  ///< suppressed calls since the last probe
        int probeGap = 0;    ///< calls to suppress before the next probe
        Rng rng;             ///< seeded probe-gap stream
    };

    Breaker &breakerState(int peer);
    /** A send into a host that has actually crashed: real wire
     *  traffic, no ack, and no FaultDecision consumed (the link is
     *  fine; the host is gone). */
    SendResult deadSend(uint64_t bytes, double freqGHz);

    Config cfg_;
    FaultPlan plan_;
    FailureDetector *detector_ = nullptr;
    std::unordered_map<int, Breaker> breakers_;
    obs::Counter messages_;
    obs::Counter bytes_;
    obs::Counter drops_;
    obs::Counter duplicates_;
    obs::Counter spikes_;
    obs::Counter partitionRejects_;
    obs::Counter retries_;
    obs::Counter backoffCycles_;
    obs::Counter circuitOpens_;
    obs::Counter circuitFailFast_;
    obs::Counter circuitProbes_;
    obs::Counter deadSends_;
};

} // namespace xisa

#endif // XISA_DSM_INTERCONNECT_HH
