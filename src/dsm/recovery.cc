#include "dsm/recovery.hh"

#include <cstring>
#include <limits>

#include "util/logging.hh"

namespace xisa {

FailureDetector::FailureDetector(int numNodes, const RecoveryConfig &cfg)
    : cfg_(cfg)
{
    if (numNodes <= 0)
        fatal("FailureDetector: need at least one node");
    crashStep_.assign(static_cast<size_t>(numNodes),
                      std::numeric_limits<uint64_t>::max());
    for (const PeerCrashEvent &ev : cfg_.crashes) {
        if (ev.node < 0 || ev.node >= numNodes)
            fatal("FailureDetector: crash event for node %d out of "
                  "range [0, %d)",
                  ev.node, numNodes);
        size_t n = static_cast<size_t>(ev.node);
        if (ev.atStep < crashStep_[n])
            crashStep_[n] = ev.atStep;
    }
    for (const ShipCrashEvent &ev : cfg_.shipCrashes) {
        if (ev.node < 0 || ev.node >= numNodes)
            fatal("FailureDetector: ship-crash event for node %d out "
                  "of range [0, %d)",
                  ev.node, numNodes);
    }
    // Seeded per-peer jitter on the detection thresholds, so peers are
    // not declared in lockstep and sweeps explore different detection
    // orderings from different seeds.
    obs_.resize(static_cast<size_t>(numNodes));
    Rng rng(cfg_.detectorSeed);
    for (Obs &o : obs_) {
        o.suspectAt =
            cfg_.suspectAfterMisses + static_cast<int>(rng.below(3));
        o.deadAt = cfg_.deadAfterMisses + static_cast<int>(rng.below(4));
        if (o.deadAt <= o.suspectAt)
            o.deadAt = o.suspectAt + 1;
    }
}

void
FailureDetector::onMigrationShip()
{
    for (const ShipCrashEvent &ev : cfg_.shipCrashes) {
        if (ev.atShip == shipIndex_ && !ev.afterDelivery) {
            size_t n = static_cast<size_t>(ev.node);
            if (clock_ < crashStep_[n])
                crashStep_[n] = clock_;
        }
    }
    ++shipIndex_;
}

void
FailureDetector::onMigrationShipDone()
{
    // shipIndex_ was already advanced past the attempt in question.
    for (const ShipCrashEvent &ev : cfg_.shipCrashes) {
        if (ev.atShip + 1 == shipIndex_ && ev.afterDelivery) {
            size_t n = static_cast<size_t>(ev.node);
            if (clock_ < crashStep_[n])
                crashStep_[n] = clock_;
        }
    }
}

bool
FailureDetector::miss(int node)
{
    Obs &o = obs_[static_cast<size_t>(node)];
    if (o.state == PeerState::Dead)
        return false;
    ++o.misses;
    if (o.state == PeerState::Alive && o.misses >= o.suspectAt)
        o.state = PeerState::Suspect;
    if (o.misses >= o.deadAt) {
        o.state = PeerState::Dead;
        ++deaths_;
        return true;
    }
    return false;
}

void
FailureDetector::beat(int node)
{
    Obs &o = obs_[static_cast<size_t>(node)];
    if (o.state == PeerState::Dead)
        return; // fenced: evidence of life is ignored after declaration
    if (o.state == PeerState::Suspect) {
        o.state = PeerState::Alive;
        ++falseSuspects_;
    }
    o.misses = 0;
}

bool
FailureDetector::observeSend(int peer, bool delivered)
{
    if (delivered) {
        beat(peer);
        return false;
    }
    return miss(peer);
}

void
FailureDetector::observeCut(int node)
{
    Obs &o = obs_[static_cast<size_t>(node)];
    if (o.state == PeerState::Dead)
        return; // the fence predates the cut; it stands
    ++o.misses;
    if (o.state == PeerState::Alive && o.misses >= o.suspectAt)
        o.state = PeerState::Suspect;
    // Clamp below the death threshold: no number of cut rejections
    // alone may produce a death verdict. One genuine miss on top of a
    // long partition can still tip the peer over, which is the
    // intended asymmetry -- real silence keeps its meaning.
    if (o.misses >= o.deadAt)
        o.misses = o.deadAt - 1;
}

bool
FailureDetector::heartbeatRound()
{
    tick();
    bool newlyDead = false;
    for (int n = 0; n < numNodes(); ++n) {
        if (crashed(n))
            newlyDead = miss(n) || newlyDead;
        else
            beat(n);
    }
    return newlyDead;
}

void
FailureDetector::declareDead(int node)
{
    Obs &o = obs_[static_cast<size_t>(node)];
    if (o.state == PeerState::Dead)
        return;
    o.state = PeerState::Dead;
    ++deaths_;
}

void
FailureDetector::registerStats(obs::StatRegistry &reg)
{
    reg.attach("xfault.deaths", deaths_);
    reg.attach("xfault.false_suspects", falseSuspects_);
}

const uint8_t *
PageJournal::lookup(uint64_t vpage) const
{
    auto it = entries_.find(vpage);
    return it == entries_.end() ? nullptr : it->second.data();
}

size_t
PageJournal::refreshFrame(std::vector<uint8_t> &frame,
                          const uint8_t *bytes)
{
    size_t diff = 0;
    for (size_t i = 0; i < pageSize_; ++i)
        diff += frame[i] != bytes[i];
    if (diff) {
        std::memcpy(frame.data(), bytes, pageSize_);
        ++appends_;
        diffBytes_.add(diff);
    }
    return diff;
}

size_t
PageJournal::capture(uint64_t vpage, const uint8_t *bytes)
{
    auto [it, inserted] = entries_.try_emplace(vpage);
    if (!inserted)
        return refreshFrame(it->second, bytes);
    it->second.assign(bytes, bytes + pageSize_);
    pagesGauge_.set(static_cast<double>(entries_.size()));
    ++appends_;
    diffBytes_.add(pageSize_);
    return pageSize_;
}

void
PageJournal::registerStats(obs::StatRegistry &reg)
{
    reg.attach("xfault.journal_appends", appends_);
    reg.attach("xfault.journal_diff_bytes", diffBytes_);
    reg.attach("xfault.journal_pages", pagesGauge_);
}

} // namespace xisa
