/**
 * @file
 * Crash tolerance for the live DSM/OS stack: fail-stop crash schedule,
 * heartbeat failure detector, and the incremental page journal.
 *
 * The paper's hDSM assumes both kernels stay up; a datacenter does not
 * ("Instruction Set Migration at Warehouse Scale" treats machine failure
 * as the common case). This module supplies the three primitives the
 * recovery protocol is built from:
 *
 *  - A deterministic fail-stop schedule (RecoveryConfig::crashes):
 *    nodes die at instants expressed on the link-event clock -- one
 *    tick per interconnect send attempt or heartbeat round -- the same
 *    message-index space the FaultPlan windows use, so a (seed, config)
 *    pair replays the exact same crash.
 *  - A FailureDetector: per-peer Alive -> Suspect -> Dead state machine
 *    fed by heartbeat rounds and data-send outcomes, with seeded
 *    per-peer threshold jitter. Declared death is a fence: a peer
 *    declared dead is never trusted again even if it was merely
 *    partitioned (split-brain avoidance); a Suspect that produces
 *    evidence of life is counted in xfault.false_suspects.
 *  - A PageJournal: one committed frame per touched page, refreshed at
 *    protocol epochs (kernel entries and ownership transfers). Memory
 *    is bounded by the working set -- exactly one frame per page ever
 *    touched -- and the refresh cost is counted in diff bytes. Sole-
 *    Modified pages on a crashed node are restored from it.
 *
 * All of it is inert unless RecoveryConfig::enabled is set: the default
 * configuration adds no cost and no behavior change (golden-guarded).
 */

#ifndef XISA_DSM_RECOVERY_HH
#define XISA_DSM_RECOVERY_HH

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "obs/registry.hh"
#include "util/rng.hh"

namespace xisa {

/**
 * One scheduled fail-stop crash. `atStep` is a link-event clock value:
 * the node is gone once the clock reaches it. Clock ticks are send
 * attempts and heartbeat rounds, which makes crash instants land at
 * hDSM protocol-step granularity.
 */
struct PeerCrashEvent {
    int node = -1;
    uint64_t atStep = 0;
};

/**
 * A crash pinned to the migration handoff window: fires at the
 * `atShip`-th (0-based) context-ship attempt of the run, either just
 * before the context goes on the wire (`afterDelivery = false`, the
 * state is lost with the sender) or just after it was delivered but
 * before the ack is processed (`afterDelivery = true`). This is how
 * tests deterministically land a crash "between state-ship and ack".
 */
struct ShipCrashEvent {
    int node = -1;
    uint64_t atShip = 0;
    bool afterDelivery = false;
};

/** Configuration of the crash-tolerance layer. */
struct RecoveryConfig {
    /** Master switch; everything below is inert when false. */
    bool enabled = false;
    /** Scheduled fail-stop crashes on the link-event clock. */
    std::vector<PeerCrashEvent> crashes;
    /** Crashes pinned inside the migration handoff window. */
    std::vector<ShipCrashEvent> shipCrashes;
    /** Consecutive missed evidence before a peer turns Suspect. */
    int suspectAfterMisses = 4;
    /** Consecutive missed evidence before a peer is declared Dead.
     *  High enough that the perturber's capped drop storms cannot
     *  plausibly fake a death (0.3^12 per window). */
    int deadAfterMisses = 12;
    /** Seeds the per-peer +-jitter on both thresholds. */
    uint64_t detectorSeed = 0x4d00dcedull;

    bool empty() const
    {
        return !enabled && crashes.empty() && shipCrashes.empty();
    }
};

/**
 * Heartbeat-based failure detector plus the ground-truth fail-stop
 * schedule it observes. One instance serves one OS container (or one
 * DsmSpace in DSM-only tests); the Interconnect and the DSM share it.
 *
 * Ground truth and observation are deliberately separate: crashed()
 * answers "has this node actually failed" (the simulator's omniscient
 * view, used to fail sends addressed to it), while state() answers
 * "what does the surviving kernel believe". Recovery may only act on
 * the latter.
 */
class FailureDetector
{
  public:
    enum class PeerState : uint8_t { Alive, Suspect, Dead };

    FailureDetector(int numNodes, const RecoveryConfig &cfg);

    // ---- ground truth ----------------------------------------------

    /** Current link-event clock. */
    uint64_t clock() const { return clock_; }
    /** Advance the clock by one link event (send attempt). */
    void tick() { ++clock_; }
    /** True once `node`'s scheduled crash instant has passed. */
    bool crashed(int node) const
    {
        return clock_ >= crashStep_[static_cast<size_t>(node)];
    }
    /**
     * Count one migration context-ship attempt; fires any
     * ShipCrashEvent with afterDelivery == false scheduled for it.
     */
    void onMigrationShip();
    /** Fire afterDelivery ship crashes of the attempt onMigrationShip
     *  just counted (call once the delivery outcome is known). */
    void onMigrationShipDone();

    // ---- observed state machine ------------------------------------

    PeerState state(int node) const
    {
        return obs_[static_cast<size_t>(node)].state;
    }
    bool dead(int node) const
    {
        return state(node) == PeerState::Dead;
    }
    /**
     * Feed one data-send outcome toward `peer`. A success is evidence
     * of life (clears suspicion, counting a false suspect); a failure
     * is a miss. Returns true if `peer` transitioned to Dead here.
     */
    bool observeSend(int peer, bool delivered);
    /**
     * Feed one cross-partition rejection toward `peer`: evidence the
     * far side is unreachable, not that it died. Counts a miss and can
     * raise Suspect, but clamps the state machine below Dead -- a cut
     * heals, a death does not, and fencing a merely-partitioned peer
     * is exactly the split-brain the partition epochs exist to
     * prevent. A peer already declared Dead stays Dead.
     */
    void observeCut(int peer);
    /**
     * One heartbeat round: ticks the clock and probes every node.
     * Heartbeats ride a control channel that fault injection does not
     * touch, so a miss means the peer has actually crashed -- data-send
     * outcomes are the only source of false suspicion. Returns true if
     * any node transitioned to Dead.
     */
    bool heartbeatRound();
    /**
     * Fence: force-declare `node` dead (idempotent). Used when the
     * recovery protocol commits to a death it inferred elsewhere.
     */
    void declareDead(int node);

    int numNodes() const { return static_cast<int>(obs_.size()); }
    uint64_t deaths() const { return deaths_.value(); }
    uint64_t falseSuspects() const { return falseSuspects_.value(); }

    /** Attach xfault.deaths / xfault.false_suspects. */
    void registerStats(obs::StatRegistry &reg);

  private:
    struct Obs {
        PeerState state = PeerState::Alive;
        int misses = 0;    ///< consecutive missed evidence
        int suspectAt = 0; ///< jittered Suspect threshold
        int deadAt = 0;    ///< jittered Dead threshold
    };

    /** Record one miss; returns true on a transition to Dead. */
    bool miss(int node);
    /** Record evidence of life. */
    void beat(int node);

    RecoveryConfig cfg_;
    uint64_t clock_ = 0;
    uint64_t shipIndex_ = 0; ///< context-ship attempts counted so far
    std::vector<uint64_t> crashStep_; ///< per-node fail-stop instant
    std::vector<Obs> obs_;
    obs::Counter deaths_;
    obs::Counter falseSuspects_;
};

/**
 * The incremental page journal: the last committed frame of every page
 * the program has touched. capture() refreshes a frame in place (one
 * allocation per page, ever), counting how many bytes actually changed
 * since the previous commit -- the "diff" the incremental scheme would
 * have shipped.
 */
class PageJournal
{
  public:
    explicit PageJournal(size_t pageSize) : pageSize_(pageSize) {}

    bool has(uint64_t vpage) const
    {
        return entries_.find(vpage) != entries_.end();
    }
    /** Committed frame of `vpage`, or nullptr if never captured. */
    const uint8_t *lookup(uint64_t vpage) const;
    /**
     * Commit the current content of `vpage`. Returns the number of
     * bytes that differed from the previous committed frame (the full
     * page size for a first capture).
     */
    size_t capture(uint64_t vpage, const uint8_t *bytes);

    size_t pages() const { return entries_.size(); }
    /** Journaled page numbers (auditor coverage check). */
    const std::unordered_map<uint64_t, std::vector<uint8_t>> &
    entries() const
    {
        return entries_;
    }

    /**
     * Protocol epoch: refresh every journaled frame in place from
     * `src(vpage)` (skipped when src returns nullptr), counting diff
     * bytes. Never allocates.
     */
    template <typename Fn>
    void
    commitAll(Fn &&src)
    {
        for (auto &e : entries_) {
            const uint8_t *bytes = src(e.first);
            if (bytes)
                refreshFrame(e.second, bytes);
        }
    }

    /** Attach xfault.journal_appends / _diff_bytes / _pages. */
    void registerStats(obs::StatRegistry &reg);

  private:
    /** Refresh one existing frame, counting the bytes that changed. */
    size_t refreshFrame(std::vector<uint8_t> &frame,
                        const uint8_t *bytes);

    size_t pageSize_;
    std::unordered_map<uint64_t, std::vector<uint8_t>> entries_;
    obs::Counter appends_;
    obs::Counter diffBytes_;
    obs::Gauge pagesGauge_;
};

} // namespace xisa

#endif // XISA_DSM_RECOVERY_HH
