#include "dsm/interconnect.hh"

#include <algorithm>

#include "util/logging.hh"

namespace xisa {

Interconnect::SendResult
Interconnect::send(uint64_t bytes, double freqGHz)
{
    SendResult r;
    if (plan_.empty()) {
        r.seconds = transferSeconds(bytes);
        r.cycles = charge(bytes, freqGHz);
        return r;
    }
    FaultDecision d = plan_.next();
    if (d.partitioned) {
        // Fail-fast NIC error: nothing crossed the wire, the sender
        // only paid the link latency to learn the path is down.
        r.status = SendStatus::Partitioned;
        r.seconds = cfg_.latencyUs * 1e-6;
        r.cycles = static_cast<uint64_t>(r.seconds * freqGHz * 1e9);
        ++partitionRejects_;
        return r;
    }
    // The message went on the wire: count it whether or not it arrives.
    ++messages_;
    bytes_.add(bytes);
    double serialization = transferSeconds(bytes) - cfg_.latencyUs * 1e-6;
    r.seconds = cfg_.latencyUs * 1e-6 +
                serialization * d.bandwidthFactor +
                d.extraLatencySeconds;
    if (d.extraLatencySeconds > 0)
        ++spikes_;
    if (!d.delivered) {
        r.status = SendStatus::Dropped;
        ++drops_;
    } else if (d.duplicated) {
        // The retransmission is real wire traffic too.
        r.duplicate = true;
        ++messages_;
        bytes_.add(bytes);
        ++duplicates_;
    }
    r.cycles = static_cast<uint64_t>(r.seconds * freqGHz * 1e9);
    return r;
}

Interconnect::ReliableResult
Interconnect::reliableSend(uint64_t bytes, double freqGHz)
{
    ReliableResult total;
    if (plan_.empty()) {
        total.seconds = transferSeconds(bytes);
        total.cycles = charge(bytes, freqGHz);
        return total;
    }
    for (int attempt = 1;; ++attempt) {
        SendResult r = send(bytes, freqGHz);
        total.attempts = attempt;
        total.seconds += r.seconds;
        total.cycles += r.cycles;
        if (r.status == SendStatus::Delivered) {
            total.duplicate = r.duplicate;
            return total;
        }
        if (attempt >= cfg_.retry.maxAttempts)
            fatal("interconnect: message undeliverable after %d "
                  "attempts (permanent partition?)",
                  attempt);
        // Ack timeout, then capped exponential backoff.
        double waitUs = cfg_.retry.timeoutUs +
                        cfg_.retry.backoffForAttempt(attempt);
        uint64_t waitCycles =
            static_cast<uint64_t>(waitUs * 1e-6 * freqGHz * 1e9);
        total.seconds += waitUs * 1e-6;
        total.cycles += waitCycles;
        ++retries_;
        backoffCycles_.add(waitCycles);
    }
}

} // namespace xisa
