#include "dsm/interconnect.hh"

#include <algorithm>

#include "util/logging.hh"

namespace xisa {

Interconnect::SendResult
Interconnect::send(uint64_t bytes, double freqGHz, int from, int to)
{
    SendResult r;
    if (plan_.empty()) {
        r.seconds = transferSeconds(bytes);
        r.cycles = charge(bytes, freqGHz);
        return r;
    }
    FaultDecision d = plan_.nextBetween(from, to);
    if (d.partitioned) {
        // Fail-fast NIC error: nothing crossed the wire, the sender
        // only paid the link latency to learn the path is down.
        r.status = SendStatus::Partitioned;
        r.sidedCut = d.sidedCut;
        r.seconds = cfg_.latencyUs * 1e-6;
        r.cycles = static_cast<uint64_t>(r.seconds * freqGHz * 1e9);
        ++partitionRejects_;
        return r;
    }
    // The message went on the wire: count it whether or not it arrives.
    ++messages_;
    bytes_.add(bytes);
    double serialization = transferSeconds(bytes) - cfg_.latencyUs * 1e-6;
    r.seconds = cfg_.latencyUs * 1e-6 +
                serialization * d.bandwidthFactor +
                d.extraLatencySeconds;
    if (d.extraLatencySeconds > 0)
        ++spikes_;
    if (!d.delivered) {
        r.status = SendStatus::Dropped;
        ++drops_;
    } else if (d.duplicated) {
        // The retransmission is real wire traffic too.
        r.duplicate = true;
        ++messages_;
        bytes_.add(bytes);
        ++duplicates_;
    }
    r.cycles = static_cast<uint64_t>(r.seconds * freqGHz * 1e9);
    return r;
}

Interconnect::SendResult
Interconnect::deadSend(uint64_t bytes, double freqGHz)
{
    // The bytes hit the wire and vanish into a dead host: full wire
    // traffic and transfer time, no ack, and -- because the link itself
    // is fine -- no FaultDecision consumed from the plan.
    SendResult r;
    ++messages_;
    bytes_.add(bytes);
    r.status = SendStatus::Dropped;
    r.seconds = transferSeconds(bytes);
    r.cycles = static_cast<uint64_t>(r.seconds * freqGHz * 1e9);
    ++deadSends_;
    return r;
}

Interconnect::SendResult
Interconnect::sendTo(int peer, uint64_t bytes, double freqGHz, int self)
{
    if (!detector_)
        return send(bytes, freqGHz, self, peer);
    detector_->tick();
    SendResult r = detector_->crashed(peer)
                       ? deadSend(bytes, freqGHz)
                       : send(bytes, freqGHz, self, peer);
    if (r.sidedCut)
        // A topology cut, not a dead host: suspicion may not escalate
        // to a death verdict (the cut will heal; a fence would not).
        detector_->observeCut(peer);
    else
        detector_->observeSend(peer, r.status == SendStatus::Delivered);
    return r;
}

Interconnect::Breaker &
Interconnect::breakerState(int peer)
{
    auto [it, inserted] = breakers_.try_emplace(peer);
    if (inserted)
        it->second.rng.reseed(cfg_.retry.breakerSeed ^
                              (0x9e3779b97f4a7c15ull *
                               static_cast<uint64_t>(peer + 1)));
    return it->second;
}

bool
Interconnect::circuitOpen(int peer) const
{
    auto it = breakers_.find(peer);
    return it != breakers_.end() && it->second.open;
}

Interconnect::ReliableResult
Interconnect::reliableSendTo(int peer, uint64_t bytes, double freqGHz,
                             int self)
{
    const bool breakerOn = cfg_.retry.breakerThreshold > 0;
    if (!detector_ && !breakerOn && self < 0)
        return reliableSend(bytes, freqGHz);

    ReliableResult total;
    total.attempts = 0;
    Breaker *b = breakerOn ? &breakerState(peer) : nullptr;
    for (;;) {
        if (b && b->open) {
            if (++b->sinceProbe < b->probeGap) {
                // Open circuit: fail fast at link-latency cost; no
                // wire traffic, no fault decision, no retry charges.
                ++circuitFailFast_;
                double s = cfg_.latencyUs * 1e-6;
                total.seconds += s;
                total.cycles +=
                    static_cast<uint64_t>(s * freqGHz * 1e9);
                total.delivered = false;
                return total;
            }
            // Half-open: let one seeded probe through for real.
            b->sinceProbe = 0;
            b->probeGap =
                2 + static_cast<int>(b->rng.below(static_cast<uint64_t>(
                        cfg_.retry.breakerProbeSpread + 1)));
            ++circuitProbes_;
        }
        SendResult r = sendTo(peer, bytes, freqGHz, self);
        ++total.attempts;
        total.seconds += r.seconds;
        total.cycles += r.cycles;
        if (r.status == SendStatus::Delivered) {
            if (b) {
                b->open = false;
                b->consecutive = 0;
            }
            total.duplicate = r.duplicate;
            total.delivered = true;
            return total;
        }
        if (b) {
            ++b->consecutive;
            if (!b->open &&
                b->consecutive >= cfg_.retry.breakerThreshold) {
                b->open = true;
                ++circuitOpens_;
                b->sinceProbe = 0;
                b->probeGap = 2 + static_cast<int>(b->rng.below(
                                      static_cast<uint64_t>(
                                          cfg_.retry.breakerProbeSpread +
                                          1)));
            }
        }
        if (detector_ && detector_->dead(peer)) {
            // Declared dead: the caller's recovery protocol takes over.
            total.delivered = false;
            return total;
        }
        if (b && b->open) {
            // Newly opened (or a failed probe): fail fast from here on.
            total.delivered = false;
            return total;
        }
        if (total.attempts >= cfg_.retry.maxAttempts) {
            if (detector_) {
                // A peer we cannot reach within the full retry budget
                // is fenced rather than panicked on: recovery treats a
                // permanently partitioned peer like a dead one.
                detector_->declareDead(peer);
                total.delivered = false;
                return total;
            }
            fatal("interconnect: message undeliverable after %d "
                  "attempts (permanent partition?)",
                  total.attempts);
        }
        // Ack timeout, then capped exponential backoff.
        double waitUs = cfg_.retry.timeoutUs +
                        cfg_.retry.backoffForAttempt(total.attempts);
        uint64_t waitCycles =
            static_cast<uint64_t>(waitUs * 1e-6 * freqGHz * 1e9);
        total.seconds += waitUs * 1e-6;
        total.cycles += waitCycles;
        ++retries_;
        backoffCycles_.add(waitCycles);
    }
}

Interconnect::ReliableResult
Interconnect::reliableSend(uint64_t bytes, double freqGHz)
{
    ReliableResult total;
    if (plan_.empty()) {
        total.seconds = transferSeconds(bytes);
        total.cycles = charge(bytes, freqGHz);
        return total;
    }
    for (int attempt = 1;; ++attempt) {
        SendResult r = send(bytes, freqGHz);
        total.attempts = attempt;
        total.seconds += r.seconds;
        total.cycles += r.cycles;
        if (r.status == SendStatus::Delivered) {
            total.duplicate = r.duplicate;
            return total;
        }
        if (attempt >= cfg_.retry.maxAttempts)
            fatal("interconnect: message undeliverable after %d "
                  "attempts (permanent partition?)",
                  attempt);
        // Ack timeout, then capped exponential backoff.
        double waitUs = cfg_.retry.timeoutUs +
                        cfg_.retry.backoffForAttempt(attempt);
        uint64_t waitCycles =
            static_cast<uint64_t>(waitUs * 1e-6 * freqGHz * 1e9);
        total.seconds += waitUs * 1e-6;
        total.cycles += waitCycles;
        ++retries_;
        backoffCycles_.add(waitCycles);
    }
}

} // namespace xisa
