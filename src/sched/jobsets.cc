#include "sched/jobsets.hh"

namespace xisa {

namespace {

Job
drawJob(Rng &rng, int id, double arrival)
{
    static const std::vector<WorkloadId> mix = allWorkloads();
    Job job;
    job.id = id;
    job.wl = mix[rng.below(mix.size())];
    job.cls = static_cast<ProblemClass>(rng.below(3));
    if (supportsThreads(job.wl)) {
        static const int threadChoices[3] = {1, 2, 4};
        job.threads = threadChoices[rng.below(3)];
    } else {
        job.threads = 1;
    }
    job.arrival = arrival;
    return job;
}

} // namespace

std::vector<Job>
makeSustainedSet(uint64_t seed, int numJobs)
{
    Rng rng(seed);
    std::vector<Job> jobs;
    for (int i = 0; i < numJobs; ++i)
        jobs.push_back(drawJob(rng, i, 0.0));
    return jobs;
}

std::vector<Job>
makePeriodicSet(uint64_t seed, int waves, int maxPerWave)
{
    Rng rng(seed);
    std::vector<Job> jobs;
    double t = 0;
    int id = 0;
    for (int w = 0; w < waves; ++w) {
        int count = static_cast<int>(rng.between(maxPerWave / 2,
                                                 maxPerWave));
        for (int j = 0; j < count; ++j)
            jobs.push_back(drawJob(rng, id++, t));
        t += rng.uniform(60.0, 240.0);
    }
    return jobs;
}

std::vector<Machine>
makeX86X86Pool()
{
    Machine a{makeXenoServer(), 1.0, 1.0};
    Machine b{makeXenoServer(), 1.0, 1.0};
    return {a, b};
}

std::vector<Machine>
makeHeterogeneousPool(bool finfetArm, double x86Weight)
{
    Machine x86{makeXenoServer(), 1.0, x86Weight};
    // The paper's McPAT projection: future FinFET ARM processors
    // "will consume 1/10th of the measured power while running at the
    // same clock frequency" -- applied, as the paper does for its
    // energy study, to the (sub-optimal first-generation) X-Gene
    // board's measured draw.
    Machine arm{makeAetherServer(), finfetArm ? 0.1 : 1.0, 1.0};
    return {x86, arm};
}

} // namespace xisa
