#include "sched/events.hh"

#include "util/logging.hh"

namespace xisa {

bool
EventHeap::before(int a, int b) const
{
    const SchedEvent &ea = nodes_[static_cast<size_t>(a)].ev;
    const SchedEvent &eb = nodes_[static_cast<size_t>(b)].ev;
    if (ea.time != eb.time)
        return ea.time < eb.time;
    if (ea.kind != eb.kind)
        return static_cast<int>(ea.kind) < static_cast<int>(eb.kind);
    if (ea.machine != eb.machine)
        return ea.machine < eb.machine;
    return ea.seq < eb.seq;
}

void
EventHeap::place(size_t i, int handle)
{
    heap_[i] = handle;
    nodes_[static_cast<size_t>(handle)].pos = static_cast<int>(i);
}

void
EventHeap::siftUp(size_t i)
{
    int h = heap_[i];
    while (i > 0) {
        size_t parent = (i - 1) / 2;
        if (!before(h, heap_[parent]))
            break;
        place(i, heap_[parent]);
        i = parent;
    }
    place(i, h);
}

void
EventHeap::siftDown(size_t i)
{
    int h = heap_[i];
    size_t n = heap_.size();
    for (;;) {
        size_t kid = 2 * i + 1;
        if (kid >= n)
            break;
        if (kid + 1 < n && before(heap_[kid + 1], heap_[kid]))
            ++kid;
        if (!before(heap_[kid], h))
            break;
        place(i, heap_[kid]);
        i = kid;
    }
    place(i, h);
}

int
EventHeap::push(const SchedEvent &ev)
{
    int h;
    if (!free_.empty()) {
        h = free_.back();
        free_.pop_back();
        nodes_[static_cast<size_t>(h)].ev = ev;
    } else {
        h = static_cast<int>(nodes_.size());
        nodes_.push_back(Node{ev, -1});
    }
    heap_.push_back(h);
    siftUp(heap_.size() - 1);
    return h;
}

const SchedEvent &
EventHeap::top() const
{
    XISA_CHECK(!heap_.empty(), "EventHeap::top on empty heap");
    return nodes_[static_cast<size_t>(heap_.front())].ev;
}

SchedEvent
EventHeap::pop()
{
    XISA_CHECK(!heap_.empty(), "EventHeap::pop on empty heap");
    int h = heap_.front();
    SchedEvent ev = nodes_[static_cast<size_t>(h)].ev;
    erase(h);
    return ev;
}

void
EventHeap::erase(int handle)
{
    XISA_CHECK(handle >= 0 &&
                   handle < static_cast<int>(nodes_.size()) &&
                   nodes_[static_cast<size_t>(handle)].pos >= 0,
               "EventHeap::erase of a dead handle");
    size_t i =
        static_cast<size_t>(nodes_[static_cast<size_t>(handle)].pos);
    nodes_[static_cast<size_t>(handle)].pos = -1;
    free_.push_back(handle);
    int last = heap_.back();
    heap_.pop_back();
    if (i == heap_.size())
        return; // erased the tail
    place(i, last);
    // The hole's replacement can be out of order in either direction.
    siftUp(i);
    siftDown(static_cast<size_t>(
        nodes_[static_cast<size_t>(last)].pos));
}

} // namespace xisa
