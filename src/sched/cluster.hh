/**
 * @file
 * Cluster-level scheduling simulation (Section 6 "Job Scheduling",
 * Figs. 12 and 13), event-driven (DESIGN.md §11).
 *
 * The paper compares, over randomized job sets:
 *  - static policies that assign jobs at arrival and can never move
 *    them: two identical x86 servers (the baseline), or an x86+ARM pair
 *    balanced / unbalanced by thread count;
 *  - dynamic policies enabled by heterogeneous-ISA migration: balanced
 *    and unbalanced (x86 kept busier), re-evaluated periodically with
 *    jobs migrating between the servers.
 *
 * Machines accrue energy through the utilization-proportional power
 * model; an idle machine drops into a low-power state (the
 * consolidation premise of Section 2). The ARM machine's power can be
 * scaled by the McPAT FinFET projection (x0.1), as in the paper's
 * evaluation. Migration charges a cost derived from the measured
 * stack-transformation latency plus working-set transfer over the
 * interconnect model, inflated by the rack/pod topology when one is
 * configured.
 *
 * The simulator is a true discrete-event core: every running job
 * carries an absolute completion timestamp (recomputed only when it is
 * (re)placed), completions and reboots live in an indexed min-heap,
 * and energy accrues lazily per machine between its own state changes.
 * The pre-heap stepping loop survives behind XISA_SLOW_SCHED=1 as a
 * differential oracle: both drivers share every state-mutation helper,
 * so their ClusterResult, stdout, and stats JSON are bit-identical.
 */

#ifndef XISA_SCHED_CLUSTER_HH
#define XISA_SCHED_CLUSTER_HH

#include <map>
#include <vector>

#include "dsm/interconnect.hh"
#include "machine/node.hh"
#include "obs/registry.hh"
#include "sched/profile.hh"
#include "sched/topology.hh"

namespace xisa {

/** One server in the pool. */
struct Machine {
    NodeSpec spec;
    /** Technology scale on power (0.1 = FinFET-projected ARM). */
    double powerScale = 1.0;
    /** Relative load weight for unbalanced policies (x86 > ARM). */
    double loadWeight = 1.0;
};

/** One job of the workload mix. */
struct Job {
    int id = 0;
    WorkloadId wl = WorkloadId::CG;
    ProblemClass cls = ProblemClass::A;
    int threads = 1;
    double arrival = 0; ///< seconds
};

/** Scheduling policies of the paper's comparison. */
enum class Policy {
    StaticBalanced,    ///< assign at arrival, balance threads, no moves
    StaticUnbalanced,  ///< assign at arrival, weight-biased, no moves
    DynamicBalanced,   ///< balance threads; migrate to rebalance
    DynamicUnbalanced, ///< weight-biased; migrate to rebalance
};

const char *policyName(Policy p);

/** One machine failure: at `time`, `machine` dies and stays down for
 *  `downSeconds` (power drops to zero, its work is lost back to the
 *  last checkpoint). A crash aimed at a machine that is already down
 *  is deferred to its reboot instant (back-to-back failure); the
 *  deferral is counted by `sched.crashes_deferred`. */
struct CrashEvent {
    double time = 0;
    int machine = 0;
    double downSeconds = 30.0;
    /** >= 0 when this crash is one leg of a rack-level correlated
     *  outage (DomainOutage expansion): failover placement then
     *  prefers a machine OUTSIDE this rack -- the rest of the failure
     *  domain is going down at the same instant, so the locality bias
     *  toward the checkpoint's rack would steer restarts onto doomed
     *  machines. -1 (every scripted [crashes] event) keeps the legacy
     *  rack-blind/rack-seeking placement bit-identical. */
    int avoidRack = -1;
};

/** Failure-domain kind of one correlated outage. */
enum class DomainKind : uint8_t {
    Tor, ///< ToR switch dies: the rack is isolated, machines keep
         ///< running local work but accept no placements
    Agg, ///< aggregation switch dies: the whole pod is isolated
    Pdu, ///< power distribution unit dies: the rack loses power
         ///< (machines crash, work rolls back to the checkpoint)
};

/**
 * One correlated failure event: at `time`, every machine in the named
 * failure domain (rack for Tor/Pdu, pod for Agg) fails ATOMICALLY --
 * one timestamp, all members. Recovery is deliberately not atomic:
 * member k of the domain comes back at
 * `time + healSeconds + k * staggerSeconds + jitter`, where jitter is
 * drawn uniformly from [0, staggerSeconds) out of a stream seeded by
 * `seed` -- a staggered reboot storm with seeded restart backoff, so a
 * rack powering back on does not thundering-herd the scheduler with
 * simultaneous rejoins. Requires a [topology] (the domain indices are
 * meaningless on a flat pool).
 */
struct DomainOutage {
    DomainKind kind = DomainKind::Tor;
    /** Rack index (Tor/Pdu) or pod index (Agg). */
    int domain = 0;
    double time = 0;
    /** Base outage length; member k heals staggered after this. */
    double healSeconds = 30.0;
    /** Per-member reboot spacing (and jitter bound), seconds. */
    double staggerSeconds = 0.5;
    /** Seeds the per-member restart-backoff jitter stream. */
    uint64_t seed = 0xd04a11ull;
};

/** Result of simulating one job set under one policy. */
struct ClusterResult {
    std::vector<double> energyJoules; ///< per machine
    double totalEnergy = 0;
    double makespan = 0;
    double edp = 0; ///< totalEnergy * makespan
    int migrations = 0;
    double avgTurnaround = 0;
    // Fault/recovery outcome (all zero on a fault-free run).
    int crashes = 0;
    int failovers = 0; ///< restarts placed on a different machine
    /** Machines taken off the placement pool by ToR/agg isolation
     *  outages (running work continued; nothing was lost). */
    int isolations = 0;
    double lostWorkSeconds = 0; ///< progress discarded to checkpoints
    /** Progress the checkpoints preserved across crashes: work the
     *  restarted jobs did NOT have to redo. */
    double recoveredWorkSeconds = 0;
    std::map<int, int> restartCounts; ///< job id -> restarts
};

/** Discrete-event cluster simulator. */
class ClusterSim
{
  public:
    struct Config {
        /** Rebalance period for dynamic policies (seconds). */
        double rebalancePeriod = 1.0;
        /** Fixed per-migration overhead (stack transformation, context
         *  message, scheduler latency), seconds. */
        double migrationFixedSeconds = 0.05;
        /** Working set shipped on migration, bytes per class unit
         *  (multiplied by classScale). */
        double workingSetBytesPerScale = 2.0 * 1024 * 1024;
        /** Power drawn by an idle machine, as a fraction of idle
         *  power. 1.0 matches the paper's testbed (machines stay up
         *  for the whole experiment); lower values model the
         *  consolidation low-power states of Section 2. */
        double sleepFraction = 1.0;
        /** Link model; net.faults makes migration transfers lossy
         *  (retries inflate the charged migration cost). */
        Interconnect::Config net;
        /** Rack/pod hierarchy shaping migration and failover costs;
         *  default-constructed = flat (bit-identical to no model). */
        TopologyConfig topo;
        /** Machine failures to inject (empty = immortal machines; the
         *  fault-free event sequence is then bit-identical to a build
         *  without the fault layer). */
        std::vector<CrashEvent> crashes;
        /** Correlated failure-domain outages (ToR/agg isolation, PDU
         *  power loss). Pdu outages expand into staggered per-machine
         *  CrashEvents at run start; Tor/Agg outages isolate their
         *  members (no placements in or out, running work continues)
         *  until a staggered rejoin. Empty = no domain failures, and
         *  the simulator is bit-identical to a build without them. */
        std::vector<DomainOutage> outages;
        /** Jobs checkpoint this often (seconds); on a crash they
         *  restart from the last checkpoint. Only active when crashes
         *  are scheduled. */
        double checkpointPeriod = 5.0;
    };

    ClusterSim(std::vector<Machine> machines,
               const JobProfileTable &profiles)
        : ClusterSim(std::move(machines), profiles, Config())
    {}
    ClusterSim(std::vector<Machine> machines,
               const JobProfileTable &profiles, Config cfg);

    /** Simulate one job set under one policy. */
    ClusterResult run(const std::vector<Job> &jobs, Policy policy);

    /** Replace the crash schedule for subsequent run() calls. */
    void setCrashPlan(std::vector<CrashEvent> crashes);

    /** This simulator's stat registry: cumulative `sched.*` counters
     *  across every run() call on this instance. */
    obs::StatRegistry &statRegistry() { return stats_; }

    /** Events processed across every run() (the `sched.events`
     *  counter): the numerator of the events/sec throughput gate. */
    uint64_t eventsProcessed() const { return eventsStat_.value(); }

  private:
    struct RunningJob {
        Job job;
        double durationHere = 0; ///< full-job seconds on this machine
        /** Absolute completion instant; recomputed only when the job
         *  is (re)placed, never decremented per step. */
        double endTime = 0;
        double startedAt = 0;
        /** Fraction still to run as of the last checkpoint/placement
         *  (restart target, on THIS machine's clock). */
        double ckptRemaining = 1.0;
        /** Completion event handle (event driver; -1 under the
         *  stepping oracle). */
        int evHandle = -1;
    };
    struct MachineState {
        std::vector<RunningJob> running;
        std::vector<Job> queue;
        /** Checkpointed jobs waiting to restart (crash recovery). */
        std::vector<RunningJob> restartQueue;
        // Thread bookkeeping (running + queued) lives in the Run's
        // compact per-machine arrays, not here: the placement and
        // rebalance scans walk every machine, and at fleet scale
        // striding through these fat structs is the scans' whole cost.
        double energy = 0;
        /** Last instant energy was accrued to (lazy accrual). */
        double energyMark = 0;
        /** Down right now (power 0, no placements). */
        bool down = false;
    };

    /** Per-run() engine state shared by both drivers (cluster.cc). */
    struct Run;

    int capacity(int m) const;
    bool dynamic(Policy p) const
    {
        return p == Policy::DynamicBalanced ||
               p == Policy::DynamicUnbalanced;
    }
    /** Checkpoint-image transfer cost from `from` to `to` (-1 from =
     *  fresh admission: flat link, no topology inflation). */
    double migrationCost(const Job &job, int from, int to);
    /** Interned trace span name of a job, cached per job id (restarts
     *  and rebalances re-begin the span without re-interning). */
    const char *jobSpanName(int id);

    std::vector<Machine> machines_;
    const JobProfileTable &profiles_;
    Config cfg_;
    Topology topo_;
    /** XISA_SLOW_SCHED sampled at construction: run() uses the
     *  stepping oracle instead of the event heap. */
    bool slowSched_ = false;

    /** Declared before the counters so they detach from a live
     *  registry on destruction. */
    obs::StatRegistry stats_;
    /** Link used for migration/restart transfer costs; carries the
     *  fault plan of cfg_.net.faults across every run(). */
    Interconnect net_;
    obs::Counter jobsStarted_;
    obs::Counter jobsCompleted_;
    obs::Counter enqueues_;
    obs::Counter migrationsStat_;
    obs::Counter rebalanceTicks_;
    /** Simulation events processed (loop iterations; identical for
     *  both drivers by construction). */
    obs::Counter eventsStat_;
    /** Rebalance ticks whose move budget was exhausted before the
     *  pool balanced (the truncation the old fixed 64-move cap hid). */
    obs::Counter rebalanceCapStat_;
    // Fault/recovery counters (xfault.*).
    obs::Counter crashesStat_;
    obs::Counter failoversStat_;
    obs::Counter restartsStat_;
    obs::Counter checkpointsStat_;
    /** Crash events that found their machine already down and were
     *  deferred to its reboot instant. */
    obs::Counter crashesDeferredStat_;
    /** Correlated outage events processed (one per DomainOutage). */
    obs::Counter domainOutagesStat_;
    /** Machines isolated by ToR/agg outages (members x events). */
    obs::Counter isolationsStat_;
    obs::Gauge lostSecondsStat_;
    obs::Gauge recoveredSecondsStat_;

    std::map<int, const char *> jobSpanNames_; ///< job id -> interned
};

} // namespace xisa

#endif // XISA_SCHED_CLUSTER_HH
