#include "sched/topology.hh"

#include <cstdio>
#include <string>

namespace xisa {

const char *
topologyConfigError(const TopologyConfig &cfg)
{
    if (cfg.machinesPerRack < 0)
        return "machines_per_rack must be >= 0";
    if (cfg.machinesPerRack == 0) {
        // Disabled model: the remaining knobs are inert, but a conf
        // that sets them without a rack size is almost certainly a
        // typo'd hierarchy, so reject the contradiction.
        TopologyConfig flat;
        flat.machinesPerRack = cfg.machinesPerRack;
        if (!(cfg == flat))
            return "topology knobs set but machines_per_rack is 0 "
                   "(set machines_per_rack to enable the hierarchy)";
        return nullptr;
    }
    if (cfg.racksPerPod < 0)
        return "racks_per_pod must be >= 0 (0 = single pod)";
    if (!(cfg.torOversub >= 1.0))
        return "tor_oversub must be >= 1";
    if (!(cfg.aggOversub >= 1.0))
        return "agg_oversub must be >= 1";
    if (!(cfg.rackHopUs >= 0.0))
        return "rack_hop_us must be >= 0";
    if (!(cfg.aggHopUs >= 0.0))
        return "agg_hop_us must be >= 0";
    if (!(cfg.localityBias >= 0.0))
        return "locality_bias must be >= 0";
    return nullptr;
}

FaultCut
Topology::rackCut(int rack, int numMachines, uint64_t periodMsgs,
                  uint64_t lenMsgs) const
{
    FaultCut cut;
    cut.periodMsgs = periodMsgs;
    cut.lenMsgs = lenMsgs;
    for (int m = 0; m < numMachines; ++m)
        if (rackOf(m) == rack)
            cut.sideA.push_back(m);
    return cut;
}

FaultCut
Topology::podCut(int pod, int numMachines, uint64_t periodMsgs,
                 uint64_t lenMsgs) const
{
    FaultCut cut;
    cut.periodMsgs = periodMsgs;
    cut.lenMsgs = lenMsgs;
    for (int m = 0; m < numMachines; ++m)
        if (podOf(m) == pod)
            cut.sideA.push_back(m);
    return cut;
}

std::string
describeTopology(const TopologyConfig &cfg, int machines)
{
    if (cfg.machinesPerRack <= 0)
        return "flat";
    int racks =
        (machines + cfg.machinesPerRack - 1) / cfg.machinesPerRack;
    int pods = cfg.racksPerPod > 0
                   ? (racks + cfg.racksPerPod - 1) / cfg.racksPerPod
                   : 1;
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "%d racks x %d machines in %d pod%s "
                  "(tor x%g, agg x%g)",
                  racks, cfg.machinesPerRack, pods,
                  pods == 1 ? "" : "s", cfg.torOversub,
                  cfg.aggOversub);
    return buf;
}

} // namespace xisa
