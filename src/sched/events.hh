/**
 * @file
 * Indexed min-heap of scheduler events for the event-driven ClusterSim
 * core (DESIGN.md §11).
 *
 * The heap holds the two event populations whose size is unbounded and
 * whose members are cancelled/rescheduled mid-run: job completions
 * (one per running job, erased on migration or crash) and machine
 * reboots (one per down machine). The remaining event sources -- job
 * arrivals and crash injections (pre-sorted streams consumed by a
 * cursor) and the checkpoint/rebalance epochs (single recurring
 * candidates, gated on running work) -- are cheaper as scalars and are
 * merged into the next-event choice by the driver.
 *
 * Tie-break contract: events are ordered by (time, kind, machine,
 * seq). Reboots sort before completions at the same instant, machines
 * in ascending index, and completions on one machine in placement
 * order (seq is a monotone placement counter), which reproduces the
 * stepping loop's machine-scan order exactly.
 */

#ifndef XISA_SCHED_EVENTS_HH
#define XISA_SCHED_EVENTS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xisa {

/** Heap-managed event kinds; lower value wins ties at equal time. */
enum class EvKind : int {
    Reboot = 0,     ///< a down machine comes back at downUntil
    Completion = 1, ///< a running job reaches its endTime
};

/** One heap entry. */
struct SchedEvent {
    double time = 0;
    EvKind kind = EvKind::Completion;
    int machine = 0;
    /** Placement sequence number: orders same-machine completions the
     *  way the stepping loop encounters them (running-vector order). */
    uint64_t seq = 0;
};

/**
 * Binary min-heap with stable integer handles so the simulator can
 * erase a specific event (migrated or crashed job) in O(log n) without
 * scanning. Handles are recycled; a popped or erased handle must not
 * be reused by the caller.
 */
class EventHeap
{
  public:
    /** Insert an event; returns its handle. */
    int push(const SchedEvent &ev);
    /** Remove the event behind `handle` (must be live). */
    void erase(int handle);
    bool empty() const { return heap_.empty(); }
    size_t size() const { return heap_.size(); }
    /** Smallest event by (time, kind, machine, seq); heap non-empty. */
    const SchedEvent &top() const;
    /** Pop and return the smallest event, freeing its handle. */
    SchedEvent pop();

  private:
    struct Node {
        SchedEvent ev;
        int pos = -1; ///< index in heap_, -1 when free
    };

    bool before(int a, int b) const;
    void siftUp(size_t i);
    void siftDown(size_t i);
    void place(size_t i, int handle);

    std::vector<int> heap_;   ///< handles, heap-ordered
    std::vector<Node> nodes_; ///< handle -> event + heap position
    std::vector<int> free_;   ///< recycled handles
};

} // namespace xisa

#endif // XISA_SCHED_EVENTS_HH
