/**
 * @file
 * Randomized job-set generators matching Section 7's experiments:
 * sustained workloads (40 jobs, back-to-back) and periodic workloads
 * (5 waves of up to 14 jobs, spaced 60-240 s apart). Jobs are drawn
 * uniformly from the benchmark mix, classes A/B/C, 1-4 threads.
 */

#ifndef XISA_SCHED_JOBSETS_HH
#define XISA_SCHED_JOBSETS_HH

#include <vector>

#include "sched/cluster.hh"
#include "util/rng.hh"

namespace xisa {

/** 40 jobs, all available at t=0 (scheduled as capacity frees up). */
std::vector<Job> makeSustainedSet(uint64_t seed, int numJobs = 40);

/** 5 waves of up to `maxPerWave` jobs, spaced uniformly 60-240 s. */
std::vector<Job> makePeriodicSet(uint64_t seed, int waves = 5,
                                 int maxPerWave = 14);

/** The two-machine pools of the paper's comparison. */
std::vector<Machine> makeX86X86Pool();
std::vector<Machine> makeHeterogeneousPool(bool finfetArm = true,
                                           double x86Weight = 1.0);

} // namespace xisa

#endif // XISA_SCHED_JOBSETS_HH
