/**
 * @file
 * Hierarchical datacenter interconnect for the cluster scheduler
 * (DESIGN.md §11): machines -> top-of-rack switch -> aggregation
 * layer, with oversubscription at each boundary.
 *
 * The paper's closing argument extrapolates ISA migration from a pair
 * of servers to rack and datacenter scale; at that scale migration and
 * failover costs are shaped by where the peers sit in the tree.
 * Machines under one ToR exchange working sets at full link speed;
 * crossing the ToR divides bandwidth by the ToR oversubscription
 * ratio and adds a hop latency; crossing the aggregation layer (into
 * another pod) pays both ratios and both hop latencies. Placement can
 * be biased toward the rack of a job's checkpoint image so failover
 * prefers short transfers.
 *
 * Machines are mapped to the tree by index: machine m sits in rack
 * m / machinesPerRack, and rack r in pod r / racksPerPod (one pod for
 * everything when racksPerPod is 0). machinesPerRack == 0 disables the
 * model entirely: every distance is zero and every factor is exactly
 * 1.0, and the simulator's cost arithmetic is bit-identical to the
 * flat interconnect.
 */

#ifndef XISA_SCHED_TOPOLOGY_HH
#define XISA_SCHED_TOPOLOGY_HH

#include <string>

#include "dsm/faults.hh"

namespace xisa {

/** [topology] conf section / ClusterSim::Config knob. */
struct TopologyConfig {
    /** Machines under one ToR switch; 0 = flat (model disabled). */
    int machinesPerRack = 0;
    /** Racks under one aggregation switch; 0 = a single pod. */
    int racksPerPod = 0;
    /** Bandwidth divisor for crossing the ToR (>= 1). */
    double torOversub = 1.0;
    /** Additional bandwidth divisor for crossing pods (>= 1). */
    double aggOversub = 1.0;
    /** Extra one-way latency for leaving the rack, microseconds. */
    double rackHopUs = 0.0;
    /** Extra one-way latency for leaving the pod, microseconds
     *  (added on top of rackHopUs). */
    double aggHopUs = 0.0;
    /** Placement penalty per switch boundary, in weighted-load units:
     *  pickMachine scores a candidate as load + bias * hops when the
     *  job has state on a source machine. 0 = placement stays blind
     *  to the hierarchy even when costs are not. */
    double localityBias = 0.0;

    bool operator==(const TopologyConfig &o) const
    {
        return machinesPerRack == o.machinesPerRack &&
               racksPerPod == o.racksPerPod &&
               torOversub == o.torOversub &&
               aggOversub == o.aggOversub &&
               rackHopUs == o.rackHopUs && aggHopUs == o.aggHopUs &&
               localityBias == o.localityBias;
    }
};

/** Distance/cost oracle over the machine tree. */
class Topology
{
  public:
    Topology() = default;
    explicit Topology(const TopologyConfig &cfg) : cfg_(cfg) {}

    bool enabled() const { return cfg_.machinesPerRack > 0; }
    const TopologyConfig &config() const { return cfg_; }

    int rackOf(int m) const
    {
        return enabled() ? m / cfg_.machinesPerRack : 0;
    }
    int podOf(int m) const
    {
        return cfg_.racksPerPod > 0 ? rackOf(m) / cfg_.racksPerPod : 0;
    }

    /** Switch boundaries between two machines: 0 same rack (or model
     *  disabled), 1 cross-rack within a pod, 2 cross-pod. */
    int hops(int a, int b) const
    {
        if (!enabled() || a == b || rackOf(a) == rackOf(b))
            return 0;
        return podOf(a) == podOf(b) ? 1 : 2;
    }

    /** Multiplier on working-set transfer seconds (oversubscription
     *  product along the path); exactly 1.0 intra-rack. */
    double bandwidthFactor(int a, int b) const
    {
        switch (hops(a, b)) {
          case 1: return cfg_.torOversub;
          case 2: return cfg_.torOversub * cfg_.aggOversub;
          default: return 1.0;
        }
    }

    /** Extra path latency in seconds; exactly 0.0 intra-rack. */
    double extraLatencySeconds(int a, int b) const
    {
        switch (hops(a, b)) {
          case 1: return cfg_.rackHopUs * 1e-6;
          case 2: return (cfg_.rackHopUs + cfg_.aggHopUs) * 1e-6;
          default: return 0.0;
        }
    }

    /** True when placementPenalty(from, *) can be non-zero: the model
     *  is on, a bias is set, and the job has a known source. */
    bool biasActive(int from) const
    {
        return enabled() && from >= 0 && cfg_.localityBias != 0.0;
    }

    /** Placement score penalty for putting a job whose state lives on
     *  `from` onto `cand`; 0 when disabled or from is unknown (-1). */
    double placementPenalty(int from, int cand) const
    {
        if (!enabled() || from < 0 || cfg_.localityBias == 0.0)
            return 0.0;
        return cfg_.localityBias * hops(from, cand);
    }

    /**
     * Cut-set derived from the topology graph: the members of `rack`
     * (out of a `numMachines` fleet) form sideA, severing the rack
     * from everything else -- the fault-plan shape of a ToR outage.
     * The window schedule is the caller's, in message-index space
     * like every FaultPlan window (see FaultConfig's unit note).
     */
    FaultCut rackCut(int rack, int numMachines, uint64_t periodMsgs,
                     uint64_t lenMsgs) const;
    /** Same for an aggregation-switch outage: `pod`'s members form
     *  sideA, severing the pod from the rest of the fleet. */
    FaultCut podCut(int pod, int numMachines, uint64_t periodMsgs,
                    uint64_t lenMsgs) const;

  private:
    TopologyConfig cfg_;
};

/** nullptr if `cfg` is well-formed, else a static error string
 *  (shared by conf validation and the simulator constructor). */
const char *topologyConfigError(const TopologyConfig &cfg);

/** One-line human description ("25 racks x 40 machines in 5 pods
 *  (tor x4, agg x2)", or "flat"). */
std::string describeTopology(const TopologyConfig &cfg, int machines);

} // namespace xisa

#endif // XISA_SCHED_TOPOLOGY_HH
