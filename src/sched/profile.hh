/**
 * @file
 * Per-job execution-time profiles for the cluster simulator.
 *
 * The paper's scheduling study needs to know how long each (workload,
 * class, thread-count) job runs on each server type. We calibrate by
 * actually executing every workload (class A, serial) on both simulated
 * servers through the full stack, then scale analytically: problem
 * classes multiply the work by classScale() (the kernels scale
 * linearly), and threads divide it with a parallel-efficiency factor
 * matching fork/join overheads.
 */

#ifndef XISA_SCHED_PROFILE_HH
#define XISA_SCHED_PROFILE_HH

#include <array>
#include <map>

#include "isa/isa.hh"
#include "workload/workloads.hh"

namespace xisa {

/** Calibrated execution-time table. */
class JobProfileTable
{
  public:
    /**
     * Run each workload once per ISA (class A, serial) through the
     * compiler + OS + interpreter stack and derive the table. Expensive
     * (a few seconds); call once and share.
     */
    static JobProfileTable calibrate();

    /**
     * A fixed table with plausible magnitudes (x86 class-A base times
     * of a few ms, ARM ~3x slower). For tests and quick demos that
     * exercise the cluster simulator without paying for calibration;
     * experiment harnesses use calibrate().
     */
    static JobProfileTable synthetic();

    /**
     * Wall seconds of one job on one server type.
     *
     * Includes kTimeScale: the mini-kernels run in milliseconds, while
     * the paper's jobs run "from milliseconds to hundreds of seconds";
     * the scale restores datacenter-sized durations (class A ~ seconds,
     * class C ~ tens of seconds) without changing any ratio.
     */
    double seconds(WorkloadId wl, ProblemClass cls, int threads,
                   IsaId isa) const;

    /** Duration scale from simulator kernels to datacenter jobs. */
    static constexpr double kTimeScale = 1000.0;

    /** Serial class-A seconds measured for a workload on an ISA. */
    double baseSeconds(WorkloadId wl, IsaId isa) const;

    /** Parallel efficiency model: speedup(t) = t / (1 + alpha (t-1)). */
    static double parallelEfficiency(int threads);

  private:
    std::map<WorkloadId, std::array<double, kNumIsas>> base_;
};

} // namespace xisa

#endif // XISA_SCHED_PROFILE_HH
