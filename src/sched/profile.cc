#include "sched/profile.hh"

#include "compiler/compile.hh"
#include "machine/node.hh"
#include "os/os.hh"
#include "util/logging.hh"

namespace xisa {

JobProfileTable
JobProfileTable::calibrate()
{
    JobProfileTable table;
    for (WorkloadId wl : allWorkloads()) {
        Module mod = buildWorkload(wl, ProblemClass::A, 1);
        MultiIsaBinary bin = compileModule(std::move(mod));
        std::array<double, kNumIsas> secs{};
        for (int node = 0; node < kNumIsas; ++node) {
            OsConfig cfg;
            cfg.nodes = {node == 0 ? makeXenoServer()
                                   : makeAetherServer()};
            ReplicatedOS os(bin, cfg);
            os.load(0);
            OsRunResult res = os.run();
            IsaId isa = cfg.nodes[0].isa;
            secs[static_cast<int>(isa)] = res.makespanSeconds;
        }
        table.base_[wl] = secs;
    }
    return table;
}

JobProfileTable
JobProfileTable::synthetic()
{
    JobProfileTable table;
    double ms = 1e-3;
    int i = 0;
    for (WorkloadId wl : allWorkloads()) {
        double x86 = (1.0 + 0.35 * i) * ms;
        double arm = x86 * (2.6 + 0.08 * (i % 5));
        std::array<double, kNumIsas> secs{};
        secs[static_cast<int>(IsaId::Xeno64)] = x86;
        secs[static_cast<int>(IsaId::Aether64)] = arm;
        table.base_[wl] = secs;
        ++i;
    }
    return table;
}

double
JobProfileTable::parallelEfficiency(int threads)
{
    return 1.0 / (1.0 + 0.07 * (threads - 1));
}

double
JobProfileTable::baseSeconds(WorkloadId wl, IsaId isa) const
{
    auto it = base_.find(wl);
    if (it == base_.end())
        fatal("JobProfileTable: workload '%s' not calibrated",
              workloadName(wl));
    return it->second[static_cast<int>(isa)];
}

double
JobProfileTable::seconds(WorkloadId wl, ProblemClass cls, int threads,
                         IsaId isa) const
{
    double serial = baseSeconds(wl, isa) * classScale(cls) * kTimeScale;
    if (threads <= 1)
        return serial;
    return serial / (threads * parallelEfficiency(threads));
}

} // namespace xisa
