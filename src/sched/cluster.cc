#include "sched/cluster.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>

#include "check/audit.hh"
#include "check/perturb.hh"
#include "obs/trace.hh"
#include "sched/events.hh"
#include "util/env.hh"
#include "util/logging.hh"

namespace xisa {

namespace {
/** Viewer track for one job's lifetime span (start -> completion). */
constexpr int kJobTrackBase = 1000;

/** Events within this window of the chosen instant process together
 *  (absorbs last-bit float noise in computed timestamps). */
constexpr double kEps = 1e-9;

/** XISA_PERTURB overlay for the cluster link, applied before net_ is
 *  constructed from the stored config. */
ClusterSim::Config
perturbedClusterConfig(ClusterSim::Config cfg)
{
    if (check::SchedulePerturber::enabled())
        cfg.net.faults = check::SchedulePerturber::perturbFaults(
            cfg.net.faults,
            check::SchedulePerturber::envSeed() ^ 0x636c7573ull);
    return cfg;
}
} // namespace

const char *
policyName(Policy p)
{
    switch (p) {
      case Policy::StaticBalanced: return "static-balanced";
      case Policy::StaticUnbalanced: return "static-unbalanced";
      case Policy::DynamicBalanced: return "dynamic-balanced";
      case Policy::DynamicUnbalanced: return "dynamic-unbalanced";
    }
    return "?";
}

ClusterSim::ClusterSim(std::vector<Machine> machines,
                       const JobProfileTable &profiles, Config cfg)
    : machines_(std::move(machines)), profiles_(profiles),
      cfg_(perturbedClusterConfig(std::move(cfg))), topo_(cfg_.topo),
      slowSched_(slowSchedRequested()), net_(cfg_.net)
{
    if (machines_.empty())
        fatal("ClusterSim needs at least one machine");
    if (const char *err = topologyConfigError(cfg_.topo))
        fatal("cluster topology: %s", err);
    for (const CrashEvent &ev : cfg_.crashes) {
        if (ev.machine < 0 ||
            ev.machine >= static_cast<int>(machines_.size()))
            fatal("crash event names machine %d of %zu", ev.machine,
                  machines_.size());
        if (!(ev.downSeconds > 0))
            fatal("crash event downSeconds must be > 0 (got %g)",
                  ev.downSeconds);
    }
    if (!cfg_.outages.empty() && !topo_.enabled())
        fatal("domain outages need a [topology] (rack/pod indices "
              "are meaningless on a flat pool)");
    const int numRacks =
        topo_.enabled() ? topo_.rackOf(static_cast<int>(
                              machines_.size() - 1)) + 1
                        : 0;
    const int numPods =
        topo_.enabled() ? topo_.podOf(static_cast<int>(
                              machines_.size() - 1)) + 1
                        : 0;
    for (const DomainOutage &ev : cfg_.outages) {
        const bool pod = ev.kind == DomainKind::Agg;
        const int domains = pod ? numPods : numRacks;
        if (ev.domain < 0 || ev.domain >= domains)
            fatal("domain outage names %s %d of %d",
                  pod ? "pod" : "rack", ev.domain, domains);
        if (!(ev.healSeconds > 0))
            fatal("domain outage healSeconds must be > 0 (got %g)",
                  ev.healSeconds);
        if (ev.staggerSeconds < 0)
            fatal("domain outage staggerSeconds must be >= 0 (got %g)",
                  ev.staggerSeconds);
    }
    stats_.attach("sched.jobs_started", jobsStarted_);
    stats_.attach("sched.jobs_completed", jobsCompleted_);
    stats_.attach("sched.enqueues", enqueues_);
    stats_.attach("sched.migrations", migrationsStat_);
    stats_.attach("sched.rebalance_ticks", rebalanceTicks_);
    stats_.attach("sched.events", eventsStat_);
    stats_.attach("sched.rebalance_moves_capped", rebalanceCapStat_);
    stats_.attach("xfault.crashes", crashesStat_);
    stats_.attach("xfault.failovers", failoversStat_);
    stats_.attach("xfault.restarts", restartsStat_);
    stats_.attach("xfault.checkpoints", checkpointsStat_);
    stats_.attach("xfault.crashes_deferred", crashesDeferredStat_);
    stats_.attach("xfault.domain_outages", domainOutagesStat_);
    stats_.attach("xfault.isolations", isolationsStat_);
    stats_.attach("xfault.lost_seconds", lostSecondsStat_);
    stats_.attach("xfault.recovered_seconds", recoveredSecondsStat_);
    net_.registerStats(stats_, "net");
}

void
ClusterSim::setCrashPlan(std::vector<CrashEvent> crashes)
{
    for (const CrashEvent &ev : crashes) {
        if (ev.machine < 0 ||
            ev.machine >= static_cast<int>(machines_.size()))
            fatal("crash event names machine %d of %zu", ev.machine,
                  machines_.size());
        if (!(ev.downSeconds > 0))
            fatal("crash event downSeconds must be > 0 (got %g)",
                  ev.downSeconds);
    }
    cfg_.crashes = std::move(crashes);
}

int
ClusterSim::capacity(int m) const
{
    return machines_[static_cast<size_t>(m)].spec.cores;
}

double
ClusterSim::migrationCost(const Job &job, int from, int to)
{
    double bytes =
        cfg_.workingSetBytesPerScale * classScale(job.cls);
    double transfer;
    if (!net_.faulty()) {
        transfer = net_.transferSeconds(static_cast<uint64_t>(bytes));
    } else {
        // Lossy link: the working-set transfer pays real
        // retries/backoff from the seeded plan (seconds only; no core
        // clock involved).
        auto sent =
            net_.reliableSend(static_cast<uint64_t>(bytes), 1.0);
        transfer = sent.seconds;
    }
    // Intra-rack (or no topology): the flat link cost, bit-identical
    // to the pre-topology arithmetic. Crossing switch boundaries
    // stretches the transfer by the oversubscription product and adds
    // the path latency; the fixed CPU-side overhead is unaffected.
    if (from < 0 || to < 0 || topo_.hops(from, to) == 0)
        return cfg_.migrationFixedSeconds + transfer;
    return cfg_.migrationFixedSeconds +
           transfer * topo_.bandwidthFactor(from, to) +
           topo_.extraLatencySeconds(from, to);
}

const char *
ClusterSim::jobSpanName(int id)
{
    const char *&span = jobSpanNames_[id];
    if (!span)
        span = obs::intern("job" + std::to_string(id));
    return span;
}

/**
 * One run()'s worth of engine state, shared by the two drivers.
 *
 * Both drivers step through identical (timestamp, phase) sequences:
 * they differ ONLY in how the next event time and the set of machines
 * with due completions/reboots are discovered (indexed heap vs full
 * rescan). Every state mutation -- starts, completions, checkpoints,
 * crashes, restarts, migrations, energy accrual -- lives in a method
 * here that both drivers call at the same instants with the same
 * arguments, which is what makes the ClusterResult, stdout, and stats
 * JSON of the two engines bit-identical (the property the equivalence
 * sweep in test_sched.cc pins).
 *
 * Phase order at one timestamp (the documented tie-break contract,
 * DESIGN.md §11):
 *   1. reboots (machines in ascending index)
 *   2. completions (machines ascending; same-machine jobs in
 *      placement order), each machine then admitting queued work
 *   3. checkpoint epoch
 *   4. crash injections (plan order)
 *   5. arrivals (plan order)
 *   6. rebalance tick
 */
struct ClusterSim::Run {
    ClusterSim &S;
    Policy policy;
    bool isDynamic;
    /** False under XISA_SLOW_SCHED: heap maintenance is skipped and
     *  the stepping driver rescans instead. */
    bool useHeap;

    std::vector<MachineState> st;
    std::vector<Job> arrivals;
    size_t next = 0; ///< arrival cursor
    double now = 0;
    double nextTick;
    int migrations = 0;
    double turnaroundSum = 0;
    size_t completed = 0;
    double lastCompletion = 0;

    // Fault machinery: dormant (and event-sequence-identical to the
    // fault-free simulator) unless crash events are configured.
    std::vector<CrashEvent> crashes;
    size_t nextCrash = 0; ///< crash cursor (deferrals re-insert here)
    bool faulty = false;
    double nextCkpt;
    std::vector<double> downUntil;
    /** In the load index (placeable): !down && !isolated. Every
     *  bumpUsed/bumpQueued consults this to keep the index honest. */
    std::vector<char> alive;
    int crashCount = 0;
    int failovers = 0;
    double lostWork = 0;
    double recoveredWork = 0;
    std::map<int, int> restartCounts;

    /** One ToR/agg isolation edge: at `time`, `machine` leaves
     *  (start) or rejoins (heal) the reachable set. Expanded from
     *  DomainOutage at run start into a (time, machine)-sorted stream
     *  both drivers consume through one cursor -- starts share the
     *  outage instant (atomic isolation), heals are staggered. */
    struct IsoEvent {
        double time = 0;
        int machine = 0;
        bool start = true;
    };
    std::vector<IsoEvent> isoEvents;
    size_t nextIso = 0;
    /** Currently isolated (unreachable but powered: jobs keep
     *  running, queues stay parked, no placements in or out). */
    std::vector<char> isolated;
    /** Scheduled rejoin instant of an isolated machine (parking
     *  heuristic when the whole pool is unavailable). */
    std::vector<double> isolatedUntil;
    int isoCount = 0; ///< machines isolated (members x events)

    /** Compact per-machine thread counters (sum of running[].threads
     *  and queue[].threads). They live here rather than in
     *  MachineState because pickMachine and the rebalance hi/lo scans
     *  walk every machine per call: striding through the fat
     *  MachineState structs made those scans cache-bound at fleet
     *  scale, and two flat int arrays keep 1000 machines inside L1. */
    std::vector<int> usedThreads;
    std::vector<int> queuedThreads;
    /** Every machine has the same loadWeight: placement scores order
     *  exactly like the raw integer thread counts, so pickMachine can
     *  skip the per-candidate division. */
    bool uniformWeights;

    /** Jobs currently running, cluster-wide (gates the checkpoint and
     *  rebalance candidates without a machine scan). */
    int runningCount = 0;
    /** Entries sitting in queues + restartQueues, cluster-wide (the
     *  O(1) anyWork test). */
    size_t parkedJobs = 0;

    /**
     * Incremental argmin/argmax index over the alive machines'
     * integer thread loads: one machine-bitmap bucket per load value
     * plus min/max cursors. Placement and the rebalance hi/lo picks
     * become a first-set-bit scan of one bucket (~words ops) instead
     * of an O(machines) array scan per query -- the difference
     * between the event core and the old stepping loop at fleet
     * scale. Every used/queued mutation routes through bumpUsed /
     * bumpQueued so the index never goes stale; down machines are
     * removed outright and re-added at reboot, so every bucket holds
     * alive machines only. Queries return the lowest set index, which
     * is exactly the first-lowest-index tie-break of the scans they
     * replace.
     */
    struct LoadIndex {
        int words = 0;   ///< 64-bit words per bucket
        int buckets = 0; ///< allocated load values [0, buckets)
        std::vector<uint64_t> bits; ///< bucket-major bitmaps
        std::vector<int> cnt;       ///< alive machines per bucket
        int minL = 0, maxL = 0;     ///< tight when aliveCnt > 0
        int aliveCnt = 0;

        void init(int machines)
        {
            words = (machines + 63) / 64;
            buckets = 1;
            bits.assign(static_cast<size_t>(words), 0);
            cnt.assign(1, 0);
            minL = maxL = aliveCnt = 0;
        }
        /** Bucket-major layout: growing appends zeroed buckets past
         *  the end, leaving existing buckets' words in place. */
        void grow(int v)
        {
            if (v < buckets)
                return;
            int nb = std::max(v + 1, buckets * 2);
            bits.resize(static_cast<size_t>(nb) * words, 0);
            cnt.resize(static_cast<size_t>(nb), 0);
            buckets = nb;
        }
        uint64_t *bucket(int v)
        {
            return bits.data() + static_cast<size_t>(v) * words;
        }
        const uint64_t *bucket(int v) const
        {
            return bits.data() + static_cast<size_t>(v) * words;
        }
        /** Machine `m` joins the alive set at load `v` (reboot /
         *  construction). */
        void add(int m, int v)
        {
            grow(v);
            bucket(v)[m >> 6] |= 1ull << (m & 63);
            ++cnt[v];
            if (aliveCnt == 0) {
                minL = maxL = v;
            } else {
                minL = std::min(minL, v);
                maxL = std::max(maxL, v);
            }
            ++aliveCnt;
        }
        /** Machine `m` (at load `v`) leaves the alive set (crash). */
        void del(int m, int v)
        {
            bucket(v)[m >> 6] &= ~(1ull << (m & 63));
            --cnt[v];
            --aliveCnt;
            if (aliveCnt > 0) {
                while (cnt[minL] == 0)
                    ++minL;
                while (cnt[maxL] == 0)
                    --maxL;
            }
        }
        /** Alive machine `m` changes load `a` -> `b`. */
        void move(int m, int a, int b)
        {
            bucket(a)[m >> 6] &= ~(1ull << (m & 63));
            --cnt[a];
            grow(b);
            bucket(b)[m >> 6] |= 1ull << (m & 63);
            ++cnt[b];
            if (b < minL)
                minL = b;
            else
                while (cnt[minL] == 0)
                    ++minL;
            if (b > maxL)
                maxL = b;
            else
                while (cnt[maxL] == 0)
                    --maxL;
        }
        /** Lowest machine index in bucket `v`, optionally restricted
         *  to machines set in `inc` and clear in `exc` (nullable). */
        int firstIn(int v, const uint64_t *inc = nullptr,
                    const uint64_t *exc = nullptr) const
        {
            const uint64_t *w = bucket(v);
            for (int i = 0; i < words; ++i) {
                uint64_t x = w[i];
                if (inc)
                    x &= inc[i];
                if (exc)
                    x &= ~exc[i];
                if (x)
                    return i * 64 + __builtin_ctzll(x);
            }
            return -1;
        }
        int argmin() const { return aliveCnt ? firstIn(minL) : -1; }
        int argmax() const { return aliveCnt ? firstIn(maxL) : -1; }
    };
    LoadIndex lidx;

    /** Precomputed tree coordinates (topology enabled only): the
     *  biased receiver query reads these instead of paying rackOf/
     *  podOf's integer divisions. */
    std::vector<int> rackIdx, podIdx;
    /** Per-rack / per-pod machine bitmaps (lidx.words words each,
     *  rack-major): the biased receiver query intersects them with
     *  load buckets to split candidates by hop count. */
    std::vector<uint64_t> rackMask, podMask;

    EventHeap heap;
    uint64_t placeSeq = 0;
    /** Machines whose capacity was freed by a phase that runs after
     *  the admission pass (rebalance migrating work away): the next
     *  timestamp's admission pass must visit them, exactly when the
     *  stepping driver's all-machine scan would. */
    std::vector<int> pendingWake;
    std::vector<int> due; ///< scratch: machines to admit this step

    bool auditing;

    Run(ClusterSim &sim, const std::vector<Job> &jobs, Policy p)
        : S(sim), policy(p), isDynamic(sim.dynamic(p)),
          useHeap(!sim.slowSched_), st(sim.machines_.size()),
          arrivals(jobs), nextTick(sim.cfg_.rebalancePeriod),
          crashes(sim.cfg_.crashes),
          nextCkpt(sim.cfg_.checkpointPeriod),
          downUntil(sim.machines_.size(), 0.0),
          alive(sim.machines_.size(), 1),
          auditing(check::auditRequested())
    {
        usedThreads.assign(sim.machines_.size(), 0);
        queuedThreads.assign(sim.machines_.size(), 0);
        isolated.assign(sim.machines_.size(), 0);
        isolatedUntil.assign(sim.machines_.size(), 0.0);
        uniformWeights = true;
        for (const Machine &m : sim.machines_)
            uniformWeights &=
                m.loadWeight == sim.machines_.front().loadWeight;
        lidx.init(static_cast<int>(sim.machines_.size()));
        for (size_t m = 0; m < sim.machines_.size(); ++m)
            lidx.add(static_cast<int>(m), 0);
        if (S.topo_.enabled()) {
            rackIdx.resize(sim.machines_.size());
            podIdx.resize(sim.machines_.size());
            for (size_t m = 0; m < sim.machines_.size(); ++m) {
                rackIdx[m] = S.topo_.rackOf(static_cast<int>(m));
                podIdx[m] = S.topo_.podOf(static_cast<int>(m));
            }
            const size_t W = static_cast<size_t>(lidx.words);
            rackMask.assign(
                (static_cast<size_t>(rackIdx.back()) + 1) * W, 0);
            podMask.assign(
                (static_cast<size_t>(podIdx.back()) + 1) * W, 0);
            for (size_t m = 0; m < sim.machines_.size(); ++m) {
                const uint64_t bit = 1ull << (m & 63);
                rackMask[static_cast<size_t>(rackIdx[m]) * W +
                         (m >> 6)] |= bit;
                podMask[static_cast<size_t>(podIdx[m]) * W +
                        (m >> 6)] |= bit;
            }
        }
        std::stable_sort(arrivals.begin(), arrivals.end(),
                         [](const Job &a, const Job &b) {
                             return a.arrival < b.arrival;
                         });
        // Expand correlated outages before the crash sort: Pdu events
        // become per-machine CrashEvents (atomic down at the outage
        // instant, staggered seeded reboots) so every crash/restart
        // path -- deferral, rollback, failover, reboot -- applies
        // unchanged; Tor/Agg events become isolation edges consumed
        // by isolationPhase. Both drivers run this same expansion.
        const int M = static_cast<int>(sim.machines_.size());
        for (const DomainOutage &ev : sim.cfg_.outages) {
            Rng jitter(ev.seed);
            int lo, hi; // member machine range [lo, hi)
            if (ev.kind == DomainKind::Agg) {
                const int rpp = S.topo_.config().racksPerPod;
                const int mpp =
                    rpp > 0
                        ? rpp * S.topo_.config().machinesPerRack
                        : M;
                lo = ev.domain * mpp;
                hi = std::min(M, lo + mpp);
            } else {
                const int mpr = S.topo_.config().machinesPerRack;
                lo = ev.domain * mpr;
                hi = std::min(M, lo + mpr);
            }
            for (int m = lo; m < hi; ++m) {
                // Member k rejoins at heal + k*stagger + seeded
                // jitter: the reboot storm is spread out instead of
                // thundering-herding the admission pass.
                const int k = m - lo;
                const double jit =
                    ev.staggerSeconds > 0
                        ? jitter.uniform(0.0, ev.staggerSeconds)
                        : 0.0;
                const double held =
                    ev.healSeconds + k * ev.staggerSeconds + jit;
                if (ev.kind == DomainKind::Pdu) {
                    CrashEvent c;
                    c.time = ev.time;
                    c.machine = m;
                    c.downSeconds = held;
                    c.avoidRack = S.topo_.rackOf(m);
                    crashes.push_back(c);
                } else {
                    isoEvents.push_back({ev.time, m, true});
                    isoEvents.push_back({ev.time + held, m, false});
                    isolatedUntil[static_cast<size_t>(m)] = std::max(
                        isolatedUntil[static_cast<size_t>(m)],
                        ev.time + held);
                }
            }
            ++S.domainOutagesStat_;
        }
        std::stable_sort(isoEvents.begin(), isoEvents.end(),
                         [](const IsoEvent &a, const IsoEvent &b) {
                             return a.time != b.time
                                        ? a.time < b.time
                                        : a.machine < b.machine;
                         });
        std::stable_sort(crashes.begin(), crashes.end(),
                         [](const CrashEvent &a, const CrashEvent &b) {
                             return a.time < b.time;
                         });
        faulty = !crashes.empty();
        // XISA_PERTURB: jitter crash instants around their configured
        // times, exploring crash-vs-checkpoint and crash-vs-migration
        // races the scripted plan would never hit.
        if (faulty && check::SchedulePerturber::enabled()) {
            check::SchedulePerturber pert(
                check::SchedulePerturber::envSeed() ^ 0x6372617368ull);
            for (CrashEvent &ev : crashes)
                ev.time = std::max(
                    0.0, ev.time + pert.jitterSeconds(
                                       0.5 * S.cfg_.checkpointPeriod));
            std::stable_sort(
                crashes.begin(), crashes.end(),
                [](const CrashEvent &a, const CrashEvent &b) {
                    return a.time < b.time;
                });
        }
    }

    int cap(int m) const { return S.capacity(m); }

    /** Fraction of `rj` still to run as of `now` (derived from the
     *  absolute endTime; never decremented step-by-step). */
    double remainingAt(const RunningJob &rj) const
    {
        return (rj.endTime - now) / rj.durationHere;
    }

    /**
     * Lazy energy: charge machine `m` for [energyMark, now) at the
     * power level of the state it held over that whole interval, and
     * move the mark. Called by every mutator that is about to change
     * what the machine draws (run set, down flag), and once at the end
     * of the run; between those instants the machine's power is
     * constant, so one multiply replaces the old per-event accrual
     * over every machine.
     */
    void accrue(size_t m)
    {
        MachineState &ms = st[m];
        double dt = now - ms.energyMark;
        const Machine &mach = S.machines_[m];
        double power;
        if (ms.down) {
            power = 0; // crashed: drawing nothing, doing nothing
        } else if (ms.running.empty()) {
            // Queued-but-unstarted work keeps no core awake: sleep
            // power. (The pre-event-core loop charged active-idle
            // whenever the queue was non-empty -- a machine parked
            // behind a too-wide job paid full idle forever.)
            power = mach.spec.idleWatts * S.cfg_.sleepFraction *
                    mach.powerScale;
        } else {
            double util = std::min(
                1.0, usedThreads[m] /
                         static_cast<double>(cap(static_cast<int>(m))));
            power = mach.spec.power(util, mach.powerScale);
        }
        ms.energy += power * dt;
        ms.energyMark = now;
    }

    void scheduleCompletion(RunningJob &rj, int m)
    {
        if (!useHeap)
            return;
        rj.evHandle = heap.push(
            SchedEvent{rj.endTime, EvKind::Completion, m, placeSeq++});
    }

    void cancelCompletion(RunningJob &rj)
    {
        if (!useHeap || rj.evHandle < 0)
            return;
        heap.erase(rj.evHandle);
        rj.evHandle = -1;
    }

    /** All used/queued-thread mutations route through these two so
     *  the load index tracks every change. Down machines are not
     *  indexed (the crash removed them; the reboot re-adds them at
     *  their then-current load), so their array updates skip the
     *  index. */
    void bumpUsed(size_t m, int d)
    {
        if (alive[m])
            lidx.move(static_cast<int>(m),
                      usedThreads[m] + queuedThreads[m],
                      usedThreads[m] + queuedThreads[m] + d);
        usedThreads[m] += d;
    }
    void bumpQueued(size_t m, int d)
    {
        if (alive[m])
            lidx.move(static_cast<int>(m),
                      usedThreads[m] + queuedThreads[m],
                      usedThreads[m] + queuedThreads[m] + d);
        queuedThreads[m] += d;
    }

    /** Park `job` on machine `m`'s admission queue (no stat here: the
     *  enqueue counter mirrors the policy-level decision sites). */
    void pushQueue(size_t m, const Job &job)
    {
        st[m].queue.push_back(job);
        bumpQueued(m, job.threads);
        ++parkedJobs;
    }

    bool tryStart(int m, const Job &job)
    {
        MachineState &ms = st[static_cast<size_t>(m)];
        if (usedThreads[static_cast<size_t>(m)] + job.threads > cap(m))
            return false;
        accrue(static_cast<size_t>(m));
        RunningJob rj;
        rj.job = job;
        rj.durationHere = S.profiles_.seconds(
            job.wl, job.cls, job.threads,
            S.machines_[static_cast<size_t>(m)].spec.isa);
        rj.endTime = now + rj.durationHere;
        rj.startedAt = now;
        rj.ckptRemaining = 1.0;
        scheduleCompletion(rj, m);
        ms.running.push_back(rj);
        bumpUsed(static_cast<size_t>(m), job.threads);
        ++runningCount;
        ++S.jobsStarted_;
        OBS_TRACE_BEGIN(kJobTrackBase + job.id, "sched",
                        S.jobSpanName(job.id), now);
        return true;
    }

    /** Admit a checkpointed job on `m` if capacity allows, charging
     *  the restore transfer from `from` (where its image lives);
     *  parks it in the restart queue otherwise. */
    void placeRestart(int m, RunningJob rj, int from)
    {
        MachineState &ms = st[static_cast<size_t>(m)];
        if (usedThreads[static_cast<size_t>(m)] + rj.job.threads >
            cap(m)) {
            ms.restartQueue.push_back(std::move(rj));
            ++parkedJobs;
            return;
        }
        accrue(static_cast<size_t>(m));
        double destDuration = S.profiles_.seconds(
            rj.job.wl, rj.job.cls, rj.job.threads,
            S.machines_[static_cast<size_t>(m)].spec.isa);
        // Remaining work is the checkpointed fraction re-expressed on
        // the destination's clock, plus the checkpoint-restore
        // transfer.
        double remSeconds = rj.ckptRemaining * destDuration +
                            S.migrationCost(rj.job, from, m);
        rj.durationHere = destDuration;
        rj.endTime = now + remSeconds;
        rj.ckptRemaining = remSeconds / destDuration;
        rj.startedAt = now;
        scheduleCompletion(rj, m);
        ms.running.push_back(rj);
        bumpUsed(static_cast<size_t>(m), rj.job.threads);
        ++runningCount;
        ++S.restartsStat_;
        OBS_TRACE_INSTANT(kJobTrackBase + rj.job.id, "sched", "restart",
                          now);
    }

    void startFromQueue(int m)
    {
        MachineState &ms = st[static_cast<size_t>(m)];
        if (!alive[static_cast<size_t>(m)])
            return;
        // Checkpointed restarts first (they are in-flight work), then
        // fresh admissions. Restart images are machine-local here.
        for (size_t q = 0; q < ms.restartQueue.size();) {
            if (usedThreads[static_cast<size_t>(m)] +
                    ms.restartQueue[q].job.threads <=
                cap(m)) {
                RunningJob rj = std::move(ms.restartQueue[q]);
                ms.restartQueue.erase(ms.restartQueue.begin() +
                                      static_cast<ptrdiff_t>(q));
                --parkedJobs;
                placeRestart(m, std::move(rj), m);
            } else {
                ++q;
            }
        }
        for (size_t q = 0; q < ms.queue.size();) {
            Job job = ms.queue[q];
            if (tryStart(m, job)) {
                ms.queue.erase(ms.queue.begin() +
                               static_cast<ptrdiff_t>(q));
                bumpQueued(static_cast<size_t>(m), -job.threads);
                --parkedJobs;
            } else {
                ++q;
            }
        }
    }

    double load(int m) const
    {
        // The paper's policies balance the NUMBER of threads between
        // the machines (weighted for the unbalanced variants), not
        // per-core utilization; capacity only constrains what can
        // start.
        return (usedThreads[static_cast<size_t>(m)] +
                queuedThreads[static_cast<size_t>(m)]) /
               S.machines_[static_cast<size_t>(m)].loadWeight;
    }

    /**
     * Least weighted load after hypothetically placing the job,
     * considering live machines only; -1 if every machine is down.
     * When the job has state on machine `from` (failover) and a
     * topology with a locality bias is configured, candidates pay
     * bias * hops(from, cand), steering restarts toward the rack that
     * holds the checkpoint image. `from` = -1 (fresh admission) keeps
     * the score the plain load, bit-identical to the flat scheduler.
     */
    int pickMachine(int threads, int from) const
    {
        // Uniform weights and no locality penalty: the per-candidate
        // score (u + q + threads)/w is a strictly monotone image of
        // the integer thread count (the +threads/w shift is shared and
        // distinct integer loads can never round to the same double at
        // these magnitudes), so the argmin -- including the
        // first-lowest-index tie-break -- is the integer argmin, and
        // the load index answers that in O(words): the lowest set bit
        // of the minimum-load bucket IS the first-lowest-index alive
        // machine an array scan would keep (-1 when everything is
        // down). This O(1)-ish query is what keeps placement cheap at
        // fleet scale.
        if (uniformWeights && !S.topo_.biasActive(from))
            return lidx.argmin();
        int best = -1;
        double bestScore = std::numeric_limits<double>::infinity();
        for (size_t m = 0; m < usedThreads.size(); ++m) {
            if (!alive[m])
                continue;
            double score =
                (usedThreads[m] + queuedThreads[m] + threads) /
                    S.machines_[m].loadWeight +
                S.topo_.placementPenalty(from, static_cast<int>(m));
            if (score < bestScore) {
                bestScore = score;
                best = static_cast<int>(m);
            }
        }
        return best;
    }

    /**
     * pickMachine, but prefer a candidate OUTSIDE `avoidRack`: this
     * crash is one leg of a correlated rack outage, so the rest of
     * that rack is dying at this very instant and the locality bias
     * toward the checkpoint's rack would restart work onto doomed
     * machines. Falls back to the plain pick when nothing outside the
     * rack can take the job (a one-rack pool still restarts its own
     * work at reboot). Only outage-expanded crashes route here.
     */
    int pickMachineAvoiding(int threads, int from, int avoidRack) const
    {
        const size_t W = static_cast<size_t>(lidx.words);
        const uint64_t *rm =
            rackMask.data() + static_cast<size_t>(avoidRack) * W;
        if (uniformWeights && !S.topo_.biasActive(from)) {
            if (lidx.aliveCnt > 0)
                for (int v = lidx.minL; v <= lidx.maxL; ++v) {
                    if (!lidx.cnt[v])
                        continue;
                    int c = lidx.firstIn(v, nullptr, rm);
                    if (c >= 0)
                        return c;
                }
            return lidx.argmin(); // doomed-rack machines (or nobody)
        }
        int best = -1;
        double bestScore = std::numeric_limits<double>::infinity();
        for (size_t m = 0; m < usedThreads.size(); ++m) {
            if (!alive[m] || rackIdx[m] == avoidRack)
                continue;
            double score =
                (usedThreads[m] + queuedThreads[m] + threads) /
                    S.machines_[m].loadWeight +
                S.topo_.placementPenalty(from, static_cast<int>(m));
            if (score < bestScore) {
                bestScore = score;
                best = static_cast<int>(m);
            }
        }
        return best >= 0 ? best : pickMachine(threads, from);
    }

    void reboot(size_t m)
    {
        accrue(m); // closes the zero-power downtime interval
        st[m].down = false;
        if (isolated[m])
            return; // still unreachable: rejoins at the heal edge
        alive[m] = 1;
        // Re-enter the load index at whatever load accumulated while
        // down (static policies leave the queue parked on the dead
        // machine, so this is not always zero).
        lidx.add(static_cast<int>(m),
                 usedThreads[m] + queuedThreads[m]);
    }

    /** Phase 2 for one machine: retire every job whose endTime is due,
     *  then admit queued work into the freed capacity. */
    void completeDue(int m)
    {
        MachineState &ms = st[static_cast<size_t>(m)];
        for (size_t r = 0; r < ms.running.size();) {
            if (ms.running[r].endTime <= now + kEps) {
                // The heap entry (if any) was already popped by the
                // driver; no cancel needed.
                accrue(static_cast<size_t>(m));
                turnaroundSum += now - ms.running[r].job.arrival;
                ++completed;
                ++S.jobsCompleted_;
                OBS_TRACE_END(kJobTrackBase + ms.running[r].job.id,
                              now);
                lastCompletion = now;
                bumpUsed(static_cast<size_t>(m),
                         -ms.running[r].job.threads);
                ms.running.erase(ms.running.begin() +
                                 static_cast<ptrdiff_t>(r));
                --runningCount;
            } else {
                ++r;
            }
        }
        startFromQueue(m);
    }

    /** Phase 3: snapshot every running job's progress as its restart
     *  target (only modeled when crashes are injected). */
    void checkpointPhase()
    {
        if (!faulty || now + kEps < nextCkpt)
            return;
        for (MachineState &ms : st)
            for (RunningJob &rj : ms.running)
                rj.ckptRemaining = remainingAt(rj);
        ++S.checkpointsStat_;
        while (nextCkpt <= now + kEps)
            nextCkpt += S.cfg_.checkpointPeriod;
    }

    /**
     * Phase 3.5: ToR/agg isolation edges due at this instant. A start
     * removes the member from the placement pool atomically with the
     * rest of its domain -- running jobs continue (the machine is
     * powered, just unreachable), its queue stays parked, and no new
     * work can land on it. A heal re-indexes the machine at whatever
     * load accumulated and immediately admits parked work, at the
     * same instant under both drivers. A machine that is ALSO down
     * (crashed mid-isolation) defers its index rejoin to whichever of
     * reboot/heal happens last.
     */
    void isolationPhase()
    {
        while (nextIso < isoEvents.size() &&
               isoEvents[nextIso].time <= now + kEps) {
            const IsoEvent ev = isoEvents[nextIso++];
            size_t m = static_cast<size_t>(ev.machine);
            if (ev.start) {
                if (isolated[m]++ == 0 && !st[m].down) {
                    lidx.del(ev.machine,
                             usedThreads[m] + queuedThreads[m]);
                    alive[m] = 0;
                }
                ++isoCount;
                ++S.isolationsStat_;
                OBS_TRACE_INSTANT(kJobTrackBase - 1, "sched",
                                  "isolate", now);
            } else {
                if (--isolated[m] == 0 && !st[m].down) {
                    alive[m] = 1;
                    lidx.add(ev.machine,
                             usedThreads[m] + queuedThreads[m]);
                    startFromQueue(ev.machine);
                }
            }
        }
    }

    /**
     * Phase 4: machine crashes. The machine goes dark, its in-flight
     * jobs roll back to their last checkpoint and restart -- on
     * another live machine under the dynamic policies (failover), or
     * on the same machine once it reboots under the static ones. The
     * energy already spent on the discarded progress stays charged. A
     * crash aimed at a machine that is already down is deferred to its
     * reboot instant (back-to-back failure) instead of being silently
     * dropped, so scripted [crashes] plans never lose events.
     */
    void crashPhase()
    {
        while (faulty && nextCrash < crashes.size() &&
               crashes[nextCrash].time <= now + kEps) {
            const CrashEvent ev = crashes[nextCrash++];
            size_t cm = static_cast<size_t>(ev.machine);
            if (st[cm].down) {
                CrashEvent deferred = ev;
                deferred.time = downUntil[cm];
                crashes.insert(
                    std::upper_bound(
                        crashes.begin() +
                            static_cast<ptrdiff_t>(nextCrash),
                        crashes.end(), deferred,
                        [](const CrashEvent &a, const CrashEvent &b) {
                            return a.time < b.time;
                        }),
                    deferred);
                ++S.crashesDeferredStat_;
                continue;
            }
            accrue(cm); // close the powered interval
            downUntil[cm] = ev.time + ev.downSeconds;
            st[cm].down = true;
            if (alive[cm]) { // an isolated machine is already deindexed
                lidx.del(static_cast<int>(cm),
                         usedThreads[cm] + queuedThreads[cm]);
                alive[cm] = 0;
            }
            if (useHeap)
                heap.push(SchedEvent{downUntil[cm], EvKind::Reboot,
                                     ev.machine, 0});
            ++crashCount;
            ++S.crashesStat_;
            MachineState &ms = st[cm];
            std::vector<RunningJob> victims = std::move(ms.running);
            ms.running.clear();
            usedThreads[cm] = 0;
            runningCount -= static_cast<int>(victims.size());
            for (RunningJob &rj : victims) {
                cancelCompletion(rj);
                double rem = remainingAt(rj);
                double lost = std::max(
                    0.0, (rj.ckptRemaining - rem) * rj.durationHere);
                lostWork += lost;
                S.lostSecondsStat_.add(lost);
                // What the checkpoint saved: everything finished
                // before the snapshot restarts as done, not redone.
                double recovered = std::max(
                    0.0, (1.0 - rj.ckptRemaining) * rj.durationHere);
                recoveredWork += recovered;
                S.recoveredSecondsStat_.add(recovered);
                ++restartCounts[rj.job.id];
                int target = ev.machine;
                if (isDynamic) {
                    int cand =
                        ev.avoidRack >= 0
                            ? pickMachineAvoiding(rj.job.threads,
                                                  ev.machine,
                                                  ev.avoidRack)
                            : pickMachine(rj.job.threads, ev.machine);
                    if (cand >= 0)
                        target = cand;
                }
                if (target != ev.machine) {
                    ++failovers;
                    ++S.failoversStat_;
                    OBS_TRACE_INSTANT(kJobTrackBase + rj.job.id,
                                      "sched", "failover", now);
                    placeRestart(target, rj, ev.machine);
                } else {
                    ms.restartQueue.push_back(rj);
                    ++parkedJobs;
                }
            }
            // Queued-but-unstarted jobs fail over too under the
            // dynamic policies; static placements wait for the reboot.
            if (isDynamic) {
                std::vector<Job> parked = std::move(ms.queue);
                ms.queue.clear();
                parkedJobs -= parked.size();
                queuedThreads[cm] = 0;
                for (Job &job : parked) {
                    int cand =
                        ev.avoidRack >= 0
                            ? pickMachineAvoiding(job.threads, -1,
                                                  ev.avoidRack)
                            : pickMachine(job.threads, -1);
                    if (cand < 0) {
                        pushQueue(cm, job);
                    } else if (!tryStart(cand, job)) {
                        pushQueue(static_cast<size_t>(cand), job);
                        ++S.enqueues_;
                    }
                }
            }
        }
    }

    /** Phase 5: admit every arrival due at this instant. */
    void arrivalPhase()
    {
        while (next < arrivals.size() &&
               arrivals[next].arrival <= now + kEps) {
            const Job job = arrivals[next++];
            int m = pickMachine(job.threads, -1);
            if (m < 0) {
                // Every machine is down or isolated: park on the
                // first to come back (reboot or isolation heal).
                // With no outages configured availableAt() IS
                // downUntil, bit-identical to the pre-outage scan.
                auto availableAt = [&](size_t k) {
                    return isolated[k]
                               ? std::max(downUntil[k],
                                          isolatedUntil[k])
                               : downUntil[k];
                };
                size_t soonest = 0;
                for (size_t k = 1; k < downUntil.size(); ++k)
                    if (availableAt(k) < availableAt(soonest))
                        soonest = k;
                pushQueue(soonest, job);
                ++S.enqueues_;
            } else if (!tryStart(m, job)) {
                pushQueue(static_cast<size_t>(m), job);
                ++S.enqueues_;
            }
        }
    }

    /** Phase 6: rebalance tick (dynamic policies only). */
    void rebalancePhase()
    {
        if (!isDynamic || now + kEps < nextTick)
            return;
        nextTick = now + S.cfg_.rebalancePeriod;
        ++S.rebalanceTicks_;
        // The move budget scales with the pool (the old fixed 64
        // silently truncated fleet-sized rebalances); exhausting it
        // is still possible and now visible via the counter.
        const int moveCap =
            std::max(64, 8 * static_cast<int>(st.size()));
        bool capped = true;
        for (int moves = 0; moves < moveCap; ++moves) {
            // Down machines neither shed nor receive work: the load
            // index holds alive machines only. With uniform weights,
            // load(m) = (u+q)/w is a strictly monotone image of the
            // integer load (distinct integers never round together at
            // these magnitudes), so the index's argmax -- lowest set
            // bit of the top bucket -- is the machine a first-index
            // strict-> scan over load() keeps.
            int hi = -1;
            if (uniformWeights) {
                hi = lidx.argmax();
            } else {
                for (size_t m = 0; m < st.size(); ++m)
                    if (alive[m] &&
                        (hi < 0 || load(static_cast<int>(m)) >
                                       load(hi)))
                        hi = static_cast<int>(m);
            }
            // The receiver is scored with the topology's locality
            // penalty relative to the shedding machine, so a
            // same-rack sink wins over an equally-loaded remote one;
            // without a topology the score IS the load (adding the
            // 0.0 penalty is exact).
            int lo = -1;
            const bool biased = S.topo_.biasActive(hi);
            const double bias =
                biased ? S.topo_.config().localityBias : 0.0;
            if (!biased && uniformWeights) {
                lo = lidx.argmin();
            } else if (biased && uniformWeights && bias > 0) {
                // Bucket walk instead of a machine scan. A candidate
                // with integer load v scores at least v/w, and the
                // minimum-load bucket's representative scores at most
                // minL/w + 2*bias (hops <= 2), so no machine with
                // v > minL + 2*bias*w can win or even tie; the +2
                // covers the handful of double roundings in that
                // bound. Within one bucket all machines share the
                // same load double, so candidates split by hop count
                // into rack/pod mask intersections whose best member
                // is their lowest set bit; the exact score of each
                // (bucket, hops) representative -- the same
                // load + bias*hops expression the scan computed --
                // then picks the winner, with equal scores resolved
                // to the lowest machine index exactly like the
                // scan's strict-< update.
                const size_t W = static_cast<size_t>(lidx.words);
                const uint64_t *rm =
                    rackMask.data() +
                    static_cast<size_t>(rackIdx[static_cast<size_t>(
                        hi)]) * W;
                const uint64_t *pm =
                    podMask.data() +
                    static_cast<size_t>(podIdx[static_cast<size_t>(
                        hi)]) * W;
                const double w = S.machines_.front().loadWeight;
                const int bound = std::min(
                    lidx.maxL,
                    lidx.minL +
                        static_cast<int>(std::ceil(2.0 * bias * w)) +
                        2);
                double best =
                    std::numeric_limits<double>::infinity();
                for (int v = lidx.minL; v <= bound; ++v) {
                    if (!lidx.cnt[v])
                        continue;
                    const double L = v / w; // load()'s own division
                    const int cand[3] = {
                        lidx.firstIn(v, rm, nullptr),
                        lidx.firstIn(v, pm, rm),
                        lidx.firstIn(v, nullptr, pm)};
                    for (int h = 0; h < 3; ++h) {
                        if (cand[h] < 0)
                            continue;
                        double score = L + bias * h;
                        if (score < best ||
                            (score == best && cand[h] < lo)) {
                            best = score;
                            lo = cand[h];
                        }
                    }
                }
            } else {
                // Non-uniform weights (or a negative bias): the exact
                // scan, scored as load plus the locality penalty.
                double loScore =
                    std::numeric_limits<double>::infinity();
                for (size_t m = 0; m < st.size(); ++m) {
                    if (!alive[m])
                        continue;
                    double score = load(static_cast<int>(m));
                    if (biased)
                        score += bias *
                                 S.topo_.hops(hi, static_cast<int>(m));
                    if (lo < 0 || score < loScore) {
                        lo = static_cast<int>(m);
                        loScore = score;
                    }
                }
            }
            if (hi < 0 || lo < 0 || hi == lo) {
                capped = false;
                break;
            }
            MachineState &from = st[static_cast<size_t>(hi)];
            MachineState &to = st[static_cast<size_t>(lo)];
            double gap = load(hi) - load(lo);
            if (gap <= 1.0) {
                capped = false;
                break;
            }
            double wFrom =
                S.machines_[static_cast<size_t>(hi)].loadWeight;
            double wTo =
                S.machines_[static_cast<size_t>(lo)].loadWeight;
            // Only move a job if it strictly reduces the peak load
            // (otherwise the pair would oscillate forever).
            auto improves = [&](int threads) {
                double newFrom = load(hi) - threads / wFrom;
                double newTo = load(lo) + threads / wTo;
                return std::max(newFrom, newTo) + 1e-9 <
                       std::max(load(hi), load(lo));
            };
            // Prefer moving a queued job (free); else migrate a
            // running one (charges migration overhead).
            if (!from.queue.empty() &&
                improves(from.queue.front().threads)) {
                Job job = from.queue.front();
                from.queue.erase(from.queue.begin());
                bumpQueued(static_cast<size_t>(hi), -job.threads);
                --parkedJobs;
                if (!tryStart(lo, job)) {
                    pushQueue(static_cast<size_t>(lo), job);
                    ++S.enqueues_;
                }
                continue;
            }
            bool moved = false;
            for (size_t r = 0; r < from.running.size(); ++r) {
                RunningJob rj = from.running[r];
                if (usedThreads[static_cast<size_t>(lo)] +
                        rj.job.threads >
                    cap(lo))
                    continue;
                if (!improves(rj.job.threads))
                    continue;
                accrue(static_cast<size_t>(hi));
                accrue(static_cast<size_t>(lo));
                cancelCompletion(from.running[r]);
                bumpUsed(static_cast<size_t>(hi), -rj.job.threads);
                from.running.erase(from.running.begin() +
                                   static_cast<ptrdiff_t>(r));
                --runningCount;
                double destDuration = S.profiles_.seconds(
                    rj.job.wl, rj.job.cls, rj.job.threads,
                    S.machines_[static_cast<size_t>(lo)].spec.isa);
                double remSeconds =
                    remainingAt(rj) * destDuration +
                    S.migrationCost(rj.job, hi, lo);
                rj.durationHere = destDuration;
                rj.endTime = now + remSeconds;
                // The migration shipped the job's full live state: it
                // IS the new restart point. Leaving ckptRemaining at
                // the pre-migration snapshot -- a fraction of the
                // SOURCE machine's duration -- double-charges all
                // pre-migration progress as "lost" if this machine
                // later crashes.
                rj.ckptRemaining = remSeconds / destDuration;
                scheduleCompletion(rj, lo);
                to.running.push_back(rj);
                bumpUsed(static_cast<size_t>(lo), rj.job.threads);
                ++runningCount;
                ++migrations;
                ++S.migrationsStat_;
                OBS_TRACE_INSTANT(kJobTrackBase + rj.job.id, "sched",
                                  "migrate", now);
                // Capacity freed on hi after its admission pass ran:
                // visit it at the next timestamp, exactly when the
                // stepping driver's all-machine scan would.
                pendingWake.push_back(hi);
                moved = true;
                break;
            }
            if (!moved) {
                capped = false;
                break;
            }
        }
        if (capped)
            ++S.rebalanceCapStat_;
    }

    bool anyWork() const
    {
        return next < arrivals.size() || runningCount > 0 ||
               parkedJobs > 0;
    }

    /** Advance the clock to the chosen instant (clamped monotone). */
    void stepTo(double tNext)
    {
        XISA_CHECK(std::isfinite(tNext), "cluster sim stuck");
        if (tNext < now)
            tNext = now;
        now = tNext;
        ++S.eventsStat_;
    }

    /** Candidates shared by both drivers (cursor streams + gated
     *  epochs); the caller merges in its completion/reboot source. */
    double sharedCandidates() const
    {
        double tNext = std::numeric_limits<double>::infinity();
        if (next < arrivals.size())
            tNext = std::min(tNext, arrivals[next].arrival);
        if (nextIso < isoEvents.size())
            tNext = std::min(tNext, isoEvents[nextIso].time);
        if (isDynamic && runningCount > 0)
            tNext = std::min(tNext, nextTick);
        if (faulty) {
            if (nextCrash < crashes.size())
                tNext = std::min(tNext, crashes[nextCrash].time);
            if (runningCount > 0)
                tNext = std::min(tNext, nextCkpt);
        }
        return tNext;
    }

    /** XISA_AUDIT: bookkeeping invariants checked after every event. */
    void audit(const char *where)
    {
        if (!auditing)
            return;
        auto fail = [&](int jobId, size_t m, const char *what) {
            panic("cluster audit at %s (t=%.6f, job %d, machine %zu, "
                  "XISA_PERTURB=%llu): %s",
                  where, now, jobId, m,
                  static_cast<unsigned long long>(
                      check::SchedulePerturber::envSeed()),
                  what);
        };
        int running = 0;
        size_t parked = 0;
        int aliveTotal = 0;
        for (size_t m = 0; m < st.size(); ++m) {
            const MachineState &ms = st[m];
            int threads = 0;
            int queued = 0;
            for (const RunningJob &rj : ms.running) {
                threads += rj.job.threads;
                if (!(rj.durationHere > 0) ||
                    !std::isfinite(rj.durationHere))
                    fail(rj.job.id, m, "non-positive job duration");
                if (!std::isfinite(rj.endTime))
                    fail(rj.job.id, m, "completion time not finite");
                if (remainingAt(rj) > rj.ckptRemaining + 1e-9)
                    fail(rj.job.id, m,
                         "progress behind its own restart point "
                         "(lost-work double charge on crash)");
            }
            for (const Job &j : ms.queue)
                queued += j.threads;
            if (threads != usedThreads[m])
                fail(-1, m, "usedThreads out of sync with running set");
            if (queued != queuedThreads[m])
                fail(-1, m, "queuedThreads out of sync with queue");
            if (!std::isfinite(ms.energy) || ms.energy < 0)
                fail(-1, m, "energy accumulator corrupt");
            bool placeable = !ms.down && !isolated[m];
            if (placeable != static_cast<bool>(alive[m]))
                fail(-1, m,
                     "alive set out of sync with down/isolated state");
            // Load-index membership: every alive machine's bit sits
            // in exactly the bucket of its current load; dead
            // machines are not indexed at all (checked below via the
            // total bit count).
            if (alive[m]) {
                int v = usedThreads[m] + queuedThreads[m];
                if (v >= lidx.buckets ||
                    !(lidx.bucket(v)[m >> 6] & (1ull << (m & 63))))
                    fail(-1, m, "load index missing an alive machine");
                ++aliveTotal;
            }
            running += static_cast<int>(ms.running.size());
            parked += ms.queue.size() + ms.restartQueue.size();
        }
        if (running != runningCount)
            fail(-1, 0, "runningCount out of sync");
        if (parked != parkedJobs)
            fail(-1, 0, "parkedJobs out of sync");
        if (aliveTotal != lidx.aliveCnt)
            fail(-1, 0, "load index alive count out of sync");
        int indexed = 0;
        for (int v = 0; v < lidx.buckets; ++v) {
            int pc = 0;
            for (int i = 0; i < lidx.words; ++i)
                pc += __builtin_popcountll(lidx.bucket(v)[i]);
            if (pc != lidx.cnt[v])
                fail(-1, static_cast<size_t>(v),
                     "load index bucket count out of sync");
            if (pc > 0 && lidx.aliveCnt > 0 &&
                (v < lidx.minL || v > lidx.maxL))
                fail(-1, static_cast<size_t>(v),
                     "load index min/max cursor not tight");
            indexed += pc;
        }
        if (indexed != lidx.aliveCnt)
            fail(-1, 0, "load index holds a dead machine's bit");
    }

    /** The event-driven driver: next instant from the heap top plus
     *  the shared candidates; only machines with due events (or an
     *  explicit wake) are visited. */
    ClusterResult driveHeap()
    {
        while (anyWork()) {
            double tNext = sharedCandidates();
            if (!heap.empty())
                tNext = std::min(tNext, heap.top().time);
            stepTo(tNext);
            due.clear();
            while (!heap.empty() &&
                   heap.top().time <= now + kEps) {
                SchedEvent ev = heap.pop();
                if (ev.kind == EvKind::Reboot)
                    reboot(static_cast<size_t>(ev.machine));
                due.push_back(ev.machine);
            }
            due.insert(due.end(), pendingWake.begin(),
                       pendingWake.end());
            pendingWake.clear();
            std::sort(due.begin(), due.end());
            due.erase(std::unique(due.begin(), due.end()), due.end());
            for (int m : due)
                completeDue(m);
            checkpointPhase();
            isolationPhase();
            crashPhase();
            arrivalPhase();
            rebalancePhase();
            audit("event_loop");
        }
        return finish();
    }

    /** The stepping oracle (XISA_SLOW_SCHED=1): the pre-heap loop
     *  that rescans every machine for the next completion and visits
     *  all of them each step. Kept as the differential reference; any
     *  divergence from driveHeap is a heap/wake bug. */
    ClusterResult driveStepping()
    {
        while (anyWork()) {
            double tNext = sharedCandidates();
            for (const MachineState &ms : st)
                for (const RunningJob &rj : ms.running)
                    tNext = std::min(tNext, rj.endTime);
            for (size_t m = 0; m < st.size(); ++m)
                if (st[m].down)
                    tNext = std::min(tNext, downUntil[m]);
            stepTo(tNext);
            for (size_t m = 0; m < st.size(); ++m)
                if (st[m].down && now + kEps >= downUntil[m])
                    reboot(m);
            pendingWake.clear(); // the full scan below subsumes wakes
            for (size_t m = 0; m < st.size(); ++m)
                completeDue(static_cast<int>(m));
            checkpointPhase();
            isolationPhase();
            crashPhase();
            arrivalPhase();
            rebalancePhase();
            audit("step_loop");
        }
        return finish();
    }

    ClusterResult finish()
    {
        for (size_t m = 0; m < st.size(); ++m)
            accrue(m);
        audit("end_of_run");
        ClusterResult res;
        res.makespan = lastCompletion;
        for (const MachineState &ms : st) {
            res.energyJoules.push_back(ms.energy);
            res.totalEnergy += ms.energy;
        }
        res.edp = res.totalEnergy * res.makespan;
        res.migrations = migrations;
        res.avgTurnaround =
            completed ? turnaroundSum / static_cast<double>(completed)
                      : 0;
        res.crashes = crashCount;
        res.failovers = failovers;
        res.isolations = isoCount;
        res.lostWorkSeconds = lostWork;
        res.recoveredWorkSeconds = recoveredWork;
        res.restartCounts = std::move(restartCounts);
        return res;
    }
};

ClusterResult
ClusterSim::run(const std::vector<Job> &jobs, Policy policy)
{
    Run r(*this, jobs, policy);
    return slowSched_ ? r.driveStepping() : r.driveHeap();
}

} // namespace xisa
