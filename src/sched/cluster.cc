#include "sched/cluster.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "obs/trace.hh"
#include "util/logging.hh"

namespace xisa {

namespace {
/** Viewer track for one job's lifetime span (start -> completion). */
constexpr int kJobTrackBase = 1000;
} // namespace

const char *
policyName(Policy p)
{
    switch (p) {
      case Policy::StaticBalanced: return "static-balanced";
      case Policy::StaticUnbalanced: return "static-unbalanced";
      case Policy::DynamicBalanced: return "dynamic-balanced";
      case Policy::DynamicUnbalanced: return "dynamic-unbalanced";
    }
    return "?";
}

ClusterSim::ClusterSim(std::vector<Machine> machines,
                       const JobProfileTable &profiles, Config cfg)
    : machines_(std::move(machines)), profiles_(profiles), cfg_(cfg)
{
    if (machines_.empty())
        fatal("ClusterSim needs at least one machine");
    stats_.attach("sched.jobs_started", jobsStarted_);
    stats_.attach("sched.jobs_completed", jobsCompleted_);
    stats_.attach("sched.enqueues", enqueues_);
    stats_.attach("sched.migrations", migrationsStat_);
    stats_.attach("sched.rebalance_ticks", rebalanceTicks_);
}

int
ClusterSim::capacity(int m) const
{
    return machines_[static_cast<size_t>(m)].spec.cores;
}

double
ClusterSim::load(const MachineState &ms, int m) const
{
    // The paper's policies balance the NUMBER of threads between the
    // machines (weighted for the unbalanced variants), not per-core
    // utilization; capacity only constrains what can start.
    int queued = 0;
    for (const Job &j : ms.queue)
        queued += j.threads;
    double weight = machines_[static_cast<size_t>(m)].loadWeight;
    return (ms.usedThreads + queued) / weight;
}

bool
ClusterSim::tryStart(MachineState &ms, int m, const Job &job, double now)
{
    if (ms.usedThreads + job.threads > capacity(m))
        return false;
    RunningJob rj;
    rj.job = job;
    rj.durationHere =
        profiles_.seconds(job.wl, job.cls, job.threads,
                          machines_[static_cast<size_t>(m)].spec.isa);
    rj.startedAt = now;
    ms.running.push_back(rj);
    ms.usedThreads += job.threads;
    ++jobsStarted_;
    OBS_TRACE_BEGIN(kJobTrackBase + job.id, "sched",
                    obs::intern("job" + std::to_string(job.id)), now);
    return true;
}

int
ClusterSim::pickMachine(const std::vector<MachineState> &st,
                        Policy, int threads) const
{
    // Least weighted load after hypothetically placing the job.
    int best = 0;
    double bestLoad = std::numeric_limits<double>::infinity();
    for (size_t m = 0; m < machines_.size(); ++m) {
        int queued = 0;
        for (const Job &j : st[m].queue)
            queued += j.threads;
        double l = (st[m].usedThreads + queued + threads) /
                   machines_[m].loadWeight;
        if (l < bestLoad) {
            bestLoad = l;
            best = static_cast<int>(m);
        }
    }
    return best;
}

double
ClusterSim::migrationCost(const Job &job) const
{
    Interconnect net(cfg_.net);
    double bytes =
        cfg_.workingSetBytesPerScale * classScale(job.cls);
    return cfg_.migrationFixedSeconds +
           net.transferSeconds(static_cast<uint64_t>(bytes));
}

ClusterResult
ClusterSim::run(const std::vector<Job> &jobs, Policy policy)
{
    std::vector<Job> arrivals = jobs;
    std::stable_sort(arrivals.begin(), arrivals.end(),
                     [](const Job &a, const Job &b) {
                         return a.arrival < b.arrival;
                     });
    std::vector<MachineState> st(machines_.size());
    size_t next = 0;
    double now = 0;
    double nextTick = cfg_.rebalancePeriod;
    int migrations = 0;
    double turnaroundSum = 0;
    size_t completed = 0;
    double lastCompletion = 0;
    constexpr double kEps = 1e-9;

    auto anyWork = [&] {
        if (next < arrivals.size())
            return true;
        for (const MachineState &ms : st)
            if (!ms.running.empty() || !ms.queue.empty())
                return true;
        return false;
    };

    auto startFromQueue = [&](int m) {
        MachineState &ms = st[static_cast<size_t>(m)];
        for (size_t q = 0; q < ms.queue.size();) {
            if (tryStart(ms, m, ms.queue[q], now))
                ms.queue.erase(ms.queue.begin() +
                               static_cast<ptrdiff_t>(q));
            else
                ++q;
        }
    };

    while (anyWork()) {
        // Next event time.
        double tNext = std::numeric_limits<double>::infinity();
        if (next < arrivals.size())
            tNext = std::min(tNext, arrivals[next].arrival);
        for (const MachineState &ms : st)
            for (const RunningJob &rj : ms.running)
                tNext = std::min(tNext,
                                 now + rj.remainingFraction *
                                           rj.durationHere);
        bool anyRunning = false;
        for (const MachineState &ms : st)
            anyRunning |= !ms.running.empty();
        if (dynamic(policy) && anyRunning)
            tNext = std::min(tNext, nextTick);
        XISA_CHECK(std::isfinite(tNext), "cluster sim stuck");
        if (tNext < now)
            tNext = now;

        // Accrue energy over [now, tNext).
        double dt = tNext - now;
        for (size_t m = 0; m < st.size(); ++m) {
            const Machine &mach = machines_[m];
            double power;
            if (st[m].running.empty() && st[m].queue.empty()) {
                power = mach.spec.idleWatts * cfg_.sleepFraction *
                        mach.powerScale;
            } else {
                double util = std::min(
                    1.0, st[m].usedThreads /
                             static_cast<double>(
                                 capacity(static_cast<int>(m))));
                power = mach.spec.power(util, mach.powerScale);
            }
            st[m].energy += power * dt;
        }

        // Advance job progress.
        for (MachineState &ms : st)
            for (RunningJob &rj : ms.running)
                rj.remainingFraction -= dt / rj.durationHere;
        now = tNext;

        // Completions.
        for (size_t m = 0; m < st.size(); ++m) {
            MachineState &ms = st[m];
            for (size_t r = 0; r < ms.running.size();) {
                if (ms.running[r].remainingFraction <= kEps) {
                    turnaroundSum += now - ms.running[r].job.arrival;
                    ++completed;
                    ++jobsCompleted_;
                    OBS_TRACE_END(kJobTrackBase + ms.running[r].job.id,
                                  now);
                    lastCompletion = now;
                    ms.usedThreads -= ms.running[r].job.threads;
                    ms.running.erase(ms.running.begin() +
                                     static_cast<ptrdiff_t>(r));
                } else {
                    ++r;
                }
            }
            startFromQueue(static_cast<int>(m));
        }

        // Arrivals.
        while (next < arrivals.size() &&
               arrivals[next].arrival <= now + kEps) {
            const Job &job = arrivals[next++];
            int m = pickMachine(st, policy, job.threads);
            if (!tryStart(st[static_cast<size_t>(m)], m, job, now)) {
                st[static_cast<size_t>(m)].queue.push_back(job);
                ++enqueues_;
            }
        }

        // Rebalance tick (dynamic policies only).
        if (dynamic(policy) && now + kEps >= nextTick) {
            nextTick = now + cfg_.rebalancePeriod;
            ++rebalanceTicks_;
            for (int moves = 0; moves < 64; ++moves) {
                int hi = 0, lo = 0;
                for (size_t m = 1; m < st.size(); ++m) {
                    if (load(st[m], static_cast<int>(m)) >
                        load(st[static_cast<size_t>(hi)], hi))
                        hi = static_cast<int>(m);
                    if (load(st[m], static_cast<int>(m)) <
                        load(st[static_cast<size_t>(lo)], lo))
                        lo = static_cast<int>(m);
                }
                if (hi == lo)
                    break;
                MachineState &from = st[static_cast<size_t>(hi)];
                MachineState &to = st[static_cast<size_t>(lo)];
                double gap = load(from, hi) - load(to, lo);
                if (gap <= 1.0)
                    break;
                double wFrom =
                    machines_[static_cast<size_t>(hi)].loadWeight;
                double wTo =
                    machines_[static_cast<size_t>(lo)].loadWeight;
                // Only move a job if it strictly reduces the peak load
                // (otherwise the pair would oscillate forever).
                auto improves = [&](int threads) {
                    double newFrom = load(from, hi) - threads / wFrom;
                    double newTo = load(to, lo) + threads / wTo;
                    return std::max(newFrom, newTo) + 1e-9 <
                           std::max(load(from, hi), load(to, lo));
                };
                // Prefer moving a queued job (free); else migrate a
                // running one (charges migration overhead).
                if (!from.queue.empty() &&
                    improves(from.queue.front().threads)) {
                    Job job = from.queue.front();
                    from.queue.erase(from.queue.begin());
                    if (!tryStart(to, lo, job, now)) {
                        to.queue.push_back(job);
                        ++enqueues_;
                    }
                    continue;
                }
                bool moved = false;
                for (size_t r = 0; r < from.running.size(); ++r) {
                    RunningJob rj = from.running[r];
                    if (to.usedThreads + rj.job.threads > capacity(lo))
                        continue;
                    if (!improves(rj.job.threads))
                        continue;
                    from.usedThreads -= rj.job.threads;
                    from.running.erase(from.running.begin() +
                                       static_cast<ptrdiff_t>(r));
                    double destDuration = profiles_.seconds(
                        rj.job.wl, rj.job.cls, rj.job.threads,
                        machines_[static_cast<size_t>(lo)].spec.isa);
                    double remSeconds =
                        rj.remainingFraction * destDuration +
                        migrationCost(rj.job);
                    rj.durationHere = destDuration;
                    rj.remainingFraction = remSeconds / destDuration;
                    to.running.push_back(rj);
                    to.usedThreads += rj.job.threads;
                    ++migrations;
                    ++migrationsStat_;
                    OBS_TRACE_INSTANT(kJobTrackBase + rj.job.id, "sched",
                                      "migrate", now);
                    moved = true;
                    break;
                }
                if (!moved)
                    break;
            }
        }
    }

    ClusterResult res;
    res.makespan = lastCompletion;
    for (const MachineState &ms : st) {
        res.energyJoules.push_back(ms.energy);
        res.totalEnergy += ms.energy;
    }
    res.edp = res.totalEnergy * res.makespan;
    res.migrations = migrations;
    res.avgTurnaround =
        completed ? turnaroundSum / static_cast<double>(completed) : 0;
    return res;
}

} // namespace xisa
