#include "sched/cluster.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>

#include "check/audit.hh"
#include "check/perturb.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace xisa {

namespace {
/** Viewer track for one job's lifetime span (start -> completion). */
constexpr int kJobTrackBase = 1000;

/** XISA_PERTURB overlay for the cluster link, applied before net_ is
 *  constructed from the stored config. */
ClusterSim::Config
perturbedClusterConfig(ClusterSim::Config cfg)
{
    if (check::SchedulePerturber::enabled())
        cfg.net.faults = check::SchedulePerturber::perturbFaults(
            cfg.net.faults,
            check::SchedulePerturber::envSeed() ^ 0x636c7573ull);
    return cfg;
}
} // namespace

const char *
policyName(Policy p)
{
    switch (p) {
      case Policy::StaticBalanced: return "static-balanced";
      case Policy::StaticUnbalanced: return "static-unbalanced";
      case Policy::DynamicBalanced: return "dynamic-balanced";
      case Policy::DynamicUnbalanced: return "dynamic-unbalanced";
    }
    return "?";
}

ClusterSim::ClusterSim(std::vector<Machine> machines,
                       const JobProfileTable &profiles, Config cfg)
    : machines_(std::move(machines)), profiles_(profiles),
      cfg_(perturbedClusterConfig(std::move(cfg))), net_(cfg_.net)
{
    if (machines_.empty())
        fatal("ClusterSim needs at least one machine");
    for (const CrashEvent &ev : cfg_.crashes)
        if (ev.machine < 0 ||
            ev.machine >= static_cast<int>(machines_.size()))
            fatal("crash event names machine %d of %zu", ev.machine,
                  machines_.size());
    stats_.attach("sched.jobs_started", jobsStarted_);
    stats_.attach("sched.jobs_completed", jobsCompleted_);
    stats_.attach("sched.enqueues", enqueues_);
    stats_.attach("sched.migrations", migrationsStat_);
    stats_.attach("sched.rebalance_ticks", rebalanceTicks_);
    stats_.attach("xfault.crashes", crashesStat_);
    stats_.attach("xfault.failovers", failoversStat_);
    stats_.attach("xfault.restarts", restartsStat_);
    stats_.attach("xfault.checkpoints", checkpointsStat_);
    stats_.attach("xfault.lost_seconds", lostSecondsStat_);
    stats_.attach("xfault.recovered_seconds", recoveredSecondsStat_);
    net_.registerStats(stats_, "net");
}

void
ClusterSim::setCrashPlan(std::vector<CrashEvent> crashes)
{
    for (const CrashEvent &ev : crashes)
        if (ev.machine < 0 ||
            ev.machine >= static_cast<int>(machines_.size()))
            fatal("crash event names machine %d of %zu", ev.machine,
                  machines_.size());
    cfg_.crashes = std::move(crashes);
}

int
ClusterSim::capacity(int m) const
{
    return machines_[static_cast<size_t>(m)].spec.cores;
}

double
ClusterSim::load(const MachineState &ms, int m) const
{
    // The paper's policies balance the NUMBER of threads between the
    // machines (weighted for the unbalanced variants), not per-core
    // utilization; capacity only constrains what can start.
    int queued = 0;
    for (const Job &j : ms.queue)
        queued += j.threads;
    double weight = machines_[static_cast<size_t>(m)].loadWeight;
    return (ms.usedThreads + queued) / weight;
}

bool
ClusterSim::tryStart(MachineState &ms, int m, const Job &job, double now)
{
    if (ms.usedThreads + job.threads > capacity(m))
        return false;
    RunningJob rj;
    rj.job = job;
    rj.durationHere =
        profiles_.seconds(job.wl, job.cls, job.threads,
                          machines_[static_cast<size_t>(m)].spec.isa);
    rj.startedAt = now;
    ms.running.push_back(rj);
    ms.usedThreads += job.threads;
    ++jobsStarted_;
    OBS_TRACE_BEGIN(kJobTrackBase + job.id, "sched", jobSpanName(job.id),
                    now);
    return true;
}

const char *
ClusterSim::jobSpanName(int id)
{
    const char *&span = jobSpanNames_[id];
    if (!span)
        span = obs::intern("job" + std::to_string(id));
    return span;
}

int
ClusterSim::pickMachine(const std::vector<MachineState> &st,
                        Policy, int threads,
                        const std::vector<char> &alive) const
{
    // Least weighted load after hypothetically placing the job,
    // considering live machines only; -1 if every machine is down.
    int best = -1;
    double bestLoad = std::numeric_limits<double>::infinity();
    for (size_t m = 0; m < machines_.size(); ++m) {
        if (!alive[m])
            continue;
        int queued = 0;
        for (const Job &j : st[m].queue)
            queued += j.threads;
        double l = (st[m].usedThreads + queued + threads) /
                   machines_[m].loadWeight;
        if (l < bestLoad) {
            bestLoad = l;
            best = static_cast<int>(m);
        }
    }
    return best;
}

double
ClusterSim::migrationCost(const Job &job)
{
    double bytes =
        cfg_.workingSetBytesPerScale * classScale(job.cls);
    if (!net_.faulty())
        return cfg_.migrationFixedSeconds +
               net_.transferSeconds(static_cast<uint64_t>(bytes));
    // Lossy link: the working-set transfer pays real retries/backoff
    // from the seeded plan (seconds only; no core clock involved).
    auto sent = net_.reliableSend(static_cast<uint64_t>(bytes), 1.0);
    return cfg_.migrationFixedSeconds + sent.seconds;
}

void
ClusterSim::placeRestart(std::vector<MachineState> &st, int m,
                         RunningJob rj, double now)
{
    MachineState &ms = st[static_cast<size_t>(m)];
    if (ms.usedThreads + rj.job.threads > capacity(m)) {
        ms.restartQueue.push_back(std::move(rj));
        return;
    }
    double destDuration = profiles_.seconds(
        rj.job.wl, rj.job.cls, rj.job.threads,
        machines_[static_cast<size_t>(m)].spec.isa);
    // Remaining work is the checkpointed fraction re-expressed on the
    // destination's clock, plus the checkpoint-restore transfer.
    double remSeconds =
        rj.ckptRemaining * destDuration + migrationCost(rj.job);
    rj.durationHere = destDuration;
    rj.remainingFraction = remSeconds / destDuration;
    rj.ckptRemaining = rj.remainingFraction;
    rj.startedAt = now;
    ms.running.push_back(rj);
    ms.usedThreads += rj.job.threads;
    ++restartsStat_;
    OBS_TRACE_INSTANT(kJobTrackBase + rj.job.id, "sched", "restart",
                      now);
}

ClusterResult
ClusterSim::run(const std::vector<Job> &jobs, Policy policy)
{
    std::vector<Job> arrivals = jobs;
    std::stable_sort(arrivals.begin(), arrivals.end(),
                     [](const Job &a, const Job &b) {
                         return a.arrival < b.arrival;
                     });
    std::vector<MachineState> st(machines_.size());
    size_t next = 0;
    double now = 0;
    double nextTick = cfg_.rebalancePeriod;
    int migrations = 0;
    double turnaroundSum = 0;
    size_t completed = 0;
    double lastCompletion = 0;
    constexpr double kEps = 1e-9;

    // Fault machinery: dormant (and event-sequence-identical to the
    // fault-free simulator) unless crash events are configured.
    std::vector<CrashEvent> crashes = cfg_.crashes;
    std::stable_sort(crashes.begin(), crashes.end(),
                     [](const CrashEvent &a, const CrashEvent &b) {
                         return a.time < b.time;
                     });
    const bool faulty = !crashes.empty();
    // XISA_PERTURB: jitter crash instants around their configured
    // times, exploring crash-vs-checkpoint and crash-vs-migration
    // races the scripted plan would never hit.
    if (faulty && check::SchedulePerturber::enabled()) {
        check::SchedulePerturber p(
            check::SchedulePerturber::envSeed() ^ 0x6372617368ull);
        for (CrashEvent &ev : crashes)
            ev.time = std::max(
                0.0, ev.time + p.jitterSeconds(
                                   0.5 * cfg_.checkpointPeriod));
        std::stable_sort(crashes.begin(), crashes.end(),
                         [](const CrashEvent &a, const CrashEvent &b) {
                             return a.time < b.time;
                         });
    }
    size_t nextCrash = 0;
    double nextCkpt = cfg_.checkpointPeriod;
    std::vector<double> downUntil(machines_.size(), 0.0);
    std::vector<char> alive(machines_.size(), 1);
    int crashCount = 0;
    int failovers = 0;
    double lostWork = 0;
    double recoveredWork = 0;
    std::map<int, int> restartCounts;

    auto refreshAlive = [&] {
        for (size_t m = 0; m < alive.size(); ++m)
            alive[m] = !faulty || now + kEps >= downUntil[m];
    };

    // XISA_AUDIT: bookkeeping invariants checked after every event.
    const bool auditing = check::auditRequested();
    auto auditState = [&](const char *where) {
        if (!auditing)
            return;
        auto fail = [&](int jobId, size_t m, const char *what) {
            panic("cluster audit at %s (t=%.6f, job %d, machine %zu, "
                  "XISA_PERTURB=%llu): %s",
                  where, now, jobId, m,
                  static_cast<unsigned long long>(
                      check::SchedulePerturber::envSeed()),
                  what);
        };
        for (size_t m = 0; m < st.size(); ++m) {
            const MachineState &ms = st[m];
            int threads = 0;
            for (const RunningJob &rj : ms.running) {
                threads += rj.job.threads;
                if (!(rj.durationHere > 0) ||
                    !std::isfinite(rj.durationHere))
                    fail(rj.job.id, m, "non-positive job duration");
                if (!std::isfinite(rj.remainingFraction))
                    fail(rj.job.id, m, "remaining fraction not finite");
                if (rj.remainingFraction > rj.ckptRemaining + 1e-9)
                    fail(rj.job.id, m,
                         "progress behind its own restart point "
                         "(lost-work double charge on crash)");
            }
            if (threads != ms.usedThreads)
                fail(-1, m, "usedThreads out of sync with running set");
            if (!std::isfinite(ms.energy) || ms.energy < 0)
                fail(-1, m, "energy accumulator corrupt");
        }
    };

    auto anyWork = [&] {
        if (next < arrivals.size())
            return true;
        for (const MachineState &ms : st)
            if (!ms.running.empty() || !ms.queue.empty() ||
                !ms.restartQueue.empty())
                return true;
        return false;
    };

    auto startFromQueue = [&](int m) {
        MachineState &ms = st[static_cast<size_t>(m)];
        if (!alive[static_cast<size_t>(m)])
            return;
        // Checkpointed restarts first (they are in-flight work), then
        // fresh admissions.
        for (size_t q = 0; q < ms.restartQueue.size();) {
            if (ms.usedThreads + ms.restartQueue[q].job.threads <=
                capacity(m)) {
                RunningJob rj = std::move(ms.restartQueue[q]);
                ms.restartQueue.erase(ms.restartQueue.begin() +
                                      static_cast<ptrdiff_t>(q));
                placeRestart(st, m, std::move(rj), now);
            } else {
                ++q;
            }
        }
        for (size_t q = 0; q < ms.queue.size();) {
            if (tryStart(ms, m, ms.queue[q], now))
                ms.queue.erase(ms.queue.begin() +
                               static_cast<ptrdiff_t>(q));
            else
                ++q;
        }
    };

    while (anyWork()) {
        // Next event time.
        double tNext = std::numeric_limits<double>::infinity();
        if (next < arrivals.size())
            tNext = std::min(tNext, arrivals[next].arrival);
        for (const MachineState &ms : st)
            for (const RunningJob &rj : ms.running)
                tNext = std::min(tNext,
                                 now + rj.remainingFraction *
                                           rj.durationHere);
        bool anyRunning = false;
        for (const MachineState &ms : st)
            anyRunning |= !ms.running.empty();
        if (dynamic(policy) && anyRunning)
            tNext = std::min(tNext, nextTick);
        if (faulty) {
            if (nextCrash < crashes.size())
                tNext = std::min(tNext, crashes[nextCrash].time);
            for (size_t m = 0; m < st.size(); ++m)
                if (now + kEps < downUntil[m])
                    tNext = std::min(tNext, downUntil[m]);
            if (anyRunning)
                tNext = std::min(tNext, nextCkpt);
        }
        XISA_CHECK(std::isfinite(tNext), "cluster sim stuck");
        if (tNext < now)
            tNext = now;

        // Accrue energy over [now, tNext).
        double dt = tNext - now;
        for (size_t m = 0; m < st.size(); ++m) {
            const Machine &mach = machines_[m];
            double power;
            if (faulty && now + kEps < downUntil[m]) {
                power = 0; // crashed: drawing nothing, doing nothing
            } else if (st[m].running.empty() && st[m].queue.empty()) {
                power = mach.spec.idleWatts * cfg_.sleepFraction *
                        mach.powerScale;
            } else {
                double util = std::min(
                    1.0, st[m].usedThreads /
                             static_cast<double>(
                                 capacity(static_cast<int>(m))));
                power = mach.spec.power(util, mach.powerScale);
            }
            st[m].energy += power * dt;
        }

        // Advance job progress.
        for (MachineState &ms : st)
            for (RunningJob &rj : ms.running)
                rj.remainingFraction -= dt / rj.durationHere;
        now = tNext;
        refreshAlive();

        // Completions.
        for (size_t m = 0; m < st.size(); ++m) {
            MachineState &ms = st[m];
            for (size_t r = 0; r < ms.running.size();) {
                if (ms.running[r].remainingFraction <= kEps) {
                    turnaroundSum += now - ms.running[r].job.arrival;
                    ++completed;
                    ++jobsCompleted_;
                    OBS_TRACE_END(kJobTrackBase + ms.running[r].job.id,
                                  now);
                    lastCompletion = now;
                    ms.usedThreads -= ms.running[r].job.threads;
                    ms.running.erase(ms.running.begin() +
                                     static_cast<ptrdiff_t>(r));
                } else {
                    ++r;
                }
            }
            startFromQueue(static_cast<int>(m));
        }

        // Checkpoint tick: snapshot every running job's progress as
        // its restart target (only modeled when crashes are injected).
        if (faulty && now + kEps >= nextCkpt) {
            for (MachineState &ms : st)
                for (RunningJob &rj : ms.running)
                    rj.ckptRemaining = rj.remainingFraction;
            ++checkpointsStat_;
            while (nextCkpt <= now + kEps)
                nextCkpt += cfg_.checkpointPeriod;
        }

        // Machine crashes: the machine goes dark, its in-flight jobs
        // roll back to their last checkpoint and restart -- on another
        // live machine under the dynamic policies (failover), or on
        // the same machine once it reboots under the static ones. The
        // energy already spent on the discarded progress stays charged.
        while (faulty && nextCrash < crashes.size() &&
               crashes[nextCrash].time <= now + kEps) {
            const CrashEvent ev = crashes[nextCrash++];
            size_t cm = static_cast<size_t>(ev.machine);
            if (now + kEps < downUntil[cm])
                continue; // already down
            downUntil[cm] = ev.time + ev.downSeconds;
            refreshAlive();
            ++crashCount;
            ++crashesStat_;
            MachineState &ms = st[cm];
            std::vector<RunningJob> victims = std::move(ms.running);
            ms.running.clear();
            ms.usedThreads = 0;
            for (RunningJob &rj : victims) {
                double lost =
                    std::max(0.0, (rj.ckptRemaining -
                                   rj.remainingFraction) *
                                      rj.durationHere);
                lostWork += lost;
                lostSecondsStat_.add(lost);
                // What the checkpoint saved: everything finished before
                // the snapshot restarts as done, not redone.
                double recovered = std::max(
                    0.0, (1.0 - rj.ckptRemaining) * rj.durationHere);
                recoveredWork += recovered;
                recoveredSecondsStat_.add(recovered);
                rj.remainingFraction = rj.ckptRemaining;
                ++restartCounts[rj.job.id];
                int target = ev.machine;
                if (dynamic(policy)) {
                    int cand = pickMachine(st, policy, rj.job.threads,
                                           alive);
                    if (cand >= 0)
                        target = cand;
                }
                if (target != ev.machine) {
                    ++failovers;
                    ++failoversStat_;
                    OBS_TRACE_INSTANT(kJobTrackBase + rj.job.id,
                                      "sched", "failover", now);
                    placeRestart(st, target, rj, now);
                } else {
                    ms.restartQueue.push_back(rj);
                }
            }
            // Queued-but-unstarted jobs fail over too under the
            // dynamic policies; static placements wait for the reboot.
            if (dynamic(policy)) {
                std::vector<Job> parked = std::move(ms.queue);
                ms.queue.clear();
                for (Job &job : parked) {
                    int cand =
                        pickMachine(st, policy, job.threads, alive);
                    if (cand < 0) {
                        ms.queue.push_back(job);
                    } else if (!tryStart(st[static_cast<size_t>(cand)],
                                         cand, job, now)) {
                        st[static_cast<size_t>(cand)].queue.push_back(
                            job);
                        ++enqueues_;
                    }
                }
            }
        }

        // Arrivals.
        while (next < arrivals.size() &&
               arrivals[next].arrival <= now + kEps) {
            const Job &job = arrivals[next++];
            int m = pickMachine(st, policy, job.threads, alive);
            if (m < 0) {
                // Every machine is down: park on the first to reboot.
                size_t soonest = 0;
                for (size_t k = 1; k < downUntil.size(); ++k)
                    if (downUntil[k] < downUntil[soonest])
                        soonest = k;
                st[soonest].queue.push_back(job);
                ++enqueues_;
            } else if (!tryStart(st[static_cast<size_t>(m)], m, job,
                                 now)) {
                st[static_cast<size_t>(m)].queue.push_back(job);
                ++enqueues_;
            }
        }

        // Rebalance tick (dynamic policies only).
        if (dynamic(policy) && now + kEps >= nextTick) {
            nextTick = now + cfg_.rebalancePeriod;
            ++rebalanceTicks_;
            for (int moves = 0; moves < 64; ++moves) {
                // Down machines neither shed nor receive work.
                int hi = -1, lo = -1;
                for (size_t m = 0; m < st.size(); ++m) {
                    if (!alive[m])
                        continue;
                    if (hi < 0 ||
                        load(st[m], static_cast<int>(m)) >
                            load(st[static_cast<size_t>(hi)], hi))
                        hi = static_cast<int>(m);
                    if (lo < 0 ||
                        load(st[m], static_cast<int>(m)) <
                            load(st[static_cast<size_t>(lo)], lo))
                        lo = static_cast<int>(m);
                }
                if (hi < 0 || lo < 0 || hi == lo)
                    break;
                MachineState &from = st[static_cast<size_t>(hi)];
                MachineState &to = st[static_cast<size_t>(lo)];
                double gap = load(from, hi) - load(to, lo);
                if (gap <= 1.0)
                    break;
                double wFrom =
                    machines_[static_cast<size_t>(hi)].loadWeight;
                double wTo =
                    machines_[static_cast<size_t>(lo)].loadWeight;
                // Only move a job if it strictly reduces the peak load
                // (otherwise the pair would oscillate forever).
                auto improves = [&](int threads) {
                    double newFrom = load(from, hi) - threads / wFrom;
                    double newTo = load(to, lo) + threads / wTo;
                    return std::max(newFrom, newTo) + 1e-9 <
                           std::max(load(from, hi), load(to, lo));
                };
                // Prefer moving a queued job (free); else migrate a
                // running one (charges migration overhead).
                if (!from.queue.empty() &&
                    improves(from.queue.front().threads)) {
                    Job job = from.queue.front();
                    from.queue.erase(from.queue.begin());
                    if (!tryStart(to, lo, job, now)) {
                        to.queue.push_back(job);
                        ++enqueues_;
                    }
                    continue;
                }
                bool moved = false;
                for (size_t r = 0; r < from.running.size(); ++r) {
                    RunningJob rj = from.running[r];
                    if (to.usedThreads + rj.job.threads > capacity(lo))
                        continue;
                    if (!improves(rj.job.threads))
                        continue;
                    from.usedThreads -= rj.job.threads;
                    from.running.erase(from.running.begin() +
                                       static_cast<ptrdiff_t>(r));
                    double destDuration = profiles_.seconds(
                        rj.job.wl, rj.job.cls, rj.job.threads,
                        machines_[static_cast<size_t>(lo)].spec.isa);
                    double remSeconds =
                        rj.remainingFraction * destDuration +
                        migrationCost(rj.job);
                    rj.durationHere = destDuration;
                    rj.remainingFraction = remSeconds / destDuration;
                    // The migration shipped the job's full live state:
                    // it IS the new restart point. Leaving
                    // ckptRemaining at the pre-migration snapshot --
                    // a fraction of the SOURCE machine's duration --
                    // double-charges all pre-migration progress as
                    // "lost" if this machine later crashes.
                    rj.ckptRemaining = rj.remainingFraction;
                    to.running.push_back(rj);
                    to.usedThreads += rj.job.threads;
                    ++migrations;
                    ++migrationsStat_;
                    OBS_TRACE_INSTANT(kJobTrackBase + rj.job.id, "sched",
                                      "migrate", now);
                    moved = true;
                    break;
                }
                if (!moved)
                    break;
            }
        }
        auditState("event_loop");
    }
    auditState("end_of_run");

    ClusterResult res;
    res.makespan = lastCompletion;
    for (const MachineState &ms : st) {
        res.energyJoules.push_back(ms.energy);
        res.totalEnergy += ms.energy;
    }
    res.edp = res.totalEnergy * res.makespan;
    res.migrations = migrations;
    res.avgTurnaround =
        completed ? turnaroundSum / static_cast<double>(completed) : 0;
    res.crashes = crashCount;
    res.failovers = failovers;
    res.lostWorkSeconds = lostWork;
    res.recoveredWorkSeconds = recoveredWork;
    res.restartCounts = std::move(restartCounts);
    return res;
}

} // namespace xisa
