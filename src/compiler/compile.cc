#include "compiler/compile.hh"

#include <algorithm>

#include "compiler/backend.hh"
#include "compiler/liveness.hh"
#include "compiler/opt.hh"
#include "util/logging.hh"

namespace xisa {

namespace {

uint64_t
alignUp(uint64_t x, uint64_t a)
{
    return (x + a - 1) & ~(a - 1);
}

/**
 * The symbol-alignment engine. In aligned mode every user function gets
 * one address on both ISAs and is padded to the larger encoding; in
 * unaligned mode each ISA packs its own text naturally.
 */
void
placeFunctions(MultiIsaBinary &bin)
{
    const size_t nf = bin.ir.functions.size();
    for (int i = 0; i < kNumIsas; ++i)
        bin.funcAddr[i].assign(nf, 0);

    for (const IRFunction &f : bin.ir.functions) {
        if (f.isBuiltin()) {
            uint64_t addr = vm::kRuntimeBase + f.id * vm::kRuntimeStride;
            for (int i = 0; i < kNumIsas; ++i)
                bin.funcAddr[i][f.id] = addr;
        }
    }

    if (bin.alignedLayout) {
        uint64_t cur = vm::kTextBase;
        for (const IRFunction &f : bin.ir.functions) {
            if (f.isBuiltin())
                continue;
            cur = alignUp(cur, 16);
            for (int i = 0; i < kNumIsas; ++i)
                bin.funcAddr[i][f.id] = cur;
            uint64_t size = std::max(bin.image[0][f.id].codeBytes(),
                                     bin.image[1][f.id].codeBytes());
            cur += alignUp(size, 16);
        }
        bin.textEnd[0] = bin.textEnd[1] = cur;
    } else {
        for (int i = 0; i < kNumIsas; ++i) {
            uint64_t cur = vm::kTextBase;
            for (const IRFunction &f : bin.ir.functions) {
                if (f.isBuiltin())
                    continue;
                cur = alignUp(cur, 16);
                bin.funcAddr[i][f.id] = cur;
                cur += alignUp(bin.image[i][f.id].codeBytes(), 16);
            }
            bin.textEnd[i] = cur;
        }
    }
    for (int i = 0; i < kNumIsas; ++i)
        if (bin.textEnd[i] > vm::kRodataBase)
            fatal(".text overflowed into .rodata (%llu bytes)",
                  static_cast<unsigned long long>(bin.textEnd[i] -
                                                  vm::kTextBase));
}

/** Patch FuncAddr relocations now that function addresses exist. */
void
patchRelocations(MultiIsaBinary &bin)
{
    for (int i = 0; i < kNumIsas; ++i) {
        for (FuncImage &img : bin.image[i]) {
            for (MachInstr &in : img.code) {
                if (in.reloc != Reloc::FuncAddr)
                    continue;
                in.imm = static_cast<int64_t>(bin.funcAddr[i][in.target]);
                uint8_t newSize =
                    encodedSize(in, static_cast<IsaId>(i));
                XISA_CHECK(newSize == in.size,
                           "relocation changed encoding size");
                in.reloc = Reloc::None;
            }
        }
    }
}

} // namespace

MultiIsaBinary
compileModule(Module mod, const CompileOptions &opts)
{
    // Optimize first: the optimizer must not move/duplicate migration
    // points, and running it before insertion keeps block ids from the
    // profile valid.
    if (opts.optimize)
        optimizeModule(mod);
    if (opts.boundaryMigPoints)
        insertBoundaryMigPoints(mod);
    for (const MigPointSpec &spec : opts.loopMigPoints)
        insertMigPointAtBlock(mod, spec);
    assignCallSiteIds(mod);
    mod.verify();

    DataLayout dl = computeDataLayout(mod);

    MultiIsaBinary bin;
    bin.name = mod.name;
    bin.alignedLayout = opts.alignedLayout;
    bin.globalAddr = dl.globalAddr;
    bin.dataEnd = dl.dataEnd;
    bin.tlsOff = dl.tlsOff;
    bin.tlsSize = dl.tlsSize;
    bin.tlsInit = dl.tlsInit;

    const size_t nf = mod.functions.size();
    for (int i = 0; i < kNumIsas; ++i)
        bin.image[i].resize(nf);
    std::array<std::vector<std::vector<CallSiteInfo>>, kNumIsas> sites;
    for (int i = 0; i < kNumIsas; ++i)
        sites[i].resize(nf);

    for (const IRFunction &f : mod.functions) {
        if (f.isBuiltin())
            continue;
        LivenessInfo live = computeLiveness(f);
        for (int i = 0; i < kNumIsas; ++i) {
            BackendOutput out = compileFunction(mod, f.id,
                                                static_cast<IsaId>(i),
                                                live, dl);
            bin.image[i][f.id] = std::move(out.image);
            sites[i][f.id] = std::move(out.sites);
        }
    }

    bin.ir = std::move(mod);
    placeFunctions(bin);
    patchRelocations(bin);

    // Turn per-site instruction indices into resume virtual addresses.
    for (int i = 0; i < kNumIsas; ++i) {
        for (size_t fid = 0; fid < nf; ++fid) {
            for (CallSiteInfo &site : sites[i][fid]) {
                const FuncImage &img = bin.image[i][fid];
                uint32_t idx = static_cast<uint32_t>(site.retAddr);
                XISA_CHECK(idx < img.instrOff.size(),
                           "resume index out of range");
                site.retAddr =
                    bin.funcAddr[i][fid] + img.instrOff[idx];
                bin.callSite[i].emplace(site.id, std::move(site));
            }
        }
    }
    return bin;
}

} // namespace xisa
