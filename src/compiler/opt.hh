/**
 * @file
 * Machine-independent BIR optimizations -- the "standard compiler
 * optimizations" stage of the paper's Figure 2 pipeline, which runs
 * over the IR before the per-ISA backends so both ISAs lower the same
 * optimized program (keeping the cross-ISA metadata key space shared).
 *
 * Passes (all deliberately conservative for the non-SSA IR):
 *  - block-local constant folding and copy propagation: within a basic
 *    block, operands whose defining instruction is a still-valid
 *    ConstInt/ConstFloat/Copy are folded or forwarded; any
 *    redefinition invalidates the fact;
 *  - strength reduction: multiply/divide/remainder by powers of two
 *    become shifts/masks when the constant is known;
 *  - algebraic identities: x+0, x*1, x*0, x&0, x|0, x^0, x<<0;
 *  - dead code elimination: side-effect-free instructions whose results
 *    are never used anywhere in the function are removed, to a fixed
 *    point.
 */

#ifndef XISA_COMPILER_OPT_HH
#define XISA_COMPILER_OPT_HH

#include <cstdint>

#include "ir/ir.hh"

namespace xisa {

/** Statistics from one optimization run. */
struct OptStats {
    uint32_t allocasPromoted = 0;
    uint32_t constantsFolded = 0;
    uint32_t copiesPropagated = 0;
    uint32_t strengthReduced = 0;
    uint32_t identitiesSimplified = 0;
    uint32_t deadInstrsRemoved = 0;

    uint32_t
    total() const
    {
        return allocasPromoted + constantsFolded + copiesPropagated +
               strengthReduced + identitiesSimplified +
               deadInstrsRemoved;
    }
};

/**
 * mem2reg: promote 8-byte stack slots whose address never escapes
 * (used only as the direct base of offset-0 loads and stores of one
 * access type) to virtual registers. This is what moves MiniC's
 * C-style locals out of allocas and into registers -- and therefore
 * into the live-value stackmaps the migration runtime relocates.
 * Returns the number of slots promoted.
 */
uint32_t promoteAllocas(IRFunction &f);

/** Optimize one function in place. */
OptStats optimizeFunction(IRFunction &f);

/** Optimize every non-builtin function of the module in place. */
OptStats optimizeModule(Module &mod);

} // namespace xisa

#endif // XISA_COMPILER_OPT_HH
