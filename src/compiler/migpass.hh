/**
 * @file
 * Migration-point insertion (Section 5.2.1 of the paper).
 *
 * Migration points are inserted at equivalence points only. Function
 * boundaries are natural equivalence points, so insertBoundaryMigPoints()
 * places one at every function entry and before every return. Additional
 * points can be placed at loop-body heads to shorten the migration
 * response time; the profile-guided planner that chooses those blocks
 * (the paper's Valgrind-based tool) lives in core/migprofile.hh and
 * calls insertMigPointAtBlock().
 */

#ifndef XISA_COMPILER_MIGPASS_HH
#define XISA_COMPILER_MIGPASS_HH

#include <cstdint>
#include <vector>

#include "ir/ir.hh"

namespace xisa {

/** (function id, block id) pair naming a loop block to instrument. */
struct MigPointSpec {
    uint32_t funcId = 0;
    uint32_t blockId = 0;
    bool operator==(const MigPointSpec &o) const = default;
};

/**
 * Insert a MigPoint at the entry and before every Ret of each
 * non-builtin function. Returns the number of points inserted.
 * Idempotent: functions already carrying boundary points are skipped.
 */
uint32_t insertBoundaryMigPoints(Module &mod);

/** Insert a MigPoint at the head of the given block. */
void insertMigPointAtBlock(Module &mod, const MigPointSpec &spec);

/** Total static MigPoint count in the module. */
uint32_t countMigPoints(const Module &mod);

} // namespace xisa

#endif // XISA_COMPILER_MIGPASS_HH
