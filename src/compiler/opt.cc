#include "compiler/opt.hh"

#include <bit>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "compiler/liveness.hh" // forEachUse / instrDef
#include "util/logging.hh"

namespace xisa {

namespace {

/** What a block-local walk currently knows about a vreg. */
struct Fact {
    enum class Kind { None, ConstI, ConstF, CopyOf } kind = Kind::None;
    int64_t i = 0;
    double f = 0;
    ValueId src = kNoValue;
};

bool
isPure(IROp op)
{
    switch (op) {
      case IROp::ConstInt: case IROp::ConstFloat:
      case IROp::Add: case IROp::Sub: case IROp::Mul: case IROp::SDiv:
      case IROp::UDiv: case IROp::SRem: case IROp::URem:
      case IROp::And: case IROp::Or: case IROp::Xor: case IROp::Shl:
      case IROp::LShr: case IROp::AShr: case IROp::Neg:
      case IROp::FAdd: case IROp::FSub: case IROp::FMul:
      case IROp::FDiv: case IROp::FNeg:
      case IROp::ICmp: case IROp::FCmp:
      case IROp::SIToFP: case IROp::FPToSI: case IROp::Copy:
      case IROp::AllocaAddr: case IROp::GlobalAddr: case IROp::TlsAddr:
      case IROp::FuncAddr:
      case IROp::Load: case IROp::LoadIdx:
        return true;
      default:
        return false;
    }
}

bool
evalIntCond(Cond cond, int64_t a, int64_t b)
{
    uint64_t ua = static_cast<uint64_t>(a);
    uint64_t ub = static_cast<uint64_t>(b);
    switch (cond) {
      case Cond::EQ: return a == b;
      case Cond::NE: return a != b;
      case Cond::LT: return a < b;
      case Cond::LE: return a <= b;
      case Cond::GT: return a > b;
      case Cond::GE: return a >= b;
      case Cond::ULT: return ua < ub;
      case Cond::ULE: return ua <= ub;
      case Cond::UGT: return ua > ub;
      case Cond::UGE: return ua >= ub;
      case Cond::Always: return true;
    }
    return false;
}

/** Wrapping two's-complement arithmetic (matches both interpreters). */
int64_t
wrap(uint64_t v)
{
    return static_cast<int64_t>(v);
}

class FunctionOptimizer
{
  public:
    explicit FunctionOptimizer(IRFunction &f) : f_(f) {}

    OptStats
    run()
    {
        for (BasicBlock &bb : f_.blocks)
            optimizeBlock(bb);
        while (removeDeadCode())
            ;
        return stats_;
    }

  private:
    // --- Block-local constant/copy facts --------------------------------

    void
    kill(ValueId v)
    {
        facts_.erase(v);
        // Any CopyOf fact whose source was redefined is stale too.
        for (auto it = facts_.begin(); it != facts_.end();) {
            if (it->second.kind == Fact::Kind::CopyOf &&
                it->second.src == v)
                it = facts_.erase(it);
            else
                ++it;
        }
    }

    const Fact *
    factOf(ValueId v) const
    {
        auto it = facts_.find(v);
        return it == facts_.end() ? nullptr : &it->second;
    }

    bool
    constI(ValueId v, int64_t &out) const
    {
        const Fact *f = factOf(v);
        if (f && f->kind == Fact::Kind::ConstI) {
            out = f->i;
            return true;
        }
        return false;
    }

    bool
    constF(ValueId v, double &out) const
    {
        const Fact *f = factOf(v);
        if (f && f->kind == Fact::Kind::ConstF) {
            out = f->f;
            return true;
        }
        return false;
    }

    /** Replace uses that are plain copies of another vreg. */
    void
    propagateCopies(IRInstr &in)
    {
        auto fwd = [&](ValueId &v) {
            if (v == kNoValue)
                return;
            const Fact *f = factOf(v);
            if (f && f->kind == Fact::Kind::CopyOf) {
                v = f->src;
                ++stats_.copiesPropagated;
            }
        };
        switch (in.op) {
          case IROp::ConstInt: case IROp::ConstFloat:
          case IROp::AllocaAddr: case IROp::GlobalAddr:
          case IROp::TlsAddr: case IROp::FuncAddr: case IROp::Br:
          case IROp::MigPoint:
            return;
          default:
            break;
        }
        if (in.a != kNoValue)
            fwd(in.a);
        if (in.b != kNoValue && in.op != IROp::Ret)
            fwd(in.b);
        for (ValueId &arg : in.args)
            fwd(arg);
    }

    /** Turn `in` into `dst = const`. */
    void
    toConstInt(IRInstr &in, int64_t value)
    {
        Type t = f_.vregTypes[in.dst];
        in = IRInstr{};
        in.op = IROp::ConstInt;
        in.type = t;
        in.imm = value;
        ++stats_.constantsFolded;
    }

    void
    toConstFloat(IRInstr &in, double value)
    {
        in = IRInstr{};
        in.op = IROp::ConstFloat;
        in.type = Type::F64;
        in.fimm = value;
        ++stats_.constantsFolded;
    }

    /** Turn `in` into `dst = copy src` (only when the types agree --
     *  mixed Ptr/I64 operands stay as the original instruction). */
    void
    toCopy(IRInstr &in, ValueId src)
    {
        Type t = f_.vregTypes[in.dst];
        if (f_.vregTypes[src] != t)
            return;
        in = IRInstr{};
        in.op = IROp::Copy;
        in.type = t;
        in.a = src;
        ++stats_.identitiesSimplified;
    }

    /**
     * Fold / simplify one instruction. May replace it and may append a
     * helper ConstInt to `out` first (strength reduction needs a shift
     * amount). dst/type fields are fixed up by the caller.
     */
    void
    simplify(IRInstr &in, std::vector<IRInstr> &out)
    {
        int64_t ca = 0, cb = 0;
        double fa = 0, fb = 0;
        const bool aI = in.a != kNoValue && constI(in.a, ca);
        const bool bI = in.b != kNoValue && constI(in.b, cb);
        const bool aF = in.a != kNoValue && constF(in.a, fa);
        const bool bF = in.b != kNoValue && constF(in.b, fb);

        auto newConstReg = [&](int64_t value) {
            f_.vregTypes.push_back(Type::I64);
            ValueId v = static_cast<ValueId>(f_.vregTypes.size() - 1);
            IRInstr c;
            c.op = IROp::ConstInt;
            c.type = Type::I64;
            c.dst = v;
            c.imm = value;
            out.push_back(c);
            return v;
        };

        ValueId dst = in.dst;
        switch (in.op) {
          case IROp::Add:
            if (aI && bI) { toConstInt(in, wrap(ca + cb)); break; }
            if (bI && cb == 0) { toCopy(in, in.a); break; }
            if (aI && ca == 0) { toCopy(in, in.b); break; }
            break;
          case IROp::Sub:
            if (aI && bI) { toConstInt(in, wrap(ca - cb)); break; }
            if (bI && cb == 0) { toCopy(in, in.a); break; }
            break;
          case IROp::Mul:
            if (aI && bI) {
                toConstInt(in, wrap(static_cast<uint64_t>(ca) *
                                    static_cast<uint64_t>(cb)));
                break;
            }
            if (bI && cb == 1) { toCopy(in, in.a); break; }
            if (aI && ca == 1) { toCopy(in, in.b); break; }
            if ((bI && cb == 0) || (aI && ca == 0)) {
                toConstInt(in, 0);
                break;
            }
            if (bI && cb > 1 && std::has_single_bit(
                                    static_cast<uint64_t>(cb))) {
                ValueId sh = newConstReg(
                    std::countr_zero(static_cast<uint64_t>(cb)));
                in.op = IROp::Shl;
                in.b = sh;
                ++stats_.strengthReduced;
                break;
            }
            break;
          case IROp::UDiv:
            if (aI && bI && cb != 0) {
                toConstInt(in, wrap(static_cast<uint64_t>(ca) /
                                    static_cast<uint64_t>(cb)));
                break;
            }
            if (bI && cb > 1 && std::has_single_bit(
                                    static_cast<uint64_t>(cb))) {
                ValueId sh = newConstReg(
                    std::countr_zero(static_cast<uint64_t>(cb)));
                in.op = IROp::LShr;
                in.b = sh;
                ++stats_.strengthReduced;
                break;
            }
            break;
          case IROp::URem:
            if (aI && bI && cb != 0) {
                toConstInt(in, wrap(static_cast<uint64_t>(ca) %
                                    static_cast<uint64_t>(cb)));
                break;
            }
            if (bI && cb > 1 && std::has_single_bit(
                                    static_cast<uint64_t>(cb))) {
                ValueId mask = newConstReg(cb - 1);
                in.op = IROp::And;
                in.b = mask;
                ++stats_.strengthReduced;
                break;
            }
            break;
          case IROp::SDiv:
            if (aI && bI && cb != 0 &&
                !(ca == INT64_MIN && cb == -1)) {
                toConstInt(in, ca / cb);
            }
            break;
          case IROp::SRem:
            if (aI && bI && cb != 0 &&
                !(ca == INT64_MIN && cb == -1)) {
                toConstInt(in, ca % cb);
            }
            break;
          case IROp::And:
            if (aI && bI) { toConstInt(in, ca & cb); break; }
            if ((bI && cb == 0) || (aI && ca == 0)) {
                toConstInt(in, 0);
                break;
            }
            break;
          case IROp::Or:
            if (aI && bI) { toConstInt(in, ca | cb); break; }
            if (bI && cb == 0) { toCopy(in, in.a); break; }
            if (aI && ca == 0) { toCopy(in, in.b); break; }
            break;
          case IROp::Xor:
            if (aI && bI) { toConstInt(in, ca ^ cb); break; }
            if (bI && cb == 0) { toCopy(in, in.a); break; }
            if (aI && ca == 0) { toCopy(in, in.b); break; }
            break;
          case IROp::Shl:
            if (aI && bI) {
                toConstInt(in, wrap(static_cast<uint64_t>(ca)
                                    << (cb & 63)));
                break;
            }
            if (bI && cb == 0) { toCopy(in, in.a); break; }
            break;
          case IROp::LShr:
            if (aI && bI) {
                toConstInt(in, wrap(static_cast<uint64_t>(ca) >>
                                    (cb & 63)));
                break;
            }
            if (bI && cb == 0) { toCopy(in, in.a); break; }
            break;
          case IROp::AShr:
            if (aI && bI) { toConstInt(in, ca >> (cb & 63)); break; }
            if (bI && cb == 0) { toCopy(in, in.a); break; }
            break;
          case IROp::Neg:
            if (aI)
                toConstInt(in, wrap(-static_cast<uint64_t>(ca)));
            break;
          case IROp::ICmp:
            if (aI && bI)
                toConstInt(in, evalIntCond(in.cond, ca, cb) ? 1 : 0);
            break;
          case IROp::FCmp:
            if (aF && bF && !std::isnan(fa) && !std::isnan(fb) &&
                in.cond != Cond::ULT && in.cond != Cond::ULE &&
                in.cond != Cond::UGT && in.cond != Cond::UGE) {
                toConstInt(in, evalIntCond(in.cond,
                                           fa < fb ? -1 : (fa == fb ? 0
                                                                    : 1),
                                           0)
                                   ? 1
                                   : 0);
            }
            break;
          case IROp::FAdd:
            if (aF && bF) toConstFloat(in, fa + fb);
            break;
          case IROp::FSub:
            if (aF && bF) toConstFloat(in, fa - fb);
            break;
          case IROp::FMul:
            if (aF && bF) toConstFloat(in, fa * fb);
            break;
          case IROp::FDiv:
            if (aF && bF) toConstFloat(in, fa / fb);
            break;
          case IROp::FNeg:
            if (aF) toConstFloat(in, -fa);
            break;
          case IROp::SIToFP:
            if (aI) toConstFloat(in, static_cast<double>(ca));
            break;
          case IROp::FPToSI:
            if (aF && fa >= -9.2e18 && fa <= 9.2e18)
                toConstInt(in, static_cast<int64_t>(fa));
            break;
          default:
            break;
        }
        in.dst = dst;
    }

    void
    optimizeBlock(BasicBlock &bb)
    {
        facts_.clear();
        std::vector<IRInstr> out;
        out.reserve(bb.instrs.size());
        for (IRInstr in : bb.instrs) {
            propagateCopies(in);
            if (instrDef(in) != kNoValue)
                simplify(in, out);

            // Update facts.
            ValueId def = instrDef(in);
            if (def != kNoValue) {
                kill(def);
                Fact fact;
                if (in.op == IROp::ConstInt) {
                    fact.kind = Fact::Kind::ConstI;
                    fact.i = in.imm;
                    facts_[def] = fact;
                } else if (in.op == IROp::ConstFloat) {
                    fact.kind = Fact::Kind::ConstF;
                    fact.f = in.fimm;
                    facts_[def] = fact;
                } else if (in.op == IROp::Copy && in.a != def) {
                    fact.kind = Fact::Kind::CopyOf;
                    fact.src = in.a;
                    facts_[def] = fact;
                }
            }
            out.push_back(std::move(in));
        }
        bb.instrs = std::move(out);
    }

    // --- Dead code elimination -------------------------------------------

    bool
    removeDeadCode()
    {
        std::vector<uint32_t> uses(f_.vregTypes.size(), 0);
        for (const BasicBlock &bb : f_.blocks)
            for (const IRInstr &in : bb.instrs)
                forEachUse(in,
                           [&](ValueId v) { ++uses[v]; });
        bool changed = false;
        for (BasicBlock &bb : f_.blocks) {
            std::vector<IRInstr> kept;
            kept.reserve(bb.instrs.size());
            for (IRInstr &in : bb.instrs) {
                ValueId def = instrDef(in);
                bool dead = def != kNoValue && uses[def] == 0 &&
                            isPure(in.op);
                if (dead) {
                    ++stats_.deadInstrsRemoved;
                    changed = true;
                } else {
                    kept.push_back(std::move(in));
                }
            }
            bb.instrs = std::move(kept);
        }
        return changed;
    }

    IRFunction &f_;
    std::unordered_map<ValueId, Fact> facts_;
    OptStats stats_;
};

} // namespace

uint32_t
promoteAllocas(IRFunction &f)
{
    if (f.isBuiltin() || f.allocas.empty())
        return 0;
    const size_t numSlots = f.allocas.size();

    struct SlotInfo {
        bool ok = true;
        Type access = Type::Void;
    };
    std::vector<SlotInfo> slots(numSlots);
    for (size_t s = 0; s < numSlots; ++s)
        if (f.allocas[s].size != 8)
            slots[s].ok = false;

    // Map address vregs to their slot; a candidate address vreg must be
    // defined exactly once, by AllocaAddr.
    std::vector<uint32_t> defs(f.vregTypes.size(), 0);
    std::unordered_map<ValueId, uint32_t> addrSlot;
    for (const BasicBlock &bb : f.blocks) {
        for (const IRInstr &in : bb.instrs) {
            if (ValueId d = instrDef(in); d != kNoValue)
                ++defs[d];
            if (in.op == IROp::AllocaAddr)
                addrSlot[in.dst] = static_cast<uint32_t>(in.imm);
        }
    }
    for (auto it = addrSlot.begin(); it != addrSlot.end();) {
        if (defs[it->first] != 1) {
            slots[it->second].ok = false;
            it = addrSlot.erase(it);
        } else {
            ++it;
        }
    }

    auto mergeAccess = [&](uint32_t slot, Type t) {
        if (t != Type::I64 && t != Type::F64 && t != Type::Ptr) {
            slots[slot].ok = false;
            return;
        }
        if (slots[slot].access == Type::Void)
            slots[slot].access = t;
        else if (slots[slot].access != t)
            slots[slot].ok = false;
    };

    // Escape analysis: any use of an address vreg other than "direct
    // base of an offset-0 load/store" disqualifies its slot.
    for (const BasicBlock &bb : f.blocks) {
        for (const IRInstr &in : bb.instrs) {
            auto isAddr = [&](ValueId v) {
                return v != kNoValue && addrSlot.count(v) != 0;
            };
            if (in.op == IROp::Load && isAddr(in.a)) {
                uint32_t slot = addrSlot[in.a];
                if (in.imm != 0 ||
                    f.vregTypes[in.dst] != in.type)
                    slots[slot].ok = false;
                else
                    mergeAccess(slot, in.type);
                continue;
            }
            if (in.op == IROp::Store && isAddr(in.a)) {
                uint32_t slot = addrSlot[in.a];
                if (in.imm != 0 || in.b == in.a ||
                    f.vregTypes[in.b] != in.type)
                    slots[slot].ok = false;
                else
                    mergeAccess(slot, in.type);
                if (isAddr(in.b))
                    slots[addrSlot[in.b]].ok = false; // address escapes
                continue;
            }
            // Every other appearance of an address vreg is an escape.
            forEachUse(in, [&](ValueId v) {
                if (isAddr(v))
                    slots[addrSlot[v]].ok = false;
            });
        }
    }

    uint32_t promoted = 0;
    std::vector<ValueId> slotReg(numSlots, kNoValue);
    for (size_t s = 0; s < numSlots; ++s) {
        if (!slots[s].ok || slots[s].access == Type::Void)
            continue;
        f.vregTypes.push_back(slots[s].access);
        slotReg[s] = static_cast<ValueId>(f.vregTypes.size() - 1);
        ++promoted;
    }
    if (promoted == 0)
        return 0;

    // Rewrite accesses and drop the AllocaAddr / promoted slots.
    std::vector<uint32_t> newSlotIdx(numSlots, 0);
    std::vector<IRFunction::AllocaSlot> keptSlots;
    for (size_t s = 0; s < numSlots; ++s) {
        newSlotIdx[s] = static_cast<uint32_t>(keptSlots.size());
        if (slotReg[s] == kNoValue)
            keptSlots.push_back(f.allocas[s]);
    }
    for (BasicBlock &bb : f.blocks) {
        std::vector<IRInstr> out;
        out.reserve(bb.instrs.size());
        for (IRInstr &in : bb.instrs) {
            if (in.op == IROp::AllocaAddr) {
                uint32_t slot = static_cast<uint32_t>(in.imm);
                if (slotReg[slot] != kNoValue)
                    continue; // address vreg has no remaining uses
                in.imm = newSlotIdx[slot];
                out.push_back(std::move(in));
                continue;
            }
            auto promotedSlotOf = [&](ValueId v) -> ValueId {
                auto it = addrSlot.find(v);
                if (it == addrSlot.end())
                    return kNoValue;
                return slotReg[it->second];
            };
            if (in.op == IROp::Load) {
                ValueId pv = promotedSlotOf(in.a);
                if (pv != kNoValue) {
                    IRInstr copy;
                    copy.op = IROp::Copy;
                    copy.type = f.vregTypes[in.dst];
                    copy.dst = in.dst;
                    copy.a = pv;
                    out.push_back(copy);
                    continue;
                }
            }
            if (in.op == IROp::Store) {
                ValueId pv = promotedSlotOf(in.a);
                if (pv != kNoValue) {
                    IRInstr copy;
                    copy.op = IROp::Copy;
                    copy.type = f.vregTypes[pv];
                    copy.dst = pv;
                    copy.a = in.b;
                    out.push_back(copy);
                    continue;
                }
            }
            out.push_back(std::move(in));
        }
        bb.instrs = std::move(out);
    }
    f.allocas = std::move(keptSlots);
    return promoted;
}

OptStats
optimizeFunction(IRFunction &f)
{
    if (f.isBuiltin())
        return {};
    OptStats stats = FunctionOptimizer(f).run();
    stats.allocasPromoted = promoteAllocas(f);
    if (stats.allocasPromoted > 0) {
        // Clean up the copy chains the promotion introduced.
        OptStats more = FunctionOptimizer(f).run();
        stats.constantsFolded += more.constantsFolded;
        stats.copiesPropagated += more.copiesPropagated;
        stats.strengthReduced += more.strengthReduced;
        stats.identitiesSimplified += more.identitiesSimplified;
        stats.deadInstrsRemoved += more.deadInstrsRemoved;
    }
    return stats;
}

OptStats
optimizeModule(Module &mod)
{
    OptStats total;
    for (IRFunction &f : mod.functions) {
        OptStats s = optimizeFunction(f);
        total.constantsFolded += s.constantsFolded;
        total.copiesPropagated += s.copiesPropagated;
        total.strengthReduced += s.strengthReduced;
        total.identitiesSimplified += s.identitiesSimplified;
        total.deadInstrsRemoved += s.deadInstrsRemoved;
    }
    mod.verify();
    return total;
}

} // namespace xisa
