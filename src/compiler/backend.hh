/**
 * @file
 * Per-ISA code generation from BIR.
 *
 * Mirrors the paper's per-architecture LLVM backends (Section 5.2): the
 * same IR is lowered independently for Aether64 and Xeno64, with each
 * backend free to pick its own register assignment and frame layout --
 * "there are no limitations preventing the compiler from ... optimizing
 * the stack frame layout for each architecture" (Section 5.3). What must
 * agree across ISAs is only the metadata key space: BIR value ids and
 * call-site ids.
 *
 * Allocation model: every virtual register has a *home* -- a callee-saved
 * register (hot values that live across calls, by loop-depth-weighted
 * use count) or a frame slot. Caller-saved registers are used only as
 * intra-instruction temporaries, so no save/restore code is needed
 * around calls and every stackmap location is either a callee-saved
 * register or a frame slot, exactly the two cases the paper's stack
 * transformation runtime must handle.
 *
 * The two backends deliberately disagree on frame interior order
 * (Aether64 sorts allocas by alignment then declaration and spills by
 * ascending vreg; Xeno64 uses declaration order and descending vreg) so
 * that cross-ISA stack transformation is never an identity copy.
 */

#ifndef XISA_COMPILER_BACKEND_HH
#define XISA_COMPILER_BACKEND_HH

#include <cstdint>
#include <vector>

#include "binary/multibinary.hh"
#include "compiler/liveness.hh"
#include "ir/ir.hh"
#include "isa/isa.hh"

namespace xisa {

/** Addresses of data symbols, computed before code generation. */
struct DataLayout {
    std::vector<uint64_t> globalAddr; ///< by global id (0 for TLS vars)
    std::vector<uint64_t> tlsOff;     ///< by global id (TLS vars only)
    uint64_t tlsSize = 0;
    std::vector<uint8_t> tlsInit;
    uint64_t dataEnd = 0; ///< first address past .data/.bss
};

/** Lay out .rodata/.data/.bss/TLS; identical across ISAs. */
DataLayout computeDataLayout(const Module &mod);

/** Result of lowering one function for one ISA. */
struct BackendOutput {
    FuncImage image;
    /**
     * Call-site metadata. `retAddr` temporarily holds the machine
     * instruction *index* of the resume point; the layout engine
     * rewrites it to a virtual address once function addresses exist.
     */
    std::vector<CallSiteInfo> sites;
};

/** Lower `funcId` of `mod` to machine code for `isa`. */
BackendOutput compileFunction(const Module &mod, uint32_t funcId,
                              IsaId isa, const LivenessInfo &live,
                              const DataLayout &data);

} // namespace xisa

#endif // XISA_COMPILER_BACKEND_HH
