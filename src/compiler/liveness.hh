/**
 * @file
 * Call-site liveness analysis over BIR (the paper's Section 5.3 "analysis
 * pass ... run over the LLVM bitcode to collect live values at function
 * call sites").
 *
 * Classic backward dataflow on the function's virtual registers. The
 * result feeds two consumers: the stackmap emitter (which values must be
 * recorded at each call site) and the register allocator (which values
 * are live across calls and therefore profit from callee-saved homes).
 */

#ifndef XISA_COMPILER_LIVENESS_HH
#define XISA_COMPILER_LIVENESS_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "ir/ir.hh"

namespace xisa {

/** Result of liveness analysis for one function. */
struct LivenessInfo {
    /** Values live immediately after each call site (excluding the call
     *  result), keyed by call-site id. Sorted ascending. */
    std::unordered_map<uint32_t, std::vector<ValueId>> liveAtSite;
    /** Per-vreg: live across at least one call or migration point. */
    std::vector<bool> liveAcrossCall;
    /** Per-vreg static use count weighted by 10^loopDepth. */
    std::vector<uint64_t> useWeight;
};

/** Apply `fn` to every vreg the instruction uses. */
void forEachUse(const IRInstr &in, const std::function<void(ValueId)> &fn);

/** The vreg the instruction defines, or kNoValue. */
ValueId instrDef(const IRInstr &in);

/**
 * Compute liveness for `f`. Call-site ids must already be assigned
 * (assignCallSiteIds()); sites with id 0 are ignored.
 */
LivenessInfo computeLiveness(const IRFunction &f);

/**
 * Assign globally unique, cross-ISA-stable call-site ids to every Call,
 * CallInd, and MigPoint in the module. Returns the number of sites.
 */
uint32_t assignCallSiteIds(Module &mod);

} // namespace xisa

#endif // XISA_COMPILER_LIVENESS_HH
