#include "compiler/backend.hh"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "isa/abi.hh"
#include "util/logging.hh"

namespace xisa {

DataLayout
computeDataLayout(const Module &mod)
{
    DataLayout dl;
    dl.globalAddr.assign(mod.globals.size(), 0);
    dl.tlsOff.assign(mod.globals.size(), 0);
    uint64_t ro = vm::kRodataBase;
    uint64_t rw = vm::kDataBase;
    uint64_t tls = 0;
    auto alignUp = [](uint64_t x, uint64_t a) {
        return (x + a - 1) & ~(a - 1);
    };
    for (const GlobalVar &g : mod.globals) {
        if (g.isTls) {
            tls = alignUp(tls, g.align);
            dl.tlsOff[g.id] = tls;
            tls += g.size;
        } else if (g.isConst) {
            ro = alignUp(ro, g.align);
            dl.globalAddr[g.id] = ro;
            ro += g.size;
        } else {
            rw = alignUp(rw, g.align);
            dl.globalAddr[g.id] = rw;
            rw += g.size;
        }
    }
    dl.tlsSize = alignUp(tls, 16);
    dl.tlsInit.assign(dl.tlsSize, 0);
    for (const GlobalVar &g : mod.globals)
        if (g.isTls && !g.init.empty())
            std::copy(g.init.begin(), g.init.end(),
                      dl.tlsInit.begin() +
                          static_cast<ptrdiff_t>(dl.tlsOff[g.id]));
    dl.dataEnd = alignUp(rw, vm::kPageSize);
    if (ro >= vm::kDataBase)
        fatal(".rodata overflowed into .data (%llu bytes)",
              static_cast<unsigned long long>(ro - vm::kRodataBase));
    return dl;
}

namespace {

/** Placeholder immediate for FuncAddr relocations: any real code address
 *  is >= kRuntimeBase and < 2^31, i.e. the same encoding class. */
constexpr int64_t kFuncAddrPlaceholder =
    static_cast<int64_t>(vm::kTextBase);

class Backend
{
  public:
    Backend(const Module &mod, uint32_t funcId, IsaId isa,
            const LivenessInfo &live, const DataLayout &data)
        : mod_(mod), f_(mod.func(funcId)), isa_(isa),
          abi_(AbiInfo::of(isa)), live_(live), data_(data)
    {
        if (isa == IsaId::Aether64) {
            tmpI_[0] = 16; tmpI_[1] = 17; tmpI_[2] = 9;
            tmpF_[0] = 5; tmpF_[1] = 6; tmpF_[2] = 7;
        } else {
            tmpI_[0] = 10; tmpI_[1] = 11; tmpI_[2] = 0;
            tmpF_[0] = 13; tmpF_[1] = 14; tmpF_[2] = 15;
        }
    }

    BackendOutput
    run()
    {
        assignHomes();
        layoutFrame();
        emitPrologue();
        for (uint32_t b = 0; b < f_.blocks.size(); ++b) {
            out_.image.blockStart.push_back(
                static_cast<uint32_t>(code().size()));
            for (const IRInstr &in : f_.blocks[b].instrs)
                emitInstr(in);
        }
        uint32_t epilogue = static_cast<uint32_t>(code().size());
        emitEpilogue();
        // Resolve block-id branch targets to instruction indices.
        for (auto [idx, blockId] : blockFixups_) {
            code()[idx].target = blockId == kEpilogueId
                                     ? epilogue
                                     : out_.image.blockStart[blockId];
        }
        finalizeOffsets();
        out_.image.frame = frame_;
        return std::move(out_);
    }

  private:
    static constexpr uint32_t kEpilogueId = 0xfffffffeu;

    /** Where a vreg permanently lives. */
    struct Home {
        ValueLocation::Kind kind = ValueLocation::Kind::FrameSlot;
        uint8_t reg = 0;
        int32_t off = 0;
    };

    std::vector<MachInstr> &code() { return out_.image.code; }

    // --- Home assignment and frame layout -----------------------------

    void
    assignHomes()
    {
        const size_t nv = f_.vregTypes.size();
        home_.resize(nv);
        std::vector<size_t> order(nv);
        std::iota(order.begin(), order.end(), 0);
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                             return live_.useWeight[a] >
                                    live_.useWeight[b];
                         });
        std::vector<uint8_t> gprPool = abi_.calleeSavedGpr;
        std::vector<uint8_t> fprPool = abi_.calleeSavedFpr;
        std::vector<bool> inReg(nv, false);
        for (size_t v : order) {
            if (!live_.liveAcrossCall[v] || live_.useWeight[v] == 0)
                continue;
            if (f_.vregTypes[v] == Type::F64) {
                if (!fprPool.empty()) {
                    home_[v] = {ValueLocation::Kind::Fpr, fprPool.front(),
                                0};
                    fprPool.erase(fprPool.begin());
                    inReg[v] = true;
                }
            } else if (!gprPool.empty()) {
                home_[v] = {ValueLocation::Kind::Gpr, gprPool.front(), 0};
                gprPool.erase(gprPool.begin());
                inReg[v] = true;
            }
        }
        // Everything else gets a frame slot; the order the slots are
        // carved out differs per ISA (see file comment).
        spillOrder_.clear();
        for (size_t v = 0; v < nv; ++v)
            if (!inReg[v])
                spillOrder_.push_back(static_cast<ValueId>(v));
        if (isa_ == IsaId::Xeno64)
            std::reverse(spillOrder_.begin(), spillOrder_.end());
    }

    void
    layoutFrame()
    {
        int32_t off = 0;
        for (size_t v = 0; v < home_.size(); ++v) {
            if (home_[v].kind == ValueLocation::Kind::Gpr)
                usedCalleeGpr_.push_back(home_[v].reg);
            else if (home_[v].kind == ValueLocation::Kind::Fpr)
                usedCalleeFpr_.push_back(home_[v].reg);
        }
        std::sort(usedCalleeGpr_.begin(), usedCalleeGpr_.end());
        std::sort(usedCalleeFpr_.begin(), usedCalleeFpr_.end());
        for (uint8_t r : usedCalleeGpr_) {
            off -= 8;
            frame_.savedGpr.emplace_back(r, off);
        }
        for (uint8_t r : usedCalleeFpr_) {
            off -= 8;
            frame_.savedFpr.emplace_back(r, off);
        }

        // Allocas: declaration order on Xeno64; alignment-major on
        // Aether64.
        std::vector<uint32_t> aorder(f_.allocas.size());
        std::iota(aorder.begin(), aorder.end(), 0);
        if (isa_ == IsaId::Aether64) {
            std::stable_sort(aorder.begin(), aorder.end(),
                             [&](uint32_t a, uint32_t b) {
                                 return f_.allocas[a].align >
                                        f_.allocas[b].align;
                             });
        }
        frame_.allocaFpOff.assign(f_.allocas.size(), 0);
        for (uint32_t slot : aorder) {
            const auto &a = f_.allocas[slot];
            off -= static_cast<int32_t>(a.size);
            off &= ~static_cast<int32_t>(a.align - 1);
            frame_.allocaFpOff[slot] = off;
        }

        for (ValueId v : spillOrder_) {
            off -= 8;
            home_[v] = {ValueLocation::Kind::FrameSlot, 0, off};
        }

        // Outgoing stack-argument area.
        uint32_t maxStackArgs = 0;
        for (const BasicBlock &bb : f_.blocks) {
            for (const IRInstr &in : bb.instrs) {
                if (in.op != IROp::Call && in.op != IROp::CallInd)
                    continue;
                uint32_t ints = 0, fps = 0, stack = 0;
                for (ValueId arg : in.args) {
                    if (f_.vregTypes[arg] == Type::F64) {
                        if (fps++ >= abi_.fpArgRegs.size())
                            ++stack;
                    } else if (ints++ >= abi_.intArgRegs.size()) {
                        ++stack;
                    }
                }
                maxStackArgs = std::max(maxStackArgs, stack);
            }
        }
        frame_.outArgBytes = maxStackArgs * 8;
        uint32_t locals = static_cast<uint32_t>(-off);
        frame_.frameSize =
            (16 + locals + frame_.outArgBytes + 15) & ~15u;
    }

    // --- Emission helpers ----------------------------------------------

    MachInstr &
    emit(MachInstr in)
    {
        in.size = encodedSize(in, isa_);
        code().push_back(in);
        return code().back();
    }

    MachInstr &
    emitOp(MOp op, uint8_t rd = 0, uint8_t rn = 0, uint8_t rm = 0,
           int64_t imm = 0)
    {
        MachInstr in;
        in.op = op;
        in.rd = rd;
        in.rn = rn;
        in.rm = rm;
        in.imm = imm;
        return emit(in);
    }

    void
    emitBranchToBlock(MOp op, uint32_t blockId, Cond cond = Cond::Always)
    {
        MachInstr in;
        in.op = op;
        in.cond = cond;
        blockFixups_.emplace_back(code().size(), blockId);
        emit(in);
    }

    /** Materialize a 64-bit immediate into a GPR. */
    void
    movImm(uint8_t rd, int64_t imm)
    {
        emitOp(MOp::MovImm, rd, 0, 0, imm);
    }

    /** Read vreg `v` into a GPR; returns the register holding it. */
    uint8_t
    readGpr(ValueId v, uint8_t tmp)
    {
        const Home &h = home_[v];
        if (h.kind == ValueLocation::Kind::Gpr)
            return h.reg;
        XISA_CHECK(h.kind == ValueLocation::Kind::FrameSlot,
                   "integer vreg with FPR home");
        emitOp(MOp::Ldr, tmp, static_cast<uint8_t>(abi_.fpReg), 0, h.off);
        return tmp;
    }

    uint8_t
    readFpr(ValueId v, uint8_t tmp)
    {
        const Home &h = home_[v];
        if (h.kind == ValueLocation::Kind::Fpr)
            return h.reg;
        XISA_CHECK(h.kind == ValueLocation::Kind::FrameSlot,
                   "f64 vreg with GPR home");
        emitOp(MOp::FLdr, tmp, static_cast<uint8_t>(abi_.fpReg), 0,
               h.off);
        return tmp;
    }

    /** Register the result of an op should be computed into. */
    uint8_t
    destGpr(ValueId v, uint8_t tmp) const
    {
        const Home &h = home_[v];
        return h.kind == ValueLocation::Kind::Gpr ? h.reg : tmp;
    }

    uint8_t
    destFpr(ValueId v, uint8_t tmp) const
    {
        const Home &h = home_[v];
        return h.kind == ValueLocation::Kind::Fpr ? h.reg : tmp;
    }

    /** Commit a computed value to its home (no-op if already there). */
    void
    commitGpr(ValueId v, uint8_t reg)
    {
        const Home &h = home_[v];
        if (h.kind == ValueLocation::Kind::Gpr) {
            if (h.reg != reg)
                emitOp(MOp::MovReg, h.reg, reg);
            return;
        }
        emitOp(MOp::Str, reg, static_cast<uint8_t>(abi_.fpReg), 0, h.off);
    }

    void
    commitFpr(ValueId v, uint8_t reg)
    {
        const Home &h = home_[v];
        if (h.kind == ValueLocation::Kind::Fpr) {
            if (h.reg != reg)
                emitOp(MOp::FMovReg, h.reg, reg);
            return;
        }
        emitOp(MOp::FStr, reg, static_cast<uint8_t>(abi_.fpReg), 0,
               h.off);
    }

    // --- Prologue / epilogue --------------------------------------------

    void
    emitPrologue()
    {
        const uint8_t sp = static_cast<uint8_t>(abi_.spReg);
        const uint8_t fp = static_cast<uint8_t>(abi_.fpReg);
        if (isa_ == IsaId::Aether64) {
            const uint8_t lr = static_cast<uint8_t>(abi_.linkReg);
            emitOp(MOp::SubImm, sp, sp, 0, frame_.frameSize);
            emitOp(MOp::Str, fp, sp, 0, frame_.frameSize - 16);
            emitOp(MOp::Str, lr, sp, 0, frame_.frameSize - 8);
            emitOp(MOp::AddImm, fp, sp, 0, frame_.frameSize - 16);
        } else {
            emitOp(MOp::Push, fp);
            emitOp(MOp::MovReg, fp, sp);
            emitOp(MOp::SubImm, sp, sp, 0, frame_.frameSize - 16);
        }
        for (auto [reg, off] : frame_.savedGpr)
            emitOp(MOp::Str, reg, fp, 0, off);
        for (auto [reg, off] : frame_.savedFpr)
            emitOp(MOp::FStr, reg, fp, 0, off);

        // Incoming arguments to homes.
        uint32_t ints = 0, fps = 0, stack = 0;
        for (size_t p = 0; p < f_.paramTypes.size(); ++p) {
            ValueId v = static_cast<ValueId>(p);
            if (f_.paramTypes[p] == Type::F64) {
                if (fps < abi_.fpArgRegs.size()) {
                    commitFpr(v, abi_.fpArgRegs[fps++]);
                } else {
                    emitOp(MOp::FLdr, tmpF_[0], fp, 0,
                           kIncomingArgBase + 8 * stack++);
                    commitFpr(v, tmpF_[0]);
                }
            } else {
                if (ints < abi_.intArgRegs.size()) {
                    commitGpr(v, abi_.intArgRegs[ints++]);
                } else {
                    emitOp(MOp::Ldr, tmpI_[0], fp, 0,
                           kIncomingArgBase + 8 * stack++);
                    commitGpr(v, tmpI_[0]);
                }
            }
        }
    }

    void
    emitEpilogue()
    {
        const uint8_t sp = static_cast<uint8_t>(abi_.spReg);
        const uint8_t fp = static_cast<uint8_t>(abi_.fpReg);
        for (auto [reg, off] : frame_.savedGpr)
            emitOp(MOp::Ldr, reg, fp, 0, off);
        for (auto [reg, off] : frame_.savedFpr)
            emitOp(MOp::FLdr, reg, fp, 0, off);
        if (isa_ == IsaId::Aether64) {
            const uint8_t lr = static_cast<uint8_t>(abi_.linkReg);
            emitOp(MOp::Ldr, lr, fp, 0, FrameInfo::kRetAddrOff);
            emitOp(MOp::AddImm, sp, fp, 0, 16);
            emitOp(MOp::Ldr, fp, fp, 0, FrameInfo::kSavedFpOff);
        } else {
            emitOp(MOp::MovReg, sp, fp);
            emitOp(MOp::Pop, fp);
        }
        emitOp(MOp::Ret);
    }

    // --- Instruction selection --------------------------------------------

    void
    emitInstr(const IRInstr &in)
    {
        switch (in.op) {
          case IROp::ConstInt: {
            uint8_t rd = destGpr(in.dst, tmpI_[0]);
            movImm(rd, in.imm);
            commitGpr(in.dst, rd);
            break;
          }
          case IROp::ConstFloat: {
            uint8_t fd = destFpr(in.dst, tmpF_[0]);
            int64_t bits;
            std::memcpy(&bits, &in.fimm, 8);
            emitOp(MOp::FMovImm, fd, 0, 0, bits);
            commitFpr(in.dst, fd);
            break;
          }
          case IROp::Add: emitAlu(MOp::Add, in); break;
          case IROp::Sub: emitAlu(MOp::Sub, in); break;
          case IROp::Mul: emitAlu(MOp::Mul, in); break;
          case IROp::SDiv: emitAlu(MOp::SDiv, in); break;
          case IROp::UDiv: emitAlu(MOp::UDiv, in); break;
          case IROp::SRem: emitAlu(MOp::SRem, in); break;
          case IROp::URem: emitAlu(MOp::URem, in); break;
          case IROp::And: emitAlu(MOp::And, in); break;
          case IROp::Or: emitAlu(MOp::Orr, in); break;
          case IROp::Xor: emitAlu(MOp::Eor, in); break;
          case IROp::Shl: emitAlu(MOp::Lsl, in); break;
          case IROp::LShr: emitAlu(MOp::Lsr, in); break;
          case IROp::AShr: emitAlu(MOp::Asr, in); break;
          case IROp::Neg: {
            uint8_t ra = readGpr(in.a, tmpI_[0]);
            uint8_t rd = destGpr(in.dst, tmpI_[1]);
            emitOp(MOp::Neg, rd, ra);
            commitGpr(in.dst, rd);
            break;
          }
          case IROp::FAdd: emitFAlu(MOp::FAdd, in); break;
          case IROp::FSub: emitFAlu(MOp::FSub, in); break;
          case IROp::FMul: emitFAlu(MOp::FMul, in); break;
          case IROp::FDiv: emitFAlu(MOp::FDiv, in); break;
          case IROp::FNeg: {
            uint8_t fa = readFpr(in.a, tmpF_[0]);
            uint8_t fd = destFpr(in.dst, tmpF_[1]);
            emitOp(MOp::FNeg, fd, fa);
            commitFpr(in.dst, fd);
            break;
          }
          case IROp::ICmp: {
            uint8_t ra = readGpr(in.a, tmpI_[0]);
            uint8_t rb = readGpr(in.b, tmpI_[1]);
            emitOp(MOp::Cmp, 0, ra, rb);
            uint8_t rd = destGpr(in.dst, tmpI_[0]);
            MachInstr cs;
            cs.op = MOp::CSet;
            cs.rd = rd;
            cs.cond = in.cond;
            emit(cs);
            commitGpr(in.dst, rd);
            break;
          }
          case IROp::FCmp: {
            uint8_t fa = readFpr(in.a, tmpF_[0]);
            uint8_t fb = readFpr(in.b, tmpF_[1]);
            emitOp(MOp::FCmp, 0, fa, fb);
            uint8_t rd = destGpr(in.dst, tmpI_[0]);
            MachInstr cs;
            cs.op = MOp::CSet;
            cs.rd = rd;
            cs.cond = in.cond;
            emit(cs);
            commitGpr(in.dst, rd);
            break;
          }
          case IROp::SIToFP: {
            uint8_t ra = readGpr(in.a, tmpI_[0]);
            uint8_t fd = destFpr(in.dst, tmpF_[0]);
            emitOp(MOp::SCvtF, fd, ra);
            commitFpr(in.dst, fd);
            break;
          }
          case IROp::FPToSI: {
            uint8_t fa = readFpr(in.a, tmpF_[0]);
            uint8_t rd = destGpr(in.dst, tmpI_[0]);
            emitOp(MOp::FCvtS, rd, fa);
            commitGpr(in.dst, rd);
            break;
          }
          case IROp::Copy: {
            if (f_.vregTypes[in.dst] == Type::F64) {
                uint8_t fa = readFpr(in.a, tmpF_[0]);
                commitFpr(in.dst, fa);
            } else {
                uint8_t ra = readGpr(in.a, tmpI_[0]);
                commitGpr(in.dst, ra);
            }
            break;
          }
          case IROp::AllocaAddr: {
            uint8_t rd = destGpr(in.dst, tmpI_[0]);
            emitOp(MOp::AddImm, rd, static_cast<uint8_t>(abi_.fpReg), 0,
                   frame_.allocaFpOff[static_cast<size_t>(in.imm)]);
            commitGpr(in.dst, rd);
            break;
          }
          case IROp::GlobalAddr: {
            uint8_t rd = destGpr(in.dst, tmpI_[0]);
            movImm(rd, static_cast<int64_t>(
                           data_.globalAddr[in.globalId]));
            commitGpr(in.dst, rd);
            break;
          }
          case IROp::TlsAddr: {
            uint8_t rd = destGpr(in.dst, tmpI_[1]);
            emitOp(MOp::TlsBase, tmpI_[0]);
            emitOp(MOp::AddImm, rd, tmpI_[0], 0,
                   static_cast<int64_t>(data_.tlsOff[in.globalId]));
            commitGpr(in.dst, rd);
            break;
          }
          case IROp::FuncAddr: {
            uint8_t rd = destGpr(in.dst, tmpI_[0]);
            MachInstr mi;
            mi.op = MOp::MovImm;
            mi.rd = rd;
            mi.imm = kFuncAddrPlaceholder;
            mi.reloc = Reloc::FuncAddr;
            mi.target = in.funcId;
            emit(mi);
            commitGpr(in.dst, rd);
            break;
          }
          case IROp::Load: emitLoad(in); break;
          case IROp::Store: emitStore(in); break;
          case IROp::LoadIdx: emitLoadIdx(in); break;
          case IROp::StoreIdx: emitStoreIdx(in); break;
          case IROp::AtomicAdd: {
            uint8_t ra = readGpr(in.a, tmpI_[0]);
            uint8_t rb = readGpr(in.b, tmpI_[1]);
            uint8_t rd = destGpr(in.dst, tmpI_[2]);
            emitOp(MOp::AtomicAdd, rd, ra, rb);
            commitGpr(in.dst, rd);
            break;
          }
          case IROp::Br:
            emitBranchToBlock(MOp::B, in.target);
            break;
          case IROp::CondBr: {
            uint8_t ra = readGpr(in.a, tmpI_[0]);
            emitOp(MOp::CmpImm, 0, ra, 0, 0);
            emitBranchToBlock(MOp::BCond, in.target, Cond::NE);
            emitBranchToBlock(MOp::B, in.target2);
            break;
          }
          case IROp::Ret: {
            if (f_.retType != Type::Void) {
                if (f_.retType == Type::F64) {
                    uint8_t fa = readFpr(in.a, tmpF_[0]);
                    if (fa != abi_.fpRetReg)
                        emitOp(MOp::FMovReg,
                               static_cast<uint8_t>(abi_.fpRetReg), fa);
                } else {
                    uint8_t ra = readGpr(in.a, tmpI_[0]);
                    if (ra != abi_.retReg)
                        emitOp(MOp::MovReg,
                               static_cast<uint8_t>(abi_.retReg), ra);
                }
            }
            emitBranchToBlock(MOp::B, kEpilogueId);
            break;
          }
          case IROp::Call:
          case IROp::CallInd:
            emitCall(in);
            break;
          case IROp::MigPoint:
            emitMigPoint(in);
            break;
        }
    }

    void
    emitAlu(MOp op, const IRInstr &in)
    {
        uint8_t ra = readGpr(in.a, tmpI_[0]);
        uint8_t rb = readGpr(in.b, tmpI_[1]);
        uint8_t rd = destGpr(in.dst, tmpI_[2]);
        emitOp(op, rd, ra, rb);
        commitGpr(in.dst, rd);
    }

    void
    emitFAlu(MOp op, const IRInstr &in)
    {
        uint8_t fa = readFpr(in.a, tmpF_[0]);
        uint8_t fb = readFpr(in.b, tmpF_[1]);
        uint8_t fd = destFpr(in.dst, tmpF_[2]);
        emitOp(op, fd, fa, fb);
        commitFpr(in.dst, fd);
    }

    void
    emitLoad(const IRInstr &in)
    {
        uint8_t ra = readGpr(in.a, tmpI_[0]);
        if (in.type == Type::F64) {
            uint8_t fd = destFpr(in.dst, tmpF_[0]);
            emitOp(MOp::FLdr, fd, ra, 0, in.imm);
            commitFpr(in.dst, fd);
            return;
        }
        uint8_t rd = destGpr(in.dst, tmpI_[1]);
        MOp op = in.type == Type::I8 ? MOp::LdrB
               : in.type == Type::I32 ? MOp::LdrS32
                                      : MOp::Ldr;
        emitOp(op, rd, ra, 0, in.imm);
        commitGpr(in.dst, rd);
    }

    void
    emitStore(const IRInstr &in)
    {
        uint8_t ra = readGpr(in.a, tmpI_[0]);
        if (in.type == Type::F64) {
            uint8_t fb = readFpr(in.b, tmpF_[0]);
            emitOp(MOp::FStr, fb, ra, 0, in.imm);
            return;
        }
        uint8_t rb = readGpr(in.b, tmpI_[1]);
        MOp op = in.type == Type::I8 ? MOp::StrB
               : in.type == Type::I32 ? MOp::Str32
                                      : MOp::Str;
        emitOp(op, rb, ra, 0, in.imm);
    }

    void
    emitLoadIdx(const IRInstr &in)
    {
        uint8_t ra = readGpr(in.a, tmpI_[0]);
        uint8_t rb = readGpr(in.b, tmpI_[1]);
        if (in.type == Type::F64) {
            uint8_t fd = destFpr(in.dst, tmpF_[0]);
            emitOp(MOp::FLdrIdx, fd, ra, rb, in.imm);
            commitFpr(in.dst, fd);
            return;
        }
        uint8_t rd = destGpr(in.dst, tmpI_[2]);
        MOp op = in.type == Type::I8 ? MOp::LdrBIdx
               : in.type == Type::I32 ? MOp::Ldr32Idx
                                      : MOp::LdrIdx;
        emitOp(op, rd, ra, rb, in.imm);
        if (in.type == Type::I32) {
            // Ldr32Idx zero-extends; IR semantics sign-extend I32 loads.
            emitOp(MOp::LslImm, rd, rd, 0, 32);
            emitOp(MOp::AsrImm, rd, rd, 0, 32);
        }
        commitGpr(in.dst, rd);
    }

    void
    emitStoreIdx(const IRInstr &in)
    {
        uint8_t ra = readGpr(in.a, tmpI_[0]);
        uint8_t rb = readGpr(in.b, tmpI_[1]);
        if (in.type == Type::F64) {
            uint8_t fv = readFpr(in.args[0], tmpF_[0]);
            emitOp(MOp::FStrIdx, fv, ra, rb, in.imm);
            return;
        }
        uint8_t rv = readGpr(in.args[0], tmpI_[2]);
        MOp op = in.type == Type::I8 ? MOp::StrBIdx
               : in.type == Type::I32 ? MOp::Str32Idx
                                      : MOp::StrIdx;
        emitOp(op, rv, ra, rb, in.imm);
    }

    void
    emitCall(const IRInstr &in)
    {
        const uint8_t sp = static_cast<uint8_t>(abi_.spReg);
        // Classify arguments.
        uint32_t ints = 0, fps = 0, stack = 0;
        struct ArgPlace {
            ValueId v;
            bool isFp;
            int reg;   // argument register, or -1 for stack
            int slot;  // outgoing stack slot index
        };
        std::vector<ArgPlace> places;
        for (ValueId arg : in.args) {
            bool isFp = f_.vregTypes[arg] == Type::F64;
            ArgPlace p{arg, isFp, -1, -1};
            if (isFp) {
                if (fps < abi_.fpArgRegs.size())
                    p.reg = abi_.fpArgRegs[fps++];
                else
                    p.slot = static_cast<int>(stack++);
            } else {
                if (ints < abi_.intArgRegs.size())
                    p.reg = abi_.intArgRegs[ints++];
                else
                    p.slot = static_cast<int>(stack++);
            }
            places.push_back(p);
        }
        // Stack arguments first (they use temporaries), then register
        // arguments (straight from homes, clobbering nothing live).
        for (const ArgPlace &p : places) {
            if (p.slot < 0)
                continue;
            if (p.isFp) {
                uint8_t fv = readFpr(p.v, tmpF_[0]);
                emitOp(MOp::FStr, fv, sp, 0, 8 * p.slot);
            } else {
                uint8_t rv = readGpr(p.v, tmpI_[0]);
                emitOp(MOp::Str, rv, sp, 0, 8 * p.slot);
            }
        }
        for (const ArgPlace &p : places) {
            if (p.reg < 0)
                continue;
            if (p.isFp) {
                uint8_t fv = readFpr(p.v, static_cast<uint8_t>(p.reg));
                if (fv != p.reg)
                    emitOp(MOp::FMovReg, static_cast<uint8_t>(p.reg), fv);
            } else {
                uint8_t rv = readGpr(p.v, static_cast<uint8_t>(p.reg));
                if (rv != p.reg)
                    emitOp(MOp::MovReg, static_cast<uint8_t>(p.reg), rv);
            }
        }
        // The call itself.
        if (in.op == IROp::Call) {
            MachInstr bl;
            bl.op = MOp::Bl;
            bl.target = in.funcId;
            bl.callSiteId = in.callSiteId;
            emit(bl);
        } else {
            uint8_t rt = readGpr(in.a, tmpI_[0]);
            MachInstr blr;
            blr.op = MOp::Blr;
            blr.rn = rt;
            blr.callSiteId = in.callSiteId;
            emit(blr);
        }
        recordSite(in, /*isMigPoint=*/false);
        // Result.
        if (in.dst != kNoValue) {
            if (in.type == Type::F64)
                commitFpr(in.dst, static_cast<uint8_t>(abi_.fpRetReg));
            else
                commitGpr(in.dst, static_cast<uint8_t>(abi_.retReg));
        }
    }

    void
    emitMigPoint(const IRInstr &in)
    {
        out_.image.migChecks.push_back(
            static_cast<uint32_t>(code().size()));
        // The check's first instruction carries the site id so the
        // interpreter can report every migration *opportunity* (taken
        // or not) to the gap profiler.
        MachInstr flagAddr;
        flagAddr.op = MOp::MovImm;
        flagAddr.rd = tmpI_[0];
        flagAddr.imm = static_cast<int64_t>(vm::kVdsoBase);
        flagAddr.callSiteId = in.callSiteId;
        emit(flagAddr);
        emitOp(MOp::Ldr, tmpI_[0], tmpI_[0], 0, 0);
        emitOp(MOp::CmpImm, 0, tmpI_[0], 0, 0);
        MachInstr skip;
        skip.op = MOp::BCond;
        skip.cond = Cond::EQ;
        size_t skipIdx = code().size();
        emit(skip);
        MachInstr bl;
        bl.op = MOp::Bl;
        bl.target = kMigrateTarget;
        bl.callSiteId = in.callSiteId;
        emit(bl);
        code()[skipIdx].target = static_cast<uint32_t>(code().size());
        recordSite(in, /*isMigPoint=*/true);
    }

    void
    recordSite(const IRInstr &in, bool isMigPoint)
    {
        CallSiteInfo site;
        site.id = in.callSiteId;
        site.funcId = f_.id;
        site.retAddr = code().size(); // instruction index; layout fixes
        site.isMigrationPoint = isMigPoint;
        auto it = live_.liveAtSite.find(in.callSiteId);
        XISA_CHECK(it != live_.liveAtSite.end(),
                   "call site without liveness record");
        for (ValueId v : it->second) {
            LiveValue lv;
            lv.irValue = v;
            lv.type = f_.vregTypes[v];
            lv.loc.kind = home_[v].kind;
            lv.loc.reg = home_[v].reg;
            lv.loc.fpOff = home_[v].off;
            site.live.push_back(lv);
        }
        out_.sites.push_back(std::move(site));
    }

    void
    finalizeOffsets()
    {
        auto &off = out_.image.instrOff;
        off.clear();
        uint32_t cur = 0;
        for (const MachInstr &in : code()) {
            off.push_back(cur);
            cur += in.size;
        }
        off.push_back(cur);
    }

    const Module &mod_;
    const IRFunction &f_;
    IsaId isa_;
    const AbiInfo &abi_;
    const LivenessInfo &live_;
    const DataLayout &data_;

    std::vector<Home> home_;
    std::vector<ValueId> spillOrder_;
    std::vector<uint8_t> usedCalleeGpr_;
    std::vector<uint8_t> usedCalleeFpr_;
    FrameInfo frame_;
    BackendOutput out_;
    std::vector<std::pair<size_t, uint32_t>> blockFixups_;
    uint8_t tmpI_[3];
    uint8_t tmpF_[3];
};

} // namespace

BackendOutput
compileFunction(const Module &mod, uint32_t funcId, IsaId isa,
                const LivenessInfo &live, const DataLayout &data)
{
    const IRFunction &f = mod.func(funcId);
    if (f.isBuiltin())
        panic("compileFunction: '%s' is a builtin", f.name.c_str());
    return Backend(mod, funcId, isa, live, data).run();
}

} // namespace xisa
