#include "compiler/migpass.hh"

#include "util/logging.hh"

namespace xisa {

uint32_t
insertBoundaryMigPoints(Module &mod)
{
    uint32_t inserted = 0;
    for (IRFunction &f : mod.functions) {
        if (f.isBuiltin())
            continue;
        if (!f.blocks.empty() && !f.blocks[0].instrs.empty() &&
            f.blocks[0].instrs.front().op == IROp::MigPoint)
            continue; // already instrumented
        IRInstr mp;
        mp.op = IROp::MigPoint;
        f.blocks[0].instrs.insert(f.blocks[0].instrs.begin(), mp);
        ++inserted;
        for (BasicBlock &bb : f.blocks) {
            if (bb.instrs.back().op == IROp::Ret) {
                bb.instrs.insert(bb.instrs.end() - 1, mp);
                ++inserted;
            }
        }
    }
    return inserted;
}

void
insertMigPointAtBlock(Module &mod, const MigPointSpec &spec)
{
    IRFunction &f = mod.func(spec.funcId);
    if (f.isBuiltin())
        fatal("cannot instrument builtin '%s'", f.name.c_str());
    if (spec.blockId >= f.blocks.size())
        fatal("insertMigPointAtBlock: block %u out of range in %s",
              spec.blockId, f.name.c_str());
    IRInstr mp;
    mp.op = IROp::MigPoint;
    BasicBlock &bb = f.blocks[spec.blockId];
    bb.instrs.insert(bb.instrs.begin(), mp);
}

uint32_t
countMigPoints(const Module &mod)
{
    uint32_t n = 0;
    for (const IRFunction &f : mod.functions)
        for (const BasicBlock &bb : f.blocks)
            for (const IRInstr &in : bb.instrs)
                n += in.op == IROp::MigPoint;
    return n;
}

} // namespace xisa
