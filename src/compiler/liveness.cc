#include "compiler/liveness.hh"

#include <algorithm>
#include <functional>

#include "util/logging.hh"

namespace xisa {

void
forEachUse(const IRInstr &in, const std::function<void(ValueId)> &fn)
{
    switch (in.op) {
      case IROp::ConstInt: case IROp::ConstFloat: case IROp::AllocaAddr:
      case IROp::GlobalAddr: case IROp::TlsAddr: case IROp::FuncAddr:
      case IROp::Br: case IROp::MigPoint:
        break;
      case IROp::Neg: case IROp::FNeg: case IROp::SIToFP:
      case IROp::FPToSI: case IROp::Copy: case IROp::Load:
        fn(in.a);
        break;
      case IROp::CondBr:
        fn(in.a);
        break;
      case IROp::Ret:
        if (in.a != kNoValue)
            fn(in.a);
        break;
      case IROp::Call:
        for (ValueId v : in.args)
            fn(v);
        break;
      case IROp::CallInd:
        fn(in.a);
        for (ValueId v : in.args)
            fn(v);
        break;
      case IROp::StoreIdx:
        fn(in.a);
        fn(in.b);
        fn(in.args[0]);
        break;
      default:
        // All two-operand forms (ALU, compares, Store, LoadIdx,
        // AtomicAdd).
        if (in.a != kNoValue)
            fn(in.a);
        if (in.b != kNoValue)
            fn(in.b);
        break;
    }
}

ValueId
instrDef(const IRInstr &in)
{
    switch (in.op) {
      case IROp::Store: case IROp::StoreIdx: case IROp::Br:
      case IROp::CondBr: case IROp::Ret: case IROp::MigPoint:
        return kNoValue;
      default:
        return in.dst;
    }
}

uint32_t
assignCallSiteIds(Module &mod)
{
    uint32_t next = 1;
    for (IRFunction &f : mod.functions) {
        for (BasicBlock &bb : f.blocks) {
            for (IRInstr &in : bb.instrs) {
                if (in.op == IROp::Call || in.op == IROp::CallInd ||
                    in.op == IROp::MigPoint)
                    in.callSiteId = next++;
            }
        }
    }
    return next - 1;
}

LivenessInfo
computeLiveness(const IRFunction &f)
{
    const size_t nv = f.vregTypes.size();
    const size_t nb = f.blocks.size();
    LivenessInfo info;
    info.liveAcrossCall.assign(nv, false);
    info.useWeight.assign(nv, 0);

    // Use weights for the allocator's hotness heuristic.
    for (const BasicBlock &bb : f.blocks) {
        uint64_t w = 1;
        for (int d = 0; d < std::min(bb.loopDepth, 6); ++d)
            w *= 10;
        for (const IRInstr &in : bb.instrs) {
            forEachUse(in, [&](ValueId v) { info.useWeight[v] += w; });
            if (ValueId d = instrDef(in); d != kNoValue)
                info.useWeight[d] += w;
        }
    }

    // Backward dataflow to a fixed point. Sets are plain bool vectors;
    // functions here are small enough that this is fast.
    std::vector<std::vector<bool>> liveIn(nb), liveOut(nb);
    for (size_t b = 0; b < nb; ++b) {
        liveIn[b].assign(nv, false);
        liveOut[b].assign(nv, false);
    }

    auto successors = [&](const BasicBlock &bb) {
        std::vector<uint32_t> succ;
        const IRInstr &term = bb.instrs.back();
        if (term.op == IROp::Br) {
            succ.push_back(term.target);
        } else if (term.op == IROp::CondBr) {
            succ.push_back(term.target);
            succ.push_back(term.target2);
        }
        return succ;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t b = nb; b-- > 0;) {
            const BasicBlock &bb = f.blocks[b];
            std::vector<bool> out(nv, false);
            for (uint32_t s : successors(bb))
                for (size_t v = 0; v < nv; ++v)
                    if (liveIn[s][v])
                        out[v] = true;
            std::vector<bool> live = out;
            for (size_t i = bb.instrs.size(); i-- > 0;) {
                const IRInstr &in = bb.instrs[i];
                if (ValueId d = instrDef(in); d != kNoValue)
                    live[d] = false;
                forEachUse(in, [&](ValueId v) { live[v] = true; });
            }
            if (out != liveOut[b] || live != liveIn[b]) {
                liveOut[b] = std::move(out);
                liveIn[b] = std::move(live);
                changed = true;
            }
        }
    }

    // Per-site live sets: walk each block backwards once more.
    for (size_t b = 0; b < nb; ++b) {
        const BasicBlock &bb = f.blocks[b];
        std::vector<bool> live = liveOut[b];
        for (size_t i = bb.instrs.size(); i-- > 0;) {
            const IRInstr &in = bb.instrs[i];
            if (in.callSiteId != 0 &&
                (in.op == IROp::Call || in.op == IROp::CallInd ||
                 in.op == IROp::MigPoint)) {
                // Values live after the call, excluding its result:
                // exactly the set that must survive the call and hence
                // appear in the stackmap.
                std::vector<ValueId> vs;
                for (size_t v = 0; v < nv; ++v) {
                    if (live[v] && static_cast<ValueId>(v) != in.dst) {
                        vs.push_back(static_cast<ValueId>(v));
                        info.liveAcrossCall[v] = true;
                    }
                }
                info.liveAtSite.emplace(in.callSiteId, std::move(vs));
            }
            if (ValueId d = instrDef(in); d != kNoValue)
                live[d] = false;
            forEachUse(in, [&](ValueId v) { live[v] = true; });
        }
    }
    return info;
}

} // namespace xisa
