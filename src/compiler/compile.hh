/**
 * @file
 * The multi-ISA compiler driver -- the toolchain of the paper's Figure 2.
 *
 * Pipeline: (1) insert migration points at function boundaries and any
 * profile-chosen loop blocks, (2) assign cross-ISA call-site ids,
 * (3) lay out data symbols (identical across ISAs), (4) lower every
 * function independently per ISA with liveness-driven stackmaps,
 * (5) run the symbol-alignment engine that gives every function one
 * common virtual address, padding each to the larger of its per-ISA
 * encodings (the role of the paper's gold-linker-script alignment tool),
 * and (6) patch code-address relocations and finalize metadata.
 */

#ifndef XISA_COMPILER_COMPILE_HH
#define XISA_COMPILER_COMPILE_HH

#include <vector>

#include "binary/multibinary.hh"
#include "compiler/migpass.hh"
#include "ir/ir.hh"

namespace xisa {

/** Options controlling compileModule(). */
struct CompileOptions {
    /** Align symbols to a common cross-ISA layout (Section 5.2.2).
     *  Disable to reproduce the natural per-ISA packing of Table 1's
     *  "unaligned" baseline; unaligned binaries cannot migrate. */
    bool alignedLayout = true;
    /** Insert migration points at function boundaries. Disable to
     *  measure the uninstrumented baseline of Figs. 6-9. */
    bool boundaryMigPoints = true;
    /** Additional profile-chosen loop blocks to instrument. */
    std::vector<MigPointSpec> loopMigPoints;
    /** Run the machine-independent optimizer (Figure 2's "standard
     *  compiler optimizations") before lowering. */
    bool optimize = true;
};

/** Compile a BIR module into a multi-ISA binary. */
MultiIsaBinary compileModule(Module mod, const CompileOptions &opts = {});

} // namespace xisa

#endif // XISA_COMPILER_COMPILE_HH
