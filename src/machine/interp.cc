#include "machine/interp.hh"

#include <cmath>
#include <cstring>

#include "machine/interp_threaded.hh"
#include "obs/trace.hh"
#include "util/env.hh"
#include "util/logging.hh"

namespace xisa {

Interp::Interp(const MultiIsaBinary &bin, IsaId isa, const NodeSpec &spec)
    : bin_(bin), isa_(isa), abi_(AbiInfo::of(isa)), spec_(spec),
      codeMap_(bin, isa), fastPath_(!slowPathRequested()),
      pre_(bin.ir.functions.size()), execSig_(execTimingSig(spec))
{
    XISA_CHECK(spec.isa == isa, "node ISA does not match interpreter ISA");
#if XISA_THREADED_CAPABLE
    if (fastPath_ && threadedRequested())
        threaded_ = std::make_unique<ThreadedEngine>(*this);
#endif
}

Interp::~Interp() = default;

void
Interp::setSuperblockObserver(SuperblockObserver *obs)
{
    if (threaded_)
        threaded_->setObserver(obs);
}

void
Interp::shareExecCache(std::shared_ptr<ExecCache> cache)
{
    execCache_ = cache;
    if (threaded_)
        threaded_->shareCache(std::move(cache));
}

const std::vector<PreInstr> &
Interp::predecoded(uint32_t funcId)
{
    if (pre_[funcId])
        return *pre_[funcId];
    if (execCache_) {
        if (auto cached = execCache_->pre(isa_, funcId, execSig_)) {
            pre_[funcId] = std::move(cached);
            return *pre_[funcId];
        }
    }
    const FuncImage &img = bin_.image[static_cast<int>(isa_)][funcId];
    auto built = std::make_shared<std::vector<PreInstr>>();
    if (!img.code.empty()) {
        const uint64_t base =
            bin_.funcAddr[static_cast<int>(isa_)][funcId];
        built->resize(img.code.size());
        for (size_t i = 0; i < img.code.size(); ++i) {
            PreInstr &pi = (*built)[i];
            pi.in = img.code[i];
            pi.fetchAddr = base + img.instrOff[i];
            pi.nextAddr = base + img.instrOff[i + 1];
            pi.cost = spec_.cost(pi.in.op);
        }
    }
    pre_[funcId] = std::move(built);
    if (execCache_)
        pre_[funcId] =
            execCache_->setPre(isa_, funcId, execSig_, pre_[funcId]);
    return *pre_[funcId];
}

void
Interp::enableProfile()
{
    profiling_ = true;
    profile_.resize(bin_.ir.functions.size());
    for (size_t fid = 0; fid < profile_.size(); ++fid) {
        const auto &img = bin_.image[static_cast<int>(isa_)][fid];
        profile_[fid].assign(img.code.size(), 0);
    }
}

std::vector<int64_t>
Interp::readTrapArgs(const ThreadContext &ctx,
                     const IRFunction &callee) const
{
    std::vector<int64_t> args;
    size_t ints = 0, fps = 0;
    for (Type t : callee.paramTypes) {
        if (t == Type::F64) {
            XISA_CHECK(fps < abi_.fpArgRegs.size(),
                       "builtin FP arg beyond register args");
            double d = ctx.fpr[abi_.fpArgRegs[fps++]];
            int64_t bits;
            std::memcpy(&bits, &d, 8);
            args.push_back(bits);
        } else {
            XISA_CHECK(ints < abi_.intArgRegs.size(),
                       "builtin int arg beyond register args");
            args.push_back(static_cast<int64_t>(
                ctx.gpr[abi_.intArgRegs[ints++]]));
        }
    }
    return args;
}

void
Interp::finishTrap(ThreadContext &ctx, Type retType, int64_t intResult,
                   double fpResult)
{
    if (retType == Type::F64)
        ctx.fpr[abi_.fpRetReg] = fpResult;
    else if (retType != Type::Void)
        ctx.gpr[abi_.retReg] = static_cast<uint64_t>(intResult);
    ++ctx.pc.instrIdx;
}

StepResult
Interp::run(ThreadContext &ctx, MemPort &mem, Core &core, Cache &l2,
            uint64_t maxInstrs)
{
    if (!fastPath_)
        return runImpl<false>(ctx, mem, core, l2, maxInstrs);
#if XISA_THREADED_CAPABLE
    // Profiling and the migration-check observer both need a callback
    // per instruction/check with a live PC, which superblocks batch
    // away -- those modes run the plain fast path.
    if (threaded_ && !profiling_ && !observer_)
        return threaded_->run(ctx, mem, core, l2, maxInstrs);
#endif
    return runImpl<true>(ctx, mem, core, l2, maxInstrs);
}

template <bool kFast>
StepResult
Interp::runImpl(ThreadContext &ctx, MemPort &mem, Core &core, Cache &l2,
                uint64_t maxInstrs)
{
    XISA_CHECK(ctx.isa == isa_, "thread context on wrong ISA");
    StepResult res;
    const int isaIdx = static_cast<int>(isa_);
    const FuncImage *img = &bin_.image[isaIdx][ctx.pc.funcId];
    uint64_t funcBase = bin_.funcAddr[isaIdx][ctx.pc.funcId];
    uint32_t funcId = ctx.pc.funcId;
    [[maybe_unused]] const PreInstr *pre = nullptr;
    if constexpr (kFast)
        pre = predecoded(funcId).data();

    auto switchFunc = [&](uint32_t fid) {
        funcId = fid;
        img = &bin_.image[isaIdx][fid];
        funcBase = bin_.funcAddr[isaIdx][fid];
        if constexpr (kFast)
            pre = predecoded(fid).data();
    };

    auto finish = [&](StopReason why) {
        ctx.pc.funcId = funcId;
        res.reason = why;
        ctx.instrs += res.instrsRun;
        ctx.cycles += res.cyclesRun;
        core.instrs += res.instrsRun;
        core.cycles += res.cyclesRun;
        core.busyCycles += res.cyclesRun;
        return res;
    };

    uint32_t idx = ctx.pc.instrIdx;
    auto syncPc = [&] { ctx.pc.instrIdx = idx; };

#if XISA_TRACE
    const bool tracing = obs::traceEnabled();
    const double tsPerCycle = spec_.secondsPerCycle();
    // Virtual time of this core as of the current instruction; keeps
    // the ambient cursor honest so DSM fault spans land mid-quantum.
    auto nowTs = [&](uint64_t cyc) {
        return static_cast<double>(core.cycles + res.cyclesRun + cyc) *
               tsPerCycle;
    };
#endif

    while (res.instrsRun < maxInstrs) {
        XISA_CHECK(idx < img->code.size(), "PC past end of function");
        const MachInstr &in = kFast ? pre[idx].in : img->code[idx];

        // Instruction fetch through the I-cache.
        uint64_t fetchAddr;
        uint64_t cyc;
        if constexpr (kFast) {
            fetchAddr = pre[idx].fetchAddr;
            cyc = pre[idx].cost;
        } else {
            fetchAddr = funcBase + img->instrOff[idx];
            cyc = spec_.cost(in.op);
        }
        cyc += accessThrough(core.l1i, l2, fetchAddr,
                             spec_.memPenaltyCycles);

        if (profiling_)
            ++profile_[funcId][idx];

        uint64_t extra = 0; // DSM-added latency
        auto dataAccess = [&](uint64_t addr) {
            cyc += accessThrough(core.l1d, l2, addr,
                                 spec_.memPenaltyCycles);
        };
        auto load = [&](uint64_t addr, unsigned n) -> uint64_t {
            dataAccess(addr);
            uint64_t v = 0;
            // TLB hits are exactly the accesses the slow path would
            // complete for zero extra cycles with no protocol action,
            // so short-circuiting them preserves every stat.
            if constexpr (kFast) {
                if (mem.tryRead(addr, &v, n))
                    return v;
            }
#if XISA_TRACE
            if (tracing)
                obs::traceCursor().tsSeconds = nowTs(cyc + extra);
#endif
            extra += mem.read(addr, &v, n);
            return v;
        };
        auto store = [&](uint64_t addr, uint64_t v, unsigned n) {
            dataAccess(addr);
            if constexpr (kFast) {
                if (mem.tryWrite(addr, &v, n))
                    return;
            }
#if XISA_TRACE
            if (tracing)
                obs::traceCursor().tsSeconds = nowTs(cyc + extra);
#endif
            extra += mem.write(addr, &v, n);
        };

        uint32_t nextIdx = idx + 1;
        bool stop = false;
        StopReason stopWhy = StopReason::Budget;

        switch (in.op) {
          case MOp::Nop:
            break;
          case MOp::MovImm:
            ctx.gpr[in.rd] = static_cast<uint64_t>(in.imm);
            if (in.callSiteId && observer_) {
                syncPc();
                observer_->onMigCheck(ctx, in.callSiteId,
                                      ctx.instrs + res.instrsRun);
            }
            break;
          case MOp::MovReg:
            ctx.gpr[in.rd] = ctx.gpr[in.rn];
            break;
          case MOp::Add:
            ctx.gpr[in.rd] = ctx.gpr[in.rn] + ctx.gpr[in.rm];
            break;
          case MOp::Sub:
            ctx.gpr[in.rd] = ctx.gpr[in.rn] - ctx.gpr[in.rm];
            break;
          case MOp::Mul:
            ctx.gpr[in.rd] = ctx.gpr[in.rn] * ctx.gpr[in.rm];
            break;
          case MOp::SDiv: case MOp::SRem: {
            int64_t a = static_cast<int64_t>(ctx.gpr[in.rn]);
            int64_t b = static_cast<int64_t>(ctx.gpr[in.rm]);
            if (b == 0)
                fatal("machine fault: division by zero in f%u@%u",
                      funcId, idx);
            ctx.gpr[in.rd] = static_cast<uint64_t>(
                in.op == MOp::SDiv ? a / b : a % b);
            break;
          }
          case MOp::UDiv: case MOp::URem: {
            uint64_t a = ctx.gpr[in.rn];
            uint64_t b = ctx.gpr[in.rm];
            if (b == 0)
                fatal("machine fault: division by zero in f%u@%u",
                      funcId, idx);
            ctx.gpr[in.rd] = in.op == MOp::UDiv ? a / b : a % b;
            break;
          }
          case MOp::And:
            ctx.gpr[in.rd] = ctx.gpr[in.rn] & ctx.gpr[in.rm];
            break;
          case MOp::Orr:
            ctx.gpr[in.rd] = ctx.gpr[in.rn] | ctx.gpr[in.rm];
            break;
          case MOp::Eor:
            ctx.gpr[in.rd] = ctx.gpr[in.rn] ^ ctx.gpr[in.rm];
            break;
          case MOp::Lsl:
            ctx.gpr[in.rd] = ctx.gpr[in.rn] << (ctx.gpr[in.rm] & 63);
            break;
          case MOp::Lsr:
            ctx.gpr[in.rd] = ctx.gpr[in.rn] >> (ctx.gpr[in.rm] & 63);
            break;
          case MOp::Asr:
            ctx.gpr[in.rd] = static_cast<uint64_t>(
                static_cast<int64_t>(ctx.gpr[in.rn]) >>
                (ctx.gpr[in.rm] & 63));
            break;
          case MOp::AddImm:
            ctx.gpr[in.rd] =
                ctx.gpr[in.rn] + static_cast<uint64_t>(in.imm);
            break;
          case MOp::SubImm:
            ctx.gpr[in.rd] =
                ctx.gpr[in.rn] - static_cast<uint64_t>(in.imm);
            break;
          case MOp::MulImm:
            ctx.gpr[in.rd] =
                ctx.gpr[in.rn] * static_cast<uint64_t>(in.imm);
            break;
          case MOp::AndImm:
            ctx.gpr[in.rd] =
                ctx.gpr[in.rn] & static_cast<uint64_t>(in.imm);
            break;
          case MOp::OrrImm:
            ctx.gpr[in.rd] =
                ctx.gpr[in.rn] | static_cast<uint64_t>(in.imm);
            break;
          case MOp::EorImm:
            ctx.gpr[in.rd] =
                ctx.gpr[in.rn] ^ static_cast<uint64_t>(in.imm);
            break;
          case MOp::LslImm:
            ctx.gpr[in.rd] = ctx.gpr[in.rn] << (in.imm & 63);
            break;
          case MOp::LsrImm:
            ctx.gpr[in.rd] = ctx.gpr[in.rn] >> (in.imm & 63);
            break;
          case MOp::AsrImm:
            ctx.gpr[in.rd] = static_cast<uint64_t>(
                static_cast<int64_t>(ctx.gpr[in.rn]) >> (in.imm & 63));
            break;
          case MOp::Neg:
            ctx.gpr[in.rd] = static_cast<uint64_t>(
                -static_cast<int64_t>(ctx.gpr[in.rn]));
            break;
          case MOp::Cmp: case MOp::CmpImm: {
            int64_t a = static_cast<int64_t>(ctx.gpr[in.rn]);
            int64_t b = in.op == MOp::Cmp
                            ? static_cast<int64_t>(ctx.gpr[in.rm])
                            : in.imm;
            ctx.flags.eq = a == b;
            ctx.flags.lt = a < b;
            ctx.flags.ult =
                static_cast<uint64_t>(a) < static_cast<uint64_t>(b);
            break;
          }
          case MOp::CSet:
            ctx.gpr[in.rd] = evalCond(in.cond, ctx.flags) ? 1 : 0;
            break;
          case MOp::FAdd:
            ctx.fpr[in.rd] = ctx.fpr[in.rn] + ctx.fpr[in.rm];
            break;
          case MOp::FSub:
            ctx.fpr[in.rd] = ctx.fpr[in.rn] - ctx.fpr[in.rm];
            break;
          case MOp::FMul:
            ctx.fpr[in.rd] = ctx.fpr[in.rn] * ctx.fpr[in.rm];
            break;
          case MOp::FDiv:
            ctx.fpr[in.rd] = ctx.fpr[in.rn] / ctx.fpr[in.rm];
            break;
          case MOp::FNeg:
            ctx.fpr[in.rd] = -ctx.fpr[in.rn];
            break;
          case MOp::FMovReg:
            ctx.fpr[in.rd] = ctx.fpr[in.rn];
            break;
          case MOp::FMovImm: {
            double d;
            std::memcpy(&d, &in.imm, 8);
            ctx.fpr[in.rd] = d;
            break;
          }
          case MOp::FCmp: {
            double a = ctx.fpr[in.rn];
            double b = ctx.fpr[in.rm];
            if (std::isnan(a) || std::isnan(b)) {
                ctx.flags = {false, false, false};
            } else {
                ctx.flags.eq = a == b;
                ctx.flags.lt = a < b;
                ctx.flags.ult = a < b;
            }
            break;
          }
          case MOp::SCvtF:
            ctx.fpr[in.rd] = static_cast<double>(
                static_cast<int64_t>(ctx.gpr[in.rn]));
            break;
          case MOp::FCvtS:
            ctx.gpr[in.rd] = static_cast<uint64_t>(
                static_cast<int64_t>(ctx.fpr[in.rn]));
            break;
          case MOp::Ldr:
            ctx.gpr[in.rd] =
                load(ctx.gpr[in.rn] + static_cast<uint64_t>(in.imm), 8);
            break;
          case MOp::Ldr32:
            ctx.gpr[in.rd] =
                load(ctx.gpr[in.rn] + static_cast<uint64_t>(in.imm), 4);
            break;
          case MOp::LdrS32:
            ctx.gpr[in.rd] = static_cast<uint64_t>(
                static_cast<int64_t>(static_cast<int32_t>(load(
                    ctx.gpr[in.rn] + static_cast<uint64_t>(in.imm), 4))));
            break;
          case MOp::LdrB:
            ctx.gpr[in.rd] =
                load(ctx.gpr[in.rn] + static_cast<uint64_t>(in.imm), 1);
            break;
          case MOp::Str:
            store(ctx.gpr[in.rn] + static_cast<uint64_t>(in.imm),
                  ctx.gpr[in.rd], 8);
            break;
          case MOp::Str32:
            store(ctx.gpr[in.rn] + static_cast<uint64_t>(in.imm),
                  ctx.gpr[in.rd], 4);
            break;
          case MOp::StrB:
            store(ctx.gpr[in.rn] + static_cast<uint64_t>(in.imm),
                  ctx.gpr[in.rd], 1);
            break;
          case MOp::FLdr: {
            uint64_t bits =
                load(ctx.gpr[in.rn] + static_cast<uint64_t>(in.imm), 8);
            std::memcpy(&ctx.fpr[in.rd], &bits, 8);
            break;
          }
          case MOp::FStr: {
            uint64_t bits;
            std::memcpy(&bits, &ctx.fpr[in.rd], 8);
            store(ctx.gpr[in.rn] + static_cast<uint64_t>(in.imm), bits,
                  8);
            break;
          }
          case MOp::LdrIdx:
            ctx.gpr[in.rd] =
                load(ctx.gpr[in.rn] +
                         ctx.gpr[in.rm] * static_cast<uint64_t>(in.imm),
                     8);
            break;
          case MOp::Ldr32Idx:
            ctx.gpr[in.rd] =
                load(ctx.gpr[in.rn] +
                         ctx.gpr[in.rm] * static_cast<uint64_t>(in.imm),
                     4);
            break;
          case MOp::LdrBIdx:
            ctx.gpr[in.rd] =
                load(ctx.gpr[in.rn] +
                         ctx.gpr[in.rm] * static_cast<uint64_t>(in.imm),
                     1);
            break;
          case MOp::StrIdx:
            store(ctx.gpr[in.rn] +
                      ctx.gpr[in.rm] * static_cast<uint64_t>(in.imm),
                  ctx.gpr[in.rd], 8);
            break;
          case MOp::Str32Idx:
            store(ctx.gpr[in.rn] +
                      ctx.gpr[in.rm] * static_cast<uint64_t>(in.imm),
                  ctx.gpr[in.rd], 4);
            break;
          case MOp::StrBIdx:
            store(ctx.gpr[in.rn] +
                      ctx.gpr[in.rm] * static_cast<uint64_t>(in.imm),
                  ctx.gpr[in.rd], 1);
            break;
          case MOp::FLdrIdx: {
            uint64_t bits =
                load(ctx.gpr[in.rn] +
                         ctx.gpr[in.rm] * static_cast<uint64_t>(in.imm),
                     8);
            std::memcpy(&ctx.fpr[in.rd], &bits, 8);
            break;
          }
          case MOp::FStrIdx: {
            uint64_t bits;
            std::memcpy(&bits, &ctx.fpr[in.rd], 8);
            store(ctx.gpr[in.rn] +
                      ctx.gpr[in.rm] * static_cast<uint64_t>(in.imm),
                  bits, 8);
            break;
          }
          case MOp::Push:
            ctx.gpr[abi_.spReg] -= 8;
            store(ctx.gpr[abi_.spReg], ctx.gpr[in.rd], 8);
            break;
          case MOp::Pop:
            ctx.gpr[in.rd] = load(ctx.gpr[abi_.spReg], 8);
            ctx.gpr[abi_.spReg] += 8;
            break;
          case MOp::B:
            nextIdx = in.target;
            break;
          case MOp::BCond:
            if (evalCond(in.cond, ctx.flags))
                nextIdx = in.target;
            break;
          case MOp::Bl: {
            if (in.target == kMigrateTarget) {
                syncPc();
                res.trapCallSite = in.callSiteId;
#if XISA_TRACE
                if (tracing)
                    obs::Tracer::global().instant(
                        obs::traceCursor().track, "interp",
                        "migpoint_hit", nowTs(cyc));
#endif
                return finish(StopReason::MigrateTrap);
            }
            const IRFunction &callee = bin_.ir.func(in.target);
            if (callee.isBuiltin()) {
                syncPc();
                res.trapFuncId = in.target;
                res.trapCallSite = in.callSiteId;
                return finish(StopReason::BuiltinTrap);
            }
            uint64_t ra = kFast ? pre[idx].nextAddr
                                : funcBase + img->instrOff[idx + 1];
            if (abi_.retAddrOnStack) {
                ctx.gpr[abi_.spReg] -= 8;
                store(ctx.gpr[abi_.spReg], ra, 8);
            } else {
                ctx.gpr[abi_.linkReg] = ra;
            }
            switchFunc(in.target);
            nextIdx = 0;
            break;
          }
          case MOp::Blr: {
            uint64_t dest = ctx.gpr[in.rn];
            CodeLoc loc = codeMap_.resolve(dest);
            XISA_CHECK(loc.instrIdx == 0,
                       "indirect call into function body");
            if (bin_.ir.func(loc.funcId).isBuiltin()) {
                syncPc();
                res.trapFuncId = loc.funcId;
                res.trapCallSite = in.callSiteId;
                return finish(StopReason::BuiltinTrap);
            }
            uint64_t ra = kFast ? pre[idx].nextAddr
                                : funcBase + img->instrOff[idx + 1];
            if (abi_.retAddrOnStack) {
                ctx.gpr[abi_.spReg] -= 8;
                store(ctx.gpr[abi_.spReg], ra, 8);
            } else {
                ctx.gpr[abi_.linkReg] = ra;
            }
            switchFunc(loc.funcId);
            nextIdx = 0;
            break;
          }
          case MOp::Ret: {
            uint64_t ra;
            if (abi_.retAddrOnStack) {
                ra = load(ctx.gpr[abi_.spReg], 8);
                ctx.gpr[abi_.spReg] += 8;
            } else {
                ra = ctx.gpr[abi_.linkReg];
            }
            if (ra == vm::kThreadExitAddr) {
                res.exitValue = ctx.gpr[abi_.retReg];
                stop = true;
                stopWhy = StopReason::Halt;
                break;
            }
            CodeLoc loc = codeMap_.resolve(ra);
            switchFunc(loc.funcId);
            nextIdx = loc.instrIdx;
            break;
          }
          case MOp::AtomicAdd: {
            uint64_t addr = ctx.gpr[in.rn];
            uint64_t old = load(addr, 8);
            store(addr, old + ctx.gpr[in.rm], 8);
            ctx.gpr[in.rd] = old;
            break;
          }
          case MOp::TlsBase:
            ctx.gpr[in.rd] = ctx.tlsBase;
            break;
          case MOp::SysCall:
            syncPc();
            res.sysno = in.imm;
            return finish(StopReason::Syscall);
          case MOp::Hlt:
            res.exitValue = ctx.gpr[abi_.retReg];
            stop = true;
            stopWhy = StopReason::Halt;
            break;
          case MOp::NumOps:
            panic("invalid opcode");
        }

        ++res.instrsRun;
        res.cyclesRun += cyc + extra;
        ctx.dsmExtraCycles += extra;
        idx = nextIdx;

        if (stop) {
            syncPc();
            return finish(stopWhy);
        }
    }
    syncPc();
    return finish(StopReason::Budget);
}

// The threaded engine deoptimizes into the fast reference loop from
// another translation unit (interp_threaded.cc).
template StepResult Interp::runImpl<true>(ThreadContext &, MemPort &,
                                          Core &, Cache &, uint64_t);

} // namespace xisa
