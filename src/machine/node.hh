/**
 * @file
 * Hardware node models: cores, caches, per-op timing, and power.
 *
 * Two presets stand in for the paper's testbed: makeXenoServer() models
 * the Xeon E5-1650 v2 (6 cores @ 3.5 GHz, wide out-of-order, so low
 * per-op cycle costs) and makeAetherServer() models the APM X-Gene 1
 * (8 cores @ 2.4 GHz, in-order-ish, roughly 2x the per-op cycle cost).
 * Power is a utilization-proportional model calibrated to the paper's
 * Figure 11 traces; the McPAT FinFET projection of Section 7 is a
 * multiplicative scale applied to the ARM node's power by the consumer.
 */

#ifndef XISA_MACHINE_NODE_HH
#define XISA_MACHINE_NODE_HH

#include <array>
#include <string>

#include "machine/cache.hh"
#include "isa/isa.hh"

namespace xisa {

/** Static description of a server node. */
struct NodeSpec {
    std::string name;
    IsaId isa = IsaId::Xeno64;
    int cores = 1;
    double freqGHz = 1.0;
    CacheConfig l1i, l1d, l2;
    uint32_t memPenaltyCycles = 120; ///< beyond-L2 access penalty
    /** Base cycle cost per operation (before cache penalties). */
    std::array<uint8_t, static_cast<size_t>(MOp::NumOps)> opCost = {};
    double idleWatts = 10.0;
    double maxWatts = 20.0;

    uint8_t
    cost(MOp op) const
    {
        return opCost[static_cast<size_t>(op)];
    }

    /** Seconds per cycle. */
    double
    secondsPerCycle() const
    {
        return 1e-9 / freqGHz;
    }

    /**
     * Electrical power at a given core utilization in [0,1].
     * @param utilization fraction of cores busy
     * @param scale technology projection factor (e.g. 0.1 for the
     *        McPAT FinFET projection of the ARM part)
     */
    double
    power(double utilization, double scale = 1.0) const
    {
        double u = utilization < 0 ? 0 : (utilization > 1 ? 1 : utilization);
        return scale * (idleWatts + (maxWatts - idleWatts) * u);
    }
};

/** One core's private timing state. */
struct Core {
    Cache l1i;
    Cache l1d;
    /** Core-local cycle counter (advances while a thread runs here). */
    uint64_t cycles = 0;
    uint64_t instrs = 0;
    /** Cycles spent actually executing (for utilization accounting). */
    uint64_t busyCycles = 0;

    explicit Core(const NodeSpec &spec)
        : l1i(spec.l1i), l1d(spec.l1d)
    {}
};

/** Xeon-E5-1650v2-like x86 server node (Xeno64). */
NodeSpec makeXenoServer();
/** APM-X-Gene-1-like ARM server node (Aether64). */
NodeSpec makeAetherServer();

} // namespace xisa

#endif // XISA_MACHINE_NODE_HH
