/**
 * @file
 * Set-associative LRU cache model.
 *
 * Timing-only (no data storage): access() classifies hit/miss and
 * returns the penalty cycles. Used for per-core L1I/L1D and a per-node
 * shared L2. The L1I model is what gives Table 1 its signal: aligning
 * symbols across ISAs pads functions, which moves code around in the
 * index bits and changes conflict-miss behaviour by a few percent.
 */

#ifndef XISA_MACHINE_CACHE_HH
#define XISA_MACHINE_CACHE_HH

#include <cstdint>
#include <vector>

namespace xisa {

/** Geometry and penalty of one cache level. */
struct CacheConfig {
    uint32_t sizeBytes = 32 * 1024;
    uint32_t assoc = 8;
    uint32_t lineBytes = 64;
    uint32_t missPenalty = 10; ///< cycles added on miss at this level
};

/** Hit/miss counters. */
struct CacheStats {
    uint64_t accesses = 0;
    uint64_t misses = 0;

    double
    missRatio() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/** One level of set-associative cache with true-LRU replacement. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Touch `addr`; returns this level's miss penalty in cycles (0 on
     * hit). The caller chains levels (L1 miss -> L2 access).
     */
    uint32_t access(uint64_t addr);

    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = CacheStats{}; }
    /** Invalidate all lines (e.g. when a thread migrates in). */
    void flush();
    const CacheConfig &config() const { return cfg_; }

  private:
    struct Line {
        uint64_t tag = ~0ull;
        uint64_t lastUse = 0;
        bool valid = false;
    };

    CacheConfig cfg_;
    uint32_t numSets_;
    uint32_t lineShift_;
    std::vector<Line> lines_; ///< numSets_ * assoc, set-major
    uint64_t clock_ = 0;
    CacheStats stats_;
};

/** L1 + shared-L2 access chain; returns total penalty cycles. */
uint32_t accessThrough(Cache &l1, Cache &l2, uint64_t addr,
                       uint32_t memPenalty);

} // namespace xisa

#endif // XISA_MACHINE_CACHE_HH
