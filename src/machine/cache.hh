/**
 * @file
 * Set-associative LRU cache model.
 *
 * Timing-only (no data storage): access() classifies hit/miss and
 * returns the penalty cycles. Used for per-core L1I/L1D and a per-node
 * shared L2. The L1I model is what gives Table 1 its signal: aligning
 * symbols across ISAs pads functions, which moves code around in the
 * index bits and changes conflict-miss behaviour by a few percent.
 */

#ifndef XISA_MACHINE_CACHE_HH
#define XISA_MACHINE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/registry.hh"

namespace xisa {

/** Geometry and penalty of one cache level. */
struct CacheConfig {
    uint32_t sizeBytes = 32 * 1024;
    uint32_t assoc = 8;
    uint32_t lineBytes = 64;
    uint32_t missPenalty = 10; ///< cycles added on miss at this level
};

/**
 * Hit/miss summary. Deprecated as storage: the live counts are
 * registry-backed obs::Counters owned by the Cache; this struct remains
 * as the value type the stats() shim materializes for existing callers.
 */
struct CacheStats {
    uint64_t accesses = 0;
    uint64_t misses = 0;

    double
    missRatio() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/** One level of set-associative cache with true-LRU replacement. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Touch `addr`; returns this level's miss penalty in cycles (0 on
     * hit). The caller chains levels (L1 miss -> L2 access).
     *
     * The inline body is a last-line memo: a repeat access to the most
     * recently touched line skips the set scan and just refreshes its
     * LRU stamp -- byte-identical counter and replacement behaviour to
     * the full lookup (the memo always names the last line touched, and
     * every install/evict goes through accessSlow which re-points it).
     */
    uint32_t
    access(uint64_t addr)
    {
        uint64_t lineAddr = addr >> lineShift_;
        if (lineAddr == lastLineAddr_) {
            ++accesses_;
            lastLine_->lastUse = ++clock_;
            return 0;
        }
        return accessSlow(lineAddr);
    }

    /** Deprecated shim over the registry-backed counters. */
    CacheStats stats() const
    {
        return {accesses_.value(), misses_.value()};
    }
    /** Deprecated: prefer resetting through the owning StatRegistry. */
    void resetStats()
    {
        accesses_.reset();
        misses_.reset();
    }
    /**
     * Attach this cache's counters to `reg` as `<prefix>.accesses` /
     * `<prefix>.misses` (e.g. "node0.l1d.misses"). Idempotent per cache
     * only via distinct prefixes; registering twice panics.
     */
    void registerStats(obs::StatRegistry &reg, const std::string &prefix);
    /** Invalidate all lines (e.g. when a thread migrates in). */
    void flush();
    const CacheConfig &config() const { return cfg_; }

  private:
    struct Line {
        uint64_t tag = ~0ull;
        uint64_t lastUse = 0;
        bool valid = false;
    };

    /** Full set scan for addresses missing the last-line memo. */
    uint32_t accessSlow(uint64_t lineAddr);

    CacheConfig cfg_;
    uint32_t numSets_;
    uint32_t lineShift_;
    std::vector<Line> lines_; ///< numSets_ * assoc, set-major
    uint64_t clock_ = 0;
    uint64_t lastLineAddr_ = ~0ull; ///< memo tag (line address)
    Line *lastLine_ = nullptr;      ///< line of the last access
    obs::Counter accesses_;
    obs::Counter misses_;
};

/** L1 + shared-L2 access chain; returns total penalty cycles. */
inline uint32_t
accessThrough(Cache &l1, Cache &l2, uint64_t addr, uint32_t memPenalty)
{
    uint32_t penalty = l1.access(addr);
    if (penalty == 0)
        return 0;
    uint32_t p2 = l2.access(addr);
    return p2 == 0 ? penalty : penalty + p2 + memPenalty;
}

} // namespace xisa

#endif // XISA_MACHINE_CACHE_HH
