/**
 * @file
 * Set-associative LRU cache model.
 *
 * Timing-only (no data storage): access() classifies hit/miss and
 * returns the penalty cycles. Used for per-core L1I/L1D and a per-node
 * shared L2. The L1I model is what gives Table 1 its signal: aligning
 * symbols across ISAs pads functions, which moves code around in the
 * index bits and changes conflict-miss behaviour by a few percent.
 */

#ifndef XISA_MACHINE_CACHE_HH
#define XISA_MACHINE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/registry.hh"

namespace xisa {

/** Geometry and penalty of one cache level. */
struct CacheConfig {
    uint32_t sizeBytes = 32 * 1024;
    uint32_t assoc = 8;
    uint32_t lineBytes = 64;
    uint32_t missPenalty = 10; ///< cycles added on miss at this level
};

/**
 * Hit/miss summary. Deprecated as storage: the live counts are
 * registry-backed obs::Counters owned by the Cache; this struct remains
 * as the value type the stats() shim materializes for existing callers.
 */
struct CacheStats {
    uint64_t accesses = 0;
    uint64_t misses = 0;

    double
    missRatio() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/** One level of set-associative cache with true-LRU replacement. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Touch `addr`; returns this level's miss penalty in cycles (0 on
     * hit). The caller chains levels (L1 miss -> L2 access).
     *
     * The inline body is a hot-line memo: a small direct-mapped table
     * of recently hit lines, each pointing straight at its LRU stamp
     * slot. A memo hit skips the set scan and just refreshes the stamp
     * -- byte-identical counter and replacement behaviour to the full
     * lookup, because the memo only ever names currently resident
     * lines: every install goes through accessSlow, which also drops
     * the memo entry of any line it evicts. Multiple entries matter for
     * data streams: a loop walking several arrays alternates between a
     * handful of lines, which a single-entry memo would thrash.
     */
    uint32_t
    access(uint64_t addr)
    {
        uint64_t lineAddr = addr >> lineShift_;
        MemoEntry &m = memo_[lineAddr & (kMemoSize - 1)];
        if (m.lineAddr == lineAddr) {
            ++accesses_;
            *m.stampPtr = ++clock_;
            lastUsePtr_ = m.stampPtr;
            return 0;
        }
        return accessSlow(lineAddr);
    }

    /**
     * Batch-apply `n` accesses that are guaranteed memo hits on the
     * last-touched line (the threaded engine's straight-line I-fetches:
     * between two line-boundary fetches nothing else touches this
     * cache, so every one of them would take the memo branch above).
     * Counter, clock and LRU-stamp state end up exactly as n access()
     * calls would leave them. The caller owns the guarantee; anything
     * that might have re-pointed the memo must flush the batch first.
     */
    void
    bulkMemoHits(uint64_t n)
    {
        accesses_.add(n);
        clock_ += n;
        *lastUsePtr_ = clock_;
    }

    /** One hot-line memo slot: a resident line and its stamp slot. */
    struct MemoEntry {
        uint64_t lineAddr = ~0ull; ///< ~0 marks an empty slot
        uint64_t *stampPtr = nullptr;
    };
    static constexpr uint32_t kMemoSize = 16; ///< power of two

    /** Deprecated shim over the registry-backed counters. */
    CacheStats stats() const
    {
        return {accesses_.value(), misses_.value()};
    }
    /** Deprecated: prefer resetting through the owning StatRegistry. */
    void resetStats()
    {
        accesses_.reset();
        misses_.reset();
    }
    /**
     * Attach this cache's counters to `reg` as `<prefix>.accesses` /
     * `<prefix>.misses` (e.g. "node0.l1d.misses"). Idempotent per cache
     * only via distinct prefixes; registering twice panics.
     */
    void registerStats(obs::StatRegistry &reg, const std::string &prefix);
    /** Invalidate all lines (e.g. when a thread migrates in). */
    void flush();
    const CacheConfig &config() const { return cfg_; }

  private:
    /** Full set scan for addresses missing the last-line memo. */
    uint32_t accessSlow(uint64_t lineAddr);

    CacheConfig cfg_;
    uint32_t numSets_;
    uint32_t lineShift_;
    // Set index / tag split. Sets are almost always a power of two;
    // keep the division fallback for exotic geometries.
    bool pow2Sets_ = false;
    uint32_t setShift_ = 0;
    uint64_t setMask_ = 0;
    // Structure-of-arrays line state, set-major, so one set's tags scan
    // within a single host cache line. A line is valid iff its lastUse
    // stamp is nonzero (stamps come from ++clock_, so live lines are
    // always >= 1). Invalid ways always carry tag ~0, which no
    // reachable line address produces, so the hit probe never needs
    // the validity check.
    std::vector<uint64_t> tags_;    ///< numSets_ * assoc
    std::vector<uint64_t> lastUse_; ///< numSets_ * assoc; 0 = invalid
    uint64_t clock_ = 0;
    MemoEntry memo_[kMemoSize];      ///< direct-mapped hot-line memo
    uint64_t *lastUsePtr_ = nullptr; ///< stamp slot of the last access
    obs::Counter accesses_;
    obs::Counter misses_;
};

/** L1 + shared-L2 access chain; returns total penalty cycles. */
inline uint32_t
accessThrough(Cache &l1, Cache &l2, uint64_t addr, uint32_t memPenalty)
{
    uint32_t penalty = l1.access(addr);
    if (penalty == 0)
        return 0;
    uint32_t p2 = l2.access(addr);
    return p2 == 0 ? penalty : penalty + p2 + memPenalty;
}

} // namespace xisa

#endif // XISA_MACHINE_CACHE_HH
