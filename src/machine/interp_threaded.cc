/**
 * @file
 * Superblock discovery, micro-op lowering, and the computed-goto
 * dispatch loop (DESIGN.md §10). See interp_threaded.hh for the
 * engine-level contract; the invariants that matter locally:
 *
 *  - Budget: a superblock is entered (and a backward edge taken) only
 *    while at least `len` instructions of quantum remain; the final
 *    sub-`len` tail of a slice is delegated to runImpl<kFast>, so the
 *    hot loop never checks the budget per instruction.
 *  - I-fetch batching: straight-line fetches after a line-start
 *    instruction are guaranteed last-line memo hits of the L1I model
 *    and are applied in one bulkMemoHits() call; an instruction with
 *    `fetchReal` set (block entry, join target, line crossing) flushes
 *    the batch and runs a real access. The fetch-accounting step of a
 *    uop runs AFTER its software-TLB probes, so a deoptimizing
 *    instruction has touched no cache state and the reference step that
 *    replays it performs its one and only fetch.
 *  - Trap accounting: the reference engine computes a trapping
 *    instruction's fetch+cost cycles but never charges them (the
 *    accounting tail is skipped), while the I-cache mutation of the
 *    fetch has already happened. Trap uops therefore perform the real
 *    fetch themselves and discard the penalty.
 *  - Deopt: memory uops probe the software TLB before any side effect
 *    (sp updates and fetch accounting included), so a miss can hand the
 *    untouched instruction to runImpl<kFast> for reference-exact
 *    execution -- slow-path protocol actions, trace cursor updates,
 *    machine-fault messages and all.
 */

#include "machine/interp_threaded.hh"

#include <cstring>

#include "emu/dbt.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace xisa {

uint64_t
execTimingSig(const NodeSpec &spec)
{
    // FNV-1a over every timing input the artifacts bake in.
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    for (size_t i = 0; i < spec.opCost.size(); ++i)
        mix(spec.opCost[i]);
    mix(spec.l1i.lineBytes);
    mix(spec.memPenaltyCycles);
    mix(static_cast<uint64_t>(spec.isa));
    return h;
}

// ---------------------------------------------------------------------------
// ExecCache
// ---------------------------------------------------------------------------

ExecCache::IsaSlot *
ExecCache::slot(IsaId isa, uint64_t sig)
{
    IsaSlot &s = isa_[static_cast<int>(isa)];
    if (!s.sigSet) {
        s.sigSet = true;
        s.sig = sig;
    }
    return s.sig == sig ? &s : nullptr;
}

ExecCache::PrePtr
ExecCache::pre(IsaId isa, uint32_t funcId, uint64_t sig)
{
    std::lock_guard<std::mutex> lk(mu_);
    IsaSlot *s = slot(isa, sig);
    if (!s || funcId >= s->pre.size())
        return nullptr;
    return s->pre[funcId];
}

ExecCache::PrePtr
ExecCache::setPre(IsaId isa, uint32_t funcId, uint64_t sig, PrePtr p)
{
    std::lock_guard<std::mutex> lk(mu_);
    IsaSlot *s = slot(isa, sig);
    if (!s)
        return p;
    if (funcId >= s->pre.size())
        s->pre.resize(funcId + 1);
    if (!s->pre[funcId])
        s->pre[funcId] = std::move(p);
    return s->pre[funcId];
}

ExecCache::BlockPtr
ExecCache::block(IsaId isa, uint32_t funcId, uint32_t entry, uint64_t sig)
{
    std::lock_guard<std::mutex> lk(mu_);
    IsaSlot *s = slot(isa, sig);
    if (!s || funcId >= s->blocks.size() ||
        entry >= s->blocks[funcId].size())
        return nullptr;
    return s->blocks[funcId][entry];
}

ExecCache::BlockPtr
ExecCache::setBlock(IsaId isa, uint32_t funcId, uint32_t entry,
                    uint64_t sig, BlockPtr b)
{
    std::lock_guard<std::mutex> lk(mu_);
    IsaSlot *s = slot(isa, sig);
    if (!s)
        return b;
    if (funcId >= s->blocks.size())
        s->blocks.resize(funcId + 1);
    if (entry >= s->blocks[funcId].size())
        s->blocks[funcId].resize(entry + 1);
    if (!s->blocks[funcId][entry])
        s->blocks[funcId][entry] = std::move(b);
    return s->blocks[funcId][entry];
}

// ---------------------------------------------------------------------------
// Micro-op kinds
// ---------------------------------------------------------------------------

// One entry per computed-goto handler. Kinds sharing a MOp's name lower
// 1:1 from it; the rest are the control/exit structure.
#define XISA_UOP_KINDS(X) \
    X(Nop) X(MovImm) X(MovReg) \
    X(Add) X(Sub) X(Mul) X(SDiv) X(UDiv) X(SRem) X(URem) \
    X(And) X(Orr) X(Eor) X(Lsl) X(Lsr) X(Asr) \
    X(AddImm) X(SubImm) X(MulImm) X(AndImm) X(OrrImm) X(EorImm) \
    X(LslImm) X(LsrImm) X(AsrImm) X(Neg) \
    X(Cmp) X(CmpImm) X(CSet) \
    X(FAdd) X(FSub) X(FMul) X(FDiv) X(FNeg) X(FMovReg) X(FMovImm) \
    X(FCmp) X(SCvtF) X(FCvtS) X(TlsBase) \
    X(Ldr) X(Ldr32) X(LdrS32) X(LdrB) X(FLdr) \
    X(LdrIdx) X(Ldr32Idx) X(LdrBIdx) X(FLdrIdx) X(Pop) \
    X(Str) X(Str32) X(StrB) X(FStr) \
    X(StrIdx) X(Str32Idx) X(StrBIdx) X(FStrIdx) X(Push) \
    X(AtomicAdd) \
    X(JmpFwd) X(JmpBack) X(CondFwd) X(CondBack) \
    X(JmpExit) X(CondExit) X(FallExit) \
    X(CmpCondFwd) X(CmpCondBack) X(CmpCondExit) \
    X(CmpImmCondFwd) X(CmpImmCondBack) X(CmpImmCondExit) \
    X(AddCmpImmCondFwd) X(AddCmpImmCondBack) X(AddCmpImmCondExit) \
    X(CallLink) X(CallPush) X(RetLink) X(RetPop) \
    X(MigTrap) X(BuiltinTrap) X(SysTrap) X(Hlt) \
    X(Delegate)

namespace {

enum UopKind : uint32_t {
#define X(n) k##n,
    XISA_UOP_KINDS(X)
#undef X
        kNumUopKinds
};

#if XISA_THREADED_CAPABLE
// Handler addresses inside runLoop, captured once per process; blocks
// lowered by any engine instance dispatch through the same table.
const void *gLabels[kNumUopKinds];
std::once_flag gLabelsOnce;
#endif

/** 1:1 uop kind for a straight-line MOp (not control/trap/exit). */
UopKind
kindForOp(MOp op)
{
    switch (op) {
#define K(n) \
  case MOp::n: \
      return k##n;
        K(Nop) K(MovImm) K(MovReg)
        K(Add) K(Sub) K(Mul) K(SDiv) K(UDiv) K(SRem) K(URem)
        K(And) K(Orr) K(Eor) K(Lsl) K(Lsr) K(Asr)
        K(AddImm) K(SubImm) K(MulImm) K(AndImm) K(OrrImm) K(EorImm)
        K(LslImm) K(LsrImm) K(AsrImm) K(Neg)
        K(Cmp) K(CmpImm) K(CSet)
        K(FAdd) K(FSub) K(FMul) K(FDiv) K(FNeg) K(FMovReg) K(FMovImm)
        K(FCmp) K(SCvtF) K(FCvtS) K(TlsBase)
        K(Ldr) K(Ldr32) K(LdrS32) K(LdrB) K(FLdr)
        K(LdrIdx) K(Ldr32Idx) K(LdrBIdx) K(FLdrIdx) K(Pop)
        K(Str) K(Str32) K(StrB) K(FStr)
        K(StrIdx) K(Str32Idx) K(StrBIdx) K(FStrIdx) K(Push)
        K(AtomicAdd)
#undef K
      default:
        panic("kindForOp: op is not a straight-line operation");
    }
}

} // namespace

// ---------------------------------------------------------------------------
// ThreadedEngine
// ---------------------------------------------------------------------------

ThreadedEngine::ThreadedEngine(Interp &interp)
    : interp_(interp), byEntry_(interp.bin_.ir.functions.size())
{
#if XISA_THREADED_CAPABLE
    std::call_once(gLabelsOnce, [this] {
        runLoop(nullptr, nullptr, nullptr, nullptr, 0, gLabels);
    });
#endif
}

void
ThreadedEngine::shareCache(std::shared_ptr<ExecCache> cache)
{
    cache_ = std::move(cache);
}

const SuperBlock *
ThreadedEngine::blockAt(uint32_t funcId, uint32_t entry)
{
    std::vector<const SuperBlock *> &slots = byEntry_[funcId];
    if (entry < slots.size() && slots[entry])
        return slots[entry];
    if (slots.size() != interp_.predecoded(funcId).size())
        slots.resize(interp_.predecoded(funcId).size(), nullptr);
    std::shared_ptr<const SuperBlock> b;
    if (cache_)
        b = cache_->block(interp_.isa_, funcId, entry, interp_.execSig_);
    if (!b) {
        b = lower(funcId, entry);
        if (cache_)
            b = cache_->setBlock(interp_.isa_, funcId, entry,
                                 interp_.execSig_, b);
    }
    slots[entry] = b.get();
    keepalive_.push_back(std::move(b));
    return slots[entry];
}

std::shared_ptr<const SuperBlock>
ThreadedEngine::lower(uint32_t funcId, uint32_t entry)
{
#if XISA_THREADED_CAPABLE
    const std::vector<PreInstr> &ps = interp_.predecoded(funcId);
    const AbiInfo &abi = interp_.abi_;
    const uint32_t n = static_cast<uint32_t>(ps.size());
    const uint32_t lineBytes = interp_.spec_.l1i.lineBytes;

    // Bound the range so `len` (the per-entry budget reservation) stays
    // far below any realistic quantum.
    constexpr uint32_t kMaxRange = 128;
    const uint32_t cap =
        n - entry < kMaxRange ? n : entry + kMaxRange;

    // --- Discovery: grow past block boundaries (the classification
    // shared with the DBT cost model) while an earlier in-window
    // forward branch still jumps over them.
    uint32_t end = entry;
    uint32_t maxFwd = entry;
    while (end < cap) {
        const MachInstr &in = ps[end].in;
        if ((in.op == MOp::B || in.op == MOp::BCond) &&
            in.target > maxFwd && in.target < cap)
            maxFwd = in.target;
        ++end;
        if (emuBlockBoundary(in.op) && maxFwd < end)
            break;
    }

    // --- Join points: in-range direct branch targets start their line
    // with a real fetch, so fall-through memo batching stays exact.
    std::vector<uint8_t> isTarget(end - entry, 0);
    for (uint32_t i = entry; i < end; ++i) {
        const MachInstr &in = ps[i].in;
        if ((in.op == MOp::B || in.op == MOp::BCond) &&
            in.target >= entry && in.target < end)
            isTarget[in.target - entry] = 1;
    }

    // --- Lowering.
    auto sb = std::make_shared<SuperBlock>();
    sb->entry = entry;
    sb->len = end - entry;
    std::vector<Uop> &uops = sb->uops;
    uops.reserve((end - entry) + 1);
    std::vector<uint32_t> uopAt(end - entry, 0);
    std::vector<UopKind> kinds;
    kinds.reserve(uops.capacity());

    auto push = [&](UopKind k, const Uop &proto) {
        Uop u = proto;
        u.label = gLabels[k];
        uops.push_back(u);
        kinds.push_back(k);
    };

    uint64_t prevLine = ~0ull;
    for (uint32_t i = entry; i < end; ++i) {
        const PreInstr &pi = ps[i];
        const MachInstr &in = pi.in;
        const uint64_t line = pi.fetchAddr / lineBytes;

        Uop u;
        u.rd = in.rd;
        u.rn = in.rn;
        u.rm = in.rm;
        u.cost = pi.cost;
        u.cond = in.cond;
        u.gidx = i;
        u.imm = in.imm;

        // --- Loop-closer fusion: AddImm; CmpImm on the sum; BCond is
        // the canonical `i += step; if (i <?> n) goto top` sequence.
        // All three retire as one uop when the compare reads the
        // freshly written induction register, everything shares one
        // I-line, nothing branches into the middle, and the step fits
        // the spare byte field. None of the three can fault, so the
        // triple is atomic for deopt purposes.
        if (in.op == MOp::AddImm && i + 2 < end) {
            const PreInstr &cp = ps[i + 1];
            const PreInstr &bp = ps[i + 2];
            const int64_t step = in.imm;
            if (cp.in.op == MOp::CmpImm && bp.in.op == MOp::BCond &&
                cp.in.rn == in.rd && !isTarget[i + 1 - entry] &&
                !isTarget[i + 2 - entry] &&
                cp.fetchAddr / lineBytes == line &&
                bp.fetchAddr / lineBytes == line &&
                step >= -128 && step <= 127 &&
                static_cast<uint32_t>(pi.cost) + cp.cost + bp.cost <= 255) {
                const uint32_t tgt = bp.in.target;
                const bool intra = tgt >= entry && tgt < end;
                const bool back = tgt <= i + 2;
                const UopKind fk =
                    intra ? (back ? kAddCmpImmCondBack : kAddCmpImmCondFwd)
                          : kAddCmpImmCondExit;
                u.rm = static_cast<uint8_t>(static_cast<int8_t>(step));
                u.cost = static_cast<uint8_t>(pi.cost + cp.cost + bp.cost);
                u.cond = bp.in.cond;
                u.imm = cp.in.imm; // compare operand; target rides in aux
                u.aux = tgt;
                u.fetchReal =
                    (i == entry || isTarget[i - entry] || line != prevLine)
                        ? 1
                        : 0;
                const uint32_t at = static_cast<uint32_t>(uops.size());
                uopAt[i - entry] = at;
                uopAt[i + 1 - entry] = at;
                uopAt[i + 2 - entry] = at;
                push(fk, u);
                prevLine = line;
                i += 2;
                continue;
            }
        }

        // --- Compare+branch fusion: a Cmp/CmpImm immediately followed
        // by the BCond that consumes its flags retires as one uop (one
        // dispatch for the pair). Neither half can fault, so the pair
        // is atomic for deopt purposes. Fusion requires the branch to
        // share the compare's I-line and not be a join target -- then
        // its fetch is exactly the one memo hit the batching already
        // derives from the two-instruction retire.
        if ((in.op == MOp::Cmp || in.op == MOp::CmpImm) && i + 1 < end) {
            const PreInstr &bp = ps[i + 1];
            if (bp.in.op == MOp::BCond && !isTarget[i + 1 - entry] &&
                bp.fetchAddr / lineBytes == line &&
                static_cast<uint32_t>(pi.cost) + bp.cost <= 255) {
                const uint32_t tgt = bp.in.target;
                const bool intra = tgt >= entry && tgt < end;
                const bool back = tgt <= i + 1;
                UopKind fk;
                if (in.op == MOp::Cmp)
                    fk = intra ? (back ? kCmpCondBack : kCmpCondFwd)
                               : kCmpCondExit;
                else
                    fk = intra ? (back ? kCmpImmCondBack : kCmpImmCondFwd)
                               : kCmpImmCondExit;
                u.cost = static_cast<uint8_t>(pi.cost + bp.cost);
                u.cond = bp.in.cond;
                // imm stays the compare operand; the branch target rides
                // in aux (intra edges re-patched to uop indexes below,
                // which still name the guest target via their gidx).
                u.aux = tgt;
                u.fetchReal =
                    (i == entry || isTarget[i - entry] || line != prevLine)
                        ? 1
                        : 0;
                uopAt[i - entry] = static_cast<uint32_t>(uops.size());
                uopAt[i + 1 - entry] = static_cast<uint32_t>(uops.size());
                push(fk, u);
                prevLine = line; // the branch shares the compare's line
                ++i;
                continue;
            }
        }

        UopKind k;
        bool selfFetch = true; // exit uops fetch for themselves
        switch (in.op) {
          case MOp::Bl:
            if (in.target == kMigrateTarget) {
                k = kMigTrap;
                u.aux = in.callSiteId;
            } else if (interp_.bin_.ir.func(in.target).isBuiltin()) {
                k = kBuiltinTrap;
                u.aux = in.target;
                u.imm = in.callSiteId;
            } else {
                k = abi.retAddrOnStack ? kCallPush : kCallLink;
                u.aux = in.target;
                u.imm = static_cast<int64_t>(pi.nextAddr);
                u.rn = abi.retAddrOnStack ? abi.spReg
                                          : static_cast<uint8_t>(abi.linkReg);
            }
            break;
          case MOp::Blr:
            k = kDelegate; // resolve + possible builtin trap: reference
            break;
          case MOp::Ret:
            k = abi.retAddrOnStack ? kRetPop : kRetLink;
            u.rn = abi.retAddrOnStack ? abi.spReg
                                      : static_cast<uint8_t>(abi.linkReg);
            u.rm = abi.retReg;
            break;
          case MOp::SysCall:
            k = kSysTrap;
            break;
          case MOp::Hlt:
            k = kHlt;
            u.rn = abi.retReg;
            break;
          case MOp::B:
          case MOp::BCond: {
            const bool intra = in.target >= entry && in.target < end;
            const bool back = in.target <= i;
            if (in.op == MOp::B)
                k = intra ? (back ? kJmpBack : kJmpFwd) : kJmpExit;
            else
                k = intra ? (back ? kCondBack : kCondFwd) : kCondExit;
            u.imm = in.target; // aux patched below for intra edges
            selfFetch = false;
            break;
          }
          default:
            if (in.op == MOp::NumOps) {
                // Lowered blocks may cover code the current path never
                // executes; defer the invalid-opcode panic to the
                // reference engine so it only fires when reached.
                k = kDelegate;
                break;
            }
            k = kindForOp(in.op);
            if (in.op == MOp::Push || in.op == MOp::Pop)
                u.rn = abi.spReg;
            selfFetch = false;
            break;
        }

        // Self-fetching exit uops ignore the flag (they always run a
        // real access); everything else starts a new I-line with a real
        // access at the block entry, at join targets (the fall-through
        // batch cannot absorb an incoming edge) and at line crossings.
        u.fetchReal =
            !selfFetch &&
                    (i == entry || isTarget[i - entry] || line != prevLine)
                ? 1
                : 0;
        uopAt[i - entry] = static_cast<uint32_t>(uops.size());
        push(k, u);
        prevLine = line;
    }

    // A range that can fall off its end re-enters dispatch there.
    if (end > entry && !emuBlockBoundary(ps[end - 1].in.op)) {
        Uop fe;
        fe.gidx = end;
        push(kFallExit, fe);
    }

    // --- Patch intra-block edges to uop indexes.
    for (size_t j = 0; j < uops.size(); ++j) {
        switch (kinds[j]) {
          case kJmpFwd: case kJmpBack: case kCondFwd: case kCondBack:
            uops[j].aux =
                uopAt[static_cast<uint32_t>(uops[j].imm) - entry];
            break;
          case kCmpCondFwd: case kCmpCondBack:
          case kCmpImmCondFwd: case kCmpImmCondBack:
          case kAddCmpImmCondFwd: case kAddCmpImmCondBack:
            // Fused groups carry the guest target in aux (imm is the
            // compare operand).
            uops[j].aux = uopAt[uops[j].aux - entry];
            break;
          default:
            break;
        }
    }
    return sb;
#else
    (void)funcId;
    (void)entry;
    panic("threaded engine built without computed-goto support");
#endif
}

StepResult
ThreadedEngine::run(ThreadContext &ctx, MemPort &mem, Core &core,
                    Cache &l2, uint64_t maxInstrs)
{
#if XISA_THREADED_CAPABLE
    return runLoop(&ctx, &mem, &core, &l2, maxInstrs, nullptr);
#else
    return interp_.runImpl<true>(ctx, mem, core, l2, maxInstrs);
#endif
}

#if XISA_THREADED_CAPABLE

StepResult
ThreadedEngine::runLoop(ThreadContext *ctx, MemPort *mem, Core *core,
                        Cache *l2, uint64_t maxInstrs,
                        const void **capture)
{
    StepResult res;
    if (capture) {
#define X(n) capture[k##n] = &&L_##n;
        XISA_UOP_KINDS(X)
#undef X
        return res;
    }

    XISA_CHECK(ctx->isa == interp_.isa_, "thread context on wrong ISA");

    const uint32_t memPen = interp_.spec_.memPenaltyCycles;
#if XISA_TRACE
    const bool tracing = obs::traceEnabled();
    const double tsPerCycle = interp_.spec_.secondsPerCycle();
#endif
    uint64_t *const g = ctx->gpr;
    double *const f = ctx->fpr;

    uint32_t funcId = ctx->pc.funcId;
    uint32_t idx = ctx->pc.instrIdx;
    // Block-local accounting, folded into ctx/core/res only at
    // superblock exits (or deopts).
    uint64_t nInstr = 0;
    uint64_t cyc = 0;
    // Fetch-batching anchor: nInstr as of the last real L1I access (-1
    // when none is outstanding). Every instruction retired after the
    // anchor owes the L1I one memo hit -- except the anchor instruction
    // itself, whose access was real -- so the owed count is derived at
    // flush time instead of being counted per instruction.
    int64_t fetchAnchor = -1;
    uint64_t backCap = 0;
    const Uop *u = nullptr;
    const Uop *base = nullptr;
    const PreInstr *pre = nullptr;

// These helpers are macros, not lambdas, on purpose: a by-reference
// closure that ends up out-of-line forces every captured local (cyc,
// nInstr, pending -- the per-instruction accumulators) to live on the
// stack for its whole lifetime, turning the hot loop's accounting into
// memory round trips.
// Settle the owed memo hits. The caller must either re-anchor (real
// access) or fold() right afterwards -- flushing twice against the same
// anchor would double-apply the batch.
#define flushFetch() \
    do { \
        const int64_t owed_ = \
            static_cast<int64_t>(nInstr) - fetchAnchor - 1; \
        if (owed_ > 0) \
            core->l1i.bulkMemoHits(static_cast<uint64_t>(owed_)); \
    } while (0)
#define fold() \
    do { \
        ctx->instrs += nInstr; \
        ctx->cycles += cyc; \
        core->instrs += nInstr; \
        core->cycles += cyc; \
        core->busyCycles += cyc; \
        res.instrsRun += nInstr; \
        res.cyclesRun += cyc; \
        nInstr = 0; \
        cyc = 0; \
        fetchAnchor = -1; \
    } while (0)
#define note(ev, at) \
    do { \
        if (observer_) \
            observer_->onSuperblock((ev), funcId, (at), \
                                    ctx->instrs + nInstr); \
    } while (0)
#define mergeTail(r2expr) \
    do { \
        const StepResult r2 = (r2expr); \
        res.reason = r2.reason; \
        res.instrsRun += r2.instrsRun; \
        res.cyclesRun += r2.cyclesRun; \
        res.trapFuncId = r2.trapFuncId; \
        res.trapCallSite = r2.trapCallSite; \
        res.sysno = r2.sysno; \
        res.exitValue = r2.exitValue; \
    } while (0)

// Per-instruction fetch accounting: a line-start uop flushes the memo
// batch and runs the real L1I access (charging any line-crossing
// penalty to this instruction); everything else owes one more memo hit.
// Runs after the uop's TLB probes -- see the deopt invariant above.
#define FETCH() \
    do { \
        if (u->fetchReal) { \
            flushFetch(); \
            fetchAnchor = static_cast<int64_t>(nInstr); \
            cyc += accessThrough(core->l1i, *l2, pre[u->gidx].fetchAddr, \
                                 memPen); \
        } \
    } while (0)

// Generic per-instruction tail: charge the base cost, count the
// instruction, dispatch the next uop.
#define TAIL() \
    do { \
        cyc += u->cost; \
        ++nInstr; \
        ++u; \
        goto *u->label; \
    } while (0)

dispatch: {
    const std::vector<PreInstr> &ps = interp_.predecoded(funcId);
    XISA_CHECK(idx < ps.size(), "PC past end of function");
    pre = ps.data();
    const SuperBlock *b = blockAt(funcId, idx);
    if (b->len > maxInstrs - res.instrsRun - nInstr)
        goto budget_tail;
    note(SuperblockObserver::Event::Enter, idx);
    backCap = maxInstrs - res.instrsRun - b->len;
    base = b->uops.data();
    u = base;
    goto *u->label;
}

budget_tail: {
    // Too little quantum left for the block's reservation: materialize
    // state and let the reference fast loop walk the exact tail.
    flushFetch();
    fold();
    ctx->pc.funcId = funcId;
    ctx->pc.instrIdx = idx;
    const uint64_t rem = maxInstrs - res.instrsRun;
    if (rem == 0) {
        res.reason = StopReason::Budget;
        note(SuperblockObserver::Event::Exit, idx);
        return res;
    }
    note(SuperblockObserver::Event::Deopt, idx);
    mergeTail(interp_.runImpl<true>(*ctx, *mem, *core, *l2, rem));
    funcId = ctx->pc.funcId;
    note(SuperblockObserver::Event::Exit, ctx->pc.instrIdx);
    return res;
}

deopt_one: {
    // The current instruction cannot retire in-block (TLB miss, fault,
    // indirect call, ...). Nothing of it has executed yet: materialize
    // state at it and run exactly one reference step, then resume.
    flushFetch();
    fold();
    ctx->pc.funcId = funcId;
    ctx->pc.instrIdx = u->gidx;
    note(SuperblockObserver::Event::Deopt, u->gidx);
    mergeTail(interp_.runImpl<true>(*ctx, *mem, *core, *l2, 1));
    if (res.reason != StopReason::Budget) {
        funcId = ctx->pc.funcId;
        note(SuperblockObserver::Event::Exit, ctx->pc.instrIdx);
        return res;
    }
    funcId = ctx->pc.funcId;
    idx = ctx->pc.instrIdx;
    goto dispatch;
}

    // --- Straight-line ALU / FP / moves -----------------------------------

#define ALU(name, stmt) \
    L_##name: { \
        FETCH(); \
        stmt; \
        TAIL(); \
    }

ALU(Nop, (void)0)
ALU(MovImm, g[u->rd] = static_cast<uint64_t>(u->imm))
ALU(MovReg, g[u->rd] = g[u->rn])
ALU(Add, g[u->rd] = g[u->rn] + g[u->rm])
ALU(Sub, g[u->rd] = g[u->rn] - g[u->rm])
ALU(Mul, g[u->rd] = g[u->rn] * g[u->rm])
ALU(And, g[u->rd] = g[u->rn] & g[u->rm])
ALU(Orr, g[u->rd] = g[u->rn] | g[u->rm])
ALU(Eor, g[u->rd] = g[u->rn] ^ g[u->rm])
ALU(Lsl, g[u->rd] = g[u->rn] << (g[u->rm] & 63))
ALU(Lsr, g[u->rd] = g[u->rn] >> (g[u->rm] & 63))
ALU(Asr, g[u->rd] = static_cast<uint64_t>(
             static_cast<int64_t>(g[u->rn]) >> (g[u->rm] & 63)))
ALU(AddImm, g[u->rd] = g[u->rn] + static_cast<uint64_t>(u->imm))
ALU(SubImm, g[u->rd] = g[u->rn] - static_cast<uint64_t>(u->imm))
ALU(MulImm, g[u->rd] = g[u->rn] * static_cast<uint64_t>(u->imm))
ALU(AndImm, g[u->rd] = g[u->rn] & static_cast<uint64_t>(u->imm))
ALU(OrrImm, g[u->rd] = g[u->rn] | static_cast<uint64_t>(u->imm))
ALU(EorImm, g[u->rd] = g[u->rn] ^ static_cast<uint64_t>(u->imm))
ALU(LslImm, g[u->rd] = g[u->rn] << (u->imm & 63))
ALU(LsrImm, g[u->rd] = g[u->rn] >> (u->imm & 63))
ALU(AsrImm, g[u->rd] = static_cast<uint64_t>(
                static_cast<int64_t>(g[u->rn]) >> (u->imm & 63)))
ALU(Neg, g[u->rd] =
             static_cast<uint64_t>(-static_cast<int64_t>(g[u->rn])))
ALU(CSet, g[u->rd] = evalCond(u->cond, ctx->flags) ? 1 : 0)
ALU(FAdd, f[u->rd] = f[u->rn] + f[u->rm])
ALU(FSub, f[u->rd] = f[u->rn] - f[u->rm])
ALU(FMul, f[u->rd] = f[u->rn] * f[u->rm])
ALU(FDiv, f[u->rd] = f[u->rn] / f[u->rm])
ALU(FNeg, f[u->rd] = -f[u->rn])
ALU(FMovReg, f[u->rd] = f[u->rn])
ALU(FMovImm, std::memcpy(&f[u->rd], &u->imm, 8))
ALU(SCvtF, f[u->rd] = static_cast<double>(
               static_cast<int64_t>(g[u->rn])))
ALU(FCvtS, g[u->rd] = static_cast<uint64_t>(
               static_cast<int64_t>(f[u->rn])))
ALU(TlsBase, g[u->rd] = ctx->tlsBase)

#undef ALU

// Division by zero is a machine fault; the reference loop owns the
// diagnostic, so hand the instruction over untouched.
#define DIV(name, ty, expr) \
    L_##name: { \
        const ty b = static_cast<ty>(g[u->rm]); \
        if (b == 0) \
            goto deopt_one; \
        FETCH(); \
        const ty a = static_cast<ty>(g[u->rn]); \
        g[u->rd] = static_cast<uint64_t>(expr); \
        TAIL(); \
    }

DIV(SDiv, int64_t, a / b)
DIV(SRem, int64_t, a % b)
DIV(UDiv, uint64_t, a / b)
DIV(URem, uint64_t, a % b)

#undef DIV

L_Cmp: {
    FETCH();
    const int64_t a = static_cast<int64_t>(g[u->rn]);
    const int64_t b = static_cast<int64_t>(g[u->rm]);
    ctx->flags.eq = a == b;
    ctx->flags.lt = a < b;
    ctx->flags.ult = static_cast<uint64_t>(a) < static_cast<uint64_t>(b);
    TAIL();
}

L_CmpImm: {
    FETCH();
    const int64_t a = static_cast<int64_t>(g[u->rn]);
    const int64_t b = u->imm;
    ctx->flags.eq = a == b;
    ctx->flags.lt = a < b;
    ctx->flags.ult = static_cast<uint64_t>(a) < static_cast<uint64_t>(b);
    TAIL();
}

L_FCmp: {
    FETCH();
    const double a = f[u->rn];
    const double b = f[u->rm];
    if (a != a || b != b) { // isnan without the libm call
        ctx->flags = {false, false, false};
    } else {
        ctx->flags.eq = a == b;
        ctx->flags.lt = a < b;
        ctx->flags.ult = a < b;
    }
    TAIL();
}

    // --- Memory (probe the software TLB first; miss => deopt) -------------

#define LOADU(name, addrExpr, nbytes, assign) \
    L_##name: { \
        const uint64_t a = (addrExpr); \
        uint64_t v = 0; \
        if (!mem->tryRead(a, &v, nbytes)) \
            goto deopt_one; \
        FETCH(); /* after the probe, before the D-access: L1I touches \
                    the shared L2 first, as the reference does */ \
        cyc += accessThrough(core->l1d, *l2, a, memPen); \
        assign; \
        TAIL(); \
    }

LOADU(Ldr, g[u->rn] + static_cast<uint64_t>(u->imm), 8, g[u->rd] = v)
LOADU(Ldr32, g[u->rn] + static_cast<uint64_t>(u->imm), 4, g[u->rd] = v)
LOADU(LdrS32, g[u->rn] + static_cast<uint64_t>(u->imm), 4,
      g[u->rd] = static_cast<uint64_t>(
          static_cast<int64_t>(static_cast<int32_t>(v))))
LOADU(LdrB, g[u->rn] + static_cast<uint64_t>(u->imm), 1, g[u->rd] = v)
LOADU(FLdr, g[u->rn] + static_cast<uint64_t>(u->imm), 8,
      std::memcpy(&f[u->rd], &v, 8))
LOADU(LdrIdx, g[u->rn] + g[u->rm] * static_cast<uint64_t>(u->imm), 8,
      g[u->rd] = v)
LOADU(Ldr32Idx, g[u->rn] + g[u->rm] * static_cast<uint64_t>(u->imm), 4,
      g[u->rd] = v)
LOADU(LdrBIdx, g[u->rn] + g[u->rm] * static_cast<uint64_t>(u->imm), 1,
      g[u->rd] = v)
LOADU(FLdrIdx, g[u->rn] + g[u->rm] * static_cast<uint64_t>(u->imm), 8,
      std::memcpy(&f[u->rd], &v, 8))
LOADU(Pop, g[u->rn], 8, (g[u->rd] = v, g[u->rn] += 8))

#undef LOADU

#define STOREU(name, addrExpr, nbytes, valExpr) \
    L_##name: { \
        const uint64_t a = (addrExpr); \
        uint64_t v = (valExpr); \
        if (!mem->tryWrite(a, &v, nbytes)) \
            goto deopt_one; \
        FETCH(); \
        cyc += accessThrough(core->l1d, *l2, a, memPen); \
        TAIL(); \
    }

STOREU(Str, g[u->rn] + static_cast<uint64_t>(u->imm), 8, g[u->rd])
STOREU(Str32, g[u->rn] + static_cast<uint64_t>(u->imm), 4, g[u->rd])
STOREU(StrB, g[u->rn] + static_cast<uint64_t>(u->imm), 1, g[u->rd])
STOREU(FStr, g[u->rn] + static_cast<uint64_t>(u->imm), 8,
       [&] { uint64_t b; std::memcpy(&b, &f[u->rd], 8); return b; }())
STOREU(StrIdx, g[u->rn] + g[u->rm] * static_cast<uint64_t>(u->imm), 8,
       g[u->rd])
STOREU(Str32Idx, g[u->rn] + g[u->rm] * static_cast<uint64_t>(u->imm), 4,
       g[u->rd])
STOREU(StrBIdx, g[u->rn] + g[u->rm] * static_cast<uint64_t>(u->imm), 1,
       g[u->rd])
STOREU(FStrIdx, g[u->rn] + g[u->rm] * static_cast<uint64_t>(u->imm), 8,
       [&] { uint64_t b; std::memcpy(&b, &f[u->rd], 8); return b; }())

#undef STOREU

L_Push: {
    // Probe before the SP update so a deopt re-runs the instruction
    // from untouched state; rd==SP pushes the decremented value, as the
    // reference's decrement-then-store order does.
    const uint64_t nsp = g[u->rn] - 8;
    uint64_t v = u->rd == u->rn ? nsp : g[u->rd];
    if (!mem->tryWrite(nsp, &v, 8))
        goto deopt_one;
    FETCH();
    cyc += accessThrough(core->l1d, *l2, nsp, memPen);
    g[u->rn] = nsp;
    TAIL();
}

L_AtomicAdd: {
    const uint64_t a = g[u->rn];
    uint64_t old = 0;
    if (!mem->tryRead(a, &old, 8))
        goto deopt_one;
    uint64_t nv = old + g[u->rm];
    if (!mem->tryWrite(a, &nv, 8))
        goto deopt_one;
    FETCH();
    // The reference charges the D-cache for the load and the store.
    cyc += accessThrough(core->l1d, *l2, a, memPen);
    cyc += accessThrough(core->l1d, *l2, a, memPen);
    g[u->rd] = old;
    TAIL();
}

    // --- Intra-block control ----------------------------------------------

L_JmpFwd: {
    FETCH();
    cyc += u->cost;
    ++nInstr;
    u = base + u->aux;
    goto *u->label;
}

L_JmpBack: {
    FETCH();
    cyc += u->cost;
    ++nInstr;
    if (nInstr > backCap) {
        // Not enough quantum reserved for another pass: re-enter
        // dispatch at the branch target and let it re-reserve.
        idx = static_cast<uint32_t>(u->imm);
        goto dispatch;
    }
    u = base + u->aux;
    goto *u->label;
}

L_CondFwd: {
        FETCH();
    cyc += u->cost;
    ++nInstr;
    if (evalCond(u->cond, ctx->flags)) {
        u = base + u->aux;
        goto *u->label;
    }
    ++u;
    goto *u->label;
}

L_CondBack: {
        FETCH();
    cyc += u->cost;
    ++nInstr;
    if (!evalCond(u->cond, ctx->flags)) {
        ++u;
        goto *u->label;
    }
    if (nInstr > backCap) {
        idx = static_cast<uint32_t>(u->imm);
        goto dispatch;
    }
    u = base + u->aux;
    goto *u->label;
}

L_JmpExit: {
    FETCH();
    cyc += u->cost;
    ++nInstr;
    idx = static_cast<uint32_t>(u->imm);
    goto dispatch;
}

L_CondExit: {
    FETCH();
    cyc += u->cost;
    ++nInstr;
    if (evalCond(u->cond, ctx->flags)) {
        idx = static_cast<uint32_t>(u->imm);
        goto dispatch;
    }
    ++u;
    goto *u->label;
}

L_FallExit: {
    // Pseudo-uop: the range's last instruction already executed; just
    // re-enter dispatch at the fall-through index.
    idx = u->gidx;
    goto dispatch;
}

    // --- Fused compare+branch (two guest instructions per dispatch) -------
    // The flags write stays architectural (a later CSet/BCond may read
    // them); the branch decision folds out of the freshly computed
    // booleans without re-reading ctx. Costs and the retire count cover
    // both halves; the branch's I-fetch is the extra memo hit the batch
    // derivation picks up from nInstr += 2.

#define CMPBR(name, bExpr, brStmt) \
    L_##name: { \
        FETCH(); \
        const int64_t a = static_cast<int64_t>(g[u->rn]); \
        const int64_t b = (bExpr); \
        ctx->flags.eq = a == b; \
        ctx->flags.lt = a < b; \
        ctx->flags.ult = \
            static_cast<uint64_t>(a) < static_cast<uint64_t>(b); \
        cyc += u->cost; \
        nInstr += 2; \
        brStmt; \
    }

#define CMPBR_FWD \
    { \
        if (evalCond(u->cond, ctx->flags)) { \
            u = base + u->aux; \
            goto *u->label; \
        } \
        ++u; \
        goto *u->label; \
    }
#define CMPBR_BACK \
    { \
        if (!evalCond(u->cond, ctx->flags)) { \
            ++u; \
            goto *u->label; \
        } \
        if (nInstr > backCap) { \
            idx = base[u->aux].gidx; /* target uop names the guest idx */ \
            goto dispatch; \
        } \
        u = base + u->aux; \
        goto *u->label; \
    }
#define CMPBR_EXIT \
    { \
        if (evalCond(u->cond, ctx->flags)) { \
            idx = u->aux; \
            goto dispatch; \
        } \
        ++u; \
        goto *u->label; \
    }

CMPBR(CmpCondFwd, static_cast<int64_t>(g[u->rm]), CMPBR_FWD)
CMPBR(CmpCondBack, static_cast<int64_t>(g[u->rm]), CMPBR_BACK)
CMPBR(CmpCondExit, static_cast<int64_t>(g[u->rm]), CMPBR_EXIT)
CMPBR(CmpImmCondFwd, u->imm, CMPBR_FWD)
CMPBR(CmpImmCondBack, u->imm, CMPBR_BACK)
CMPBR(CmpImmCondExit, u->imm, CMPBR_EXIT)

    // Fused loop closer: induction step, compare on the new value,
    // branch. Three guest instructions per dispatch.

#define ADDCMPBR(name, brStmt) \
    L_##name: { \
        FETCH(); \
        const uint64_t nv = \
            g[u->rn] + static_cast<uint64_t>(static_cast<int64_t>( \
                           static_cast<int8_t>(u->rm))); \
        g[u->rd] = nv; \
        const int64_t a = static_cast<int64_t>(nv); \
        const int64_t b = u->imm; \
        ctx->flags.eq = a == b; \
        ctx->flags.lt = a < b; \
        ctx->flags.ult = \
            static_cast<uint64_t>(a) < static_cast<uint64_t>(b); \
        cyc += u->cost; \
        nInstr += 3; \
        brStmt; \
    }

ADDCMPBR(AddCmpImmCondFwd, CMPBR_FWD)
ADDCMPBR(AddCmpImmCondBack, CMPBR_BACK)
ADDCMPBR(AddCmpImmCondExit, CMPBR_EXIT)

#undef ADDCMPBR
#undef CMPBR_EXIT
#undef CMPBR_BACK
#undef CMPBR_FWD
#undef CMPBR

    // --- Calls and returns (counted, self-fetching) -----------------------

L_CallLink: {
    flushFetch();
    fetchAnchor = static_cast<int64_t>(nInstr);
    cyc += u->cost +
           accessThrough(core->l1i, *l2, pre[u->gidx].fetchAddr, memPen);
    g[u->rn] = static_cast<uint64_t>(u->imm); // link register := RA
    ++nInstr;
    funcId = u->aux;
    idx = 0;
    goto dispatch;
}

L_CallPush: {
    const uint64_t nsp = g[u->rn] - 8;
    uint64_t ra = static_cast<uint64_t>(u->imm);
    if (!mem->tryWrite(nsp, &ra, 8))
        goto deopt_one;
    flushFetch();
    fetchAnchor = static_cast<int64_t>(nInstr);
    cyc += u->cost +
           accessThrough(core->l1i, *l2, pre[u->gidx].fetchAddr, memPen);
    cyc += accessThrough(core->l1d, *l2, nsp, memPen);
    g[u->rn] = nsp;
    ++nInstr;
    funcId = u->aux;
    idx = 0;
    goto dispatch;
}

L_RetLink: {
    flushFetch();
    fetchAnchor = static_cast<int64_t>(nInstr);
    cyc += u->cost +
           accessThrough(core->l1i, *l2, pre[u->gidx].fetchAddr, memPen);
    ++nInstr;
    const uint64_t ra = g[u->rn];
    if (ra == vm::kThreadExitAddr) {
        fold();
        ctx->pc.funcId = funcId;
        ctx->pc.instrIdx = u->gidx + 1;
        res.exitValue = g[u->rm];
        res.reason = StopReason::Halt;
        note(SuperblockObserver::Event::Exit, u->gidx + 1);
        return res;
    }
    const CodeLoc loc = interp_.codeMap_.resolve(ra);
    funcId = loc.funcId;
    idx = loc.instrIdx;
    goto dispatch;
}

L_RetPop: {
    const uint64_t sp = g[u->rn];
    uint64_t ra = 0;
    if (!mem->tryRead(sp, &ra, 8))
        goto deopt_one;
    flushFetch();
    fetchAnchor = static_cast<int64_t>(nInstr);
    cyc += u->cost +
           accessThrough(core->l1i, *l2, pre[u->gidx].fetchAddr, memPen);
    cyc += accessThrough(core->l1d, *l2, sp, memPen);
    g[u->rn] = sp + 8;
    ++nInstr;
    if (ra == vm::kThreadExitAddr) {
        fold();
        ctx->pc.funcId = funcId;
        ctx->pc.instrIdx = u->gidx + 1;
        res.exitValue = g[u->rm];
        res.reason = StopReason::Halt;
        note(SuperblockObserver::Event::Exit, u->gidx + 1);
        return res;
    }
    const CodeLoc loc = interp_.codeMap_.resolve(ra);
    funcId = loc.funcId;
    idx = loc.instrIdx;
    goto dispatch;
}

    // --- Slice-ending exits ------------------------------------------------
    // Traps leave the PC AT the trapping instruction and charge nothing
    // for it, but its real I-fetch has already gone through the cache
    // model -- mirror both halves of that contract.

L_Hlt: {
    flushFetch();
    cyc += u->cost +
           accessThrough(core->l1i, *l2, pre[u->gidx].fetchAddr, memPen);
    ++nInstr;
    fold();
    ctx->pc.funcId = funcId;
    ctx->pc.instrIdx = u->gidx + 1;
    res.exitValue = g[u->rn];
    res.reason = StopReason::Halt;
    note(SuperblockObserver::Event::Exit, u->gidx + 1);
    return res;
}

L_MigTrap: {
    flushFetch();
    [[maybe_unused]] const uint32_t p = accessThrough(
        core->l1i, *l2, pre[u->gidx].fetchAddr, memPen);
#if XISA_TRACE
    if (tracing)
        obs::Tracer::global().instant(
            obs::traceCursor().track, "interp", "migpoint_hit",
            static_cast<double>(core->cycles + cyc + u->cost + p) *
                tsPerCycle);
#endif
    fold();
    ctx->pc.funcId = funcId;
    ctx->pc.instrIdx = u->gidx;
    res.trapCallSite = u->aux;
    res.reason = StopReason::MigrateTrap;
    note(SuperblockObserver::Event::Exit, u->gidx);
    return res;
}

L_BuiltinTrap: {
    flushFetch();
    accessThrough(core->l1i, *l2, pre[u->gidx].fetchAddr, memPen);
    fold();
    ctx->pc.funcId = funcId;
    ctx->pc.instrIdx = u->gidx;
    res.trapFuncId = u->aux;
    res.trapCallSite = static_cast<uint32_t>(u->imm);
    res.reason = StopReason::BuiltinTrap;
    note(SuperblockObserver::Event::Exit, u->gidx);
    return res;
}

L_SysTrap: {
    flushFetch();
    accessThrough(core->l1i, *l2, pre[u->gidx].fetchAddr, memPen);
    fold();
    ctx->pc.funcId = funcId;
    ctx->pc.instrIdx = u->gidx;
    res.sysno = u->imm;
    res.reason = StopReason::Syscall;
    note(SuperblockObserver::Event::Exit, u->gidx);
    return res;
}

L_Delegate:
    // Indirect calls (code-map resolve + possible builtin trap) run on
    // the reference engine one instruction at a time.
    goto deopt_one;

#undef TAIL
#undef FETCH
#undef flushFetch
#undef fold
#undef note
#undef mergeTail
}

#endif // XISA_THREADED_CAPABLE

} // namespace xisa
