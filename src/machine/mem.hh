/**
 * @file
 * Simulated byte-addressable memory.
 *
 * SimMemory is one node's physical backing store: a sparse map of 4 KiB
 * pages allocated on first touch. MemPort is the access interface the
 * interpreters use; LocalMemPort binds directly to a SimMemory (single-
 * node execution), while dsm/DsmSpace provides ports that run the hDSM
 * coherence protocol between nodes and charge transfer latency.
 *
 * Every MemPort carries a small direct-mapped software TLB (DESIGN.md
 * §7): a cache of vpage -> host-page-pointer translations that the
 * interpreter probes inline (tryRead/tryWrite) before paying the
 * virtual call. Concrete ports install entries from their slow paths
 * only for pages whose accesses are free and side-effect-less (no
 * protocol action, no charged cycles, no stat bumps), so a hit is
 * exactly equivalent to the slow path. Whoever changes a page's
 * residency or rights must invalidate (tlbDropPage/tlbDropWrite/
 * tlbFlush) -- the hDSM directory does this on page steal,
 * invalidation, and drop.
 */

#ifndef XISA_MACHINE_MEM_HH
#define XISA_MACHINE_MEM_HH

#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "binary/multibinary.hh" // for vm::kPageSize
#include "util/env.hh"

namespace xisa {

/** Sparse paged memory; pages materialize zero-filled on first touch. */
class SimMemory
{
  public:
    /** Pointer to the byte at `addr`, allocating its page if needed. */
    uint8_t *at(uint64_t addr);
    /** True if the page containing `addr` exists. */
    bool hasPage(uint64_t vpage) const;
    /** Raw page pointer (allocating); `vpage` is addr / kPageSize. */
    uint8_t *page(uint64_t vpage);
    /** Discard a page (used by hDSM invalidation). Any MemPort TLB
     *  entry pointing at the page must be dropped by the caller. */
    void dropPage(uint64_t vpage);
    /** Number of resident pages. */
    size_t residentPages() const { return pages_.size(); }

    /** Page bytes if resident, nullptr otherwise. Never allocates --
     *  safe for auditors that must not perturb residency. */
    const uint8_t *
    peekPage(uint64_t vpage) const
    {
        auto it = pages_.find(vpage);
        return it == pages_.end() ? nullptr : it->second.data();
    }

    /** Cross-page-safe bulk copy out of memory. */
    void read(uint64_t addr, void *dst, size_t n);
    /** Cross-page-safe bulk copy into memory. */
    void write(uint64_t addr, const void *src, size_t n);

    /** All resident pages, keyed by virtual page number (snapshots). */
    const std::unordered_map<uint64_t, std::vector<uint8_t>> &
    pageMap() const
    {
        return pages_;
    }

  private:
    std::unordered_map<uint64_t, std::vector<uint8_t>> pages_;
};

/**
 * Abstract memory access path used by the interpreters. read()/write()
 * return the extra latency (cycles) the access incurred beyond the
 * cache model. tryRead()/tryWrite() are the inline TLB fast path: they
 * succeed only when the translation is cached, in which case the access
 * is free (0 extra cycles) and has no protocol side effects.
 */
class MemPort
{
  public:
    virtual ~MemPort() = default;
    virtual uint64_t read(uint64_t addr, void *dst, unsigned n) = 0;
    virtual uint64_t write(uint64_t addr, const void *src, unsigned n) = 0;

    // --- Software TLB (direct-mapped, per port) ------------------------

    static constexpr unsigned kTlbBits = 10;
    static constexpr unsigned kTlbSize = 1u << kTlbBits;
    static constexpr uint64_t kNoPage = ~0ull;

    /**
     * TLB probe for a load. Returns true and fills `dst` iff the page
     * is cached readable and [addr, addr+n) does not cross the page.
     */
    bool
    tryRead(uint64_t addr, void *dst, unsigned n)
    {
        const uint64_t vpage = addr / vm::kPageSize;
        const uint64_t off = addr % vm::kPageSize;
        const TlbEntry &e = readTlb_[vpage & (kTlbSize - 1)];
        if (e.vpage != vpage || off + n > vm::kPageSize)
            return false;
        std::memcpy(dst, e.base + off, n);
        return true;
    }

    /** TLB probe for a store; cached-writable same-page accesses only. */
    bool
    tryWrite(uint64_t addr, const void *src, unsigned n)
    {
        const uint64_t vpage = addr / vm::kPageSize;
        const uint64_t off = addr % vm::kPageSize;
        const TlbEntry &e = writeTlb_[vpage & (kTlbSize - 1)];
        if (e.vpage != vpage || off + n > vm::kPageSize)
            return false;
        std::memcpy(e.base + off, src, n);
        return true;
    }

    /** Drop both translations for `vpage` (page stolen or freed). */
    void
    tlbDropPage(uint64_t vpage)
    {
        TlbEntry &r = readTlb_[vpage & (kTlbSize - 1)];
        if (r.vpage == vpage)
            r = TlbEntry{};
        tlbDropWrite(vpage);
    }

    /** Drop only the write translation (Modified -> Shared downgrade). */
    void
    tlbDropWrite(uint64_t vpage)
    {
        TlbEntry &w = writeTlb_[vpage & (kTlbSize - 1)];
        if (w.vpage == vpage)
            w = TlbEntry{};
    }

    /** Drop every cached translation (migration, snapshot restore). */
    void
    tlbFlush()
    {
        for (TlbEntry &e : readTlb_)
            e = TlbEntry{};
        for (TlbEntry &e : writeTlb_)
            e = TlbEntry{};
    }

    // --- Read-only probes (invariant auditing / tests) -----------------

    /** Cached read translation for `vpage`, or nullptr. */
    const uint8_t *
    tlbReadBase(uint64_t vpage) const
    {
        const TlbEntry &e = readTlb_[vpage & (kTlbSize - 1)];
        return e.vpage == vpage ? e.base : nullptr;
    }

    /** Cached write translation for `vpage`, or nullptr. */
    const uint8_t *
    tlbWriteBase(uint64_t vpage) const
    {
        const TlbEntry &e = writeTlb_[vpage & (kTlbSize - 1)];
        return e.vpage == vpage ? e.base : nullptr;
    }

  protected:
    struct TlbEntry {
        uint64_t vpage = kNoPage; ///< tag; kNoPage marks an empty slot
        uint8_t *base = nullptr;  ///< host pointer to the 4 KiB page
    };

    void
    tlbInstallRead(uint64_t vpage, uint8_t *base)
    {
        readTlb_[vpage & (kTlbSize - 1)] = {vpage, base};
    }

    void
    tlbInstallWrite(uint64_t vpage, uint8_t *base)
    {
        writeTlb_[vpage & (kTlbSize - 1)] = {vpage, base};
    }

  private:
    TlbEntry readTlb_[kTlbSize];
    TlbEntry writeTlb_[kTlbSize];
};

/** MemPort bound directly to one SimMemory; zero extra latency.
 *  Contract: a caller that drops pages from the underlying SimMemory
 *  must tlbFlush() this port. */
class LocalMemPort : public MemPort
{
  public:
    explicit LocalMemPort(SimMemory &mem)
        : mem_(mem), tlbEnabled_(!slowPathRequested())
    {}

    uint64_t
    read(uint64_t addr, void *dst, unsigned n) override
    {
        mem_.read(addr, dst, n);
        install(addr / vm::kPageSize);
        return 0;
    }

    uint64_t
    write(uint64_t addr, const void *src, unsigned n) override
    {
        mem_.write(addr, src, n);
        install(addr / vm::kPageSize);
        return 0;
    }

  private:
    void
    install(uint64_t vpage)
    {
        if (!tlbEnabled_)
            return;
        // Local memory grants full rights; cache both translations.
        uint8_t *base = mem_.page(vpage);
        tlbInstallRead(vpage, base);
        tlbInstallWrite(vpage, base);
    }

    SimMemory &mem_;
    bool tlbEnabled_;
};

} // namespace xisa

#endif // XISA_MACHINE_MEM_HH
