/**
 * @file
 * Simulated byte-addressable memory.
 *
 * SimMemory is one node's physical backing store: a sparse map of 4 KiB
 * pages allocated on first touch. MemPort is the access interface the
 * interpreters use; LocalMemPort binds directly to a SimMemory (single-
 * node execution), while dsm/DsmSpace provides ports that run the hDSM
 * coherence protocol between nodes and charge transfer latency.
 */

#ifndef XISA_MACHINE_MEM_HH
#define XISA_MACHINE_MEM_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "binary/multibinary.hh" // for vm::kPageSize

namespace xisa {

/** Sparse paged memory; pages materialize zero-filled on first touch. */
class SimMemory
{
  public:
    /** Pointer to the byte at `addr`, allocating its page if needed. */
    uint8_t *at(uint64_t addr);
    /** True if the page containing `addr` exists. */
    bool hasPage(uint64_t vpage) const;
    /** Raw page pointer (allocating); `vpage` is addr / kPageSize. */
    uint8_t *page(uint64_t vpage);
    /** Discard a page (used by hDSM invalidation). */
    void dropPage(uint64_t vpage);
    /** Number of resident pages. */
    size_t residentPages() const { return pages_.size(); }

    /** Cross-page-safe bulk copy out of memory. */
    void read(uint64_t addr, void *dst, size_t n);
    /** Cross-page-safe bulk copy into memory. */
    void write(uint64_t addr, const void *src, size_t n);

    /** All resident pages, keyed by virtual page number (snapshots). */
    const std::unordered_map<uint64_t, std::vector<uint8_t>> &
    pageMap() const
    {
        return pages_;
    }

  private:
    std::unordered_map<uint64_t, std::vector<uint8_t>> pages_;
};

/** Abstract memory access path used by the interpreters. Returns the
 *  extra latency (cycles) the access incurred beyond the cache model. */
class MemPort
{
  public:
    virtual ~MemPort() = default;
    virtual uint64_t read(uint64_t addr, void *dst, unsigned n) = 0;
    virtual uint64_t write(uint64_t addr, const void *src, unsigned n) = 0;

    // Convenience typed accessors.
    uint64_t
    load64(uint64_t addr, uint64_t &extra)
    {
        uint64_t v = 0;
        extra += read(addr, &v, 8);
        return v;
    }
    void
    store64(uint64_t addr, uint64_t v, uint64_t &extra)
    {
        extra += write(addr, &v, 8);
    }
};

/** MemPort bound directly to one SimMemory; zero extra latency. */
class LocalMemPort : public MemPort
{
  public:
    explicit LocalMemPort(SimMemory &mem) : mem_(mem) {}

    uint64_t
    read(uint64_t addr, void *dst, unsigned n) override
    {
        mem_.read(addr, dst, n);
        return 0;
    }

    uint64_t
    write(uint64_t addr, const void *src, unsigned n) override
    {
        mem_.write(addr, src, n);
        return 0;
    }

  private:
    SimMemory &mem_;
};

} // namespace xisa

#endif // XISA_MACHINE_MEM_HH
