#include "machine/node.hh"

namespace xisa {

namespace {

/** Fill a cost table from a small set of class costs. */
std::array<uint8_t, static_cast<size_t>(MOp::NumOps)>
makeCosts(uint8_t alu, uint8_t mul, uint8_t div, uint8_t fp, uint8_t fdiv,
          uint8_t mem, uint8_t branch, uint8_t atomic, uint8_t sys)
{
    std::array<uint8_t, static_cast<size_t>(MOp::NumOps)> c{};
    auto set = [&](MOp op, uint8_t v) {
        c[static_cast<size_t>(op)] = v;
    };
    for (size_t i = 0; i < c.size(); ++i)
        c[i] = alu; // default
    set(MOp::Mul, mul);
    set(MOp::MulImm, mul);
    set(MOp::SDiv, div);
    set(MOp::UDiv, div);
    set(MOp::SRem, div);
    set(MOp::URem, div);
    set(MOp::FAdd, fp);
    set(MOp::FSub, fp);
    set(MOp::FMul, fp);
    set(MOp::FNeg, alu);
    set(MOp::FMovReg, alu);
    set(MOp::FMovImm, alu);
    set(MOp::FCmp, fp);
    set(MOp::SCvtF, fp);
    set(MOp::FCvtS, fp);
    set(MOp::FDiv, fdiv);
    for (MOp op : {MOp::Ldr, MOp::Ldr32, MOp::LdrS32, MOp::LdrB,
                   MOp::Str, MOp::Str32, MOp::StrB, MOp::FLdr, MOp::FStr,
                   MOp::LdrIdx, MOp::Ldr32Idx, MOp::LdrBIdx, MOp::StrIdx,
                   MOp::Str32Idx, MOp::StrBIdx, MOp::FLdrIdx,
                   MOp::FStrIdx, MOp::Push, MOp::Pop})
        set(op, mem);
    for (MOp op : {MOp::B, MOp::BCond, MOp::Bl, MOp::Blr, MOp::Ret})
        set(op, branch);
    set(MOp::AtomicAdd, atomic);
    set(MOp::SysCall, sys);
    set(MOp::Hlt, 1);
    set(MOp::Nop, 1);
    return c;
}

} // namespace

NodeSpec
makeXenoServer()
{
    NodeSpec s;
    s.name = "xeno-e5";
    s.isa = IsaId::Xeno64;
    s.cores = 6;
    s.freqGHz = 3.5;
    s.l1i = {32 * 1024, 8, 64, 8};
    s.l1d = {32 * 1024, 8, 64, 8};
    s.l2 = {1024 * 1024, 16, 64, 22};
    s.memPenaltyCycles = 180;
    // Wide out-of-order core: most ops retire in ~1 effective cycle.
    s.opCost = makeCosts(/*alu=*/1, /*mul=*/3, /*div=*/18, /*fp=*/3,
                         /*fdiv=*/14, /*mem=*/1, /*branch=*/1,
                         /*atomic=*/8, /*sys=*/60);
    s.idleWatts = 42.0;
    s.maxWatts = 118.0;
    return s;
}

NodeSpec
makeAetherServer()
{
    NodeSpec s;
    s.name = "aether-xgene";
    s.isa = IsaId::Aether64;
    s.cores = 8;
    s.freqGHz = 2.4;
    s.l1i = {32 * 1024, 8, 64, 10};
    s.l1d = {32 * 1024, 8, 64, 10};
    s.l2 = {256 * 1024, 8, 64, 30};
    s.memPenaltyCycles = 220;
    // Narrow in-order core: roughly 2x the per-op cost of the Xeon.
    s.opCost = makeCosts(/*alu=*/2, /*mul=*/5, /*div=*/28, /*fp=*/5,
                         /*fdiv=*/24, /*mem=*/2, /*branch=*/2,
                         /*atomic=*/12, /*sys=*/80);
    s.idleWatts = 48.0;
    s.maxWatts = 72.0;
    return s;
}

} // namespace xisa
