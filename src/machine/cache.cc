#include "machine/cache.hh"

#include <bit>

#include "util/logging.hh"

namespace xisa {

Cache::Cache(const CacheConfig &cfg) : cfg_(cfg)
{
    if (cfg.lineBytes == 0 || (cfg.lineBytes & (cfg.lineBytes - 1)))
        fatal("cache line size must be a power of two");
    if (cfg.assoc == 0 || cfg.sizeBytes % (cfg.lineBytes * cfg.assoc))
        fatal("cache size must be a multiple of lineBytes * assoc");
    numSets_ = cfg.sizeBytes / (cfg.lineBytes * cfg.assoc);
    lineShift_ = static_cast<uint32_t>(std::countr_zero(cfg.lineBytes));
    lines_.assign(static_cast<size_t>(numSets_) * cfg.assoc, Line{});
}

void
Cache::registerStats(obs::StatRegistry &reg, const std::string &prefix)
{
    reg.attach(prefix + ".accesses", accesses_);
    reg.attach(prefix + ".misses", misses_);
}

uint32_t
Cache::accessSlow(uint64_t lineAddr)
{
    ++accesses_;
    ++clock_;
    uint32_t set = static_cast<uint32_t>(lineAddr % numSets_);
    uint64_t tag = lineAddr / numSets_;
    Line *base = &lines_[static_cast<size_t>(set) * cfg_.assoc];
    Line *victim = base;
    for (uint32_t w = 0; w < cfg_.assoc; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = clock_;
            lastLineAddr_ = lineAddr;
            lastLine_ = &line;
            return 0;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }
    ++misses_;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = clock_;
    lastLineAddr_ = lineAddr;
    lastLine_ = victim;
    return cfg_.missPenalty;
}

void
Cache::flush()
{
    for (Line &line : lines_)
        line.valid = false;
    lastLineAddr_ = ~0ull;
    lastLine_ = nullptr;
}

} // namespace xisa
