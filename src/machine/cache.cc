#include "machine/cache.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"

namespace xisa {

Cache::Cache(const CacheConfig &cfg) : cfg_(cfg)
{
    if (cfg.lineBytes == 0 || (cfg.lineBytes & (cfg.lineBytes - 1)))
        fatal("cache line size must be a power of two");
    if (cfg.assoc == 0 || cfg.sizeBytes % (cfg.lineBytes * cfg.assoc))
        fatal("cache size must be a multiple of lineBytes * assoc");
    numSets_ = cfg.sizeBytes / (cfg.lineBytes * cfg.assoc);
    lineShift_ = static_cast<uint32_t>(std::countr_zero(cfg.lineBytes));
    pow2Sets_ = (numSets_ & (numSets_ - 1)) == 0;
    if (pow2Sets_) {
        setShift_ = static_cast<uint32_t>(std::countr_zero(numSets_));
        setMask_ = numSets_ - 1;
    }
    tags_.assign(static_cast<size_t>(numSets_) * cfg.assoc, ~0ull);
    lastUse_.assign(static_cast<size_t>(numSets_) * cfg.assoc, 0);
}

void
Cache::registerStats(obs::StatRegistry &reg, const std::string &prefix)
{
    reg.attach(prefix + ".accesses", accesses_);
    reg.attach(prefix + ".misses", misses_);
}

uint32_t
Cache::accessSlow(uint64_t lineAddr)
{
    ++accesses_;
    ++clock_;
    uint32_t set;
    uint64_t tag;
    if (pow2Sets_) {
        set = static_cast<uint32_t>(lineAddr & setMask_);
        tag = lineAddr >> setShift_;
    } else {
        set = static_cast<uint32_t>(lineAddr % numSets_);
        tag = lineAddr / numSets_;
    }
    uint64_t *const tagBase = &tags_[static_cast<size_t>(set) * cfg_.assoc];
    uint64_t *const useBase =
        &lastUse_[static_cast<size_t>(set) * cfg_.assoc];
    // Hit probe: a pure tag compare. Invalid ways always carry the
    // reserved tag ~0 (constructor and flush() both restore it), which
    // no reachable line address produces, so no validity check is
    // needed and the scan touches only the tag array.
    for (uint32_t w = 0; w < cfg_.assoc; ++w) {
        if (tagBase[w] == tag) {
            useBase[w] = clock_;
            memo_[lineAddr & (kMemoSize - 1)] = {lineAddr, &useBase[w]};
            lastUsePtr_ = &useBase[w];
            return 0;
        }
    }
    ++misses_;
    // Victim selection (must stay bit-identical to the historical
    // single-pass scan): the last invalid way if any way is invalid,
    // otherwise the first way holding the minimum LRU stamp.
    uint32_t victim = 0;
    for (uint32_t w = 1; w < cfg_.assoc; ++w) {
        if (useBase[w] == 0) {
            victim = w;
        } else if (useBase[victim] != 0 && useBase[w] < useBase[victim]) {
            victim = w;
        }
    }
    // The evicted line may still be named by a memo slot; drop it so a
    // later access cannot memo-hit a line that is no longer resident.
    if (useBase[victim] != 0) {
        uint64_t evicted = pow2Sets_
                               ? (tagBase[victim] << setShift_) | set
                               : tagBase[victim] * numSets_ + set;
        MemoEntry &ev = memo_[evicted & (kMemoSize - 1)];
        if (ev.lineAddr == evicted)
            ev = MemoEntry{};
    }
    tagBase[victim] = tag;
    useBase[victim] = clock_;
    memo_[lineAddr & (kMemoSize - 1)] = {lineAddr, &useBase[victim]};
    lastUsePtr_ = &useBase[victim];
    return cfg_.missPenalty;
}

void
Cache::flush()
{
    std::fill(lastUse_.begin(), lastUse_.end(), 0);
    std::fill(tags_.begin(), tags_.end(), ~0ull);
    for (MemoEntry &m : memo_)
        m = MemoEntry{};
    lastUsePtr_ = nullptr;
}

} // namespace xisa
