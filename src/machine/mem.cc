#include "machine/mem.hh"

#include <algorithm>
#include <cstring>

namespace xisa {

uint8_t *
SimMemory::at(uint64_t addr)
{
    return page(addr / vm::kPageSize) + addr % vm::kPageSize;
}

bool
SimMemory::hasPage(uint64_t vpage) const
{
    return pages_.count(vpage) != 0;
}

uint8_t *
SimMemory::page(uint64_t vpage)
{
    auto it = pages_.find(vpage);
    if (it == pages_.end())
        it = pages_.emplace(vpage,
                            std::vector<uint8_t>(vm::kPageSize, 0)).first;
    return it->second.data();
}

void
SimMemory::dropPage(uint64_t vpage)
{
    pages_.erase(vpage);
}

void
SimMemory::read(uint64_t addr, void *dst, size_t n)
{
    uint64_t off = addr % vm::kPageSize;
    if (off + n <= vm::kPageSize) {
        // Page-contiguous run: one lookup, one memcpy.
        std::memcpy(dst, page(addr / vm::kPageSize) + off, n);
        return;
    }
    uint8_t *d = static_cast<uint8_t *>(dst);
    while (n > 0) {
        size_t chunk = std::min<size_t>(n, vm::kPageSize - off);
        std::memcpy(d, page(addr / vm::kPageSize) + off, chunk);
        addr += chunk;
        d += chunk;
        n -= chunk;
        off = 0;
    }
}

void
SimMemory::write(uint64_t addr, const void *src, size_t n)
{
    uint64_t off = addr % vm::kPageSize;
    if (off + n <= vm::kPageSize) {
        std::memcpy(page(addr / vm::kPageSize) + off, src, n);
        return;
    }
    const uint8_t *s = static_cast<const uint8_t *>(src);
    while (n > 0) {
        size_t chunk = std::min<size_t>(n, vm::kPageSize - off);
        std::memcpy(page(addr / vm::kPageSize) + off, s, chunk);
        addr += chunk;
        s += chunk;
        n -= chunk;
        off = 0;
    }
}

} // namespace xisa
