/**
 * @file
 * Superblock threaded-code execution engine (DESIGN.md §10).
 *
 * The PR 3 fast path predecodes but still pays one dispatch round trip
 * (switch + per-instruction bookkeeping) per guest instruction. This
 * engine goes the rest of the way: straight-line guest code -- basic
 * blocks chained across direct branches, with migration points, calls,
 * indirect branches and other potential-faulting ops lowered as exit
 * micro-ops -- is discovered once per (function, entry) and compiled
 * into a dense micro-op array executed by a computed-goto threaded
 * dispatch loop. Guest-visible interpreter state (PC, instruction and
 * cycle accounting) is materialized only at superblock exits; anything
 * the micro-ops cannot complete byte-identically (software-TLB miss,
 * page-crossing access, indirect call, budget boundary, machine fault)
 * deoptimizes by materializing that state at the precise guest
 * instruction and resuming the reference fast engine
 * (Interp::runImpl<kFast>) there.
 *
 * The engine is observationally invisible: stdout, stats snapshots,
 * trace streams and final memory images are byte-identical to both
 * XISA_THREADED=0 (plain fast path) and XISA_SLOW_PATH=1 (reference
 * path), enforced by tests/test_fastpath.cc and the FastSlowFuzz
 * differential. It therefore keeps NO registry-attached stats of its
 * own -- a threaded-only counter would break snapshot equality.
 *
 * Computed goto is a GNU extension; on other compilers (and under
 * XISA_THREADED=0) Interp never constructs the engine and everything
 * falls back to runImpl<kFast>.
 */

#ifndef XISA_MACHINE_INTERP_THREADED_HH
#define XISA_MACHINE_INTERP_THREADED_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "machine/interp.hh"

#if defined(__GNUC__) || defined(__clang__)
#define XISA_THREADED_CAPABLE 1
#else
#define XISA_THREADED_CAPABLE 0
#endif

namespace xisa {

/**
 * One micro-op of a lowered superblock (32 bytes, half an I-line, so
 * straight-line dispatch streams two uops per line). `label` is the
 * computed-goto handler address -- process-wide, since the dispatch
 * loop is a single function, so lowered blocks are shareable across
 * engines and threads. The remaining fields are the operands the
 * handler needs, pre-resolved at lowering time (including ABI registers
 * like SP/LR baked into rn/rm) so the hot loop never consults the
 * MachInstr or the AbiInfo again.
 *
 * Each instruction uop accounts for its own I-fetch: `fetchReal` marks
 * the first instruction executed on a new I-line (block entries, join
 * targets, line crossings), which flushes the batched memo hits and
 * runs a real cache access; everything else just owes one more memo
 * hit. Crucially the fetch runs AFTER the uop's TLB probes, so a
 * deoptimizing instruction has mutated nothing -- the reference step
 * that replays it performs the one and only fetch.
 */
struct Uop {
    const void *label = nullptr;
    uint8_t rd = 0;
    uint8_t rn = 0;
    uint8_t rm = 0;
    uint8_t cost = 0;      ///< NodeSpec::cost of the guest op
    Cond cond = Cond::Always;
    uint8_t fetchReal = 0; ///< 1: flush batch + real L1I access
    uint8_t pad_[2] = {};
    uint32_t aux = 0;   ///< intra-block uop index / callee id / site id
    uint32_t gidx = 0;  ///< guest instruction index (deopt, PC, faults)
    int64_t imm = 0;    ///< immediate / scale / guest target / RA
};

/**
 * One lowered superblock: single entry, multiple exits. `len` is the
 * guest range length, which upper-bounds the instructions executed
 * between budget checks -- the budget contract: a block is entered (and
 * a backward edge taken) only while at least `len` instructions of
 * quantum remain, so the dispatch loop needs no per-instruction check.
 */
struct SuperBlock {
    std::vector<Uop> uops;
    uint32_t entry = 0;
    uint32_t len = 0;
};

/**
 * Observer of superblock-boundary events (the invariant auditor's
 * probe). Fired on block entry, on every deoptimization to the
 * reference engine, and at run()-slice exit; `instrsNow` is the
 * thread's live instruction count including unmaterialized block-local
 * progress, so within one run() slice it must be non-decreasing --
 * the auditor checks exactly that contract.
 */
class SuperblockObserver
{
  public:
    enum class Event : uint8_t {
        Enter, ///< dispatch entered a superblock at (funcId, instrIdx)
        Deopt, ///< state materialized, resuming runImpl at instrIdx
        Exit,  ///< run() slice returning; state fully materialized
    };
    virtual ~SuperblockObserver() = default;
    virtual void onSuperblock(Event ev, uint32_t funcId,
                              uint32_t instrIdx, uint64_t instrsNow) = 0;
};

/**
 * Everything a predecoded stream or lowered superblock bakes in from
 * the node's timing model: per-op costs, the I-line geometry that
 * marks line-start fetches, the memory penalty, and the ISA. Two nodes
 * with equal signatures produce bit-identical artifacts, which is what
 * lets ExecCache share them across sweep configurations.
 */
uint64_t execTimingSig(const NodeSpec &spec);

/**
 * Shared cache of predecoded streams and lowered superblocks. Both are
 * keyed only by (binary, ISA, function) plus the timing signature, so
 * sweep drivers running one binary across many configs share one cache
 * instead of redecoding per config (bench::runSweep hands one to every
 * ReplicatedOS via OsConfig::execCache). The first claimant of an ISA
 * slot fixes its signature; an instance whose signature differs simply
 * bypasses the cache. Thread-safe; entries are immutable once stored.
 */
class ExecCache
{
  public:
    using PrePtr = std::shared_ptr<const std::vector<PreInstr>>;
    using BlockPtr = std::shared_ptr<const SuperBlock>;

    /** Cached predecoded stream, or null (absent / signature clash). */
    PrePtr pre(IsaId isa, uint32_t funcId, uint64_t sig);
    /** Store `p`; returns the canonical entry (first store wins). */
    PrePtr setPre(IsaId isa, uint32_t funcId, uint64_t sig, PrePtr p);
    /** Cached superblock, or null (absent / signature clash). */
    BlockPtr block(IsaId isa, uint32_t funcId, uint32_t entry,
                   uint64_t sig);
    /** Store `b`; returns the canonical entry (first store wins). */
    BlockPtr setBlock(IsaId isa, uint32_t funcId, uint32_t entry,
                      uint64_t sig, BlockPtr b);

  private:
    struct IsaSlot {
        bool sigSet = false;
        uint64_t sig = 0;
        std::vector<PrePtr> pre;                   ///< [funcId]
        std::vector<std::vector<BlockPtr>> blocks; ///< [funcId][entry]
    };
    /** Slot for `isa` if `sig` matches (claiming if unset), else null. */
    IsaSlot *slot(IsaId isa, uint64_t sig);

    std::mutex mu_;
    IsaSlot isa_[kNumIsas];
};

/**
 * The threaded dispatch engine of one Interp. Owns the per-function
 * superblock indexes and the computed-goto run loop; delegates anything
 * it cannot retire byte-identically to Interp::runImpl<kFast>. All stat
 * handles it touches (core caches, shared L2) are direct object
 * references resolved before dispatch -- superblock exits never pay a
 * registry map probe.
 *
 * The class is declared unconditionally (Interp holds a unique_ptr to
 * it on every compiler); without XISA_THREADED_CAPABLE, run() is a
 * plain passthrough to runImpl<kFast> and Interp never constructs one.
 */
class ThreadedEngine
{
  public:
    explicit ThreadedEngine(Interp &interp);

    /** Drop-in replacement for Interp::runImpl<kFast> (same contract). */
    StepResult run(ThreadContext &ctx, MemPort &mem, Core &core,
                   Cache &l2, uint64_t maxInstrs);

    /** Install (or clear) the superblock-boundary observer. */
    void setObserver(SuperblockObserver *obs) { observer_ = obs; }

    /** Share predecode/superblock artifacts through `cache`. */
    void shareCache(std::shared_ptr<ExecCache> cache);

  private:
    /** The dispatch loop; with `capture` set it only records the
     *  computed-goto label table and returns. */
    StepResult runLoop(ThreadContext *ctx, MemPort *mem, Core *core,
                       Cache *l2, uint64_t maxInstrs,
                       const void **capture);

    /** Resolved superblock for (funcId, entry), building on miss. */
    const SuperBlock *blockAt(uint32_t funcId, uint32_t entry);
    std::shared_ptr<const SuperBlock> lower(uint32_t funcId,
                                            uint32_t entry);

    Interp &interp_;
    SuperblockObserver *observer_ = nullptr;
    std::shared_ptr<ExecCache> cache_;
    /** Raw dispatch index: [funcId][entry] -> block (null until built);
     *  keepalive_ pins the shared_ptr ownership. */
    std::vector<std::vector<const SuperBlock *>> byEntry_;
    std::vector<std::shared_ptr<const SuperBlock>> keepalive_;
};

} // namespace xisa

#endif // XISA_MACHINE_INTERP_THREADED_HH
