/**
 * @file
 * The machine-code interpreters for Aether64 and Xeno64.
 *
 * One Interp instance executes one ISA's text of a multi-ISA binary on
 * one node's timing model. The interpreter is the "CPU": it implements
 * full call/return semantics (link register on Aether64, pushed return
 * addresses on Xeno64), charges per-op cycle costs plus I-/D-cache and
 * DSM penalties, and stops -- returning control to the OS layer -- on
 * builtin call-outs, migration call-outs, syscalls, thread exit, or
 * budget expiry. It never performs OS work itself.
 */

#ifndef XISA_MACHINE_INTERP_HH
#define XISA_MACHINE_INTERP_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "binary/multibinary.hh"
#include "isa/abi.hh"
#include "machine/mem.hh"
#include "machine/node.hh"

namespace xisa {

class ThreadedEngine;
class ExecCache;
class SuperblockObserver;

/** Architectural condition flags produced by Cmp/CmpImm/FCmp. */
struct Flags {
    bool eq = false;
    bool lt = false;  ///< signed less-than
    bool ult = false; ///< unsigned less-than
};

/** Evaluate a condition code against the flags. Inline: this is the
 *  hottest predicate of both dispatch engines (BCond/CSet uops).
 *  Branchless: the flags form a 3-bit index and each condition is an
 *  8-entry truth table packed into one byte, so evaluation is a table
 *  load and a shift instead of a jump table the branch predictor has
 *  to disambiguate across every conditional uop in flight. */
inline bool
evalCond(Cond cond, const Flags &f)
{
    // Bit i of kTruth[cond] = condition holds for flag index i, where
    // i = eq | lt<<1 | ult<<2 (impossible combinations are don't-care
    // but filled in consistently).
    static constexpr uint8_t kTruth[] = {
        0xAA, // EQ:  eq
        0x55, // NE:  !eq
        0xCC, // LT:  lt
        0xEE, // LE:  lt || eq
        0x11, // GT:  !(lt || eq)
        0x33, // GE:  !lt
        0xF0, // ULT: ult
        0xF2, // ULE: ult || eq
        0x0D, // UGT: !(ult || eq)
        0x0F, // UGE: !ult
        0xFF, // Always
    };
    unsigned idx = (f.eq ? 1u : 0u) | (f.lt ? 2u : 0u) | (f.ult ? 4u : 0u);
    return (kTruth[static_cast<unsigned>(cond)] >> idx) & 1u;
}

/** Architectural state of one thread (the paper's R_i). */
struct ThreadContext {
    uint64_t gpr[kMaxGpr] = {};
    double fpr[kMaxFpr] = {};
    Flags flags;
    CodeLoc pc;
    uint64_t tlsBase = 0;
    IsaId isa = IsaId::Xeno64;

    // Accounting.
    uint64_t instrs = 0;
    uint64_t cycles = 0;
    uint64_t dsmExtraCycles = 0; ///< cycles added by hDSM faults

    uint64_t &sp(const AbiInfo &abi) { return gpr[abi.spReg]; }
    uint64_t &fp(const AbiInfo &abi) { return gpr[abi.fpReg]; }
};

/** Why Interp::run() returned. */
enum class StopReason {
    Budget,      ///< instruction budget exhausted
    Halt,        ///< thread finished (Hlt or return to exit sentinel)
    BuiltinTrap, ///< Bl/Blr to a builtin; OS must execute it
    MigrateTrap, ///< Bl to the migration runtime (flag was set)
    Syscall,     ///< explicit SysCall instruction
};

/** Result of one run() slice. */
struct StepResult {
    StopReason reason = StopReason::Budget;
    uint64_t instrsRun = 0;
    uint64_t cyclesRun = 0;
    uint32_t trapFuncId = 0;   ///< builtin function id (BuiltinTrap)
    uint32_t trapCallSite = 0; ///< call-site id (MigrateTrap / calls)
    int64_t sysno = 0;         ///< syscall number (Syscall)
    uint64_t exitValue = 0;    ///< return value of the thread (Halt)
};

/** Observer of migration-point flag checks (for the gap profiler). */
class MigCheckObserver
{
  public:
    virtual ~MigCheckObserver() = default;
    /**
     * Called each time a thread executes a migration-point check.
     * @param instrsNow the thread's live instruction count (ctx.instrs
     *        is only folded in at the end of a run slice)
     */
    virtual void onMigCheck(const ThreadContext &ctx, uint32_t siteId,
                            uint64_t instrsNow) = 0;
};

/**
 * One predecoded instruction of the fast-path engine (DESIGN.md §7).
 * Everything the dispatch loop used to re-derive per visit -- the
 * instruction fetch address (funcBase + instrOff[idx]), the address of
 * the next instruction (the return address for calls), and the per-op
 * base cycle cost -- is resolved once per function and kept in one
 * dense array the loop indexes directly.
 */
struct PreInstr {
    MachInstr in;
    uint64_t fetchAddr = 0; ///< I-cache address of this instruction
    uint64_t nextAddr = 0;  ///< address of instr idx+1 (call return)
    uint8_t cost = 0;       ///< NodeSpec::cost(op), resolved once
};

/** Machine-code interpreter for one ISA of one binary. */
class Interp
{
  public:
    /**
     * @param bin the multi-ISA binary to execute
     * @param isa which text image to run
     * @param spec timing model of the node this interpreter belongs to
     */
    Interp(const MultiIsaBinary &bin, IsaId isa, const NodeSpec &spec);
    ~Interp(); // out of line: ThreadedEngine is incomplete here

    /**
     * Run `ctx` for at most `maxInstrs` instructions.
     *
     * @param mem  memory path (local or DSM-backed)
     * @param core private core state (caches, counters) to charge
     * @param l2   the node's shared L2
     *
     * On BuiltinTrap/MigrateTrap/Syscall the PC is left AT the trapping
     * instruction; the OS completes the operation and calls
     * finishTrap() (or performs a migration) to advance.
     */
    StepResult run(ThreadContext &ctx, MemPort &mem, Core &core,
                   Cache &l2, uint64_t maxInstrs);

    /**
     * Complete a trapped call-out: write an integer or FP result (per
     * the callee's return type), and advance the PC past the call.
     */
    void finishTrap(ThreadContext &ctx, Type retType, int64_t intResult,
                    double fpResult);

    /** Read the arguments of a trapped builtin call per the ABI. */
    std::vector<int64_t> readTrapArgs(const ThreadContext &ctx,
                                      const IRFunction &callee) const;

    /** Install (or clear) the migration-check observer. While one is
     *  installed run() bypasses the threaded engine: the observer's
     *  per-check callback needs the reference engine's live PC. */
    void setMigCheckObserver(MigCheckObserver *obs) { observer_ = obs; }

    /** Install (or clear) the superblock-boundary observer (audit). */
    void setSuperblockObserver(SuperblockObserver *obs);

    /**
     * Share predecoded streams and lowered superblocks through `cache`
     * (see ExecCache). Call before the first run(); streams already
     * built privately are not retroactively published.
     */
    void shareExecCache(std::shared_ptr<ExecCache> cache);

    /** Enable per-machine-instruction execution counting. */
    void enableProfile();
    /** Profile counts: [funcId][machine instr index]. */
    const std::vector<std::vector<uint64_t>> &profile() const
    {
        return profile_;
    }

    const MultiIsaBinary &binary() const { return bin_; }
    IsaId isa() const { return isa_; }
    const CodeMap &codeMap() const { return codeMap_; }

    /** True when the predecoded fast path is active (default; cleared
     *  when constructed under XISA_SLOW_PATH). */
    bool fastPath() const { return fastPath_; }
    /** Force the reference or fast dispatch loop (differential tests). */
    void setFastPath(bool on) { fastPath_ = on; }

    /** Predecoded stream of one function (built on first use). */
    const std::vector<PreInstr> &predecoded(uint32_t funcId);

  private:
    /** The dispatch loop, instantiated once per engine: kFast indexes
     *  the predecoded stream, !kFast re-derives everything per step
     *  (the XISA_SLOW_PATH reference semantics). */
    template <bool kFast>
    StepResult runImpl(ThreadContext &ctx, MemPort &mem, Core &core,
                       Cache &l2, uint64_t maxInstrs);

    /** The threaded engine lowers from bin_/spec_ and deopts into
     *  runImpl<true>; it is an extension of this class, not a client. */
    friend class ThreadedEngine;

    const MultiIsaBinary &bin_;
    IsaId isa_;
    const AbiInfo &abi_;
    /** Owned copy: callers routinely keep their NodeSpec in a vector
     *  that may reallocate (ReplicatedOS::nodes_), so a reference here
     *  dangles as soon as the owning element moves. */
    const NodeSpec spec_;
    CodeMap codeMap_;
    MigCheckObserver *observer_ = nullptr;
    bool profiling_ = false;
    bool fastPath_ = true;
    /** Per-function predecoded streams, shared-immutable so ExecCache
     *  can hand one copy to every node of a sweep. [funcId] */
    std::vector<std::shared_ptr<const std::vector<PreInstr>>> pre_;
    std::vector<std::vector<uint64_t>> profile_;
    uint64_t execSig_ = 0; ///< execTimingSig(spec_), the cache key
    std::shared_ptr<ExecCache> execCache_;
    std::unique_ptr<ThreadedEngine> threaded_;
};

} // namespace xisa

#endif // XISA_MACHINE_INTERP_HH
