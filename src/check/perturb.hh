/**
 * @file
 * Seeded schedule perturbation (DESIGN.md §8).
 *
 * The default simulator schedule is deterministic, so whole families of
 * interleavings -- duplicated deliveries racing invalidations, a
 * migration trap landing one quantum later, a crash hitting between a
 * migration and the next checkpoint tick -- are never exercised. When
 * XISA_PERTURB=<seed> is set, a SchedulePerturber reshapes the run:
 *
 *  - interconnect delivery order: the link's FaultConfig gains seeded
 *    duplicate/spike/drop probabilities (composing with any configured
 *    FaultPlan), which is how reordering manifests on a message-passing
 *    link whose receivers must be idempotent and whose senders retry;
 *  - migration timing: a migration trap may be deferred to the thread's
 *    next migration point (bounded, so migrations still happen);
 *  - crash timing: ClusterSim crash events jitter around the configured
 *    instant, exploring crash-vs-checkpoint and crash-vs-migration
 *    races.
 *
 * Every decision is drawn from the seed, so a violating schedule is
 * replayed exactly by re-running with the same XISA_PERTURB value.
 * Unlike XISA_AUDIT (which must never change a run), XISA_PERTURB
 * changes behavior by design -- sweep drivers set it per-invocation;
 * it must not be exported suite-wide.
 */

#ifndef XISA_CHECK_PERTURB_HH
#define XISA_CHECK_PERTURB_HH

#include <cstdint>
#include <vector>

#include "dsm/faults.hh"
#include "dsm/recovery.hh"
#include "util/rng.hh"

namespace xisa::check {

class SchedulePerturber
{
  public:
    /** True if XISA_PERTURB is set to a non-empty value. */
    static bool enabled();
    /** The XISA_PERTURB seed (0 if unset or unparsable). */
    static uint64_t envSeed();

    explicit SchedulePerturber(uint64_t seed);

    /**
     * Overlay seeded delivery-order perturbation onto `base`:
     * duplicates, latency spikes, and a small drop rate are added on
     * top of whatever the config already injects. Scripted drops and
     * partition windows are preserved untouched. Deterministic in
     * (base, seed).
     */
    static FaultConfig perturbFaults(const FaultConfig &base,
                                     uint64_t seed);

    /**
     * Overlay seeded peer-crash injection onto a crash-tolerance
     * config. Inert unless `base.enabled` (perturbation never turns
     * recovery on under a run that did not opt into it): scheduled
     * crash instants jitter by up to +-25% of their value, the detector
     * thresholds draw a fresh seed, and -- when the run scheduled no
     * crash of its own -- one victim from `victims` (nodes the caller
     * knows to have a same-ISA survivor) dies at a seeded link-clock
     * step, landing the crash at hDSM protocol-step granularity.
     * Deterministic in (base, victims, seed).
     */
    static RecoveryConfig perturbRecovery(const RecoveryConfig &base,
                                          const std::vector<int> &victims,
                                          uint64_t seed);

    /**
     * Should this migration trap be deferred to the thread's next
     * migration point? At most 4 consecutive deferrals, so a requested
     * migration is delayed but never starved.
     */
    bool deferMigrationTrap();

    /** Deterministic jitter in [-magnitude, +magnitude] seconds. */
    double jitterSeconds(double magnitude);

  private:
    Rng rng_;
    int consecutiveDefers_ = 0;
};

} // namespace xisa::check

#endif // XISA_CHECK_PERTURB_HH
