/**
 * @file
 * Standalone audit driver for tools/audit_sweep.py.
 *
 * Runs three scenarios with the invariant auditor armed (the sweep
 * driver sets XISA_AUDIT=1 and XISA_PERTURB=<seed> in the environment):
 *
 *  1. a bare 3-node hDSM fault storm over a lossy, perturbed link,
 *  2. an OS container ping-ponging a thread between heterogeneous
 *     kernels (stack transform + TLB shootdown + context send retry),
 *  3. a crashy ClusterSim run under both dynamic policies.
 *
 * With --crash it instead runs the node-failure recovery scenario
 * (DESIGN.md §9): a migration ping-pong on a same-ISA pair is run
 * crash-free, then re-run with a seeded peer crash and with a crash
 * pinned to the migration handoff; every crashed run must produce
 * byte-identical output, and the auditor's recovery checks stay armed
 * throughout.
 *
 * Any invariant violation panics with a replay line; a clean run prints
 * one summary line and exits 0.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "check/audit.hh"
#include "check/perturb.hh"
#include "compiler/compile.hh"
#include "dsm/dsm.hh"
#include "machine/node.hh"
#include "os/os.hh"
#include "sched/cluster.hh"
#include "sched/jobsets.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "workload/workloads.hh"

using namespace xisa;

namespace {

/** Phase 1: raw protocol storm on a lossy 3-node space. */
uint64_t
dsmStorm(uint64_t seed)
{
    Interconnect::Config nc;
    nc.faults.seed = 0x5eedf417u ^ seed;
    nc.faults.dropProb = 0.05;
    nc.faults.dupProb = 0.05;
    nc.faults.spikeProb = 0.1;
    nc.faults = check::SchedulePerturber::perturbFaults(nc.faults, seed);
    Interconnect net(nc);
    obs::StatRegistry reg;
    net.registerStats(reg, "net");

    DsmSpace dsm(3, &net, {3.5, 2.4, 2.4});
    dsm.registerStats(reg);
    check::InvariantAuditor auditor(dsm, &reg, &net, "net",
                                    {nc.faults.seed, seed});
    auditor.attach();

    constexpr uint64_t kBase = 0x10000000ull;
    constexpr int kPages = 24;
    Rng rng(seed ^ 0x73746f726dull);
    for (int i = 0; i < 3000; ++i) {
        int node = static_cast<int>(rng.below(3));
        uint64_t addr = kBase + rng.below(kPages) * vm::kPageSize +
                        rng.below(vm::kPageSize - 8);
        uint64_t v = rng.next();
        if (rng.below(100) < 55)
            dsm.poke(node, addr, &v, 8);
        else
            dsm.pull(node, addr, &v, 8);
        if (rng.below(100) < 3)
            dsm.broadcastWrite64(vm::kVdsoBase, v);
        if (rng.below(100) < 2)
            dsm.flushTlb(static_cast<int>(rng.below(3)));
    }
    auditor.deepCheck("storm_end");
    return auditor.checksRun();
}

/** Phase 2: heterogeneous migration ping-pong on a perturbed link. */
uint64_t
migrationPingPong(uint64_t seed)
{
    MultiIsaBinary bin =
        compileModule(buildWorkload(WorkloadId::CG, ProblemClass::A, 1));
    OsConfig cfg = OsConfig::dualServer();
    cfg.quantum = 2500;
    cfg.net.faults.seed = 0xfa0175ull ^ seed;
    cfg.net.faults.dropProb = 0.03;
    cfg.net.faults.dupProb = 0.05;
    ReplicatedOS os(bin, cfg);
    os.load(0);
    os.migrateProcess(1);
    int bounces = 0;
    os.onQuantum = [&](ReplicatedOS &o) {
        size_t done = o.migrations().size();
        if (done > static_cast<size_t>(bounces) && done < 6) {
            bounces = static_cast<int>(done);
            o.migrateProcess(o.migrations().back().toNode == 1 ? 0 : 1);
        }
    };
    os.run();
    return os.auditor() ? os.auditor()->checksRun() : 0;
}

/** Phase 3: crashy cluster scheduling under the dynamic policies. */
double
crashyCluster(uint64_t seed)
{
    double lost = 0;
    const JobProfileTable profiles = JobProfileTable::synthetic();
    for (Policy p : {Policy::DynamicBalanced, Policy::DynamicUnbalanced}) {
        ClusterSim::Config cc;
        cc.net.faults.seed = seed | 1;
        cc.net.faults.dropProb = 0.02;
        cc.crashes = {{40.0, 0, 25.0}, {90.0, 1, 30.0}, {200.0, 0, 20.0}};
        ClusterSim sim(makeHeterogeneousPool(), profiles, cc);
        ClusterResult res =
            sim.run(makeSustainedSet(seed ^ 0x6a6f6273ull, 12), p);
        lost += res.lostWorkSeconds;
    }
    return lost;
}

/**
 * Phase 4 (--crash): node-failure recovery byte-identity probe.
 *
 * One crash-free reference run, then two crashed runs -- a seeded peer
 * crash mid-ping-pong and a crash pinned to a migration handoff. Both
 * must finish with output and exit code identical to the reference;
 * the auditor (when armed) sweeps the reconstructed directory and the
 * migration ledger after every recovery.
 */
uint64_t
crashRecovery(uint64_t seed)
{
    MultiIsaBinary bin =
        compileModule(buildWorkload(WorkloadId::CG, ProblemClass::A, 1));
    auto runOne = [&](const RecoveryConfig &rc, OsRunResult &out) {
        OsConfig cfg;
        // Same-ISA pair: the survivor can adopt the dead kernel's
        // threads without a cross-ISA transform.
        cfg.nodes = {makeXenoServer(), makeXenoServer()};
        cfg.quantum = 2500;
        cfg.net.faults.seed = 0xc4a54ull ^ seed;
        cfg.net.faults.dropProb = 0.02;
        cfg.recovery = rc;
        ReplicatedOS os(bin, cfg);
        os.load(0);
        os.migrateProcess(1);
        int bounces = 0;
        os.onQuantum = [&bounces](ReplicatedOS &o) {
            size_t done = o.migrations().size();
            if (done > static_cast<size_t>(bounces) && done < 6) {
                bounces = static_cast<int>(done);
                int dest = o.migrations().back().toNode == 1 ? 0 : 1;
                if (o.nodeAlive(dest))
                    o.migrateThread(0, dest);
            }
        };
        out = os.run();
        os.dsm().checkInvariants();
        return os.auditor() ? os.auditor()->checksRun() : 0;
    };

    // Crash-free reference. Recovery stays disabled so the perturber's
    // crash injection cannot touch it (perturbation is inert on a
    // disabled config, and a disabled run is byte-identical to an
    // armed crash-free one).
    OsRunResult ref;
    uint64_t checks = runOne(RecoveryConfig{}, ref);

    // Leg 1: a peer dies at a seeded link-clock step mid-ping-pong.
    RecoveryConfig nodeCrash;
    nodeCrash.enabled = true;
    nodeCrash.crashes = {PeerCrashEvent{
        1, 16 + seed % 48}};
    OsRunResult got;
    checks += runOne(nodeCrash, got);
    if (got.output != ref.output || got.exitCode != ref.exitCode)
        fatal("[audit_probe] crash leg diverged from crash-free run "
              "(node crash, seed=%llu): replay with XISA_PERTURB=%llu",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(seed));

    // Leg 2: the migration source dies mid-handoff; exactly-once
    // delivery means the thread survives on exactly one kernel.
    RecoveryConfig shipCrash;
    shipCrash.enabled = true;
    shipCrash.shipCrashes = {ShipCrashEvent{0, 0, (seed & 1) != 0}};
    checks += runOne(shipCrash, got);
    if (got.output != ref.output || got.exitCode != ref.exitCode) {
        std::fprintf(stderr,
                     "DBG ref exit=%lld lines=%zu | got exit=%lld "
                     "lines=%zu\n",
                     (long long)ref.exitCode, ref.output.size(),
                     (long long)got.exitCode, got.output.size());
        for (size_t i = 0;
             i < std::max(ref.output.size(), got.output.size()); ++i)
            std::fprintf(
                stderr, "  [%zu] ref=%s | got=%s\n", i,
                i < ref.output.size() ? ref.output[i].c_str() : "<none>",
                i < got.output.size() ? got.output[i].c_str() : "<none>");
        fatal("[audit_probe] crash leg diverged from crash-free run "
              "(handoff crash, seed=%llu): replay with XISA_PERTURB=%llu",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(seed));
    }
    return checks;
}

} // namespace

int
main(int argc, char **argv)
{
    bool skipOs = false;
    bool crashOnly = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--dsm-only") == 0)
            skipOs = true;
        if (std::strcmp(argv[i], "--crash") == 0)
            crashOnly = true;
    }

    if (!check::auditRequested())
        std::fprintf(stderr,
                     "[audit_probe] warning: XISA_AUDIT not set; "
                     "running without the auditor\n");
    const uint64_t seed = check::SchedulePerturber::envSeed();

    if (crashOnly) {
        uint64_t crashChecks = crashRecovery(seed);
        std::printf("[audit_probe] clean seed=%llu crash_checks=%llu\n",
                    static_cast<unsigned long long>(seed),
                    static_cast<unsigned long long>(crashChecks));
        return 0;
    }

    uint64_t checks = dsmStorm(seed);
    uint64_t osChecks = 0;
    double lost = 0;
    if (!skipOs) {
        osChecks = migrationPingPong(seed);
        lost = crashyCluster(seed);
    }
    std::printf("[audit_probe] clean seed=%llu dsm_checks=%llu "
                "os_checks=%llu cluster_lost=%.3f\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(checks),
                static_cast<unsigned long long>(osChecks), lost);
    return 0;
}
