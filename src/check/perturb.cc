#include "check/perturb.hh"

#include <algorithm>
#include <cstdlib>

namespace xisa::check {

namespace {

uint64_t
mix(uint64_t seed, uint64_t salt)
{
    // SplitMix64 finalizer over (seed, salt) so sub-streams drawn for
    // different purposes are decorrelated.
    uint64_t z = seed + 0x9e3779b97f4a7c15ull * (salt + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

bool
SchedulePerturber::enabled()
{
    const char *v = std::getenv("XISA_PERTURB");
    return v && v[0] != '\0';
}

uint64_t
SchedulePerturber::envSeed()
{
    const char *v = std::getenv("XISA_PERTURB");
    if (!v || v[0] == '\0')
        return 0;
    return std::strtoull(v, nullptr, 0);
}

SchedulePerturber::SchedulePerturber(uint64_t seed)
    : rng_(mix(seed, 0x7065727475726221ull))
{}

FaultConfig
SchedulePerturber::perturbFaults(const FaultConfig &base, uint64_t seed)
{
    FaultConfig out = base;
    Rng rng(mix(seed, 0x6c696e6b21ull));
    auto range = [&](double lo, double hi) {
        return lo + rng.uniform() * (hi - lo);
    };
    // Reshape delivery order: duplicates and latency spikes reorder
    // messages relative to the default schedule, and a small extra drop
    // rate exercises the retry paths. Probabilities stay low enough
    // that reliableSend's 64 attempts and the OS migration retry limit
    // cannot be exhausted by the overlay alone; scripted drops and
    // partition windows (the deterministic FaultPlan part) are kept.
    out.seed ^= mix(seed, 0x736565642100ull) | 1ull;
    out.dupProb = std::min(0.25, out.dupProb + range(0.02, 0.10));
    out.spikeProb = std::min(0.40, out.spikeProb + range(0.05, 0.20));
    out.spikeMaxUs = std::max(out.spikeMaxUs, range(10.0, 60.0));
    out.dropProb = std::min(0.30, out.dropProb + range(0.0, 0.06));
    return out;
}

bool
SchedulePerturber::deferMigrationTrap()
{
    if (consecutiveDefers_ >= 4) {
        consecutiveDefers_ = 0;
        return false;
    }
    if (rng_.uniform() < 0.30) {
        ++consecutiveDefers_;
        return true;
    }
    consecutiveDefers_ = 0;
    return false;
}

double
SchedulePerturber::jitterSeconds(double magnitude)
{
    return (rng_.uniform() * 2.0 - 1.0) * magnitude;
}

} // namespace xisa::check
