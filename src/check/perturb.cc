#include "check/perturb.hh"

#include <algorithm>
#include <cstdlib>

namespace xisa::check {

namespace {

uint64_t
mix(uint64_t seed, uint64_t salt)
{
    // SplitMix64 finalizer over (seed, salt) so sub-streams drawn for
    // different purposes are decorrelated.
    uint64_t z = seed + 0x9e3779b97f4a7c15ull * (salt + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

bool
SchedulePerturber::enabled()
{
    const char *v = std::getenv("XISA_PERTURB");
    return v && v[0] != '\0';
}

uint64_t
SchedulePerturber::envSeed()
{
    const char *v = std::getenv("XISA_PERTURB");
    if (!v || v[0] == '\0')
        return 0;
    return std::strtoull(v, nullptr, 0);
}

SchedulePerturber::SchedulePerturber(uint64_t seed)
    : rng_(mix(seed, 0x7065727475726221ull))
{}

FaultConfig
SchedulePerturber::perturbFaults(const FaultConfig &base, uint64_t seed)
{
    FaultConfig out = base;
    Rng rng(mix(seed, 0x6c696e6b21ull));
    auto range = [&](double lo, double hi) {
        return lo + rng.uniform() * (hi - lo);
    };
    // Reshape delivery order: duplicates and latency spikes reorder
    // messages relative to the default schedule, and a small extra drop
    // rate exercises the retry paths. Probabilities stay low enough
    // that reliableSend's 64 attempts and the OS migration retry limit
    // cannot be exhausted by the overlay alone; scripted drops and
    // partition windows (the deterministic FaultPlan part) are kept.
    out.seed ^= mix(seed, 0x736565642100ull) | 1ull;
    out.dupProb = std::min(0.25, out.dupProb + range(0.02, 0.10));
    out.spikeProb = std::min(0.40, out.spikeProb + range(0.05, 0.20));
    out.spikeMaxUs = std::max(out.spikeMaxUs, range(10.0, 60.0));
    out.dropProb = std::min(0.30, out.dropProb + range(0.0, 0.06));
    return out;
}

RecoveryConfig
SchedulePerturber::perturbRecovery(const RecoveryConfig &base,
                                   const std::vector<int> &victims,
                                   uint64_t seed)
{
    if (!base.enabled)
        return base;
    RecoveryConfig out = base;
    Rng rng(mix(seed, 0x6372617368ull)); // "crash"
    // Jitter scheduled crash instants by up to +-25%: the crash slides
    // across neighboring protocol steps, exploring crash-vs-fault and
    // crash-vs-migration orderings the configured instant never hits.
    for (PeerCrashEvent &ev : out.crashes) {
        uint64_t span = ev.atStep / 4;
        if (span)
            ev.atStep = ev.atStep - span + rng.below(2 * span + 1);
    }
    for (ShipCrashEvent &ev : out.shipCrashes) {
        if (ev.atShip)
            ev.atShip = rng.below(ev.atShip + 1);
        if (rng.below(4) == 0)
            ev.afterDelivery = !ev.afterDelivery;
    }
    out.detectorSeed ^= mix(seed, 0x64657465637421ull) | 1ull;
    // A run that opted into crash tolerance but scheduled no crash gets
    // one: a victim with a same-ISA survivor dies at a seeded step.
    if (out.crashes.empty() && out.shipCrashes.empty() &&
        !victims.empty()) {
        PeerCrashEvent ev;
        ev.node = victims[rng.below(victims.size())];
        ev.atStep = 16 + rng.below(512);
        out.crashes.push_back(ev);
    }
    return out;
}

bool
SchedulePerturber::deferMigrationTrap()
{
    if (consecutiveDefers_ >= 4) {
        consecutiveDefers_ = 0;
        return false;
    }
    if (rng_.uniform() < 0.30) {
        ++consecutiveDefers_;
        return true;
    }
    consecutiveDefers_ = 0;
    return false;
}

double
SchedulePerturber::jitterSeconds(double magnitude)
{
    return (rng_.uniform() * 2.0 - 1.0) * magnitude;
}

} // namespace xisa::check
