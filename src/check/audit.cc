#include "check/audit.hh"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/stacktransform.hh"
#include "dsm/interconnect.hh"
#include "isa/abi.hh"
#include "obs/trace.hh"
#include "util/env.hh"
#include "util/logging.hh"

namespace xisa::check {

namespace {

const char *
stateName(PageState s)
{
    switch (s) {
      case PageState::Invalid: return "Invalid";
      case PageState::Shared: return "Shared";
      case PageState::Modified: return "Modified";
    }
    return "?";
}

} // namespace

bool
auditRequested()
{
    return envFlag("XISA_AUDIT");
}

void
SuperblockAudit::onSuperblock(Event ev, uint32_t funcId,
                              uint32_t instrIdx, uint64_t instrsNow)
{
    switch (ev) {
      case Event::Enter: ++enters_; break;
      case Event::Deopt: ++deopts_; break;
      case Event::Exit: ++exits_; break;
    }
    if (inSlice_ && instrsNow < watermark_) {
        std::ostringstream os;
        os << "live instruction count went backwards within a run "
           << "slice: " << watermark_ << " -> " << instrsNow << " at "
           << (ev == Event::Enter   ? "enter"
               : ev == Event::Deopt ? "deopt"
                                    : "exit")
           << " func " << funcId << " instr " << instrIdx
           << " (block-local progress lost or double-counted across "
           << "a deoptimization)";
        audit_.violation("superblock", os.str());
    }
    watermark_ = instrsNow;
    // An Exit ends the slice: the next event belongs to a new quantum,
    // possibly a different thread with a smaller instruction count.
    inSlice_ = ev != Event::Exit;
}

InvariantAuditor::InvariantAuditor(DsmSpace &dsm,
                                   const obs::StatRegistry *reg,
                                   const Interconnect *net,
                                   std::string netPrefix, Context ctx)
    : dsm_(dsm), reg_(reg), net_(net),
      netPrefix_(std::move(netPrefix)), ctx_(ctx)
{}

void
InvariantAuditor::attach()
{
    dsm_.setAuditHook(
        [this](const char *what, uint64_t vpage) {
            onProtocolStep(what, vpage);
        });
}

void
InvariantAuditor::onProtocolStep(const char *what, uint64_t vpage)
{
    ++checks_;
    ++steps_;
    // Partition-protocol violations arrive as dedicated step tags:
    // the DSM detects the condition (it owns the cut and epoch
    // state), the auditor turns it into a replayable panic.
    if (std::strcmp(what, "cross_cut_delivery") == 0) {
        std::ostringstream os;
        os << "message about page 0x" << std::hex << vpage
           << " delivered across an open partition cut";
        violation(what, os.str());
    }
    if (std::strcmp(what, "epoch_regression") == 0) {
        std::ostringstream os;
        os << "stale pre-heal message about page 0x" << std::hex
           << vpage
           << " applied: per-peer epoch went backwards (the fence "
           << "is down)";
        violation(what, os.str());
    }
    checkPage(what, vpage, /*bytes=*/true);
    // The affected page is checked exhaustively on every step; the
    // whole directory and the stat shims are swept periodically to
    // bound the audit's cost on fault storms.
    if ((steps_ & 63u) == 0) {
        checkDirectoryAndTlbs(what, /*bytes=*/false);
        checkStatShims(what);
    }
}

void
InvariantAuditor::deepCheck(const char *where)
{
    ++checks_;
    checkDirectoryAndTlbs(where, /*bytes=*/true);
    checkStatShims(where);
}

void
InvariantAuditor::checkDirectoryAndTlbs(const char *where, bool bytes)
{
    for (const auto &[vpage, d] : dsm_.dirs_) {
        (void)d;
        checkPage(where, vpage, bytes);
    }
}

void
InvariantAuditor::checkPage(const char *where, uint64_t vpage,
                            bool bytes)
{
    // Membership alone (not partActive_) gates the exemption: the heal
    // clears partActive_ before it drains the outbox and re-syncs, so
    // a divergent page is legitimately still inconsistent for the few
    // protocol steps inside healPartition() itself. The set is cleared
    // by the heal, which re-arms the check.
    if (dsm_.divergent_.count(vpage))
        return; // replicas straddle(d) an open cut; re-synced at heal
    const bool vdso = dsm_.isVdso(vpage);
    auto it = dsm_.dirs_.find(vpage);
    if (it == dsm_.dirs_.end()) {
        // Unknown page: nothing may be resident or cached for it.
        for (int n = 0; n < dsm_.numNodes_; ++n) {
            size_t sn = static_cast<size_t>(n);
            if (dsm_.mem_[sn].hasPage(vpage)) {
                std::ostringstream os;
                os << "node " << n << " holds page 0x" << std::hex
                   << vpage << " with no directory entry";
                violation(where, os.str());
            }
            if (dsm_.ports_[sn].tlbReadBase(vpage) ||
                dsm_.ports_[sn].tlbWriteBase(vpage)) {
                std::ostringstream os;
                os << "node " << n << " caches a translation for "
                   << "unknown page 0x" << std::hex << vpage;
                violation(where, os.str());
            }
        }
        return;
    }

    const auto &state = it->second.state;
    int raHome = -1;
    if (dsm_.mode_ == DsmMode::RemoteAccess) {
        auto h = dsm_.home_.find(vpage);
        raHome = h == dsm_.home_.end() ? -1 : h->second;
    }

    int modified = 0, shared = 0, firstHolder = -1;
    for (int n = 0; n < dsm_.numNodes_; ++n) {
        size_t sn = static_cast<size_t>(n);
        PageState s = state[sn];
        const bool resident = dsm_.mem_[sn].hasPage(vpage);
        if (s == PageState::Modified)
            ++modified;
        else if (s == PageState::Shared)
            ++shared;
        if (s != PageState::Invalid && firstHolder < 0)
            firstHolder = n;
        // Crash recovery: a declared-dead kernel owns nothing. (The
        // residency and TLB corollaries follow from the Invalid checks
        // below once this holds.) Suppressed mid-reconstruction, where
        // not-yet-swept entries still name the dead node.
        if (s != PageState::Invalid && !dsm_.recovering_ &&
            !dsm_.alive_[sn]) {
            std::ostringstream os;
            os << "page 0x" << std::hex << vpage << std::dec << " is "
               << stateName(s) << " on dead node " << n;
            violation(where, os.str());
        }
        if (s != PageState::Invalid && !resident) {
            std::ostringstream os;
            os << "page 0x" << std::hex << vpage << std::dec
               << " is " << stateName(s) << " on node " << n
               << " but the node holds no copy";
            violation(where, os.str());
        }
        if (s == PageState::Invalid && resident) {
            std::ostringstream os;
            os << "page 0x" << std::hex << vpage << std::dec
               << " is resident on node " << n
               << " whose directory state is Invalid (leaked page)";
            violation(where, os.str());
        }

        // TLB-shootdown completeness: a live translation must imply
        // both the right and the exact current backing storage.
        const uint8_t *rb = dsm_.ports_[sn].tlbReadBase(vpage);
        const uint8_t *wb = dsm_.ports_[sn].tlbWriteBase(vpage);
        if ((rb || wb) && !dsm_.tlbEnabled_) {
            std::ostringstream os;
            os << "node " << n << " cached a translation for page 0x"
               << std::hex << vpage << " in slow-path mode";
            violation(where, os.str());
        }
        if ((rb || wb) && dsm_.mode_ == DsmMode::RemoteAccess &&
            (vdso || raHome != n)) {
            std::ostringstream os;
            os << "node " << n << " caches non-home page 0x"
               << std::hex << vpage << " in RemoteAccess mode";
            violation(where, os.str());
        }
        if (rb) {
            if (s == PageState::Invalid) {
                std::ostringstream os;
                os << "node " << n
                   << " survived shootdown: read translation for "
                   << "Invalid page 0x" << std::hex << vpage;
                violation(where, os.str());
            }
            if (rb != dsm_.mem_[sn].peekPage(vpage)) {
                std::ostringstream os;
                os << "node " << n << " read translation for page 0x"
                   << std::hex << vpage
                   << " points at stale storage";
                violation(where, os.str());
            }
        }
        if (wb) {
            const bool allowed =
                dsm_.mode_ == DsmMode::RemoteAccess
                    ? raHome == n && !vdso
                    : s == PageState::Modified && !vdso;
            if (!allowed) {
                std::ostringstream os;
                os << "node " << n
                   << " survived shootdown: write translation for "
                   << stateName(s) << (vdso ? " vDSO" : "")
                   << " page 0x" << std::hex << vpage;
                violation(where, os.str());
            }
            if (wb != dsm_.mem_[sn].peekPage(vpage)) {
                std::ostringstream os;
                os << "node " << n << " write translation for page 0x"
                   << std::hex << vpage
                   << " points at stale storage";
                violation(where, os.str());
            }
        }
    }

    // Crash recovery: every known page keeps at least one live owner
    // (directory reconstruction re-homed or journal-restored orphans),
    // and any sole-Modified page -- the only state a crash could
    // destroy -- is covered by the journal.
    if (dsm_.journal_ && !dsm_.recovering_ && !vdso) {
        if (firstHolder < 0) {
            std::ostringstream os;
            os << "page 0x" << std::hex << vpage
               << " has zero live owners";
            violation(where, os.str());
        }
        if (modified == 1 && shared == 0 &&
            !dsm_.journal_->has(vpage)) {
            std::ostringstream os;
            os << "sole-Modified page 0x" << std::hex << vpage
               << " is not covered by the page journal";
            violation(where, os.str());
        }
    }
    if (modified > 1) {
        std::ostringstream os;
        os << "page 0x" << std::hex << vpage << std::dec << " has "
           << modified << " Modified copies (single-writer violated)";
        violation(where, os.str());
    }
    if (modified == 1 && shared > 0 && !vdso) {
        std::ostringstream os;
        os << "page 0x" << std::hex << vpage << std::dec
           << " mixes one Modified with " << shared
           << " Shared copies";
        violation(where, os.str());
    }

    // Replica agreement: every valid copy must be byte-identical.
    if (bytes && firstHolder >= 0 && modified + shared > 1) {
        const uint8_t *ref =
            dsm_.mem_[static_cast<size_t>(firstHolder)].peekPage(vpage);
        for (int n = firstHolder + 1; n < dsm_.numNodes_; ++n) {
            size_t sn = static_cast<size_t>(n);
            if (state[sn] == PageState::Invalid)
                continue;
            const uint8_t *cur = dsm_.mem_[sn].peekPage(vpage);
            if (ref && cur &&
                std::memcmp(ref, cur, vm::kPageSize) != 0) {
                std::ostringstream os;
                os << "page 0x" << std::hex << vpage << std::dec
                   << " replicas diverge between nodes "
                   << firstHolder << " and " << n;
                violation(where, os.str());
            }
        }
    }
}

void
InvariantAuditor::checkStatShims(const char *where)
{
    const DsmStats s = dsm_.stats();
    uint64_t rf = 0, wf = 0, inv = 0, in = 0;
    for (const auto &ns : dsm_.nodeStats_) {
        rf += ns.readFaults.value();
        wf += ns.writeFaults.value();
        inv += ns.invalidations.value();
        in += ns.pagesIn.value();
    }
    auto mismatch = [&](const char *what, uint64_t a, uint64_t b) {
        std::ostringstream os;
        os << what << " disagree: aggregate " << a
           << " vs per-node/registry " << b;
        violation(where, os.str());
    };
    if (s.readFaults != rf)
        mismatch("read-fault counters", s.readFaults, rf);
    if (s.writeFaults != wf)
        mismatch("write-fault counters", s.writeFaults, wf);
    if (s.invalidations != inv)
        mismatch("invalidation counters", s.invalidations, inv);
    if (s.pagesTransferred != in)
        mismatch("page-transfer counters", s.pagesTransferred, in);

    if (reg_) {
        if (!handles_.resolved) {
            handles_.readFaults = reg_->findCounter("dsm.read_faults");
            handles_.writeFaults = reg_->findCounter("dsm.write_faults");
            handles_.invalidations =
                reg_->findCounter("dsm.invalidations");
            handles_.pageTransfers =
                reg_->findCounter("dsm.page_transfers");
            handles_.bytesTransferred =
                reg_->findCounter("dsm.bytes_transferred");
            handles_.extraCycles = reg_->findCounter("dsm.extra_cycles");
            if (net_) {
                handles_.netMessages =
                    reg_->findCounter(netPrefix_ + ".messages");
                handles_.netBytes =
                    reg_->findCounter(netPrefix_ + ".bytes");
            }
            handles_.resolved = true;
        }
        auto regCheck = [&](const char *name, const obs::Counter *c,
                            uint64_t want) {
            if (c && c->value() != want)
                mismatch(name, want, c->value());
        };
        regCheck("dsm.read_faults", handles_.readFaults, s.readFaults);
        regCheck("dsm.write_faults", handles_.writeFaults,
                 s.writeFaults);
        regCheck("dsm.invalidations", handles_.invalidations,
                 s.invalidations);
        regCheck("dsm.page_transfers", handles_.pageTransfers,
                 s.pagesTransferred);
        regCheck("dsm.bytes_transferred", handles_.bytesTransferred,
                 s.bytesTransferred);
        regCheck("dsm.extra_cycles", handles_.extraCycles,
                 s.extraCycles);
        if (net_) {
            regCheck((netPrefix_ + ".messages").c_str(),
                     handles_.netMessages, net_->messages());
            regCheck((netPrefix_ + ".bytes").c_str(), handles_.netBytes,
                     net_->bytes());
        }
    }
}

void
InvariantAuditor::auditStackRoundTrip(StackTransformer &xform,
                                      const ThreadContext &srcCtx,
                                      const ThreadContext &destCtx,
                                      uint32_t siteId, int node,
                                      uint64_t stackTopAddr)
{
    const uint64_t base = stackTopAddr - vm::kStackSize;
    std::vector<uint8_t> before(vm::kStackSize);
    dsm_.peek(base, before.data(), before.size());

    ThreadContext back;
    {
        // The reverse transform must not fault pages, charge cycles,
        // bump counters, or emit trace events: the audit has to be
        // invisible to the run it is checking.
        DsmSpace::ProtocolBypass bypass(dsm_);
        StackTransformer::AuditScope scope(xform);
        back = xform.transform(destCtx, siteId, srcCtx.isa, dsm_, node,
                               stackTopAddr);
    }

    std::vector<uint8_t> after(vm::kStackSize);
    dsm_.peek(base, after.data(), after.size());
    if (before != after) {
        size_t off = 0;
        while (off < before.size() && before[off] == after[off])
            ++off;
        std::ostringstream os;
        os << "stack region not reproduced bit-for-bit: first "
           << "difference at 0x" << std::hex << base + off;
        violation("stack_round_trip", os.str());
    }

    const AbiInfo &sabi = AbiInfo::of(srcCtx.isa);
    auto requireEq = [&](const char *what, uint64_t got,
                         uint64_t want) {
        if (got != want) {
            std::ostringstream os;
            os << what << " not reproduced: got 0x" << std::hex << got
               << ", source had 0x" << want;
            violation("stack_round_trip", os.str());
        }
    };
    requireEq("SP", back.gpr[sabi.spReg], srcCtx.gpr[sabi.spReg]);
    requireEq("FP", back.gpr[sabi.fpReg], srcCtx.gpr[sabi.fpReg]);
    requireEq("TLS base", back.tlsBase, srcCtx.tlsBase);
    requireEq("resume funcId", back.pc.funcId, srcCtx.pc.funcId);
    // The source trapped AT the migration Bl; the round trip resumes
    // after it, exactly like the homogeneous ++instrIdx path.
    requireEq("resume instrIdx", back.pc.instrIdx,
              srcCtx.pc.instrIdx + 1);
    ++roundTrips_;
    ++checks_;
}

void
InvariantAuditor::violation(const char *where,
                            const std::string &detail)
{
    std::fprintf(stderr, "[audit] VIOLATION at %s: %s\n", where,
                 detail.c_str());
    std::fprintf(stderr,
                 "[audit] replay: XISA_AUDIT=1 XISA_PERTURB=%llu "
                 "(fault seed 0x%llx)\n",
                 static_cast<unsigned long long>(ctx_.perturbSeed),
                 static_cast<unsigned long long>(ctx_.faultSeed));
#if XISA_TRACE
    if (obs::traceEnabled()) {
        std::string path =
            "xisa_audit_violation_" +
            std::to_string(ctx_.perturbSeed) + ".trace.json";
        std::ofstream out(path);
        if (out) {
            obs::Tracer::global().exportChromeTrace(out);
            std::fprintf(stderr, "[audit] trace dumped to %s\n",
                         path.c_str());
        }
    }
#endif
    panic("audit violation at %s: %s", where, detail.c_str());
}

} // namespace xisa::check
