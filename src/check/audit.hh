/**
 * @file
 * Invariant auditor (DESIGN.md §8).
 *
 * When XISA_AUDIT=1, an InvariantAuditor rides along with a container
 * (or is attached to a bare DsmSpace) and validates global invariants
 * at every protocol step:
 *
 *  - MSI consistency: at most one Modified copy per page, and never
 *    Modified + Shared mixed (the vDSO page excepted -- it is
 *    replicated by kernel broadcast);
 *  - directory/residency agreement: a node's directory state is valid
 *    iff the node actually holds the page bytes -- "no node reads a
 *    page whose directory state for it is Invalid";
 *  - replica agreement: every Shared copy of a page is byte-identical;
 *  - TLB-shootdown completeness: no software-TLB entry survives a page
 *    steal, invalidation, or Modified->Shared downgrade on ANY port,
 *    and every live entry points at the node's current backing page;
 *  - stack-transform round-trip identity: transforming a migrated
 *    context back to the source ISA reproduces the source frames
 *    bit-for-bit and the source register state (checked under a
 *    protocol bypass so the audit is invisible to the run);
 *  - stat-shim/registry agreement: the deprecated DsmStats/Interconnect
 *    shims, the registry-backed aggregates, and the per-node breakdowns
 *    must all tell the same story.
 *
 * A violation prints a replay line (perturbation seed + fault seed),
 * dumps a Chrome trace when tracing is compiled in, and panics -- so
 * property tests can EXPECT_THROW on planted corruption while sweep
 * drivers get a triagable artifact.
 *
 * Auditing must never change what it observes: the auditor keeps plain
 * (non-registry) counters, performs read-only sweeps, and runs its
 * round-trip transform under DsmSpace::ProtocolBypass with the
 * transformer's stat/trace emission suppressed. A run with XISA_AUDIT=1
 * is observable-for-observable identical to the same run without it.
 */

#ifndef XISA_CHECK_AUDIT_HH
#define XISA_CHECK_AUDIT_HH

#include <cstdint>
#include <string>

#include "dsm/dsm.hh"
#include "machine/interp.hh"
#include "machine/interp_threaded.hh"

namespace xisa {

class Interconnect;
class StackTransformer;

namespace check {

/** True if XISA_AUDIT is set (auditors should be wired up). */
bool auditRequested();

class InvariantAuditor;

/**
 * Superblock-boundary probe of the invariant auditor (DESIGN.md §10):
 * installed into every node's threaded engine when XISA_AUDIT=1. The
 * engine fires Enter / Deopt / Exit events with the thread's live
 * instruction count (committed ctx.instrs plus unmaterialized
 * block-local progress); within one run() slice -- the events between
 * two Exits -- that count must be non-decreasing, or the engine lost or
 * double-counted instructions across a deoptimization. Quanta run
 * sequentially on the host, so one probe per container suffices.
 *
 * Keeps plain counters only (the auditor's invisibility contract).
 */
class SuperblockAudit final : public SuperblockObserver
{
  public:
    explicit SuperblockAudit(InvariantAuditor &audit) : audit_(audit) {}
    void onSuperblock(Event ev, uint32_t funcId, uint32_t instrIdx,
                      uint64_t instrsNow) override;

    uint64_t enters() const { return enters_; }
    uint64_t deopts() const { return deopts_; }
    uint64_t exits() const { return exits_; }

  private:
    InvariantAuditor &audit_;
    bool inSlice_ = false;
    uint64_t watermark_ = 0; ///< last instrsNow seen in this slice
    uint64_t enters_ = 0;
    uint64_t deopts_ = 0;
    uint64_t exits_ = 0;
};

class InvariantAuditor
{
  public:
    /** Replay identity printed with every violation. */
    struct Context {
        uint64_t faultSeed = 0;   ///< net fault-plan seed
        uint64_t perturbSeed = 0; ///< XISA_PERTURB seed (0 if unset)
    };

    /**
     * @param dsm   space to audit (outlives the auditor)
     * @param reg   registry holding the dsm/net counters, or nullptr to
     *              skip the shim-agreement checks
     * @param net   link whose traffic shims to cross-check (nullable)
     * @param netPrefix registry prefix the link was attached under
     */
    InvariantAuditor(DsmSpace &dsm, const obs::StatRegistry *reg,
                     const Interconnect *net, std::string netPrefix,
                     Context ctx);

    /** Install this auditor as `dsm`'s protocol-step hook. */
    void attach();

    /**
     * One protocol step happened on `vpage` (fault, fill, broadcast,
     * restore). Runs the per-page checks; every 64th step additionally
     * sweeps the whole directory and every port's TLB.
     */
    void onProtocolStep(const char *what, uint64_t vpage);

    /** Full sweep: directory, every TLB, every page's replica bytes,
     *  and the stat shims. Called at migrations, restores, and end of
     *  run. */
    void deepCheck(const char *where);

    /**
     * Round-trip identity: transform `destCtx` (the result of
     * transforming `srcCtx` at `siteId`) back to the source ISA and
     * require that (a) the stack region is bit-for-bit unchanged and
     * (b) the round-tripped SP/FP/PC/TLS agree with `srcCtx`. Runs
     * under ProtocolBypass + the transformer's audit scope, so it is
     * invisible to the run's observables.
     */
    void auditStackRoundTrip(StackTransformer &xform,
                             const ThreadContext &srcCtx,
                             const ThreadContext &destCtx,
                             uint32_t siteId, int node,
                             uint64_t stackTopAddr);

    uint64_t checksRun() const { return checks_; }
    uint64_t roundTripsChecked() const { return roundTrips_; }

    /** The superblock-boundary probe to install into each node's
     *  interpreter (Interp::setSuperblockObserver). */
    SuperblockAudit &superblockAudit() { return sbAudit_; }

    /** Print the replay line, dump a trace if enabled, and panic. */
    [[noreturn]] void violation(const char *where,
                                const std::string &detail);

  private:
    void checkPage(const char *where, uint64_t vpage, bool bytes);
    void checkDirectoryAndTlbs(const char *where, bool bytes);
    void checkStatShims(const char *where);

    DsmSpace &dsm_;
    const obs::StatRegistry *reg_;
    const Interconnect *net_;
    std::string netPrefix_;
    Context ctx_;
    SuperblockAudit sbAudit_{*this};
    /**
     * Registry handles for the shim cross-check, resolved on the first
     * sweep and reused: findCounter is a string-keyed map probe, and
     * checkStatShims runs every 64th protocol step -- re-looking up the
     * same eight fixed names each sweep made the lookup itself the
     * auditor's hottest path. Handles stay valid for the auditor's
     * lifetime (components outlive it; see ReplicatedOS member order).
     */
    struct StatHandles {
        bool resolved = false;
        const obs::Counter *readFaults = nullptr;
        const obs::Counter *writeFaults = nullptr;
        const obs::Counter *invalidations = nullptr;
        const obs::Counter *pageTransfers = nullptr;
        const obs::Counter *bytesTransferred = nullptr;
        const obs::Counter *extraCycles = nullptr;
        const obs::Counter *netMessages = nullptr;
        const obs::Counter *netBytes = nullptr;
    } handles_;
    // Plain counters on purpose: registry-attached audit stats would
    // change snapshot()/dump() output and break golden comparisons
    // under XISA_AUDIT=1.
    uint64_t checks_ = 0;
    uint64_t roundTrips_ = 0;
    uint64_t steps_ = 0;
};

} // namespace check
} // namespace xisa

#endif // XISA_CHECK_AUDIT_HH
