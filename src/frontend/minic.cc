#include "frontend/minic.hh"

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <vector>

#include "ir/builder.hh"
#include "util/logging.hh"

namespace xisa {

namespace {

// --- Lexer -----------------------------------------------------------------

enum class Tok { Ident, IntLit, FloatLit, Punct, Eof };

struct Token {
    Tok kind = Tok::Eof;
    std::string text;
    int64_t intVal = 0;
    double fltVal = 0;
    int line = 1;
    int col = 1;
};

class Lexer
{
  public:
    explicit Lexer(const std::string &src) : src_(src) {}

    std::vector<Token>
    run()
    {
        std::vector<Token> out;
        for (;;) {
            skipSpace();
            Token t;
            t.line = line_;
            t.col = col_;
            if (pos_ >= src_.size()) {
                t.kind = Tok::Eof;
                out.push_back(t);
                return out;
            }
            char c = src_[pos_];
            if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
                while (pos_ < src_.size() &&
                       (std::isalnum(static_cast<unsigned char>(
                            src_[pos_])) ||
                        src_[pos_] == '_'))
                    t.text += get();
                t.kind = Tok::Ident;
            } else if (std::isdigit(static_cast<unsigned char>(c))) {
                lexNumber(t);
            } else {
                lexPunct(t);
            }
            out.push_back(std::move(t));
        }
    }

  private:
    char
    get()
    {
        char c = src_[pos_++];
        if (c == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        return c;
    }

    void
    skipSpace()
    {
        for (;;) {
            while (pos_ < src_.size() &&
                   std::isspace(static_cast<unsigned char>(src_[pos_])))
                get();
            if (pos_ + 1 < src_.size() && src_[pos_] == '/' &&
                src_[pos_ + 1] == '/') {
                while (pos_ < src_.size() && src_[pos_] != '\n')
                    get();
                continue;
            }
            if (pos_ + 1 < src_.size() && src_[pos_] == '/' &&
                src_[pos_ + 1] == '*') {
                get();
                get();
                while (pos_ + 1 < src_.size() &&
                       !(src_[pos_] == '*' && src_[pos_ + 1] == '/'))
                    get();
                if (pos_ + 1 >= src_.size())
                    fatal("minic:%d:%d: unterminated comment", line_,
                          col_);
                get();
                get();
                continue;
            }
            return;
        }
    }

    void
    lexNumber(Token &t)
    {
        std::string num;
        bool isFloat = false;
        if (src_[pos_] == '0' && pos_ + 1 < src_.size() &&
            (src_[pos_ + 1] == 'x' || src_[pos_ + 1] == 'X')) {
            num += get();
            num += get();
            while (pos_ < src_.size() &&
                   std::isxdigit(static_cast<unsigned char>(src_[pos_])))
                num += get();
            t.kind = Tok::IntLit;
            t.intVal = static_cast<int64_t>(
                std::strtoull(num.c_str(), nullptr, 16));
            return;
        }
        while (pos_ < src_.size() &&
               std::isdigit(static_cast<unsigned char>(src_[pos_])))
            num += get();
        if (pos_ < src_.size() && src_[pos_] == '.') {
            isFloat = true;
            num += get();
            while (pos_ < src_.size() &&
                   std::isdigit(static_cast<unsigned char>(src_[pos_])))
                num += get();
        }
        if (pos_ < src_.size() &&
            (src_[pos_] == 'e' || src_[pos_] == 'E')) {
            isFloat = true;
            num += get();
            if (pos_ < src_.size() &&
                (src_[pos_] == '+' || src_[pos_] == '-'))
                num += get();
            while (pos_ < src_.size() &&
                   std::isdigit(static_cast<unsigned char>(src_[pos_])))
                num += get();
        }
        if (isFloat) {
            t.kind = Tok::FloatLit;
            t.fltVal = std::strtod(num.c_str(), nullptr);
        } else {
            t.kind = Tok::IntLit;
            t.intVal = static_cast<int64_t>(
                std::strtoull(num.c_str(), nullptr, 10));
        }
    }

    void
    lexPunct(Token &t)
    {
        static const char *two[] = {"==", "!=", "<=", ">=", "&&", "||",
                                    "<<", ">>", "+=", "-=", "*=", "/=",
                                    "%="};
        t.kind = Tok::Punct;
        if (pos_ + 1 < src_.size()) {
            std::string pair = src_.substr(pos_, 2);
            for (const char *p : two) {
                if (pair == p) {
                    t.text = pair;
                    get();
                    get();
                    return;
                }
            }
        }
        t.text = std::string(1, get());
    }

    const std::string &src_;
    size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
};

// --- Types -----------------------------------------------------------------

/** A MiniC type: long / double / void, with an optional pointer level. */
struct Ty {
    enum class Base { Long, Double, Void } base = Base::Long;
    int ptr = 0; // 0 = scalar, 1 = pointer-to-base

    bool isPtr() const { return ptr > 0; }
    bool isLong() const { return !isPtr() && base == Base::Long; }
    bool isDouble() const { return !isPtr() && base == Base::Double; }
    bool isVoid() const { return !isPtr() && base == Base::Void; }

    Type
    irType() const
    {
        if (isPtr())
            return Type::Ptr;
        switch (base) {
          case Base::Long: return Type::I64;
          case Base::Double: return Type::F64;
          case Base::Void: return Type::Void;
        }
        return Type::Void;
    }

    /** Memory access type when this is the pointee. */
    Type
    elemAccess() const
    {
        return base == Base::Double ? Type::F64 : Type::I64;
    }

    std::string
    str() const
    {
        std::string s = base == Base::Long ? "long"
                      : base == Base::Double ? "double"
                                             : "void";
        for (int i = 0; i < ptr; ++i)
            s += "*";
        return s;
    }
};

/** An evaluated expression: an rvalue, optionally backed by an address
 *  (lvalues defer their load until the value is actually needed). */
struct Val {
    Ty type;
    ValueId rv = kNoValue;   ///< materialized rvalue, if any
    ValueId addr = kNoValue; ///< address, if this is an lvalue
};

// --- Parser / code generator -------------------------------------------------

class Parser
{
  public:
    Parser(std::vector<Token> toks, const std::string &name)
        : toks_(std::move(toks)), mb_(name)
    {}

    Module
    run()
    {
        prescanFunctions();
        while (!at(Tok::Eof))
            topLevel();
        return mb_.finish("main");
    }

  private:
    struct FuncSig {
        Ty ret;
        std::vector<Ty> params;
        FuncBuilder *fb = nullptr;
        uint32_t id = 0;
    };
    struct Local {
        uint32_t slot = 0; ///< alloca slot
        Ty type;
        bool isArray = false;
    };
    struct GlobalSym {
        uint32_t id = 0;
        Ty type;
        bool isArray = false;
        bool isTls = false;
    };
    struct LoopCtx {
        uint32_t continueTarget;
        uint32_t breakTarget;
    };

    // --- Token helpers -----------------------------------------------------

    const Token &peek(size_t ahead = 0) const
    {
        size_t i = pos_ + ahead;
        return i < toks_.size() ? toks_[i] : toks_.back();
    }
    bool at(Tok k) const { return peek().kind == k; }
    bool
    atPunct(const char *p) const
    {
        return peek().kind == Tok::Punct && peek().text == p;
    }
    bool
    atIdent(const char *name) const
    {
        return peek().kind == Tok::Ident && peek().text == name;
    }
    Token
    next()
    {
        Token t = peek();
        if (pos_ < toks_.size() - 1)
            ++pos_;
        return t;
    }
    void
    expectPunct(const char *p)
    {
        if (!atPunct(p))
            fail("expected '%s', got '%s'", p, peek().text.c_str());
        next();
    }
    std::string
    expectIdent()
    {
        if (!at(Tok::Ident))
            fail("expected identifier, got '%s'", peek().text.c_str());
        return next().text;
    }
    template <typename... Args>
    [[noreturn]] void
    fail(const char *fmt, Args... args)
    {
        std::string msg = strfmt(fmt, args...);
        fatal("minic:%d:%d: %s", peek().line, peek().col, msg.c_str());
    }

    bool
    atType() const
    {
        return atIdent("long") || atIdent("double") || atIdent("void");
    }

    Ty
    parseType()
    {
        Ty ty;
        std::string base = expectIdent();
        if (base == "long")
            ty.base = Ty::Base::Long;
        else if (base == "double")
            ty.base = Ty::Base::Double;
        else if (base == "void")
            ty.base = Ty::Base::Void;
        else
            fail("unknown type '%s'", base.c_str());
        while (atPunct("*")) {
            next();
            ++ty.ptr;
        }
        if (ty.ptr > 1)
            fail("only single-level pointers are supported");
        if (ty.isVoid() && ty.ptr)
            fail("void* is not supported; use long*");
        return ty;
    }

    // --- Pre-scan: function signatures for forward references -------------

    void
    prescanFunctions()
    {
        size_t save = pos_;
        int depth = 0;
        while (!at(Tok::Eof)) {
            if (atPunct("{")) {
                ++depth;
                next();
                continue;
            }
            if (atPunct("}")) {
                --depth;
                next();
                continue;
            }
            if (depth != 0 || !atType()) {
                next();
                continue;
            }
            size_t declStart = pos_;
            Ty ret = parseType();
            if (!at(Tok::Ident)) {
                continue; // stray type token; body parse will complain
            }
            std::string name = next().text;
            if (!atPunct("(")) {
                pos_ = declStart;
                // A global declaration; skip to ';'.
                while (!atPunct(";") && !at(Tok::Eof))
                    next();
                continue;
            }
            next(); // '('
            FuncSig sig;
            sig.ret = ret;
            std::vector<Type> irParams;
            if (!atPunct(")")) {
                for (;;) {
                    Ty pt = parseType();
                    expectIdent();
                    sig.params.push_back(pt);
                    irParams.push_back(pt.irType());
                    if (atPunct(","))
                        next();
                    else
                        break;
                }
            }
            expectPunct(")");
            if (funcs_.count(name))
                fail("duplicate function '%s'", name.c_str());
            sig.fb = &mb_.defineFunc(name, ret.irType(), irParams);
            sig.id = mb_.findFunc(name);
            funcs_[name] = sig;
        }
        pos_ = save;
    }

    // --- Top level ---------------------------------------------------------

    void
    topLevel()
    {
        bool isTls = false;
        if (atIdent("thread")) {
            next();
            isTls = true;
        }
        if (!atType())
            fail("expected a declaration, got '%s'",
                 peek().text.c_str());
        Ty ty = parseType();
        std::string name = expectIdent();
        if (atPunct("(")) {
            if (isTls)
                fail("functions cannot be thread-local");
            parseFunctionBody(name);
            return;
        }
        // Global variable.
        if (globals_.count(name) || funcs_.count(name))
            fail("duplicate symbol '%s'", name.c_str());
        GlobalSym g;
        g.type = ty;
        g.isTls = isTls;
        uint64_t bytes = 8;
        if (atPunct("[")) {
            next();
            if (!at(Tok::IntLit))
                fail("array size must be an integer literal");
            int64_t n = next().intVal;
            if (n <= 0)
                fail("array size must be positive");
            bytes = static_cast<uint64_t>(n) * 8;
            g.isArray = true;
            expectPunct("]");
        }
        g.id = mb_.addGlobal(name, bytes, 8, false, isTls);
        globals_[name] = g;
        expectPunct(";");
    }

    void
    parseFunctionBody(const std::string &name)
    {
        FuncSig &sig = funcs_.at(name);
        f_ = sig.fb;
        curSig_ = &sig;
        scopes_.clear();
        scopes_.emplace_back(); // parameter scope
        loops_.clear();

        // Re-parse the parameter list, binding names to allocas.
        expectPunct("(") /* never fails: prescan validated */;
        size_t idx = 0;
        if (!atPunct(")")) {
            for (;;) {
                parseType();
                std::string pname = expectIdent();
                Local loc;
                loc.type = sig.params[idx];
                loc.slot = f_->declareAlloca(8, 8, pname);
                declareLocal(pname, loc);
                f_->store(loc.type.irType() == Type::F64 ? Type::F64
                          : loc.type.isPtr() ? Type::Ptr
                                             : Type::I64,
                          f_->allocaAddr(loc.slot),
                          f_->param(idx));
                ++idx;
                if (atPunct(","))
                    next();
                else
                    break;
            }
        }
        expectPunct(")");
        parseBlock();
        // Implicit return for void functions / fallthrough.
        if (sig.ret.isVoid()) {
            f_->ret();
        } else {
            Val zero = makeInt(0);
            f_->ret(coerce(zero, sig.ret).rv);
        }
        f_ = nullptr;
        curSig_ = nullptr;
    }

    // --- Statements ----------------------------------------------------------

    void
    parseBlock()
    {
        expectPunct("{");
        scopes_.emplace_back();
        while (!atPunct("}"))
            parseStatement();
        scopes_.pop_back();
        next();
    }

    void
    declareLocal(const std::string &name, const Local &loc)
    {
        auto &scope = scopes_.back();
        if (scope.count(name))
            fail("duplicate local '%s' in this scope", name.c_str());
        scope[name] = loc;
    }

    const Local *
    findLocal(const std::string &name) const
    {
        for (size_t s = scopes_.size(); s-- > 0;) {
            auto it = scopes_[s].find(name);
            if (it != scopes_[s].end())
                return &it->second;
        }
        return nullptr;
    }

    void
    parseStatement()
    {
        if (atPunct("{")) {
            parseBlock();
            return;
        }
        if (atPunct(";")) {
            next();
            return;
        }
        if (atType()) {
            parseLocalDecl();
            return;
        }
        if (atIdent("if")) {
            parseIf();
            return;
        }
        if (atIdent("while")) {
            parseWhile();
            return;
        }
        if (atIdent("for")) {
            parseFor();
            return;
        }
        if (atIdent("return")) {
            next();
            if (curSig_->ret.isVoid()) {
                expectPunct(";");
                f_->ret();
            } else {
                Val v = rvalue(parseExpr());
                expectPunct(";");
                f_->ret(coerce(v, curSig_->ret).rv);
            }
            startDeadBlock();
            return;
        }
        if (atIdent("break") || atIdent("continue")) {
            bool isBreak = next().text == "break";
            expectPunct(";");
            if (loops_.empty())
                fail("%s outside of a loop",
                     isBreak ? "break" : "continue");
            f_->br(isBreak ? loops_.back().breakTarget
                           : loops_.back().continueTarget);
            startDeadBlock();
            return;
        }
        if (atIdent("migrate_point") && peek(1).text == "(") {
            next();
            expectPunct("(");
            expectPunct(")");
            expectPunct(";");
            f_->migPoint();
            return;
        }
        parseSimpleStatement();
        expectPunct(";");
    }

    /** Assignment or expression statement (no trailing ';'). */
    void
    parseSimpleStatement()
    {
        Val lhs = parseExpr();
        static const char *assigns[] = {"=", "+=", "-=", "*=", "/=",
                                        "%="};
        for (const char *a : assigns) {
            if (atPunct(a)) {
                if (lhs.addr == kNoValue)
                    fail("left side of '%s' is not assignable", a);
                next();
                Val rhs = rvalue(parseExpr());
                if (a[0] != '=') {
                    // Compound: lhs OP rhs.
                    Val cur = rvalue(lhs);
                    std::string op(1, a[0]);
                    rhs = binaryOp(op, cur, rhs);
                }
                rhs = coerce(rhs, lhs.type);
                f_->store(lhs.type.isPtr() ? Type::Ptr
                          : lhs.type.isDouble() ? Type::F64
                                                : Type::I64,
                          lhs.addr, rhs.rv);
                return;
            }
        }
        // Plain expression statement: value discarded.
    }

    void
    parseLocalDecl()
    {
        Ty ty = parseType();
        for (;;) {
            std::string name = expectIdent();
            Local loc;
            loc.type = ty;
            if (atPunct("[")) {
                next();
                if (!at(Tok::IntLit))
                    fail("array size must be an integer literal");
                int64_t n = next().intVal;
                if (n <= 0)
                    fail("array size must be positive");
                expectPunct("]");
                loc.isArray = true;
                loc.slot = f_->declareAlloca(
                    static_cast<uint32_t>(n) * 8, 8, name);
            } else {
                loc.slot = f_->declareAlloca(8, 8, name);
            }
            declareLocal(name, loc);
            if (atPunct("=")) {
                if (loc.isArray)
                    fail("array initializers are not supported");
                next();
                Val v = coerce(rvalue(parseExpr()), ty);
                f_->store(ty.isPtr() ? Type::Ptr
                          : ty.isDouble() ? Type::F64
                                          : Type::I64,
                          f_->allocaAddr(loc.slot), v.rv);
            }
            if (atPunct(",")) {
                next();
                continue;
            }
            break;
        }
        expectPunct(";");
    }

    void
    parseIf()
    {
        next();
        expectPunct("(");
        ValueId cond = truth(rvalue(parseExpr()));
        expectPunct(")");
        uint32_t thenB = f_->newBlock();
        uint32_t elseB = f_->newBlock();
        uint32_t join = f_->newBlock();
        f_->condBr(cond, thenB, elseB);
        f_->setBlock(thenB);
        parseStatement();
        f_->br(join);
        f_->setBlock(elseB);
        if (atIdent("else")) {
            next();
            parseStatement();
        }
        f_->br(join);
        f_->setBlock(join);
    }

    void
    parseWhile()
    {
        next();
        uint32_t head = f_->newBlock();
        uint32_t body = f_->newBlock();
        uint32_t exit = f_->newBlock();
        f_->br(head);
        f_->setBlock(head);
        expectPunct("(");
        ValueId cond = truth(rvalue(parseExpr()));
        expectPunct(")");
        f_->condBr(cond, body, exit);
        f_->setBlock(body);
        loops_.push_back({head, exit});
        parseStatement();
        loops_.pop_back();
        f_->br(head);
        f_->setBlock(exit);
    }

    void
    parseFor()
    {
        next();
        expectPunct("(");
        scopes_.emplace_back(); // for-scope: the induction variable
        if (atPunct(";")) {
            next();
        } else if (atType()) {
            parseLocalDecl(); // consumes the ';'
        } else {
            parseSimpleStatement();
            expectPunct(";");
        }
        uint32_t head = f_->newBlock();
        uint32_t body = f_->newBlock();
        uint32_t step = f_->newBlock();
        uint32_t exit = f_->newBlock();
        f_->br(head);
        f_->setBlock(head);
        ValueId cond;
        if (atPunct(";")) {
            cond = f_->constInt(1);
        } else {
            cond = truth(rvalue(parseExpr()));
        }
        expectPunct(";");
        f_->condBr(cond, body, exit);
        // Step clause is parsed now but must execute after the body:
        // stash the tokens and re-parse them at the step block.
        size_t stepStart = pos_;
        int parens = 0;
        while (!(atPunct(")") && parens == 0)) {
            if (atPunct("("))
                ++parens;
            if (atPunct(")"))
                --parens;
            if (at(Tok::Eof))
                fail("unterminated for-clause");
            next();
        }
        size_t stepEnd = pos_;
        expectPunct(")");
        f_->setBlock(body);
        loops_.push_back({step, exit});
        parseStatement();
        loops_.pop_back();
        f_->br(step);
        f_->setBlock(step);
        if (stepEnd > stepStart) {
            size_t save = pos_;
            pos_ = stepStart;
            parseSimpleStatement();
            if (pos_ != stepEnd)
                fail("malformed for-step clause");
            pos_ = save;
        }
        f_->br(head);
        f_->setBlock(exit);
        scopes_.pop_back();
    }

    /** After an unconditional transfer: park emission in a fresh,
     *  unreachable block so trailing statements stay legal. */
    void
    startDeadBlock()
    {
        uint32_t dead = f_->newBlock();
        f_->setBlock(dead);
    }

    // --- Expressions -----------------------------------------------------------

    Val
    makeInt(int64_t v)
    {
        Val out;
        out.type = Ty{Ty::Base::Long, 0};
        out.rv = f_->constInt(v);
        return out;
    }

    /** Materialize the rvalue of a (possibly lvalue) Val. */
    Val
    rvalue(Val v)
    {
        if (v.rv != kNoValue)
            return v;
        XISA_CHECK(v.addr != kNoValue, "value with neither rv nor addr");
        Type access = v.type.isPtr() ? Type::Ptr
                    : v.type.isDouble() ? Type::F64
                                        : Type::I64;
        v.rv = f_->load(access, v.addr);
        return v;
    }

    /** Convert to `want` (long<->double, long<->ptr reinterpret). */
    Val
    coerce(Val v, Ty want)
    {
        v = rvalue(v);
        if (v.type.isDouble() && !want.isDouble()) {
            v.rv = f_->fptosi(v.rv);
            v.type = want;
            if (want.isPtr())
                fail("cannot convert double to pointer");
            return v;
        }
        if (!v.type.isDouble() && want.isDouble()) {
            v.rv = f_->sitofp(v.rv);
            v.type = want;
            return v;
        }
        v.type = want; // long <-> pointer: same representation
        return v;
    }

    /** 0/1 truth value of any scalar. */
    ValueId
    truth(Val v)
    {
        if (v.type.isDouble())
            return f_->fcmp(Cond::NE, v.rv, f_->constFloat(0.0));
        return f_->icmp(Cond::NE, v.rv, f_->constInt(0));
    }

    Val
    binaryOp(const std::string &op, Val lhs, Val rhs)
    {
        // Pointer arithmetic: ptr +/- long scales by the 8-byte element.
        if (lhs.type.isPtr() && (op == "+" || op == "-") &&
            rhs.type.isLong()) {
            Val out;
            out.type = lhs.type;
            ValueId scaled = f_->mulImm(rhs.rv, 8);
            out.rv = op == "+" ? f_->add(lhs.rv, scaled)
                               : f_->sub(lhs.rv, scaled);
            return out;
        }
        bool flt = lhs.type.isDouble() || rhs.type.isDouble();
        Ty ty = flt ? Ty{Ty::Base::Double, 0} : Ty{Ty::Base::Long, 0};
        if (flt) {
            lhs = coerce(lhs, ty);
            rhs = coerce(rhs, ty);
        }
        Val out;
        out.type = ty;
        auto cmp = [&](Cond c) {
            out.type = Ty{Ty::Base::Long, 0};
            out.rv = flt ? f_->fcmp(c, lhs.rv, rhs.rv)
                         : f_->icmp(c, lhs.rv, rhs.rv);
        };
        if (op == "+")
            out.rv = flt ? f_->fadd(lhs.rv, rhs.rv)
                         : f_->add(lhs.rv, rhs.rv);
        else if (op == "-")
            out.rv = flt ? f_->fsub(lhs.rv, rhs.rv)
                         : f_->sub(lhs.rv, rhs.rv);
        else if (op == "*")
            out.rv = flt ? f_->fmul(lhs.rv, rhs.rv)
                         : f_->mul(lhs.rv, rhs.rv);
        else if (op == "/")
            out.rv = flt ? f_->fdiv(lhs.rv, rhs.rv)
                         : f_->sdiv(lhs.rv, rhs.rv);
        else if (op == "%") {
            if (flt)
                fail("%% is integer-only");
            out.rv = f_->srem(lhs.rv, rhs.rv);
        } else if (op == "&")
            out.rv = f_->band(lhs.rv, rhs.rv);
        else if (op == "|")
            out.rv = f_->bor(lhs.rv, rhs.rv);
        else if (op == "^")
            out.rv = f_->bxor(lhs.rv, rhs.rv);
        else if (op == "<<")
            out.rv = f_->shl(lhs.rv, rhs.rv);
        else if (op == ">>")
            out.rv = f_->ashr(lhs.rv, rhs.rv);
        else if (op == "==")
            cmp(Cond::EQ);
        else if (op == "!=")
            cmp(Cond::NE);
        else if (op == "<")
            cmp(Cond::LT);
        else if (op == "<=")
            cmp(Cond::LE);
        else if (op == ">")
            cmp(Cond::GT);
        else if (op == ">=")
            cmp(Cond::GE);
        else
            fail("unsupported operator '%s'", op.c_str());
        if ((op == "&" || op == "|" || op == "^" || op == "<<" ||
             op == ">>") &&
            flt)
            fail("bitwise operators are integer-only");
        return out;
    }

    int
    precedence(const std::string &op) const
    {
        if (op == "||") return 1;
        if (op == "&&") return 2;
        if (op == "|") return 3;
        if (op == "^") return 4;
        if (op == "&") return 5;
        if (op == "==" || op == "!=") return 6;
        if (op == "<" || op == "<=" || op == ">" || op == ">=") return 7;
        if (op == "<<" || op == ">>") return 8;
        if (op == "+" || op == "-") return 9;
        if (op == "*" || op == "/" || op == "%") return 10;
        return 0;
    }

    Val
    parseExpr(int minPrec = 1)
    {
        Val lhs = parseUnary();
        for (;;) {
            if (!at(Tok::Punct))
                return lhs;
            std::string op = peek().text;
            int prec = precedence(op);
            if (prec < minPrec)
                return lhs;
            next();
            if (op == "&&" || op == "||") {
                lhs = shortCircuit(op, rvalue(lhs), prec);
                continue;
            }
            Val rhs = rvalue(parseExpr(prec + 1));
            lhs = binaryOp(op, rvalue(lhs), rhs);
        }
    }

    Val
    shortCircuit(const std::string &op, Val lhs, int prec)
    {
        ValueId res = f_->newReg(Type::I64);
        ValueId lhsTruth = truth(lhs);
        if (op == "&&") {
            f_->ifThenElse(
                lhsTruth,
                [&] {
                    Val rhs = rvalue(parseExpr(prec + 1));
                    f_->copy(res, truth(rhs));
                },
                [&] { f_->copy(res, f_->constInt(0)); });
        } else {
            f_->ifThenElse(
                lhsTruth, [&] { f_->copy(res, f_->constInt(1)); },
                [&] {
                    Val rhs = rvalue(parseExpr(prec + 1));
                    f_->copy(res, truth(rhs));
                });
        }
        Val out;
        out.type = Ty{Ty::Base::Long, 0};
        out.rv = res;
        return out;
    }

    Val
    parseUnary()
    {
        if (atPunct("-")) {
            next();
            Val v = rvalue(parseUnary());
            Val out;
            out.type = v.type;
            out.rv = v.type.isDouble() ? f_->fneg(v.rv) : f_->neg(v.rv);
            return out;
        }
        if (atPunct("!")) {
            next();
            Val v = rvalue(parseUnary());
            Val out;
            out.type = Ty{Ty::Base::Long, 0};
            out.rv = v.type.isDouble()
                         ? f_->fcmp(Cond::EQ, v.rv, f_->constFloat(0.0))
                         : f_->icmp(Cond::EQ, v.rv, f_->constInt(0));
            return out;
        }
        if (atPunct("~")) {
            next();
            Val v = rvalue(parseUnary());
            if (v.type.isDouble())
                fail("~ is integer-only");
            Val out;
            out.type = v.type;
            out.rv = f_->bxor(v.rv, f_->constInt(-1));
            return out;
        }
        if (atPunct("*")) {
            next();
            Val p = rvalue(parseUnary());
            if (!p.type.isPtr())
                fail("cannot dereference a non-pointer");
            Val out;
            out.type = Ty{p.type.base, 0};
            out.addr = p.rv;
            return out;
        }
        if (atPunct("&")) {
            next();
            Val v = parseUnary();
            if (v.addr == kNoValue)
                fail("cannot take the address of a temporary");
            Val out;
            out.type = Ty{v.type.base, 1};
            out.rv = v.addr;
            return out;
        }
        // Cast: (long) / (double) / (long*) / (double*).
        if (atPunct("(") &&
            (peek(1).text == "long" || peek(1).text == "double")) {
            next();
            Ty ty = parseType();
            expectPunct(")");
            Val v = rvalue(parseUnary());
            return coerce(v, ty);
        }
        return parsePostfix();
    }

    Val
    parsePostfix()
    {
        Val v = parsePrimary();
        for (;;) {
            if (atPunct("[")) {
                next();
                Val idx = coerce(rvalue(parseExpr()),
                                 Ty{Ty::Base::Long, 0});
                expectPunct("]");
                if (!v.type.isPtr())
                    fail("indexing a non-pointer");
                Val out;
                out.type = Ty{v.type.base, 0};
                Val base = rvalue(v);
                out.addr =
                    f_->add(base.rv, f_->mulImm(idx.rv, 8));
                v = out;
                continue;
            }
            return v;
        }
    }

    Val
    parsePrimary()
    {
        if (at(Tok::IntLit))
            return makeInt(next().intVal);
        if (at(Tok::FloatLit)) {
            Val v;
            v.type = Ty{Ty::Base::Double, 0};
            v.rv = f_->constFloat(next().fltVal);
            return v;
        }
        if (atPunct("(")) {
            next();
            Val v = parseExpr();
            expectPunct(")");
            return v;
        }
        if (!at(Tok::Ident))
            fail("expected an expression, got '%s'",
                 peek().text.c_str());
        std::string name = next().text;
        if (atPunct("("))
            return parseCall(name);

        // Variable reference.
        if (const Local *found = findLocal(name)) {
            const Local &loc = *found;
            Val v;
            if (loc.isArray) {
                v.type = Ty{loc.type.base, 1};
                v.rv = f_->allocaAddr(loc.slot);
            } else {
                v.type = loc.type;
                v.addr = f_->allocaAddr(loc.slot);
            }
            return v;
        }
        auto git = globals_.find(name);
        if (git != globals_.end()) {
            const GlobalSym &g = git->second;
            ValueId base = g.isTls ? f_->tlsAddr(g.id)
                                   : f_->globalAddr(g.id);
            Val v;
            if (g.isArray) {
                v.type = Ty{g.type.base, 1};
                v.rv = base;
            } else {
                v.type = g.type;
                v.addr = base;
            }
            return v;
        }
        auto fit = funcs_.find(name);
        if (fit != funcs_.end()) {
            // Function reference (for thread_spawn): its code address.
            Val v;
            v.type = Ty{Ty::Base::Long, 1};
            v.rv = f_->funcAddr(fit->second.id);
            return v;
        }
        fail("unknown identifier '%s'", name.c_str());
    }

    Val
    parseCall(const std::string &name)
    {
        expectPunct("(");
        std::vector<Val> args;
        if (!atPunct(")")) {
            for (;;) {
                args.push_back(rvalue(parseExpr()));
                if (atPunct(","))
                    next();
                else
                    break;
            }
        }
        expectPunct(")");

        // User functions first, then runtime builtins by name.
        uint32_t funcId;
        Ty retTy;
        std::vector<Ty> paramTys;
        auto fit = funcs_.find(name);
        if (fit != funcs_.end()) {
            funcId = fit->second.id;
            retTy = fit->second.ret;
            paramTys = fit->second.params;
        } else {
            funcId = builtinByName(name);
            const IRFunction &sig = mb_.signature(funcId);
            retTy = sig.retType == Type::F64
                        ? Ty{Ty::Base::Double, 0}
                        : sig.retType == Type::Void
                              ? Ty{Ty::Base::Void, 0}
                              : Ty{Ty::Base::Long,
                                   sig.retType == Type::Ptr ? 1 : 0};
            for (Type t : sig.paramTypes)
                paramTys.push_back(
                    t == Type::F64
                        ? Ty{Ty::Base::Double, 0}
                        : Ty{Ty::Base::Long, t == Type::Ptr ? 1 : 0});
        }
        if (args.size() != paramTys.size())
            fail("'%s' expects %zu arguments, got %zu", name.c_str(),
                 paramTys.size(), args.size());
        std::vector<ValueId> irArgs;
        for (size_t i = 0; i < args.size(); ++i)
            irArgs.push_back(coerce(args[i], paramTys[i]).rv);
        Val out;
        out.type = retTy;
        if (retTy.isVoid()) {
            f_->callVoid(funcId, irArgs);
            out.rv = kNoValue;
        } else {
            out.rv = f_->call(funcId, irArgs);
        }
        return out;
    }

    uint32_t
    builtinByName(const std::string &name)
    {
        static const std::map<std::string, Builtin> builtins = {
            {"malloc", Builtin::Malloc},
            {"free", Builtin::Free},
            {"print_i64", Builtin::PrintI64},
            {"print_f64", Builtin::PrintF64},
            {"thread_spawn", Builtin::ThreadSpawn},
            {"thread_join", Builtin::ThreadJoin},
            {"barrier_wait", Builtin::BarrierWait},
            {"memcpy", Builtin::Memcpy},
            {"memset", Builtin::Memset},
            {"exit", Builtin::Exit},
            {"thread_id", Builtin::ThreadId},
            {"node_id", Builtin::NodeId},
        };
        auto it = builtins.find(name);
        if (it == builtins.end())
            fail("unknown function '%s'", name.c_str());
        return mb_.builtin(it->second);
    }

    std::vector<Token> toks_;
    size_t pos_ = 0;
    ModuleBuilder mb_;
    std::map<std::string, FuncSig> funcs_;
    std::map<std::string, GlobalSym> globals_;
    std::vector<std::map<std::string, Local>> scopes_;
    std::vector<LoopCtx> loops_;
    FuncBuilder *f_ = nullptr;
    FuncSig *curSig_ = nullptr;
};

} // namespace

Module
compileMiniC(const std::string &source, const std::string &moduleName)
{
    Lexer lex(source);
    Parser parser(lex.run(), moduleName);
    return parser.run();
}

} // namespace xisa
