/**
 * @file
 * MiniC -- a small C-like front end for the CrossBound toolchain.
 *
 * The paper's prototype "currently only targets applications written in
 * C" (Section 5); MiniC plays that role here: a C-flavoured language
 * compiled to BIR, which then flows through the optimizer, the
 * migration-point passes, and the per-ISA backends like any other
 * module. Programs written in MiniC therefore migrate between ISAs
 * with no source changes -- the paper's "no developer intervention"
 * requirement.
 *
 * Language summary:
 *   types        long (i64), double (f64), long* / double* (ptr), void
 *   globals      long g; double d; long arr[N]; thread long t; (TLS)
 *   functions    long f(long a, double b) { ... }   (forward refs OK)
 *   statements   declarations with initializers, assignment (including
 *                *p = e, a[i] = e, and compound += -= *= /=), if/else,
 *                while, for, return, break, continue, expression
 *                statements, { blocks }
 *   expressions  full C precedence: || && | ^ & == != < <= > >= << >>
 *                + - * / % , unary - ! * (deref) & (address-of),
 *                calls, a[i] indexing, (casts) (long)/(double),
 *                integer and floating literals
 *   builtins     print_i64, print_f64, malloc, free, memcpy, memset,
 *                thread_spawn, thread_join, barrier_wait, exit,
 *                thread_id, node_id
 *
 * Scalars live in allocas (like C at -O0) so address-of works; the
 *  optimizer removes the resulting traffic where it can.
 */

#ifndef XISA_FRONTEND_MINIC_HH
#define XISA_FRONTEND_MINIC_HH

#include <string>

#include "ir/ir.hh"

namespace xisa {

/**
 * Compile MiniC source text into a verified BIR module.
 * Throws FatalError with file:line:col diagnostics on any lexical,
 * syntactic, or semantic error.
 */
Module compileMiniC(const std::string &source,
                    const std::string &moduleName = "minic");

} // namespace xisa

#endif // XISA_FRONTEND_MINIC_HH
