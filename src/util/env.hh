/**
 * @file
 * Tiny environment-variable helpers shared by the runtime knobs.
 */

#ifndef XISA_UTIL_ENV_HH
#define XISA_UTIL_ENV_HH

#include <cstdlib>

namespace xisa {

/** True if `name` is set to a non-empty value other than "0". */
inline bool
envFlag(const char *name)
{
    const char *v = std::getenv(name);
    return v && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

/**
 * True if XISA_SLOW_PATH is set: components built while it is set run
 * the reference (pre-predecode, pre-TLB) execution paths. The flag is
 * sampled at component construction, so differential tests flip it
 * between constructing the reference and fast instances.
 */
inline bool
slowPathRequested()
{
    return envFlag("XISA_SLOW_PATH");
}

/**
 * True if XISA_SLOW_SCHED is set: ClusterSims built while it is set
 * drive the run with the pre-heap stepping loop (rescan every machine
 * per event) instead of the event heap -- the differential oracle for
 * the event-driven core (DESIGN.md §11). Like XISA_SLOW_PATH the flag
 * is sampled at construction, so equivalence tests flip it between
 * constructing the oracle and fast instances.
 */
inline bool
slowSchedRequested()
{
    return envFlag("XISA_SLOW_SCHED");
}

/**
 * True unless XISA_THREADED=0: components built while it is unset (or
 * set to anything but "0") use the superblock threaded-code engine on
 * top of the fast path (DESIGN.md §10). Like XISA_SLOW_PATH the flag is
 * sampled at component construction, so differential tests can pin an
 * instance to the plain fast path by flipping it around construction.
 */
inline bool
threadedRequested()
{
    const char *v = std::getenv("XISA_THREADED");
    return !(v && v[0] == '0' && v[1] == '\0');
}

} // namespace xisa

#endif // XISA_UTIL_ENV_HH
