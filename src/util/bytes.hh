/**
 * @file
 * Little-endian byte-stream writer/reader shared by the binary format,
 * the DSM snapshotter, and container checkpoints. The reader
 * bounds-checks every access and fatal()s with a diagnostic on
 * truncation or implausible lengths, so corrupt inputs fail loudly.
 */

#ifndef XISA_UTIL_BYTES_HH
#define XISA_UTIL_BYTES_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/logging.hh"

namespace xisa {

/** Append-only little-endian encoder. */
class ByteWriter
{
  public:
    std::vector<uint8_t> out;

    void
    raw(const void *src, size_t n)
    {
        const uint8_t *s = static_cast<const uint8_t *>(src);
        out.insert(out.end(), s, s + n);
    }
    void u8(uint8_t v) { raw(&v, 1); }
    void u32(uint32_t v) { raw(&v, 4); }
    void u64(uint64_t v) { raw(&v, 8); }
    void i64(int64_t v) { raw(&v, 8); }
    void f64(double v) { raw(&v, 8); }

    void
    str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        raw(s.data(), s.size());
    }

    void
    blob(const std::vector<uint8_t> &v)
    {
        u64(v.size());
        raw(v.data(), v.size());
    }

    template <typename T, typename Fn>
    void
    list(const std::vector<T> &v, Fn fn)
    {
        u32(static_cast<uint32_t>(v.size()));
        for (const T &e : v)
            fn(e);
    }
};

/** Bounds-checked little-endian decoder. */
class ByteReader
{
  public:
    explicit ByteReader(const std::vector<uint8_t> &data) : data_(data) {}

    void
    raw(void *dst, size_t n)
    {
        if (pos_ + n > data_.size())
            fatal("byte stream truncated at offset %zu", pos_);
        std::memcpy(dst, data_.data() + pos_, n);
        pos_ += n;
    }
    uint8_t u8() { uint8_t v; raw(&v, 1); return v; }
    uint32_t u32() { uint32_t v; raw(&v, 4); return v; }
    uint64_t u64() { uint64_t v; raw(&v, 8); return v; }
    int64_t i64() { int64_t v; raw(&v, 8); return v; }
    double f64() { double v; raw(&v, 8); return v; }

    std::string
    str()
    {
        uint32_t n = u32();
        if (n > 1u << 20)
            fatal("byte-stream string length %u implausible", n);
        std::string s(n, '\0');
        raw(s.data(), n);
        return s;
    }

    std::vector<uint8_t>
    blob()
    {
        uint64_t n = u64();
        if (pos_ + n > data_.size())
            fatal("byte-stream blob of %llu bytes truncated",
                  static_cast<unsigned long long>(n));
        std::vector<uint8_t> v(data_.begin() +
                                   static_cast<ptrdiff_t>(pos_),
                               data_.begin() +
                                   static_cast<ptrdiff_t>(pos_ + n));
        pos_ += n;
        return v;
    }

    template <typename T, typename Fn>
    std::vector<T>
    list(Fn fn)
    {
        uint32_t n = u32();
        if (n > 1u << 24)
            fatal("byte-stream list of %u entries implausible", n);
        std::vector<T> v;
        v.reserve(n);
        for (uint32_t i = 0; i < n; ++i)
            v.push_back(fn());
        return v;
    }

    bool done() const { return pos_ == data_.size(); }
    size_t position() const { return pos_; }

  private:
    const std::vector<uint8_t> &data_;
    size_t pos_ = 0;
};

} // namespace xisa

#endif // XISA_UTIL_BYTES_HH
