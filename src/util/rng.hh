/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of CrossBound (workload generators, scheduler
 * arrival processes, cache warm-up jitter) draw from Rng so experiments
 * are reproducible from a seed.
 */

#ifndef XISA_UTIL_RNG_HH
#define XISA_UTIL_RNG_HH

#include <cstdint>

namespace xisa {

/**
 * xoshiro256** generator seeded through SplitMix64.
 *
 * Small, fast, and good enough statistically for simulation use; not for
 * cryptography.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed. */
    void
    reseed(uint64_t seed)
    {
        // SplitMix64 to spread the seed across the full state.
        for (auto &word : state_) {
            seed += 0x9e3779b97f4a7c15ull;
            uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        // Rejection sampling to remove modulo bias.
        const uint64_t threshold = -bound % bound;
        for (;;) {
            uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    between(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
                        below(static_cast<uint64_t>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + uniform() * (hi - lo);
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4] = {};
};

} // namespace xisa

#endif // XISA_UTIL_RNG_HH
