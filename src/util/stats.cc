#include "stats.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"

namespace xisa {

void
RunningStat::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    sum_ += x;
    ++count_;
}

double
RunningStat::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
RunningStat::min() const
{
    return count_ ? min_ : 0.0;
}

double
RunningStat::max() const
{
    return count_ ? max_ : 0.0;
}

std::string
BoxSummary::str(const char *numFmt) const
{
    std::string fmt = strfmt("%s/%s/%s/%s/%s", numFmt, numFmt, numFmt,
                             numFmt, numFmt);
    return strfmt(fmt.c_str(), min, q1, median, q3, max);
}

namespace {

// Type-7 quantile (linear interpolation), matching numpy's default.
double
quantileSorted(const std::vector<double> &xs, double q)
{
    if (xs.empty())
        return 0.0;
    if (xs.size() == 1)
        return xs[0];
    double pos = q * static_cast<double>(xs.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return xs[lo] + frac * (xs[hi] - xs[lo]);
}

} // namespace

BoxSummary
boxSummary(std::vector<double> samples)
{
    BoxSummary box;
    box.count = samples.size();
    if (samples.empty())
        return box;
    std::sort(samples.begin(), samples.end());
    box.min = samples.front();
    box.q1 = quantileSorted(samples, 0.25);
    box.median = quantileSorted(samples, 0.50);
    box.q3 = quantileSorted(samples, 0.75);
    box.max = samples.back();
    return box;
}

DecadeHistogram::DecadeHistogram(int lo, int hi) : lo_(lo), hi_(hi)
{
    if (hi < lo)
        fatal("DecadeHistogram: hi decade %d < lo decade %d", hi, lo);
    buckets_.assign(static_cast<size_t>(hi - lo + 1), 0);
}

void
DecadeHistogram::add(double x)
{
    if (x <= 0)
        fatal("DecadeHistogram: sample must be positive, got %g", x);
    int decade = static_cast<int>(std::floor(std::log10(x)));
    decade = std::clamp(decade, lo_, hi_);
    ++buckets_[static_cast<size_t>(decade - lo_)];
    ++total_;
}

uint64_t
DecadeHistogram::bucket(int decade) const
{
    if (decade < lo_ || decade > hi_)
        return 0;
    return buckets_[static_cast<size_t>(decade - lo_)];
}

std::string
DecadeHistogram::str() const
{
    std::string out;
    for (int d = lo_; d <= hi_; ++d)
        out += strfmt("10^%d: %llu\n", d,
                      static_cast<unsigned long long>(bucket(d)));
    return out;
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs) {
        if (x <= 0)
            fatal("geomean: sample must be positive, got %g", x);
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(xs.size()));
}

} // namespace xisa
