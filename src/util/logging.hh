/**
 * @file
 * Status and error reporting for the CrossBound libraries.
 *
 * Follows the gem5 convention: inform()/warn() report conditions to the
 * user without stopping execution; fatal() is for user errors (bad
 * configuration, invalid arguments) and throws FatalError; panic() is for
 * internal invariant violations (library bugs) and throws PanicError.
 * Both error paths throw rather than abort so the test suite can assert
 * on them.
 */

#ifndef XISA_UTIL_LOGGING_HH
#define XISA_UTIL_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace xisa {

/** Error caused by user input: bad configuration, invalid arguments. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Error caused by a violated internal invariant (a library bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Verbosity levels for user-facing messages. */
enum class LogLevel { Silent = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Set the global verbosity. Defaults to Warn. */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** va_list variant of strfmt(). */
std::string vstrfmt(const char *fmt, va_list ap);

/** Informative message the user should know but not worry about. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Something may not behave as well as it should. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Developer-facing debug chatter, hidden unless LogLevel::Debug. */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** User error: report and throw FatalError. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Library bug: report and throw PanicError. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace xisa

/**
 * Invariant check that survives NDEBUG builds. Use for conditions that
 * indicate a CrossBound bug, never for user-input validation.
 */
#define XISA_CHECK(cond, msg)                                               \
    do {                                                                    \
        if (!(cond))                                                        \
            ::xisa::panic("check failed: %s (%s:%d): %s", #cond, __FILE__,  \
                          __LINE__, msg);                                   \
    } while (0)

#endif // XISA_UTIL_LOGGING_HH
