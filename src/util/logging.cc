#include "logging.hh"

#include <cstdio>
#include <vector>

namespace xisa {

namespace {
LogLevel g_level = LogLevel::Warn;
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

std::string
vstrfmt(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (n > 0) {
        std::vector<char> buf(static_cast<size_t>(n) + 1);
        std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
        out.assign(buf.data(), static_cast<size_t>(n));
    }
    va_end(ap2);
    return out;
}

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    return s;
}

namespace {

void
emit(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // namespace

void
inform(const char *fmt, ...)
{
    if (g_level < LogLevel::Inform)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("info", vstrfmt(fmt, ap));
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    if (g_level < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("warn", vstrfmt(fmt, ap));
    va_end(ap);
}

void
debug(const char *fmt, ...)
{
    if (g_level < LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("debug", vstrfmt(fmt, ap));
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    emit("fatal", msg);
    throw FatalError(msg);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrfmt(fmt, ap);
    va_end(ap);
    emit("panic", msg);
    throw PanicError(msg);
}

} // namespace xisa
