/**
 * @file
 * Lightweight statistics containers used across the experiment harnesses:
 * running mean/min/max, five-number box summaries (Fig. 10), and
 * decade-bucketed histograms (Figs. 3-5).
 */

#ifndef XISA_UTIL_STATS_HH
#define XISA_UTIL_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace xisa {

/** Incremental mean / min / max / count over doubles. */
class RunningStat
{
  public:
    /** Record one sample. */
    void add(double x);

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const;
    double min() const;
    double max() const;

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Five-number summary of a sample set (box plot backing data). */
struct BoxSummary {
    double min = 0.0;
    double q1 = 0.0;
    double median = 0.0;
    double q3 = 0.0;
    double max = 0.0;
    uint64_t count = 0;

    /** Render as "min/q1/med/q3/max" with the given format per number. */
    std::string str(const char *numFmt = "%.1f") const;
};

/**
 * Compute the five-number summary of a sample vector.
 *
 * Quartiles use linear interpolation between order statistics (type-7,
 * the numpy default). The input is copied and sorted internally.
 */
BoxSummary boxSummary(std::vector<double> samples);

/**
 * Histogram over powers-of-ten buckets, e.g. bucket k counts samples in
 * [10^k, 10^(k+1)). Reproduces the x-axes of the paper's Figs. 3-5
 * ("average number of instructions between function calls").
 */
class DecadeHistogram
{
  public:
    /**
     * @param lo lowest decade exponent (inclusive)
     * @param hi highest decade exponent (inclusive)
     */
    DecadeHistogram(int lo, int hi);

    /** Record a positive sample; clamps into the configured range. */
    void add(double x);

    int loDecade() const { return lo_; }
    int hiDecade() const { return hi_; }
    uint64_t bucket(int decade) const;
    uint64_t total() const { return total_; }

    /** One text row per decade: "10^k: count". */
    std::string str() const;

  private:
    int lo_;
    int hi_;
    std::vector<uint64_t> buckets_;
    uint64_t total_ = 0;
};

/** Geometric mean of a positive sample set; 0 if empty. */
double geomean(const std::vector<double> &xs);

} // namespace xisa

#endif // XISA_UTIL_STATS_HH
