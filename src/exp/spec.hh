/**
 * @file
 * Typed experiment specifications parsed from `.conf` files.
 *
 * A spec has two halves. The ClusterSpec is the hardware: node presets
 * or overrides ([node.*]), machines binding a node to power/load scale
 * ([machine.*]), pools of machines with a scheduling policy ([pool.*]),
 * and the link/sim/fault/crash plan ([net], [sim], [faults],
 * [crashes]). The ExperimentSpec is the study: which kind of run
 * (overhead sweep, sustained or rack scheduling study, single
 * container, open-loop serving with its [traffic] stream), which
 * workloads at which parameters, how many seeded sets, and how the
 * rows are labelled.
 *
 * parseExperiment() applies defaults, validates cross-references
 * (every pool machine must name a [machine.*], every policy must be a
 * scheduler policy, ...), and finishes with requireAllUsed() so any
 * key no consumer understood fails with its file:line.
 * serializeSpec() emits the canonical conf text -- every effective
 * value, defaults materialized -- and parse(serialize(s)) == s, which
 * the round-trip tests pin.
 */

#ifndef XISA_EXP_SPEC_HH
#define XISA_EXP_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dsm/faults.hh"
#include "exp/config.hh"
#include "exp/registry.hh"
#include "sched/cluster.hh"
#include "workload/workloads.hh"

namespace xisa::exp {

/** The kinds of experiment the runner can drive. */
enum class ExperimentKind { Overhead, Sustained, Rack, Single, Serving };

const char *kindName(ExperimentKind k);

/** [node.NAME]: a NodeSpec derived from a builtin preset. Zero-valued
 *  fields inherit the preset's value. */
struct NodeOverride {
    std::string name;
    std::string base; ///< "xeno" or "aether"
    int cores = 0;
    double freqGHz = 0;
    double idleWatts = 0;
    double maxWatts = 0;
    int memPenaltyCycles = 0;
};

/** [machine.NAME]: one server of a pool. */
struct MachineSpec {
    std::string name;
    std::string node; ///< "xeno", "aether", or a [node.*] name
    double powerScale = 1.0;
    double loadWeight = 1.0;
};

/** [pool.NAME]: machines + policy + display labels. */
struct PoolSpec {
    std::string name;
    /** Machine references, `NAME` or `NAME*COUNT`, in order. */
    std::vector<std::string> machineRefs;
    Policy policy = Policy::StaticBalanced;
    bool baseline = false;
    std::string label;      ///< rack-row label (defaults to name)
    std::string column;     ///< sustained column header
    int columnWidth = 0;    ///< header field width (0 = 21/25 default)
    std::string mkspLabel;  ///< sustained makespan-ratio header
    std::string shortLabel; ///< sustained summary-line label
};

/** One scripted machine failure (time/downtime in seconds). */
struct CrashSpec {
    int machine = 0;
    double time = 0;
};

/** The hardware half of a spec. */
struct ClusterSpec {
    std::vector<NodeOverride> nodes;
    std::vector<MachineSpec> machines;
    std::vector<PoolSpec> pools;
    // [sim]
    double rebalancePeriod = 1.0;
    double migrationFixedSeconds = 0.05;
    double workingSetMib = 2.0;
    double sleepFraction = 1.0;
    double checkpointPeriod = 5.0;
    // [net]
    double latencyUs = 1.2;
    double gbitPerSec = 40.0;
    // [faults] -- hasFaults false means the perfect link (and the
    // FaultConfig below is ignored).
    bool hasFaults = false;
    FaultConfig faults;
    // [crashes]
    std::vector<CrashSpec> crashPlan;
    double crashDownSeconds = 30.0;
    // [topology] -- machinesPerRack 0 means flat (section omitted
    // from the canonical serialization).
    TopologyConfig topo;

    /** Resolve a node reference ("xeno", "aether", or override name);
     *  throws ConfigError on an unknown name. */
    NodeSpec makeNode(const std::string &ref) const;
    /** Expand a pool's machine refs into scheduler Machines. */
    std::vector<Machine> makePool(const PoolSpec &pool) const;
    /** The ClusterSim configuration this spec describes. */
    ClusterSim::Config simConfig() const;
    const MachineSpec *findMachine(const std::string &name) const;
    const NodeOverride *findNode(const std::string &name) const;
};

/**
 * One correlated failure in a serving experiment ([failures] plan):
 * a whole failure domain goes out at once. `kind` picks the domain
 * type -- `tor` (a rack loses its top-of-rack switch), `pdu` (a rack
 * loses power), `agg` (a pod loses its aggregation switch), or
 * `partition` (a rack is cut off from the rest of the fleet but keeps
 * running; at the serving level its nodes are unreachable for the
 * window, and at the DSM level the same scenario is a
 * Topology::rackCut cut-set with epoch-fenced rejoin). `domain` is
 * the rack index (tor/pdu/partition) or pod index (agg) under the
 * spec's [topology]. `at`/`heal` are FRACTIONS of the active traffic
 * duration, converted to seconds once by exp::applyFailures -- the
 * unit rule FaultConfig documents.
 */
struct FailureSpec {
    std::string kind; ///< "tor" | "agg" | "pdu" | "partition"
    int domain = 0;   ///< rack or pod index under [topology]
    double at = 0;    ///< outage start, in [0, 1) of the run
    double heal = 0;  ///< outage end, in (at, 1]
};

/** One scripted shard move in a serving experiment. `time` is a
 *  FRACTION of the active traffic duration (quick mode shrinks the
 *  run; fractions keep the schedule structurally identical). */
struct ShardMigrationSpec {
    int shard = 0;
    double time = 0; ///< in [0, 1) of the run
    int node = 0;
};

/** The [traffic] section of a serving experiment (kind = serving):
 *  the open-loop REDIS request stream and its SLO. */
struct TrafficSpec {
    uint64_t seed = 42;
    int64_t clients = 200000;   ///< simulated client population
    double requestHz = 0.5;     ///< per-client arrival rate
    double duration = 2.0;      ///< sim seconds of traffic
    double durationQuick = 0;   ///< quick-mode duration (0: duration/8)
    double zipfSkew = 0.99;     ///< YCSB theta, 0 = uniform
    int64_t keySpace = 65536;
    double getFraction = 0.9;
    double sloUs = 800.0;
    int shards = 8;
    std::vector<int> placement; ///< shard -> machine index
    std::vector<ShardMigrationSpec> migratePlan;

    double activeDuration(bool quick) const
    {
        if (!quick)
            return duration;
        return durationQuick > 0 ? durationQuick : duration / 8.0;
    }
};

/** A named [paramset.NAME] forwarded to the workload registry. */
struct ParamSetSpec {
    std::string name;
    ParameterSet params;
};

/** The full experiment description. */
struct ExperimentSpec {
    std::string source; ///< file/diagnostic name (not serialized)
    ExperimentKind kind = ExperimentKind::Overhead;
    std::string figure;
    std::string title;
    std::string footer;
    std::string benchName = "xisa_exp";

    // kind = overhead
    std::vector<std::string> workloads; ///< registry refs
    std::vector<std::string> isas;      ///< "aether" / "xeno"
    std::vector<ProblemClass> classes, classesQuick;
    std::vector<int> threads, threadsQuick;

    // kind = sustained / rack
    int sets = 0, setsQuick = 0;
    uint64_t seedBase = 0;
    int jobsPerSet = 40;               ///< sustained
    int waves = 5;                     ///< rack
    int jobsPerWavePerMachine = 7;     ///< rack
    int poolMachines = 8;              ///< rack job-set scale basis

    // kind = single / serving
    std::string workloadRef;
    std::string singleMachines; ///< raw node-ref list (serialized form)
    std::vector<std::string> singleMachineRefs; ///< parsed from above
    int startNode = 0;
    uint64_t quantum = 4000;
    std::string dsmMode = "migrate"; ///< "migrate" | "remote"

    // kind = serving
    TrafficSpec traffic;
    /** [failures]: correlated domain outages (serving only). */
    std::vector<FailureSpec> failures;
    /** [failures] seed, reserved for randomized chaos schedules. */
    uint64_t failureSeed = 0xd04a11;
    /** Coldest popularity deciles shed while any failure window is
     *  open (BrownoutWindow::shedDeciles for every window). */
    int shedDeciles = 3;

    std::vector<ParamSetSpec> paramSets;
    ClusterSpec cluster;

    /** The class/thread/set sweeps for the current mode. */
    const std::vector<ProblemClass> &activeClasses(bool quick) const
    {
        return quick && !classesQuick.empty() ? classesQuick : classes;
    }
    const std::vector<int> &activeThreads(bool quick) const
    {
        return quick && !threadsQuick.empty() ? threadsQuick : threads;
    }
    int activeSets(bool quick) const
    {
        return quick && setsQuick > 0 ? setsQuick : sets;
    }
};

/** Parse + validate a spec; consumes the whole Config (leftover keys
 *  throw). */
ExperimentSpec parseExperiment(Config &conf);
/** Convenience: parseFile + parseExperiment. */
ExperimentSpec parseExperimentFile(const std::string &path);

/** Canonical conf text: every effective value, defaults materialized.
 *  parse(serialize(s)) reproduces s (the round-trip invariant). */
std::string serializeSpec(const ExperimentSpec &spec);

/** Build a registry seeded with the builtin workload table plus the
 *  spec's parameter sets. */
WorkloadRegistry makeRegistry(const ExperimentSpec &spec);

/** Parse "static-balanced" etc.; throws ConfigError otherwise. */
Policy parsePolicy(const std::string &s);

} // namespace xisa::exp

#endif // XISA_EXP_SPEC_HH
