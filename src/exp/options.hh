/**
 * @file
 * The shared command-line parser of the experiment harnesses.
 *
 * Every bench used to grow its own ad-hoc flag loop (fig06 peeled
 * --json/--sweep-json before the obs flags, the fault bench re-parsed
 * the obs flags inline, fig12 took no flags at all). parseCommonArgs()
 * replaces them: one flag grammar, selected per binary by a feature
 * mask, with one usage/exit-2 path for anything the binary did not
 * enable.
 *
 * Flags by feature:
 *   kOptObs      --stats, --stats-json FILE, --trace-out FILE
 *   kOptQuick    --quick (same as XISA_QUICK=1)
 *   kOptPerfJson --json FILE, --sweep-json FILE
 *   kOptFault    --fault-drop P, --fault-seed S, --fault-partition P,L
 *                --fault-crashes N, --fault-down SEC, --fault-crash=M@T
 *   kOptConfig   --config FILE: read defaults for the flags above from
 *                a .conf file ([output], [faults], [crashes], and the
 *                global `quick` key); explicit flags still win.
 *
 * Both `--flag value` and `--flag=value` spellings are accepted.
 */

#ifndef XISA_EXP_OPTIONS_HH
#define XISA_EXP_OPTIONS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/registry.hh"
#include "sched/cluster.hh"

namespace xisa::exp {

enum : unsigned {
    kOptObs = 1u << 0,
    kOptQuick = 1u << 1,
    kOptPerfJson = 1u << 2,
    kOptFault = 1u << 3,
    kOptConfig = 1u << 4,
    /** xisa_exp's own tool flags: --print-spec, --list-workloads. */
    kOptSpecTools = 1u << 5,
};

/** Parsed common options; fields outside the enabled features keep
 *  their defaults. */
struct Options {
    // kOptObs
    bool dumpStats = false;
    std::string statsJsonPath;
    std::string traceOutPath;
    // kOptPerfJson
    std::string perfJsonPath;
    std::string sweepJsonPath;
    // kOptFault
    double faultDrop = -1; ///< <0 = sweep the default drop ladder
    uint64_t faultSeed = 1;
    uint64_t faultPartitionPeriod = 0;
    uint64_t faultPartitionLen = 0;
    int faultCrashes = 2;
    double faultDownSeconds = 30.0;
    std::vector<CrashEvent> scriptedCrashes;
    // kOptConfig
    std::string configPath;
    // kOptSpecTools
    bool printSpec = false;
    bool listWorkloads = false;
    /** Non-flag arguments, in order (the runner's conf path). */
    std::vector<std::string> positional;
};

/**
 * Parse argv under the feature mask. Unknown flags (and known flags of
 * disabled features) print usage to stderr and exit(2); malformed
 * values exit(2) with a diagnostic. When kOptObs is enabled and
 * --trace-out was given, the global tracer is armed. When kOptQuick is
 * enabled and --quick was given, XISA_QUICK=1 is exported so the
 * sweep helpers and any child observers agree on the mode.
 * `extraUsage` lines are appended to the usage text.
 */
Options parseCommonArgs(int argc, char **argv, unsigned features,
                        const char *extraUsage = nullptr);

/** Emit whatever outputs the obs flags requested from `reg` and the
 *  global tracer; call once at the end of the harness. Prints nothing
 *  when no flag was given, so golden stdout is unaffected. */
void writeOutputs(const Options &o, obs::StatRegistry &reg);

} // namespace xisa::exp

#endif // XISA_EXP_OPTIONS_HH
