/**
 * @file
 * Sesc-style INI configuration files for the experiment platform
 * (ROADMAP item 5).
 *
 * Real simulators describe machines declaratively; the `.conf`
 * hierarchy of sesc is the model here. The dialect:
 *
 *   # comment to end of line
 *   key = value            # global (pre-section) key
 *   [section]              # sections keep declaration order
 *   key = 'quoted value'   # '...' literal, "..." with \n \t \\ \" escapes
 *   list = a, b, c         # lists are comma-separated
 *   ref  = $(key)          # textual expansion of a *global* key
 *
 * Every getter marks its key as consumed; after a consumer has pulled
 * everything it understands, requireAllUsed() turns any leftover key
 * into a diagnostic naming the file, section, and line -- a typo in an
 * experiment description fails loudly instead of silently running the
 * default it was trying to override.
 */

#ifndef XISA_EXP_CONFIG_HH
#define XISA_EXP_CONFIG_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace xisa::exp {

/** Any parse/validation failure of a config or spec; the message names
 *  the file and, when known, the line. */
class ConfigError : public std::runtime_error
{
  public:
    explicit ConfigError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** One parsed `key = value` with its provenance. */
struct ConfEntry {
    std::string key;
    std::string value; ///< unquoted, macro-expanded
    int line = 0;
    bool used = false; ///< touched by a getter (unknown-key diagnostics)
};

/** One parsed configuration file (or string). */
class Config
{
  public:
    /** Parse a file; throws ConfigError on I/O or syntax problems. */
    static Config parseFile(const std::string &path);
    /** Parse from memory; `name` labels diagnostics. */
    static Config parseString(const std::string &text,
                              const std::string &name = "<string>");

    const std::string &name() const { return name_; }

    bool hasSection(const std::string &section) const;
    /** Section names in declaration order (the global section "" is
     *  omitted). */
    std::vector<std::string> sectionNames() const;
    /** Declaration-ordered section names starting with `prefix`,
     *  e.g. "pool." -> {"pool.static", "pool.balanced", ...}. */
    std::vector<std::string>
    sectionsWithPrefix(const std::string &prefix) const;

    bool has(const std::string &section, const std::string &key) const;

    /** Keys of a section in declaration order (does not mark them
     *  used); empty for a missing section. */
    std::vector<std::string> keysOf(const std::string &section) const;

    /** Typed getters with defaults. Section "" reads global keys. All
     *  mark the key used; malformed values throw ConfigError. */
    std::string getString(const std::string &section,
                          const std::string &key,
                          const std::string &def = "") const;
    int64_t getInt(const std::string &section, const std::string &key,
                   int64_t def) const;
    double getDouble(const std::string &section, const std::string &key,
                     double def) const;
    bool getBool(const std::string &section, const std::string &key,
                 bool def) const;
    /** Comma-separated list; empty default when the key is absent. */
    std::vector<std::string>
    getList(const std::string &section, const std::string &key) const;

    /** Getters for keys that must exist (throw when absent). */
    std::string requireString(const std::string &section,
                              const std::string &key) const;
    int64_t requireInt(const std::string &section,
                       const std::string &key) const;

    /** Line of a key, for consumer-side diagnostics (0 if absent). */
    int lineOf(const std::string &section, const std::string &key) const;

    /** Mark every key of `section` consumed (a consumer that
     *  intentionally ignores a foreign section). */
    void markSectionUsed(const std::string &section) const;

    /** "section.key (line N)" for every key no getter touched. */
    std::vector<std::string> unusedKeys() const;
    /** Throw a ConfigError listing every untouched key. */
    void requireAllUsed() const;

    /** Sections a Config may carry that this consumer knows nothing
     *  about (e.g. an experiment spec handed to a bench as --config):
     *  marks them used wholesale. */
    void markSectionsUsedExcept(
        const std::vector<std::string> &keep) const;

  private:
    struct Section {
        std::string name;
        std::vector<ConfEntry> entries;
    };

    Section *findSection(const std::string &name);
    const Section *findSection(const std::string &name) const;
    const ConfEntry *findEntry(const std::string &section,
                               const std::string &key) const;
    void parseLines(const std::string &text);
    std::string expandMacros(const std::string &value, int line,
                             int depth) const;
    [[noreturn]] void fail(int line, const std::string &msg) const;

    std::string name_;
    std::vector<Section> sections_; ///< [0] is the global section ""
};

/** Helpers shared by spec parsing and the tools-facing writer. */
std::string confQuote(const std::string &s);

} // namespace xisa::exp

#endif // XISA_EXP_CONFIG_HH
