/**
 * @file
 * Pluggable workload registry with named parameter sets (ROADMAP
 * item 5; the WorkloadProvider/ParameterSet idiom of the related
 * NUMA-aware-DSU repo).
 *
 * A WorkloadProvider turns a ParameterSet into a runnable BIR Module.
 * The registry is seeded from workload/workloads.cc's descriptor table
 * (one provider per paper workload) and stays open: tests and future
 * subsystems register additional providers -- a traffic generator, a
 * synthetic kernel -- without touching the enum.
 *
 * Parameter sets are string-typed key/value records with unknown-key
 * diagnostics, so a `.conf` file (or a test) can say
 *     workload = cg @ big      with   [paramset.big] class=C nthreads=8
 * and a typo'd parameter fails with the provider's accepted names.
 */

#ifndef XISA_EXP_REGISTRY_HH
#define XISA_EXP_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "workload/workloads.hh"

namespace xisa::exp {

/** Ordered string-typed parameters with consumption tracking. */
class ParameterSet
{
  public:
    ParameterSet() = default;

    void set(const std::string &key, const std::string &value);
    bool has(const std::string &key) const;
    /** Typed reads; throw ConfigError on malformed values. */
    std::string getString(const std::string &key,
                          const std::string &def) const;
    int64_t getInt(const std::string &key, int64_t def) const;

    /** Keys in insertion order. */
    std::vector<std::string> keys() const;

    /** Throws ConfigError naming every key not in `accepted`. */
    void
    restrictTo(const std::vector<std::string> &accepted,
               const std::string &context) const;

    bool operator==(const ParameterSet &o) const
    {
        return entries_ == o.entries_;
    }

  private:
    std::vector<std::pair<std::string, std::string>> entries_;
};

/** One source of workloads: name + parameters -> Module. */
class WorkloadProvider
{
  public:
    virtual ~WorkloadProvider() = default;

    /** Registry key, e.g. "cg". */
    virtual std::string name() const = 0;
    /** Accepted parameter names (unknown-key diagnostics). */
    virtual std::vector<std::string> parameterNames() const = 0;
    /** Defaults merged under the caller's parameters. */
    virtual ParameterSet defaultParameters() const = 0;
    /** True if the nthreads parameter may exceed 1. */
    virtual bool threadCapable() const = 0;
    /** Build the module; throws ConfigError on bad parameters. */
    virtual Module makeWorkload(const ParameterSet &params) const = 0;
};

/** The process-wide provider registry. */
class WorkloadRegistry
{
  public:
    /** Singleton, pre-seeded with the paper's ten workloads. */
    static WorkloadRegistry &global();

    /** Empty registry (tests). */
    WorkloadRegistry() = default;

    /** Register a provider; throws ConfigError on a duplicate name. */
    void add(std::unique_ptr<WorkloadProvider> provider);
    /** Provider by name, or null. */
    const WorkloadProvider *find(const std::string &name) const;
    /** Like find(), but throws ConfigError listing known names. */
    const WorkloadProvider &require(const std::string &name) const;
    /** Registration-ordered provider names. */
    std::vector<std::string> names() const;

    /** Define / fetch a named parameter set ("big", "quick", ...). */
    void defineParamSet(const std::string &name,
                        const ParameterSet &params);
    const ParameterSet *findParamSet(const std::string &name) const;

    /**
     * Resolve a workload reference: "cg", "cg@setname", or
     * "cg@setname" with extra overrides. Provider defaults are filled
     * in under the named set. Throws ConfigError on unknown provider,
     * unknown set, or parameters the provider does not accept.
     */
    struct Resolved {
        const WorkloadProvider *provider;
        ParameterSet params;
    };
    Resolved resolve(const std::string &ref,
                     const ParameterSet &overrides = {}) const;

    /** Build straight from a reference. */
    Module build(const std::string &ref,
                 const ParameterSet &overrides = {}) const;

  private:
    std::vector<std::unique_ptr<WorkloadProvider>> providers_;
    std::vector<std::pair<std::string, ParameterSet>> paramSets_;
};

/** Provider wrapper over one WorkloadDesc table record (exposed so
 *  tests can re-wrap descriptors into private registries). */
std::unique_ptr<WorkloadProvider>
makeTableProvider(const WorkloadDesc &desc);

} // namespace xisa::exp

#endif // XISA_EXP_REGISTRY_HH
