#include "exp/spec.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "machine/node.hh"

namespace xisa::exp {

namespace {

/** Shortest decimal form that parses back to exactly `v`. */
std::string
fmtDouble(double v)
{
    char buf[64];
    for (int prec : {6, 12, 17}) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

std::string
fmtU64(uint64_t v)
{
    return std::to_string(static_cast<unsigned long long>(v));
}

std::string
joinList(const std::vector<std::string> &items)
{
    std::string out;
    for (const std::string &s : items)
        out += (out.empty() ? "" : ", ") + s;
    return out;
}

[[noreturn]] void
specFail(const Config &conf, const std::string &msg)
{
    throw ConfigError(conf.name() + ": " + msg);
}

/** "x86*8" -> ("x86", 8); bare names count 1. */
void
splitMachineRef(const std::string &ref, std::string *name, int *count,
                const std::string &context)
{
    size_t star = ref.find('*');
    if (star == std::string::npos) {
        *name = ref;
        *count = 1;
        return;
    }
    *name = ref.substr(0, star);
    while (!name->empty() && name->back() == ' ')
        name->pop_back();
    std::string n = ref.substr(star + 1);
    while (!n.empty() && n.front() == ' ')
        n.erase(n.begin());
    char *end = nullptr;
    long v = std::strtol(n.c_str(), &end, 10);
    if (!end || *end != '\0' || n.empty() || v < 1)
        throw ConfigError(context + ": bad machine count in '" + ref +
                          "' (want NAME or NAME*COUNT)");
    *count = static_cast<int>(v);
}

std::vector<ProblemClass>
parseClassList(const Config &conf, const std::string &key,
               const std::vector<ProblemClass> &def)
{
    if (!conf.has("", key))
        return def;
    std::vector<ProblemClass> out;
    for (const std::string &s : conf.getList("", key)) {
        ProblemClass cls;
        if (!parseProblemClass(s, &cls))
            specFail(conf, "key '" + key + "': bad problem class '" +
                               s + "' (want A, B, or C)");
        out.push_back(cls);
    }
    if (out.empty())
        specFail(conf, "key '" + key + "' must not be empty");
    return out;
}

std::vector<int>
parseThreadList(const Config &conf, const std::string &key,
                const std::vector<int> &def)
{
    if (!conf.has("", key))
        return def;
    std::vector<int> out;
    for (const std::string &s : conf.getList("", key)) {
        char *end = nullptr;
        long v = std::strtol(s.c_str(), &end, 10);
        if (!end || *end != '\0' || v < 1 || v > 16)
            specFail(conf, "key '" + key + "': bad thread count '" + s +
                               "' (want 1..16)");
        out.push_back(static_cast<int>(v));
    }
    if (out.empty())
        specFail(conf, "key '" + key + "' must not be empty");
    return out;
}

std::string
sectionSuffix(const std::string &section)
{
    size_t dot = section.find('.');
    return dot == std::string::npos ? section
                                    : section.substr(dot + 1);
}

/** Split a comma-separated reference list, trimming spaces. */
std::vector<std::string>
splitRefList(const std::string &raw)
{
    std::vector<std::string> refs;
    std::string cur;
    for (char ch : raw + ",") {
        if (ch == ',') {
            while (!cur.empty() && cur.front() == ' ')
                cur.erase(cur.begin());
            while (!cur.empty() && cur.back() == ' ')
                cur.pop_back();
            if (!cur.empty())
                refs.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(ch);
        }
    }
    return refs;
}

} // namespace

const char *
kindName(ExperimentKind k)
{
    switch (k) {
      case ExperimentKind::Overhead: return "overhead";
      case ExperimentKind::Sustained: return "sustained";
      case ExperimentKind::Rack: return "rack";
      case ExperimentKind::Single: return "single";
      case ExperimentKind::Serving: return "serving";
    }
    return "?";
}

Policy
parsePolicy(const std::string &s)
{
    if (s == "static-balanced")
        return Policy::StaticBalanced;
    if (s == "static-unbalanced")
        return Policy::StaticUnbalanced;
    if (s == "dynamic-balanced")
        return Policy::DynamicBalanced;
    if (s == "dynamic-unbalanced")
        return Policy::DynamicUnbalanced;
    throw ConfigError(
        "unknown policy '" + s +
        "' (want static-balanced, static-unbalanced, "
        "dynamic-balanced, or dynamic-unbalanced)");
}

// --- ClusterSpec ----------------------------------------------------

const MachineSpec *
ClusterSpec::findMachine(const std::string &name) const
{
    for (const MachineSpec &m : machines)
        if (m.name == name)
            return &m;
    return nullptr;
}

const NodeOverride *
ClusterSpec::findNode(const std::string &name) const
{
    for (const NodeOverride &n : nodes)
        if (n.name == name)
            return &n;
    return nullptr;
}

NodeSpec
ClusterSpec::makeNode(const std::string &ref) const
{
    if (ref == "xeno")
        return makeXenoServer();
    if (ref == "aether")
        return makeAetherServer();
    const NodeOverride *n = findNode(ref);
    if (!n)
        throw ConfigError("unknown node '" + ref +
                          "' (want xeno, aether, or a [node.*] name)");
    NodeSpec spec =
        n->base == "aether" ? makeAetherServer() : makeXenoServer();
    spec.name = n->name;
    if (n->cores > 0)
        spec.cores = n->cores;
    if (n->freqGHz > 0)
        spec.freqGHz = n->freqGHz;
    if (n->idleWatts > 0)
        spec.idleWatts = n->idleWatts;
    if (n->maxWatts > 0)
        spec.maxWatts = n->maxWatts;
    if (n->memPenaltyCycles > 0)
        spec.memPenaltyCycles =
            static_cast<uint32_t>(n->memPenaltyCycles);
    return spec;
}

std::vector<Machine>
ClusterSpec::makePool(const PoolSpec &pool) const
{
    std::vector<Machine> out;
    for (const std::string &ref : pool.machineRefs) {
        std::string name;
        int count = 0;
        splitMachineRef(ref, &name, &count, "pool '" + pool.name + "'");
        const MachineSpec *ms = findMachine(name);
        if (!ms)
            throw ConfigError("pool '" + pool.name +
                              "' references unknown machine '" + name +
                              "'");
        NodeSpec node = makeNode(ms->node);
        for (int i = 0; i < count; ++i)
            out.push_back({node, ms->powerScale, ms->loadWeight});
    }
    return out;
}

ClusterSim::Config
ClusterSpec::simConfig() const
{
    ClusterSim::Config c;
    c.rebalancePeriod = rebalancePeriod;
    c.migrationFixedSeconds = migrationFixedSeconds;
    c.workingSetBytesPerScale = workingSetMib * 1024.0 * 1024.0;
    c.sleepFraction = sleepFraction;
    c.checkpointPeriod = checkpointPeriod;
    c.net.latencyUs = latencyUs;
    c.net.gbitPerSec = gbitPerSec;
    if (hasFaults)
        c.net.faults = faults;
    for (const CrashSpec &cs : crashPlan) {
        CrashEvent ev;
        ev.machine = cs.machine;
        ev.time = cs.time;
        ev.downSeconds = crashDownSeconds;
        c.crashes.push_back(ev);
    }
    c.topo = topo;
    return c;
}

// --- Parsing --------------------------------------------------------

namespace {

void
parseClusterSections(Config &conf, ClusterSpec &c)
{
    for (const std::string &sec : conf.sectionsWithPrefix("node.")) {
        NodeOverride n;
        n.name = sectionSuffix(sec);
        n.base = conf.requireString(sec, "base");
        if (n.base != "xeno" && n.base != "aether")
            specFail(conf, "[" + sec + "] base must be xeno or aether, "
                           "got '" + n.base + "'");
        n.cores = static_cast<int>(conf.getInt(sec, "cores", 0));
        n.freqGHz = conf.getDouble(sec, "freq_ghz", 0);
        n.idleWatts = conf.getDouble(sec, "idle_watts", 0);
        n.maxWatts = conf.getDouble(sec, "max_watts", 0);
        n.memPenaltyCycles =
            static_cast<int>(conf.getInt(sec, "mem_penalty", 0));
        c.nodes.push_back(n);
    }
    for (const std::string &sec : conf.sectionsWithPrefix("machine.")) {
        MachineSpec m;
        m.name = sectionSuffix(sec);
        m.node = conf.requireString(sec, "node");
        m.powerScale = conf.getDouble(sec, "power_scale", 1.0);
        m.loadWeight = conf.getDouble(sec, "load_weight", 1.0);
        if (m.node != "xeno" && m.node != "aether" &&
            !c.findNode(m.node))
            specFail(conf, "[" + sec + "] references unknown node '" +
                               m.node + "'");
        c.machines.push_back(m);
    }
    for (const std::string &sec : conf.sectionsWithPrefix("pool.")) {
        PoolSpec p;
        p.name = sectionSuffix(sec);
        p.machineRefs = conf.getList(sec, "machines");
        if (p.machineRefs.empty())
            specFail(conf, "[" + sec + "] needs a machines list");
        try {
            p.policy = parsePolicy(conf.requireString(sec, "policy"));
        } catch (const ConfigError &e) {
            specFail(conf, "[" + sec + "] " + e.what());
        }
        p.baseline = conf.getBool(sec, "baseline", false);
        p.label = conf.getString(sec, "label", p.name);
        p.column = conf.getString(sec, "column", p.label);
        p.columnWidth =
            static_cast<int>(conf.getInt(sec, "column_width", 0));
        p.mkspLabel = conf.getString(sec, "mksp_label", p.name);
        p.shortLabel = conf.getString(sec, "short_label", p.name);
        c.pools.push_back(p);
    }
    // Validate the pool machine refs now so errors carry the file name.
    for (const PoolSpec &p : c.pools) {
        try {
            c.makePool(p);
        } catch (const ConfigError &e) {
            specFail(conf, e.what());
        }
    }

    c.latencyUs = conf.getDouble("net", "latency_us", c.latencyUs);
    c.gbitPerSec =
        conf.getDouble("net", "gbit_per_sec", c.gbitPerSec);

    c.rebalancePeriod =
        conf.getDouble("sim", "rebalance_period", c.rebalancePeriod);
    c.migrationFixedSeconds = conf.getDouble(
        "sim", "migration_fixed_seconds", c.migrationFixedSeconds);
    c.workingSetMib =
        conf.getDouble("sim", "working_set_mib", c.workingSetMib);
    c.sleepFraction =
        conf.getDouble("sim", "sleep_fraction", c.sleepFraction);
    c.checkpointPeriod =
        conf.getDouble("sim", "checkpoint_period", c.checkpointPeriod);

    if (conf.hasSection("faults")) {
        c.hasFaults = true;
        FaultConfig &f = c.faults;
        f.seed = static_cast<uint64_t>(conf.getInt(
            "faults", "seed", static_cast<int64_t>(f.seed)));
        f.dropProb = conf.getDouble("faults", "drop_prob", f.dropProb);
        f.dupProb = conf.getDouble("faults", "dup_prob", f.dupProb);
        f.spikeProb =
            conf.getDouble("faults", "spike_prob", f.spikeProb);
        f.spikeMaxUs =
            conf.getDouble("faults", "spike_max_us", f.spikeMaxUs);
        f.degradeFactor =
            conf.getDouble("faults", "degrade_factor", f.degradeFactor);
        f.degradePeriodMsgs = static_cast<uint64_t>(
            conf.getInt("faults", "degrade_period",
                        static_cast<int64_t>(f.degradePeriodMsgs)));
        f.degradeLenMsgs = static_cast<uint64_t>(
            conf.getInt("faults", "degrade_len",
                        static_cast<int64_t>(f.degradeLenMsgs)));
        f.partitionPeriodMsgs = static_cast<uint64_t>(
            conf.getInt("faults", "partition_period",
                        static_cast<int64_t>(f.partitionPeriodMsgs)));
        f.partitionLenMsgs = static_cast<uint64_t>(
            conf.getInt("faults", "partition_len",
                        static_cast<int64_t>(f.partitionLenMsgs)));
    }

    if (conf.hasSection("topology")) {
        TopologyConfig &t = c.topo;
        t.machinesPerRack = static_cast<int>(conf.getInt(
            "topology", "machines_per_rack", t.machinesPerRack));
        t.racksPerPod = static_cast<int>(
            conf.getInt("topology", "racks_per_pod", t.racksPerPod));
        t.torOversub =
            conf.getDouble("topology", "tor_oversub", t.torOversub);
        t.aggOversub =
            conf.getDouble("topology", "agg_oversub", t.aggOversub);
        t.rackHopUs =
            conf.getDouble("topology", "rack_hop_us", t.rackHopUs);
        t.aggHopUs =
            conf.getDouble("topology", "agg_hop_us", t.aggHopUs);
        t.localityBias = conf.getDouble("topology", "locality_bias",
                                        t.localityBias);
        if (const char *err = topologyConfigError(t))
            specFail(conf, std::string("[topology] ") + err);
    }

    if (conf.hasSection("crashes")) {
        c.crashDownSeconds = conf.getDouble("crashes", "down_seconds",
                                            c.crashDownSeconds);
        for (const std::string &ev : conf.getList("crashes", "plan")) {
            size_t at = ev.find('@');
            if (at == std::string::npos)
                specFail(conf, "[crashes] plan entries want "
                               "MACHINE@SECONDS, got '" + ev + "'");
            CrashSpec cs;
            char *end = nullptr;
            cs.machine = static_cast<int>(
                std::strtol(ev.c_str(), &end, 10));
            cs.time = std::strtod(ev.c_str() + at + 1, nullptr);
            if (!end || *end != '@' || cs.machine < 0 || cs.time < 0)
                specFail(conf, "[crashes] plan: malformed '" + ev +
                                   "'");
            c.crashPlan.push_back(cs);
        }
    }
}

void
validatePools(const Config &conf, const ExperimentSpec &s,
              bool needTwoMachines)
{
    if (s.cluster.pools.empty())
        specFail(conf, std::string(kindName(s.kind)) +
                           " experiments need at least one [pool.*]");
    int baselines = 0;
    for (const PoolSpec &p : s.cluster.pools)
        baselines += p.baseline ? 1 : 0;
    if (baselines != 1)
        specFail(conf, "exactly one pool must set baseline = true (" +
                           std::to_string(baselines) + " found)");
    if (!s.cluster.pools.front().baseline)
        specFail(conf, "the baseline pool must be declared first "
                       "(deltas are computed against it)");
    if (needTwoMachines) {
        for (const PoolSpec &p : s.cluster.pools) {
            if (s.cluster.makePool(p).size() != 2)
                specFail(conf,
                         "pool '" + p.name +
                             "': sustained experiments report "
                             "per-machine energy for exactly 2 "
                             "machines per pool");
        }
    }
}

} // namespace

ExperimentSpec
parseExperiment(Config &conf)
{
    ExperimentSpec s;
    s.source = conf.name();

    std::string kindStr = conf.requireString("", "kind");
    if (kindStr == "overhead")
        s.kind = ExperimentKind::Overhead;
    else if (kindStr == "sustained")
        s.kind = ExperimentKind::Sustained;
    else if (kindStr == "rack")
        s.kind = ExperimentKind::Rack;
    else if (kindStr == "single")
        s.kind = ExperimentKind::Single;
    else if (kindStr == "serving")
        s.kind = ExperimentKind::Serving;
    else
        specFail(conf, "unknown kind '" + kindStr +
                           "' (want overhead, sustained, rack, "
                           "single, or serving)");
    s.figure = conf.requireString("", "figure");
    s.title = conf.requireString("", "title");
    s.benchName = conf.getString("", "bench_name", s.benchName);
    s.footer = conf.getString("footer", "text", "");

    for (const std::string &sec :
         conf.sectionsWithPrefix("paramset.")) {
        ParamSetSpec ps;
        ps.name = sectionSuffix(sec);
        for (const std::string &key : conf.keysOf(sec))
            ps.params.set(key, conf.getString(sec, key, ""));
        s.paramSets.push_back(ps);
    }

    parseClusterSections(conf, s.cluster);

    switch (s.kind) {
      case ExperimentKind::Overhead: {
        s.workloads = conf.getList("", "workloads");
        if (s.workloads.empty())
            specFail(conf, "overhead experiments need a workloads "
                           "list");
        s.isas = conf.has("", "isas")
                     ? conf.getList("", "isas")
                     : std::vector<std::string>{"aether", "xeno"};
        for (const std::string &isa : s.isas) {
            try {
                s.cluster.makeNode(isa);
            } catch (const ConfigError &e) {
                specFail(conf, e.what());
            }
        }
        s.classes = parseClassList(conf, "classes",
                                   {ProblemClass::A, ProblemClass::B,
                                    ProblemClass::C});
        s.classesQuick =
            parseClassList(conf, "classes_quick", {ProblemClass::A});
        s.threads = parseThreadList(conf, "threads", {1, 2, 4, 8});
        s.threadsQuick = parseThreadList(conf, "threads_quick", {1, 4});
        break;
      }
      case ExperimentKind::Sustained: {
        s.sets = static_cast<int>(conf.requireInt("", "sets"));
        s.setsQuick =
            static_cast<int>(conf.getInt("", "sets_quick", 0));
        s.seedBase =
            static_cast<uint64_t>(conf.requireInt("", "seed_base"));
        s.jobsPerSet = static_cast<int>(
            conf.getInt("", "jobs_per_set", s.jobsPerSet));
        if (s.sets < 1 || s.jobsPerSet < 1)
            specFail(conf, "sets and jobs_per_set must be >= 1");
        validatePools(conf, s, /*needTwoMachines=*/true);
        break;
      }
      case ExperimentKind::Rack: {
        s.sets = static_cast<int>(conf.requireInt("", "sets"));
        s.setsQuick =
            static_cast<int>(conf.getInt("", "sets_quick", 0));
        s.seedBase =
            static_cast<uint64_t>(conf.requireInt("", "seed_base"));
        s.waves =
            static_cast<int>(conf.getInt("", "waves", s.waves));
        s.jobsPerWavePerMachine = static_cast<int>(
            conf.getInt("", "jobs_per_wave_per_machine",
                        s.jobsPerWavePerMachine));
        s.poolMachines = static_cast<int>(
            conf.getInt("", "pool_machines", s.poolMachines));
        if (s.sets < 1 || s.waves < 1 ||
            s.jobsPerWavePerMachine < 1 || s.poolMachines < 1)
            specFail(conf, "sets, waves, jobs_per_wave_per_machine "
                           "and pool_machines must be >= 1");
        validatePools(conf, s, /*needTwoMachines=*/false);
        break;
      }
      case ExperimentKind::Single: {
        s.workloadRef = conf.requireString("", "workload");
        s.singleMachines = conf.requireString("", "machines");
        s.startNode =
            static_cast<int>(conf.getInt("", "start_node", 0));
        s.quantum = static_cast<uint64_t>(conf.getInt(
            "os", "quantum", static_cast<int64_t>(s.quantum)));
        s.dsmMode = conf.getString("os", "dsm_mode", s.dsmMode);
        if (s.dsmMode != "migrate" && s.dsmMode != "remote")
            specFail(conf, "[os] dsm_mode must be migrate or remote, "
                           "got '" + s.dsmMode + "'");
        std::vector<std::string> refs = splitRefList(s.singleMachines);
        if (refs.empty())
            specFail(conf, "single experiments need a machines list");
        for (const std::string &ref : refs) {
            try {
                s.cluster.makeNode(ref);
            } catch (const ConfigError &e) {
                specFail(conf, e.what());
            }
        }
        if (s.startNode < 0 ||
            s.startNode >= static_cast<int>(refs.size()))
            specFail(conf, "start_node out of range");
        s.singleMachineRefs = refs;
        break;
      }
      case ExperimentKind::Serving: {
        s.singleMachines = conf.requireString("", "machines");
        // Serving fleets can be large, so the machines list accepts
        // the pool-style NAME*COUNT shorthand ("xeno*500").
        std::vector<std::string> refs;
        for (const std::string &raw : splitRefList(s.singleMachines)) {
            std::string name;
            int count = 0;
            try {
                splitMachineRef(raw, &name, &count, "machines list");
            } catch (const ConfigError &e) {
                specFail(conf, e.what());
            }
            for (int i = 0; i < count; ++i)
                refs.push_back(name);
        }
        if (refs.empty())
            specFail(conf, "serving experiments need a machines list");
        if (refs.size() > 4096)
            specFail(conf, "serving machines list expands to more "
                           "than 4096 nodes");
        for (const std::string &ref : refs) {
            try {
                s.cluster.makeNode(ref);
            } catch (const ConfigError &e) {
                specFail(conf, e.what());
            }
        }
        s.singleMachineRefs = refs;
        const int nodeCount = static_cast<int>(refs.size());

        TrafficSpec &t = s.traffic;
        t.seed = static_cast<uint64_t>(conf.getInt(
            "traffic", "seed", static_cast<int64_t>(t.seed)));
        t.clients = conf.getInt("traffic", "clients", t.clients);
        t.requestHz =
            conf.getDouble("traffic", "request_hz", t.requestHz);
        t.duration = conf.getDouble("traffic", "duration", t.duration);
        t.durationQuick = conf.getDouble("traffic", "duration_quick",
                                         t.duration / 8.0);
        t.zipfSkew = conf.getDouble("traffic", "zipf_skew", t.zipfSkew);
        t.keySpace = conf.getInt("traffic", "key_space", t.keySpace);
        t.getFraction =
            conf.getDouble("traffic", "get_fraction", t.getFraction);
        t.sloUs = conf.getDouble("traffic", "slo_us", t.sloUs);
        t.shards =
            static_cast<int>(conf.getInt("traffic", "shards", t.shards));
        if (t.clients < 1)
            specFail(conf, "[traffic] clients must be >= 1");
        if (t.requestHz <= 0 || t.duration <= 0 || t.durationQuick <= 0)
            specFail(conf, "[traffic] request_hz, duration and "
                           "duration_quick must be > 0");
        if (t.zipfSkew < 0 || t.zipfSkew >= 1)
            specFail(conf, "[traffic] zipf_skew must be in [0, 1)");
        if (t.keySpace < 1 || t.keySpace > (int64_t{1} << 24))
            specFail(conf, "[traffic] key_space must be in [1, 2^24]");
        if (t.getFraction < 0 || t.getFraction > 1)
            specFail(conf, "[traffic] get_fraction must be in [0, 1]");
        if (t.sloUs <= 0)
            specFail(conf, "[traffic] slo_us must be > 0");
        if (t.shards < 1 || t.shards > 256)
            specFail(conf, "[traffic] shards must be in [1, 256]");
        if (static_cast<double>(t.clients) * t.requestHz * t.duration >
            2e7)
            specFail(conf, "[traffic] clients * request_hz * duration "
                           "exceeds 20M requests");
        if (conf.has("traffic", "placement")) {
            for (const std::string &p :
                 conf.getList("traffic", "placement")) {
                try {
                    t.placement.push_back(std::stoi(p));
                } catch (const std::exception &) {
                    specFail(conf, "[traffic] bad placement entry '" +
                                       p + "'");
                }
            }
            if (static_cast<int>(t.placement.size()) != t.shards)
                specFail(conf, "[traffic] placement must list one "
                               "machine per shard");
        } else {
            for (int i = 0; i < t.shards; ++i)
                t.placement.push_back(i % nodeCount);
        }
        for (int p : t.placement)
            if (p < 0 || p >= nodeCount)
                specFail(conf, "[traffic] placement machine index "
                               "out of range");
        if (conf.has("traffic", "migrate_plan")) {
            for (const std::string &ev :
                 conf.getList("traffic", "migrate_plan")) {
                size_t at = ev.find('@');
                size_t arrow = ev.find("->");
                if (at == std::string::npos ||
                    arrow == std::string::npos || arrow < at)
                    specFail(conf,
                             "[traffic] migrate_plan entries are "
                             "SHARD@FRAC->NODE, got '" + ev + "'");
                ShardMigrationSpec m;
                try {
                    m.shard = std::stoi(ev.substr(0, at));
                    m.time = std::stod(
                        ev.substr(at + 1, arrow - at - 1));
                    m.node = std::stoi(ev.substr(arrow + 2));
                } catch (const std::exception &) {
                    specFail(conf, "[traffic] bad migrate_plan entry "
                                   "'" + ev + "'");
                }
                if (m.shard < 0 || m.shard >= t.shards)
                    specFail(conf, "[traffic] migrate_plan shard out "
                                   "of range");
                if (m.time < 0 || m.time >= 1)
                    specFail(conf, "[traffic] migrate_plan times are "
                                   "fractions of the run, in [0, 1)");
                if (m.node < 0 || m.node >= nodeCount)
                    specFail(conf, "[traffic] migrate_plan machine "
                                   "index out of range");
                t.migratePlan.push_back(m);
            }
        }
        // Serving reinterprets [crashes] plan times as fractions of
        // the active duration so quick mode keeps the same schedule.
        for (const CrashSpec &cs : s.cluster.crashPlan) {
            if (cs.machine < 0 || cs.machine >= nodeCount)
                specFail(conf, "[crashes] machine index out of range "
                               "for the serving machines list");
            if (cs.time < 0 || cs.time >= 1)
                specFail(conf, "[crashes] serving crash times are "
                               "fractions of the run, in [0, 1)");
        }
        // [failures]: correlated domain outages. Windows are
        // fractions of the active duration, like every serving
        // schedule (the conversion to seconds happens once, in
        // applyFailures).
        if (conf.hasSection("failures")) {
            if (s.cluster.topo.machinesPerRack <= 0)
                specFail(conf,
                         "[failures] needs [topology] "
                         "machines_per_rack to define the failure "
                         "domains");
            s.failureSeed = static_cast<uint64_t>(conf.getInt(
                "failures", "seed",
                static_cast<int64_t>(s.failureSeed)));
            s.shedDeciles = static_cast<int>(conf.getInt(
                "failures", "shed_deciles", s.shedDeciles));
            if (s.shedDeciles < 1 || s.shedDeciles > 10)
                specFail(conf,
                         "[failures] shed_deciles must be in [1, 10]");
            const int perRack = s.cluster.topo.machinesPerRack;
            const int racks = (nodeCount + perRack - 1) / perRack;
            const int pods =
                s.cluster.topo.racksPerPod > 0
                    ? (racks + s.cluster.topo.racksPerPod - 1) /
                          s.cluster.topo.racksPerPod
                    : 1;
            for (const std::string &ev :
                 conf.getList("failures", "plan")) {
                size_t colon = ev.find(':');
                size_t at = ev.find('@');
                size_t dots = ev.find("..");
                if (colon == std::string::npos ||
                    at == std::string::npos ||
                    dots == std::string::npos || at < colon ||
                    dots < at)
                    specFail(conf, "[failures] plan entries are "
                                   "KIND:DOMAIN@AT..HEAL, got '" +
                                       ev + "'");
                FailureSpec f;
                f.kind = ev.substr(0, colon);
                try {
                    f.domain = std::stoi(
                        ev.substr(colon + 1, at - colon - 1));
                    f.at = std::stod(
                        ev.substr(at + 1, dots - at - 1));
                    f.heal = std::stod(ev.substr(dots + 2));
                } catch (const std::exception &) {
                    specFail(conf, "[failures] bad plan entry '" +
                                       ev + "'");
                }
                if (f.kind != "tor" && f.kind != "agg" &&
                    f.kind != "pdu" && f.kind != "partition")
                    specFail(conf,
                             "[failures] kind must be tor, agg, pdu, "
                             "or partition, got '" + f.kind + "'");
                const int domains = f.kind == "agg" ? pods : racks;
                if (f.domain < 0 || f.domain >= domains)
                    specFail(conf,
                             "[failures] " + f.kind + " domain " +
                                 std::to_string(f.domain) +
                                 " out of range (topology has " +
                                 std::to_string(domains) + ")");
                if (!(f.at >= 0 && f.at < f.heal && f.heal <= 1))
                    specFail(conf,
                             "[failures] windows are fractions of "
                             "the run with 0 <= at < heal <= 1, got "
                             "'" + ev + "'");
                s.failures.push_back(f);
            }
            if (s.failures.empty())
                specFail(conf, "[failures] needs a plan list");
        }
        break;
      }
    }

    if (s.kind != ExperimentKind::Serving &&
        conf.hasSection("failures"))
        specFail(conf, "[failures] is only meaningful for "
                       "kind = serving");

    // Workload references (overhead + single) must resolve against the
    // registry carrying this spec's parameter sets.
    if (s.kind == ExperimentKind::Overhead ||
        s.kind == ExperimentKind::Single) {
        WorkloadRegistry reg = makeRegistry(s);
        std::vector<std::string> refs =
            s.kind == ExperimentKind::Overhead
                ? s.workloads
                : std::vector<std::string>{s.workloadRef};
        for (const std::string &ref : refs) {
            try {
                reg.resolve(ref);
            } catch (const ConfigError &e) {
                specFail(conf, e.what());
            }
        }
    }

    conf.requireAllUsed();
    return s;
}

ExperimentSpec
parseExperimentFile(const std::string &path)
{
    Config conf = Config::parseFile(path);
    return parseExperiment(conf);
}

WorkloadRegistry
makeRegistry(const ExperimentSpec &spec)
{
    WorkloadRegistry reg;
    for (const WorkloadDesc &d : workloadTable())
        reg.add(makeTableProvider(d));
    for (const ParamSetSpec &ps : spec.paramSets)
        reg.defineParamSet(ps.name, ps.params);
    return reg;
}

// --- Serialization --------------------------------------------------

namespace {

struct Writer {
    std::string out;

    void
    kv(const std::string &key, const std::string &value)
    {
        out += key + " = " + confQuote(value) + "\n";
    }
    void kv(const std::string &key, double v) { kv(key, fmtDouble(v)); }
    void kv(const std::string &key, int v) { kv(key, std::to_string(v)); }
    void kv(const std::string &key, uint64_t v) { kv(key, fmtU64(v)); }
    void kv(const std::string &key, bool v)
    {
        kv(key, std::string(v ? "true" : "false"));
    }
    void
    section(const std::string &name)
    {
        out += "\n[" + name + "]\n";
    }
};

std::string
classListString(const std::vector<ProblemClass> &classes)
{
    std::vector<std::string> names;
    for (ProblemClass c : classes)
        names.push_back(className(c));
    return joinList(names);
}

std::string
intListString(const std::vector<int> &values)
{
    std::vector<std::string> names;
    for (int v : values)
        names.push_back(std::to_string(v));
    return joinList(names);
}

} // namespace

std::string
serializeSpec(const ExperimentSpec &s)
{
    Writer w;
    w.out += "# canonical spec (xisa_exp --print-spec)\n";
    w.kv("kind", std::string(kindName(s.kind)));
    w.kv("figure", s.figure);
    w.kv("title", s.title);
    w.kv("bench_name", s.benchName);

    switch (s.kind) {
      case ExperimentKind::Overhead:
        w.kv("workloads", joinList(s.workloads));
        w.kv("isas", joinList(s.isas));
        w.kv("classes", classListString(s.classes));
        w.kv("classes_quick", classListString(s.classesQuick));
        w.kv("threads", intListString(s.threads));
        w.kv("threads_quick", intListString(s.threadsQuick));
        break;
      case ExperimentKind::Sustained:
        w.kv("sets", s.sets);
        w.kv("sets_quick", s.setsQuick);
        w.kv("seed_base", s.seedBase);
        w.kv("jobs_per_set", s.jobsPerSet);
        break;
      case ExperimentKind::Rack:
        w.kv("sets", s.sets);
        w.kv("sets_quick", s.setsQuick);
        w.kv("seed_base", s.seedBase);
        w.kv("waves", s.waves);
        w.kv("jobs_per_wave_per_machine", s.jobsPerWavePerMachine);
        w.kv("pool_machines", s.poolMachines);
        break;
      case ExperimentKind::Single:
        w.kv("workload", s.workloadRef);
        w.kv("machines", s.singleMachines);
        w.kv("start_node", s.startNode);
        break;
      case ExperimentKind::Serving:
        w.kv("machines", s.singleMachines);
        break;
    }

    for (const ParamSetSpec &ps : s.paramSets) {
        w.section("paramset." + ps.name);
        for (const std::string &key : ps.params.keys())
            w.kv(key, ps.params.getString(key, ""));
    }
    for (const NodeOverride &n : s.cluster.nodes) {
        w.section("node." + n.name);
        w.kv("base", n.base);
        w.kv("cores", n.cores);
        w.kv("freq_ghz", n.freqGHz);
        w.kv("idle_watts", n.idleWatts);
        w.kv("max_watts", n.maxWatts);
        w.kv("mem_penalty", n.memPenaltyCycles);
    }
    for (const MachineSpec &m : s.cluster.machines) {
        w.section("machine." + m.name);
        w.kv("node", m.node);
        w.kv("power_scale", m.powerScale);
        w.kv("load_weight", m.loadWeight);
    }
    for (const PoolSpec &p : s.cluster.pools) {
        w.section("pool." + p.name);
        w.kv("machines", joinList(p.machineRefs));
        w.kv("policy", std::string(policyName(p.policy)));
        w.kv("baseline", p.baseline);
        w.kv("label", p.label);
        w.kv("column", p.column);
        w.kv("column_width", p.columnWidth);
        w.kv("mksp_label", p.mkspLabel);
        w.kv("short_label", p.shortLabel);
    }

    if (s.kind == ExperimentKind::Serving) {
        const TrafficSpec &t = s.traffic;
        w.section("traffic");
        w.kv("seed", t.seed);
        w.kv("clients", static_cast<uint64_t>(t.clients));
        w.kv("request_hz", t.requestHz);
        w.kv("duration", t.duration);
        w.kv("duration_quick", t.durationQuick);
        w.kv("zipf_skew", t.zipfSkew);
        w.kv("key_space", static_cast<uint64_t>(t.keySpace));
        w.kv("get_fraction", t.getFraction);
        w.kv("slo_us", t.sloUs);
        w.kv("shards", t.shards);
        w.kv("placement", intListString(t.placement));
        if (!t.migratePlan.empty()) {
            std::vector<std::string> plan;
            for (const ShardMigrationSpec &m : t.migratePlan)
                plan.push_back(std::to_string(m.shard) + "@" +
                               fmtDouble(m.time) + "->" +
                               std::to_string(m.node));
            w.kv("migrate_plan", joinList(plan));
        }
    }

    w.section("net");
    w.kv("latency_us", s.cluster.latencyUs);
    w.kv("gbit_per_sec", s.cluster.gbitPerSec);

    w.section("sim");
    w.kv("rebalance_period", s.cluster.rebalancePeriod);
    w.kv("migration_fixed_seconds", s.cluster.migrationFixedSeconds);
    w.kv("working_set_mib", s.cluster.workingSetMib);
    w.kv("sleep_fraction", s.cluster.sleepFraction);
    w.kv("checkpoint_period", s.cluster.checkpointPeriod);

    if (s.cluster.hasFaults) {
        const FaultConfig &f = s.cluster.faults;
        w.section("faults");
        w.kv("seed", static_cast<uint64_t>(f.seed));
        w.kv("drop_prob", f.dropProb);
        w.kv("dup_prob", f.dupProb);
        w.kv("spike_prob", f.spikeProb);
        w.kv("spike_max_us", f.spikeMaxUs);
        w.kv("degrade_factor", f.degradeFactor);
        w.kv("degrade_period", f.degradePeriodMsgs);
        w.kv("degrade_len", f.degradeLenMsgs);
        w.kv("partition_period", f.partitionPeriodMsgs);
        w.kv("partition_len", f.partitionLenMsgs);
    }

    if (s.cluster.topo.machinesPerRack > 0) {
        const TopologyConfig &t = s.cluster.topo;
        w.section("topology");
        w.kv("machines_per_rack", t.machinesPerRack);
        w.kv("racks_per_pod", t.racksPerPod);
        w.kv("tor_oversub", t.torOversub);
        w.kv("agg_oversub", t.aggOversub);
        w.kv("rack_hop_us", t.rackHopUs);
        w.kv("agg_hop_us", t.aggHopUs);
        w.kv("locality_bias", t.localityBias);
    }

    if (!s.cluster.crashPlan.empty()) {
        w.section("crashes");
        w.kv("down_seconds", s.cluster.crashDownSeconds);
        std::vector<std::string> plan;
        for (const CrashSpec &cs : s.cluster.crashPlan)
            plan.push_back(std::to_string(cs.machine) + "@" +
                           fmtDouble(cs.time));
        w.kv("plan", joinList(plan));
    }

    if (s.kind == ExperimentKind::Serving && !s.failures.empty()) {
        w.section("failures");
        w.kv("seed", s.failureSeed);
        w.kv("shed_deciles", s.shedDeciles);
        std::vector<std::string> plan;
        for (const FailureSpec &f : s.failures)
            plan.push_back(f.kind + ":" + std::to_string(f.domain) +
                           "@" + fmtDouble(f.at) + ".." +
                           fmtDouble(f.heal));
        w.kv("plan", joinList(plan));
    }

    if (s.kind == ExperimentKind::Single) {
        w.section("os");
        w.kv("quantum", s.quantum);
        w.kv("dsm_mode", s.dsmMode);
    }

    if (!s.footer.empty()) {
        w.section("footer");
        w.kv("text", s.footer);
    }
    return w.out;
}

} // namespace xisa::exp
