#include "exp/registry.hh"

#include <cstdlib>

#include "exp/config.hh"

namespace xisa::exp {

// --- ParameterSet ---------------------------------------------------

void
ParameterSet::set(const std::string &key, const std::string &value)
{
    for (auto &e : entries_) {
        if (e.first == key) {
            e.second = value;
            return;
        }
    }
    entries_.emplace_back(key, value);
}

bool
ParameterSet::has(const std::string &key) const
{
    for (const auto &e : entries_)
        if (e.first == key)
            return true;
    return false;
}

std::string
ParameterSet::getString(const std::string &key,
                        const std::string &def) const
{
    for (const auto &e : entries_)
        if (e.first == key)
            return e.second;
    return def;
}

int64_t
ParameterSet::getInt(const std::string &key, int64_t def) const
{
    for (const auto &e : entries_) {
        if (e.first != key)
            continue;
        char *end = nullptr;
        long long v = std::strtoll(e.second.c_str(), &end, 0);
        if (!end || *end != '\0' || e.second.empty())
            throw ConfigError("parameter '" + key +
                              "' wants an integer, got '" + e.second +
                              "'");
        return v;
    }
    return def;
}

std::vector<std::string>
ParameterSet::keys() const
{
    std::vector<std::string> out;
    for (const auto &e : entries_)
        out.push_back(e.first);
    return out;
}

void
ParameterSet::restrictTo(const std::vector<std::string> &accepted,
                         const std::string &context) const
{
    for (const auto &e : entries_) {
        bool ok = false;
        for (const std::string &a : accepted)
            if (e.first == a)
                ok = true;
        if (ok)
            continue;
        std::string names;
        for (const std::string &a : accepted)
            names += (names.empty() ? "" : ", ") + a;
        throw ConfigError(context + ": unknown parameter '" + e.first +
                          "' (accepted: " + names + ")");
    }
}

// --- Table-backed provider ------------------------------------------

namespace {

/** Wraps one WorkloadDesc: parameters `class` (A/B/C) and `nthreads`. */
class TableProvider : public WorkloadProvider
{
  public:
    explicit TableProvider(const WorkloadDesc &desc) : desc_(desc) {}

    std::string name() const override { return desc_.name; }

    std::vector<std::string>
    parameterNames() const override
    {
        return {"class", "nthreads"};
    }

    ParameterSet
    defaultParameters() const override
    {
        ParameterSet p;
        p.set("class", "A");
        p.set("nthreads", "1");
        return p;
    }

    bool threadCapable() const override { return desc_.threadCapable; }

    Module
    makeWorkload(const ParameterSet &params) const override
    {
        params.restrictTo(parameterNames(),
                          "workload '" + name() + "'");
        std::string clsName = params.getString("class", "A");
        ProblemClass cls;
        if (!parseProblemClass(clsName, &cls))
            throw ConfigError("workload '" + name() +
                              "': bad class '" + clsName +
                              "' (want A, B, or C)");
        int64_t nthreads = params.getInt("nthreads", 1);
        if (nthreads < 1 || nthreads > 16)
            throw ConfigError("workload '" + name() +
                              "': nthreads " +
                              std::to_string(nthreads) +
                              " out of range [1, 16]");
        if (nthreads > 1 && !desc_.threadCapable)
            throw ConfigError("workload '" + name() +
                              "' is serial-only (nthreads must be 1)");
        return desc_.build(cls, static_cast<int>(nthreads));
    }

  private:
    const WorkloadDesc &desc_;
};

} // namespace

std::unique_ptr<WorkloadProvider>
makeTableProvider(const WorkloadDesc &desc)
{
    return std::make_unique<TableProvider>(desc);
}

// --- WorkloadRegistry -----------------------------------------------

WorkloadRegistry &
WorkloadRegistry::global()
{
    static WorkloadRegistry *reg = [] {
        auto *r = new WorkloadRegistry();
        for (const WorkloadDesc &d : workloadTable())
            r->add(makeTableProvider(d));
        return r;
    }();
    return *reg;
}

void
WorkloadRegistry::add(std::unique_ptr<WorkloadProvider> provider)
{
    if (find(provider->name()))
        throw ConfigError("workload provider '" + provider->name() +
                          "' registered twice");
    providers_.push_back(std::move(provider));
}

const WorkloadProvider *
WorkloadRegistry::find(const std::string &name) const
{
    for (const auto &p : providers_)
        if (p->name() == name)
            return p.get();
    return nullptr;
}

const WorkloadProvider &
WorkloadRegistry::require(const std::string &name) const
{
    const WorkloadProvider *p = find(name);
    if (p)
        return *p;
    std::string known;
    for (const std::string &n : names())
        known += (known.empty() ? "" : ", ") + n;
    throw ConfigError("unknown workload '" + name + "' (known: " +
                      known + ")");
}

std::vector<std::string>
WorkloadRegistry::names() const
{
    std::vector<std::string> out;
    for (const auto &p : providers_)
        out.push_back(p->name());
    return out;
}

void
WorkloadRegistry::defineParamSet(const std::string &name,
                                 const ParameterSet &params)
{
    for (auto &e : paramSets_) {
        if (e.first == name)
            throw ConfigError("parameter set '" + name +
                              "' defined twice");
    }
    paramSets_.emplace_back(name, params);
}

const ParameterSet *
WorkloadRegistry::findParamSet(const std::string &name) const
{
    for (const auto &e : paramSets_)
        if (e.first == name)
            return &e.second;
    return nullptr;
}

WorkloadRegistry::Resolved
WorkloadRegistry::resolve(const std::string &ref,
                          const ParameterSet &overrides) const
{
    std::string providerName = ref;
    std::string setName;
    size_t at = ref.find('@');
    if (at != std::string::npos) {
        providerName = ref.substr(0, at);
        setName = ref.substr(at + 1);
        // Allow spaces around '@'.
        while (!providerName.empty() && providerName.back() == ' ')
            providerName.pop_back();
        while (!setName.empty() && setName.front() == ' ')
            setName.erase(setName.begin());
    }
    const WorkloadProvider &provider = require(providerName);
    ParameterSet params = provider.defaultParameters();
    if (!setName.empty()) {
        const ParameterSet *named = findParamSet(setName);
        if (!named)
            throw ConfigError("workload reference '" + ref +
                              "' names undefined parameter set '" +
                              setName + "'");
        for (const std::string &k : named->keys())
            params.set(k, named->getString(k, ""));
    }
    for (const std::string &k : overrides.keys())
        params.set(k, overrides.getString(k, ""));
    params.restrictTo(provider.parameterNames(),
                      "workload '" + providerName + "'");
    return {&provider, params};
}

Module
WorkloadRegistry::build(const std::string &ref,
                        const ParameterSet &overrides) const
{
    Resolved r = resolve(ref, overrides);
    return r.provider->makeWorkload(r.params);
}

} // namespace xisa::exp
