/**
 * @file
 * Drives a parsed ExperimentSpec end to end: instantiates the nodes,
 * OS containers, cluster simulator, and scheduler policies the spec
 * describes and reproduces the paper-style report of the matching
 * legacy bench -- byte-identically, which the conf-equivalence tests
 * pin against the original binaries.
 */

#ifndef XISA_EXP_RUNNER_HH
#define XISA_EXP_RUNNER_HH

#include "exp/options.hh"
#include "exp/spec.hh"
#include "traffic/traffic.hh"

namespace xisa::exp {

/** Run one experiment; returns a process exit status. */
int runExperiment(const ExperimentSpec &spec, const Options &opts);

/**
 * Expand a serving spec's [failures] plan onto `cfg`: the single
 * place where the plan's duration FRACTIONS become sim-clock seconds
 * (`t = fraction * durationSeconds`; FaultConfig's unit note points
 * here). Builds the node -> rack map from [topology], one NodeCrash
 * per member of each failing domain (tor/pdu/agg lose the machines;
 * a partitioned rack keeps running but is unreachable, which serving
 * cannot distinguish from down), and one BrownoutWindow per plan
 * entry with the spec's shed_deciles. No-op when the plan is empty,
 * so failure-free specs keep their schedules byte-identical.
 */
void applyFailures(const ExperimentSpec &spec, double durationSeconds,
                   traffic::ServingConfig &cfg);

} // namespace xisa::exp

#endif // XISA_EXP_RUNNER_HH
