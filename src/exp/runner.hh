/**
 * @file
 * Drives a parsed ExperimentSpec end to end: instantiates the nodes,
 * OS containers, cluster simulator, and scheduler policies the spec
 * describes and reproduces the paper-style report of the matching
 * legacy bench -- byte-identically, which the conf-equivalence tests
 * pin against the original binaries.
 */

#ifndef XISA_EXP_RUNNER_HH
#define XISA_EXP_RUNNER_HH

#include "exp/options.hh"
#include "exp/spec.hh"

namespace xisa::exp {

/** Run one experiment; returns a process exit status. */
int runExperiment(const ExperimentSpec &spec, const Options &opts);

} // namespace xisa::exp

#endif // XISA_EXP_RUNNER_HH
