#include "exp/runner.hh"

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <tuple>

#include "check/perturb.hh"
#include "compiler/compile.hh"
#include "exp/sweep.hh"
#include "isa/isa.hh"
#include "machine/interp_threaded.hh"
#include "sched/jobsets.hh"
#include "traffic/traffic.hh"
#include "util/stats.hh"

namespace xisa::exp {

namespace {

double
wallNow()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
writeJsonHeader(std::FILE *f, const char *bench, bool quick,
                int requestedThreads, size_t configs,
                double wallSeconds)
{
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"%s\",\n"
                 "  \"mode\": \"%s\",\n"
                 "  \"sweep_threads\": %d,\n"
                 "  \"configs\": %zu,\n"
                 "  \"wall_seconds\": %.6f,\n",
                 bench, quick ? "quick" : "full", requestedThreads,
                 configs, wallSeconds);
}

// --- kind = overhead (the fig06 report) -----------------------------

int
runOverhead(const ExperimentSpec &spec, const Options &opts)
{
    WorkloadRegistry reg = makeRegistry(spec);
    const bool quick = quickMode();
    const std::vector<ProblemClass> &classes =
        spec.activeClasses(quick);
    const std::vector<int> &threads = spec.activeThreads(quick);

    struct Cell {
        const WorkloadProvider *provider;
        ParameterSet params; ///< resolved, before the sweep override
        NodeSpec node;
        ProblemClass cls;
        int nthreads;
        size_t ref; ///< index into `resolved` (the compile-share key)
    };
    struct CellResult {
        double tBase = 0;
        double tInst = 0;
        uint64_t instrs = 0;
        double hostSeconds = 0;
    };

    // Pre-resolve refs/nodes once; the sweep only varies class/threads.
    std::vector<WorkloadRegistry::Resolved> resolved;
    for (const std::string &ref : spec.workloads) {
        resolved.push_back(reg.resolve(ref));
        if (!resolved.back().provider->threadCapable()) {
            for (int t : threads)
                if (t > 1)
                    throw ConfigError(
                        spec.source + ": workload '" +
                        resolved.back().provider->name() +
                        "' is serial-only but the thread sweep "
                        "includes " + std::to_string(t));
        }
    }
    std::vector<NodeSpec> nodeSpecs;
    for (const std::string &isa : spec.isas)
        nodeSpecs.push_back(spec.cluster.makeNode(isa));

    banner(spec.figure.c_str(), spec.title.c_str());

    // Flatten the sweep in print order; the driver may run cells out
    // of order but results come back indexed.
    std::vector<Cell> cells;
    for (size_t ri = 0; ri < resolved.size(); ++ri)
        for (const NodeSpec &node : nodeSpecs)
            for (ProblemClass cls : classes)
                for (int t : threads)
                    cells.push_back({resolved[ri].provider,
                                     resolved[ri].params, node, cls, t,
                                     ri});

    // Compile each unique (workload, class, threads) module once --
    // the node axis reuses the same binaries -- and give every binary
    // an ExecCache so the cells executing it share predecoded streams
    // and lowered superblocks (DESIGN.md §10). Mirrors the legacy
    // bench_fig06 harness; output is unaffected (artifacts are
    // deterministic per binary and timing signature).
    struct Compiled {
        MultiIsaBinary base;
        MultiIsaBinary inst;
        std::shared_ptr<ExecCache> baseCache =
            std::make_shared<ExecCache>();
        std::shared_ptr<ExecCache> instCache =
            std::make_shared<ExecCache>();
    };
    std::vector<std::unique_ptr<Compiled>> compiled;
    std::vector<size_t> cellBin(cells.size());
    {
        std::map<std::tuple<size_t, int, int>, size_t> seen;
        for (size_t k = 0; k < cells.size(); ++k) {
            const Cell &c = cells[k];
            auto key = std::make_tuple(c.ref, static_cast<int>(c.cls),
                                       c.nthreads);
            auto [it, fresh] = seen.emplace(key, compiled.size());
            if (fresh) {
                ParameterSet params = c.params;
                params.set("class", className(c.cls));
                params.set("nthreads", std::to_string(c.nthreads));
                Module mod = c.provider->makeWorkload(params);
                CompileOptions plain;
                plain.boundaryMigPoints = false;
                auto cc = std::make_unique<Compiled>();
                cc->base = compileModule(mod, plain);
                cc->inst = compileModule(mod);
                compiled.push_back(std::move(cc));
            }
            cellBin[k] = it->second;
        }
    }

    const double t0 = wallNow();
    std::vector<CellResult> results =
        runSweep(cells.size(), [&](size_t i) {
            const Cell &c = cells[i];
            const Compiled &bin = *compiled[cellBin[i]];
            CellResult r;
            double c0 = wallNow();
            OsRunResult rb = runSingleNode(bin.base, c.node,
                                           bin.baseCache);
            OsRunResult ri = runSingleNode(bin.inst, c.node,
                                           bin.instCache);
            r.tBase = rb.makespanSeconds;
            r.tInst = ri.makespanSeconds;
            r.instrs = rb.totalInstrs + ri.totalInstrs;
            r.hostSeconds = wallNow() - c0;
            return r;
        });
    const double wallSeconds = wallNow() - t0;

    // Ordered merge: same stdout as the sequential harness.
    size_t i = 0;
    for (const WorkloadRegistry::Resolved &r : resolved) {
        for (const NodeSpec &node : nodeSpecs) {
            std::printf("\n-- %s on %s --\n",
                        r.provider->name().c_str(), node.name.c_str());
            std::printf("%-6s %-7s %14s %14s %9s\n", "class",
                        "threads", "base(s)", "instrumented(s)",
                        "overhead");
            for (ProblemClass cls : classes) {
                for (int t : threads) {
                    const CellResult &cr = results[i++];
                    double overhead =
                        (cr.tInst / cr.tBase - 1.0) * 100.0;
                    std::printf("%-6s %-7d %14.6f %14.6f %8.2f%%\n",
                                className(cls), t, cr.tBase, cr.tInst,
                                overhead);
                }
            }
        }
    }

    uint64_t simInstrs = 0;
    for (const CellResult &r : results)
        simInstrs += r.instrs;

    if (!opts.perfJsonPath.empty()) {
        std::FILE *f = std::fopen(opts.perfJsonPath.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n",
                         opts.perfJsonPath.c_str());
            return 1;
        }
        writeJsonHeader(f, spec.benchName.c_str(), quick,
                        sweepThreads(), cells.size(), wallSeconds);
        std::fprintf(f,
                     "  \"simulated_instrs\": %llu,\n"
                     "  \"mips\": %.2f,\n"
                     "  \"rows\": [\n",
                     static_cast<unsigned long long>(simInstrs),
                     simInstrs / wallSeconds / 1e6);
        for (size_t k = 0; k < cells.size(); ++k) {
            const Cell &c = cells[k];
            const CellResult &r = results[k];
            std::fprintf(
                f,
                "    {\"workload\": \"%s\", \"isa\": \"%s\", "
                "\"class\": \"%s\", \"threads\": %d, "
                "\"base_seconds\": %.9f, \"instrumented_seconds\": "
                "%.9f, \"overhead_pct\": %.4f, \"instrs\": %llu}%s\n",
                c.provider->name().c_str(),
                c.node.isa == IsaId::Aether64 ? "Aether64" : "Xeno64",
                className(c.cls), c.nthreads, r.tBase, r.tInst,
                (r.tInst / r.tBase - 1.0) * 100.0,
                static_cast<unsigned long long>(r.instrs),
                k + 1 < cells.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::fprintf(stderr, "perf json: %s\n",
                     opts.perfJsonPath.c_str());
    }

    if (!opts.sweepJsonPath.empty()) {
        std::FILE *f = std::fopen(opts.sweepJsonPath.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n",
                         opts.sweepJsonPath.c_str());
            return 1;
        }
        writeJsonHeader(f, spec.benchName.c_str(), quick,
                        sweepThreads(), cells.size(), wallSeconds);
        std::fprintf(f, "  \"cells\": [\n");
        for (size_t k = 0; k < cells.size(); ++k) {
            const Cell &c = cells[k];
            std::fprintf(
                f,
                "    {\"index\": %zu, \"workload\": \"%s\", "
                "\"isa\": \"%s\", \"class\": \"%s\", \"threads\": %d, "
                "\"host_seconds\": %.6f}%s\n",
                k, c.provider->name().c_str(),
                c.node.isa == IsaId::Aether64 ? "Aether64" : "Xeno64",
                className(c.cls), c.nthreads, results[k].hostSeconds,
                k + 1 < cells.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::fprintf(stderr, "sweep json: %s\n",
                     opts.sweepJsonPath.c_str());
    }

    // Per-cell registries die with their cell; only the tracer
    // survives to the output stage.
    obs::StatRegistry empty;
    writeOutputs(opts, empty);
    return 0;
}

// --- kind = sustained (the fig12 report) ----------------------------

int
runSustained(const ExperimentSpec &spec, const Options &opts)
{
    banner(spec.figure.c_str(), spec.title.c_str());
    JobProfileTable table = JobProfileTable::calibrate();
    const ClusterSpec &cl = spec.cluster;

    std::vector<std::unique_ptr<ClusterSim>> sims;
    for (const PoolSpec &p : cl.pools)
        sims.push_back(std::make_unique<ClusterSim>(
            cl.makePool(p), table, cl.simConfig()));

    const int numSets = spec.activeSets(quickMode());
    std::printf("\n%-6s", "set");
    for (const PoolSpec &p : cl.pools) {
        int width = p.columnWidth > 0 ? p.columnWidth
                                      : (p.baseline ? 21 : 25);
        std::printf(" | %*s", width, p.column.c_str());
    }
    std::printf(" |");
    for (const PoolSpec &p : cl.pools)
        if (!p.baseline)
            std::printf(" %7s", p.mkspLabel.c_str());
    std::printf("\n");

    std::vector<RunningStat> dEnergy(cl.pools.size());
    std::vector<RunningStat> mkspRatio(cl.pools.size());
    for (int set = 0; set < numSets; ++set) {
        auto jobs = makeSustainedSet(
            spec.seedBase + static_cast<uint64_t>(set),
            spec.jobsPerSet);
        std::vector<ClusterResult> results;
        for (size_t p = 0; p < cl.pools.size(); ++p)
            results.push_back(
                sims[p]->run(jobs, cl.pools[p].policy));
        const ClusterResult &base = results[0];
        std::printf("set-%-2d", set);
        for (const ClusterResult &r : results)
            std::printf(" | %9.1f (%4.1f/%4.1f)", r.totalEnergy / 1e3,
                        r.energyJoules[0] / 1e3,
                        r.energyJoules[1] / 1e3);
        std::printf(" |");
        for (size_t p = 0; p < results.size(); ++p)
            if (!cl.pools[p].baseline)
                std::printf(" %6.2fx",
                            results[p].makespan / base.makespan);
        std::printf("\n");
        for (size_t p = 0; p < results.size(); ++p) {
            if (cl.pools[p].baseline)
                continue;
            dEnergy[p].add((1.0 - results[p].totalEnergy /
                                      base.totalEnergy) *
                           100);
            mkspRatio[p].add(results[p].makespan / base.makespan);
        }
    }

    std::printf("\nEnergy reduction vs %s:",
                cl.pools[0].shortLabel.c_str());
    bool first = true;
    for (size_t p = 0; p < cl.pools.size(); ++p) {
        if (cl.pools[p].baseline)
            continue;
        std::printf("%s %s avg %.1f%% (max %.1f%%)", first ? "" : ",",
                    cl.pools[p].shortLabel.c_str(), dEnergy[p].mean(),
                    dEnergy[p].max());
        first = false;
    }
    std::printf("\n");
    std::printf("Makespan ratio:");
    first = true;
    for (size_t p = 0; p < cl.pools.size(); ++p) {
        if (cl.pools[p].baseline)
            continue;
        std::printf("%s %s avg %.2fx", first ? "" : ",",
                    cl.pools[p].shortLabel.c_str(),
                    mkspRatio[p].mean());
        first = false;
    }
    std::printf("\n");
    if (!spec.footer.empty())
        std::printf("%s\n", spec.footer.c_str());

    writeOutputs(opts, sims.back()->statRegistry());
    return 0;
}

// --- kind = rack (the rack-scale report) ----------------------------

int
runRack(const ExperimentSpec &spec, const Options &opts)
{
    banner(spec.figure.c_str(), spec.title.c_str());
    JobProfileTable table = JobProfileTable::calibrate();
    const bool quick = quickMode();
    const ClusterSpec &cl = spec.cluster;
    const int numSets = spec.activeSets(quick);

    std::printf("\n%-22s %14s %14s %10s %10s %8s\n", "rack mix",
                "energy(kJ)", "makespan(s)", "dE", "dEDP", "migr");
    struct PoolRow {
        const PoolSpec *pool;
        double energyKj = 0;
        double makespan = 0;
        double migrations = 0;
    };
    std::vector<PoolRow> poolRows;
    uint64_t schedEvents = 0;
    double baseEnergy = 0, baseEdp = 0;
    std::unique_ptr<ClusterSim> lastSim;
    const double t0 = wallNow();
    for (const PoolSpec &pool : cl.pools) {
        RunningStat energy, makespan, edp, migr;
        for (int set = 0; set < numSets; ++set) {
            auto jobs = makePeriodicSet(
                spec.seedBase + static_cast<uint64_t>(set), spec.waves,
                spec.jobsPerWavePerMachine * spec.poolMachines);
            auto sim = std::make_unique<ClusterSim>(
                cl.makePool(pool), table, cl.simConfig());
            ClusterResult r = sim->run(jobs, pool.policy);
            energy.add(r.totalEnergy);
            makespan.add(r.makespan);
            edp.add(r.edp);
            migr.add(r.migrations);
            schedEvents += sim->eventsProcessed();
            lastSim = std::move(sim);
        }
        if (pool.baseline) {
            baseEnergy = energy.mean();
            baseEdp = edp.mean();
        }
        double de = baseEnergy > 0
                        ? (1.0 - energy.mean() / baseEnergy) * 100
                        : 0;
        double dedp =
            baseEdp > 0 ? (1.0 - edp.mean() / baseEdp) * 100 : 0;
        std::printf("%-22s %14.1f %14.1f %9.1f%% %9.1f%% %8.0f\n",
                    pool.label.c_str(), energy.mean() / 1e3,
                    makespan.mean(), de, dedp, migr.mean());
        poolRows.push_back({&pool, energy.mean() / 1e3,
                            makespan.mean(), migr.mean()});
    }
    const double wallSeconds = wallNow() - t0;
    if (!spec.footer.empty())
        std::printf("\n%s\n", spec.footer.c_str());

    // Rack perf JSON reports scheduler event throughput -- the gate
    // tools/check_perf.py applies via --min-events-per-sec -- instead
    // of interpreter MIPS: rack runs exercise ClusterSim, not the
    // instruction-level machine.
    if (!opts.perfJsonPath.empty()) {
        std::FILE *f = std::fopen(opts.perfJsonPath.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n",
                         opts.perfJsonPath.c_str());
            return 1;
        }
        writeJsonHeader(f, spec.benchName.c_str(), quick,
                        sweepThreads(),
                        cl.pools.size() * static_cast<size_t>(numSets),
                        wallSeconds);
        std::fprintf(f,
                     "  \"sched_events\": %llu,\n"
                     "  \"events_per_sec\": %.2f,\n"
                     "  \"rows\": [\n",
                     static_cast<unsigned long long>(schedEvents),
                     wallSeconds > 0 ? schedEvents / wallSeconds : 0.0);
        for (size_t k = 0; k < poolRows.size(); ++k) {
            const PoolRow &row = poolRows[k];
            std::fprintf(
                f,
                "    {\"pool\": \"%s\", \"energy_kj\": %.6f, "
                "\"makespan_seconds\": %.6f, \"migrations\": %.1f}%s\n",
                row.pool->label.c_str(), row.energyKj, row.makespan,
                row.migrations, k + 1 < poolRows.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::fprintf(stderr, "perf json: %s\n",
                     opts.perfJsonPath.c_str());
    }

    if (lastSim)
        writeOutputs(opts, lastSim->statRegistry());
    return 0;
}

// --- kind = single (one container, spec-built) ----------------------

int
runSingle(const ExperimentSpec &spec, const Options &opts)
{
    banner(spec.figure.c_str(), spec.title.c_str());
    WorkloadRegistry reg = makeRegistry(spec);
    WorkloadRegistry::Resolved resolved = reg.resolve(spec.workloadRef);
    Module mod = resolved.provider->makeWorkload(resolved.params);
    MultiIsaBinary bin = compileModule(mod);

    OsConfig cfg;
    for (const std::string &ref : spec.singleMachineRefs)
        cfg.nodes.push_back(spec.cluster.makeNode(ref));
    cfg.net.latencyUs = spec.cluster.latencyUs;
    cfg.net.gbitPerSec = spec.cluster.gbitPerSec;
    if (spec.cluster.hasFaults)
        cfg.net.faults = spec.cluster.faults;
    cfg.quantum = spec.quantum;
    cfg.dsmMode = spec.dsmMode == "remote" ? DsmMode::RemoteAccess
                                           : DsmMode::MigratePages;

    std::printf("\nworkload %s (", spec.workloadRef.c_str());
    bool first = true;
    for (const std::string &key : resolved.params.keys()) {
        std::printf("%s%s=%s", first ? "" : ", ", key.c_str(),
                    resolved.params.getString(key, "").c_str());
        first = false;
    }
    std::printf(") on %zu node(s), dsm=%s, quantum=%llu\n",
                cfg.nodes.size(), spec.dsmMode.c_str(),
                static_cast<unsigned long long>(cfg.quantum));
    for (const NodeSpec &n : cfg.nodes)
        std::printf("  node %s: %s, %d cores @ %.2f GHz\n",
                    n.name.c_str(), isaName(n.isa), n.cores,
                    n.freqGHz);

    ReplicatedOS os(bin, cfg);
    os.load(spec.startNode);
    OsRunResult r = os.run();

    for (const std::string &line : r.output)
        std::printf("  %s\n", line.c_str());
    std::printf("finished=%s exit=%lld instrs=%llu makespan=%.6f s\n",
                r.finished ? "yes" : "no",
                static_cast<long long>(r.exitCode),
                static_cast<unsigned long long>(r.totalInstrs),
                r.makespanSeconds);

    writeOutputs(opts, os.statRegistry());
    return r.finished ? 0 : 1;
}

// --- kind = serving (open-loop REDIS under SLOs) --------------------

} // namespace

void
applyFailures(const ExperimentSpec &spec, double durationSeconds,
              traffic::ServingConfig &cfg)
{
    if (spec.failures.empty())
        return;
    const Topology topo(spec.cluster.topo);
    const int nodes = static_cast<int>(cfg.nodes.size());
    cfg.nodeRack.clear();
    for (int nd = 0; nd < nodes; ++nd)
        cfg.nodeRack.push_back(topo.rackOf(nd));
    for (const FailureSpec &f : spec.failures) {
        const double at = f.at * durationSeconds;
        const double heal = f.heal * durationSeconds;
        for (int nd = 0; nd < nodes; ++nd) {
            const bool member = f.kind == "agg"
                                    ? topo.podOf(nd) == f.domain
                                    : topo.rackOf(nd) == f.domain;
            if (member)
                cfg.crashes.push_back({nd, at, heal - at});
        }
        cfg.brownouts.push_back({at, heal, spec.shedDeciles});
    }
}

namespace {

int
runServing(const ExperimentSpec &spec, const Options &opts)
{
    banner(spec.figure.c_str(), spec.title.c_str());
    const bool quick = quickMode();
    const TrafficSpec &t = spec.traffic;
    const double duration = t.activeDuration(quick);

    traffic::TrafficConfig tc;
    tc.seed = t.seed;
    // XISA_PERTURB overlay: reshape the request stream per sweep seed
    // while keeping the outage/crash schedule fixed, so audit sweeps
    // exercise fresh traffic against the same failure plan (the
    // serving analogue of the cluster link's fault overlay).
    if (check::SchedulePerturber::enabled())
        tc.seed ^= check::SchedulePerturber::envSeed() * 0x9e3779b97f4a7c15ull;
    tc.clients = t.clients;
    tc.requestHz = t.requestHz;
    tc.durationSeconds = duration;
    tc.zipfSkew = t.zipfSkew;
    tc.keySpace = t.keySpace;
    tc.getFraction = t.getFraction;
    tc.shards = t.shards;

    const double t0 = wallNow();
    traffic::ServingProfile prof = traffic::ServingProfile::calibrate();
    std::vector<traffic::Request> reqs = traffic::generateRequests(tc);

    traffic::ServingConfig base;
    for (const std::string &ref : spec.singleMachineRefs)
        base.nodes.push_back(spec.cluster.makeNode(ref));
    base.placement = t.placement;
    base.sloUs = t.sloUs;
    for (const CrashSpec &cs : spec.cluster.crashPlan)
        base.crashes.push_back({cs.machine, cs.time * duration,
                                spec.cluster.crashDownSeconds});
    applyFailures(spec, duration, base);

    std::printf("\n%llu requests over %.3f s (%.0f req/s offered), "
                "%d shards on %zu nodes, slo %.0f us\n",
                static_cast<unsigned long long>(reqs.size()), duration,
                tc.totalRate(), t.shards, base.nodes.size(), t.sloUs);
    std::printf("calibrated: xeno get/set %.1f/%.1f us, aether "
                "get/set %.1f/%.1f us, migrate %.2f ms, "
                "failover %.2f ms%s\n",
                prof.getSeconds[size_t(IsaId::Xeno64)] * 1e6,
                prof.setSeconds[size_t(IsaId::Xeno64)] * 1e6,
                prof.getSeconds[size_t(IsaId::Aether64)] * 1e6,
                prof.setSeconds[size_t(IsaId::Aether64)] * 1e6,
                prof.migrateSeconds * 1e3, prof.failoverSeconds * 1e3,
                base.crashes.empty()
                    ? ""
                    : ", crash plan active");
    if (!spec.failures.empty())
        std::printf("failure plan: %zu domain outage(s) over %zu "
                    "racked nodes, %zu node crashes scheduled, "
                    "shedding %d decile(s) while degraded\n",
                    spec.failures.size(), base.nodes.size(),
                    base.crashes.size(), spec.shedDeciles);

    struct Row {
        const char *scenario;
        traffic::ServingResult r;
    };
    std::vector<Row> rows;
    obs::StatRegistry reg;
    // Stats detach when their sim dies, so the sims must outlive
    // writeOutputs below or --stats-json dumps an empty registry.
    std::vector<std::unique_ptr<traffic::ServingSim>> sims;
    sims.push_back(std::make_unique<traffic::ServingSim>(
        base, prof, reg, "serving.static"));
    rows.push_back({"static", sims.back()->run(reqs)});
    if (!t.migratePlan.empty()) {
        traffic::ServingConfig cfg = base;
        for (const ShardMigrationSpec &m : t.migratePlan)
            cfg.migrations.push_back(
                {m.shard, m.time * duration, m.node});
        sims.push_back(std::make_unique<traffic::ServingSim>(
            cfg, prof, reg, "serving.migrate"));
        rows.push_back({"migrate", sims.back()->run(reqs)});
    }
    const double wallSeconds = wallNow() - t0;

    std::printf("\n%-8s %10s %10s %10s %10s %10s %10s %7s %5s %6s\n",
                "scenario", "requests", "p50(us)", "p99(us)",
                "p99.9(us)", "max(us)", "slo-viol", "viol%", "migr",
                "failov");
    for (const Row &row : rows) {
        const traffic::ServingResult &r = row.r;
        std::printf("%-8s %10llu %10.1f %10.1f %10.1f %10.1f %10llu "
                    "%6.2f%% %5llu %6llu\n",
                    row.scenario,
                    static_cast<unsigned long long>(r.requests),
                    r.p50Us, r.p99Us, r.p999Us, r.maxUs,
                    static_cast<unsigned long long>(r.sloViolations),
                    r.requests
                        ? 100.0 * static_cast<double>(r.sloViolations) /
                              static_cast<double>(r.requests)
                        : 0.0,
                    static_cast<unsigned long long>(r.migrations),
                    static_cast<unsigned long long>(r.failovers));
    }
    if (!base.brownouts.empty()) {
        for (const Row &row : rows)
            std::printf("%-8s degraded: %llu shed, %llu of %llu slo "
                        "violations inside failure windows\n",
                        row.scenario,
                        static_cast<unsigned long long>(row.r.shed),
                        static_cast<unsigned long long>(
                            row.r.violationsDegraded),
                        static_cast<unsigned long long>(
                            row.r.sloViolations));
    }
    for (const Row &row : rows) {
        std::printf("%-8s cumulative slo violations by decile:",
                    row.scenario);
        for (uint64_t v : row.r.violationsByDecile)
            std::printf(" %llu", static_cast<unsigned long long>(v));
        std::printf("\n");
    }
    if (rows.size() == 2) {
        const traffic::ServingResult &s = rows[0].r;
        const traffic::ServingResult &m = rows[1].r;
        std::printf("\nmigrate vs static: p99 %.1f -> %.1f us "
                    "(%+.1f%%), slo violations %llu -> %llu\n",
                    s.p99Us, m.p99Us,
                    s.p99Us > 0
                        ? (m.p99Us / s.p99Us - 1.0) * 100.0
                        : 0.0,
                    static_cast<unsigned long long>(s.sloViolations),
                    static_cast<unsigned long long>(m.sloViolations));
    }
    if (!spec.footer.empty())
        std::printf("\n%s\n", spec.footer.c_str());

    if (!opts.perfJsonPath.empty()) {
        std::FILE *f = std::fopen(opts.perfJsonPath.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n",
                         opts.perfJsonPath.c_str());
            return 1;
        }
        writeJsonHeader(f, spec.benchName.c_str(), quick,
                        sweepThreads(), rows.size(), wallSeconds);
        std::fprintf(f, "  \"rows\": [\n");
        for (size_t k = 0; k < rows.size(); ++k) {
            const traffic::ServingResult &r = rows[k].r;
            char degraded[96] = "";
            if (!spec.failures.empty())
                std::snprintf(
                    degraded, sizeof degraded,
                    ", \"shed\": %llu, "
                    "\"slo_violations_degraded\": %llu",
                    static_cast<unsigned long long>(r.shed),
                    static_cast<unsigned long long>(
                        r.violationsDegraded));
            std::fprintf(
                f,
                "    {\"scenario\": \"%s\", \"requests\": %llu, "
                "\"p50_us\": %.6f, \"p99_us\": %.6f, "
                "\"p999_us\": %.6f, \"max_us\": %.6f, "
                "\"slo_violations\": %llu, \"violation_pct\": %.6f, "
                "\"migrations\": %llu, \"failovers\": %llu%s}%s\n",
                rows[k].scenario,
                static_cast<unsigned long long>(r.requests), r.p50Us,
                r.p99Us, r.p999Us, r.maxUs,
                static_cast<unsigned long long>(r.sloViolations),
                r.requests
                    ? 100.0 * static_cast<double>(r.sloViolations) /
                          static_cast<double>(r.requests)
                    : 0.0,
                static_cast<unsigned long long>(r.migrations),
                static_cast<unsigned long long>(r.failovers),
                degraded, k + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::fprintf(stderr, "perf json: %s\n",
                     opts.perfJsonPath.c_str());
    }

    writeOutputs(opts, reg);
    return 0;
}

} // namespace

int
runExperiment(const ExperimentSpec &spec, const Options &opts)
{
    switch (spec.kind) {
      case ExperimentKind::Overhead: return runOverhead(spec, opts);
      case ExperimentKind::Sustained: return runSustained(spec, opts);
      case ExperimentKind::Rack: return runRack(spec, opts);
      case ExperimentKind::Single: return runSingle(spec, opts);
      case ExperimentKind::Serving: return runServing(spec, opts);
    }
    return 2;
}

} // namespace xisa::exp
