#include "exp/config.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace xisa::exp {

namespace {

std::string
trim(const std::string &s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
validKey(const std::string &k)
{
    if (k.empty())
        return false;
    for (char c : k) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
            c != '.' && c != '-' && c != '[' && c != ']')
            return false;
    }
    return true;
}

/** Strip one layer of quotes; "..." processes backslash escapes. */
std::string
unquote(const std::string &v, bool *err)
{
    *err = false;
    if (v.size() >= 2 && v.front() == '\'' && v.back() == '\'')
        return v.substr(1, v.size() - 2);
    if (v.size() >= 2 && v.front() == '"' && v.back() == '"') {
        std::string out;
        for (size_t i = 1; i + 1 < v.size(); ++i) {
            char c = v[i];
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (i + 2 >= v.size()) {
                *err = true;
                return out;
            }
            char esc = v[++i];
            switch (esc) {
              case 'n': out.push_back('\n'); break;
              case 't': out.push_back('\t'); break;
              case '\\': out.push_back('\\'); break;
              case '"': out.push_back('"'); break;
              default: *err = true; return out;
            }
        }
        return out;
    }
    return v;
}

} // namespace

std::string
confQuote(const std::string &s)
{
    bool plain = !s.empty();
    for (char c : s) {
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == '.' || c == '-' || c == '@' || c == '*' || c == '/')
            continue;
        plain = false;
        break;
    }
    if (plain)
        return s;
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          default: out.push_back(c);
        }
    }
    out += '"';
    return out;
}

void
Config::fail(int line, const std::string &msg) const
{
    if (line > 0)
        throw ConfigError(name_ + ":" + std::to_string(line) + ": " +
                          msg);
    throw ConfigError(name_ + ": " + msg);
}

Config
Config::parseFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        throw ConfigError(path + ": cannot open config file");
    std::ostringstream ss;
    ss << f.rdbuf();
    return parseString(ss.str(), path);
}

Config
Config::parseString(const std::string &text, const std::string &name)
{
    Config c;
    c.name_ = name;
    c.sections_.push_back({"", {}});
    c.parseLines(text);
    return c;
}

void
Config::parseLines(const std::string &text)
{
    std::istringstream in(text);
    std::string raw;
    int lineNo = 0;
    size_t cur = 0; // current section index
    while (std::getline(in, raw)) {
        ++lineNo;
        // Strip comments, but not inside quotes. Inside "..." a
        // backslash escapes the next character, so \\" is a literal
        // backslash followed by the closing quote.
        std::string line;
        char quote = 0;
        bool esc = false;
        for (size_t i = 0; i < raw.size(); ++i) {
            char ch = raw[i];
            if (quote) {
                line.push_back(ch);
                if (esc)
                    esc = false;
                else if (quote == '"' && ch == '\\')
                    esc = true;
                else if (ch == quote)
                    quote = 0;
                continue;
            }
            if (ch == '\'' || ch == '"') {
                quote = ch;
                line.push_back(ch);
                continue;
            }
            if (ch == '#')
                break;
            line.push_back(ch);
        }
        if (quote)
            fail(lineNo, "unterminated quote");
        line = trim(line);
        if (line.empty())
            continue;
        if (line.front() == '[') {
            if (line.back() != ']')
                fail(lineNo, "missing ']' in section header");
            std::string sec = trim(line.substr(1, line.size() - 2));
            if (sec.empty() || !validKey(sec))
                fail(lineNo, "bad section name '" + sec + "'");
            if (findSection(sec))
                fail(lineNo, "duplicate section [" + sec + "]");
            sections_.push_back({sec, {}});
            cur = sections_.size() - 1;
            continue;
        }
        size_t eq = line.find('=');
        if (eq == std::string::npos)
            fail(lineNo, "expected 'key = value': '" + line + "'");
        std::string key = trim(line.substr(0, eq));
        if (!validKey(key))
            fail(lineNo, "bad key name '" + key + "'");
        std::string value = trim(line.substr(eq + 1));
        value = expandMacros(value, lineNo, 0);
        bool badEsc = false;
        value = unquote(value, &badEsc);
        if (badEsc)
            fail(lineNo, "bad escape sequence in value of '" + key +
                             "'");
        Section &s = sections_[cur];
        for (const ConfEntry &e : s.entries) {
            if (e.key == key)
                fail(lineNo, "duplicate key '" + key + "' in [" +
                                 s.name + "] (first at line " +
                                 std::to_string(e.line) + ")");
        }
        s.entries.push_back({key, value, lineNo, false});
    }
}

std::string
Config::expandMacros(const std::string &value, int line,
                     int depth) const
{
    if (depth > 8)
        fail(line, "macro expansion too deep (cycle?)");
    std::string out;
    for (size_t i = 0; i < value.size(); ++i) {
        if (value[i] != '$' || i + 1 >= value.size() ||
            value[i + 1] != '(') {
            out.push_back(value[i]);
            continue;
        }
        size_t close = value.find(')', i + 2);
        if (close == std::string::npos)
            fail(line, "unterminated $( in value");
        std::string ref = value.substr(i + 2, close - i - 2);
        const ConfEntry *e = findEntry("", ref);
        if (!e)
            fail(line, "$( " + ref + " ) refers to an undefined "
                                     "global key");
        out += expandMacros(e->value, line, depth + 1);
        i = close;
    }
    return out;
}

Config::Section *
Config::findSection(const std::string &name)
{
    for (Section &s : sections_)
        if (s.name == name)
            return &s;
    return nullptr;
}

const Config::Section *
Config::findSection(const std::string &name) const
{
    for (const Section &s : sections_)
        if (s.name == name)
            return &s;
    return nullptr;
}

const ConfEntry *
Config::findEntry(const std::string &section,
                  const std::string &key) const
{
    const Section *s = findSection(section);
    if (!s)
        return nullptr;
    for (const ConfEntry &e : s->entries)
        if (e.key == key)
            return &e;
    return nullptr;
}

bool
Config::hasSection(const std::string &section) const
{
    return findSection(section) != nullptr;
}

std::vector<std::string>
Config::sectionNames() const
{
    std::vector<std::string> out;
    for (const Section &s : sections_)
        if (!s.name.empty())
            out.push_back(s.name);
    return out;
}

std::vector<std::string>
Config::sectionsWithPrefix(const std::string &prefix) const
{
    std::vector<std::string> out;
    for (const Section &s : sections_)
        if (s.name.rfind(prefix, 0) == 0)
            out.push_back(s.name);
    return out;
}

bool
Config::has(const std::string &section, const std::string &key) const
{
    return findEntry(section, key) != nullptr;
}

std::vector<std::string>
Config::keysOf(const std::string &section) const
{
    std::vector<std::string> out;
    const Section *s = findSection(section);
    if (!s)
        return out;
    for (const ConfEntry &e : s->entries)
        out.push_back(e.key);
    return out;
}

std::string
Config::getString(const std::string &section, const std::string &key,
                  const std::string &def) const
{
    const ConfEntry *e = findEntry(section, key);
    if (!e)
        return def;
    const_cast<ConfEntry *>(e)->used = true;
    return e->value;
}

std::string
Config::requireString(const std::string &section,
                      const std::string &key) const
{
    const ConfEntry *e = findEntry(section, key);
    if (!e) {
        std::string where =
            section.empty() ? "global section" : "[" + section + "]";
        fail(0, "missing required key '" + key + "' in " + where);
    }
    const_cast<ConfEntry *>(e)->used = true;
    return e->value;
}

int64_t
Config::getInt(const std::string &section, const std::string &key,
               int64_t def) const
{
    const ConfEntry *e = findEntry(section, key);
    if (!e)
        return def;
    const_cast<ConfEntry *>(e)->used = true;
    char *end = nullptr;
    long long v = std::strtoll(e->value.c_str(), &end, 0);
    if (!end || *end != '\0' || e->value.empty())
        fail(e->line, "key '" + key + "' wants an integer, got '" +
                          e->value + "'");
    return v;
}

int64_t
Config::requireInt(const std::string &section,
                   const std::string &key) const
{
    requireString(section, key); // existence + diagnostics
    return getInt(section, key, 0);
}

double
Config::getDouble(const std::string &section, const std::string &key,
                  double def) const
{
    const ConfEntry *e = findEntry(section, key);
    if (!e)
        return def;
    const_cast<ConfEntry *>(e)->used = true;
    char *end = nullptr;
    double v = std::strtod(e->value.c_str(), &end);
    if (!end || *end != '\0' || e->value.empty())
        fail(e->line, "key '" + key + "' wants a number, got '" +
                          e->value + "'");
    return v;
}

bool
Config::getBool(const std::string &section, const std::string &key,
                bool def) const
{
    const ConfEntry *e = findEntry(section, key);
    if (!e)
        return def;
    const_cast<ConfEntry *>(e)->used = true;
    const std::string &v = e->value;
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    fail(e->line,
         "key '" + key + "' wants a boolean, got '" + v + "'");
}

std::vector<std::string>
Config::getList(const std::string &section,
                const std::string &key) const
{
    std::vector<std::string> out;
    const ConfEntry *e = findEntry(section, key);
    if (!e)
        return out;
    const_cast<ConfEntry *>(e)->used = true;
    std::string item;
    std::istringstream in(e->value);
    while (std::getline(in, item, ',')) {
        item = trim(item);
        if (item.empty())
            fail(e->line, "empty element in list '" + key + "'");
        out.push_back(item);
    }
    return out;
}

int
Config::lineOf(const std::string &section, const std::string &key) const
{
    const ConfEntry *e = findEntry(section, key);
    return e ? e->line : 0;
}

void
Config::markSectionUsed(const std::string &section) const
{
    const Section *s = findSection(section);
    if (!s)
        return;
    for (const ConfEntry &e : s->entries)
        const_cast<ConfEntry &>(e).used = true;
}

void
Config::markSectionsUsedExcept(
    const std::vector<std::string> &keep) const
{
    for (const Section &s : sections_) {
        bool kept = false;
        for (const std::string &k : keep)
            if (s.name == k)
                kept = true;
        if (!kept)
            markSectionUsed(s.name);
    }
}

std::vector<std::string>
Config::unusedKeys() const
{
    std::vector<std::string> out;
    for (const Section &s : sections_) {
        for (const ConfEntry &e : s.entries) {
            if (e.used)
                continue;
            std::string where =
                s.name.empty() ? e.key : s.name + "." + e.key;
            out.push_back(where + " (line " + std::to_string(e.line) +
                          ")");
        }
    }
    return out;
}

void
Config::requireAllUsed() const
{
    std::vector<std::string> unknown = unusedKeys();
    if (unknown.empty())
        return;
    std::string msg = name_ + ": unknown key(s):";
    for (const std::string &k : unknown)
        msg += "\n  " + k;
    throw ConfigError(msg);
}

} // namespace xisa::exp
