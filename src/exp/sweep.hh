/**
 * @file
 * Run-plumbing shared by the legacy bench harnesses and the
 * config-driven xisa_exp runner: quick-mode detection, the parallel
 * sweep driver, the paper-artifact banner, and single-node execution.
 *
 * Moved here from bench/common.hh so the runner and the benches use
 * the exact same code paths -- the conf-vs-legacy equivalence tests
 * compare stdout byte-for-byte, which only holds if both sides share
 * one sweep driver and one banner.
 */

#ifndef XISA_EXP_SWEEP_HH
#define XISA_EXP_SWEEP_HH

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "machine/node.hh"
#include "obs/trace.hh"
#include "os/os.hh"

namespace xisa::exp {

/** True if the harness should run a reduced sweep (XISA_QUICK=1). */
inline bool
quickMode()
{
    const char *env = std::getenv("XISA_QUICK");
    return env && env[0] == '1';
}

/** Banner naming the paper artifact being regenerated. */
inline void
banner(const char *figure, const char *what)
{
    std::printf("==============================================================\n");
    std::printf("%s -- %s\n", figure, what);
    std::printf("(CrossBound reproduction; shapes comparable, absolute\n");
    std::printf(" numbers are simulator-scale, see EXPERIMENTS.md)\n");
    std::printf("==============================================================\n");
}

/**
 * Run a workload to completion on a single node of the given spec.
 * `execCache` (optional) shares predecoded streams and lowered
 * superblocks with every other container handed the same cache --
 * sweep drivers pass one cache per compiled binary so repeated cells
 * decode it once (DESIGN.md §10); it must only ever span containers
 * executing the identical binary.
 */
inline OsRunResult
runSingleNode(const MultiIsaBinary &bin, const NodeSpec &spec,
              std::shared_ptr<ExecCache> execCache = nullptr)
{
    OsConfig cfg;
    cfg.nodes = {spec};
    cfg.execCache = std::move(execCache);
    ReplicatedOS os(bin, cfg);
    os.load(0);
    return os.run();
}

/**
 * Worker count of the sweep driver: XISA_BENCH_THREADS when set, else
 * the hardware concurrency. Forced to 1 while the event tracer is
 * armed -- the process-global Tracer and the ambient TraceCursor are
 * unsynchronized by design (zero hot-path cost), so traced runs must
 * stay single-threaded.
 */
inline int
sweepThreads()
{
    if (obs::traceEnabled())
        return 1;
    if (const char *env = std::getenv("XISA_BENCH_THREADS")) {
        int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

/**
 * Run `n` independent sweep configurations, possibly in parallel, and
 * return their results in index order.
 *
 * Each call fn(i) must be self-contained: build its own module, own its
 * ReplicatedOS / ClusterSim (and thus its own StatRegistry), and derive
 * any seed deterministically from `i` -- never from shared state. Under
 * those rules the schedule cannot affect the results, so a parallel
 * sweep is bit-identical to the sequential one: workers pull indices
 * from an atomic counter, write into their own slot, and the caller
 * prints from the ordered vector after the join.
 */
template <typename Fn>
auto
runSweep(size_t n, Fn fn) -> std::vector<decltype(fn(size_t{0}))>
{
    using R = decltype(fn(size_t{0}));
    std::vector<R> results(n);
    size_t workers = static_cast<size_t>(sweepThreads());
    if (workers > n)
        workers = n ? n : 1;
    if (workers <= 1) {
        for (size_t i = 0; i < n; ++i)
            results[i] = fn(i);
        return results;
    }
    std::atomic<size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&] {
            for (size_t i = next.fetch_add(1); i < n;
                 i = next.fetch_add(1))
                results[i] = fn(i);
        });
    }
    for (std::thread &t : pool)
        t.join();
    return results;
}

} // namespace xisa::exp

#endif // XISA_EXP_SWEEP_HH
