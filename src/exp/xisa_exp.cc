/**
 * @file
 * The config-driven experiment runner. Every experiment the legacy
 * bench binaries hard-code -- and new ones -- is a `.conf` file:
 *
 *     xisa_exp examples/confs/fig12_sustained.conf
 *     xisa_exp --print-spec FILE     # canonical spec, defaults shown
 *     xisa_exp --list-workloads      # registry contents
 *
 * The report of a conf that mirrors a legacy bench is byte-identical
 * to that bench's stdout (pinned by the conf-equivalence tests).
 */

#include <cstdio>

#include "exp/runner.hh"

using namespace xisa::exp;

int
main(int argc, char **argv)
{
    Options opts = parseCommonArgs(
        argc, argv,
        kOptObs | kOptQuick | kOptPerfJson | kOptSpecTools,
        "  FILE                 experiment .conf to run\n"
        "  --print-spec         parse FILE, print the canonical spec\n"
        "  --list-workloads     print the workload registry and exit\n");

    try {
        if (opts.listWorkloads) {
            WorkloadRegistry &reg = WorkloadRegistry::global();
            for (const std::string &name : reg.names()) {
                const WorkloadProvider &p = reg.require(name);
                std::printf("%-8s %s", name.c_str(),
                            p.threadCapable() ? "threads=1..16"
                                              : "serial");
                std::printf("  [");
                bool first = true;
                for (const std::string &k : p.parameterNames()) {
                    std::printf("%s%s", first ? "" : ", ", k.c_str());
                    first = false;
                }
                std::printf("]\n");
            }
            return 0;
        }
        if (opts.positional.size() != 1) {
            std::fprintf(stderr,
                         "usage: %s [flags] FILE.conf "
                         "(try --help)\n",
                         argv[0]);
            return 2;
        }
        ExperimentSpec spec =
            parseExperimentFile(opts.positional[0]);
        if (opts.printSpec) {
            std::fputs(serializeSpec(spec).c_str(), stdout);
            return 0;
        }
        return runExperiment(spec, opts);
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
}
