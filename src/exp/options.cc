#include "exp/options.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "exp/config.hh"
#include "obs/trace.hh"

namespace xisa::exp {

namespace {

[[noreturn]] void
usageExit(const char *prog, unsigned features, const char *extraUsage,
          const std::string &offender)
{
    if (!offender.empty())
        std::fprintf(stderr, "unknown argument: %s\n", offender.c_str());
    std::fprintf(stderr, "usage: %s [options]\n", prog);
    if (features & kOptConfig)
        std::fprintf(stderr,
                     "  --config FILE        read option defaults from "
                     "a .conf file\n");
    if (features & kOptQuick)
        std::fprintf(stderr,
                     "  --quick              reduced sweep "
                     "(XISA_QUICK=1)\n");
    if (features & kOptObs)
        std::fprintf(stderr,
                     "  --stats              dump the stat registry\n"
                     "  --stats-json FILE    write the stat registry as "
                     "JSON\n"
                     "  --trace-out FILE     write a Chrome trace of "
                     "the run\n");
    if (features & kOptPerfJson)
        std::fprintf(stderr,
                     "  --json FILE          perf-smoke row JSON\n"
                     "  --sweep-json FILE    per-cell host-time JSON\n");
    if (features & kOptFault)
        std::fprintf(stderr,
                     "  --fault-drop P       single drop probability\n"
                     "  --fault-seed S       fault/crash plan seed\n"
                     "  --fault-partition P,L  every P messages, L "
                     "sends fail fast\n"
                     "  --fault-crashes N    machine crashes per run\n"
                     "  --fault-down SEC     crash downtime, seconds\n"
                     "  --fault-crash=M@T    crash machine M at T s "
                     "(repeatable)\n");
    if (features & kOptSpecTools)
        std::fprintf(stderr,
                     "  --print-spec         parse, print the "
                     "canonical spec, exit\n"
                     "  --list-workloads     list registered "
                     "workloads, exit\n");
    if (extraUsage)
        std::fprintf(stderr, "%s", extraUsage);
    std::exit(2);
}

CrashEvent
parseCrashAt(const std::string &v, const char *flag)
{
    size_t at = v.find('@');
    if (at == std::string::npos) {
        std::fprintf(stderr, "%s wants MACHINE@SECONDS, got '%s'\n",
                     flag, v.c_str());
        std::exit(2);
    }
    CrashEvent ev;
    try {
        ev.machine = std::stoi(v.substr(0, at));
        ev.time = std::stod(v.substr(at + 1));
    } catch (const std::exception &) {
        std::fprintf(stderr, "%s: malformed '%s'\n", flag, v.c_str());
        std::exit(2);
    }
    return ev;
}

/** Pre-pass: locate --config and fill Options from the file, so the
 *  flag loop afterwards overrides file values with CLI values. */
void
applyConfigDefaults(Options &o, unsigned features)
{
    Config conf;
    try {
        conf = Config::parseFile(o.configPath);
        if (features & kOptQuick) {
            if (conf.getBool("", "quick", false))
                setenv("XISA_QUICK", "1", 1);
        }
        if (features & kOptObs) {
            o.dumpStats = conf.getBool("output", "stats", o.dumpStats);
            o.statsJsonPath =
                conf.getString("output", "stats_json", o.statsJsonPath);
            o.traceOutPath =
                conf.getString("output", "trace_out", o.traceOutPath);
        }
        if (features & kOptPerfJson) {
            o.perfJsonPath =
                conf.getString("output", "json", o.perfJsonPath);
            o.sweepJsonPath =
                conf.getString("output", "sweep_json", o.sweepJsonPath);
        }
        if (features & kOptFault) {
            o.faultDrop = conf.getDouble("faults", "drop", o.faultDrop);
            o.faultSeed = static_cast<uint64_t>(conf.getInt(
                "faults", "seed",
                static_cast<int64_t>(o.faultSeed)));
            o.faultPartitionPeriod = static_cast<uint64_t>(
                conf.getInt("faults", "partition_period",
                            static_cast<int64_t>(
                                o.faultPartitionPeriod)));
            o.faultPartitionLen = static_cast<uint64_t>(
                conf.getInt("faults", "partition_len",
                            static_cast<int64_t>(o.faultPartitionLen)));
            o.faultCrashes = static_cast<int>(
                conf.getInt("crashes", "count", o.faultCrashes));
            o.faultDownSeconds = conf.getDouble("crashes",
                                                "down_seconds",
                                                o.faultDownSeconds);
            for (const std::string &ev :
                 conf.getList("crashes", "plan"))
                o.scriptedCrashes.push_back(
                    parseCrashAt(ev, "[crashes] plan"));
        }
        conf.requireAllUsed();
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "--config: %s\n", e.what());
        std::exit(2);
    }
}

} // namespace

Options
parseCommonArgs(int argc, char **argv, unsigned features,
                const char *extraUsage)
{
    Options o;
    const char *prog = argc > 0 ? argv[0] : "bench";

    if (features & kOptConfig) {
        for (int i = 1; i < argc; ++i) {
            std::string a = argv[i];
            if (a == "--config" && i + 1 < argc)
                o.configPath = argv[i + 1];
            else if (a.rfind("--config=", 0) == 0)
                o.configPath = a.substr(std::strlen("--config="));
        }
        if (!o.configPath.empty())
            applyConfigDefaults(o, features);
    }

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--", 0) != 0) {
            o.positional.push_back(a);
            continue;
        }
        // Split --flag=value.
        std::string name = a;
        std::string inlineVal;
        bool hasInline = false;
        size_t eq = a.find('=');
        if (eq != std::string::npos) {
            name = a.substr(0, eq);
            inlineVal = a.substr(eq + 1);
            hasInline = true;
        }
        auto val = [&]() -> std::string {
            if (hasInline)
                return inlineVal;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             name.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        auto num = [&](auto parse) {
            std::string v = val();
            try {
                return parse(v);
            } catch (const std::exception &) {
                std::fprintf(stderr, "%s: malformed value '%s'\n",
                             name.c_str(), v.c_str());
                std::exit(2);
            }
        };

        if ((features & kOptConfig) && name == "--config") {
            val(); // consumed by the pre-pass
        } else if ((features & kOptQuick) && name == "--quick") {
            setenv("XISA_QUICK", "1", 1);
        } else if ((features & kOptObs) && name == "--stats") {
            o.dumpStats = true;
        } else if ((features & kOptObs) && name == "--stats-json") {
            o.statsJsonPath = val();
        } else if ((features & kOptObs) && name == "--trace-out") {
            o.traceOutPath = val();
        } else if ((features & kOptPerfJson) && name == "--json") {
            o.perfJsonPath = val();
        } else if ((features & kOptPerfJson) &&
                   name == "--sweep-json") {
            o.sweepJsonPath = val();
        } else if ((features & kOptFault) && name == "--fault-drop") {
            o.faultDrop =
                num([](const std::string &v) { return std::stod(v); });
        } else if ((features & kOptFault) && name == "--fault-seed") {
            o.faultSeed = num(
                [](const std::string &v) { return std::stoull(v); });
        } else if ((features & kOptFault) &&
                   name == "--fault-partition") {
            std::string v = val();
            size_t comma = v.find(',');
            if (comma == std::string::npos) {
                std::fprintf(stderr,
                             "--fault-partition wants PERIOD,LEN\n");
                std::exit(2);
            }
            try {
                o.faultPartitionPeriod =
                    std::stoull(v.substr(0, comma));
                o.faultPartitionLen = std::stoull(v.substr(comma + 1));
            } catch (const std::exception &) {
                std::fprintf(stderr,
                             "--fault-partition: malformed '%s'\n",
                             v.c_str());
                std::exit(2);
            }
        } else if ((features & kOptFault) &&
                   name == "--fault-crashes") {
            o.faultCrashes =
                num([](const std::string &v) { return std::stoi(v); });
        } else if ((features & kOptFault) && name == "--fault-down") {
            o.faultDownSeconds =
                num([](const std::string &v) { return std::stod(v); });
        } else if ((features & kOptFault) && name == "--fault-crash") {
            o.scriptedCrashes.push_back(
                parseCrashAt(val(), "--fault-crash"));
        } else if ((features & kOptSpecTools) &&
                   name == "--print-spec") {
            o.printSpec = true;
        } else if ((features & kOptSpecTools) &&
                   name == "--list-workloads") {
            o.listWorkloads = true;
        } else {
            usageExit(prog, features, extraUsage, a);
        }
    }

    // --fault-down applies to scripted crashes regardless of flag (or
    // conf/CLI) order.
    for (CrashEvent &ev : o.scriptedCrashes)
        ev.downSeconds = o.faultDownSeconds;
    if (!o.traceOutPath.empty())
        obs::setTraceEnabled(true);
    return o;
}

void
writeOutputs(const Options &o, obs::StatRegistry &reg)
{
    if (o.dumpStats)
        reg.dump(std::cout);
    if (!o.statsJsonPath.empty()) {
        std::ofstream f(o.statsJsonPath);
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n",
                         o.statsJsonPath.c_str());
            std::exit(1);
        }
        reg.dumpJson(f);
        std::printf("stats json: %s\n", o.statsJsonPath.c_str());
    }
    if (!o.traceOutPath.empty()) {
        std::ofstream f(o.traceOutPath);
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n",
                         o.traceOutPath.c_str());
            std::exit(1);
        }
        obs::Tracer::global().exportChromeTrace(f);
        std::printf("trace: %s (%zu events, %llu overwritten)\n",
                    o.traceOutPath.c_str(),
                    obs::Tracer::global().size(),
                    static_cast<unsigned long long>(
                        obs::Tracer::global().dropped()));
    }
}

} // namespace xisa::exp
