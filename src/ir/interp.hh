/**
 * @file
 * A reference interpreter for BIR.
 *
 * Executes a module directly at the IR level, with an idealized flat
 * memory and host-side builtins. It exists for differential testing: the
 * per-ISA backends plus machine interpreters must produce exactly the
 * same observable output (printed values, return code, final global
 * state) as this interpreter for every workload. Single-threaded only;
 * thread builtins are rejected.
 */

#ifndef XISA_IR_INTERP_HH
#define XISA_IR_INTERP_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/ir.hh"

namespace xisa {

/** Observable result of an IR-level run. */
struct IRRunResult {
    int64_t retVal = 0;            ///< entry function return value
    int64_t exitCode = 0;          ///< value passed to exit(), if any
    bool exited = false;           ///< exit() was called
    std::vector<std::string> output; ///< print_* builtin records
    uint64_t instrCount = 0;       ///< IR instructions executed
};

/** Reference IR interpreter. */
class IRInterp
{
  public:
    /**
     * @param mod module to execute (must outlive the interpreter)
     * @param maxInstrs execution budget; exceeding it is fatal()
     */
    explicit IRInterp(const Module &mod, uint64_t maxInstrs = 1ull << 32);

    /** Run `funcId` with integer/pointer arguments. */
    IRRunResult run(uint32_t funcId, const std::vector<int64_t> &args = {});

    /** Run the module entry function. */
    IRRunResult runEntry() { return run(mod_.entryFuncId); }

    /** Read bytes of a global after a run (for state comparison). */
    std::vector<uint8_t> readGlobal(uint32_t globalId, uint64_t len = 0);

  private:
    /** 64-bit value: integer or double, by static type. */
    union Slot {
        int64_t i;
        double f;
    };

    struct Frame {
        uint32_t funcId = 0;
        std::vector<Slot> regs;
        std::vector<uint64_t> allocaAddrs;
        uint64_t stackBase = 0; ///< bump-stack position to restore
    };

    uint64_t allocGlobals();
    int64_t callFunction(uint32_t funcId, const std::vector<int64_t> &args);
    int64_t execBuiltin(const IRFunction &f,
                        const std::vector<int64_t> &args);
    void step(Frame &frame, const IRInstr &in, uint32_t &block,
              size_t &idx, bool &returned, int64_t &retVal);

    // Flat byte memory keyed by 4 KiB page.
    uint8_t *pagePtr(uint64_t addr);
    void memWrite(uint64_t addr, const void *src, size_t n);
    void memRead(uint64_t addr, void *dst, size_t n);
    uint64_t loadZext(uint64_t addr, int size);
    void storeTrunc(uint64_t addr, uint64_t value, int size);

    const Module &mod_;
    uint64_t maxInstrs_;
    std::unordered_map<uint64_t, std::vector<uint8_t>> pages_;
    std::vector<uint64_t> globalAddrs_;
    std::vector<uint64_t> tlsAddrs_;
    uint64_t heapNext_ = 0;
    uint64_t stackNext_ = 0;
    IRRunResult result_;
    bool stopRequested_ = false;
};

} // namespace xisa

#endif // XISA_IR_INTERP_HH
