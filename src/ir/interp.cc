#include "ir/interp.hh"

#include <cstring>

#include "util/logging.hh"

namespace xisa {

namespace {

constexpr uint64_t kPageSize = 4096;
constexpr uint64_t kGlobalBase = 0x10000000ull;
constexpr uint64_t kTlsBase = 0x20000000ull;
constexpr uint64_t kHeapBase = 0x30000000ull;
constexpr uint64_t kStackTop = 0x7fff0000ull;
constexpr uint64_t kCodeBase = 0x40000000ull;
constexpr uint64_t kCodeStride = 16;

uint64_t
alignUp(uint64_t x, uint64_t a)
{
    return (x + a - 1) & ~(a - 1);
}

bool
evalIntCond(Cond cond, int64_t a, int64_t b)
{
    uint64_t ua = static_cast<uint64_t>(a);
    uint64_t ub = static_cast<uint64_t>(b);
    switch (cond) {
      case Cond::EQ: return a == b;
      case Cond::NE: return a != b;
      case Cond::LT: return a < b;
      case Cond::LE: return a <= b;
      case Cond::GT: return a > b;
      case Cond::GE: return a >= b;
      case Cond::ULT: return ua < ub;
      case Cond::ULE: return ua <= ub;
      case Cond::UGT: return ua > ub;
      case Cond::UGE: return ua >= ub;
      case Cond::Always: return true;
    }
    return false;
}

bool
evalFloatCond(Cond cond, double a, double b)
{
    switch (cond) {
      case Cond::EQ: return a == b;
      case Cond::NE: return a != b;
      case Cond::LT: return a < b;
      case Cond::LE: return a <= b;
      case Cond::GT: return a > b;
      case Cond::GE: return a >= b;
      default:
        fatal("fcmp with unsigned condition %s", condName(cond));
    }
}

} // namespace

IRInterp::IRInterp(const Module &mod, uint64_t maxInstrs)
    : mod_(mod), maxInstrs_(maxInstrs)
{
    heapNext_ = kHeapBase;
    stackNext_ = kStackTop;
    allocGlobals();
}

uint64_t
IRInterp::allocGlobals()
{
    uint64_t next = kGlobalBase;
    uint64_t tlsNext = kTlsBase;
    globalAddrs_.resize(mod_.globals.size());
    tlsAddrs_.resize(mod_.globals.size());
    for (const GlobalVar &g : mod_.globals) {
        if (g.isTls) {
            tlsNext = alignUp(tlsNext, g.align);
            tlsAddrs_[g.id] = tlsNext;
            if (!g.init.empty())
                memWrite(tlsNext, g.init.data(), g.init.size());
            tlsNext += g.size;
        } else {
            next = alignUp(next, g.align);
            globalAddrs_[g.id] = next;
            if (!g.init.empty())
                memWrite(next, g.init.data(), g.init.size());
            next += g.size;
        }
    }
    return next;
}

uint8_t *
IRInterp::pagePtr(uint64_t addr)
{
    uint64_t page = addr / kPageSize;
    auto it = pages_.find(page);
    if (it == pages_.end())
        it = pages_.emplace(page, std::vector<uint8_t>(kPageSize, 0)).first;
    return it->second.data() + (addr % kPageSize);
}

void
IRInterp::memWrite(uint64_t addr, const void *src, size_t n)
{
    const uint8_t *s = static_cast<const uint8_t *>(src);
    while (n > 0) {
        size_t chunk = std::min<size_t>(n, kPageSize - addr % kPageSize);
        std::memcpy(pagePtr(addr), s, chunk);
        addr += chunk;
        s += chunk;
        n -= chunk;
    }
}

void
IRInterp::memRead(uint64_t addr, void *dst, size_t n)
{
    uint8_t *d = static_cast<uint8_t *>(dst);
    while (n > 0) {
        size_t chunk = std::min<size_t>(n, kPageSize - addr % kPageSize);
        std::memcpy(d, pagePtr(addr), chunk);
        addr += chunk;
        d += chunk;
        n -= chunk;
    }
}

uint64_t
IRInterp::loadZext(uint64_t addr, int size)
{
    uint64_t v = 0;
    memRead(addr, &v, static_cast<size_t>(size));
    return v;
}

void
IRInterp::storeTrunc(uint64_t addr, uint64_t value, int size)
{
    memWrite(addr, &value, static_cast<size_t>(size));
}

std::vector<uint8_t>
IRInterp::readGlobal(uint32_t globalId, uint64_t len)
{
    const GlobalVar &g = mod_.global(globalId);
    if (len == 0)
        len = g.size;
    std::vector<uint8_t> out(len);
    uint64_t base = g.isTls ? tlsAddrs_[globalId] : globalAddrs_[globalId];
    memRead(base, out.data(), out.size());
    return out;
}

IRRunResult
IRInterp::run(uint32_t funcId, const std::vector<int64_t> &args)
{
    result_ = IRRunResult{};
    stopRequested_ = false;
    result_.retVal = callFunction(funcId, args);
    return result_;
}

int64_t
IRInterp::execBuiltin(const IRFunction &f, const std::vector<int64_t> &args)
{
    switch (f.builtin) {
      case Builtin::Malloc: {
        uint64_t size = static_cast<uint64_t>(args[0]);
        heapNext_ = alignUp(heapNext_, 16);
        uint64_t addr = heapNext_;
        heapNext_ += alignUp(std::max<uint64_t>(size, 1), 16);
        return static_cast<int64_t>(addr);
      }
      case Builtin::Free:
        return 0;
      case Builtin::PrintI64:
        result_.output.push_back(
            strfmt("%lld", static_cast<long long>(args[0])));
        return 0;
      case Builtin::PrintF64: {
        double d;
        std::memcpy(&d, &args[0], 8);
        result_.output.push_back(strfmt("%.6g", d));
        return 0;
      }
      case Builtin::Memcpy: {
        std::vector<uint8_t> tmp(static_cast<size_t>(args[2]));
        memRead(static_cast<uint64_t>(args[1]), tmp.data(), tmp.size());
        memWrite(static_cast<uint64_t>(args[0]), tmp.data(), tmp.size());
        return 0;
      }
      case Builtin::Memset: {
        std::vector<uint8_t> tmp(static_cast<size_t>(args[2]),
                                 static_cast<uint8_t>(args[1]));
        memWrite(static_cast<uint64_t>(args[0]), tmp.data(), tmp.size());
        return 0;
      }
      case Builtin::Exit:
        result_.exited = true;
        result_.exitCode = args[0];
        stopRequested_ = true;
        return 0;
      case Builtin::ThreadId:
        return 0;
      case Builtin::NodeId:
        return 0;
      case Builtin::BarrierWait:
        return 0; // single-threaded: barriers are no-ops
      case Builtin::ThreadSpawn:
      case Builtin::ThreadJoin:
        fatal("IRInterp does not support threads (builtin '%s')",
              f.name.c_str());
      case Builtin::None:
        break;
    }
    panic("execBuiltin: not a builtin");
}

int64_t
IRInterp::callFunction(uint32_t funcId, const std::vector<int64_t> &args)
{
    const IRFunction &f = mod_.func(funcId);
    if (f.isBuiltin())
        return execBuiltin(f, args);
    if (args.size() != f.numParams())
        fatal("IRInterp: call to '%s' with %zu args, expected %zu",
              f.name.c_str(), args.size(), f.numParams());

    Frame frame;
    frame.funcId = funcId;
    frame.regs.resize(f.vregTypes.size());
    for (Slot &s : frame.regs)
        s.i = 0;
    for (size_t i = 0; i < args.size(); ++i)
        frame.regs[i].i = args[i];
    frame.stackBase = stackNext_;
    frame.allocaAddrs.reserve(f.allocas.size());
    for (const IRFunction::AllocaSlot &slot : f.allocas) {
        stackNext_ -= slot.size;
        stackNext_ &= ~static_cast<uint64_t>(slot.align - 1);
        frame.allocaAddrs.push_back(stackNext_);
    }

    uint32_t block = 0;
    size_t idx = 0;
    bool returned = false;
    int64_t retVal = 0;
    while (!returned && !stopRequested_) {
        if (idx >= f.blocks[block].instrs.size())
            panic("IRInterp: fell off block %u of %s", block,
                  f.name.c_str());
        const IRInstr &in = f.blocks[block].instrs[idx];
        if (++result_.instrCount > maxInstrs_)
            fatal("IRInterp: instruction budget exceeded (%llu)",
                  static_cast<unsigned long long>(maxInstrs_));
        step(frame, in, block, idx, returned, retVal);
    }
    stackNext_ = frame.stackBase;
    return retVal;
}

void
IRInterp::step(Frame &frame, const IRInstr &in, uint32_t &block,
               size_t &idx, bool &returned, int64_t &retVal)
{
    const IRFunction &f = mod_.func(frame.funcId);
    auto &regs = frame.regs;
    auto I = [&](ValueId v) -> int64_t & { return regs[v].i; };
    auto F = [&](ValueId v) -> double & { return regs[v].f; };
    bool jumped = false;

    switch (in.op) {
      case IROp::ConstInt: I(in.dst) = in.imm; break;
      case IROp::ConstFloat: F(in.dst) = in.fimm; break;
      // Integer arithmetic wraps modulo 2^64 (workload PRNGs rely on
      // it), so compute in unsigned to avoid signed-overflow UB.
      case IROp::Add:
        I(in.dst) = static_cast<int64_t>(static_cast<uint64_t>(I(in.a)) +
                                         static_cast<uint64_t>(I(in.b)));
        break;
      case IROp::Sub:
        I(in.dst) = static_cast<int64_t>(static_cast<uint64_t>(I(in.a)) -
                                         static_cast<uint64_t>(I(in.b)));
        break;
      case IROp::Mul:
        I(in.dst) = static_cast<int64_t>(static_cast<uint64_t>(I(in.a)) *
                                         static_cast<uint64_t>(I(in.b)));
        break;
      case IROp::SDiv:
        if (I(in.b) == 0)
            fatal("IRInterp: division by zero in %s", f.name.c_str());
        I(in.dst) = I(in.a) / I(in.b);
        break;
      case IROp::UDiv:
        if (I(in.b) == 0)
            fatal("IRInterp: division by zero in %s", f.name.c_str());
        I(in.dst) = static_cast<int64_t>(static_cast<uint64_t>(I(in.a)) /
                                         static_cast<uint64_t>(I(in.b)));
        break;
      case IROp::SRem:
        if (I(in.b) == 0)
            fatal("IRInterp: remainder by zero in %s", f.name.c_str());
        I(in.dst) = I(in.a) % I(in.b);
        break;
      case IROp::URem:
        if (I(in.b) == 0)
            fatal("IRInterp: remainder by zero in %s", f.name.c_str());
        I(in.dst) = static_cast<int64_t>(static_cast<uint64_t>(I(in.a)) %
                                         static_cast<uint64_t>(I(in.b)));
        break;
      case IROp::And: I(in.dst) = I(in.a) & I(in.b); break;
      case IROp::Or: I(in.dst) = I(in.a) | I(in.b); break;
      case IROp::Xor: I(in.dst) = I(in.a) ^ I(in.b); break;
      case IROp::Shl:
        I(in.dst) = static_cast<int64_t>(static_cast<uint64_t>(I(in.a))
                                         << (I(in.b) & 63));
        break;
      case IROp::LShr:
        I(in.dst) = static_cast<int64_t>(static_cast<uint64_t>(I(in.a)) >>
                                         (I(in.b) & 63));
        break;
      case IROp::AShr: I(in.dst) = I(in.a) >> (I(in.b) & 63); break;
      case IROp::Neg:
        I(in.dst) = static_cast<int64_t>(
            -static_cast<uint64_t>(I(in.a)));
        break;
      case IROp::FAdd: F(in.dst) = F(in.a) + F(in.b); break;
      case IROp::FSub: F(in.dst) = F(in.a) - F(in.b); break;
      case IROp::FMul: F(in.dst) = F(in.a) * F(in.b); break;
      case IROp::FDiv: F(in.dst) = F(in.a) / F(in.b); break;
      case IROp::FNeg: F(in.dst) = -F(in.a); break;
      case IROp::ICmp:
        I(in.dst) = evalIntCond(in.cond, I(in.a), I(in.b)) ? 1 : 0;
        break;
      case IROp::FCmp:
        I(in.dst) = evalFloatCond(in.cond, F(in.a), F(in.b)) ? 1 : 0;
        break;
      case IROp::SIToFP: F(in.dst) = static_cast<double>(I(in.a)); break;
      case IROp::FPToSI: I(in.dst) = static_cast<int64_t>(F(in.a)); break;
      case IROp::Copy: regs[in.dst] = regs[in.a]; break;
      case IROp::AllocaAddr:
        I(in.dst) = static_cast<int64_t>(
            frame.allocaAddrs[static_cast<size_t>(in.imm)]);
        break;
      case IROp::GlobalAddr:
        I(in.dst) = static_cast<int64_t>(globalAddrs_[in.globalId]);
        break;
      case IROp::TlsAddr:
        I(in.dst) = static_cast<int64_t>(tlsAddrs_[in.globalId]);
        break;
      case IROp::FuncAddr:
        I(in.dst) = static_cast<int64_t>(kCodeBase +
                                         in.funcId * kCodeStride);
        break;
      case IROp::Load: {
        uint64_t addr = static_cast<uint64_t>(I(in.a) + in.imm);
        switch (in.type) {
          case Type::I8: I(in.dst) = static_cast<int64_t>(
              loadZext(addr, 1)); break;
          case Type::I32: I(in.dst) = static_cast<int64_t>(
              static_cast<int32_t>(loadZext(addr, 4))); break;
          case Type::I64: case Type::Ptr:
            I(in.dst) = static_cast<int64_t>(loadZext(addr, 8)); break;
          case Type::F64: {
            uint64_t bits = loadZext(addr, 8);
            std::memcpy(&F(in.dst), &bits, 8);
            break;
          }
          default: panic("load: bad type");
        }
        break;
      }
      case IROp::Store: {
        uint64_t addr = static_cast<uint64_t>(I(in.a) + in.imm);
        switch (in.type) {
          case Type::I8: storeTrunc(addr,
              static_cast<uint64_t>(I(in.b)), 1); break;
          case Type::I32: storeTrunc(addr,
              static_cast<uint64_t>(I(in.b)), 4); break;
          case Type::I64: case Type::Ptr: storeTrunc(addr,
              static_cast<uint64_t>(I(in.b)), 8); break;
          case Type::F64: {
            uint64_t bits;
            std::memcpy(&bits, &F(in.b), 8);
            storeTrunc(addr, bits, 8);
            break;
          }
          default: panic("store: bad type");
        }
        break;
      }
      case IROp::LoadIdx: {
        uint64_t addr = static_cast<uint64_t>(I(in.a) + I(in.b) * in.imm);
        switch (in.type) {
          case Type::I8: I(in.dst) = static_cast<int64_t>(
              loadZext(addr, 1)); break;
          case Type::I32: I(in.dst) = static_cast<int64_t>(
              static_cast<int32_t>(loadZext(addr, 4))); break;
          case Type::I64: case Type::Ptr:
            I(in.dst) = static_cast<int64_t>(loadZext(addr, 8)); break;
          case Type::F64: {
            uint64_t bits = loadZext(addr, 8);
            std::memcpy(&F(in.dst), &bits, 8);
            break;
          }
          default: panic("load_idx: bad type");
        }
        break;
      }
      case IROp::StoreIdx: {
        uint64_t addr = static_cast<uint64_t>(I(in.a) + I(in.b) * in.imm);
        ValueId v = in.args[0];
        switch (in.type) {
          case Type::I8: storeTrunc(addr,
              static_cast<uint64_t>(I(v)), 1); break;
          case Type::I32: storeTrunc(addr,
              static_cast<uint64_t>(I(v)), 4); break;
          case Type::I64: case Type::Ptr: storeTrunc(addr,
              static_cast<uint64_t>(I(v)), 8); break;
          case Type::F64: {
            uint64_t bits;
            std::memcpy(&bits, &F(v), 8);
            storeTrunc(addr, bits, 8);
            break;
          }
          default: panic("store_idx: bad type");
        }
        break;
      }
      case IROp::AtomicAdd: {
        uint64_t addr = static_cast<uint64_t>(I(in.a));
        int64_t old = static_cast<int64_t>(loadZext(addr, 8));
        storeTrunc(addr, static_cast<uint64_t>(old + I(in.b)), 8);
        I(in.dst) = old;
        break;
      }
      case IROp::Br:
        block = in.target;
        idx = 0;
        jumped = true;
        break;
      case IROp::CondBr:
        block = I(in.a) != 0 ? in.target : in.target2;
        idx = 0;
        jumped = true;
        break;
      case IROp::Ret:
        returned = true;
        if (f.retType != Type::Void) {
            if (f.retType == Type::F64)
                std::memcpy(&retVal, &F(in.a), 8);
            else
                retVal = I(in.a);
        }
        break;
      case IROp::Call: {
        std::vector<int64_t> args;
        args.reserve(in.args.size());
        const IRFunction &callee = mod_.func(in.funcId);
        for (size_t i = 0; i < in.args.size(); ++i) {
            ValueId arg = in.args[i];
            if (f.vregTypes[arg] == Type::F64) {
                int64_t bits;
                std::memcpy(&bits, &F(arg), 8);
                args.push_back(bits);
            } else {
                args.push_back(I(arg));
            }
        }
        int64_t r = callFunction(in.funcId, args);
        if (in.dst != kNoValue) {
            if (callee.retType == Type::F64)
                std::memcpy(&F(in.dst), &r, 8);
            else
                I(in.dst) = r;
        }
        break;
      }
      case IROp::CallInd: {
        uint64_t addr = static_cast<uint64_t>(I(in.a));
        if (addr < kCodeBase || (addr - kCodeBase) % kCodeStride != 0)
            fatal("IRInterp: indirect call to non-code address 0x%llx",
                  static_cast<unsigned long long>(addr));
        uint32_t funcId =
            static_cast<uint32_t>((addr - kCodeBase) / kCodeStride);
        if (funcId >= mod_.functions.size())
            fatal("IRInterp: indirect call to bad function %u", funcId);
        std::vector<int64_t> args;
        const IRFunction &callee = mod_.func(funcId);
        for (size_t i = 0; i < in.args.size(); ++i) {
            ValueId arg = in.args[i];
            if (f.vregTypes[arg] == Type::F64) {
                int64_t bits;
                std::memcpy(&bits, &F(arg), 8);
                args.push_back(bits);
            } else {
                args.push_back(I(arg));
            }
        }
        int64_t r = callFunction(funcId, args);
        if (in.dst != kNoValue) {
            if (callee.retType == Type::F64)
                std::memcpy(&F(in.dst), &r, 8);
            else
                I(in.dst) = r;
        }
        break;
      }
      case IROp::MigPoint:
        break; // no-op at the IR level
    }

    if (!jumped && !returned)
        ++idx;
}

} // namespace xisa
