/**
 * @file
 * Fluent construction of BIR modules.
 *
 * FuncBuilder mirrors LLVM's IRBuilder: it appends instructions to a
 * current block and offers structured helpers (forLoop / whileLoop /
 * ifThen / ifThenElse) so the mini-workloads in workload/ read like the
 * C kernels they stand in for. Loop helpers also maintain the per-block
 * loop-depth hint consumed by the migration-point insertion pass and the
 * register allocator's hotness heuristic.
 */

#ifndef XISA_IR_BUILDER_HH
#define XISA_IR_BUILDER_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/ir.hh"

namespace xisa {

class ModuleBuilder;

/** Builds one BIR function. Obtained from ModuleBuilder::defineFunc(). */
class FuncBuilder
{
  public:
    /** The ValueId of parameter `idx`. */
    ValueId param(size_t idx) const;

    /** Allocate a fresh virtual register of the given type. */
    ValueId newReg(Type type);

    /** Declare a stack slot; returns the slot index for allocaAddr(). */
    uint32_t declareAlloca(uint32_t size, uint32_t align,
                           const std::string &name);

    /** Create a new (empty) basic block; does not switch to it. */
    uint32_t newBlock();
    /** Switch the insertion point to `block`. */
    void setBlock(uint32_t block);
    /** Current insertion block. */
    uint32_t currentBlock() const { return cur_; }

    // --- Constants -----------------------------------------------------
    ValueId constInt(int64_t value, Type type = Type::I64);
    ValueId constPtr(int64_t value) { return constInt(value, Type::Ptr); }
    ValueId constFloat(double value);

    // --- Integer arithmetic (result type = type of lhs) ----------------
    ValueId add(ValueId a, ValueId b);
    ValueId sub(ValueId a, ValueId b);
    ValueId mul(ValueId a, ValueId b);
    ValueId sdiv(ValueId a, ValueId b);
    ValueId udiv(ValueId a, ValueId b);
    ValueId srem(ValueId a, ValueId b);
    ValueId urem(ValueId a, ValueId b);
    ValueId band(ValueId a, ValueId b);
    ValueId bor(ValueId a, ValueId b);
    ValueId bxor(ValueId a, ValueId b);
    ValueId shl(ValueId a, ValueId b);
    ValueId lshr(ValueId a, ValueId b);
    ValueId ashr(ValueId a, ValueId b);
    ValueId neg(ValueId a);
    /** a + constant (emits a ConstInt as needed). */
    ValueId addImm(ValueId a, int64_t imm);
    ValueId mulImm(ValueId a, int64_t imm);

    // --- Floating point -------------------------------------------------
    ValueId fadd(ValueId a, ValueId b);
    ValueId fsub(ValueId a, ValueId b);
    ValueId fmul(ValueId a, ValueId b);
    ValueId fdiv(ValueId a, ValueId b);
    ValueId fneg(ValueId a);
    ValueId sitofp(ValueId a);
    ValueId fptosi(ValueId a);

    // --- Comparisons (result is I64 0/1) --------------------------------
    ValueId icmp(Cond cond, ValueId a, ValueId b);
    ValueId fcmp(Cond cond, ValueId a, ValueId b);

    // --- Data movement ---------------------------------------------------
    /** dst = src (types must match); returns dst for chaining. */
    void copy(ValueId dst, ValueId src);

    // --- Memory ----------------------------------------------------------
    ValueId allocaAddr(uint32_t slot);
    ValueId globalAddr(uint32_t globalId);
    ValueId tlsAddr(uint32_t globalId);
    ValueId funcAddr(uint32_t funcId);
    ValueId load(Type type, ValueId addr, int64_t off = 0);
    void store(Type type, ValueId addr, ValueId value, int64_t off = 0);
    ValueId loadIdx(Type type, ValueId base, ValueId index, int64_t scale);
    void storeIdx(Type type, ValueId base, ValueId index, ValueId value,
                  int64_t scale);
    ValueId atomicAdd(ValueId addr, ValueId value);

    // --- Control flow -----------------------------------------------------
    void br(uint32_t block);
    void condBr(ValueId cond, uint32_t thenBlock, uint32_t elseBlock);
    void ret(ValueId value = kNoValue);
    ValueId call(uint32_t funcId, const std::vector<ValueId> &args = {});
    /** Call whose result (if any) is discarded. */
    void callVoid(uint32_t funcId, const std::vector<ValueId> &args = {});
    ValueId callInd(Type retType, ValueId targetAddr,
                    const std::vector<ValueId> &args = {});
    /** Insert an explicit migration point (Section 5.2.1). */
    void migPoint();

    // --- Structured control-flow helpers ----------------------------------
    /**
     * Emit `for (iv = lo; iv < hi; iv += step) body(iv)`.
     * The induction variable is a fresh I64 vreg passed to `body`.
     */
    void forLoop(ValueId lo, ValueId hi,
                 const std::function<void(ValueId iv)> &body,
                 int64_t step = 1);
    /** forLoop with constant bounds. */
    void forLoopI(int64_t lo, int64_t hi,
                  const std::function<void(ValueId iv)> &body,
                  int64_t step = 1);
    /**
     * Emit `while (cond()) body()`. `cond` must emit code computing the
     * condition value in the current block and return it.
     */
    void whileLoop(const std::function<ValueId()> &cond,
                   const std::function<void()> &body);
    /** Emit `if (cond != 0) then()`. */
    void ifThen(ValueId cond, const std::function<void()> &then);
    /** Emit `if (cond != 0) then() else other()`. */
    void ifThenElse(ValueId cond, const std::function<void()> &then,
                    const std::function<void()> &other);

    /** The function being built (valid until ModuleBuilder::finish). */
    IRFunction &fn() { return *fn_; }

  private:
    friend class ModuleBuilder;
    FuncBuilder(ModuleBuilder &parent, IRFunction &fn);

    IRInstr &emit(IRInstr instr);
    ValueId emitBin(IROp op, ValueId a, ValueId b);
    ValueId emitBinF(IROp op, ValueId a, ValueId b);
    Type typeOf(ValueId v) const;

    ModuleBuilder &parent_;
    IRFunction *fn_;
    uint32_t cur_ = 0;
    int loopDepth_ = 0;
};

/** Builds a whole BIR module, including the standard builtins. */
class ModuleBuilder
{
  public:
    explicit ModuleBuilder(std::string name);

    /**
     * Define a function and return a builder positioned at its entry
     * block. The returned reference is stable until finish().
     */
    FuncBuilder &defineFunc(const std::string &name, Type retType,
                            const std::vector<Type> &params);

    /** Declare a zero-initialized global. Returns its id. */
    uint32_t addGlobal(const std::string &name, uint64_t size,
                       uint32_t align = 8, bool isConst = false,
                       bool isTls = false);
    /** Declare a global initialized with raw bytes. */
    uint32_t addGlobalData(const std::string &name,
                           std::vector<uint8_t> init, uint32_t align = 8,
                           bool isConst = false);
    /** Declare a global holding an array of i64 values. */
    uint32_t addGlobalI64s(const std::string &name,
                           const std::vector<int64_t> &values,
                           bool isConst = false);
    /** Declare a global holding an array of f64 values. */
    uint32_t addGlobalF64s(const std::string &name,
                           const std::vector<double> &values,
                           bool isConst = false);

    /** Function id of a standard builtin (declared automatically). */
    uint32_t builtin(Builtin which) const;

    /** Id a function will get if defined next / already has. */
    uint32_t findFunc(const std::string &name) const;

    /** Signature of a declared function or builtin (front-end use). */
    const IRFunction &
    signature(uint32_t funcId) const
    {
        return calleeRef(funcId);
    }

    /**
     * Finalize: set the entry to `entryName`, verify, and move the
     * module out. The builder must not be used afterwards.
     */
    Module finish(const std::string &entryName = "main");

  private:
    friend class FuncBuilder;
    void declareBuiltins();
    /** Signature of a declared function (for Call type checking). */
    const IRFunction &calleeRef(uint32_t funcId) const;

    Module mod_;
    /** Functions under construction; pointer-stable across defineFunc. */
    std::vector<std::unique_ptr<IRFunction>> funcs_;
    std::vector<std::unique_ptr<FuncBuilder>> funcBuilders_;
    uint32_t builtinIds_[16] = {};
};

} // namespace xisa

#endif // XISA_IR_BUILDER_HH
