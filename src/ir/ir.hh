/**
 * @file
 * BIR -- the Boundary Intermediate Representation.
 *
 * BIR plays the role LLVM bitcode plays in the paper's toolchain
 * (Section 5.2): workloads are expressed once in BIR, the migration-point
 * insertion pass runs on BIR, call-site liveness is computed on BIR, and
 * per-ISA backends lower BIR to Aether64 / Xeno64 machine code with
 * stackmap metadata keyed by BIR value ids (which is what makes the
 * metadata comparable across ISAs).
 *
 * BIR is a typed, non-SSA register machine: each function owns a set of
 * mutable virtual registers; basic blocks end in exactly one terminator.
 */

#ifndef XISA_IR_IR_HH
#define XISA_IR_IR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.hh" // for Cond

namespace xisa {

/** Primitive BIR types. Sizes/alignments are ISA-independent (see §5.2.2
 *  footnote 2 of the paper: ARM64 and x86-64 agree on primitives). */
enum class Type : uint8_t { Void, I8, I32, I64, F64, Ptr };

/** Size of a type in bytes (Void is 0). */
int typeSize(Type type);
/** Natural alignment of a type in bytes. */
int typeAlign(Type type);
/** Short type name ("i64", "ptr", ...). */
const char *typeName(Type type);
/** True for I8/I32/I64/Ptr. */
bool isIntLike(Type type);

/** Index of a virtual register within a function. */
using ValueId = uint32_t;
/** Sentinel for "no value". */
constexpr ValueId kNoValue = ~0u;

/** BIR operations. */
enum class IROp : uint8_t {
    // Constants.
    ConstInt,   ///< dst = imm (I8/I32/I64/Ptr)
    ConstFloat, ///< dst = fimm (F64)
    // Integer arithmetic: dst = a OP b.
    Add, Sub, Mul, SDiv, UDiv, SRem, URem,
    And, Or, Xor, Shl, LShr, AShr,
    Neg,        ///< dst = -a
    // Floating point: dst = a OP b.
    FAdd, FSub, FMul, FDiv,
    FNeg,       ///< dst = -a
    // Comparison: dst (I64, 0/1) = a <cond> b.
    ICmp, FCmp,
    // Conversions.
    SIToFP,     ///< dst (F64) = (double)a
    FPToSI,     ///< dst (I64) = (int64)a, truncating
    Copy,       ///< dst = a (same type)
    // Memory. Allocas are declared on the function; AllocaAddr takes the
    // slot's address. Loads/stores carry the access type in `type` and a
    // constant displacement in `imm`.
    AllocaAddr, ///< dst (Ptr) = address of alloca slot `imm`
    GlobalAddr, ///< dst (Ptr) = address of global `globalId`
    TlsAddr,    ///< dst (Ptr) = current thread's address of TLS var
    FuncAddr,   ///< dst (Ptr) = code address of function `funcId`
    Load,       ///< dst = *(type*)(a + imm)
    Store,      ///< *(type*)(a + imm) = b
    LoadIdx,    ///< dst = *(type*)(a + b * imm)   (imm = scale)
    StoreIdx,   ///< *(type*)(a + b * imm) = c     (c in `args[0]`)
    AtomicAdd,  ///< dst = fetch_add((i64*)a, b), sequentially consistent
    // Control flow (terminators, except Call/CallInd).
    Br,         ///< goto block `target`
    CondBr,     ///< if (a != 0) goto `target` else goto `target2`
    Ret,        ///< return a (or nothing for Void functions)
    // Calls (non-terminators).
    Call,       ///< dst = funcId(args...)
    CallInd,    ///< dst = (*a)(args...) -- a holds a code address
    // The paper's migration point (Section 5.2.1): lowered by the
    // backend to a flag check plus a guarded call-out to the migration
    // runtime; a stackmap is attached to the call-out.
    MigPoint,
};

/** Textual mnemonic of a BIR op. */
const char *irOpName(IROp op);
/** True for Br/CondBr/Ret. */
bool irIsTerminator(IROp op);

/** One BIR instruction. */
struct IRInstr {
    IROp op = IROp::ConstInt;
    Type type = Type::Void;  ///< result type / memory access type
    Cond cond = Cond::EQ;    ///< for ICmp / FCmp
    ValueId dst = kNoValue;
    ValueId a = kNoValue;
    ValueId b = kNoValue;
    int64_t imm = 0;
    double fimm = 0.0;
    uint32_t target = 0;     ///< block id (Br/CondBr)
    uint32_t target2 = 0;    ///< block id (CondBr else)
    uint32_t funcId = 0;     ///< callee (Call) / function (FuncAddr)
    uint32_t globalId = 0;   ///< global (GlobalAddr) / TLS var (TlsAddr)
    std::vector<ValueId> args; ///< call arguments / StoreIdx value
    uint32_t callSiteId = 0; ///< unique id assigned before codegen
};

/** A basic block: straight-line instructions ending in a terminator. */
struct BasicBlock {
    std::vector<IRInstr> instrs;
    /** Optimization hint: nesting depth of enclosing loops. */
    int loopDepth = 0;
};

/**
 * Builtins are runtime-provided functions executed natively by the
 * simulated OS (the role of musl-libc in the prototype). Per the paper's
 * limitations (Section 5.4), threads cannot migrate while inside one.
 */
enum class Builtin : uint8_t {
    None = 0,
    Malloc,      ///< ptr malloc(i64 size)
    Free,        ///< void free(ptr)
    PrintI64,    ///< void print_i64(i64)
    PrintF64,    ///< void print_f64(f64)
    ThreadSpawn, ///< i64 tid = thread_spawn(ptr fn, i64 arg)
    ThreadJoin,  ///< void thread_join(i64 tid)
    BarrierWait, ///< void barrier_wait(i64 barrierId, i64 nThreads)
    Memcpy,      ///< void memcpy(ptr dst, ptr src, i64 n)
    Memset,      ///< void memset(ptr dst, i64 byte, i64 n)
    Exit,        ///< void exit(i64 code)
    ThreadId,    ///< i64 thread_id()
    NodeId,      ///< i64 node_id() -- which machine am I running on?
};

/** A BIR function. */
struct IRFunction {
    std::string name;
    uint32_t id = 0;
    Type retType = Type::Void;
    std::vector<Type> paramTypes; ///< params are vregs [0, nparams)
    std::vector<Type> vregTypes;  ///< all vregs including params
    /** Stack slot declared at entry. */
    struct AllocaSlot {
        uint32_t size = 0;
        uint32_t align = 8;
        std::string name;
    };
    std::vector<AllocaSlot> allocas;
    std::vector<BasicBlock> blocks; ///< block 0 is the entry
    Builtin builtin = Builtin::None;

    bool isBuiltin() const { return builtin != Builtin::None; }
    size_t numParams() const { return paramTypes.size(); }
};

/** A global (or thread-local) variable. */
struct GlobalVar {
    std::string name;
    uint32_t id = 0;
    uint64_t size = 0;
    uint32_t align = 8;
    bool isConst = false; ///< placed in .rodata
    bool isTls = false;   ///< placed in the common-format TLS image
    /** Initial bytes; zero-filled (.bss-style) if shorter than size. */
    std::vector<uint8_t> init;
};

/** A whole program. */
struct Module {
    std::string name;
    std::vector<IRFunction> functions;
    std::vector<GlobalVar> globals;
    uint32_t entryFuncId = 0;

    const IRFunction &func(uint32_t id) const;
    IRFunction &func(uint32_t id);
    const GlobalVar &global(uint32_t id) const;

    /** Find a function id by name; fatal() if absent. */
    uint32_t findFunc(const std::string &name) const;

    /**
     * Validate structural invariants: operand/vreg ranges, types,
     * terminator placement, branch targets, call signatures.
     * Throws FatalError with a diagnostic on the first violation.
     */
    void verify() const;

    /** Number of non-builtin functions. */
    size_t numUserFuncs() const;
};

} // namespace xisa

#endif // XISA_IR_IR_HH
