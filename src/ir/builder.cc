#include "ir/builder.hh"

#include <cstring>

#include "util/logging.hh"

namespace xisa {

// ---------------------------------------------------------------------
// FuncBuilder
// ---------------------------------------------------------------------

FuncBuilder::FuncBuilder(ModuleBuilder &parent, IRFunction &fn)
    : parent_(parent), fn_(&fn)
{
    fn_->blocks.emplace_back(); // entry block
    cur_ = 0;
}

ValueId
FuncBuilder::param(size_t idx) const
{
    if (idx >= fn_->paramTypes.size())
        panic("param index %zu out of range in %s", idx,
              fn_->name.c_str());
    return static_cast<ValueId>(idx);
}

ValueId
FuncBuilder::newReg(Type type)
{
    if (type == Type::Void)
        panic("newReg: void vreg");
    fn_->vregTypes.push_back(type);
    return static_cast<ValueId>(fn_->vregTypes.size() - 1);
}

uint32_t
FuncBuilder::declareAlloca(uint32_t size, uint32_t align,
                           const std::string &name)
{
    fn_->allocas.push_back({size, align, name});
    return static_cast<uint32_t>(fn_->allocas.size() - 1);
}

uint32_t
FuncBuilder::newBlock()
{
    fn_->blocks.emplace_back();
    fn_->blocks.back().loopDepth = loopDepth_;
    return static_cast<uint32_t>(fn_->blocks.size() - 1);
}

void
FuncBuilder::setBlock(uint32_t block)
{
    if (block >= fn_->blocks.size())
        panic("setBlock: block %u out of range", block);
    cur_ = block;
}

IRInstr &
FuncBuilder::emit(IRInstr instr)
{
    BasicBlock &bb = fn_->blocks[cur_];
    if (!bb.instrs.empty() && irIsTerminator(bb.instrs.back().op))
        panic("emit after terminator in %s block %u", fn_->name.c_str(),
              cur_);
    bb.instrs.push_back(std::move(instr));
    return bb.instrs.back();
}

Type
FuncBuilder::typeOf(ValueId v) const
{
    if (v == kNoValue || v >= fn_->vregTypes.size())
        panic("typeOf: bad vreg %u in %s", v, fn_->name.c_str());
    return fn_->vregTypes[v];
}

ValueId
FuncBuilder::constInt(int64_t value, Type type)
{
    ValueId dst = newReg(type);
    IRInstr in;
    in.op = IROp::ConstInt;
    in.type = type;
    in.dst = dst;
    in.imm = value;
    emit(in);
    return dst;
}

ValueId
FuncBuilder::constFloat(double value)
{
    ValueId dst = newReg(Type::F64);
    IRInstr in;
    in.op = IROp::ConstFloat;
    in.type = Type::F64;
    in.dst = dst;
    in.fimm = value;
    emit(in);
    return dst;
}

ValueId
FuncBuilder::emitBin(IROp op, ValueId a, ValueId b)
{
    ValueId dst = newReg(typeOf(a));
    IRInstr in;
    in.op = op;
    in.type = typeOf(a);
    in.dst = dst;
    in.a = a;
    in.b = b;
    emit(in);
    return dst;
}

ValueId
FuncBuilder::emitBinF(IROp op, ValueId a, ValueId b)
{
    ValueId dst = newReg(Type::F64);
    IRInstr in;
    in.op = op;
    in.type = Type::F64;
    in.dst = dst;
    in.a = a;
    in.b = b;
    emit(in);
    return dst;
}

ValueId FuncBuilder::add(ValueId a, ValueId b)
{ return emitBin(IROp::Add, a, b); }
ValueId FuncBuilder::sub(ValueId a, ValueId b)
{ return emitBin(IROp::Sub, a, b); }
ValueId FuncBuilder::mul(ValueId a, ValueId b)
{ return emitBin(IROp::Mul, a, b); }
ValueId FuncBuilder::sdiv(ValueId a, ValueId b)
{ return emitBin(IROp::SDiv, a, b); }
ValueId FuncBuilder::udiv(ValueId a, ValueId b)
{ return emitBin(IROp::UDiv, a, b); }
ValueId FuncBuilder::srem(ValueId a, ValueId b)
{ return emitBin(IROp::SRem, a, b); }
ValueId FuncBuilder::urem(ValueId a, ValueId b)
{ return emitBin(IROp::URem, a, b); }
ValueId FuncBuilder::band(ValueId a, ValueId b)
{ return emitBin(IROp::And, a, b); }
ValueId FuncBuilder::bor(ValueId a, ValueId b)
{ return emitBin(IROp::Or, a, b); }
ValueId FuncBuilder::bxor(ValueId a, ValueId b)
{ return emitBin(IROp::Xor, a, b); }
ValueId FuncBuilder::shl(ValueId a, ValueId b)
{ return emitBin(IROp::Shl, a, b); }
ValueId FuncBuilder::lshr(ValueId a, ValueId b)
{ return emitBin(IROp::LShr, a, b); }
ValueId FuncBuilder::ashr(ValueId a, ValueId b)
{ return emitBin(IROp::AShr, a, b); }

ValueId
FuncBuilder::neg(ValueId a)
{
    ValueId dst = newReg(typeOf(a));
    IRInstr in;
    in.op = IROp::Neg;
    in.type = typeOf(a);
    in.dst = dst;
    in.a = a;
    emit(in);
    return dst;
}

ValueId
FuncBuilder::addImm(ValueId a, int64_t imm)
{
    return add(a, constInt(imm, typeOf(a)));
}

ValueId
FuncBuilder::mulImm(ValueId a, int64_t imm)
{
    return mul(a, constInt(imm, typeOf(a)));
}

ValueId FuncBuilder::fadd(ValueId a, ValueId b)
{ return emitBinF(IROp::FAdd, a, b); }
ValueId FuncBuilder::fsub(ValueId a, ValueId b)
{ return emitBinF(IROp::FSub, a, b); }
ValueId FuncBuilder::fmul(ValueId a, ValueId b)
{ return emitBinF(IROp::FMul, a, b); }
ValueId FuncBuilder::fdiv(ValueId a, ValueId b)
{ return emitBinF(IROp::FDiv, a, b); }

ValueId
FuncBuilder::fneg(ValueId a)
{
    ValueId dst = newReg(Type::F64);
    IRInstr in;
    in.op = IROp::FNeg;
    in.type = Type::F64;
    in.dst = dst;
    in.a = a;
    emit(in);
    return dst;
}

ValueId
FuncBuilder::sitofp(ValueId a)
{
    ValueId dst = newReg(Type::F64);
    IRInstr in;
    in.op = IROp::SIToFP;
    in.type = Type::F64;
    in.dst = dst;
    in.a = a;
    emit(in);
    return dst;
}

ValueId
FuncBuilder::fptosi(ValueId a)
{
    ValueId dst = newReg(Type::I64);
    IRInstr in;
    in.op = IROp::FPToSI;
    in.type = Type::I64;
    in.dst = dst;
    in.a = a;
    emit(in);
    return dst;
}

ValueId
FuncBuilder::icmp(Cond cond, ValueId a, ValueId b)
{
    ValueId dst = newReg(Type::I64);
    IRInstr in;
    in.op = IROp::ICmp;
    in.type = Type::I64;
    in.cond = cond;
    in.dst = dst;
    in.a = a;
    in.b = b;
    emit(in);
    return dst;
}

ValueId
FuncBuilder::fcmp(Cond cond, ValueId a, ValueId b)
{
    ValueId dst = newReg(Type::I64);
    IRInstr in;
    in.op = IROp::FCmp;
    in.type = Type::I64;
    in.cond = cond;
    in.dst = dst;
    in.a = a;
    in.b = b;
    emit(in);
    return dst;
}

void
FuncBuilder::copy(ValueId dst, ValueId src)
{
    IRInstr in;
    in.op = IROp::Copy;
    in.type = typeOf(dst);
    in.dst = dst;
    in.a = src;
    emit(in);
}

ValueId
FuncBuilder::allocaAddr(uint32_t slot)
{
    ValueId dst = newReg(Type::Ptr);
    IRInstr in;
    in.op = IROp::AllocaAddr;
    in.type = Type::Ptr;
    in.dst = dst;
    in.imm = slot;
    emit(in);
    return dst;
}

ValueId
FuncBuilder::globalAddr(uint32_t globalId)
{
    ValueId dst = newReg(Type::Ptr);
    IRInstr in;
    in.op = IROp::GlobalAddr;
    in.type = Type::Ptr;
    in.dst = dst;
    in.globalId = globalId;
    emit(in);
    return dst;
}

ValueId
FuncBuilder::tlsAddr(uint32_t globalId)
{
    ValueId dst = newReg(Type::Ptr);
    IRInstr in;
    in.op = IROp::TlsAddr;
    in.type = Type::Ptr;
    in.dst = dst;
    in.globalId = globalId;
    emit(in);
    return dst;
}

ValueId
FuncBuilder::funcAddr(uint32_t funcId)
{
    ValueId dst = newReg(Type::Ptr);
    IRInstr in;
    in.op = IROp::FuncAddr;
    in.type = Type::Ptr;
    in.dst = dst;
    in.funcId = funcId;
    emit(in);
    return dst;
}

ValueId
FuncBuilder::load(Type type, ValueId addr, int64_t off)
{
    Type regType = type == Type::F64 ? Type::F64
                 : type == Type::Ptr ? Type::Ptr
                                     : Type::I64;
    ValueId dst = newReg(regType);
    IRInstr in;
    in.op = IROp::Load;
    in.type = type;
    in.dst = dst;
    in.a = addr;
    in.imm = off;
    emit(in);
    return dst;
}

void
FuncBuilder::store(Type type, ValueId addr, ValueId value, int64_t off)
{
    IRInstr in;
    in.op = IROp::Store;
    in.type = type;
    in.a = addr;
    in.b = value;
    in.imm = off;
    emit(in);
}

ValueId
FuncBuilder::loadIdx(Type type, ValueId base, ValueId index, int64_t scale)
{
    Type regType = type == Type::F64 ? Type::F64
                 : type == Type::Ptr ? Type::Ptr
                                     : Type::I64;
    ValueId dst = newReg(regType);
    IRInstr in;
    in.op = IROp::LoadIdx;
    in.type = type;
    in.dst = dst;
    in.a = base;
    in.b = index;
    in.imm = scale;
    emit(in);
    return dst;
}

void
FuncBuilder::storeIdx(Type type, ValueId base, ValueId index,
                      ValueId value, int64_t scale)
{
    IRInstr in;
    in.op = IROp::StoreIdx;
    in.type = type;
    in.a = base;
    in.b = index;
    in.imm = scale;
    in.args.push_back(value);
    emit(in);
}

ValueId
FuncBuilder::atomicAdd(ValueId addr, ValueId value)
{
    ValueId dst = newReg(Type::I64);
    IRInstr in;
    in.op = IROp::AtomicAdd;
    in.type = Type::I64;
    in.dst = dst;
    in.a = addr;
    in.b = value;
    emit(in);
    return dst;
}

void
FuncBuilder::br(uint32_t block)
{
    IRInstr in;
    in.op = IROp::Br;
    in.target = block;
    emit(in);
}

void
FuncBuilder::condBr(ValueId cond, uint32_t thenBlock, uint32_t elseBlock)
{
    IRInstr in;
    in.op = IROp::CondBr;
    in.a = cond;
    in.target = thenBlock;
    in.target2 = elseBlock;
    emit(in);
}

void
FuncBuilder::ret(ValueId value)
{
    IRInstr in;
    in.op = IROp::Ret;
    in.a = value;
    emit(in);
}

ValueId
FuncBuilder::call(uint32_t funcId, const std::vector<ValueId> &args)
{
    const IRFunction &callee = parent_.calleeRef(funcId);
    ValueId dst = kNoValue;
    if (callee.retType != Type::Void)
        dst = newReg(callee.retType);
    IRInstr in;
    in.op = IROp::Call;
    in.type = callee.retType;
    in.dst = dst;
    in.funcId = funcId;
    in.args = args;
    emit(in);
    return dst;
}

void
FuncBuilder::callVoid(uint32_t funcId, const std::vector<ValueId> &args)
{
    IRInstr in;
    in.op = IROp::Call;
    in.type = Type::Void;
    in.dst = kNoValue;
    in.funcId = funcId;
    in.args = args;
    emit(in);
}

ValueId
FuncBuilder::callInd(Type retType, ValueId targetAddr,
                     const std::vector<ValueId> &args)
{
    ValueId dst = retType == Type::Void ? kNoValue : newReg(retType);
    IRInstr in;
    in.op = IROp::CallInd;
    in.type = retType;
    in.dst = dst;
    in.a = targetAddr;
    in.args = args;
    emit(in);
    return dst;
}

void
FuncBuilder::migPoint()
{
    IRInstr in;
    in.op = IROp::MigPoint;
    emit(in);
}

void
FuncBuilder::forLoop(ValueId lo, ValueId hi,
                     const std::function<void(ValueId)> &body,
                     int64_t step)
{
    ValueId iv = newReg(Type::I64);
    copy(iv, lo);
    ++loopDepth_;
    uint32_t head = newBlock();
    uint32_t bodyBlock = newBlock();
    br(head);
    setBlock(head);
    ValueId cont = icmp(step > 0 ? Cond::LT : Cond::GT, iv, hi);
    --loopDepth_;
    uint32_t exit = newBlock();
    ++loopDepth_;
    condBr(cont, bodyBlock, exit);
    setBlock(bodyBlock);
    body(iv);
    // iv += step; loop back.
    ValueId stepped = addImm(iv, step);
    copy(iv, stepped);
    br(head);
    --loopDepth_;
    setBlock(exit);
}

void
FuncBuilder::forLoopI(int64_t lo, int64_t hi,
                      const std::function<void(ValueId)> &body,
                      int64_t step)
{
    forLoop(constInt(lo), constInt(hi), body, step);
}

void
FuncBuilder::whileLoop(const std::function<ValueId()> &cond,
                       const std::function<void()> &body)
{
    ++loopDepth_;
    uint32_t head = newBlock();
    uint32_t bodyBlock = newBlock();
    br(head);
    setBlock(head);
    ValueId c = cond();
    --loopDepth_;
    uint32_t exit = newBlock();
    ++loopDepth_;
    condBr(c, bodyBlock, exit);
    setBlock(bodyBlock);
    body();
    br(head);
    --loopDepth_;
    setBlock(exit);
}

void
FuncBuilder::ifThen(ValueId cond, const std::function<void()> &then)
{
    uint32_t thenBlock = newBlock();
    uint32_t join = newBlock();
    condBr(cond, thenBlock, join);
    setBlock(thenBlock);
    then();
    br(join);
    setBlock(join);
}

void
FuncBuilder::ifThenElse(ValueId cond, const std::function<void()> &then,
                        const std::function<void()> &other)
{
    uint32_t thenBlock = newBlock();
    uint32_t elseBlock = newBlock();
    uint32_t join = newBlock();
    condBr(cond, thenBlock, elseBlock);
    setBlock(thenBlock);
    then();
    br(join);
    setBlock(elseBlock);
    other();
    br(join);
    setBlock(join);
}

// ---------------------------------------------------------------------
// ModuleBuilder
// ---------------------------------------------------------------------

ModuleBuilder::ModuleBuilder(std::string name)
{
    mod_.name = std::move(name);
    declareBuiltins();
}

void
ModuleBuilder::declareBuiltins()
{
    auto declare = [&](Builtin which, const char *name, Type ret,
                       std::vector<Type> params) {
        IRFunction f;
        f.name = name;
        f.id = static_cast<uint32_t>(funcs_.size());
        f.retType = ret;
        f.paramTypes = std::move(params);
        f.vregTypes = f.paramTypes;
        f.builtin = which;
        builtinIds_[static_cast<int>(which)] = f.id;
        funcs_.push_back(std::make_unique<IRFunction>(std::move(f)));
    };
    declare(Builtin::Malloc, "malloc", Type::Ptr, {Type::I64});
    declare(Builtin::Free, "free", Type::Void, {Type::Ptr});
    declare(Builtin::PrintI64, "print_i64", Type::Void, {Type::I64});
    declare(Builtin::PrintF64, "print_f64", Type::Void, {Type::F64});
    declare(Builtin::ThreadSpawn, "thread_spawn", Type::I64,
            {Type::Ptr, Type::I64});
    declare(Builtin::ThreadJoin, "thread_join", Type::Void, {Type::I64});
    declare(Builtin::BarrierWait, "barrier_wait", Type::Void,
            {Type::I64, Type::I64});
    declare(Builtin::Memcpy, "memcpy", Type::Void,
            {Type::Ptr, Type::Ptr, Type::I64});
    declare(Builtin::Memset, "memset", Type::Void,
            {Type::Ptr, Type::I64, Type::I64});
    declare(Builtin::Exit, "exit", Type::Void, {Type::I64});
    declare(Builtin::ThreadId, "thread_id", Type::I64, {});
    declare(Builtin::NodeId, "node_id", Type::I64, {});
}

FuncBuilder &
ModuleBuilder::defineFunc(const std::string &name, Type retType,
                          const std::vector<Type> &params)
{
    for (const auto &f : funcs_)
        if (f->name == name)
            fatal("defineFunc: duplicate function '%s'", name.c_str());
    auto fn = std::make_unique<IRFunction>();
    fn->name = name;
    fn->id = static_cast<uint32_t>(funcs_.size());
    fn->retType = retType;
    fn->paramTypes = params;
    fn->vregTypes = params;
    funcs_.push_back(std::move(fn));
    funcBuilders_.push_back(std::unique_ptr<FuncBuilder>(
        new FuncBuilder(*this, *funcs_.back())));
    return *funcBuilders_.back();
}

uint32_t
ModuleBuilder::addGlobal(const std::string &name, uint64_t size,
                         uint32_t align, bool isConst, bool isTls)
{
    GlobalVar g;
    g.name = name;
    g.id = static_cast<uint32_t>(mod_.globals.size());
    g.size = size;
    g.align = align;
    g.isConst = isConst;
    g.isTls = isTls;
    mod_.globals.push_back(std::move(g));
    return mod_.globals.back().id;
}

uint32_t
ModuleBuilder::addGlobalData(const std::string &name,
                             std::vector<uint8_t> init, uint32_t align,
                             bool isConst)
{
    uint32_t id = addGlobal(name, init.size(), align, isConst, false);
    mod_.globals[id].init = std::move(init);
    return id;
}

uint32_t
ModuleBuilder::addGlobalI64s(const std::string &name,
                             const std::vector<int64_t> &values,
                             bool isConst)
{
    std::vector<uint8_t> bytes(values.size() * 8);
    std::memcpy(bytes.data(), values.data(), bytes.size());
    return addGlobalData(name, std::move(bytes), 8, isConst);
}

uint32_t
ModuleBuilder::addGlobalF64s(const std::string &name,
                             const std::vector<double> &values,
                             bool isConst)
{
    std::vector<uint8_t> bytes(values.size() * 8);
    std::memcpy(bytes.data(), values.data(), bytes.size());
    return addGlobalData(name, std::move(bytes), 8, isConst);
}

uint32_t
ModuleBuilder::builtin(Builtin which) const
{
    return builtinIds_[static_cast<int>(which)];
}

uint32_t
ModuleBuilder::findFunc(const std::string &name) const
{
    for (const auto &f : funcs_)
        if (f->name == name)
            return f->id;
    fatal("ModuleBuilder: no function named '%s'", name.c_str());
}

const IRFunction &
ModuleBuilder::calleeRef(uint32_t funcId) const
{
    if (funcId >= funcs_.size())
        fatal("call target %u not yet declared", funcId);
    return *funcs_[funcId];
}

Module
ModuleBuilder::finish(const std::string &entryName)
{
    mod_.functions.clear();
    mod_.functions.reserve(funcs_.size());
    for (auto &f : funcs_)
        mod_.functions.push_back(std::move(*f));
    funcs_.clear();
    funcBuilders_.clear();
    mod_.entryFuncId = mod_.findFunc(entryName);
    mod_.verify();
    return std::move(mod_);
}

} // namespace xisa
