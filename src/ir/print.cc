#include "ir/print.hh"

#include "util/logging.hh"

namespace xisa {

namespace {

std::string
reg(const IRFunction &f, ValueId v)
{
    if (v == kNoValue)
        return "_";
    if (v < f.vregTypes.size())
        return strfmt("%%%u:%s", v, typeName(f.vregTypes[v]));
    return strfmt("%%%u:?", v);
}

} // namespace

std::string
printInstr(const IRFunction &f, const IRInstr &in)
{
    std::string out;
    if (instrHasResult(in) && in.dst != kNoValue)
        out += strfmt("%s = ", reg(f, in.dst).c_str());
    out += irOpName(in.op);
    switch (in.op) {
      case IROp::ConstInt:
        out += strfmt(" %lld", static_cast<long long>(in.imm));
        break;
      case IROp::ConstFloat:
        out += strfmt(" %g", in.fimm);
        break;
      case IROp::ICmp: case IROp::FCmp:
        out += strfmt(".%s %s, %s", condName(in.cond),
                      reg(f, in.a).c_str(), reg(f, in.b).c_str());
        break;
      case IROp::AllocaAddr:
        out += strfmt(" slot%lld", static_cast<long long>(in.imm));
        break;
      case IROp::GlobalAddr: case IROp::TlsAddr:
        out += strfmt(" @g%u", in.globalId);
        break;
      case IROp::FuncAddr:
        out += strfmt(" @f%u", in.funcId);
        break;
      case IROp::Load:
        out += strfmt(".%s [%s + %lld]", typeName(in.type),
                      reg(f, in.a).c_str(),
                      static_cast<long long>(in.imm));
        break;
      case IROp::Store:
        out += strfmt(".%s [%s + %lld], %s", typeName(in.type),
                      reg(f, in.a).c_str(),
                      static_cast<long long>(in.imm),
                      reg(f, in.b).c_str());
        break;
      case IROp::LoadIdx:
        out += strfmt(".%s [%s + %s*%lld]", typeName(in.type),
                      reg(f, in.a).c_str(), reg(f, in.b).c_str(),
                      static_cast<long long>(in.imm));
        break;
      case IROp::StoreIdx:
        out += strfmt(".%s [%s + %s*%lld], %s", typeName(in.type),
                      reg(f, in.a).c_str(), reg(f, in.b).c_str(),
                      static_cast<long long>(in.imm),
                      reg(f, in.args[0]).c_str());
        break;
      case IROp::Br:
        out += strfmt(" bb%u", in.target);
        break;
      case IROp::CondBr:
        out += strfmt(" %s, bb%u, bb%u", reg(f, in.a).c_str(),
                      in.target, in.target2);
        break;
      case IROp::Ret:
        if (in.a != kNoValue)
            out += strfmt(" %s", reg(f, in.a).c_str());
        break;
      case IROp::Call: {
        out += strfmt(" @f%u(", in.funcId);
        for (size_t i = 0; i < in.args.size(); ++i)
            out += strfmt("%s%s", i ? ", " : "",
                          reg(f, in.args[i]).c_str());
        out += ")";
        break;
      }
      case IROp::CallInd: {
        out += strfmt(" *%s(", reg(f, in.a).c_str());
        for (size_t i = 0; i < in.args.size(); ++i)
            out += strfmt("%s%s", i ? ", " : "",
                          reg(f, in.args[i]).c_str());
        out += ")";
        break;
      }
      case IROp::MigPoint:
        break;
      default:
        // Binary/unary value forms.
        if (in.a != kNoValue)
            out += strfmt(" %s", reg(f, in.a).c_str());
        if (in.b != kNoValue)
            out += strfmt(", %s", reg(f, in.b).c_str());
        break;
    }
    if (in.callSiteId)
        out += strfmt("  ; site %u", in.callSiteId);
    return out;
}

bool
instrHasResult(const IRInstr &in)
{
    switch (in.op) {
      case IROp::Store: case IROp::StoreIdx: case IROp::Br:
      case IROp::CondBr: case IROp::Ret: case IROp::MigPoint:
        return false;
      case IROp::Call: case IROp::CallInd:
        return in.dst != kNoValue;
      default:
        return true;
    }
}

std::string
printFunction(const Module &mod, const IRFunction &f)
{
    std::string out = strfmt("func @f%u %s(", f.id, f.name.c_str());
    for (size_t i = 0; i < f.paramTypes.size(); ++i)
        out += strfmt("%s%%%zu:%s", i ? ", " : "", i,
                      typeName(f.paramTypes[i]));
    out += strfmt(") -> %s", typeName(f.retType));
    if (f.isBuiltin()) {
        out += "  ; builtin\n";
        return out;
    }
    out += strfmt("  ; %zu vregs\n", f.vregTypes.size());
    for (size_t s = 0; s < f.allocas.size(); ++s)
        out += strfmt("  alloca slot%zu: %u bytes align %u (%s)\n", s,
                      f.allocas[s].size, f.allocas[s].align,
                      f.allocas[s].name.c_str());
    for (size_t b = 0; b < f.blocks.size(); ++b) {
        out += strfmt("bb%zu:", b);
        if (f.blocks[b].loopDepth)
            out += strfmt("  ; loop depth %d", f.blocks[b].loopDepth);
        out += "\n";
        for (const IRInstr &in : f.blocks[b].instrs)
            out += strfmt("    %s\n", printInstr(f, in).c_str());
    }
    (void)mod;
    return out;
}

std::string
printModule(const Module &mod)
{
    std::string out = strfmt("module %s (entry @f%u)\n",
                             mod.name.c_str(), mod.entryFuncId);
    for (const GlobalVar &g : mod.globals)
        out += strfmt("global @g%u %s: %llu bytes align %u%s%s\n", g.id,
                      g.name.c_str(),
                      static_cast<unsigned long long>(g.size), g.align,
                      g.isConst ? " const" : "",
                      g.isTls ? " tls" : "");
    for (const IRFunction &f : mod.functions)
        out += printFunction(mod, f);
    return out;
}

} // namespace xisa
