/**
 * @file
 * Human-readable rendering of BIR modules (the `llvm-dis` role):
 * one line per instruction, vregs as %N with types, blocks labelled and
 * annotated with loop depth. Used by diagnostics, the objdump-style
 * tool, and tests that assert on structural properties.
 */

#ifndef XISA_IR_PRINT_HH
#define XISA_IR_PRINT_HH

#include <string>

#include "ir/ir.hh"

namespace xisa {

/** True if the instruction produces a result value. */
bool instrHasResult(const IRInstr &in);

/** Render one instruction, e.g. "%5:i64 = add %3, %4". */
std::string printInstr(const IRFunction &f, const IRInstr &in);

/** Render a whole function with block labels. */
std::string printFunction(const Module &mod, const IRFunction &f);

/** Render the whole module (globals + functions). */
std::string printModule(const Module &mod);

} // namespace xisa

#endif // XISA_IR_PRINT_HH
