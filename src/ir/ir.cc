#include "ir/ir.hh"

#include "util/logging.hh"

namespace xisa {

int
typeSize(Type type)
{
    switch (type) {
      case Type::Void: return 0;
      case Type::I8: return 1;
      case Type::I32: return 4;
      case Type::I64: return 8;
      case Type::F64: return 8;
      case Type::Ptr: return 8;
    }
    return 0;
}

int
typeAlign(Type type)
{
    return type == Type::Void ? 1 : typeSize(type);
}

const char *
typeName(Type type)
{
    switch (type) {
      case Type::Void: return "void";
      case Type::I8: return "i8";
      case Type::I32: return "i32";
      case Type::I64: return "i64";
      case Type::F64: return "f64";
      case Type::Ptr: return "ptr";
    }
    return "?";
}

bool
isIntLike(Type type)
{
    return type == Type::I8 || type == Type::I32 || type == Type::I64 ||
           type == Type::Ptr;
}

const char *
irOpName(IROp op)
{
    switch (op) {
      case IROp::ConstInt: return "const";
      case IROp::ConstFloat: return "fconst";
      case IROp::Add: return "add";
      case IROp::Sub: return "sub";
      case IROp::Mul: return "mul";
      case IROp::SDiv: return "sdiv";
      case IROp::UDiv: return "udiv";
      case IROp::SRem: return "srem";
      case IROp::URem: return "urem";
      case IROp::And: return "and";
      case IROp::Or: return "or";
      case IROp::Xor: return "xor";
      case IROp::Shl: return "shl";
      case IROp::LShr: return "lshr";
      case IROp::AShr: return "ashr";
      case IROp::Neg: return "neg";
      case IROp::FAdd: return "fadd";
      case IROp::FSub: return "fsub";
      case IROp::FMul: return "fmul";
      case IROp::FDiv: return "fdiv";
      case IROp::FNeg: return "fneg";
      case IROp::ICmp: return "icmp";
      case IROp::FCmp: return "fcmp";
      case IROp::SIToFP: return "sitofp";
      case IROp::FPToSI: return "fptosi";
      case IROp::Copy: return "copy";
      case IROp::AllocaAddr: return "alloca_addr";
      case IROp::GlobalAddr: return "global_addr";
      case IROp::TlsAddr: return "tls_addr";
      case IROp::FuncAddr: return "func_addr";
      case IROp::Load: return "load";
      case IROp::Store: return "store";
      case IROp::LoadIdx: return "load_idx";
      case IROp::StoreIdx: return "store_idx";
      case IROp::AtomicAdd: return "atomic_add";
      case IROp::Br: return "br";
      case IROp::CondBr: return "cond_br";
      case IROp::Ret: return "ret";
      case IROp::Call: return "call";
      case IROp::CallInd: return "call_ind";
      case IROp::MigPoint: return "migpoint";
    }
    return "?";
}

bool
irIsTerminator(IROp op)
{
    return op == IROp::Br || op == IROp::CondBr || op == IROp::Ret;
}

const IRFunction &
Module::func(uint32_t id) const
{
    if (id >= functions.size())
        panic("Module::func: bad function id %u", id);
    return functions[id];
}

IRFunction &
Module::func(uint32_t id)
{
    if (id >= functions.size())
        panic("Module::func: bad function id %u", id);
    return functions[id];
}

const GlobalVar &
Module::global(uint32_t id) const
{
    if (id >= globals.size())
        panic("Module::global: bad global id %u", id);
    return globals[id];
}

uint32_t
Module::findFunc(const std::string &name) const
{
    for (const IRFunction &f : functions)
        if (f.name == name)
            return f.id;
    fatal("Module '%s' has no function named '%s'", this->name.c_str(),
          name.c_str());
}

size_t
Module::numUserFuncs() const
{
    size_t n = 0;
    for (const IRFunction &f : functions)
        if (!f.isBuiltin())
            ++n;
    return n;
}

namespace {

class Verifier
{
  public:
    explicit Verifier(const Module &mod) : mod_(mod) {}

    void
    run()
    {
        for (size_t i = 0; i < mod_.functions.size(); ++i) {
            if (mod_.functions[i].id != i)
                fail("function %zu has mismatched id %u", i,
                     mod_.functions[i].id);
        }
        for (size_t i = 0; i < mod_.globals.size(); ++i) {
            const GlobalVar &g = mod_.globals[i];
            if (g.id != i)
                fail("global %zu has mismatched id %u", i, g.id);
            if (g.size == 0)
                fail("global '%s' has zero size", g.name.c_str());
            if (g.init.size() > g.size)
                fail("global '%s' init larger than size", g.name.c_str());
        }
        if (mod_.entryFuncId >= mod_.functions.size())
            fail("entry function id %u out of range", mod_.entryFuncId);
        for (const IRFunction &f : mod_.functions)
            checkFunction(f);
    }

  private:
    template <typename... Args>
    [[noreturn]] void
    fail(const char *fmt, Args... args)
    {
        std::string msg = strfmt(fmt, args...);
        fatal("verify(%s%s): %s", mod_.name.c_str(), where_.c_str(),
              msg.c_str());
    }

    void
    checkValue(const IRFunction &f, ValueId v, const char *what)
    {
        if (v == kNoValue || v >= f.vregTypes.size())
            fail("%s operand missing or out of range (v%u)", what, v);
    }

    void
    checkValueType(const IRFunction &f, ValueId v, Type type,
                   const char *what)
    {
        checkValue(f, v, what);
        if (f.vregTypes[v] != type)
            fail("%s operand v%u has type %s, expected %s", what, v,
                 typeName(f.vregTypes[v]), typeName(type));
    }

    void
    checkIntLike(const IRFunction &f, ValueId v, const char *what)
    {
        checkValue(f, v, what);
        if (!isIntLike(f.vregTypes[v]))
            fail("%s operand v%u must be integer-like, has %s", what, v,
                 typeName(f.vregTypes[v]));
    }

    void
    checkCallSignature(const IRFunction &f, const IRInstr &in,
                       const IRFunction &callee)
    {
        if (in.args.size() != callee.numParams())
            fail("call to '%s' passes %zu args, expects %zu",
                 callee.name.c_str(), in.args.size(), callee.numParams());
        for (size_t i = 0; i < in.args.size(); ++i) {
            Type want = callee.paramTypes[i];
            checkValue(f, in.args[i], "call arg");
            Type got = f.vregTypes[in.args[i]];
            // Ptr and I64 interconvert freely (addresses are integers).
            bool ok = got == want ||
                      (isIntLike(got) && isIntLike(want) &&
                       typeSize(got) == typeSize(want));
            if (!ok)
                fail("call to '%s' arg %zu has type %s, expects %s",
                     callee.name.c_str(), i, typeName(got),
                     typeName(want));
        }
        if (callee.retType != Type::Void) {
            if (in.dst == kNoValue)
                return; // discarding a result is allowed
            checkValue(f, in.dst, "call result");
        } else if (in.dst != kNoValue) {
            fail("call to void '%s' must not have a result",
                 callee.name.c_str());
        }
    }

    void
    checkInstr(const IRFunction &f, const IRInstr &in, bool isLast)
    {
        if (irIsTerminator(in.op) != isLast)
            fail("%s: terminator placement violation (op %s)",
                 f.name.c_str(), irOpName(in.op));

        switch (in.op) {
          case IROp::ConstInt:
            checkIntLike(f, in.dst, "const dst");
            break;
          case IROp::ConstFloat:
            checkValueType(f, in.dst, Type::F64, "fconst dst");
            break;
          case IROp::Add: case IROp::Sub: case IROp::Mul:
          case IROp::SDiv: case IROp::UDiv: case IROp::SRem:
          case IROp::URem: case IROp::And: case IROp::Or:
          case IROp::Xor: case IROp::Shl: case IROp::LShr:
          case IROp::AShr:
            checkIntLike(f, in.dst, "alu dst");
            checkIntLike(f, in.a, "alu lhs");
            checkIntLike(f, in.b, "alu rhs");
            break;
          case IROp::Neg:
            checkIntLike(f, in.dst, "neg dst");
            checkIntLike(f, in.a, "neg src");
            break;
          case IROp::FAdd: case IROp::FSub: case IROp::FMul:
          case IROp::FDiv:
            checkValueType(f, in.dst, Type::F64, "falu dst");
            checkValueType(f, in.a, Type::F64, "falu lhs");
            checkValueType(f, in.b, Type::F64, "falu rhs");
            break;
          case IROp::FNeg:
            checkValueType(f, in.dst, Type::F64, "fneg dst");
            checkValueType(f, in.a, Type::F64, "fneg src");
            break;
          case IROp::ICmp:
            checkIntLike(f, in.dst, "icmp dst");
            checkIntLike(f, in.a, "icmp lhs");
            checkIntLike(f, in.b, "icmp rhs");
            break;
          case IROp::FCmp:
            checkIntLike(f, in.dst, "fcmp dst");
            checkValueType(f, in.a, Type::F64, "fcmp lhs");
            checkValueType(f, in.b, Type::F64, "fcmp rhs");
            break;
          case IROp::SIToFP:
            checkValueType(f, in.dst, Type::F64, "sitofp dst");
            checkIntLike(f, in.a, "sitofp src");
            break;
          case IROp::FPToSI:
            checkIntLike(f, in.dst, "fptosi dst");
            checkValueType(f, in.a, Type::F64, "fptosi src");
            break;
          case IROp::Copy:
            checkValue(f, in.dst, "copy dst");
            checkValue(f, in.a, "copy src");
            if (f.vregTypes[in.dst] != f.vregTypes[in.a])
                fail("copy between mismatched types");
            break;
          case IROp::AllocaAddr:
            checkValueType(f, in.dst, Type::Ptr, "alloca_addr dst");
            if (static_cast<size_t>(in.imm) >= f.allocas.size())
                fail("alloca_addr slot %lld out of range",
                     static_cast<long long>(in.imm));
            break;
          case IROp::GlobalAddr:
            checkValueType(f, in.dst, Type::Ptr, "global_addr dst");
            if (in.globalId >= mod_.globals.size())
                fail("global_addr id %u out of range", in.globalId);
            if (mod_.globals[in.globalId].isTls)
                fail("global_addr on TLS var '%s' (use tls_addr)",
                     mod_.globals[in.globalId].name.c_str());
            break;
          case IROp::TlsAddr:
            checkValueType(f, in.dst, Type::Ptr, "tls_addr dst");
            if (in.globalId >= mod_.globals.size() ||
                !mod_.globals[in.globalId].isTls)
                fail("tls_addr target %u is not a TLS var", in.globalId);
            break;
          case IROp::FuncAddr:
            checkValueType(f, in.dst, Type::Ptr, "func_addr dst");
            if (in.funcId >= mod_.functions.size())
                fail("func_addr id %u out of range", in.funcId);
            break;
          case IROp::Load:
            checkValue(f, in.dst, "load dst");
            checkValueType(f, in.a, Type::Ptr, "load addr");
            if (in.type == Type::Void)
                fail("load with void access type");
            break;
          case IROp::Store:
            checkValueType(f, in.a, Type::Ptr, "store addr");
            checkValue(f, in.b, "store value");
            if (in.type == Type::Void)
                fail("store with void access type");
            break;
          case IROp::LoadIdx:
            checkValue(f, in.dst, "load_idx dst");
            checkValueType(f, in.a, Type::Ptr, "load_idx base");
            checkIntLike(f, in.b, "load_idx index");
            if (in.imm <= 0)
                fail("load_idx scale must be positive");
            break;
          case IROp::StoreIdx:
            checkValueType(f, in.a, Type::Ptr, "store_idx base");
            checkIntLike(f, in.b, "store_idx index");
            if (in.args.size() != 1)
                fail("store_idx needs exactly one value arg");
            checkValue(f, in.args[0], "store_idx value");
            if (in.imm <= 0)
                fail("store_idx scale must be positive");
            break;
          case IROp::AtomicAdd:
            checkValueType(f, in.dst, Type::I64, "atomic_add dst");
            checkValueType(f, in.a, Type::Ptr, "atomic_add addr");
            checkValueType(f, in.b, Type::I64, "atomic_add value");
            break;
          case IROp::Br:
            if (in.target >= f.blocks.size())
                fail("br target %u out of range", in.target);
            break;
          case IROp::CondBr:
            checkIntLike(f, in.a, "cond_br cond");
            if (in.target >= f.blocks.size() ||
                in.target2 >= f.blocks.size())
                fail("cond_br target out of range");
            break;
          case IROp::Ret:
            if (f.retType == Type::Void) {
                if (in.a != kNoValue)
                    fail("ret with value in void function");
            } else {
                checkValue(f, in.a, "ret value");
            }
            break;
          case IROp::Call: {
            if (in.funcId >= mod_.functions.size())
                fail("call target %u out of range", in.funcId);
            checkCallSignature(f, in, mod_.functions[in.funcId]);
            break;
          }
          case IROp::CallInd:
            checkValueType(f, in.a, Type::Ptr, "call_ind target");
            for (ValueId arg : in.args)
                checkValue(f, arg, "call_ind arg");
            break;
          case IROp::MigPoint:
            break;
        }
    }

    void
    checkFunction(const IRFunction &f)
    {
        where_ = strfmt(", fn %s", f.name.c_str());
        if (f.isBuiltin()) {
            if (!f.blocks.empty())
                fail("builtin has a body");
            return;
        }
        if (f.blocks.empty())
            fail("non-builtin function has no blocks");
        if (f.paramTypes.size() > f.vregTypes.size())
            fail("fewer vregs than parameters");
        for (size_t i = 0; i < f.paramTypes.size(); ++i)
            if (f.vregTypes[i] != f.paramTypes[i])
                fail("vreg %zu type differs from parameter type", i);
        for (Type t : f.vregTypes)
            if (t == Type::Void)
                fail("void vreg");
        for (const IRFunction::AllocaSlot &slot : f.allocas) {
            if (slot.size == 0)
                fail("zero-size alloca");
            if (slot.align == 0 || (slot.align & (slot.align - 1)))
                fail("alloca alignment must be a power of two");
        }
        for (const BasicBlock &bb : f.blocks) {
            if (bb.instrs.empty())
                fail("empty basic block");
            for (size_t i = 0; i < bb.instrs.size(); ++i)
                checkInstr(f, bb.instrs[i], i + 1 == bb.instrs.size());
        }
        where_.clear();
    }

    const Module &mod_;
    std::string where_;
};

} // namespace

void
Module::verify() const
{
    Verifier(*this).run();
}

} // namespace xisa
