/**
 * @file
 * Dynamic binary translation baseline (the KVM/QEMU experiment of
 * Section 2, Figure 1).
 *
 * The paper measures the cost of hiding ISA heterogeneity behind
 * emulation: applications compiled for one ISA run on the other under
 * QEMU-style DBT, with slowdowns of one to four orders of magnitude.
 *
 * Our Translator maps each guest instruction to a representative host
 * instruction sequence, following TCG's cost structure:
 *  - straight-line integer ops translate nearly 1:1, plus dispatch;
 *  - Xeno64 (x86-like) guests pay extra for condition-flag
 *    materialization and CISC decomposition;
 *  - memory accesses go through a softmmu TLB sequence;
 *  - floating point is emulated via softfloat helper calls on BOTH
 *    directions (the dominant Fig. 1 effect for the FP-heavy NPB codes);
 *  - each guest instruction pays a one-time translation cost on first
 *    execution (translation cache).
 *
 * Semantics come from the verified guest-ISA interpreter; the DBT layer
 * charges host cycles per executed guest instruction according to its
 * translation. emulate() runs the full program that way and reports
 * guest-native vs. emulated time.
 */

#ifndef XISA_EMU_DBT_HH
#define XISA_EMU_DBT_HH

#include <vector>

#include "binary/multibinary.hh"
#include "machine/node.hh"

namespace xisa {

/**
 * True if a TCG-style translation block cannot continue straight-line
 * execution past `op`: unconditional transfers, calls, indirect jumps,
 * system traps and thread exit. This is the block-boundary rule
 * Translator::translate() charges (chaining for B, block exit for
 * calls, jump-cache exit for Ret), and the superblock discoverer in
 * machine/interp_threaded.cc terminates superblock growth at exactly
 * the same ops, so the real engine's block shapes match the ones the
 * DBT cost model prices. Inline on purpose: the machine layer consumes
 * it without linking against the emu library.
 */
inline bool
emuBlockBoundary(MOp op)
{
    switch (op) {
      case MOp::B: case MOp::Bl: case MOp::Blr: case MOp::Ret:
      case MOp::SysCall: case MOp::Hlt:
        return true;
      default:
        return false;
    }
}

/** Guest-to-host instruction translator. */
class Translator
{
  public:
    Translator(IsaId guest, IsaId host);

    /** Representative host instruction sequence for one guest
     *  instruction (register assignment is schematic). */
    std::vector<MachInstr> translate(const MachInstr &guest) const;

    /** Cycles a softfloat/div helper costs on the host, or 0 if the op
     *  needs no helper. */
    uint32_t helperCycles(MOp op) const;

    /** Host cycles to execute one translated guest instruction. */
    uint64_t execCycles(const MachInstr &guest,
                        const NodeSpec &hostSpec) const;

    /** One-time translation cost of one guest instruction (cycles). */
    uint64_t translateCycles(const MachInstr &guest) const;

    IsaId guest() const { return guest_; }
    IsaId host() const { return host_; }

  private:
    IsaId guest_;
    IsaId host_;
    bool guestIsCisc_; ///< Xeno64 guest: flags + decode surcharges
};

/** Outcome of an emulated run. */
struct EmulationResult {
    uint64_t guestInstrs = 0;
    uint64_t hostCycles = 0;       ///< execution + helpers
    uint64_t translationCycles = 0;
    uint64_t staticInstrsTranslated = 0;
    double emulatedSeconds = 0;    ///< on the host clock
    double nativeSeconds = 0;      ///< same program native on guest HW
    double slowdown = 0;           ///< emulated / native
};

/**
 * Run the `guest` text of `bin` to completion under DBT on `hostSpec`,
 * and compare against native execution of the same text on
 * `guestNativeSpec` (the Fig. 1 ratio).
 */
EmulationResult emulate(const MultiIsaBinary &bin, IsaId guest,
                        const NodeSpec &hostSpec,
                        const NodeSpec &guestNativeSpec);

} // namespace xisa

#endif // XISA_EMU_DBT_HH
