#include "emu/dbt.hh"

#include "os/os.hh"
#include "util/logging.hh"

namespace xisa {

Translator::Translator(IsaId guest, IsaId host)
    : guest_(guest), host_(host), guestIsCisc_(guest == IsaId::Xeno64)
{
    XISA_CHECK(guest != host, "DBT between identical ISAs");
}

uint32_t
Translator::helperCycles(MOp op) const
{
    // Softfloat and other helper costs, calibrated so the FP-heavy NPB
    // codes reproduce Fig. 1's orders of magnitude: QEMU emulates FP via
    // softfloat in both directions, but the in-order ARM-like host pays
    // far more per helper than the wide x86-like host.
    const bool onAether = host_ == IsaId::Aether64;
    switch (op) {
      case MOp::FAdd: case MOp::FSub: case MOp::FMul:
        return onAether ? 140 : 40;
      case MOp::FDiv:
        return onAether ? 300 : 90;
      case MOp::FCmp: case MOp::FNeg: case MOp::FMovReg:
      case MOp::FMovImm:
        return onAether ? 70 : 22;
      case MOp::SCvtF: case MOp::FCvtS:
        return onAether ? 90 : 28;
      case MOp::SDiv: case MOp::UDiv: case MOp::SRem: case MOp::URem:
        return onAether ? 50 : 22;
      case MOp::AtomicAdd:
        return onAether ? 70 : 30;
      default:
        return 0;
    }
}

std::vector<MachInstr>
Translator::translate(const MachInstr &guest) const
{
    auto mk = [](MOp op) {
        MachInstr in;
        in.op = op;
        return in;
    };
    std::vector<MachInstr> out;
    auto softmmu = [&] {
        // TLB lookup: shift, mask, table load, compare, branch.
        out.push_back(mk(MOp::LsrImm));
        out.push_back(mk(MOp::AndImm));
        out.push_back(mk(MOp::LdrIdx));
        out.push_back(mk(MOp::CmpImm));
        out.push_back(mk(MOp::BCond));
    };
    auto helper = [&] {
        // Spill live state, call the helper, reload.
        out.push_back(mk(MOp::Str));
        out.push_back(mk(MOp::Bl));
        out.push_back(mk(MOp::Ldr));
    };

    if (helperCycles(guest.op) > 0) {
        helper();
        return out;
    }
    switch (guest.op) {
      // Memory: softmmu sequence plus the access itself.
      case MOp::Ldr: case MOp::Ldr32: case MOp::LdrS32: case MOp::LdrB:
      case MOp::Str: case MOp::Str32: case MOp::StrB:
      case MOp::FLdr: case MOp::FStr:
      case MOp::LdrIdx: case MOp::Ldr32Idx: case MOp::LdrBIdx:
      case MOp::StrIdx: case MOp::Str32Idx: case MOp::StrBIdx:
      case MOp::FLdrIdx: case MOp::FStrIdx:
        softmmu();
        out.push_back(mk(guest.op));
        break;
      case MOp::Push: case MOp::Pop:
        out.push_back(mk(MOp::SubImm)); // emulated SP update
        softmmu();
        out.push_back(mk(guest.op == MOp::Push ? MOp::Str : MOp::Ldr));
        break;
      case MOp::B:
        out.push_back(mk(MOp::B)); // block chaining
        break;
      case MOp::BCond:
        out.push_back(mk(MOp::CmpImm));
        out.push_back(mk(MOp::BCond));
        break;
      case MOp::Bl: case MOp::Blr:
        // Emulated call: compute target, push guest RA, exit block.
        out.push_back(mk(MOp::MovImm));
        softmmu();
        out.push_back(mk(MOp::Str));
        out.push_back(mk(MOp::B));
        break;
      case MOp::Ret:
        softmmu();
        out.push_back(mk(MOp::Ldr));
        out.push_back(mk(MOp::Blr)); // indirect jump via jump cache
        break;
      case MOp::TlsBase:
        out.push_back(mk(MOp::Ldr)); // from the emulated CPU state
        break;
      default: {
        // Integer ALU / moves: nearly 1:1; a CISC guest additionally
        // materializes condition flags after every flag-setting op.
        out.push_back(mk(guest.op));
        if (guestIsCisc_ && !mopIsControl(guest.op) &&
            guest.op != MOp::Nop) {
            out.push_back(mk(MOp::Cmp));
            out.push_back(mk(MOp::CSet));
        }
        break;
      }
    }
    return out;
}

uint64_t
Translator::execCycles(const MachInstr &guest,
                       const NodeSpec &hostSpec) const
{
    uint64_t cycles = 1; // block dispatch amortization
    for (const MachInstr &h : translate(guest))
        cycles += hostSpec.cost(h.op);
    cycles += helperCycles(guest.op);
    // TCG code quality factor: the wide out-of-order x86-like core
    // hides most of the translated code's dependency chains; the
    // in-order ARM-like core exposes them (the reason the paper's
    // bottom Fig. 1 graph reaches three to four orders of magnitude
    // while the top stays within two).
    double quality = host_ == IsaId::Aether64 ? 4.0 : 1.7;
    return static_cast<uint64_t>(cycles * quality);
}

uint64_t
Translator::translateCycles(const MachInstr &guest) const
{
    uint64_t base = guestIsCisc_ ? 1400 : 700; // decode complexity
    if (helperCycles(guest.op) > 0)
        base += 200;
    return base;
}

EmulationResult
emulate(const MultiIsaBinary &bin, IsaId guest, const NodeSpec &hostSpec,
        const NodeSpec &guestNativeSpec)
{
    XISA_CHECK(guestNativeSpec.isa == guest,
               "native spec must match the guest ISA");
    // One native run yields both the native timing and the dynamic
    // profile the DBT cost accounting consumes.
    OsConfig cfg;
    cfg.nodes = {guestNativeSpec};
    cfg.profile = true;
    ReplicatedOS os(bin, cfg);
    os.load(0);
    OsRunResult res = os.run();

    Translator xlat(guest, hostSpec.isa);
    EmulationResult out;
    out.guestInstrs = res.totalInstrs;
    out.nativeSeconds = res.makespanSeconds;

    const auto &profile = os.interp(0).profile();
    const int gi = static_cast<int>(guest);
    for (uint32_t fid = 0; fid < profile.size(); ++fid) {
        const FuncImage &img = bin.image[gi][fid];
        for (uint32_t idx = 0; idx < profile[fid].size(); ++idx) {
            uint64_t count = profile[fid][idx];
            if (count == 0)
                continue;
            const MachInstr &in = img.code[idx];
            out.hostCycles += count * xlat.execCycles(in, hostSpec);
            out.translationCycles += xlat.translateCycles(in);
            ++out.staticInstrsTranslated;
        }
    }
    out.emulatedSeconds =
        static_cast<double>(out.hostCycles + out.translationCycles) *
        hostSpec.secondsPerCycle();
    out.slowdown = out.nativeSeconds > 0
                       ? out.emulatedSeconds / out.nativeSeconds
                       : 0;
    return out;
}

} // namespace xisa
