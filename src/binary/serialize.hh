/**
 * @file
 * On-disk format for multi-ISA binaries.
 *
 * The paper's prototype emits one ELF per ISA plus metadata sections
 * (stackmaps, unwind tables) consumed by the loader and the migration
 * runtime. CrossBound's equivalent is a single container holding both
 * texts, the common layout, and all cross-ISA metadata, so a binary can
 * be compiled once and shipped to any kernel of the pool.
 *
 * Format: "XBIN" magic, a version word, then length-prefixed sections.
 * Everything is little-endian. The reader validates structure eagerly
 * and fatal()s with a diagnostic on any corruption.
 */

#ifndef XISA_BINARY_SERIALIZE_HH
#define XISA_BINARY_SERIALIZE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "binary/multibinary.hh"

namespace xisa {

/** Serialize a multi-ISA binary to bytes. */
std::vector<uint8_t> saveBinary(const MultiIsaBinary &bin);

/** Reconstruct a multi-ISA binary from bytes produced by saveBinary().
 *  fatal() on malformed input. */
MultiIsaBinary loadBinary(const std::vector<uint8_t> &bytes);

/** Write a binary to a file. fatal() on I/O errors. */
void saveBinaryFile(const MultiIsaBinary &bin, const std::string &path);

/** Read a binary from a file. fatal() on I/O errors or corruption. */
MultiIsaBinary loadBinaryFile(const std::string &path);

} // namespace xisa

#endif // XISA_BINARY_SERIALIZE_HH
