/**
 * @file
 * The multi-ISA binary (Sections 4 and 5.2 of the paper).
 *
 * A MultiIsaBinary packages one natively compiled text image per ISA plus
 * a single common virtual-address-space layout: every function and every
 * global symbol has the same virtual address on both ISAs (when built in
 * aligned mode), the TLS image has one common layout, and per-call-site
 * metadata (stackmaps + frame info) is keyed identically across ISAs.
 * The OS's heterogeneous binary loader aliases the per-ISA .text into
 * the same virtual range, so code pointers are valid on either ISA.
 */

#ifndef XISA_BINARY_MULTIBINARY_HH
#define XISA_BINARY_MULTIBINARY_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "binary/metadata.hh"
#include "ir/ir.hh"
#include "isa/isa.hh"

namespace xisa {

/** Fixed virtual-address-space map shared by every process. */
namespace vm {
/** Runtime/builtin trampolines (the "libc" of the system). */
constexpr uint64_t kRuntimeBase = 0x00300000ull;
constexpr uint64_t kRuntimeStride = 64;
/** Application .text. */
constexpr uint64_t kTextBase = 0x00400000ull;
/** .rodata. */
constexpr uint64_t kRodataBase = 0x08000000ull;
/** .data / .bss. */
constexpr uint64_t kDataBase = 0x10000000ull;
/** Heap (sbrk region). */
constexpr uint64_t kHeapBase = 0x30000000ull;
/** Per-thread TLS blocks. */
constexpr uint64_t kTlsBase = 0x50000000ull;
/** Per-thread user stacks, allocated downward from here. */
constexpr uint64_t kStackRegion = 0x60000000ull;
/** Bytes per thread stack. */
constexpr uint64_t kStackSize = 512 * 1024;
/** vDSO page; the migration-request flag lives at offset 0. */
constexpr uint64_t kVdsoBase = 0x7ffff000ull;
/** Sentinel return address: returning to it ends the thread. */
constexpr uint64_t kThreadExitAddr = 0x00200000ull;
/** Page size. */
constexpr uint64_t kPageSize = 4096;

/** Stack top (highest address, exclusive) of thread stack `slot`. */
constexpr uint64_t
stackTop(uint32_t slot)
{
    return kStackRegion + static_cast<uint64_t>(slot + 1) * kStackSize;
}
} // namespace vm

/** One function's machine code on one ISA. */
struct FuncImage {
    std::vector<MachInstr> code;
    /** Byte offset of each instruction; has code.size()+1 entries, the
     *  last being the total encoded size. */
    std::vector<uint32_t> instrOff;
    FrameInfo frame;
    /** First machine-instruction index of each BIR block (profiling). */
    std::vector<uint32_t> blockStart;
    /** Machine-instruction index of each migration-point flag check. */
    std::vector<uint32_t> migChecks;

    uint32_t codeBytes() const
    {
        return instrOff.empty() ? 0 : instrOff.back();
    }
};

/** A location in code: function + instruction index. */
struct CodeLoc {
    uint32_t funcId = 0;
    uint32_t instrIdx = 0;
    bool operator==(const CodeLoc &o) const = default;
};

/** The multi-ISA binary produced by compileModule(). */
struct MultiIsaBinary {
    std::string name;
    /** The IR it was compiled from (retained for the DBT baseline,
     *  profiling, and diagnostics). */
    Module ir;
    /** Per-ISA, per-function images; empty for builtins. */
    std::array<std::vector<FuncImage>, kNumIsas> image;
    /** True if symbols were aligned to a common layout (Section 5.2.2);
     *  false reproduces the natural per-ISA packing for Table 1. */
    bool alignedLayout = true;
    /** Entry virtual address per ISA per function (equal when aligned). */
    std::array<std::vector<uint64_t>, kNumIsas> funcAddr;
    /** End of the .text region per ISA. */
    std::array<uint64_t, kNumIsas> textEnd = {};
    /** Virtual address of each global; identical across ISAs. */
    std::vector<uint64_t> globalAddr;
    /** First address past .data/.bss (initial program break). */
    uint64_t dataEnd = 0;
    /** Offset of each TLS variable within a thread's TLS block (common
     *  x86-style layout on both ISAs, cf. the muslc modification). */
    std::vector<uint64_t> tlsOff;
    uint64_t tlsSize = 0;
    std::vector<uint8_t> tlsInit; ///< initial image of a TLS block
    /** Call-site metadata per ISA, keyed by call-site id. */
    std::array<std::unordered_map<uint32_t, CallSiteInfo>, kNumIsas>
        callSite;

    // --- Lookups --------------------------------------------------------

    /** Code address of (funcId, instrIdx) on `isa`. */
    uint64_t codeAddr(IsaId isa, uint32_t funcId, uint32_t instrIdx) const;
    /**
     * Resolve a code virtual address back to (funcId, instrIdx).
     * Handles both application text and runtime trampolines (builtins,
     * which resolve to instrIdx 0). fatal() on non-code addresses.
     */
    CodeLoc resolveCode(IsaId isa, uint64_t vaddr) const;
    /** Call-site record by id; fatal() if missing. */
    const CallSiteInfo &site(IsaId isa, uint32_t id) const;
    /** Initial bytes of the .data/.rodata image (for the loader). */
    struct DataImage {
        uint64_t base = 0;
        std::vector<uint8_t> bytes;
    };
    /** Build the initial data image (rodata + data, zero-filled bss). */
    std::vector<DataImage> buildDataImages() const;

    /** Total encoded text bytes on one ISA (diagnostics). */
    uint64_t textBytes(IsaId isa) const;
};

/**
 * Precomputed code-address index for one ISA of a binary. resolve() is
 * on the interpreter's Ret hot path, so this trades setup time for
 * O(log n) lookups (MultiIsaBinary::resolveCode is the slow, always-
 * correct reference).
 */
class CodeMap
{
  public:
    CodeMap() = default;
    CodeMap(const MultiIsaBinary &bin, IsaId isa);

    /** Resolve a code virtual address; fatal() on non-code addresses. */
    CodeLoc resolve(uint64_t vaddr) const;
    /** True if `vaddr` is a valid instruction boundary. */
    bool contains(uint64_t vaddr) const;

  private:
    struct Entry {
        uint64_t addr;
        uint32_t funcId;
        uint32_t size; ///< 0 for builtin entries (exact match only)
    };
    const MultiIsaBinary *bin_ = nullptr;
    IsaId isa_ = IsaId::Aether64;
    std::vector<Entry> entries_; ///< sorted by addr
};

} // namespace xisa

#endif // XISA_BINARY_MULTIBINARY_HH
