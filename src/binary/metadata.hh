/**
 * @file
 * Compiler-generated migration metadata.
 *
 * This is CrossBound's equivalent of the paper's per-call-site live-value
 * stackmaps plus DWARF frame-unwinding records (Section 5.3): enough
 * information for the runtime to (a) walk a thread's stack frame by
 * frame, and (b) relocate every live value from one ISA's frame layout
 * and register assignment to the other's. Records are keyed by BIR value
 * ids and call-site ids, which are assigned once on the IR and therefore
 * identical across ISAs -- that shared key space is what makes the
 * per-ISA metadata mutually translatable.
 */

#ifndef XISA_BINARY_METADATA_HH
#define XISA_BINARY_METADATA_HH

#include <cstdint>
#include <vector>

#include "ir/ir.hh"
#include "isa/isa.hh"

namespace xisa {

/** Where a live value resides at a call site. */
struct ValueLocation {
    enum class Kind : uint8_t {
        Gpr,      ///< in a general-purpose register (must be callee-saved)
        Fpr,      ///< in a floating-point register (must be callee-saved)
        FrameSlot ///< in the frame at FP + offset
    };
    Kind kind = Kind::FrameSlot;
    uint8_t reg = 0;     ///< register id for Gpr/Fpr
    int32_t fpOff = 0;   ///< FP-relative offset for FrameSlot
};

/** One live value record at a call site. */
struct LiveValue {
    ValueId irValue = kNoValue; ///< cross-ISA key
    Type type = Type::I64;
    ValueLocation loc;
};

/**
 * Per-function, per-ISA frame layout ("unwind info").
 *
 * Both ABIs store the caller's FP at [FP] and the return address at
 * [FP+8] (Aether64 via its FP/LR pair, Xeno64 via push-return + push-FP),
 * so the frame chain walks identically; everything below FP differs.
 */
struct FrameInfo {
    uint32_t frameSize = 0;   ///< total frame bytes (16-aligned)
    /** FP-relative slots where used callee-saved GPRs are saved. */
    std::vector<std::pair<uint8_t, int32_t>> savedGpr;
    /** FP-relative slots where used callee-saved FPRs are saved. */
    std::vector<std::pair<uint8_t, int32_t>> savedFpr;
    /** FP-relative offset of each alloca slot, indexed by slot id. */
    std::vector<int32_t> allocaFpOff;
    /** Bytes reserved at the stack bottom for outgoing stack args. */
    uint32_t outArgBytes = 0;

    /** Offset of the saved-FP slot relative to FP (always 0). */
    static constexpr int32_t kSavedFpOff = 0;
    /** Offset of the return-address slot relative to FP (always 8). */
    static constexpr int32_t kRetAddrOff = 8;
};

/**
 * Metadata for one call site on one ISA.
 *
 * `retAddr` is the virtual address execution resumes at after the call
 * -- the value found in the return-address slot of the callee's frame,
 * and the address the destination-ISA PC is set to when this frame is
 * the migration point (the r^AB program-counter mapping of Section 4).
 */
struct CallSiteInfo {
    uint32_t id = 0;
    uint32_t funcId = 0;       ///< function containing the site
    uint64_t retAddr = 0;      ///< resume virtual address on this ISA
    bool isMigrationPoint = false;
    std::vector<LiveValue> live; ///< values live across the call
};

/** Incoming stack argument i lives at FP + kIncomingArgBase + 8*i. */
constexpr int32_t kIncomingArgBase = 16;

} // namespace xisa

#endif // XISA_BINARY_METADATA_HH
