#include "binary/dump.hh"

#include "isa/abi.hh"
#include "util/logging.hh"

namespace xisa {

std::string
dumpHeaders(const MultiIsaBinary &bin)
{
    std::string out = strfmt("multi-ISA binary '%s' (%s layout)\n",
                             bin.name.c_str(),
                             bin.alignedLayout ? "aligned" : "unaligned");
    out += strfmt("  .text    base 0x%08llx  aether64 %6llu B  xeno64 "
                  "%6llu B\n",
                  static_cast<unsigned long long>(vm::kTextBase),
                  static_cast<unsigned long long>(
                      bin.textBytes(IsaId::Aether64)),
                  static_cast<unsigned long long>(
                      bin.textBytes(IsaId::Xeno64)));
    out += strfmt("  .rodata  base 0x%08llx\n",
                  static_cast<unsigned long long>(vm::kRodataBase));
    out += strfmt("  .data    base 0x%08llx  end 0x%08llx\n",
                  static_cast<unsigned long long>(vm::kDataBase),
                  static_cast<unsigned long long>(bin.dataEnd));
    out += strfmt("  .tls     %llu bytes (common layout)\n",
                  static_cast<unsigned long long>(bin.tlsSize));
    out += strfmt("  call sites with stackmaps: %zu\n",
                  bin.callSite[0].size());
    out += "symbols:\n";
    for (const IRFunction &f : bin.ir.functions) {
        if (f.isBuiltin())
            continue;
        out += strfmt("  0x%08llx", static_cast<unsigned long long>(
                                        bin.funcAddr[0][f.id]));
        if (!bin.alignedLayout)
            out += strfmt(" / 0x%08llx",
                          static_cast<unsigned long long>(
                              bin.funcAddr[1][f.id]));
        out += strfmt("  %s\n", f.name.c_str());
    }
    for (const GlobalVar &g : bin.ir.globals) {
        if (g.isTls)
            out += strfmt("  tls+0x%06llx  %s\n",
                          static_cast<unsigned long long>(
                              bin.tlsOff[g.id]),
                          g.name.c_str());
        else
            out += strfmt("  0x%08llx  %s\n",
                          static_cast<unsigned long long>(
                              bin.globalAddr[g.id]),
                          g.name.c_str());
    }
    return out;
}

std::string
dumpFunction(const MultiIsaBinary &bin, uint32_t funcId, IsaId isa)
{
    const IRFunction &f = bin.ir.func(funcId);
    if (f.isBuiltin())
        return strfmt("<%s: builtin at 0x%llx>\n", f.name.c_str(),
                      static_cast<unsigned long long>(
                          bin.funcAddr[static_cast<int>(isa)][funcId]));
    const int i = static_cast<int>(isa);
    const FuncImage &img = bin.image[i][funcId];
    const AbiInfo &abi = AbiInfo::of(isa);
    std::string out =
        strfmt("%s <%s> (%s):  frame %u bytes, %zu callee-saved slots\n",
               strfmt("0x%08llx", static_cast<unsigned long long>(
                                      bin.funcAddr[i][funcId]))
                   .c_str(),
               f.name.c_str(), isaName(isa), img.frame.frameSize,
               img.frame.savedGpr.size() + img.frame.savedFpr.size());
    for (auto [r, off] : img.frame.savedGpr)
        out += strfmt("    save %-4s at FP%+d\n", abi.gprName(r).c_str(),
                      off);
    for (size_t s = 0; s < img.frame.allocaFpOff.size(); ++s)
        out += strfmt("    alloca '%s' at FP%+d (%u bytes)\n",
                      f.allocas[s].name.c_str(), img.frame.allocaFpOff[s],
                      f.allocas[s].size);
    for (size_t k = 0; k < img.code.size(); ++k) {
        out += strfmt("  %08llx:  %s\n",
                      static_cast<unsigned long long>(
                          bin.funcAddr[i][funcId] + img.instrOff[k]),
                      disasm(img.code[k], isa).c_str());
    }
    return out;
}

std::string
dumpCallSite(const MultiIsaBinary &bin, uint32_t siteId)
{
    std::string out = strfmt("call site %u:\n", siteId);
    for (int i = 0; i < kNumIsas; ++i) {
        IsaId isa = static_cast<IsaId>(i);
        const CallSiteInfo &s = bin.site(isa, siteId);
        const AbiInfo &abi = AbiInfo::of(isa);
        out += strfmt("  [%s] in %s, resume 0x%llx%s\n", isaName(isa),
                      bin.ir.func(s.funcId).name.c_str(),
                      static_cast<unsigned long long>(s.retAddr),
                      s.isMigrationPoint ? "  (migration point)" : "");
        for (const LiveValue &lv : s.live) {
            std::string loc;
            switch (lv.loc.kind) {
              case ValueLocation::Kind::Gpr:
                loc = abi.gprName(lv.loc.reg);
                break;
              case ValueLocation::Kind::Fpr:
                loc = abi.fprName(lv.loc.reg);
                break;
              case ValueLocation::Kind::FrameSlot:
                loc = strfmt("FP%+d", lv.loc.fpOff);
                break;
            }
            out += strfmt("    live %%%u:%s in %s\n", lv.irValue,
                          typeName(lv.type), loc.c_str());
        }
    }
    return out;
}

std::string
dumpBinary(const MultiIsaBinary &bin)
{
    std::string out = dumpHeaders(bin);
    for (const IRFunction &f : bin.ir.functions) {
        if (f.isBuiltin())
            continue;
        out += "\n";
        out += dumpFunction(bin, f.id, IsaId::Aether64);
        out += dumpFunction(bin, f.id, IsaId::Xeno64);
    }
    return out;
}

} // namespace xisa
