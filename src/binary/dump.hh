/**
 * @file
 * objdump-style rendering of multi-ISA binaries: section map, per-ISA
 * disassembly with virtual addresses, frame layouts, and call-site
 * stackmaps. The cross-ISA, side-by-side views make the "same program,
 * two lowerings, one layout" property directly visible.
 */

#ifndef XISA_BINARY_DUMP_HH
#define XISA_BINARY_DUMP_HH

#include <string>

#include "binary/multibinary.hh"

namespace xisa {

/** Section/header summary: layout bases, text sizes, symbol table. */
std::string dumpHeaders(const MultiIsaBinary &bin);

/** Disassembly of one function on one ISA, with addresses and frame. */
std::string dumpFunction(const MultiIsaBinary &bin, uint32_t funcId,
                         IsaId isa);

/** The stackmap of one call site on both ISAs, side by side. */
std::string dumpCallSite(const MultiIsaBinary &bin, uint32_t siteId);

/** Full dump: headers + every user function on both ISAs. */
std::string dumpBinary(const MultiIsaBinary &bin);

} // namespace xisa

#endif // XISA_BINARY_DUMP_HH
