#include "binary/serialize.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/bytes.hh"
#include "util/logging.hh"

namespace xisa {

namespace {

constexpr uint32_t kMagic = 0x4e494258; // "XBIN"
constexpr uint32_t kVersion = 1;

// --- IR ------------------------------------------------------------------

void
writeInstr(ByteWriter &w, const IRInstr &in)
{
    w.u8(static_cast<uint8_t>(in.op));
    w.u8(static_cast<uint8_t>(in.type));
    w.u8(static_cast<uint8_t>(in.cond));
    w.u32(in.dst);
    w.u32(in.a);
    w.u32(in.b);
    w.i64(in.imm);
    w.f64(in.fimm);
    w.u32(in.target);
    w.u32(in.target2);
    w.u32(in.funcId);
    w.u32(in.globalId);
    w.u32(in.callSiteId);
    w.list(in.args, [&](ValueId v) { w.u32(v); });
}

IRInstr
readInstr(ByteReader &r)
{
    IRInstr in;
    in.op = static_cast<IROp>(r.u8());
    in.type = static_cast<Type>(r.u8());
    in.cond = static_cast<Cond>(r.u8());
    in.dst = r.u32();
    in.a = r.u32();
    in.b = r.u32();
    in.imm = r.i64();
    in.fimm = r.f64();
    in.target = r.u32();
    in.target2 = r.u32();
    in.funcId = r.u32();
    in.globalId = r.u32();
    in.callSiteId = r.u32();
    in.args = r.list<ValueId>([&] { return r.u32(); });
    return in;
}

void
writeModule(ByteWriter &w, const Module &mod)
{
    w.str(mod.name);
    w.u32(mod.entryFuncId);
    w.list(mod.globals, [&](const GlobalVar &g) {
        w.str(g.name);
        w.u32(g.id);
        w.u64(g.size);
        w.u32(g.align);
        w.u8(g.isConst);
        w.u8(g.isTls);
        w.blob(g.init);
    });
    w.list(mod.functions, [&](const IRFunction &f) {
        w.str(f.name);
        w.u32(f.id);
        w.u8(static_cast<uint8_t>(f.retType));
        w.u8(static_cast<uint8_t>(f.builtin));
        w.list(f.paramTypes,
               [&](Type t) { w.u8(static_cast<uint8_t>(t)); });
        w.list(f.vregTypes,
               [&](Type t) { w.u8(static_cast<uint8_t>(t)); });
        w.list(f.allocas, [&](const IRFunction::AllocaSlot &a) {
            w.u32(a.size);
            w.u32(a.align);
            w.str(a.name);
        });
        w.list(f.blocks, [&](const BasicBlock &bb) {
            w.u32(static_cast<uint32_t>(bb.loopDepth));
            w.list(bb.instrs, [&](const IRInstr &in) {
                writeInstr(w, in);
            });
        });
    });
}

Module
readModule(ByteReader &r)
{
    Module mod;
    mod.name = r.str();
    mod.entryFuncId = r.u32();
    mod.globals = r.list<GlobalVar>([&] {
        GlobalVar g;
        g.name = r.str();
        g.id = r.u32();
        g.size = r.u64();
        g.align = r.u32();
        g.isConst = r.u8();
        g.isTls = r.u8();
        g.init = r.blob();
        return g;
    });
    mod.functions = r.list<IRFunction>([&] {
        IRFunction f;
        f.name = r.str();
        f.id = r.u32();
        f.retType = static_cast<Type>(r.u8());
        f.builtin = static_cast<Builtin>(r.u8());
        f.paramTypes =
            r.list<Type>([&] { return static_cast<Type>(r.u8()); });
        f.vregTypes =
            r.list<Type>([&] { return static_cast<Type>(r.u8()); });
        f.allocas = r.list<IRFunction::AllocaSlot>([&] {
            IRFunction::AllocaSlot a;
            a.size = r.u32();
            a.align = r.u32();
            a.name = r.str();
            return a;
        });
        f.blocks = r.list<BasicBlock>([&] {
            BasicBlock bb;
            bb.loopDepth = static_cast<int>(r.u32());
            bb.instrs = r.list<IRInstr>([&] { return readInstr(r); });
            return bb;
        });
        return f;
    });
    return mod;
}

// --- Machine code and metadata --------------------------------------------

void
writeMachInstr(ByteWriter &w, const MachInstr &in)
{
    w.u8(static_cast<uint8_t>(in.op));
    w.u8(static_cast<uint8_t>(in.cond));
    w.u8(in.rd);
    w.u8(in.rn);
    w.u8(in.rm);
    w.i64(in.imm);
    w.u32(in.target);
    w.u32(in.callSiteId);
    w.u8(in.size);
    w.u8(static_cast<uint8_t>(in.reloc));
}

MachInstr
readMachInstr(ByteReader &r)
{
    MachInstr in;
    in.op = static_cast<MOp>(r.u8());
    in.cond = static_cast<Cond>(r.u8());
    in.rd = r.u8();
    in.rn = r.u8();
    in.rm = r.u8();
    in.imm = r.i64();
    in.target = r.u32();
    in.callSiteId = r.u32();
    in.size = r.u8();
    in.reloc = static_cast<Reloc>(r.u8());
    return in;
}

void
writeFrame(ByteWriter &w, const FrameInfo &fr)
{
    w.u32(fr.frameSize);
    w.u32(fr.outArgBytes);
    w.list(fr.savedGpr, [&](const std::pair<uint8_t, int32_t> &s) {
        w.u8(s.first);
        w.u32(static_cast<uint32_t>(s.second));
    });
    w.list(fr.savedFpr, [&](const std::pair<uint8_t, int32_t> &s) {
        w.u8(s.first);
        w.u32(static_cast<uint32_t>(s.second));
    });
    w.list(fr.allocaFpOff,
           [&](int32_t off) { w.u32(static_cast<uint32_t>(off)); });
}

FrameInfo
readFrame(ByteReader &r)
{
    FrameInfo fr;
    fr.frameSize = r.u32();
    fr.outArgBytes = r.u32();
    fr.savedGpr = r.list<std::pair<uint8_t, int32_t>>([&] {
        uint8_t reg = r.u8();
        int32_t off = static_cast<int32_t>(r.u32());
        return std::pair<uint8_t, int32_t>{reg, off};
    });
    fr.savedFpr = r.list<std::pair<uint8_t, int32_t>>([&] {
        uint8_t reg = r.u8();
        int32_t off = static_cast<int32_t>(r.u32());
        return std::pair<uint8_t, int32_t>{reg, off};
    });
    fr.allocaFpOff = r.list<int32_t>(
        [&] { return static_cast<int32_t>(r.u32()); });
    return fr;
}

void
writeSite(ByteWriter &w, const CallSiteInfo &s)
{
    w.u32(s.id);
    w.u32(s.funcId);
    w.u64(s.retAddr);
    w.u8(s.isMigrationPoint);
    w.list(s.live, [&](const LiveValue &lv) {
        w.u32(lv.irValue);
        w.u8(static_cast<uint8_t>(lv.type));
        w.u8(static_cast<uint8_t>(lv.loc.kind));
        w.u8(lv.loc.reg);
        w.u32(static_cast<uint32_t>(lv.loc.fpOff));
    });
}

CallSiteInfo
readSite(ByteReader &r)
{
    CallSiteInfo s;
    s.id = r.u32();
    s.funcId = r.u32();
    s.retAddr = r.u64();
    s.isMigrationPoint = r.u8();
    s.live = r.list<LiveValue>([&] {
        LiveValue lv;
        lv.irValue = r.u32();
        lv.type = static_cast<Type>(r.u8());
        lv.loc.kind = static_cast<ValueLocation::Kind>(r.u8());
        lv.loc.reg = r.u8();
        lv.loc.fpOff = static_cast<int32_t>(r.u32());
        return lv;
    });
    return s;
}

} // namespace

std::vector<uint8_t>
saveBinary(const MultiIsaBinary &bin)
{
    ByteWriter w;
    w.u32(kMagic);
    w.u32(kVersion);
    w.str(bin.name);
    w.u8(bin.alignedLayout);
    writeModule(w, bin.ir);
    for (int i = 0; i < kNumIsas; ++i) {
        w.list(bin.image[i], [&](const FuncImage &img) {
            w.list(img.code,
                   [&](const MachInstr &in) { writeMachInstr(w, in); });
            w.list(img.instrOff, [&](uint32_t off) { w.u32(off); });
            writeFrame(w, img.frame);
            w.list(img.blockStart, [&](uint32_t b) { w.u32(b); });
            w.list(img.migChecks, [&](uint32_t m) { w.u32(m); });
        });
        w.list(bin.funcAddr[i], [&](uint64_t a) { w.u64(a); });
        w.u64(bin.textEnd[i]);
        std::vector<CallSiteInfo> sites;
        sites.reserve(bin.callSite[i].size());
        for (const auto &[id, site] : bin.callSite[i])
            sites.push_back(site);
        std::sort(sites.begin(), sites.end(),
                  [](const CallSiteInfo &a, const CallSiteInfo &b) {
                      return a.id < b.id;
                  });
        w.list(sites, [&](const CallSiteInfo &s) { writeSite(w, s); });
    }
    w.list(bin.globalAddr, [&](uint64_t a) { w.u64(a); });
    w.u64(bin.dataEnd);
    w.list(bin.tlsOff, [&](uint64_t o) { w.u64(o); });
    w.u64(bin.tlsSize);
    w.blob(bin.tlsInit);
    return std::move(w.out);
}

MultiIsaBinary
loadBinary(const std::vector<uint8_t> &bytes)
{
    ByteReader r(bytes);
    if (r.u32() != kMagic)
        fatal("not a CrossBound multi-ISA binary (bad magic)");
    if (uint32_t v = r.u32(); v != kVersion)
        fatal("unsupported binary version %u (expected %u)", v,
              kVersion);
    MultiIsaBinary bin;
    bin.name = r.str();
    bin.alignedLayout = r.u8();
    bin.ir = readModule(r);
    bin.ir.verify();
    for (int i = 0; i < kNumIsas; ++i) {
        bin.image[i] = r.list<FuncImage>([&] {
            FuncImage img;
            img.code =
                r.list<MachInstr>([&] { return readMachInstr(r); });
            img.instrOff = r.list<uint32_t>([&] { return r.u32(); });
            img.frame = readFrame(r);
            img.blockStart = r.list<uint32_t>([&] { return r.u32(); });
            img.migChecks = r.list<uint32_t>([&] { return r.u32(); });
            return img;
        });
        bin.funcAddr[i] = r.list<uint64_t>([&] { return r.u64(); });
        bin.textEnd[i] = r.u64();
        auto sites = r.list<CallSiteInfo>([&] { return readSite(r); });
        for (CallSiteInfo &s : sites)
            bin.callSite[i].emplace(s.id, std::move(s));
        if (bin.image[i].size() != bin.ir.functions.size() ||
            bin.funcAddr[i].size() != bin.ir.functions.size())
            fatal("binary image/function table size mismatch");
    }
    bin.globalAddr = r.list<uint64_t>([&] { return r.u64(); });
    bin.dataEnd = r.u64();
    bin.tlsOff = r.list<uint64_t>([&] { return r.u64(); });
    bin.tlsSize = r.u64();
    bin.tlsInit = r.blob();
    if (!r.done())
        fatal("trailing garbage after binary payload");
    return bin;
}

void
saveBinaryFile(const MultiIsaBinary &bin, const std::string &path)
{
    std::vector<uint8_t> bytes = saveBinary(bin);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("cannot open '%s' for writing", path.c_str());
    size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (written != bytes.size())
        fatal("short write to '%s'", path.c_str());
}

MultiIsaBinary
loadBinaryFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("cannot open '%s' for reading", path.c_str());
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<uint8_t> bytes(static_cast<size_t>(size));
    size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (got != bytes.size())
        fatal("short read from '%s'", path.c_str());
    return loadBinary(bytes);
}

} // namespace xisa
