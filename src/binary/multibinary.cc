#include "binary/multibinary.hh"

#include <algorithm>

#include "util/logging.hh"

namespace xisa {

uint64_t
MultiIsaBinary::codeAddr(IsaId isa, uint32_t funcId,
                         uint32_t instrIdx) const
{
    int i = static_cast<int>(isa);
    if (funcId >= funcAddr[i].size())
        panic("codeAddr: bad function id %u", funcId);
    const IRFunction &f = ir.func(funcId);
    if (f.isBuiltin()) {
        XISA_CHECK(instrIdx == 0, "builtins have a single code location");
        return funcAddr[i][funcId];
    }
    const FuncImage &img = image[i][funcId];
    if (instrIdx >= img.instrOff.size())
        panic("codeAddr: instr %u out of range in f%u", instrIdx, funcId);
    return funcAddr[i][funcId] + img.instrOff[instrIdx];
}

CodeLoc
MultiIsaBinary::resolveCode(IsaId isa, uint64_t vaddr) const
{
    int i = static_cast<int>(isa);
    if (vaddr >= vm::kRuntimeBase && vaddr < vm::kTextBase) {
        uint64_t id = (vaddr - vm::kRuntimeBase) / vm::kRuntimeStride;
        if (id >= ir.functions.size() || !ir.functions[id].isBuiltin() ||
            funcAddr[i][id] != vaddr)
            fatal("resolveCode: 0x%llx is not a builtin entry",
                  static_cast<unsigned long long>(vaddr));
        return {static_cast<uint32_t>(id), 0};
    }
    // Binary search over (sorted, disjoint) function images.
    // funcAddr entries for builtins live below kTextBase so user
    // functions form a contiguous ascending run.
    uint32_t best = UINT32_MAX;
    uint64_t bestAddr = 0;
    for (uint32_t fid = 0; fid < funcAddr[i].size(); ++fid) {
        if (ir.functions[fid].isBuiltin())
            continue;
        uint64_t a = funcAddr[i][fid];
        if (a <= vaddr && a >= bestAddr &&
            vaddr < a + image[i][fid].codeBytes()) {
            best = fid;
            bestAddr = a;
        }
    }
    if (best == UINT32_MAX)
        fatal("resolveCode: 0x%llx is not in %s text",
              static_cast<unsigned long long>(vaddr), isaName(isa));
    const FuncImage &img = image[i][best];
    uint32_t off = static_cast<uint32_t>(vaddr - funcAddr[i][best]);
    auto it = std::lower_bound(img.instrOff.begin(), img.instrOff.end(),
                               off);
    if (it == img.instrOff.end() || *it != off)
        fatal("resolveCode: 0x%llx is not an instruction boundary",
              static_cast<unsigned long long>(vaddr));
    return {best, static_cast<uint32_t>(it - img.instrOff.begin())};
}

const CallSiteInfo &
MultiIsaBinary::site(IsaId isa, uint32_t id) const
{
    const auto &map = callSite[static_cast<int>(isa)];
    auto it = map.find(id);
    if (it == map.end())
        fatal("no call-site metadata for site %u on %s", id,
              isaName(isa));
    return it->second;
}

std::vector<MultiIsaBinary::DataImage>
MultiIsaBinary::buildDataImages() const
{
    // One image for rodata, one for data+bss. Globals were laid out in
    // ascending address order by the layout engine.
    DataImage ro, rw;
    ro.base = vm::kRodataBase;
    rw.base = vm::kDataBase;
    for (const GlobalVar &g : ir.globals) {
        if (g.isTls)
            continue;
        DataImage &img = g.isConst ? ro : rw;
        uint64_t off = globalAddr[g.id] - img.base;
        uint64_t end = off + g.size;
        if (img.bytes.size() < end)
            img.bytes.resize(end, 0);
        std::copy(g.init.begin(), g.init.end(), img.bytes.begin() + off);
    }
    std::vector<DataImage> out;
    if (!ro.bytes.empty())
        out.push_back(std::move(ro));
    if (!rw.bytes.empty())
        out.push_back(std::move(rw));
    return out;
}

uint64_t
MultiIsaBinary::textBytes(IsaId isa) const
{
    uint64_t total = 0;
    for (const FuncImage &img : image[static_cast<int>(isa)])
        total += img.codeBytes();
    return total;
}

CodeMap::CodeMap(const MultiIsaBinary &bin, IsaId isa)
    : bin_(&bin), isa_(isa)
{
    int i = static_cast<int>(isa);
    for (uint32_t fid = 0; fid < bin.funcAddr[i].size(); ++fid) {
        Entry e;
        e.addr = bin.funcAddr[i][fid];
        e.funcId = fid;
        e.size = bin.ir.functions[fid].isBuiltin()
                     ? 0
                     : bin.image[i][fid].codeBytes();
        entries_.push_back(e);
    }
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry &a, const Entry &b) { return a.addr < b.addr; });
}

CodeLoc
CodeMap::resolve(uint64_t vaddr) const
{
    XISA_CHECK(bin_, "CodeMap used before initialization");
    auto it = std::upper_bound(
        entries_.begin(), entries_.end(), vaddr,
        [](uint64_t v, const Entry &e) { return v < e.addr; });
    if (it == entries_.begin())
        fatal("CodeMap: 0x%llx below all code",
              static_cast<unsigned long long>(vaddr));
    const Entry &e = *--it;
    if (e.size == 0) {
        if (vaddr != e.addr)
            fatal("CodeMap: 0x%llx is not a builtin entry",
                  static_cast<unsigned long long>(vaddr));
        return {e.funcId, 0};
    }
    if (vaddr >= e.addr + e.size)
        fatal("CodeMap: 0x%llx past the end of f%u",
              static_cast<unsigned long long>(vaddr), e.funcId);
    const FuncImage &img = bin_->image[static_cast<int>(isa_)][e.funcId];
    uint32_t off = static_cast<uint32_t>(vaddr - e.addr);
    auto oit = std::lower_bound(img.instrOff.begin(), img.instrOff.end(),
                                off);
    if (oit == img.instrOff.end() || *oit != off)
        fatal("CodeMap: 0x%llx is mid-instruction",
              static_cast<unsigned long long>(vaddr));
    return {e.funcId, static_cast<uint32_t>(oit - img.instrOff.begin())};
}

bool
CodeMap::contains(uint64_t vaddr) const
{
    auto it = std::upper_bound(
        entries_.begin(), entries_.end(), vaddr,
        [](uint64_t v, const Entry &e) { return v < e.addr; });
    if (it == entries_.begin())
        return false;
    const Entry &e = *--it;
    if (e.size == 0)
        return vaddr == e.addr;
    if (vaddr >= e.addr + e.size)
        return false;
    const FuncImage &img = bin_->image[static_cast<int>(isa_)][e.funcId];
    uint32_t off = static_cast<uint32_t>(vaddr - e.addr);
    return std::binary_search(img.instrOff.begin(), img.instrOff.end(),
                              off);
}

} // namespace xisa
