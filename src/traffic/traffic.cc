#include "traffic/traffic.hh"

#include <algorithm>
#include <cmath>

#include "compiler/compile.hh"
#include "exp/sweep.hh"
#include "os/os.hh"
#include "util/logging.hh"
#include "workload/workloads.hh"

namespace xisa::traffic {

namespace {

/**
 * Scale from kernel-op cost to request cost, the sched-layer
 * JobProfileTable idiom (kTimeScale): the REDIS kernel's hash ops are
 * toy-sized, so one calibrated op stands for the full parse +
 * hash-table + reply work of one production request. 1000x lands the
 * Xeno GET in the tens of microseconds, where a real in-memory store's
 * end-to-end service time lives.
 */
constexpr double kServiceScale = 1000.0;

/**
 * Disruption costs (migration pause, failover outage) scale less than
 * per-op costs: the transfer mostly pre-copies while the shard keeps
 * serving, so only the stop-and-copy tail shows up as pause.
 */
constexpr double kDisruptScale = 100.0;

constexpr double kLn2 = 0.6931471805599453;

} // namespace

double
detLog(double x)
{
    // x = m * 2^e with m in [1/sqrt2, sqrt2): atanh series in
    // z = (m-1)/(m+1), |z| <= 0.1716, truncated at z^15 (~1e-14 rel).
    int e = 0;
    double m = std::frexp(x, &e);
    if (m < 0.70710678118654752440) {
        m *= 2.0;
        e -= 1;
    }
    const double z = (m - 1.0) / (m + 1.0);
    const double z2 = z * z;
    double term = z;
    double sum = 0.0;
    for (int k = 1; k <= 15; k += 2) {
        sum += term / k;
        term *= z2;
    }
    return 2.0 * sum + static_cast<double>(e) * kLn2;
}

double
detExp(double x)
{
    // x = k*ln2 + r with |r| <= ln2/2: Taylor in r, then ldexp.
    const double k = std::floor(x / kLn2 + 0.5);
    const double r = x - k * kLn2;
    double term = 1.0;
    double sum = 1.0;
    for (int i = 1; i <= 14; ++i) {
        term *= r / i;
        sum += term;
    }
    return std::ldexp(sum, static_cast<int>(k));
}

double
detPow(double x, double y)
{
    if (y == 0.0 || x == 1.0)
        return 1.0;
    return detExp(y * detLog(x));
}

uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

// --- ZipfGenerator --------------------------------------------------

ZipfGenerator::ZipfGenerator(int64_t n, double theta)
    : n_(n > 0 ? n : 1), theta_(theta)
{
    if (theta_ <= 0.0 || n_ <= 1)
        return;
    for (int64_t i = 1; i <= n_; ++i)
        zetan_ += 1.0 / detPow(static_cast<double>(i), theta_);
    zetaHalf_ = detPow(0.5, theta_);
    const double zeta2 = 1.0 + zetaHalf_;
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - detPow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
}

int64_t
ZipfGenerator::sample(Rng &rng) const
{
    if (theta_ <= 0.0 || n_ <= 1)
        return static_cast<int64_t>(
            rng.below(static_cast<uint64_t>(n_)));
    // Gray et al.'s rejection-free inverse: one uniform per sample.
    const double u = rng.uniform();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + zetaHalf_)
        return 1;
    int64_t k = static_cast<int64_t>(
        static_cast<double>(n_) *
        detPow(eta_ * u - eta_ + 1.0, alpha_));
    if (k < 0)
        k = 0;
    return k >= n_ ? n_ - 1 : k;
}

// --- Stream generation ----------------------------------------------

std::vector<Request>
generateRequests(const TrafficConfig &cfg)
{
    std::vector<Request> out;
    const double rate = cfg.totalRate();
    if (rate <= 0.0 || cfg.durationSeconds <= 0.0 || cfg.shards < 1 ||
        cfg.keySpace < 1)
        return out;
    out.reserve(static_cast<size_t>(rate * cfg.durationSeconds * 1.1) +
                16);

    Rng rng(cfg.seed);
    ZipfGenerator zipf(cfg.keySpace, cfg.zipfSkew);
    const uint64_t keySpace = static_cast<uint64_t>(cfg.keySpace);
    const uint64_t shards = static_cast<uint64_t>(cfg.shards);
    double t = 0.0;
    for (;;) {
        // Poisson arrivals: exponential inter-arrival by inverse CDF.
        t += -detLog(1.0 - rng.uniform()) / rate;
        if (t >= cfg.durationSeconds)
            break;
        Request r;
        r.arrival = t;
        // Scramble the popularity rank so hot keys spread over the key
        // space (and thus over shards) instead of clustering at 0.
        const uint64_t rank = static_cast<uint64_t>(zipf.sample(rng));
        r.key = static_cast<uint32_t>(mix64(rank) % keySpace);
        r.shard = static_cast<uint16_t>(mix64(r.key) % shards);
        r.isGet = rng.uniform() < cfg.getFraction;
        r.decile = static_cast<uint8_t>(rank * 10 / keySpace);
        out.push_back(r);
    }
    return out;
}

// --- ServingProfile -------------------------------------------------

ServingProfile
ServingProfile::synthetic()
{
    ServingProfile p;
    const size_t xeno = static_cast<size_t>(IsaId::Xeno64);
    const size_t aether = static_cast<size_t>(IsaId::Aether64);
    p.getSeconds[xeno] = 25e-6;
    p.setSeconds[xeno] = 40e-6;
    p.getSeconds[aether] = 75e-6;
    p.setSeconds[aether] = 120e-6;
    p.migrateSeconds = 2e-3;
    p.failoverSeconds = 20e-3;
    p.coldFactor = 1.0;
    p.coldRequests = 256;
    return p;
}

ServingProfile
ServingProfile::calibrate()
{
    ServingProfile p = synthetic();
    Module mod = buildWorkload(WorkloadId::REDIS, ProblemClass::A);
    MultiIsaBinary bin = compileModule(mod);
    const double ops = 16384.0 * classScale(ProblemClass::A);

    const NodeSpec presets[2] = {makeXenoServer(), makeAetherServer()};
    for (const NodeSpec &nspec : presets) {
        OsRunResult r = exp::runSingleNode(bin, nspec);
        const double perOp =
            r.makespanSeconds / ops * kServiceScale;
        const size_t i = static_cast<size_t>(nspec.isa);
        // The kernel interleaves GETs and SETs; split the measured
        // average with a fixed ratio (SETs write slot + value).
        p.getSeconds[i] = perOp * 0.85;
        p.setSeconds[i] = perOp * 1.35;
    }

    // One real cross-ISA live migration of the serving binary: the
    // pause between trapping at a migration point and resuming on the
    // other ISA is what a shard sees when moved mid-traffic.
    ReplicatedOS os(bin, OsConfig::dualServer());
    os.load(0);
    bool fired = false;
    os.onQuantum = [&](ReplicatedOS &self) {
        if (fired || self.totalInstrs() < 100000)
            return;
        fired = true;
        self.migrateProcess(1);
    };
    os.run();
    double pause = 0.0;
    for (const MigrationEvent &ev : os.migrations())
        pause += ev.resumeTime - ev.trapTime;
    if (pause > 0.0)
        p.migrateSeconds = pause * kDisruptScale;
    // Losing the node costs roughly an order of magnitude more than a
    // planned move: failure detection, directory reconstruction, and
    // journal replay on the survivor (the PR 5 recovery path).
    p.failoverSeconds = p.migrateSeconds * 10.0;
    return p;
}

// --- ServingSim -----------------------------------------------------

ServingSim::ServingSim(ServingConfig cfg, ServingProfile prof,
                       obs::StatRegistry &reg,
                       const std::string &prefix)
    : cfg_(std::move(cfg)), prof_(std::move(prof))
{
    reg.attach(prefix + ".requests", requests_);
    reg.attach(prefix + ".gets", gets_);
    reg.attach(prefix + ".sets", sets_);
    reg.attach(prefix + ".slo_violations", sloViolations_);
    reg.attach(prefix + ".migrations", migrations_);
    reg.attach(prefix + ".failovers", failovers_);
    if (!cfg_.brownouts.empty()) {
        reg.attach(prefix + ".shed", shed_);
        reg.attach(prefix + ".slo_violations_degraded",
                   violationsDegraded_);
    }
    reg.attach(prefix + ".latency_us", latencyUs_);
    nodeServed_.reserve(cfg_.nodes.size());
    for (size_t i = 0; i < cfg_.nodes.size(); ++i) {
        nodeServed_.emplace_back();
        reg.attach(prefix + ".node" + std::to_string(i) + ".served",
                   nodeServed_.back());
    }
}

ServingResult
ServingSim::run(const std::vector<Request> &reqs)
{
    const size_t n = reqs.size();
    const int shards = static_cast<int>(cfg_.placement.size());
    const int numNodes = static_cast<int>(cfg_.nodes.size());
    if (shards < 1 || numNodes < 1)
        panic("ServingSim: empty placement or node list");
    for (int nd : cfg_.placement)
        if (nd < 0 || nd >= numNodes)
            panic("ServingSim: placement references node %d", nd);
    if (!cfg_.nodeRack.empty() &&
        cfg_.nodeRack.size() != cfg_.nodes.size())
        panic("ServingSim: nodeRack has %zu entries for %zu nodes",
              cfg_.nodeRack.size(), cfg_.nodes.size());
    for (const BrownoutWindow &w : cfg_.brownouts)
        if (w.end < w.start || w.shedDeciles < 1 || w.shedDeciles > 10)
            panic("ServingSim: bad brownout window [%g, %g) "
                  "shed_deciles=%d",
                  w.start, w.end, w.shedDeciles);

    std::vector<std::vector<uint32_t>> perShard(shards);
    for (size_t i = 0; i < n; ++i)
        perShard[reqs[i].shard].push_back(static_cast<uint32_t>(i));

    // Per-shard schedule: this shard's migrations plus every crash
    // (crashes only bite if the shard sits on the node when it dies),
    // sorted by time with a deterministic tie-break.
    struct Event {
        double time = 0;
        bool isCrash = false;
        int node = 0;       ///< migration destination / crashed node
        double down = 0;    ///< crash only
    };
    std::vector<std::vector<Event>> schedule(shards);
    for (const ShardMigration &m : cfg_.migrations) {
        if (m.shard < 0 || m.shard >= shards || m.node < 0 ||
            m.node >= numNodes)
            panic("ServingSim: bad migration shard=%d node=%d",
                  m.shard, m.node);
        schedule[m.shard].push_back({m.time, false, m.node, 0});
    }
    for (const NodeCrash &c : cfg_.crashes) {
        if (c.node < 0 || c.node >= numNodes)
            panic("ServingSim: crash references node %d", c.node);
        for (int s = 0; s < shards; ++s)
            schedule[s].push_back(
                {c.time, true, c.node, c.downSeconds});
    }
    for (std::vector<Event> &evs : schedule)
        std::stable_sort(evs.begin(), evs.end(),
                         [](const Event &a, const Event &b) {
                             if (a.time != b.time)
                                 return a.time < b.time;
                             if (a.isCrash != b.isCrash)
                                 return a.isCrash; // crashes first
                             return a.node < b.node;
                         });

    auto alive = [&](int nd, double t) {
        for (const NodeCrash &c : cfg_.crashes)
            if (c.node == nd && t >= c.time &&
                t < c.time + c.downSeconds)
                return false;
        return true;
    };
    // Pure function of (arrival, decile) and the config, so shedding
    // decisions are identical on every worker layout.
    auto shedNow = [&](const Request &r) {
        for (const BrownoutWindow &w : cfg_.brownouts)
            if (r.arrival >= w.start && r.arrival < w.end &&
                static_cast<int>(r.decile) >= 10 - w.shedDeciles)
                return true;
        return false;
    };

    // Simulate the shards in parallel. Every per-request quantity is a
    // pure function of the stream and the config, and the workers
    // write into disjoint slots of the index-ordered arrays, so the
    // worker count cannot change a single byte of the result.
    std::vector<double> latSeconds(n);
    std::vector<double> finishAt(n);
    std::vector<int32_t> servedOn(n);
    struct ShardAgg {
        uint64_t migrations = 0, failovers = 0;
    };
    std::vector<ShardAgg> aggs =
        exp::runSweep(static_cast<size_t>(shards), [&](size_t s) {
            ShardAgg agg;
            int node = cfg_.placement[s];
            double clock = 0.0;
            int coldLeft = 0;
            const std::vector<Event> &evs = schedule[s];
            size_t ei = 0;

            auto apply = [&](const Event &ev) {
                if (ev.isCrash) {
                    if (ev.node != node)
                        return;
                    // Failure-domain-aware failover: the dead node's
                    // rack is usually failing with it (ToR or PDU), so
                    // prefer the lowest-index survivor OUTSIDE that
                    // rack and only fall back to a rack-mate when no
                    // other rack has capacity. An empty nodeRack map
                    // keeps the legacy rack-blind scan byte-for-byte.
                    const int deadRack = cfg_.nodeRack.empty()
                                             ? -1
                                             : cfg_.nodeRack[static_cast<
                                                   size_t>(ev.node)];
                    int survivor = -1;
                    if (deadRack >= 0) {
                        for (int cand = 0; cand < numNodes; ++cand) {
                            if (cand != ev.node &&
                                cfg_.nodeRack[static_cast<size_t>(
                                    cand)] != deadRack &&
                                alive(cand, ev.time)) {
                                survivor = cand;
                                break;
                            }
                        }
                    }
                    if (survivor < 0) {
                        for (int cand = 0; cand < numNodes; ++cand) {
                            if (cand != ev.node &&
                                alive(cand, ev.time)) {
                                survivor = cand;
                                break;
                            }
                        }
                    }
                    if (survivor >= 0) {
                        clock = std::max(clock, ev.time) +
                                prof_.failoverSeconds;
                        node = survivor;
                    } else {
                        // No survivor: wait out the outage in place.
                        clock = std::max(clock, ev.time + ev.down) +
                                prof_.failoverSeconds;
                    }
                    coldLeft = prof_.coldRequests;
                    ++agg.failovers;
                } else {
                    if (ev.node == node || !alive(ev.node, ev.time))
                        return;
                    clock = std::max(clock, ev.time) +
                            prof_.migrateSeconds;
                    node = ev.node;
                    coldLeft = prof_.coldRequests;
                    ++agg.migrations;
                }
            };
            auto serviceSeconds = [&](const Request &r) {
                const size_t isa =
                    static_cast<size_t>(cfg_.nodes[node].isa);
                double base = r.isGet ? prof_.getSeconds[isa]
                                      : prof_.setSeconds[isa];
                // Key-dependent spread (value size / probe length):
                // 0.75x .. 1.24x, fixed per (key, op).
                const uint64_t h = mix64(
                    static_cast<uint64_t>(r.key) * 2 +
                    (r.isGet ? 1 : 0));
                base *= 0.75 +
                        static_cast<double>(h & 63) / 128.0;
                if (coldLeft > 0)
                    base *= 1.0 + prof_.coldFactor *
                                      static_cast<double>(coldLeft) /
                                      prof_.coldRequests;
                return base;
            };

            for (uint32_t idx : perShard[s]) {
                const Request &r = reqs[idx];
                if (shedNow(r)) {
                    // Shed at the door: no service, no queueing, and
                    // the shard clock stays put. Events up to the
                    // arrival still fire so node state keeps moving.
                    while (ei < evs.size() &&
                           evs[ei].time <= r.arrival)
                        apply(evs[ei++]);
                    latSeconds[idx] = 0.0;
                    finishAt[idx] = r.arrival;
                    servedOn[idx] = -1;
                    continue;
                }
                for (;;) {
                    double start = std::max(r.arrival, clock);
                    while (ei < evs.size() &&
                           evs[ei].time <= start) {
                        apply(evs[ei++]);
                        start = std::max(r.arrival, clock);
                    }
                    const double done = start + serviceSeconds(r);
                    if (ei < evs.size() && evs[ei].time < done) {
                        // The event preempts the in-flight request:
                        // for a crash the work is lost; for a live
                        // migration the request is replayed on the
                        // destination after the pause. Either way its
                        // latency keeps growing until it completes.
                        apply(evs[ei++]);
                        continue;
                    }
                    clock = done;
                    if (coldLeft > 0)
                        --coldLeft;
                    latSeconds[idx] = done - r.arrival;
                    finishAt[idx] = done;
                    servedOn[idx] = node;
                    break;
                }
            }
            return agg;
        });

    // Accounting in global arrival order: histogram fills and counter
    // bumps happen in one fixed sequence regardless of worker count.
    ServingResult res;
    res.requests = n;
    res.servedByNode.assign(cfg_.nodes.size(), 0);
    res.servedByNodeAfterCrash.assign(cfg_.nodes.size(), 0);
    for (const ShardAgg &a : aggs) {
        res.migrations += a.migrations;
        res.failovers += a.failovers;
    }
    migrations_.add(res.migrations);
    failovers_.add(res.failovers);

    double firstCrash = -1.0;
    for (const NodeCrash &c : cfg_.crashes)
        if (firstCrash < 0.0 || c.time < firstCrash)
            firstCrash = c.time;

    auto inBrownout = [&](double t) {
        for (const BrownoutWindow &w : cfg_.brownouts)
            if (t >= w.start && t < w.end)
                return true;
        return false;
    };

    for (size_t i = 0; i < n; ++i) {
        ++requests_;
        if (servedOn[i] < 0) {
            // Shed at the door: counted as a request (and as shed),
            // but it never ran, so it contributes no latency sample,
            // no GET/SET split, and no SLO violation.
            ++shed_;
            ++res.shed;
            res.violationsByDecile[i * 10 / (n ? n : 1)] =
                res.sloViolations;
            continue;
        }
        const double us = latSeconds[i] * 1e6;
        latencyUs_.add(us);
        if (reqs[i].isGet) {
            ++gets_;
            ++res.gets;
        } else {
            ++sets_;
            ++res.sets;
        }
        if (us > cfg_.sloUs) {
            ++sloViolations_;
            ++res.sloViolations;
            if (inBrownout(reqs[i].arrival)) {
                ++violationsDegraded_;
                ++res.violationsDegraded;
            }
        }
        const int nd = servedOn[i];
        ++nodeServed_[static_cast<size_t>(nd)];
        ++res.servedByNode[static_cast<size_t>(nd)];
        if (firstCrash >= 0.0 && finishAt[i] > firstCrash)
            ++res.servedByNodeAfterCrash[static_cast<size_t>(nd)];
        res.violationsByDecile[i * 10 / (n ? n : 1)] =
            res.sloViolations;
    }
    for (size_t d = 1; d < res.violationsByDecile.size(); ++d)
        res.violationsByDecile[d] = std::max(
            res.violationsByDecile[d], res.violationsByDecile[d - 1]);

    res.p50Us = latencyUs_.percentile(0.5);
    res.p99Us = latencyUs_.percentile(0.99);
    res.p999Us = latencyUs_.percentile(0.999);
    res.maxUs = latencyUs_.max();
    return res;
}

} // namespace xisa::traffic
