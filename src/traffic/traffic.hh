/**
 * @file
 * Open-loop traffic generation and serving simulation for the REDIS
 * scenario (ROADMAP item 2): the paper's heterogeneous-ISA story told
 * in SLO terms instead of makespan.
 *
 * The generator produces one seeded request stream -- Poisson
 * inter-arrivals, Zipf key popularity, a configurable GET/SET mix --
 * and shards it across REDIS kernel instances by key hash. ServingSim
 * then replays the stream against a node placement: each shard is a
 * single-server FIFO queue whose per-request service cost comes from a
 * ServingProfile calibrated by executing the real REDIS workload
 * through the interpreter on each ISA, and whose live-migration pause
 * is measured from a real cross-ISA ReplicatedOS migration of that
 * binary. Shards can be live-migrated between nodes mid-traffic and
 * nodes can crash (shards fail over to the lowest-index survivor), so
 * tail latency under "migrate under load" can be compared against a
 * static placement.
 *
 * Determinism is the contract: the stream is generated sequentially
 * from one Rng, shards simulate independently (runSweep-parallel, but
 * every per-request quantity depends only on the stream and the
 * config), and the final accounting pass -- histogram fills, SLO
 * counters -- runs in global request order. Same seed therefore means
 * byte-identical stats output regardless of XISA_BENCH_THREADS. The
 * few transcendentals involved (exp/log/pow for the samplers) are
 * implemented here from IEEE-exact primitives instead of libm, so the
 * bytes also hold across platforms and libm versions.
 */

#ifndef XISA_TRAFFIC_TRAFFIC_HH
#define XISA_TRAFFIC_TRAFFIC_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "machine/node.hh"
#include "obs/registry.hh"
#include "util/rng.hh"

namespace xisa::traffic {

/** Natural log from IEEE-exact primitives (frexp + atanh series);
 *  bit-reproducible across platforms, ~1e-14 relative error. x > 0. */
double detLog(double x);
/** exp(x), same contract as detLog. */
double detExp(double x);
/** x^y for x > 0, via detExp(y * detLog(x)). */
double detPow(double x, double y);

/** SplitMix64 finalizer: the keyed hash for sharding and per-key
 *  service-cost spread. */
uint64_t mix64(uint64_t x);

/** Knobs of the open-loop generator ([traffic] in a serving conf). */
struct TrafficConfig {
    uint64_t seed = 42;
    /** Simulated client population; the aggregate arrival process is
     *  Poisson at clients * requestHz (open loop: arrivals never wait
     *  for completions). */
    int64_t clients = 200000;
    double requestHz = 0.5; ///< per-client request rate, Hz
    double durationSeconds = 2.0;
    double zipfSkew = 0.99; ///< YCSB theta; 0 = uniform keys
    int64_t keySpace = 65536;
    double getFraction = 0.9; ///< rest are SETs
    int shards = 8;           ///< REDIS kernel instances

    double totalRate() const
    {
        return static_cast<double>(clients) * requestHz;
    }
};

/** One generated request. */
struct Request {
    double arrival = 0;  ///< sim-clock seconds
    uint32_t key = 0;    ///< scrambled key in [0, keySpace)
    uint16_t shard = 0;  ///< mix64(key) % shards
    bool isGet = true;
    /** Popularity decile of the key's Zipf rank: 0 = hottest tenth of
     *  the key space, 9 = coldest. Brownout shedding drops the
     *  coldest deciles first. */
    uint8_t decile = 0;
};

/**
 * YCSB-style Zipf(theta) sampler over ranks [0, n): rank 0 is the
 * hottest. theta in [0, 1); theta = 0 degenerates to uniform.
 */
class ZipfGenerator
{
  public:
    ZipfGenerator(int64_t n, double theta);
    int64_t sample(Rng &rng) const;

  private:
    int64_t n_ = 1;
    double theta_ = 0;
    double alpha_ = 0, zetan_ = 0, eta_ = 0, zetaHalf_ = 0;
};

/** Generate the full request stream, sorted by arrival time. */
std::vector<Request> generateRequests(const TrafficConfig &cfg);

/**
 * Per-ISA service costs of one REDIS request plus the disruption costs
 * of moving or losing a shard. calibrate() measures them by running
 * the real workload through the full stack; synthetic() returns fixed
 * numbers with the same shape for fast unit tests.
 */
struct ServingProfile {
    /** Seconds to serve one GET/SET, indexed by IsaId. */
    std::array<double, kNumIsas> getSeconds{};
    std::array<double, kNumIsas> setSeconds{};
    /** Pause a shard sees while live-migrating between ISAs. */
    double migrateSeconds = 0;
    /** Outage from losing a shard's node: failure detection, directory
     *  reconstruction and journal replay on the survivor (PR 5). */
    double failoverSeconds = 0;
    /** Peak extra service cost right after a move (cold pages/caches
     *  paged in on demand by the hDSM), decaying linearly to zero over
     *  coldRequests requests. */
    double coldFactor = 1.0;
    int coldRequests = 256;

    /**
     * Execute REDIS class A through the interpreter on each ISA for
     * the per-op costs, and measure migrateSeconds from a real
     * cross-ISA ReplicatedOS live migration of that binary.
     * Deterministic (pure simulation); one-time cost of a few
     * interpreter runs.
     */
    static ServingProfile calibrate();
    /** Fixed plausible values (Xeno ~25 us GET, Aether ~3x); for unit
     *  tests that should not pay for calibration. */
    static ServingProfile synthetic();
};

/** Scripted live migration of one shard. */
struct ShardMigration {
    int shard = 0;
    double time = 0; ///< sim-clock seconds
    int node = 0;    ///< destination
};

/** Scripted node crash. */
struct NodeCrash {
    int node = 0;
    double time = 0;
    double downSeconds = 30.0;
};

/**
 * One brownout window: degraded-mode serving while a failure domain
 * is out. Inside [start, end) every shard sheds requests for the
 * coldest `shedDeciles` tenths of the key popularity distribution
 * (lowest-decile keys first: a dropped cold GET costs one client a
 * miss; a queue full of cold keys costs every hot key its SLO).
 * Shed requests complete instantly with no service, are counted in
 * ServingResult::shed, and never count as SLO violations; violations
 * of requests that do run inside a window are additionally tagged in
 * violationsDegraded so degraded-mode SLO attainment is accounted
 * separately from steady-state.
 */
struct BrownoutWindow {
    double start = 0;
    double end = 0;
    /** Coldest popularity deciles to shed, 1..10. */
    int shedDeciles = 1;
};

/** A serving scenario: nodes, placement, and the event schedule. */
struct ServingConfig {
    std::vector<NodeSpec> nodes;
    /** shard -> node index; size must equal the stream's shard count. */
    std::vector<int> placement;
    /** node -> rack index (failure-domain map). Empty = rack-blind
     *  legacy failover, byte-identical to before the map existed;
     *  otherwise size must equal nodes.size() and crash failover
     *  prefers a survivor OUTSIDE the dead node's rack (the rest of
     *  the domain is usually failing with it). */
    std::vector<int> nodeRack;
    std::vector<ShardMigration> migrations; ///< applied in time order
    std::vector<NodeCrash> crashes;
    /** Degraded-mode windows (typically spanning a domain outage). */
    std::vector<BrownoutWindow> brownouts;
    double sloUs = 1000.0;
};

/** Aggregate outcome of one scenario replay. */
struct ServingResult {
    uint64_t requests = 0, gets = 0, sets = 0;
    uint64_t sloViolations = 0;
    /** Violations among requests that arrived inside a brownout
     *  window (degraded-mode attainment, accounted separately;
     *  included in sloViolations too). */
    uint64_t violationsDegraded = 0;
    /** Requests shed by brownout windows (never SLO violations). */
    uint64_t shed = 0;
    uint64_t migrations = 0, failovers = 0;
    double p50Us = 0, p99Us = 0, p999Us = 0, maxUs = 0;
    /** Cumulative SLO violations after each tenth of the stream (in
     *  arrival order); monotone by construction, pinned by tests. */
    std::array<uint64_t, 10> violationsByDecile{};
    /** Requests served per node, total and after the first crash. */
    std::vector<uint64_t> servedByNode;
    std::vector<uint64_t> servedByNodeAfterCrash;
};

/**
 * Replays a request stream against a ServingConfig. Shards simulate in
 * parallel (runSweep); accounting and histogram fills run in global
 * request order, so stats bytes are independent of the worker count.
 * Stats register on `reg` under `prefix` (e.g. "serving.static").
 */
class ServingSim
{
  public:
    ServingSim(ServingConfig cfg, ServingProfile prof,
               obs::StatRegistry &reg, const std::string &prefix);

    ServingResult run(const std::vector<Request> &reqs);

    const ServingConfig &config() const { return cfg_; }

  private:
    ServingConfig cfg_;
    ServingProfile prof_;
    obs::Counter requests_, gets_, sets_;
    obs::Counter sloViolations_, migrations_, failovers_;
    /** Attached only when brownout windows are configured, so a
     *  window-free scenario's stats output stays byte-identical. */
    obs::Counter shed_, violationsDegraded_;
    obs::Histogram latencyUs_;
    std::vector<obs::Counter> nodeServed_;
};

} // namespace xisa::traffic

#endif // XISA_TRAFFIC_TRAFFIC_HH
