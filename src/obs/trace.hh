/**
 * @file
 * Low-overhead event tracer with Chrome trace-event export.
 *
 * Instrumented layers (interpreter, hDSM, OS migration service, stack
 * transformation, cluster scheduler) record scoped spans (B/E pairs)
 * and instant events onto per-track ring buffers. A track is one
 * timeline row in the viewer -- one simulated thread, machine, or job.
 * Timestamps are VIRTUAL: simulated seconds derived from core cycle
 * counts, so a full migration (migpoint hit -> stack transform ->
 * thread-migration message -> DSM page faults -> resume) renders as one
 * coherent timeline in chrome://tracing or https://ui.perfetto.dev.
 *
 * Cost model:
 *  - compiled out entirely when built with -DXISA_TRACE=OFF (the
 *    instrumentation macros expand to nothing);
 *  - compiled in but disabled (the default at startup): one predictable
 *    branch on `gTraceEnabled` per potential event;
 *  - enabled: one ring-buffer store per event. Rings are fixed size and
 *    overwrite their oldest events, so tracing never allocates
 *    unboundedly under heavy traffic.
 *
 * Because instrumented layers sit below the code that knows "whose time
 * is it" (e.g. a DSM fault doesn't know which thread faulted), the OS
 * maintains an ambient TraceCursor -- current track + virtual time --
 * that lower layers read and advance. The simulator is single-threaded;
 * the cursor and rings are process-global and unsynchronized.
 */

#ifndef XISA_OBS_TRACE_HH
#define XISA_OBS_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

/** Compile-time gate for the instrumentation macros (CMake -DXISA_TRACE).
 *  The Tracer itself is always compiled so tools and tests can drive it
 *  directly in either configuration. */
#ifndef XISA_TRACE
#define XISA_TRACE 1
#endif

namespace xisa::obs {

/** One recorded event. `cat`/`name` must outlive the tracer (string
 *  literals, or strings interned via obs::intern()). */
struct TraceEvent {
    double tsSeconds = 0;
    const char *cat = nullptr;
    const char *name = nullptr;
    char ph = 'I'; ///< 'B' begin, 'E' end, 'I' instant, 'C' counter
    double value = 0; ///< counter events only
};

/** The runtime gate the macros branch on; flip via setTraceEnabled(). */
extern bool gTraceEnabled;

inline bool
traceEnabled()
{
    return gTraceEnabled;
}

void setTraceEnabled(bool on);

/** Intern a dynamic string so TraceEvent can hold a stable pointer. */
const char *intern(const std::string &s);

/** Ambient track + virtual-time position (see file comment). */
struct TraceCursor {
    int track = 0;
    double tsSeconds = 0;
};

TraceCursor &traceCursor();

inline void
setTraceCursor(int track, double tsSeconds)
{
    TraceCursor &c = traceCursor();
    c.track = track;
    c.tsSeconds = tsSeconds;
}

/** Event recorder: per-track ring buffers + Chrome JSON export. */
class Tracer
{
  public:
    static Tracer &global();

    /** Events retained per track (ring size). */
    void setCapacityPerTrack(size_t n);

    void begin(int track, const char *cat, const char *name,
               double tsSeconds);
    void end(int track, double tsSeconds);
    void instant(int track, const char *cat, const char *name,
                 double tsSeconds);
    void counter(int track, const char *name, double value,
                 double tsSeconds);

    /** Label a track ("tid0", "machine1/x86") in the viewer. */
    void nameTrack(int track, const std::string &name);

    /** Total events overwritten by ring wrap-around so far. */
    uint64_t dropped() const { return dropped_; }
    /** Total events currently retained across all tracks. */
    size_t size() const;

    /** Drop all recorded events and track names. */
    void clear();

    /**
     * Write Chrome trace-event JSON. Unmatched events are repaired per
     * track: an 'E' whose 'B' was overwritten is dropped, a 'B' still
     * open at export gets a synthetic 'E' at the track's last
     * timestamp -- the output always has matched B/E pairs.
     */
    void exportChromeTrace(std::ostream &os) const;

  private:
    struct Ring {
        std::vector<TraceEvent> ev; ///< sized to capacity on first use
        size_t head = 0;            ///< next write position
        size_t count = 0;
    };

    void record(int track, const TraceEvent &e);
    /** Oldest-first copy of a ring with B/E pairing repaired. */
    std::vector<TraceEvent> repaired(const Ring &r) const;

    std::map<int, Ring> rings_;
    std::map<int, std::string> trackNames_;
    size_t capacity_ = 1 << 16;
    uint64_t dropped_ = 0;
};

/**
 * RAII span on an explicit track; samples `now()` (virtual seconds) at
 * entry and exit. Armed only if tracing was enabled at construction.
 */
template <typename NowFn> class ScopedSpan
{
  public:
    ScopedSpan(int track, const char *cat, const char *name, NowFn now)
        : track_(track), now_(now), armed_(traceEnabled())
    {
        if (armed_)
            Tracer::global().begin(track_, cat, name, now_());
    }
    ~ScopedSpan()
    {
        if (armed_)
            Tracer::global().end(track_, now_());
    }
    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    int track_;
    NowFn now_;
    bool armed_;
};

} // namespace xisa::obs

// --- Instrumentation macros (compiled out under XISA_TRACE=OFF) ---------

#if XISA_TRACE

#define OBS_CONCAT2(a, b) a##b
#define OBS_CONCAT(a, b) OBS_CONCAT2(a, b)

/** Scoped span: `OBS_SPAN("cat", "name", track, [&]{ return tSec; });` */
#define OBS_SPAN(cat, name, track, nowFn)                                   \
    ::xisa::obs::ScopedSpan OBS_CONCAT(obs_span_, __LINE__)(track, cat,     \
                                                            name, nowFn)

#define OBS_TRACE_BEGIN(track, cat, name, tsSec)                            \
    do {                                                                    \
        if (::xisa::obs::traceEnabled())                                    \
            ::xisa::obs::Tracer::global().begin(track, cat, name, tsSec);   \
    } while (0)

#define OBS_TRACE_END(track, tsSec)                                         \
    do {                                                                    \
        if (::xisa::obs::traceEnabled())                                    \
            ::xisa::obs::Tracer::global().end(track, tsSec);                \
    } while (0)

#define OBS_TRACE_INSTANT(track, cat, name, tsSec)                          \
    do {                                                                    \
        if (::xisa::obs::traceEnabled())                                    \
            ::xisa::obs::Tracer::global().instant(track, cat, name,         \
                                                  tsSec);                   \
    } while (0)

#define OBS_TRACE_COUNTER(track, name, value, tsSec)                        \
    do {                                                                    \
        if (::xisa::obs::traceEnabled())                                    \
            ::xisa::obs::Tracer::global().counter(track, name, value,       \
                                                  tsSec);                   \
    } while (0)

#else // !XISA_TRACE

#define OBS_SPAN(cat, name, track, nowFn)                                   \
    do {                                                                    \
    } while (0)
#define OBS_TRACE_BEGIN(track, cat, name, tsSec)                            \
    do {                                                                    \
    } while (0)
#define OBS_TRACE_END(track, tsSec)                                         \
    do {                                                                    \
    } while (0)
#define OBS_TRACE_INSTANT(track, cat, name, tsSec)                          \
    do {                                                                    \
    } while (0)
#define OBS_TRACE_COUNTER(track, name, value, tsSec)                        \
    do {                                                                    \
    } while (0)

#endif // XISA_TRACE

#endif // XISA_OBS_TRACE_HH
