#include "obs/trace.hh"

#include <cstdio>
#include <ostream>
#include <unordered_set>

#include "util/logging.hh"

namespace xisa::obs {

bool gTraceEnabled = false;

void
setTraceEnabled(bool on)
{
    gTraceEnabled = on;
}

const char *
intern(const std::string &s)
{
    static std::unordered_set<std::string> pool;
    return pool.insert(s).first->c_str();
}

TraceCursor &
traceCursor()
{
    static TraceCursor cursor;
    return cursor;
}

Tracer &
Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::setCapacityPerTrack(size_t n)
{
    XISA_CHECK(n > 0, "tracer ring capacity must be positive");
    capacity_ = n;
}

void
Tracer::record(int track, const TraceEvent &e)
{
    Ring &r = rings_[track];
    if (r.ev.empty())
        r.ev.resize(capacity_);
    r.ev[r.head] = e;
    r.head = (r.head + 1) % r.ev.size();
    if (r.count < r.ev.size())
        ++r.count;
    else
        ++dropped_;
}

void
Tracer::begin(int track, const char *cat, const char *name,
              double tsSeconds)
{
    record(track, {tsSeconds, cat, name, 'B', 0});
}

void
Tracer::end(int track, double tsSeconds)
{
    record(track, {tsSeconds, nullptr, nullptr, 'E', 0});
}

void
Tracer::instant(int track, const char *cat, const char *name,
                double tsSeconds)
{
    record(track, {tsSeconds, cat, name, 'I', 0});
}

void
Tracer::counter(int track, const char *name, double value,
                double tsSeconds)
{
    record(track, {tsSeconds, nullptr, name, 'C', value});
}

void
Tracer::nameTrack(int track, const std::string &name)
{
    trackNames_[track] = name;
}

size_t
Tracer::size() const
{
    size_t n = 0;
    for (const auto &[track, r] : rings_)
        n += r.count;
    return n;
}

void
Tracer::clear()
{
    rings_.clear();
    trackNames_.clear();
    dropped_ = 0;
}

std::vector<TraceEvent>
Tracer::repaired(const Ring &r) const
{
    std::vector<TraceEvent> out;
    out.reserve(r.count);
    // Oldest-first order: the ring wraps at `head`.
    size_t start = r.count < r.ev.size()
                       ? 0
                       : r.head; // full ring: oldest is at head
    double lastTs = 0;
    std::vector<size_t> open; ///< indices into `out` of unmatched B's
    for (size_t i = 0; i < r.count; ++i) {
        const TraceEvent &e = r.ev[(start + i) % r.ev.size()];
        lastTs = e.tsSeconds;
        if (e.ph == 'E') {
            if (open.empty())
                continue; // its B was overwritten by the ring
            // Give the E its B's labels so pairs are self-describing.
            TraceEvent fixed = e;
            fixed.cat = out[open.back()].cat;
            fixed.name = out[open.back()].name;
            open.pop_back();
            out.push_back(fixed);
            continue;
        }
        if (e.ph == 'B')
            open.push_back(out.size());
        out.push_back(e);
    }
    // Close spans still open at export (innermost first).
    while (!open.empty()) {
        TraceEvent e = out[open.back()];
        e.ph = 'E';
        e.tsSeconds = lastTs;
        open.pop_back();
        out.push_back(e);
    }
    return out;
}

namespace {

void
jsonEscape(std::ostream &os, const char *s)
{
    for (; s && *s; ++s) {
        if (*s == '"' || *s == '\\')
            os << '\\';
        os << *s;
    }
}

} // namespace

void
Tracer::exportChromeTrace(std::ostream &os) const
{
    os << "{\"traceEvents\":[";
    bool first = true;
    auto comma = [&] {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };
    for (const auto &[track, name] : trackNames_) {
        comma();
        os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << track
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
        jsonEscape(os, name.c_str());
        os << "\"}}";
    }
    char ts[32];
    for (const auto &[track, ring] : rings_) {
        for (const TraceEvent &e : repaired(ring)) {
            comma();
            // Chrome expects microseconds.
            std::snprintf(ts, sizeof(ts), "%.3f", e.tsSeconds * 1e6);
            os << "{\"ph\":\"" << e.ph << "\",\"pid\":0,\"tid\":" << track
               << ",\"ts\":" << ts;
            if (e.cat) {
                os << ",\"cat\":\"";
                jsonEscape(os, e.cat);
                os << "\"";
            }
            if (e.name) {
                os << ",\"name\":\"";
                jsonEscape(os, e.name);
                os << "\"";
            }
            if (e.ph == 'C')
                os << ",\"args\":{\"value\":" << e.value << "}";
            os << "}";
        }
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

} // namespace xisa::obs
