#include "obs/registry.hh"

#include <cmath>
#include <ostream>

#include "util/logging.hh"

namespace xisa::obs {

// --- Stat ---------------------------------------------------------------

Stat::~Stat()
{
    if (registry_)
        registry_->detach(*this);
}

Stat::Stat(Stat &&other) noexcept
    : name_(std::move(other.name_)), registry_(other.registry_)
{
    // Steal the registration: the registry entry must point at us now.
    other.registry_ = nullptr;
    if (registry_) {
        auto &map = registry_->stats_;
        auto it = map.find(name_);
        if (it != map.end() && it->second == &other)
            it->second = this;
    }
}

Stat &
Stat::operator=(Stat &&other) noexcept
{
    if (this == &other)
        return *this;
    if (registry_)
        registry_->detach(*this);
    name_ = std::move(other.name_);
    registry_ = other.registry_;
    other.registry_ = nullptr;
    if (registry_) {
        auto &map = registry_->stats_;
        auto it = map.find(name_);
        if (it != map.end() && it->second == &other)
            it->second = this;
    }
    return *this;
}

// --- Counter / Gauge ----------------------------------------------------

Counter::Counter(const std::string &name)
{
    StatRegistry::global().attach(name, *this);
}

Counter::Counter(StatRegistry &reg, const std::string &name)
{
    reg.attach(name, *this);
}

void
Counter::printValue(std::ostream &os, bool) const
{
    os << v_;
}

Gauge::Gauge(const std::string &name)
{
    StatRegistry::global().attach(name, *this);
}

Gauge::Gauge(StatRegistry &reg, const std::string &name)
{
    reg.attach(name, *this);
}

void
Gauge::printValue(std::ostream &os, bool) const
{
    os << v_;
}

// --- Histogram ----------------------------------------------------------

Histogram::Histogram(const std::string &name)
{
    StatRegistry::global().attach(name, *this);
}

Histogram::Histogram(StatRegistry &reg, const std::string &name)
{
    reg.attach(name, *this);
}

int
Histogram::bucketIndex(double v)
{
    // v = m * 2^e with m in [0.5, 1): sub-bucket from the mantissa.
    if (!(v > 0.0) || !std::isfinite(v))
        return INT32_MIN; // dedicated bucket for <= 0 / non-finite
    int e = 0;
    double m = std::frexp(v, &e);
    int sub = static_cast<int>((m - 0.5) * 2.0 * kSubBuckets);
    if (sub >= kSubBuckets)
        sub = kSubBuckets - 1;
    return e * kSubBuckets + sub;
}

double
Histogram::bucketLow(int idx)
{
    int e = idx >= 0 ? idx / kSubBuckets
                     : -((-idx + kSubBuckets - 1) / kSubBuckets);
    int sub = idx - e * kSubBuckets;
    return std::ldexp(0.5 + static_cast<double>(sub) /
                                (2.0 * kSubBuckets),
                      e);
}

double
Histogram::bucketHigh(int idx)
{
    int e = idx >= 0 ? idx / kSubBuckets
                     : -((-idx + kSubBuckets - 1) / kSubBuckets);
    int sub = idx - e * kSubBuckets;
    return std::ldexp(0.5 + static_cast<double>(sub + 1) /
                                (2.0 * kSubBuckets),
                      e);
}

void
Histogram::add(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }
    ++count_;
    sum_ += v;
    ++buckets_[bucketIndex(v)];
}

double
Histogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Histogram::percentile(double q) const
{
    if (count_ == 0)
        return 0.0;
    if (q <= 0.0)
        return min_;
    if (q >= 1.0)
        return max_;
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    if (rank < 1)
        rank = 1;
    uint64_t seen = 0;
    for (const auto &[idx, n] : buckets_) {
        seen += n;
        if (seen >= rank) {
            if (idx == INT32_MIN)
                return min_;
            // Midpoint of the bucket, clamped to the observed range.
            double mid = 0.5 * (bucketLow(idx) + bucketHigh(idx));
            if (mid < min_)
                mid = min_;
            if (mid > max_)
                mid = max_;
            return mid;
        }
    }
    return max_;
}

void
Histogram::reset()
{
    buckets_.clear();
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

void
Histogram::printValue(std::ostream &os, bool json) const
{
    if (json) {
        os << "{\"count\":" << count_ << ",\"sum\":" << sum_
           << ",\"min\":" << min() << ",\"max\":" << max()
           << ",\"mean\":" << mean() << ",\"p50\":" << percentile(0.5)
           << ",\"p90\":" << percentile(0.9)
           << ",\"p99\":" << percentile(0.99) << "}";
    } else {
        os << "count=" << count_ << " mean=" << mean()
           << " min=" << min() << " p50=" << percentile(0.5)
           << " p90=" << percentile(0.9) << " max=" << max();
    }
}

// --- StatRegistry -------------------------------------------------------

StatRegistry &
StatRegistry::global()
{
    static StatRegistry reg;
    return reg;
}

StatRegistry::~StatRegistry()
{
    // Orphan surviving stats so their destructors don't touch us.
    for (auto &[name, s] : stats_)
        s->registry_ = nullptr;
}

void
StatRegistry::attach(const std::string &name, Stat &s)
{
    if (s.registry_)
        panic("stat '%s' is already registered (as '%s')", name.c_str(),
              s.name_.c_str());
    auto [it, fresh] = stats_.emplace(name, &s);
    if (!fresh)
        panic("stat name collision: '%s' is already registered",
              name.c_str());
    s.name_ = name;
    s.registry_ = this;
}

void
StatRegistry::detach(Stat &s)
{
    if (s.registry_ != this)
        return;
    auto it = stats_.find(s.name_);
    if (it != stats_.end() && it->second == &s)
        stats_.erase(it);
    s.registry_ = nullptr;
}

Stat *
StatRegistry::find(const std::string &name) const
{
    auto it = stats_.find(name);
    return it == stats_.end() ? nullptr : it->second;
}

Counter *
StatRegistry::findCounter(const std::string &name) const
{
    Stat *s = find(name);
    if (!s || s->kind() != StatKind::Counter)
        return nullptr;
    return static_cast<Counter *>(s);
}

uint64_t
StatRegistry::counterValue(const std::string &name) const
{
    const Stat *s = find(name);
    if (!s || s->kind() != StatKind::Counter)
        return 0;
    return static_cast<const Counter *>(s)->value();
}

void
StatRegistry::resetAll()
{
    for (auto &[name, s] : stats_)
        s->reset();
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, s] : stats_) {
        os << name << " = ";
        s->printValue(os, /*json=*/false);
        os << "\n";
    }
}

void
StatRegistry::dumpJson(std::ostream &os) const
{
    os << "{";
    bool first = true;
    for (const auto &[name, s] : stats_) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  \"" << name << "\": ";
        s->printValue(os, /*json=*/true);
    }
    os << "\n}\n";
}

std::map<std::string, double>
StatRegistry::snapshot() const
{
    std::map<std::string, double> snap;
    for (const auto &[name, s] : stats_)
        snap.emplace(name, s->primaryValue());
    return snap;
}

// --- ScopedStatEpoch ----------------------------------------------------

double
ScopedStatEpoch::delta(const std::string &name) const
{
    const Stat *s = reg_.find(name);
    double now = s ? s->primaryValue() : 0.0;
    auto it = base_.find(name);
    double then = it == base_.end() ? 0.0 : it->second;
    return now - then;
}

std::map<std::string, double>
ScopedStatEpoch::deltas() const
{
    std::map<std::string, double> out;
    for (const auto &[name, now] : reg_.snapshot()) {
        auto it = base_.find(name);
        double then = it == base_.end() ? 0.0 : it->second;
        if (now != then)
            out.emplace(name, now - then);
    }
    return out;
}

} // namespace xisa::obs
