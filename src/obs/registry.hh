/**
 * @file
 * The unified statistics layer (gem5-style stat registry).
 *
 * Every subsystem that used to own ad-hoc counters (Interconnect
 * message/byte counts, CacheStats, DsmStats, bench-local RunningStats)
 * now registers named stats -- counters, gauges, histograms -- into a
 * StatRegistry. Names are hierarchical dotted paths ("dsm.page_transfers",
 * "node0.l1d.misses"); the registry can render them human-readable or as
 * JSON, reset them all at once (subsuming the per-class resetStats()
 * idioms), and snapshot/diff them per measured region (ScopedStatEpoch).
 *
 * Registries are instantiable: components that may coexist (two
 * ReplicatedOS containers, three ClusterSims) each own one, so names
 * never collide across instances; StatRegistry::global() serves
 * process-wide ad-hoc use. Registering two live stats under the same
 * name in the same registry is a bug and panics.
 *
 * Stats are plain inline-incremented integers/doubles -- registering
 * adds zero cost to the hot path; the registry only holds pointers for
 * dump/reset. Stats detach themselves on destruction and re-point their
 * registry entry on move, so components stored in growing vectors stay
 * registered.
 */

#ifndef XISA_OBS_REGISTRY_HH
#define XISA_OBS_REGISTRY_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace xisa::obs {

class StatRegistry;

/** What a stat measures; drives the dump rendering. */
enum class StatKind { Counter, Gauge, Histogram };

/** Base of all registrable statistics. */
class Stat
{
  public:
    Stat() = default;
    virtual ~Stat();
    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;
    /** Moving re-points the registry entry at the new address. */
    Stat(Stat &&other) noexcept;
    Stat &operator=(Stat &&other) noexcept;

    const std::string &name() const { return name_; }
    StatRegistry *registry() const { return registry_; }

    virtual StatKind kind() const = 0;
    /** Zero the stat (registry resetAll / epoch boundaries). */
    virtual void reset() = 0;
    /** Scalar used by snapshots and epoch deltas. */
    virtual double primaryValue() const = 0;
    /** Render the value (no name) in human or JSON form. */
    virtual void printValue(std::ostream &os, bool json) const = 0;

  private:
    friend class StatRegistry;
    std::string name_;
    StatRegistry *registry_ = nullptr;
};

/** Monotonic event count; increments are a single inline add. */
class Counter : public Stat
{
  public:
    Counter() = default;
    /** Register into the global registry (panics on collision). */
    explicit Counter(const std::string &name);
    /** Register into `reg` (panics on collision). */
    Counter(StatRegistry &reg, const std::string &name);

    Counter &operator++()
    {
        ++v_;
        return *this;
    }
    void add(uint64_t n) { v_ += n; }
    uint64_t value() const { return v_; }

    StatKind kind() const override { return StatKind::Counter; }
    void reset() override { v_ = 0; }
    double primaryValue() const override
    {
        return static_cast<double>(v_);
    }
    void printValue(std::ostream &os, bool json) const override;

  private:
    uint64_t v_ = 0;
};

/** Point-in-time level (thread count, queue depth, ...). */
class Gauge : public Stat
{
  public:
    Gauge() = default;
    explicit Gauge(const std::string &name);
    Gauge(StatRegistry &reg, const std::string &name);

    void set(double v) { v_ = v; }
    void add(double d) { v_ += d; }
    double value() const { return v_; }

    StatKind kind() const override { return StatKind::Gauge; }
    void reset() override { v_ = 0; }
    double primaryValue() const override { return v_; }
    void printValue(std::ostream &os, bool json) const override;

  private:
    double v_ = 0;
};

/**
 * Geometric-bucket histogram (HDR-style): positive samples land in one
 * of kSubBuckets sub-buckets per power of two, bounding the relative
 * error of percentile estimates to ~1/kSubBuckets. Exact count, sum,
 * min, and max are tracked alongside the buckets.
 */
class Histogram : public Stat
{
  public:
    Histogram() = default;
    explicit Histogram(const std::string &name);
    Histogram(StatRegistry &reg, const std::string &name);

    void add(double v);

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    /** Approximate quantile, q in [0,1] (q=0.5 is the median). */
    double percentile(double q) const;

    StatKind kind() const override { return StatKind::Histogram; }
    void reset() override;
    double primaryValue() const override
    {
        return static_cast<double>(count_);
    }
    void printValue(std::ostream &os, bool json) const override;

  private:
    static constexpr int kSubBuckets = 32;
    static int bucketIndex(double v);
    static double bucketLow(int idx);
    static double bucketHigh(int idx);

    std::map<int, uint64_t> buckets_;
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Named collection of live stats; the one observability surface. */
class StatRegistry
{
  public:
    StatRegistry() = default;
    ~StatRegistry();
    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

    /** Process-wide default registry. */
    static StatRegistry &global();

    /**
     * Register `s` under `name`. Panics if another live stat already
     * owns the name, or if `s` is already attached somewhere.
     */
    void attach(const std::string &name, Stat &s);
    /** Remove `s`; no-op if it is not attached here. */
    void detach(Stat &s);

    /** Look a stat up by full name; nullptr if absent. */
    Stat *find(const std::string &name) const;
    /**
     * Typed lookup for hot loops: resolve the dotted name ONCE, keep the
     * returned handle, and bump through it -- never re-hash the name per
     * event. The handle stays valid until the counter detaches (component
     * destruction or registry teardown). Nullptr if absent or not a
     * counter.
     */
    Counter *findCounter(const std::string &name) const;
    /** Convenience: a counter's value, or 0 if no such counter. */
    uint64_t counterValue(const std::string &name) const;

    size_t size() const { return stats_.size(); }

    /** Zero every registered stat (subsumes per-class resetStats()). */
    void resetAll();

    /** Human-readable dump, one "name = value" row per stat. */
    void dump(std::ostream &os) const;
    /** JSON object keyed by stat name. */
    void dumpJson(std::ostream &os) const;

    /** Name -> primaryValue for every stat (epoch snapshots). */
    std::map<std::string, double> snapshot() const;

  private:
    friend class Stat; ///< moves re-point their registry entry

    std::map<std::string, Stat *> stats_;
};

/**
 * RAII measurement region: snapshots a registry at construction so the
 * harness can read per-region deltas without resetting anything --
 * replaces the reset-before/read-after pairs the benches used to do
 * against each module's private counters.
 */
class ScopedStatEpoch
{
  public:
    explicit ScopedStatEpoch(StatRegistry &reg)
        : reg_(reg), base_(reg.snapshot())
    {}

    /** Change of `name` since construction (0 if unknown then and now). */
    double delta(const std::string &name) const;
    /** All stats that changed since construction. */
    std::map<std::string, double> deltas() const;
    /** Restart the epoch from the current state. */
    void rebase() { base_ = reg_.snapshot(); }

    StatRegistry &registry() const { return reg_; }

  private:
    StatRegistry &reg_;
    std::map<std::string, double> base_;
};

} // namespace xisa::obs

#endif // XISA_OBS_REGISTRY_HH
